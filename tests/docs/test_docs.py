"""Docs health: relative links resolve, fenced examples execute.

This is the test-suite half of the CI docs job; the workflow additionally
runs ``python -m doctest docs/*.md`` directly so the examples can't rot
even if pytest collection changes.
"""

import doctest
import pathlib
import re

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
DOCS_DIR = REPO_ROOT / "docs"

MARKDOWN_FILES = sorted(DOCS_DIR.glob("*.md")) + [REPO_ROOT / "README.md"]

# [text](target) — excluding images and in-page anchors-only targets.
_LINK = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")


def _relative_links(markdown: pathlib.Path):
    for match in _LINK.finditer(markdown.read_text()):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        yield target


class TestDocsExist:
    def test_docs_suite_present(self):
        assert (DOCS_DIR / "architecture.md").exists()
        assert (DOCS_DIR / "performance.md").exists()


class TestLinks:
    @pytest.mark.parametrize(
        "markdown", MARKDOWN_FILES, ids=[p.name for p in MARKDOWN_FILES]
    )
    def test_relative_links_resolve(self, markdown):
        broken = []
        for target in _relative_links(markdown):
            path = target.split("#", 1)[0]
            if not path:
                continue
            if not (markdown.parent / path).resolve().exists():
                broken.append(target)
        assert not broken, f"{markdown.name}: broken relative links {broken}"


class TestDoctests:
    @pytest.mark.parametrize(
        "markdown",
        sorted(DOCS_DIR.glob("*.md")),
        ids=[p.name for p in sorted(DOCS_DIR.glob("*.md"))],
    )
    def test_fenced_examples_run(self, markdown):
        failures, attempted = doctest.testfile(
            str(markdown),
            module_relative=False,
            optionflags=doctest.NORMALIZE_WHITESPACE,
        )
        assert failures == 0, f"{markdown.name}: {failures} doctest failure(s)"
        assert attempted > 0, f"{markdown.name} should carry runnable examples"
