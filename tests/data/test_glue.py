"""GLUE TSV loaders: round-trip through the real file formats."""

import pytest

from repro.data import (
    load_mnli,
    load_sst2,
    make_mnli_like,
    make_sst2_like,
    write_mnli_fixture,
    write_sst2_fixture,
)


class TestSst2Loader:
    @pytest.fixture
    def sst2_dir(self, tmp_path):
        task = make_sst2_like(20, 10, seed=0)
        write_sst2_fixture(tmp_path, task)
        return tmp_path, task

    def test_roundtrip(self, sst2_dir):
        directory, original = sst2_dir
        loaded = load_sst2(directory)
        assert len(loaded.train) == len(original.train)
        assert len(loaded.dev) == len(original.dev)
        assert [e.label for e in loaded.train] == [e.label for e in original.train]
        assert [e.text_a for e in loaded.dev] == [e.text_a for e in original.dev]

    def test_single_sentence_task(self, sst2_dir):
        directory, _ = sst2_dir
        loaded = load_sst2(directory)
        assert all(e.text_b is None for e in loaded.train)

    def test_max_examples(self, sst2_dir):
        directory, _ = sst2_dir
        loaded = load_sst2(directory, max_examples=5)
        assert len(loaded.train) == 5

    def test_wrong_format_rejected(self, tmp_path):
        (tmp_path / "train.tsv").write_text("foo\tbar\n1\t2\n")
        (tmp_path / "dev.tsv").write_text("foo\tbar\n1\t2\n")
        with pytest.raises(ValueError):
            load_sst2(tmp_path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_sst2(tmp_path)


class TestMnliLoader:
    @pytest.fixture
    def mnli_dir(self, tmp_path):
        # Write the mismatched dev first: its fixture writer also emits a
        # train.tsv, which the matched write below overwrites with the real one.
        write_mnli_fixture(tmp_path, make_mnli_like(3, 12, matched=False, seed=1), matched=False)
        task = make_mnli_like(30, 12, seed=0)
        write_mnli_fixture(tmp_path, task, matched=True)
        return tmp_path, task

    def test_roundtrip_matched(self, mnli_dir):
        directory, original = mnli_dir
        loaded = load_mnli(directory, matched=True)
        assert len(loaded.train) == len(original.train)
        assert [e.label for e in loaded.dev] == [e.label for e in original.dev]
        assert all(e.text_b is not None for e in loaded.train)

    def test_mismatched_split(self, mnli_dir):
        directory, _ = mnli_dir
        loaded = load_mnli(directory, matched=False)
        assert loaded.name == "mnli-mismatched"
        assert len(loaded.dev) == 12

    def test_no_consensus_rows_skipped(self, tmp_path):
        (tmp_path / "train.tsv").write_text(
            "sentence1\tsentence2\tgold_label\n"
            "a b\tc d\tentailment\n"
            "e f\tg h\t-\n"
        )
        (tmp_path / "dev_matched.tsv").write_text(
            "sentence1\tsentence2\tgold_label\na b\tc d\tneutral\n"
        )
        loaded = load_mnli(tmp_path)
        assert len(loaded.train) == 1

    def test_pipeline_compatibility(self, mnli_dir):
        """Loaded GLUE-format data feeds the standard encode path."""
        from repro.data import encode_task

        directory, _ = mnli_dir
        loaded = load_mnli(directory)
        train, dev, tokenizer = encode_task(loaded, max_length=48)
        assert train.input_ids.shape[1] == 48
        assert set(train.labels) <= {0, 1, 2}
