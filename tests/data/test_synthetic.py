"""Synthetic task generators: determinism, balance, difficulty structure."""

import numpy as np
import pytest

from repro.data import (
    CONTRADICTION,
    ENTAILMENT,
    NEUTRAL,
    EncodedDataset,
    accuracy,
    build_tokenizer,
    encode_task,
    make_mnli_like,
    make_sst2_like,
)
from repro.data.synthetic import (
    MATCHED_GENRE_ENTITIES,
    MISMATCHED_GENRE_ENTITIES,
    WORD_STRENGTHS,
    sentence_strength,
)


class TestSst2Like:
    def test_deterministic(self):
        a = make_sst2_like(64, 32, seed=9)
        b = make_sst2_like(64, 32, seed=9)
        assert [e.text_a for e in a.train] == [e.text_a for e in b.train]
        assert [e.label for e in a.dev] == [e.label for e in b.dev]

    def test_different_seeds_differ(self):
        a = make_sst2_like(64, 32, seed=1)
        b = make_sst2_like(64, 32, seed=2)
        assert [e.text_a for e in a.train] != [e.text_a for e in b.train]

    def test_label_balance(self):
        task = make_sst2_like(200, 100, seed=0)
        labels = [e.label for e in task.dev]
        assert 0.35 < np.mean(labels) < 0.65

    def test_single_sentence(self):
        task = make_sst2_like(10, 5, seed=0)
        assert all(e.text_b is None for e in task.train)

    def test_labels_match_strength_up_to_noise(self):
        task = make_sst2_like(400, 200, noise=0.0, seed=4)
        for example in task.train:
            strength = sentence_strength(example.text_a)
            assert strength != 0
            assert (strength > 0) == (example.label == 1)

    def test_hard_examples_present(self):
        """Some reviews have count-majority conflicting with the label."""
        task = make_sst2_like(400, 200, noise=0.0, hard_fraction=0.5, seed=4)
        conflicts = 0
        for example in task.train:
            words = example.text_a.split()
            positives = sum(1 for w in words if WORD_STRENGTHS.get(w, 0) > 0)
            negatives = sum(1 for w in words if WORD_STRENGTHS.get(w, 0) < 0)
            majority = 1 if positives > negatives else 0
            if majority != example.label:
                conflicts += 1
        assert conflicts > len(task.train) * 0.2

    def test_noise_flips_labels(self):
        clean = make_sst2_like(400, 1, noise=0.0, seed=4)
        noisy = make_sst2_like(400, 1, noise=0.3, seed=4)
        flips = sum(
            1
            for c, n in zip(clean.train, noisy.train)
            if c.label != n.label
        )
        assert flips > 0


class TestMnliLike:
    def test_three_way_labels(self):
        task = make_mnli_like(90, 30, seed=0)
        assert set(e.label for e in task.train) == {ENTAILMENT, NEUTRAL, CONTRADICTION}

    def test_sentence_pairs(self):
        task = make_mnli_like(10, 5, seed=0)
        assert all(e.text_b is not None for e in task.train)

    def test_matched_uses_training_genres(self):
        task = make_mnli_like(30, 30, matched=True, seed=0)
        matched_words = {w for genre in MATCHED_GENRE_ENTITIES for w in genre}
        for example in task.dev:
            words = set(example.text_a.split())
            assert words & matched_words

    def test_mismatched_uses_heldout_genres(self):
        task = make_mnli_like(30, 30, matched=False, seed=0)
        mismatched_words = {w for genre in MISMATCHED_GENRE_ENTITIES for w in genre}
        matched_words = {w for genre in MATCHED_GENRE_ENTITIES for w in genre}
        for example in task.dev:
            premise_words = set(example.text_a.split())
            assert premise_words & mismatched_words
            # the *core clause* entity is never from the matched genres
            core_entity = example.text_a.split()[1:3]
            assert not set(core_entity) & matched_words

    def test_entailment_weakens_quantifier(self):
        task = make_mnli_like(300, 3, noise=0.0, seed=1)
        for example in task.train:
            premise_core = example.text_a.split(" while ")[0]
            hypothesis_core = example.text_b.split(" while ")[0]
            if example.label == ENTAILMENT:
                # same entity/action, no negation in the core
                assert "never" not in hypothesis_core and "not" not in hypothesis_core
                assert premise_core.split()[1] in hypothesis_core.split()

    def test_contradiction_negates(self):
        task = make_mnli_like(300, 3, noise=0.0, seed=1)
        contradictions = [e for e in task.train if e.label == CONTRADICTION]
        assert contradictions
        for example in contradictions:
            hypothesis_core = example.text_b.split(" while ")[0]
            assert "never" in hypothesis_core or "not" in hypothesis_core

    def test_distractor_clause_present(self):
        task = make_mnli_like(20, 5, seed=0)
        for example in task.train:
            assert " while " in example.text_a
            assert " while " in example.text_b


class TestEncodedDataset:
    def test_encode_task_shapes(self):
        task = make_sst2_like(32, 16, seed=0)
        train, dev, tokenizer = encode_task(task, max_length=20)
        assert train.input_ids.shape == (32, 20)
        assert dev.input_ids.shape == (16, 20)
        assert len(train) == 32

    def test_no_unk_tokens_with_shared_vocab(self):
        """The shared vocabulary covers every generated word."""
        for factory in (make_sst2_like, make_mnli_like):
            task = factory(32, 16, seed=0)
            train, _, tokenizer = encode_task(task, max_length=48)
            assert not np.any(train.input_ids == tokenizer.vocab.unk_id)

    def test_batches_cover_all_examples(self):
        task = make_sst2_like(33, 16, seed=0)
        train, _, _ = encode_task(task, max_length=16)
        seen = 0
        for batch in train.batches(8, shuffle=False):
            seen += len(batch)
        assert seen == 33

    def test_batches_shuffle_reproducible(self):
        task = make_sst2_like(32, 16, seed=0)
        train, _, _ = encode_task(task, max_length=16)
        a = [b.labels.tolist() for b in train.batches(8, rng=np.random.default_rng(5))]
        b = [b.labels.tolist() for b in train.batches(8, rng=np.random.default_rng(5))]
        assert a == b

    def test_rejects_bad_batch_size(self):
        task = make_sst2_like(8, 4, seed=0)
        train, _, _ = encode_task(task, max_length=16)
        with pytest.raises(ValueError):
            list(train.batches(0))

    def test_empty_dataset_rejected(self, tiny_task):
        _, _, _, tokenizer = tiny_task
        with pytest.raises(ValueError):
            EncodedDataset([], tokenizer)


class TestAccuracy:
    def test_perfect(self):
        assert accuracy(np.array([1, 0, 1]), np.array([1, 0, 1])) == 100.0

    def test_half(self):
        assert accuracy(np.array([1, 0]), np.array([1, 1])) == 50.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy(np.array([1]), np.array([1, 2]))


def test_build_tokenizer_covers_all_banks():
    tokenizer = build_tokenizer()
    for word in ("wonderful", "bland", "engineer", "glacier", "while", "never"):
        assert word in tokenizer.vocab
