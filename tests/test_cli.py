"""CLI: every subcommand end to end (fast settings)."""

import numpy as np
import pytest

from repro.cli import main


class TestSimulate:
    def test_default_design_point(self, capsys):
        assert main(["simulate"]) == 0
        out = capsys.readouterr().out
        assert "latency" in out and "DSP48=1751" in out

    def test_zcu111(self, capsys):
        assert main(["simulate", "--device", "ZCU111", "--pes", "16"]) == 0
        assert "ZCU111" in capsys.readouterr().out

    def test_unknown_device(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--device", "VU9P"])


class TestCompare:
    def test_prints_table4(self, capsys):
        assert main(["compare"]) == 0
        out = capsys.readouterr().out
        assert "CPU" in out and "ZCU111" in out and "fps/W" in out


class TestTrainQuantizeEvaluate:
    @pytest.fixture(scope="class")
    def float_checkpoint(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli") / "model.npz"
        code = main(
            ["train", "--task", "sst2", "--out", str(path), "--epochs", "2", "--seed", "3"]
        )
        assert code == 0
        return path

    def test_train_writes_checkpoint(self, float_checkpoint):
        assert float_checkpoint.exists()

    def test_evaluate_float(self, float_checkpoint, capsys):
        assert main(["evaluate", "--checkpoint", str(float_checkpoint)]) == 0
        assert "accuracy" in capsys.readouterr().out

    def test_quantize_qat_and_integer_eval(self, float_checkpoint, tmp_path, capsys):
        fq_path = tmp_path / "fq.npz"
        assert (
            main(
                [
                    "quantize", "--checkpoint", str(float_checkpoint),
                    "--out", str(fq_path), "--epochs", "1",
                ]
            )
            == 0
        )
        assert fq_path.exists()
        assert main(["evaluate", "--checkpoint", str(fq_path), "--integer"]) == 0
        assert "integer-engine accuracy" in capsys.readouterr().out

    def test_quantize_ptq(self, float_checkpoint, tmp_path, capsys):
        fq_path = tmp_path / "fq_ptq.npz"
        assert (
            main(
                [
                    "quantize", "--checkpoint", str(float_checkpoint),
                    "--out", str(fq_path), "--ptq",
                ]
            )
            == 0
        )
        assert "PTQ accuracy" in capsys.readouterr().out

    def test_quantize_rejects_quant_checkpoint(self, float_checkpoint, tmp_path):
        fq_path = tmp_path / "fq2.npz"
        main(
            ["quantize", "--checkpoint", str(float_checkpoint), "--out", str(fq_path), "--ptq"]
        )
        with pytest.raises(SystemExit):
            main(["quantize", "--checkpoint", str(fq_path), "--out", str(tmp_path / "x.npz")])

    def test_integer_eval_rejects_float_checkpoint(self, float_checkpoint):
        with pytest.raises(SystemExit):
            main(["evaluate", "--checkpoint", str(float_checkpoint), "--integer"])


class TestServe:
    def test_default_ptq_serving_run(self, capsys):
        assert (
            main(
                [
                    "serve", "--requests", "24", "--batch-size", "4",
                    "--num-devices", "2", "--slo-ms", "50",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "throughput" in out
        assert "p50" in out
        assert "padding efficiency" in out
        assert "accuracy over trace" in out
        assert "2 x ZCU102" in out

    def test_unknown_device(self):
        with pytest.raises(SystemExit):
            main(["serve", "--device", "VU9P", "--requests", "4"])
