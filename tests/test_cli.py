"""CLI: every subcommand end to end (fast settings)."""

import numpy as np
import pytest

from repro.cli import main


class TestSimulate:
    def test_default_design_point(self, capsys):
        assert main(["simulate"]) == 0
        out = capsys.readouterr().out
        assert "latency" in out and "DSP48=1751" in out

    def test_zcu111(self, capsys):
        assert main(["simulate", "--device", "ZCU111", "--pes", "16"]) == 0
        assert "ZCU111" in capsys.readouterr().out

    def test_unknown_device(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--device", "VU9P"])


class TestCompare:
    def test_prints_table4(self, capsys):
        assert main(["compare"]) == 0
        out = capsys.readouterr().out
        assert "CPU" in out and "ZCU111" in out and "fps/W" in out


class TestTrainQuantizeEvaluate:
    @pytest.fixture(scope="class")
    def float_checkpoint(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli") / "model.npz"
        code = main(
            ["train", "--task", "sst2", "--out", str(path), "--epochs", "2", "--seed", "3"]
        )
        assert code == 0
        return path

    def test_train_writes_checkpoint(self, float_checkpoint):
        assert float_checkpoint.exists()

    def test_evaluate_float(self, float_checkpoint, capsys):
        assert main(["evaluate", "--checkpoint", str(float_checkpoint)]) == 0
        assert "accuracy" in capsys.readouterr().out

    def test_quantize_qat_and_integer_eval(self, float_checkpoint, tmp_path, capsys):
        fq_path = tmp_path / "fq.npz"
        assert (
            main(
                [
                    "quantize", "--checkpoint", str(float_checkpoint),
                    "--out", str(fq_path), "--epochs", "1",
                ]
            )
            == 0
        )
        assert fq_path.exists()
        assert main(["evaluate", "--checkpoint", str(fq_path), "--integer"]) == 0
        assert "integer-engine accuracy" in capsys.readouterr().out

    def test_quantize_ptq(self, float_checkpoint, tmp_path, capsys):
        fq_path = tmp_path / "fq_ptq.npz"
        assert (
            main(
                [
                    "quantize", "--checkpoint", str(float_checkpoint),
                    "--out", str(fq_path), "--ptq",
                ]
            )
            == 0
        )
        assert "PTQ accuracy" in capsys.readouterr().out

    def test_quantize_rejects_quant_checkpoint(self, float_checkpoint, tmp_path):
        fq_path = tmp_path / "fq2.npz"
        main(
            ["quantize", "--checkpoint", str(float_checkpoint), "--out", str(fq_path), "--ptq"]
        )
        with pytest.raises(SystemExit):
            main(["quantize", "--checkpoint", str(fq_path), "--out", str(tmp_path / "x.npz")])

    def test_integer_eval_rejects_float_checkpoint(self, float_checkpoint):
        with pytest.raises(SystemExit):
            main(["evaluate", "--checkpoint", str(float_checkpoint), "--integer"])


class TestServe:
    def test_default_ptq_serving_run(self, capsys):
        assert (
            main(
                [
                    "serve", "--requests", "24", "--batch-size", "4",
                    "--num-devices", "2", "--slo-ms", "50",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "throughput" in out
        assert "p50" in out
        assert "padding efficiency" in out
        assert "accuracy over trace" in out
        assert "2 x ZCU102" in out

    def test_unknown_device(self):
        with pytest.raises(SystemExit):
            main(["serve", "--device", "VU9P", "--requests", "4"])

    def test_serving_knob_flags(self, capsys):
        """--buckets / --max-wait-ms / --cache-size reach the engine."""
        assert (
            main(
                [
                    "serve", "--requests", "12", "--batch-size", "4",
                    "--buckets", "6,12,24", "--max-wait-ms", "4",
                    "--cache-size", "32",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "buckets (6, 12, 24)" in out
        assert "wait<= 4.0ms" in out

    def test_bad_buckets_rejected(self):
        with pytest.raises(SystemExit):
            main(["serve", "--requests", "4", "--buckets", "a,b"])


LOADTEST_FAST = [
    "loadtest", "--replicas", "1", "--rate-scale", "0.25", "--seed", "11",
]


class TestLoadtest:
    @pytest.mark.parametrize(
        "scenario", ["steady", "diurnal", "flash-crowd", "ramp", "multi-tenant"]
    )
    def test_every_builtin_scenario_runs(self, scenario, capsys):
        assert main(LOADTEST_FAST + ["--scenario", scenario]) == 0
        out = capsys.readouterr().out
        assert f"scenario: {scenario}" in out
        assert "goodput" in out and "replica 0" in out

    def test_same_seed_byte_identical_report(self, capsys):
        args = LOADTEST_FAST + ["--scenario", "multi-tenant"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        assert capsys.readouterr().out == first

    def test_scenario_all_and_json(self, tmp_path, capsys):
        import json

        path = tmp_path / "report.json"
        assert (
            main(
                LOADTEST_FAST
                + ["--scenario", "all", "--json", str(path), "--rate-scale", "0.1"]
            )
            == 0
        )
        out = capsys.readouterr().out
        for scenario in ("steady", "diurnal", "flash-crowd", "ramp", "multi-tenant"):
            assert f"scenario: {scenario}" in out
        docs = json.loads(path.read_text())
        assert len(docs) == 5

    def test_json_is_always_a_list(self, tmp_path):
        """One scenario or five, the JSON file has one shape."""
        import json

        path = tmp_path / "one.json"
        assert (
            main(LOADTEST_FAST + ["--scenario", "steady", "--json", str(path)]) == 0
        )
        docs = json.loads(path.read_text())
        assert isinstance(docs, list) and len(docs) == 1
        assert docs[0]["scenario"] == "steady"

    def test_failure_injection_flag(self, capsys):
        assert (
            main(
                [
                    "loadtest", "--replicas", "2", "--rate-scale", "0.5",
                    "--scenario", "steady", "--fail", "0@50:120",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "failures 1" in out

    def test_autoscale_flag(self, capsys):
        assert (
            main(
                [
                    "loadtest", "--scenario", "flash-crowd", "--replicas", "1",
                    "--pus", "2", "--pes", "2", "--multipliers", "4",
                    "--rate-scale", "2", "--autoscale", "--max-replicas", "4",
                    "--scale-interval-ms", "15",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "autoscale on" in out
        assert "scale +1" in out

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            main(["loadtest", "--scenario", "tsunami"])

    def test_unknown_fleet_device_rejected(self):
        with pytest.raises(SystemExit):
            main(["loadtest", "--devices", "VU9P"])

    def test_bad_fail_spec_rejected(self):
        with pytest.raises(SystemExit):
            main(["loadtest", "--fail", "whenever"])

    def test_fail_id_beyond_fleet_rejected(self):
        with pytest.raises(SystemExit, match="at most 1 replica"):
            main(["loadtest", "--replicas", "1", "--fail", "5@10"])

    @pytest.mark.parametrize(
        "spec,why",
        [
            ("0@nan", "finite"),
            ("0@inf", "finite"),
            ("0@-5", ">= 0"),
            ("0@100:50", "after"),
            ("0@100:100", "after"),
            ("-1@100", "replica_id"),
        ],
    )
    def test_invalid_fail_values_get_a_reasoned_error(self, spec, why):
        """Value errors surface the validation message, not just the grammar."""
        with pytest.raises(SystemExit, match=why):
            main(["loadtest", f"--fail={spec}"])

    def test_chaos_plan_and_resilience_flags(self, tmp_path, capsys):
        import json

        plan = tmp_path / "plan.json"
        plan.write_text(json.dumps({
            "name": "drill",
            "zones": {"east": [0]},
            "events": [
                {"kind": "gray", "replica": 1, "start_ms": 20.0,
                 "end_ms": 120.0, "slowdown": 3.0},
                {"kind": "zone", "zone": "east", "at_ms": 40.0,
                 "recover_ms": 100.0},
            ],
        }))
        args = [
            "loadtest", "--scenario", "flash-crowd", "--replicas", "2",
            "--pus", "2", "--pes", "2", "--multipliers", "4",
            "--rate-scale", "2", "--chaos-plan", str(plan),
            "--retries", "2", "--retry-budget", "1.0", "--breaker",
            "--brownout",
        ]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "retries:" in first and "breaker:" in first
        # CLI chaos runs hold the same determinism contract: the
        # columnar engine replays the flags to the same bytes.
        assert main(args + ["--columnar", "--shards", "2"]) == 0
        assert capsys.readouterr().out == first

    def test_bad_chaos_plan_rejected(self, tmp_path):
        plan = tmp_path / "plan.json"
        plan.write_text('{"events": [{"kind": "meteor"}]}')
        with pytest.raises(SystemExit, match="unknown chaos event kind"):
            main(["loadtest", "--chaos-plan", str(plan)])

    def test_missing_chaos_plan_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="chaos-plan"):
            main(["loadtest", "--chaos-plan", str(tmp_path / "nope.json")])

    def test_bad_resilience_flags_rejected(self):
        with pytest.raises(SystemExit, match="timeout_ms"):
            main(["loadtest", "--timeout-ms", "-5"])


class TestSimulateJson:
    def test_json_written_with_design_shape(self, tmp_path, capsys):
        import json

        path = tmp_path / "point.json"
        assert main(["simulate", "--json", str(path)]) == 0
        assert "wrote" in capsys.readouterr().out
        doc = json.loads(path.read_text())
        assert doc["schema"] == "repro-design/1"
        assert doc["device"] == "ZCU102"
        assert doc["config"]["num_pes"] == 8
        assert doc["resources"]["dsp48"] == 1751
        assert doc["fits_device"] is True
        assert 0.0 < doc["headroom"] < 1.0

    def test_json_matches_search_candidate_shape(self, tmp_path):
        """simulate --json and search --json front entries share one shape."""
        import json

        sim_path = tmp_path / "sim.json"
        search_path = tmp_path / "search.json"
        assert main(["simulate", "--json", str(sim_path)]) == 0
        assert main(["search", "--space", "small", "--json", str(search_path)]) == 0
        sim = json.loads(sim_path.read_text())
        front = json.loads(search_path.read_text())["front"]
        assert set(sim) == set(front[0])
        # The default simulate point (12, 8, 16) is on the small-space front.
        assert sim in front


SEARCH_PLAN_FAST = [
    "search", "--scenario", "flash-crowd", "--space", "small",
    "--plan-designs", "2", "--max-replicas", "2", "--rate-scale", "0.5",
]


class TestSearch:
    def test_explore_default_space(self, capsys):
        assert main(["search"]) == 0
        out = capsys.readouterr().out
        assert "space: table3" in out
        assert "Pareto front" in out

    def test_explore_byte_identical(self, capsys):
        assert main(["search", "--space", "small"]) == 0
        first = capsys.readouterr().out
        assert main(["search", "--space", "small"]) == 0
        assert capsys.readouterr().out == first

    def test_explore_json_byte_identical(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert main(["search", "--space", "small", "--json", str(a)]) == 0
        assert main(["search", "--space", "small", "--json", str(b)]) == 0
        assert a.read_bytes() == b.read_bytes()

    def test_explore_budget_and_objectives(self, capsys):
        assert (
            main(
                ["search", "--space", "wide", "--budget", "12",
                 "--objective", "latency,energy"]
            )
            == 0
        )
        assert "12 evaluated" in capsys.readouterr().out

    def test_plan_mode(self, capsys):
        assert main(SEARCH_PLAN_FAST) == 0
        out = capsys.readouterr().out
        assert "scenario: flash-crowd" in out
        assert "cheapest feasible plan" in out

    def test_plan_json_byte_identical(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert main(SEARCH_PLAN_FAST + ["--json", str(a)]) == 0
        assert main(SEARCH_PLAN_FAST + ["--json", str(b)]) == 0
        assert a.read_bytes() == b.read_bytes()

    def test_unknown_space_rejected(self):
        with pytest.raises(SystemExit, match="unknown space"):
            main(["search", "--space", "huge"])

    def test_unknown_objective_rejected(self):
        with pytest.raises(SystemExit, match="unknown objective"):
            main(["search", "--objective", "beauty"])

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit, match="unknown scenario"):
            main(["search", "--scenario", "tsunami"])

    def test_unknown_plan_objective_rejected(self):
        with pytest.raises(SystemExit, match="unknown plan objective"):
            main(["search", "--scenario", "steady", "--objective", "latency"])
