"""Degenerate-shard stats paths: empty, single-request, all-shed columns.

The columnar stats builder (:func:`build_fleet_stats_columns`) and the
record-path builder (:func:`build_fleet_stats`) must agree bit for bit on
the degenerate inputs the shard merge can produce — an empty shard, a
single completed request, a window where everything was shed — and the
percentile helpers must accept numpy latency columns on the same branches
as plain lists.  These were previously incidental behaviors; this module
makes them contractual.
"""

import numpy as np

from repro.fleet import RequestRecord, build_fleet_stats, safe_percentile
from repro.fleet.columnar import SHED_REASON_OF_CODE
from repro.fleet.metrics import (
    _latency_block,
    _latency_block_columns,
    build_fleet_stats_columns,
)

TENANTS = ("default",)


def _records(arrival, finish, shed_code, slo):
    """RequestRecords exactly as Fleet.collect would fill them."""
    records = []
    for i, (a, f, code) in enumerate(zip(arrival, finish, shed_code)):
        r = RequestRecord(
            index=i, tenant="default", slo_ms=slo[i], arrival_ms=a
        )
        if code:
            r.shed = True
            r.shed_reason = SHED_REASON_OF_CODE[code]
        else:
            r.finish_ms = f
            r.latency_ms = f - a
            r.slo_met = r.latency_ms <= r.slo_ms
            r.completed = True
        records.append(r)
    return records


def _both_stats(arrival, finish, shed_code, slo, duration_ms):
    arrival = np.asarray(arrival, dtype=np.float64)
    finish = np.asarray(finish, dtype=np.float64)
    shed_code = np.asarray(shed_code, dtype=np.uint8)
    slo = np.asarray(slo, dtype=np.float64)
    by_records = build_fleet_stats(
        _records(arrival, finish, shed_code, slo),
        replicas=[],
        scale_events=[],
        duration_ms=duration_ms,
    )
    by_columns = build_fleet_stats_columns(
        duration_ms=duration_ms,
        tenant_names=list(TENANTS),
        tenant_idx=np.zeros(arrival.shape[0], dtype=np.int64),
        slo_ms=slo,
        arrival_ms=arrival,
        finish_ms=finish,
        shed_code=shed_code,
        shed_reasons=SHED_REASON_OF_CODE,
        migrations=0,
        replicas=[],
        scale_events=[],
    )
    return by_records, by_columns


class TestDegenerateColumns:
    def test_empty_columns(self):
        """Zero submitted requests: all-zero stats, no division, no crash."""
        ref, got = _both_stats([], [], [], [], duration_ms=0.0)
        assert got.to_dict() == ref.to_dict()
        assert got.submitted == 0
        assert got.p99_latency_ms == 0.0
        assert got.tenants == {}

    def test_single_request(self):
        """One completed request: every percentile is that one latency."""
        ref, got = _both_stats(
            [10.0], [35.0], [0], [100.0], duration_ms=1000.0
        )
        assert got.to_dict() == ref.to_dict()
        assert got.p50_latency_ms == 25.0
        assert got.p99_latency_ms == 25.0
        assert got.mean_latency_ms == 25.0

    def test_all_shed(self):
        """Every request shed: zero latencies, shed reasons still counted."""
        ref, got = _both_stats(
            [1.0, 2.0, 3.0], [0.0, 0.0, 0.0], [1, 2, 1],
            [50.0, 50.0, 50.0], duration_ms=500.0,
        )
        assert got.to_dict() == ref.to_dict()
        assert got.completed == 0
        assert got.p99_latency_ms == 0.0
        assert got.shed_by_reason == {
            SHED_REASON_OF_CODE[1]: 2,
            SHED_REASON_OF_CODE[2]: 1,
        }
        # an all-shed tenant still reports its submission count
        assert got.tenants["default"].submitted == 3
        assert got.tenants["default"].completed == 0

    def test_mixed_shed_and_completed(self):
        ref, got = _both_stats(
            [0.0, 1.0, 2.0, 3.0], [5.0, 0.0, 9.0, 0.0], [0, 1, 0, 2],
            [6.0, 6.0, 6.0, 6.0], duration_ms=100.0,
        )
        assert got.to_dict() == ref.to_dict()
        assert got.completed == 2
        assert got.shed == 2
        # 5.0 <= 6.0 met, 7.0 > 6.0 missed
        assert got.slo_met == 1


class TestPercentileColumns:
    def test_safe_percentile_accepts_numpy_columns(self):
        assert safe_percentile(np.array([]), 99) == 0.0
        assert safe_percentile(np.array([4.0]), 50) == 4.0
        column = np.array([3.0, 1.0, 2.0])
        assert safe_percentile(column, 50) == safe_percentile([3.0, 1.0, 2.0], 50)

    def test_latency_block_columns_matches_list_path(self):
        rng = np.random.default_rng(11)
        for n in (1, 2, 3, 7, 100, 101, 1000):
            column = rng.exponential(10.0, size=n)
            by_list = _latency_block(list(column))
            by_column = _latency_block_columns(column)
            assert by_column == by_list  # bit-identical, not approx

    def test_latency_block_columns_empty(self):
        block = _latency_block_columns(np.array([]))
        assert block == {
            "p50": 0.0, "p95": 0.0, "p99": 0.0, "mean": 0.0, "max": 0.0
        }
