"""Scenario runner + fleet metrics: determinism, reports, empty-safety."""

import json

import pytest

from repro.fleet import (
    FailureEvent,
    FleetRequest,
    build_fleet_stats,
    builtin_scenarios,
    run_scenario,
    safe_percentile,
)


class TestRunScenario:
    def test_accepts_name_scenario_or_trace(
        self, cluster_model, hash_tokenizer, weak_spec, fleet_config
    ):
        by_name = run_scenario(
            "steady", cluster_model, hash_tokenizer, [weak_spec], fleet_config,
            seed=3, rate_scale=0.3,
        )
        by_object = run_scenario(
            builtin_scenarios()["steady"], cluster_model, hash_tokenizer,
            [weak_spec], fleet_config, seed=3, rate_scale=0.3,
        )
        assert by_name.to_json() == by_object.to_json()
        trace = builtin_scenarios()["steady"].generate(seed=3, rate_scale=0.3)
        by_trace = run_scenario(
            trace, cluster_model, hash_tokenizer, [weak_spec], fleet_config,
        )
        assert by_trace.scenario == "custom-trace"
        assert by_trace.stats.submitted == by_name.stats.submitted

    def test_unknown_name_rejected(
        self, cluster_model, hash_tokenizer, weak_spec, fleet_config
    ):
        with pytest.raises(ValueError, match="unknown scenario"):
            run_scenario(
                "tsunami", cluster_model, hash_tokenizer, [weak_spec], fleet_config
            )

    def test_report_json_round_trips(
        self, cluster_model, hash_tokenizer, weak_spec, fleet_config
    ):
        report = run_scenario(
            "multi-tenant", cluster_model, hash_tokenizer, [weak_spec] * 2,
            fleet_config, seed=5, rate_scale=0.5,
        )
        doc = json.loads(report.to_json())
        assert doc["scenario"] == "multi-tenant"
        assert set(doc["stats"]["tenants"]) == {"interactive", "standard", "batch"}
        assert doc["stats"]["submitted"] == report.stats.submitted
        assert len(doc["stats"]["replicas"]) == 2

    def test_per_tenant_slos_tracked_separately(
        self, cluster_model, hash_tokenizer, weak_spec, fleet_config
    ):
        report = run_scenario(
            "multi-tenant", cluster_model, hash_tokenizer, [weak_spec] * 2,
            fleet_config, seed=5,
        )
        tenants = report.stats.tenants
        # batch tolerates 10x the latency of interactive, so with the same
        # latency distribution its attainment can only be >= interactive's.
        assert tenants["batch"].slo_attainment >= tenants["interactive"].slo_attainment

    def test_failure_plan_runs_inside_runner(
        self, cluster_model, hash_tokenizer, weak_spec, fleet_config
    ):
        report = run_scenario(
            "steady", cluster_model, hash_tokenizer, [weak_spec] * 2, fleet_config,
            failures=[FailureEvent(replica_id=1, fail_ms=50.0)],
            seed=3, rate_scale=0.5,
        )
        stats = report.stats
        assert stats.completed + stats.shed == stats.submitted
        replica1 = next(r for r in stats.replicas if r.replica_id == 1)
        assert replica1.failures == 1
        assert replica1.retired_ms == pytest.approx(50.0)

    def test_failure_validation(self):
        with pytest.raises(ValueError):
            FailureEvent(replica_id=0, fail_ms=10.0, recover_ms=5.0)


class TestEmptySafety:
    def test_safe_percentile_empty(self):
        assert safe_percentile([], 99) == 0.0
        assert safe_percentile([5.0], 99) == 5.0

    def test_stats_from_no_records(self):
        stats = build_fleet_stats([], replicas=[], scale_events=[], duration_ms=0.0)
        assert stats.submitted == 0
        assert stats.shed_rate == 0.0
        assert stats.slo_attainment == 1.0
        assert stats.goodput_rps == 0.0
        assert stats.p99_latency_ms == 0.0
        assert "requests:       0 submitted" in stats.render()
        json.loads(json.dumps(stats.to_dict()))  # serializable

    def test_empty_trace_runs_clean(
        self, cluster_model, hash_tokenizer, weak_spec, fleet_config
    ):
        report = run_scenario(
            [], cluster_model, hash_tokenizer, [weak_spec], fleet_config
        )
        assert report.stats.submitted == 0
        assert report.stats.throughput_rps == 0.0

    def test_fully_shed_trace_summarizes(
        self, cluster_model, hash_tokenizer, weak_spec, fleet_config
    ):
        """Everything shed -> zero completions, still a full report."""
        trace = [
            FleetRequest(
                tenant="t", slo_ms=0.001, text_a=f"impossible {i}", text_b=None,
                arrival_ms=float(i),
            )
            for i in range(6)
        ]
        report = run_scenario(
            trace, cluster_model, hash_tokenizer, [weak_spec], fleet_config
        )
        stats = report.stats
        assert stats.completed == 0
        assert stats.shed == stats.submitted == 6
        assert stats.p99_latency_ms == 0.0
        assert stats.tenants["t"].shed_rate == 1.0
        assert "shed (100.0%)" in stats.render()
