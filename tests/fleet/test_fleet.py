"""Fleet model: routing, admission/shedding, failure + recovery."""

import pytest

from repro.accel import AcceleratorConfig
from repro.accel.devices import ZCU111
from repro.fleet import (
    SHED_OVERLOAD,
    FailureEvent,
    Fleet,
    FleetConfig,
    FleetRequest,
    ReplicaSpec,
    builtin_scenarios,
    run_scenario,
)
from repro.serve import ServingConfig


def _request(arrival_ms, text="hello fleet world", tenant="t", slo_ms=100.0):
    return FleetRequest(
        tenant=tenant, slo_ms=slo_ms, text_a=text, text_b=None, arrival_ms=arrival_ms
    )


class TestConstruction:
    def test_needs_a_replica(self, cluster_model, hash_tokenizer, fleet_config):
        with pytest.raises(ValueError):
            Fleet(cluster_model, hash_tokenizer, [], fleet_config)

    def test_multi_device_serving_config_rejected(self):
        with pytest.raises(ValueError, match="num_devices"):
            FleetConfig(serving=ServingConfig(num_devices=2))

    def test_replica_labels_name_design_points(self, weak_spec):
        assert weak_spec.label == "weak"
        default = ReplicaSpec()
        assert default.label == "ZCU102/H12N8M16"


class TestRoutingAndBalance:
    def test_load_spreads_across_replicas(
        self, cluster_model, hash_tokenizer, weak_spec, fleet_config
    ):
        fleet = Fleet(cluster_model, hash_tokenizer, [weak_spec] * 2, fleet_config)
        trace = builtin_scenarios()["steady"].generate(seed=1, rate_scale=0.5)
        for request in trace:
            fleet.advance(request.arrival_ms)
            fleet.submit(request)
        fleet.drain()
        records = fleet.collect()
        used = {r.replica_id for r in records if not r.shed}
        assert used == {0, 1}

    def test_faster_replica_attracts_more_traffic(
        self, cluster_model, hash_tokenizer, weak_spec, fleet_config
    ):
        """Heterogeneous fleet: the stronger design point serves more."""
        strong = ReplicaSpec(
            accel_config=AcceleratorConfig.zcu111_n16_m16(), device=ZCU111,
            name="strong",
        )
        fleet = Fleet(
            cluster_model, hash_tokenizer, [weak_spec, strong], fleet_config
        )
        trace = builtin_scenarios()["steady"].generate(seed=1, rate_scale=1.0)
        for request in trace:
            fleet.advance(request.arrival_ms)
            fleet.submit(request)
        fleet.drain()
        records = fleet.collect()
        by_replica = {0: 0, 1: 0}
        for r in records:
            if not r.shed:
                by_replica[r.replica_id] += 1
        assert by_replica[1] > by_replica[0]

    def test_all_accepted_complete(
        self, cluster_model, hash_tokenizer, weak_spec, fleet_config
    ):
        fleet = Fleet(cluster_model, hash_tokenizer, [weak_spec], fleet_config)
        for i in range(10):
            fleet.advance(float(i))
            fleet.submit(_request(float(i), text=f"req number {i} words"))
        fleet.drain()
        records = fleet.collect()
        assert all(r.completed for r in records if not r.shed)
        assert all(r.latency_ms > 0 for r in records if r.completed)


class TestAdmissionControl:
    def test_flash_crowd_sheds_on_fixed_fleet(
        self, cluster_model, hash_tokenizer, weak_spec, fleet_config
    ):
        report = run_scenario(
            "flash-crowd",
            cluster_model,
            hash_tokenizer,
            [weak_spec],
            fleet_config,
            seed=7,
            rate_scale=3.0,
        )
        stats = report.stats
        assert stats.shed > 0, "overload scenario must engage load shedding"
        assert stats.shed_by_reason == {SHED_OVERLOAD: stats.shed}
        assert stats.completed + stats.shed == stats.submitted
        # Shedding is the point: the accepted requests keep a bounded tail
        # instead of unbounded queueing.
        assert stats.p99_latency_ms <= 2 * fleet_config.serving.max_batch_size * 25

    def test_shed_everything_when_projection_hopeless(
        self, cluster_model, hash_tokenizer, weak_spec
    ):
        """An SLO far below the service time sheds every request — and the
        empty-stats path must summarize that cleanly (degenerate trace)."""
        config = FleetConfig(
            serving=ServingConfig(
                max_batch_size=8, max_wait_ms=5.0, buckets=(16, 32, 64),
                num_devices=1,
            ),
            admit_slo_factor=1.0,
        )
        fleet = Fleet(cluster_model, hash_tokenizer, [weak_spec], config)
        for i in range(5):
            fleet.advance(float(i))
            fleet.submit(_request(float(i), slo_ms=0.001))
        fleet.drain()
        records = fleet.collect()
        assert all(r.shed for r in records)


class TestFailureRecovery:
    def test_failure_migrates_queue_no_lost_requests(
        self, cluster_model, hash_tokenizer, weak_spec, fleet_config
    ):
        report = run_scenario(
            "steady",
            cluster_model,
            hash_tokenizer,
            [weak_spec] * 2,
            fleet_config,
            failures=[FailureEvent(replica_id=0, fail_ms=60.0, recover_ms=150.0)],
            seed=7,
        )
        stats = report.stats
        assert stats.shed == 0
        assert stats.completed == stats.submitted, "failure lost accepted requests"
        replica0 = next(r for r in stats.replicas if r.replica_id == 0)
        assert replica0.failures == 1
        assert replica0.retired_ms < 0  # recovered, live at the end

    def test_failed_replica_takes_no_traffic_while_down(
        self, cluster_model, hash_tokenizer, weak_spec, fleet_config
    ):
        fleet = Fleet(cluster_model, hash_tokenizer, [weak_spec] * 2, fleet_config)
        fleet.advance(10.0)
        fleet.fail_replica(0, 10.0)
        for i in range(12):
            t = 11.0 + i
            fleet.advance(t)
            fleet.submit(_request(t, text=f"after failure {i}"))
        fleet.drain()
        records = fleet.collect()
        assert all(r.replica_id == 1 for r in records if not r.shed)

    def test_recovered_replica_serves_again(
        self, cluster_model, hash_tokenizer, weak_spec, fleet_config
    ):
        fleet = Fleet(cluster_model, hash_tokenizer, [weak_spec] * 2, fleet_config)
        fleet.advance(1.0)
        fleet.fail_replica(0, 1.0)
        fleet.recover_replica(0, 2.0)
        cold_until = 2.0 + fleet.cold_start_ms(fleet.replicas[0])
        # After the cold start window, replica 0 is routable again.
        t = cold_until + 200.0
        fleet.advance(t)
        for i in range(32):
            fleet.advance(t + i * 0.1)
            fleet.submit(_request(t + i * 0.1, text=f"post recovery {i % 8}"))
        fleet.drain()
        records = fleet.collect()
        assert {r.replica_id for r in records if not r.shed} == {0, 1}

    def test_migration_keeps_original_arrival_accounting(
        self, cluster_model, hash_tokenizer, weak_spec, fleet_config
    ):
        fleet = Fleet(cluster_model, hash_tokenizer, [weak_spec] * 2, fleet_config)
        fleet.advance(0.0)
        record = None
        # Unique texts so nothing dedups; queue on replica picked for req 0.
        for i in range(3):
            fleet.advance(float(i))
            rec = fleet.submit(_request(float(i), text=f"migration probe {i}"))
            record = record or rec
        target = record.replica_id
        fleet.fail_replica(target, 4.0)
        fleet.drain()
        fleet.collect()
        migrated = [r for r in fleet.records if r.migrations > 0]
        assert migrated, "failing the routed replica must migrate its queue"
        for r in migrated:
            assert r.completed
            # latency measured from the original arrival, not resubmission
            assert r.latency_ms == pytest.approx(r.finish_ms - r.arrival_ms)
            assert r.finish_ms > 4.0

    def test_downtime_excluded_from_live_time(
        self, cluster_model, hash_tokenizer, weak_spec, fleet_config
    ):
        fleet = Fleet(cluster_model, hash_tokenizer, [weak_spec] * 2, fleet_config)
        fleet.advance(10.0)
        fleet.fail_replica(0, 10.0)
        fleet.recover_replica(0, 70.0)
        assert fleet.replicas[0].downtime_ms == pytest.approx(60.0)

    def test_failing_unknown_replica_is_noop(
        self, cluster_model, hash_tokenizer, weak_spec, fleet_config
    ):
        """A failure plan may target a replica the autoscaler never created."""
        fleet = Fleet(cluster_model, hash_tokenizer, [weak_spec], fleet_config)
        fleet.fail_replica(99, 5.0)
        fleet.recover_replica(99, 6.0)
        assert len(fleet.live_replicas()) == 1

    def test_failing_everything_sheds_with_no_capacity(
        self, cluster_model, hash_tokenizer, weak_spec, fleet_config
    ):
        from repro.fleet import SHED_NO_CAPACITY

        fleet = Fleet(cluster_model, hash_tokenizer, [weak_spec], fleet_config)
        fleet.advance(0.0)
        fleet.fail_replica(0, 0.0)
        record = fleet.submit(_request(1.0))
        assert record.shed and record.shed_reason == SHED_NO_CAPACITY
        fleet.drain()
        fleet.collect()  # must not raise: nothing accepted was lost


class TestElasticity:
    def test_add_replica_pays_cold_start(
        self, cluster_model, hash_tokenizer, weak_spec, fleet_config
    ):
        fleet = Fleet(cluster_model, hash_tokenizer, [weak_spec], fleet_config)
        fleet.advance(50.0)
        replica = fleet.add_replica(weak_spec, now_ms=50.0, cold=True)
        penalty = fleet.cold_start_ms(replica)
        assert penalty > 0
        device = replica.engine.router.devices[0]
        assert device.busy_until_ms == pytest.approx(50.0 + penalty)

    def test_remove_last_replica_refused(
        self, cluster_model, hash_tokenizer, weak_spec, fleet_config
    ):
        fleet = Fleet(cluster_model, hash_tokenizer, [weak_spec], fleet_config)
        with pytest.raises(ValueError, match="last live replica"):
            fleet.remove_replica(0, 1.0)

    def test_graceful_removal_migrates_queue(
        self, cluster_model, hash_tokenizer, weak_spec, fleet_config
    ):
        fleet = Fleet(cluster_model, hash_tokenizer, [weak_spec] * 2, fleet_config)
        for i in range(6):
            fleet.advance(float(i))
            fleet.submit(_request(float(i), text=f"drain probe {i}"))
        fleet.remove_replica(0, 6.0)
        fleet.drain()
        records = fleet.collect()
        assert all(r.completed for r in records if not r.shed)
        assert not fleet.replicas[0].live
