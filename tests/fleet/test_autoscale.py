"""Autoscaler: signals, scale decisions, goodput under flash crowds."""

import pytest

from repro.fleet import (
    AutoscalePolicy,
    Autoscaler,
    Fleet,
    run_scenario,
)


class TestPolicyValidation:
    def test_bounds(self):
        with pytest.raises(ValueError):
            AutoscalePolicy(min_replicas=3, max_replicas=2)
        with pytest.raises(ValueError):
            AutoscalePolicy(interval_ms=0.0)
        with pytest.raises(ValueError):
            AutoscalePolicy(utilization_low=0.9, utilization_high=0.8)


class TestSignals:
    def test_idle_fleet_reads_zero_utilization(
        self, cluster_model, hash_tokenizer, weak_spec, fleet_config
    ):
        fleet = Fleet(cluster_model, hash_tokenizer, [weak_spec], fleet_config)
        scaler = Autoscaler(fleet, AutoscalePolicy(interval_ms=10.0))
        fleet.advance(10.0)
        assert scaler.window_utilization(10.0) == 0.0
        assert scaler.window_p99_over_slo(10.0) == 0.0
        assert scaler.queue_depth() == 0

    def test_no_scaling_when_idle(
        self, cluster_model, hash_tokenizer, weak_spec, fleet_config
    ):
        fleet = Fleet(cluster_model, hash_tokenizer, [weak_spec] * 2, fleet_config)
        scaler = Autoscaler(
            fleet, AutoscalePolicy(min_replicas=2, max_replicas=4, interval_ms=10.0)
        )
        for tick in range(1, 6):
            fleet.advance(tick * 10.0)
            scaler.tick(tick * 10.0)
        assert scaler.events == []
        assert len(fleet.live_replicas()) == 2

    def test_scale_down_when_overprovisioned(
        self, cluster_model, hash_tokenizer, weak_spec, fleet_config
    ):
        fleet = Fleet(cluster_model, hash_tokenizer, [weak_spec] * 3, fleet_config)
        scaler = Autoscaler(
            fleet,
            AutoscalePolicy(
                min_replicas=1, max_replicas=3, interval_ms=10.0, cooldown_ticks=0
            ),
        )
        for tick in range(1, 6):
            fleet.advance(tick * 10.0)
            scaler.tick(tick * 10.0)
        assert len(fleet.live_replicas()) < 3
        assert all(e.action == "down" for e in scaler.events)


class TestFlashCrowd:
    @pytest.fixture(scope="class")
    def flash_reports(self, cluster_model, hash_tokenizer):
        """Fixed vs autoscaled on the same flash-crowd trace."""
        from repro.accel import AcceleratorConfig
        from repro.fleet import FleetConfig, ReplicaSpec
        from repro.serve import ServingConfig

        weak = ReplicaSpec(
            accel_config=AcceleratorConfig(num_pus=2, num_pes=2, num_multipliers=4),
            name="weak",
        )
        config = FleetConfig(
            serving=ServingConfig(
                max_batch_size=8, max_wait_ms=5.0, buckets=(16, 32, 64),
                num_devices=1, cache_capacity=512,
            ),
            admit_slo_factor=1.0,
        )
        common = dict(
            scenario="flash-crowd",
            model=cluster_model,
            tokenizer=hash_tokenizer,
            specs=[weak],
            fleet_config=config,
            seed=7,
            rate_scale=3.0,
        )
        fixed = run_scenario(**common)
        autoscaled = run_scenario(
            **common,
            autoscale=AutoscalePolicy(
                min_replicas=1, max_replicas=5, interval_ms=15.0
            ),
        )
        return fixed, autoscaled

    def test_fixed_fleet_sheds(self, flash_reports):
        fixed, _ = flash_reports
        assert fixed.stats.shed > 0

    def test_autoscaler_strictly_improves_goodput(self, flash_reports):
        fixed, autoscaled = flash_reports
        assert autoscaled.stats.goodput_rps > fixed.stats.goodput_rps
        assert autoscaled.stats.shed < fixed.stats.shed

    def test_autoscaler_scales_up_during_burst(self, flash_reports):
        _, autoscaled = flash_reports
        ups = [e for e in autoscaled.stats.scale_events if e.action == "up"]
        assert ups, "flash crowd must trigger at least one scale-up"
        scenario_burst_start = 80.0
        assert all(e.time_ms >= scenario_burst_start for e in ups)
        for e in ups:
            assert e.replicas_after >= 2

    def test_autoscaler_improves_tail_latency(self, flash_reports):
        fixed, autoscaled = flash_reports
        assert autoscaled.stats.p99_latency_ms < fixed.stats.p99_latency_ms

    def test_reports_deterministic(self, flash_reports, cluster_model, hash_tokenizer):
        """Same seed, byte-identical report."""
        from repro.accel import AcceleratorConfig
        from repro.fleet import FleetConfig, ReplicaSpec
        from repro.serve import ServingConfig

        fixed, _ = flash_reports
        weak = ReplicaSpec(
            accel_config=AcceleratorConfig(num_pus=2, num_pes=2, num_multipliers=4),
            name="weak",
        )
        config = FleetConfig(
            serving=ServingConfig(
                max_batch_size=8, max_wait_ms=5.0, buckets=(16, 32, 64),
                num_devices=1, cache_capacity=512,
            ),
            admit_slo_factor=1.0,
        )
        again = run_scenario(
            "flash-crowd", cluster_model, hash_tokenizer, [weak], config,
            seed=7, rate_scale=3.0,
        )
        assert again.render() == fixed.render()
        assert again.to_json() == fixed.to_json()


class TestCooldown:
    def test_cooldown_spaces_actions(
        self, cluster_model, hash_tokenizer, weak_spec, fleet_config
    ):
        fleet = Fleet(cluster_model, hash_tokenizer, [weak_spec] * 3, fleet_config)
        scaler = Autoscaler(
            fleet,
            AutoscalePolicy(
                min_replicas=1, max_replicas=3, interval_ms=10.0, cooldown_ticks=2
            ),
        )
        for tick in range(1, 9):
            fleet.advance(tick * 10.0)
            scaler.tick(tick * 10.0)
        times = [e.time_ms for e in scaler.events]
        assert all(b - a >= 30.0 for a, b in zip(times, times[1:]))
