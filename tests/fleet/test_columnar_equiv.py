"""Differential equivalence suite: columnar engine vs event-loop analytic.

The columnar engine's whole contract is *byte-identical* reports — not
statistically close, identical.  Every test here renders both engines'
reports to their stable JSON and human-readable forms and compares the
bytes, across every scenario class x {autoscale on/off, failures on/off},
across the pure-Python sweep and the runtime-compiled C kernel, and
across every input form the runner accepts.
"""

import pytest

from repro.accel import AcceleratorConfig
from repro.fleet import (
    AutoscalePolicy,
    FailureEvent,
    ReplicaSpec,
    builtin_scenarios,
    native_available,
    run_scenario,
    run_scenario_columnar,
)
from repro.fleet.scenarios import SCENARIO_NAMES

AUTOSCALE = AutoscalePolicy(
    min_replicas=1, max_replicas=5, interval_ms=200.0, cooldown_ticks=2
)
FAILURES = (FailureEvent(replica_id=0, fail_ms=300.0, recover_ms=900.0),)


@pytest.fixture
def hetero_specs(weak_spec):
    """Two design points, so routing ties and projections are exercised."""
    strong = ReplicaSpec(
        accel_config=AcceleratorConfig(num_pus=4, num_pes=2, num_multipliers=8),
        name="strong",
    )
    return [weak_spec, strong]


def _both(scenario, cluster_model, hash_tokenizer, specs, fleet_config, **kw):
    ref = run_scenario(
        scenario, cluster_model, hash_tokenizer, specs, fleet_config,
        analytic=True, **kw,
    )
    got = run_scenario_columnar(
        scenario, cluster_model, hash_tokenizer, specs, fleet_config, **kw,
    )
    return ref, got


class TestScenarioMatrix:
    """Every scenario class x autoscale x failures: identical bytes."""

    @pytest.mark.parametrize("scenario", sorted(SCENARIO_NAMES))
    @pytest.mark.parametrize("autoscaled", [False, True], ids=["fixed", "autoscale"])
    @pytest.mark.parametrize("failing", [False, True], ids=["healthy", "failures"])
    def test_byte_identical(
        self, scenario, autoscaled, failing,
        cluster_model, hash_tokenizer, hetero_specs, fleet_config,
    ):
        ref, got = _both(
            scenario, cluster_model, hash_tokenizer, hetero_specs, fleet_config,
            autoscale=AUTOSCALE if autoscaled else None,
            scale_spec=hetero_specs[0] if autoscaled else None,
            failures=FAILURES if failing else (),
            seed=2, rate_scale=0.4, duration_scale=0.5,
        )
        assert got.to_json() == ref.to_json()
        assert got.render() == ref.render()


class TestSweepImplementations:
    """The C kernel and the pure-Python sweep are the same function."""

    def test_python_sweep_matches_event_loop(
        self, cluster_model, hash_tokenizer, hetero_specs, fleet_config
    ):
        ref = run_scenario(
            "flash-crowd", cluster_model, hash_tokenizer, hetero_specs,
            fleet_config, analytic=True, seed=4, rate_scale=0.5,
        )
        got = run_scenario_columnar(
            "flash-crowd", cluster_model, hash_tokenizer, hetero_specs,
            fleet_config, seed=4, rate_scale=0.5, native=False,
        )
        assert got.to_json() == ref.to_json()

    @pytest.mark.skipif(not native_available(), reason="no C compiler")
    def test_native_kernel_matches_python_sweep(
        self, cluster_model, hash_tokenizer, hetero_specs, fleet_config
    ):
        kw = dict(seed=4, rate_scale=0.6)
        with_native = run_scenario_columnar(
            "multi-tenant", cluster_model, hash_tokenizer, hetero_specs,
            fleet_config, native=True, **kw,
        )
        without = run_scenario_columnar(
            "multi-tenant", cluster_model, hash_tokenizer, hetero_specs,
            fleet_config, native=False, **kw,
        )
        assert with_native.to_json() == without.to_json()


class TestInputForms:
    """Name, Scenario, ColumnarTrace, and request-list inputs all agree."""

    def test_columnar_trace_input(
        self, cluster_model, hash_tokenizer, hetero_specs, fleet_config
    ):
        scen = builtin_scenarios()["diurnal"]
        cols = scen.generate_columns(seed=3, rate_scale=0.5)
        by_name = run_scenario_columnar(
            "diurnal", cluster_model, hash_tokenizer, hetero_specs,
            fleet_config, seed=3, rate_scale=0.5,
        )
        by_cols = run_scenario_columnar(
            cols, cluster_model, hash_tokenizer, hetero_specs, fleet_config,
        )
        assert by_cols.to_json() == by_name.to_json()
        # the prebuilt trace carries its own generation seed
        assert by_cols.seed == 3

    def test_request_list_input(
        self, cluster_model, hash_tokenizer, hetero_specs, fleet_config
    ):
        trace = builtin_scenarios()["steady"].generate(seed=5, rate_scale=0.4)
        ref = run_scenario(
            trace, cluster_model, hash_tokenizer, hetero_specs, fleet_config,
            analytic=True,
        )
        got = run_scenario_columnar(
            trace, cluster_model, hash_tokenizer, hetero_specs, fleet_config,
        )
        assert got.scenario == "custom-trace"
        assert got.to_json() == ref.to_json()

    def test_empty_trace(
        self, cluster_model, hash_tokenizer, hetero_specs, fleet_config
    ):
        ref = run_scenario(
            [], cluster_model, hash_tokenizer, hetero_specs, fleet_config,
            analytic=True,
        )
        got = run_scenario_columnar(
            [], cluster_model, hash_tokenizer, hetero_specs, fleet_config,
        )
        assert got.stats.submitted == 0
        assert got.to_json() == ref.to_json()
