"""Scenario generator: determinism, rate shapes, tenant mixes."""

import numpy as np
import pytest

from repro.fleet import SCENARIO_NAMES, Scenario, TenantSpec, builtin_scenarios


class TestCatalog:
    def test_five_builtins(self):
        assert SCENARIO_NAMES == (
            "diurnal", "flash-crowd", "multi-tenant", "ramp", "steady",
        )

    @pytest.mark.parametrize("name", SCENARIO_NAMES)
    def test_every_builtin_generates(self, name):
        trace = builtin_scenarios()[name].generate(seed=3, rate_scale=0.3)
        assert trace, f"{name} generated an empty trace at rate_scale=0.3"
        arrivals = [r.arrival_ms for r in trace]
        assert arrivals == sorted(arrivals)
        assert all(r.slo_ms > 0 and r.text_a for r in trace)

    def test_same_seed_identical_trace(self):
        scenario = builtin_scenarios()["multi-tenant"]
        assert scenario.generate(seed=11) == scenario.generate(seed=11)

    def test_different_seeds_differ(self):
        scenario = builtin_scenarios()["steady"]
        assert scenario.generate(seed=1) != scenario.generate(seed=2)

    def test_scenarios_decorrelated_at_equal_seed(self):
        """Two scenarios with the same seed must not replay the same
        arrival sequence (the name is folded into the rng stream)."""
        steady = builtin_scenarios()["steady"].generate(seed=5)
        diurnal = builtin_scenarios()["diurnal"].generate(seed=5)
        assert [r.arrival_ms for r in steady[:10]] != [
            r.arrival_ms for r in diurnal[:10]
        ]


class TestRateShapes:
    def test_flash_crowd_bursts(self):
        scenario = builtin_scenarios()["flash-crowd"]
        trace = scenario.generate(seed=0)
        arrivals = np.array([r.arrival_ms for r in trace])
        window = scenario.flash_end_ms - scenario.flash_start_ms
        in_burst = (
            (arrivals >= scenario.flash_start_ms) & (arrivals < scenario.flash_end_ms)
        ).sum()
        out = len(arrivals) - in_burst
        burst_rate = in_burst / window
        base_rate = out / (scenario.duration_ms - window)
        assert burst_rate > 4 * base_rate

    def test_ramp_rate_increases(self):
        trace = builtin_scenarios()["ramp"].generate(seed=0)
        arrivals = np.array([r.arrival_ms for r in trace])
        duration = builtin_scenarios()["ramp"].duration_ms
        first_half = (arrivals < duration / 2).sum()
        second_half = (arrivals >= duration / 2).sum()
        assert second_half > 1.5 * first_half

    def test_diurnal_peaks_and_troughs(self):
        scenario = builtin_scenarios()["diurnal"]
        # rate curve itself: peak at period/4, trough at 3*period/4
        peak = scenario.rate_rps(scenario.diurnal_period_ms / 4)
        trough = scenario.rate_rps(3 * scenario.diurnal_period_ms / 4)
        assert peak == pytest.approx(
            scenario.base_rate_rps * (1 + scenario.diurnal_amplitude)
        )
        assert trough == pytest.approx(
            scenario.base_rate_rps * (1 - scenario.diurnal_amplitude)
        )

    def test_rate_scale_scales_volume(self):
        scenario = builtin_scenarios()["steady"]
        small = len(scenario.generate(seed=4, rate_scale=0.5))
        large = len(scenario.generate(seed=4, rate_scale=2.0))
        assert large > 2 * small

    def test_duration_scale_stretches_flash_window(self):
        scenario = builtin_scenarios()["flash-crowd"]
        trace = scenario.generate(seed=0, duration_scale=2.0)
        arrivals = np.array([r.arrival_ms for r in trace])
        assert arrivals.max() > scenario.duration_ms  # trace extends
        # burst window stretches with the duration: dense region near 2x
        in_burst = (
            (arrivals >= 2 * scenario.flash_start_ms)
            & (arrivals < 2 * scenario.flash_end_ms)
        ).sum()
        assert in_burst > len(arrivals) * 0.4


class TestTenants:
    def test_multi_tenant_shares_and_slos(self):
        scenario = builtin_scenarios()["multi-tenant"]
        trace = scenario.generate(seed=9)
        by_tenant = {}
        for r in trace:
            by_tenant.setdefault(r.tenant, []).append(r)
        assert set(by_tenant) == {"interactive", "standard", "batch"}
        assert len(by_tenant["interactive"]) > len(by_tenant["batch"])
        slos = {t: rs[0].slo_ms for t, rs in by_tenant.items()}
        assert slos["interactive"] < slos["standard"] < slos["batch"]

    def test_tenant_lengths_respect_spec(self):
        scenario = builtin_scenarios()["multi-tenant"]
        trace = scenario.generate(seed=9)
        for r in trace:
            spec = next(t for t in scenario.tenants if t.name == r.tenant)
            words = len(r.text_a.split())
            assert spec.min_words <= words <= spec.max_words

    def test_tenant_pools_are_finite(self):
        """Texts repeat (that is what the tokenization caches exploit)."""
        scenario = builtin_scenarios()["steady"]
        trace = scenario.generate(seed=2)
        distinct = {r.text_a for r in trace}
        assert len(distinct) <= scenario.tenants[0].pool_size


class TestValidation:
    def test_bad_profile_rejected(self):
        with pytest.raises(ValueError):
            Scenario(name="x", description="", duration_ms=10, base_rate_rps=1,
                     profile="sawtooth")

    def test_flash_window_must_fit(self):
        with pytest.raises(ValueError):
            Scenario(name="x", description="", duration_ms=10, base_rate_rps=1,
                     profile="flash", flash_start_ms=5, flash_end_ms=20,
                     flash_multiplier=2)

    def test_tenant_validation(self):
        with pytest.raises(ValueError):
            TenantSpec(name="t", share=0.0)
        with pytest.raises(ValueError):
            TenantSpec(name="t", min_words=5, max_words=3)

    def test_bad_scales_rejected(self):
        scenario = builtin_scenarios()["steady"]
        with pytest.raises(ValueError):
            scenario.generate(seed=0, rate_scale=0.0)
        with pytest.raises(ValueError):
            scenario.generate(seed=0, duration_scale=-1.0)


class TestMallocTuning:
    """The giant-trace allocator knob stays gated and best-effort."""

    def test_small_traces_never_tune(self, monkeypatch):
        from repro.fleet import scenarios as S

        monkeypatch.setattr(S, "_malloc_tuned", False)
        S._tune_malloc_for_giant_traces(S._GIANT_TRACE_CANDIDATES - 1)
        assert S._malloc_tuned is False

    def test_giant_trace_tunes_once_and_survives_missing_libc(self, monkeypatch):
        from repro.fleet import scenarios as S

        monkeypatch.setattr(S, "_malloc_tuned", False)
        # Simulate a platform without a loadable libc: must not raise.
        import ctypes

        def boom(*a, **k):
            raise OSError("no libc here")

        monkeypatch.setattr(ctypes, "CDLL", boom)
        S._tune_malloc_for_giant_traces(S._GIANT_TRACE_CANDIDATES)
        assert S._malloc_tuned is True
        # Second call is a no-op (one-way switch, no repeated work).
        S._tune_malloc_for_giant_traces(S._GIANT_TRACE_CANDIDATES)
        assert S._malloc_tuned is True


class TestRngStreamEquivalence:
    """Pins the numpy RNG identities the columnar generator's fast paths
    lean on.  ``generate_columns`` replaces three historical draws with
    cheaper calls that must consume the *identical* stream: if any of
    these stop holding on a numpy upgrade, traces silently change and
    every byte-exactness contract downstream breaks — so they are pinned
    here, not assumed."""

    def test_random_equals_uniform(self):
        """Generator.random(n) == Generator.uniform(size=n), bit for bit."""
        import numpy as np

        a = np.random.default_rng(5).random(10_000)
        b = np.random.default_rng(5).uniform(size=10_000)
        assert (a == b).all()

    def test_chunked_random_equals_one_shot(self):
        """Filling a scratch buffer chunk by chunk draws the same doubles
        (and leaves the stream at the same position) as one big call."""
        import numpy as np

        one_shot = np.random.default_rng(9).random(10_000)
        rng = np.random.default_rng(9)
        buf = np.empty(1024)
        chunks = []
        pos = 0
        while pos < 10_000:
            m = min(1024, 10_000 - pos)
            rng.random(out=buf[:m])
            chunks.append(buf[:m].copy())
            pos += m
        assert (np.concatenate(chunks) == one_shot).all()
        follow = np.random.default_rng(9)
        follow.random(10_000)
        assert rng.integers(1 << 62) == follow.integers(1 << 62)

    def test_single_outcome_choice_equals_random_burn(self):
        """choice(1, size=n, p=[1.0]) returns zeros and consumes exactly
        n doubles — so burning n doubles + zeros() is a pure fast path."""
        import numpy as np

        rng_choice = np.random.default_rng(13)
        picks = rng_choice.choice(1, size=500, p=[1.0])
        assert picks.dtype == np.int64
        assert not picks.any()
        rng_burn = np.random.default_rng(13)
        rng_burn.random(500)
        # both streams must now be at the same position
        assert rng_choice.integers(1 << 62) == rng_burn.integers(1 << 62)

    def test_single_tenant_trace_unchanged_by_fast_paths(self):
        """End to end: a single-tenant scenario's trace is identical to
        the naive draw order (choice + masked per-tenant scatter)."""
        import numpy as np

        scenario = builtin_scenarios()["flash-crowd"]
        assert len(scenario.tenants) == 1
        cols = scenario.generate_columns(seed=4, rate_scale=0.5)
        # replay the historical draw sequence by hand
        from repro.fleet.scenarios import _stable_hash

        rng = np.random.default_rng([4, _stable_hash(scenario.name)])
        peak_per_ms = scenario.peak_rate_rps() * 0.5 / 1000.0
        duration = scenario.duration_ms
        chunk = int(duration * peak_per_ms * 1.05) + 64
        blocks = [rng.exponential(1.0 / peak_per_ms, size=chunk)]
        total = float(blocks[0].sum())
        while total < duration:
            block = rng.exponential(1.0 / peak_per_ms, size=chunk)
            blocks.append(block)
            total += float(block.sum())
        times = np.cumsum(np.concatenate(blocks))
        times = times[: int(np.searchsorted(times, duration, side="left"))]
        uniforms = rng.uniform(size=times.shape[0])
        rates = scenario.rate_rps_array(times) * (0.5 / 1000.0)
        arrival = times[uniforms * peak_per_ms <= rates]
        count = arrival.shape[0]
        tenant_idx = rng.choice(1, size=count, p=[1.0])
        draw = np.zeros(count, dtype=np.int64)
        mine = tenant_idx == 0
        draw[mine] = rng.integers(scenario.tenants[0].pool_size, size=int(mine.sum()))
        assert (cols.arrival_ms == arrival).all()
        assert (cols.tenant_idx == tenant_idx).all()
        assert (cols.draw == draw).all()
