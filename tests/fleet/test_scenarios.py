"""Scenario generator: determinism, rate shapes, tenant mixes."""

import numpy as np
import pytest

from repro.fleet import SCENARIO_NAMES, Scenario, TenantSpec, builtin_scenarios


class TestCatalog:
    def test_five_builtins(self):
        assert SCENARIO_NAMES == (
            "diurnal", "flash-crowd", "multi-tenant", "ramp", "steady",
        )

    @pytest.mark.parametrize("name", SCENARIO_NAMES)
    def test_every_builtin_generates(self, name):
        trace = builtin_scenarios()[name].generate(seed=3, rate_scale=0.3)
        assert trace, f"{name} generated an empty trace at rate_scale=0.3"
        arrivals = [r.arrival_ms for r in trace]
        assert arrivals == sorted(arrivals)
        assert all(r.slo_ms > 0 and r.text_a for r in trace)

    def test_same_seed_identical_trace(self):
        scenario = builtin_scenarios()["multi-tenant"]
        assert scenario.generate(seed=11) == scenario.generate(seed=11)

    def test_different_seeds_differ(self):
        scenario = builtin_scenarios()["steady"]
        assert scenario.generate(seed=1) != scenario.generate(seed=2)

    def test_scenarios_decorrelated_at_equal_seed(self):
        """Two scenarios with the same seed must not replay the same
        arrival sequence (the name is folded into the rng stream)."""
        steady = builtin_scenarios()["steady"].generate(seed=5)
        diurnal = builtin_scenarios()["diurnal"].generate(seed=5)
        assert [r.arrival_ms for r in steady[:10]] != [
            r.arrival_ms for r in diurnal[:10]
        ]


class TestRateShapes:
    def test_flash_crowd_bursts(self):
        scenario = builtin_scenarios()["flash-crowd"]
        trace = scenario.generate(seed=0)
        arrivals = np.array([r.arrival_ms for r in trace])
        window = scenario.flash_end_ms - scenario.flash_start_ms
        in_burst = (
            (arrivals >= scenario.flash_start_ms) & (arrivals < scenario.flash_end_ms)
        ).sum()
        out = len(arrivals) - in_burst
        burst_rate = in_burst / window
        base_rate = out / (scenario.duration_ms - window)
        assert burst_rate > 4 * base_rate

    def test_ramp_rate_increases(self):
        trace = builtin_scenarios()["ramp"].generate(seed=0)
        arrivals = np.array([r.arrival_ms for r in trace])
        duration = builtin_scenarios()["ramp"].duration_ms
        first_half = (arrivals < duration / 2).sum()
        second_half = (arrivals >= duration / 2).sum()
        assert second_half > 1.5 * first_half

    def test_diurnal_peaks_and_troughs(self):
        scenario = builtin_scenarios()["diurnal"]
        # rate curve itself: peak at period/4, trough at 3*period/4
        peak = scenario.rate_rps(scenario.diurnal_period_ms / 4)
        trough = scenario.rate_rps(3 * scenario.diurnal_period_ms / 4)
        assert peak == pytest.approx(
            scenario.base_rate_rps * (1 + scenario.diurnal_amplitude)
        )
        assert trough == pytest.approx(
            scenario.base_rate_rps * (1 - scenario.diurnal_amplitude)
        )

    def test_rate_scale_scales_volume(self):
        scenario = builtin_scenarios()["steady"]
        small = len(scenario.generate(seed=4, rate_scale=0.5))
        large = len(scenario.generate(seed=4, rate_scale=2.0))
        assert large > 2 * small

    def test_duration_scale_stretches_flash_window(self):
        scenario = builtin_scenarios()["flash-crowd"]
        trace = scenario.generate(seed=0, duration_scale=2.0)
        arrivals = np.array([r.arrival_ms for r in trace])
        assert arrivals.max() > scenario.duration_ms  # trace extends
        # burst window stretches with the duration: dense region near 2x
        in_burst = (
            (arrivals >= 2 * scenario.flash_start_ms)
            & (arrivals < 2 * scenario.flash_end_ms)
        ).sum()
        assert in_burst > len(arrivals) * 0.4


class TestTenants:
    def test_multi_tenant_shares_and_slos(self):
        scenario = builtin_scenarios()["multi-tenant"]
        trace = scenario.generate(seed=9)
        by_tenant = {}
        for r in trace:
            by_tenant.setdefault(r.tenant, []).append(r)
        assert set(by_tenant) == {"interactive", "standard", "batch"}
        assert len(by_tenant["interactive"]) > len(by_tenant["batch"])
        slos = {t: rs[0].slo_ms for t, rs in by_tenant.items()}
        assert slos["interactive"] < slos["standard"] < slos["batch"]

    def test_tenant_lengths_respect_spec(self):
        scenario = builtin_scenarios()["multi-tenant"]
        trace = scenario.generate(seed=9)
        for r in trace:
            spec = next(t for t in scenario.tenants if t.name == r.tenant)
            words = len(r.text_a.split())
            assert spec.min_words <= words <= spec.max_words

    def test_tenant_pools_are_finite(self):
        """Texts repeat (that is what the tokenization caches exploit)."""
        scenario = builtin_scenarios()["steady"]
        trace = scenario.generate(seed=2)
        distinct = {r.text_a for r in trace}
        assert len(distinct) <= scenario.tenants[0].pool_size


class TestValidation:
    def test_bad_profile_rejected(self):
        with pytest.raises(ValueError):
            Scenario(name="x", description="", duration_ms=10, base_rate_rps=1,
                     profile="sawtooth")

    def test_flash_window_must_fit(self):
        with pytest.raises(ValueError):
            Scenario(name="x", description="", duration_ms=10, base_rate_rps=1,
                     profile="flash", flash_start_ms=5, flash_end_ms=20,
                     flash_multiplier=2)

    def test_tenant_validation(self):
        with pytest.raises(ValueError):
            TenantSpec(name="t", share=0.0)
        with pytest.raises(ValueError):
            TenantSpec(name="t", min_words=5, max_words=3)

    def test_bad_scales_rejected(self):
        scenario = builtin_scenarios()["steady"]
        with pytest.raises(ValueError):
            scenario.generate(seed=0, rate_scale=0.0)
        with pytest.raises(ValueError):
            scenario.generate(seed=0, duration_scale=-1.0)
