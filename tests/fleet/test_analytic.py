"""Analytic (latency-only) execution mode: the equivalence contract.

The tentpole claim is that analytic mode changes *nothing* except host
compute: every timing, SLO, and stats quantity derives from the
accelerator simulator's schedule in both modes, so an analytic
:class:`~repro.fleet.runner.FleetReport` must be byte-identical to the
executed one for the same seed/scenario/fleet.  These tests pin that
contract at the fleet layer, the engine layer, and the CLI.
"""

import numpy as np
import pytest

from repro.cli import main
from repro.fleet import (
    AutoscalePolicy,
    FailureEvent,
    FleetConfig,
    ReplicaSpec,
    run_scenario,
)
from repro.serve import ServingConfig, ServingEngine, TraceRequest


class TestFleetEquivalence:
    def _pair(self, cluster_model, hash_tokenizer, specs, fleet_config, **kwargs):
        executed = run_scenario(
            "steady", cluster_model, hash_tokenizer, specs, fleet_config, **kwargs
        )
        analytic = run_scenario(
            "steady", cluster_model, hash_tokenizer, specs, fleet_config,
            analytic=True, **kwargs
        )
        return executed, analytic

    def test_reports_byte_identical(
        self, cluster_model, hash_tokenizer, weak_spec, fleet_config
    ):
        executed, analytic = self._pair(
            cluster_model, hash_tokenizer, [weak_spec] * 2, fleet_config,
            seed=3, rate_scale=0.5,
        )
        assert executed.to_json() == analytic.to_json()
        assert executed.render() == analytic.render()

    def test_equivalence_under_autoscale_and_failures(
        self, cluster_model, hash_tokenizer, weak_spec, fleet_config
    ):
        """The hard case: scaling decisions and failover both read engine
        state, so any analytic-mode drift would compound into different
        cluster decisions — byte equality proves there is none."""
        kwargs = dict(
            autoscale=AutoscalePolicy(min_replicas=1, max_replicas=4, interval_ms=15.0),
            failures=[FailureEvent(replica_id=0, fail_ms=60.0, recover_ms=150.0)],
            seed=5,
            rate_scale=1.5,
        )
        executed = run_scenario(
            "flash-crowd", cluster_model, hash_tokenizer, [weak_spec] * 2,
            fleet_config, **kwargs
        )
        analytic = run_scenario(
            "flash-crowd", cluster_model, hash_tokenizer, [weak_spec] * 2,
            fleet_config, analytic=True, **kwargs
        )
        assert executed.to_json() == analytic.to_json()

    def test_analytic_via_serving_config(
        self, cluster_model, hash_tokenizer, weak_spec, fleet_config
    ):
        """``ServingConfig(analytic=True)`` is the primitive the runner
        flag threads down to; setting it directly is equivalent."""
        from dataclasses import replace

        direct = run_scenario(
            "steady", cluster_model, hash_tokenizer, [weak_spec],
            replace(fleet_config, serving=replace(fleet_config.serving, analytic=True)),
            seed=3, rate_scale=0.3,
        )
        via_flag = run_scenario(
            "steady", cluster_model, hash_tokenizer, [weak_spec], fleet_config,
            seed=3, rate_scale=0.3, analytic=True,
        )
        assert direct.to_json() == via_flag.to_json()

    def test_analytic_is_deterministic(
        self, cluster_model, hash_tokenizer, weak_spec, fleet_config
    ):
        a = run_scenario(
            "multi-tenant", cluster_model, hash_tokenizer, [weak_spec] * 2,
            fleet_config, seed=9, rate_scale=0.5, analytic=True,
        )
        b = run_scenario(
            "multi-tenant", cluster_model, hash_tokenizer, [weak_spec] * 2,
            fleet_config, seed=9, rate_scale=0.5, analytic=True,
        )
        assert a.to_json() == b.to_json()


class TestEngineAnalytic:
    @pytest.fixture()
    def trace(self):
        return [
            TraceRequest(text_a=f"request number {i % 5}", text_b=None, arrival_ms=2.0 * i)
            for i in range(24)
        ]

    def _engines(self, cluster_model, hash_tokenizer):
        def build(analytic):
            return ServingEngine(
                cluster_model,
                hash_tokenizer,
                ServingConfig(
                    max_batch_size=4,
                    max_wait_ms=5.0,
                    buckets=(16, 32, 64),
                    cache_capacity=64,
                    slo_ms=50.0,
                    analytic=analytic,
                ),
            )
        return build(False), build(True)

    def test_timing_fields_identical(self, cluster_model, hash_tokenizer, trace):
        executed, analytic = self._engines(cluster_model, hash_tokenizer)
        ex_results = executed.run_trace(trace)
        an_results = analytic.run_trace(trace)
        assert len(ex_results) == len(an_results)
        for ex, an in zip(ex_results, an_results):
            for field in (
                "request_id", "arrival_ms", "start_ms", "finish_ms", "queue_ms",
                "service_ms", "latency_ms", "device_id", "batch_id", "batch_size",
                "bucket", "length", "cache_hit", "slo_met",
            ):
                assert getattr(ex, field) == getattr(an, field), field

    def test_stats_identical(self, cluster_model, hash_tokenizer, trace):
        executed, analytic = self._engines(cluster_model, hash_tokenizer)
        executed.run_trace(trace)
        analytic.run_trace(trace)
        assert executed.stats() == analytic.stats()

    def test_analytic_results_carry_no_logits(
        self, cluster_model, hash_tokenizer, trace
    ):
        _, analytic = self._engines(cluster_model, hash_tokenizer)
        for result in analytic.run_trace(trace):
            assert result.prediction == -1
            assert result.logits.size == 0

    def test_executed_results_still_have_logits(
        self, cluster_model, hash_tokenizer, trace
    ):
        executed, _ = self._engines(cluster_model, hash_tokenizer)
        for result in executed.run_trace(trace):
            assert result.logits.size > 0
            assert result.prediction == int(np.argmax(result.logits))


class TestCliAnalytic:
    def test_loadtest_analytic_report_matches_executed(self, capsys):
        args = [
            "loadtest", "--replicas", "1", "--rate-scale", "0.25",
            "--seed", "11", "--scenario", "steady",
        ]
        assert main(args) == 0
        executed_out = capsys.readouterr().out
        assert main(args + ["--analytic"]) == 0
        analytic_out = capsys.readouterr().out
        assert analytic_out == executed_out
