"""Property-based shard tests: any split of the trace, the same bytes.

Sharding is a pure checkpointing of one globally ordered event sequence,
so the merged report must be bit-exact under *any* shard count, any
scenario, any seed — including when requests are still queued (in flight)
as the clock crosses a window boundary, and when a window is degenerate
(no arrivals at all).  Hypothesis drives seeded randomized scenarios
through shard counts 1, 2, 5, and 7; the merge layer's bookkeeping
(drop / double-count detection, empty merges) is pinned directly.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.fleet import (
    FailureEvent,
    FleetRequest,
    ShardPartial,
    merge_shard_partials,
    run_scenario_columnar,
)
from repro.fleet.columnar import shard_windows, _prepare

SHARD_COUNTS = (1, 2, 5, 7)


class TestShardInvariance:
    # the fixtures are immutable value objects, so not resetting them
    # between generated inputs is safe
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(
        scenario=st.sampled_from(
            ["steady", "diurnal", "flash-crowd", "ramp", "multi-tenant"]
        ),
        seed=st.integers(min_value=0, max_value=999),
        rate_scale=st.floats(min_value=0.05, max_value=0.8),
    )
    def test_shard_count_invariance(
        self, scenario, seed, rate_scale,
        cluster_model, hash_tokenizer, weak_spec, fleet_config,
    ):
        """1, 2, 5, and 7 shards merge to the same bytes."""
        reports = [
            run_scenario_columnar(
                scenario, cluster_model, hash_tokenizer, [weak_spec] * 2,
                fleet_config, seed=seed, rate_scale=rate_scale,
                duration_scale=0.4, shards=shards,
            )
            for shards in SHARD_COUNTS
        ]
        baseline = reports[0].to_json()
        for report in reports[1:]:
            assert report.to_json() == baseline
        # nothing dropped, nothing double-counted
        stats = reports[0].stats
        assert stats.completed + stats.shed == stats.submitted

    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(seed=st.integers(min_value=0, max_value=99))
    def test_shards_with_autoscale_and_failures(
        self, seed, cluster_model, hash_tokenizer, weak_spec, fleet_config
    ):
        """Control events (ticks, failures) land in the right windows."""
        from repro.fleet import AutoscalePolicy

        kw = dict(
            autoscale=AutoscalePolicy(
                min_replicas=1, max_replicas=4, interval_ms=150.0
            ),
            scale_spec=weak_spec,
            failures=(FailureEvent(replica_id=0, fail_ms=200.0, recover_ms=700.0),),
            seed=seed, rate_scale=0.4, duration_scale=0.5,
        )
        reports = [
            run_scenario_columnar(
                "flash-crowd", cluster_model, hash_tokenizer, [weak_spec] * 2,
                fleet_config, shards=shards, **kw,
            )
            for shards in SHARD_COUNTS
        ]
        baseline = reports[0].to_json()
        for report in reports[1:]:
            assert report.to_json() == baseline

    def test_in_flight_across_boundary(
        self, cluster_model, hash_tokenizer, weak_spec, fleet_config
    ):
        """Requests queued as the clock crosses a window edge are neither
        dropped nor double-counted — the shard state hands them across."""
        # A dense burst right before the midpoint of the trace: on a weak
        # replica these are still queued (in flight) when a 2-shard split
        # cuts the window at half the duration.
        trace = [
            FleetRequest(
                arrival_ms=490.0 + i, tenant="default", slo_ms=10_000.0,
                text_a="payload " * 3, text_b=None,
            )
            for i in range(32)
        ] + [
            FleetRequest(
                arrival_ms=1000.0, tenant="default", slo_ms=10_000.0,
                text_a="tail", text_b=None,
            )
        ]
        single = run_scenario_columnar(
            trace, cluster_model, hash_tokenizer, [weak_spec], fleet_config,
        )
        for shards in (2, 5, 7):
            split = run_scenario_columnar(
                trace, cluster_model, hash_tokenizer, [weak_spec],
                fleet_config, shards=shards,
            )
            assert split.to_json() == single.to_json()
        assert single.stats.submitted == 33
        assert single.stats.completed + single.stats.shed == 33

    def test_windows_partition_the_arrivals(
        self, cluster_model, hash_tokenizer, weak_spec, fleet_config
    ):
        """Window [alo, ahi) ranges tile 0..n with no gap or overlap."""
        prep = _prepare(
            "diurnal", cluster_model, hash_tokenizer, [weak_spec],
            fleet_config, None, None, (), 3, 0.5, 0.5,
        )
        for shards in SHARD_COUNTS + (3, 11):
            windows = shard_windows(prep, shards)
            assert len(windows) == shards
            pos = 0
            for alo, ahi, _events in windows:
                assert alo == pos
                assert ahi >= alo
                pos = ahi
            assert pos == prep.num_requests

    def test_process_mode_same_bytes(
        self, cluster_model, hash_tokenizer, weak_spec, fleet_config
    ):
        in_process = run_scenario_columnar(
            "steady", cluster_model, hash_tokenizer, [weak_spec] * 2,
            fleet_config, seed=6, rate_scale=0.5, shards=3,
        )
        forked = run_scenario_columnar(
            "steady", cluster_model, hash_tokenizer, [weak_spec] * 2,
            fleet_config, seed=6, rate_scale=0.5, shards=3,
            shard_processes=True,
        )
        assert forked.to_json() == in_process.to_json()


class TestMergeShardPartials:
    def _partial(self, done=(), fins=(), shed=(), codes=()):
        return ShardPartial(
            done_idx=np.asarray(done, dtype=np.int64),
            done_fin=np.asarray(fins, dtype=np.float64),
            shed_idx=np.asarray(shed, dtype=np.int64),
            shed_code=np.asarray(codes, dtype=np.uint8),
        )

    def test_empty_partial_list(self):
        """No shards at all merge to all-zero columns (explicitly legal)."""
        finish, shed = merge_shard_partials([], 4)
        assert finish.tolist() == [0.0] * 4
        assert shed.tolist() == [0] * 4

    def test_empty_and_degenerate_shards(self):
        """Empty, single-request, and all-shed shards merge cleanly."""
        parts = [
            self._partial(),                                   # empty shard
            self._partial(done=[2], fins=[50.0]),              # single request
            self._partial(shed=[0, 1], codes=[1, 2]),          # all shed
        ]
        finish, shed = merge_shard_partials(parts, 3)
        assert finish.tolist() == [0.0, 0.0, 50.0]
        assert shed.tolist() == [1, 2, 0]

    def test_double_count_rejected(self):
        """The same request claimed by two shards is an error, not a wish."""
        parts = [
            self._partial(done=[1], fins=[10.0]),
            self._partial(shed=[1], codes=[1]),
        ]
        with pytest.raises(ValueError, match="double-counted"):
            merge_shard_partials(parts, 3)

    def test_double_count_within_one_shard_rejected(self):
        parts = [self._partial(done=[2, 2], fins=[10.0, 11.0])]
        with pytest.raises(ValueError, match="double-counted"):
            merge_shard_partials(parts, 3)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="out-of-range"):
            merge_shard_partials([self._partial(done=[3], fins=[1.0])], 3)
        with pytest.raises(ValueError, match="out-of-range"):
            merge_shard_partials([self._partial(shed=[-1], codes=[1])], 3)

    def test_prefix_merge_leaves_unclaimed_rows_zero(self):
        """Merging a prefix of shards is legal: unclaimed rows stay 0."""
        finish, shed = merge_shard_partials(
            [self._partial(done=[0], fins=[5.0])], 3
        )
        assert finish.tolist() == [5.0, 0.0, 0.0]
        assert shed.tolist() == [0, 0, 0]
