"""Chaos & resilience subsystem: plans, policies, and byte-exact engines.

Three layers under test:

- the chaos primitives themselves (plan parsing/validation, the seeded
  backoff hash, the retry budget, the circuit-breaker state machine,
  the brownout ladder);
- the lifecycle contracts both engines share (recovery of a replica the
  autoscaler scaled away is a silent no-op; failure plans racing
  autoscaler downscale resolve identically);
- the differential matrix: every chaos primitive, replayed through the
  event-loop and columnar engines, must produce *byte-identical*
  reports and observability streams — the same contract the rest of
  the columnar suite pins for plain runs.
"""

import json
import math

import pytest

from repro.accel import AcceleratorConfig
from repro.fleet import (
    AutoscalePolicy,
    BrownoutLadder,
    ChaosPlan,
    CircuitBreaker,
    FailureEvent,
    Fleet,
    GrayWindow,
    ReplicaSpec,
    ResiliencePolicy,
    RetryBudget,
    ZoneOutage,
    backoff_delay_ms,
    chaos_plan_from_dict,
    load_chaos_plan,
    run_scenario,
    run_scenario_columnar,
)
from repro.fleet.chaos import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
)

AUTOSCALE = AutoscalePolicy(
    min_replicas=1, max_replicas=5, interval_ms=100.0, cooldown_ticks=1
)

# The drill plan exercises every chaos primitive: a gray window, a
# correlated zone outage, and a direct fail-stop with recovery.
PLAN = ChaosPlan(
    name="drill",
    zones=(("east", (0,)), ("west", (1,))),
    grays=(GrayWindow(replica_id=1, start_ms=40.0, end_ms=250.0, slowdown=4.0),),
    outages=(ZoneOutage(zone="east", at_ms=80.0, recover_ms=200.0),),
    failures=(FailureEvent(replica_id=1, fail_ms=400.0, recover_ms=450.0),),
)

# Every resilience mechanism on at once, tuned hot enough that each one
# actually fires against the drill plan at the test's traffic rate.
FULL_POLICY = ResiliencePolicy(
    max_retries=2,
    backoff_base_ms=3.0,
    backoff_jitter=0.5,
    retry_budget_ratio=1.0,
    retry_budget_burst=20.0,
    hedge=True,
    hedge_factor=0.4,
    timeout_ms=400.0,
    breaker=True,
    breaker_straggle_factor=2.0,
    breaker_window=6,
    breaker_threshold=0.5,
    breaker_min_samples=3,
    breaker_open_ms=30.0,
    breaker_probes=2,
    brownout=True,
    brownout_levels=(1.0, 2.0, 4.0),
    brownout_dwell_ms=10.0,
)


@pytest.fixture
def hetero_specs(weak_spec):
    strong = ReplicaSpec(
        accel_config=AcceleratorConfig(num_pus=4, num_pes=2, num_multipliers=8),
        name="strong",
    )
    return [weak_spec, strong]


# ----------------------------------------------------------------------
# plan parsing and validation
# ----------------------------------------------------------------------
class TestChaosPlanParsing:
    DOC = {
        "name": "rack-trouble",
        "zones": {"rack0": [0, 1], "rack1": [2]},
        "events": [
            {"kind": "fail", "replica": 0, "at_ms": 100.0, "recover_ms": 300.0},
            {"kind": "gray", "replica": 1, "start_ms": 50.0, "end_ms": 150.0,
             "slowdown": 3.0},
            {"kind": "zone", "zone": "rack0", "at_ms": 200.0, "recover_ms": 400.0},
        ],
    }

    def test_round_trip(self):
        plan = chaos_plan_from_dict(self.DOC)
        assert plan.name == "rack-trouble"
        assert plan.zone_map() == {"rack0": (0, 1), "rack1": (2,)}
        assert plan.grays[0].slowdown == 3.0
        assert plan.outages[0].zone == "rack0"

    def test_zone_outage_expands_to_member_failures(self):
        events = chaos_plan_from_dict(self.DOC).failure_events()
        assert isinstance(events, tuple)
        # 1 direct fail + 2 rack0 members
        assert len(events) == 3
        zone_fails = [e for e in events if e.fail_ms == 200.0]
        assert sorted(e.replica_id for e in zone_fails) == [0, 1]
        assert all(e.recover_ms == 400.0 for e in zone_fails)

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(self.DOC))
        assert load_chaos_plan(str(path)).name == "rack-trouble"

    def test_invalid_json_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{nope")
        with pytest.raises(ValueError, match="invalid JSON"):
            load_chaos_plan(str(path))

    def test_unknown_top_level_key(self):
        with pytest.raises(ValueError, match="unknown chaos plan keys"):
            chaos_plan_from_dict({"name": "x", "surprise": 1})

    def test_unknown_event_kind(self):
        with pytest.raises(ValueError, match="unknown chaos event kind"):
            chaos_plan_from_dict({"events": [{"kind": "meteor"}]})

    def test_missing_event_field(self):
        with pytest.raises(ValueError, match="missing field"):
            chaos_plan_from_dict({"events": [{"kind": "fail", "at_ms": 1.0}]})

    @pytest.mark.parametrize("bad_time", [float("nan"), float("inf"), -1.0])
    def test_non_finite_and_negative_times_rejected(self, bad_time):
        with pytest.raises(ValueError):
            chaos_plan_from_dict(
                {"events": [{"kind": "fail", "replica": 0, "at_ms": bad_time}]}
            )

    def test_recover_before_fail_rejected(self):
        with pytest.raises(ValueError, match="recover_ms"):
            chaos_plan_from_dict(
                {"events": [
                    {"kind": "fail", "replica": 0, "at_ms": 100.0, "recover_ms": 50.0}
                ]}
            )

    def test_outage_against_undeclared_zone_rejected(self):
        with pytest.raises(ValueError, match="zone"):
            ChaosPlan(
                name="x",
                zones=(("east", (0,)),),
                outages=(ZoneOutage(zone="west", at_ms=10.0),),
            )

    def test_gray_window_validation(self):
        with pytest.raises(ValueError):
            GrayWindow(replica_id=0, start_ms=100.0, end_ms=50.0, slowdown=2.0)
        with pytest.raises(ValueError):
            GrayWindow(replica_id=0, start_ms=0.0, end_ms=50.0, slowdown=0.0)


class TestResiliencePolicyValidation:
    def test_disabled_by_default(self):
        assert not ResiliencePolicy().enabled

    def test_each_mechanism_enables(self):
        assert ResiliencePolicy(max_retries=1).enabled
        assert ResiliencePolicy(hedge=True).enabled
        assert ResiliencePolicy(breaker=True).enabled
        assert ResiliencePolicy(brownout=True).enabled
        assert ResiliencePolicy(timeout_ms=50.0).enabled

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError, match="max_retries"):
            ResiliencePolicy(max_retries=-1)
        with pytest.raises(ValueError, match="timeout_ms"):
            ResiliencePolicy(timeout_ms=0.0)
        with pytest.raises(ValueError, match="straggle_factor"):
            ResiliencePolicy(breaker_straggle_factor=1.0)
        with pytest.raises(ValueError, match="brownout_levels"):
            ResiliencePolicy(brownout_levels=(1.5, 2.0))
        with pytest.raises(ValueError, match="non-decreasing"):
            ResiliencePolicy(brownout_levels=(1.0, 3.0, 2.0))


# ----------------------------------------------------------------------
# the resilience primitives
# ----------------------------------------------------------------------
class TestBackoff:
    POLICY = ResiliencePolicy(max_retries=3, backoff_base_ms=5.0, backoff_jitter=0.5)

    def test_deterministic(self):
        a = backoff_delay_ms(self.POLICY, seed=7, index=42, attempt=1)
        b = backoff_delay_ms(self.POLICY, seed=7, index=42, attempt=1)
        assert a == b

    def test_distinct_across_requests_and_attempts(self):
        delays = {
            backoff_delay_ms(self.POLICY, seed=7, index=i, attempt=a)
            for i in range(8)
            for a in (1, 2)
        }
        assert len(delays) == 16

    def test_jitter_bounds_and_doubling(self):
        for attempt in (1, 2, 3):
            base = 5.0 * 2 ** (attempt - 1)
            delay = backoff_delay_ms(self.POLICY, seed=0, index=3, attempt=attempt)
            assert base <= delay < base * 1.5

    def test_zero_jitter_is_exact_exponential(self):
        policy = ResiliencePolicy(max_retries=2, backoff_base_ms=4.0, backoff_jitter=0.0)
        assert backoff_delay_ms(policy, seed=1, index=0, attempt=1) == 4.0
        assert backoff_delay_ms(policy, seed=1, index=0, attempt=2) == 8.0


class TestRetryBudget:
    def test_zero_ratio_never_blocks(self):
        budget = RetryBudget(ratio=0.0, burst=1.0, tokens=0.0)
        assert all(budget.spend() for _ in range(100))

    def test_spend_drains_and_denies(self):
        budget = RetryBudget(ratio=1.0, burst=2.0, tokens=2.0)
        assert budget.spend() and budget.spend()
        assert not budget.spend()

    def test_accrue_caps_at_burst(self):
        budget = RetryBudget(ratio=0.5, burst=3.0, tokens=3.0)
        budget.accrue()
        assert budget.tokens == 3.0
        budget.spend()
        budget.accrue()
        assert budget.tokens == 2.5


class TestCircuitBreaker:
    def _breaker(self):
        return CircuitBreaker(
            straggle_factor=2.0, window=4, threshold=0.5, min_samples=2,
            open_ms=100.0, probes=2,
        )

    def test_opens_on_straggle_fraction(self):
        breaker = self._breaker()
        assert breaker.observe(10.0, True) is None  # below min_samples
        assert breaker.observe(20.0, True) == BREAKER_OPEN
        assert breaker.state == BREAKER_OPEN
        assert breaker.opens == 1
        assert breaker.open_until_ms == 120.0

    def test_blocks_during_hold_then_half_opens(self):
        breaker = self._breaker()
        breaker.observe(10.0, True)
        breaker.observe(20.0, True)
        assert not breaker.allows(50.0)
        assert breaker.allows(120.0)
        assert breaker.state == BREAKER_HALF_OPEN

    def test_clean_probes_close(self):
        breaker = self._breaker()
        breaker.observe(10.0, True)
        breaker.observe(20.0, True)
        breaker.allows(200.0)
        assert breaker.observe(210.0, False) is None
        assert breaker.observe(220.0, False) == BREAKER_CLOSED
        assert breaker.state == BREAKER_CLOSED
        assert breaker.closes == 1

    def test_straggle_in_half_open_reopens(self):
        breaker = self._breaker()
        breaker.observe(10.0, True)
        breaker.observe(20.0, True)
        breaker.allows(200.0)
        assert breaker.observe(210.0, True) == BREAKER_OPEN
        assert breaker.opens == 2

    def test_open_observations_carry_no_information(self):
        breaker = self._breaker()
        breaker.observe(10.0, True)
        breaker.observe(20.0, True)
        # In-flight batches landing while open never transition anything.
        assert breaker.observe(30.0, False) is None
        assert breaker.state == BREAKER_OPEN


class TestBrownoutLadder:
    def test_from_policy(self):
        ladder = BrownoutLadder.from_policy(
            ResiliencePolicy(brownout=True, brownout_levels=(1.0, 2.0),
                             brownout_dwell_ms=25.0)
        )
        assert ladder.levels == (1.0, 2.0)
        assert ladder.dwell_ms == 25.0
        assert ladder.level == 0


# ----------------------------------------------------------------------
# lifecycle contracts: recovery vs the autoscaler
# ----------------------------------------------------------------------
class TestRecoverContract:
    """``recover_replica`` only resurrects fail-stopped replicas.

    Pins the contract documented on :meth:`Fleet.recover_replica`: a
    replica that is down because the *autoscaler scaled it away* must
    stay gone — only the explicit down-by-failure flag makes recovery
    meaningful.
    """

    def _fleet(self, cluster_model, hash_tokenizer, hetero_specs, fleet_config):
        return Fleet(cluster_model, hash_tokenizer, hetero_specs, fleet_config)

    def test_fail_then_recover_restores(self, cluster_model, hash_tokenizer,
                                        hetero_specs, fleet_config):
        fleet = self._fleet(cluster_model, hash_tokenizer, hetero_specs, fleet_config)
        fleet.fail_replica(0, 100.0)
        assert not fleet.replicas[0].live
        fleet.recover_replica(0, 200.0)
        assert fleet.replicas[0].live

    def test_scaled_away_replica_stays_gone(self, cluster_model, hash_tokenizer,
                                            hetero_specs, fleet_config):
        fleet = self._fleet(cluster_model, hash_tokenizer, hetero_specs, fleet_config)
        fleet.remove_replica(0, 100.0)  # autoscaler-style scale-down
        fleet.recover_replica(0, 200.0)
        assert not fleet.replicas[0].live
        assert fleet.replicas[0].retired_ms == 100.0

    def test_failed_then_scaled_away_stays_gone(self, cluster_model, hash_tokenizer,
                                                hetero_specs, fleet_config):
        fleet = self._fleet(cluster_model, hash_tokenizer, hetero_specs, fleet_config)
        fleet.fail_replica(0, 50.0)
        fleet.recover_replica(0, 80.0)
        fleet.remove_replica(0, 100.0)
        fleet.recover_replica(0, 200.0)  # must not fight the autoscaler
        assert not fleet.replicas[0].live

    def test_fail_after_scale_down_is_noop(self, cluster_model, hash_tokenizer,
                                           hetero_specs, fleet_config):
        fleet = self._fleet(cluster_model, hash_tokenizer, hetero_specs, fleet_config)
        fleet.remove_replica(0, 100.0)
        fleet.fail_replica(0, 150.0)
        assert fleet.replicas[0].failures == 0  # no-op, not a counted failure
        fleet.recover_replica(0, 250.0)
        assert not fleet.replicas[0].live

    def test_unknown_ids_are_noops(self, cluster_model, hash_tokenizer,
                                   hetero_specs, fleet_config):
        fleet = self._fleet(cluster_model, hash_tokenizer, hetero_specs, fleet_config)
        fleet.fail_replica(99, 10.0)
        fleet.recover_replica(99, 20.0)
        fleet.recover_replica(1, 20.0)  # live replica: nothing to do
        assert fleet.replicas[1].live


class TestFailureRacesAutoscaler:
    """Failure plans racing autoscaler downscale: byte-identical engines.

    Low traffic plus an aggressive autoscaler guarantees downscale; the
    failure plan then targets ids the autoscaler may already have
    retired, and gray windows straddle scaling decisions.  Whatever
    interleaving results, both engines must resolve it identically.
    """

    DOWNSCALE = AutoscalePolicy(
        min_replicas=1, max_replicas=4, interval_ms=50.0, cooldown_ticks=1
    )

    def _both(self, cluster_model, hash_tokenizer, specs, fleet_config, **kw):
        ref = run_scenario(
            "steady", cluster_model, hash_tokenizer, specs, fleet_config,
            analytic=True, **kw,
        )
        got = run_scenario_columnar(
            "steady", cluster_model, hash_tokenizer, specs, fleet_config, **kw,
        )
        assert got.to_json() == ref.to_json()
        assert got.render() == ref.render()
        return ref

    def test_fail_recover_straddles_downscale(
        self, cluster_model, hash_tokenizer, hetero_specs, fleet_config, weak_spec
    ):
        specs = hetero_specs + [weak_spec]
        failures = (
            FailureEvent(replica_id=2, fail_ms=600.0, recover_ms=800.0),
            FailureEvent(replica_id=1, fail_ms=700.0),
        )
        report = self._both(
            cluster_model, hash_tokenizer, specs, fleet_config,
            autoscale=self.DOWNSCALE, scale_spec=weak_spec,
            failures=failures, seed=5, rate_scale=0.2, duration_scale=0.5,
        )
        # The run completed; whether each failure landed or no-opped is
        # the engines' shared business — the report just has to agree.
        assert report.stats.completed > 0

    def test_gray_window_straddles_scaling(
        self, cluster_model, hash_tokenizer, hetero_specs, fleet_config, weak_spec
    ):
        plan = ChaosPlan(
            name="gray-race",
            grays=(
                GrayWindow(replica_id=1, start_ms=100.0, end_ms=700.0, slowdown=5.0),
                GrayWindow(replica_id=7, start_ms=50.0, end_ms=120.0, slowdown=2.0),
            ),
        )
        self._both(
            cluster_model, hash_tokenizer, hetero_specs, fleet_config,
            autoscale=self.DOWNSCALE, scale_spec=weak_spec,
            chaos=plan, seed=5, rate_scale=0.3, duration_scale=0.5,
        )


# ----------------------------------------------------------------------
# the differential chaos matrix
# ----------------------------------------------------------------------
def _run_pair(scenario, cluster_model, hash_tokenizer, specs, fleet_config,
              shards, **kw):
    ref = run_scenario(
        scenario, cluster_model, hash_tokenizer, specs, fleet_config,
        analytic=True, **kw,
    )
    got = run_scenario_columnar(
        scenario, cluster_model, hash_tokenizer, specs, fleet_config,
        shards=shards, **kw,
    )
    assert got.to_json() == ref.to_json()
    assert got.render() == ref.render()
    return ref


class TestDifferentialChaosMatrix:
    """scenario x autoscale x chaos x shards: identical bytes."""

    @pytest.mark.parametrize("scenario", ["flash-crowd", "multi-tenant"])
    @pytest.mark.parametrize(
        "chaos,resilience",
        [(PLAN, None), (None, FULL_POLICY), (PLAN, FULL_POLICY)],
        ids=["plan-only", "policy-only", "plan+policy"],
    )
    @pytest.mark.parametrize("shards", [1, 3])
    def test_autoscaled(self, scenario, chaos, resilience, shards,
                        cluster_model, hash_tokenizer, hetero_specs,
                        fleet_config, weak_spec):
        report = _run_pair(
            scenario, cluster_model, hash_tokenizer, hetero_specs, fleet_config,
            shards, autoscale=AUTOSCALE, scale_spec=weak_spec,
            chaos=chaos, resilience=resilience, seed=7,
            rate_scale=4.0, duration_scale=0.5,
        )
        if resilience is not None:
            assert report.stats.chaos is not None

    def test_fixed_fleet(self, cluster_model, hash_tokenizer, hetero_specs,
                         fleet_config):
        _run_pair(
            "flash-crowd", cluster_model, hash_tokenizer, hetero_specs,
            fleet_config, 2, chaos=PLAN, resilience=FULL_POLICY, seed=7,
            rate_scale=4.0, duration_scale=0.5,
        )

    def test_every_mechanism_fires(self, cluster_model, hash_tokenizer,
                                   hetero_specs, fleet_config, weak_spec):
        """The matrix is vacuous if the knobs never trip — pin that the
        drill actually exercises retries, timeouts, and the breaker."""
        report = _run_pair(
            "multi-tenant", cluster_model, hash_tokenizer, hetero_specs,
            fleet_config, 3, autoscale=AUTOSCALE, scale_spec=weak_spec,
            chaos=PLAN, resilience=FULL_POLICY, seed=7,
            rate_scale=6.0, duration_scale=0.5,
        )
        chaos = report.stats.chaos
        assert chaos is not None
        assert chaos.retries > 0
        assert chaos.breaker_opens > 0

    def test_chaos_section_only_when_active(self, cluster_model, hash_tokenizer,
                                            hetero_specs, fleet_config):
        plain = run_scenario(
            "steady", cluster_model, hash_tokenizer, hetero_specs, fleet_config,
            analytic=True, seed=3, rate_scale=0.5, duration_scale=0.5,
        )
        assert plain.stats.chaos is None
        assert "retries:" not in plain.render()
        chaotic = run_scenario(
            "steady", cluster_model, hash_tokenizer, hetero_specs, fleet_config,
            analytic=True, seed=3, rate_scale=0.5, duration_scale=0.5,
            resilience=ResiliencePolicy(max_retries=1),
        )
        assert chaotic.stats.chaos is not None
        assert "retries:" in chaotic.render()

    def test_same_arguments_same_bytes(self, cluster_model, hash_tokenizer,
                                       hetero_specs, fleet_config, weak_spec):
        kw = dict(
            autoscale=AUTOSCALE, scale_spec=weak_spec, chaos=PLAN,
            resilience=FULL_POLICY, seed=7, rate_scale=4.0, duration_scale=0.5,
        )
        first = run_scenario_columnar(
            "flash-crowd", cluster_model, hash_tokenizer, hetero_specs,
            fleet_config, shards=2, **kw,
        )
        second = run_scenario_columnar(
            "flash-crowd", cluster_model, hash_tokenizer, hetero_specs,
            fleet_config, shards=2, **kw,
        )
        assert first.to_json() == second.to_json()


class TestObsStreamsUnderChaos:
    """Observability streams are part of the byte-exact contract too."""

    def test_obs_streams_byte_identical(self, cluster_model, hash_tokenizer,
                                        hetero_specs, fleet_config, weak_spec):
        from repro.obs import FleetObserver

        kw = dict(
            autoscale=AUTOSCALE, scale_spec=weak_spec, chaos=PLAN,
            resilience=FULL_POLICY, seed=7, rate_scale=4.0, duration_scale=0.5,
        )
        ref_obs = FleetObserver()
        run_scenario(
            "flash-crowd", cluster_model, hash_tokenizer, hetero_specs,
            fleet_config, analytic=True, obs=ref_obs, **kw,
        )
        for shards in (1, 3):
            got_obs = FleetObserver()
            run_scenario_columnar(
                "flash-crowd", cluster_model, hash_tokenizer, hetero_specs,
                fleet_config, shards=shards, obs=got_obs, **kw,
            )
            assert got_obs.render_prometheus() == ref_obs.render_prometheus()
            assert got_obs.window_lines() == ref_obs.window_lines()
            assert got_obs.trace_json() == ref_obs.trace_json()

    def test_chaos_metrics_present(self, cluster_model, hash_tokenizer,
                                   hetero_specs, fleet_config, weak_spec):
        from repro.obs import FleetObserver

        obs = FleetObserver()
        run_scenario(
            "flash-crowd", cluster_model, hash_tokenizer, hetero_specs,
            fleet_config, analytic=True, obs=obs, autoscale=AUTOSCALE,
            scale_spec=weak_spec, chaos=PLAN, resilience=FULL_POLICY,
            seed=7, rate_scale=4.0, duration_scale=0.5,
        )
        prom = obs.render_prometheus()
        for needle in (
            "repro_retries_total",
            "repro_timeouts_total",
            "repro_hedges_total",
            "repro_hedge_wins_total",
            "repro_breaker_transitions_total",
            "repro_brownout_transitions_total",
            "repro_mttr_ms",
        ):
            assert needle in prom
        # MTTR is a real measurement here: a failure happened, so the
        # gauge is either a recovery time or the explicit -1 sentinel.
        line = next(
            l for l in prom.splitlines()
            if l.startswith("repro_mttr_ms") and not l.startswith("#")
        )
        assert float(line.split()[-1]) != 0.0

    def test_no_chaos_metrics_without_chaos(self, cluster_model, hash_tokenizer,
                                            hetero_specs, fleet_config):
        from repro.obs import FleetObserver

        obs = FleetObserver()
        run_scenario(
            "steady", cluster_model, hash_tokenizer, hetero_specs, fleet_config,
            analytic=True, obs=obs, seed=3, rate_scale=0.5, duration_scale=0.5,
        )
        prom = obs.render_prometheus()
        assert "repro_retries_total" not in prom
        assert "repro_mttr_ms" not in prom
