"""Experiment drivers: structure, rendering, hardware-table correctness.

Accuracy experiments run at smoke scale here (fast, same code paths); the
full-scale numbers are produced by the benchmark harness.
"""

import numpy as np
import pytest

from repro.experiments import (
    ABLATION_ROWS,
    BITWIDTHS,
    ExperimentScale,
    PAPER_TABLE3,
    PAPER_TABLE4,
    ablation_config,
    render_table,
    run_figure3,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
)


class TestRenderTable:
    def test_alignment_and_title(self):
        text = render_table(["a", "bb"], [[1, 2.345], [10, 3.0]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "2.35" in text and "10" in text

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a"], [[1, 2]])


class TestTable3:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table3()

    def test_has_all_design_points(self, result):
        assert set(result.reports) == set(
            (device, n, m) for (device, n, m) in PAPER_TABLE3
        )

    def test_latencies_near_paper(self, result):
        for key, report in result.reports.items():
            paper = PAPER_TABLE3[key]["latency_ms"]
            assert report.latency_ms == pytest.approx(paper, rel=0.15), key

    def test_all_fit(self, result):
        assert all(report.fits_device() for report in result.reports.values())

    def test_render(self, result):
        text = result.render()
        assert "ZCU102" in text and "ZCU111" in text and "DSP48E" in text


class TestTable4:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table4()

    def test_platforms(self, result):
        assert set(result.platforms) == {"CPU", "GPU", "ZCU102", "ZCU111"}

    def test_fpga_wins_energy_efficiency(self, result):
        """The headline: FPGA beats CPU ~29x and GPU ~13x in fps/W."""
        assert result.speedup("CPU") == pytest.approx(28.91, rel=0.35)
        assert result.speedup("GPU") == pytest.approx(12.72, rel=0.35)

    def test_fpga_beats_gpu_latency_slightly(self, result):
        """ZCU111 edges out the K80 (paper: 1.17x)."""
        ratio = (
            result.platforms["GPU"]["latency_ms"]
            / result.platforms["ZCU111"]["latency_ms"]
        )
        assert 1.0 < ratio < 1.5

    def test_ordering_matches_paper(self, result):
        fps_w = {name: row["fps_per_watt"] for name, row in result.platforms.items()}
        assert fps_w["ZCU111"] > fps_w["ZCU102"] > fps_w["GPU"] > fps_w["CPU"]

    def test_render(self, result):
        assert "fps/W" in result.render()


class TestAblationConfigs:
    def test_five_rows(self):
        assert len(ABLATION_ROWS) == 5

    def test_first_row_float(self):
        config = ablation_config(*ABLATION_ROWS[0])
        assert not config.quantize_weights

    def test_last_row_fully_quantized(self):
        config = ablation_config(*ABLATION_ROWS[-1])
        assert config.quantize_scales
        assert config.quantize_softmax
        assert config.quantize_layernorm

    def test_rows_cumulative(self):
        previous_on = -1
        for flags in ABLATION_ROWS:
            on = sum(flags)
            assert on > previous_on
            previous_on = on


@pytest.mark.slow
class TestAccuracyExperimentsSmoke:
    """Run the accuracy drivers end-to-end at smoke scale."""

    @pytest.fixture(scope="class")
    def scale(self):
        from repro.experiments import clear_cache

        clear_cache()
        return ExperimentScale.smoke()

    def test_table1_smoke(self, scale):
        result = run_table1(scale)
        for task in ("sst2", "mnli", "mnli-mm"):
            assert 30.0 <= result.quant_accuracy[task] <= 100.0
        assert result.compression == pytest.approx(7.94, rel=0.01)
        assert "FQ-BERT" in result.render()

    def test_table2_smoke(self, scale):
        result = run_table2(scale=scale)
        assert len(result.accuracies) == 5
        assert all(np.isfinite(a) for a in result.accuracies)

    def test_figure3_smoke(self, scale):
        result = run_figure3(tasks=("sst2",), scale=scale)
        assert ("sst2", 32, True) in result.accuracy
        assert ("sst2", 4, False) in result.accuracy
        series = result.series("sst2", clip=True)
        assert len(series) == len(BITWIDTHS)
        assert "Figure 3" in result.render()
