"""ASCII chart rendering."""

import pytest

from repro.experiments import ascii_chart, figure3_chart
from repro.experiments.figure3 import BITWIDTHS, Figure3Result


class TestAsciiChart:
    def test_contains_all_marks_and_labels(self):
        chart = ascii_chart(
            ["a", "b"], {"s1": [1.0, 2.0], "s2": [3.0, 0.0]}, title="T"
        )
        assert chart.startswith("T")
        assert "o s1" in chart and "x s2" in chart
        assert "a" in chart and "b" in chart

    def test_constant_series_handled(self):
        chart = ascii_chart(["x"], {"flat": [5.0]})
        assert "5.0" in chart or "5." in chart

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            ascii_chart(["a", "b"], {"s": [1.0]})

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ascii_chart(["a"], {})

    def test_monotone_series_monotone_rows(self):
        """Higher values appear on earlier (upper) rows."""
        chart = ascii_chart(["a", "b", "c"], {"s": [0.0, 5.0, 10.0]})
        lines = chart.splitlines()
        positions = []
        for row_index, line in enumerate(lines):
            if "o" in line:
                positions.append((row_index, line.index("o")))
        rows = [r for r, _ in sorted(positions, key=lambda rc: rc[1])]
        assert rows == sorted(rows, reverse=True)


class TestFigure3Chart:
    def test_renders_both_series(self):
        result = Figure3Result()
        for bits in BITWIDTHS:
            result.accuracy[("sst2", bits, True)] = 90.0 + bits / 10
            result.accuracy[("sst2", bits, False)] = 85.0 + bits / 10
        chart = figure3_chart(result, "sst2")
        assert "CLIP" in chart and "NO_CLIP" in chart
        assert "32" in chart and "2" in chart
