"""Seed robustness: the headline shapes must not be one-seed luck.

Marked slow; runs the SST-2-like accuracy pipeline at two extra seeds and
checks the *shape* assertions (not the exact numbers): the float model
learns, w4 QAT stays close, and 2-bit without clip is the worst
configuration.
"""

from dataclasses import replace

import pytest

from repro.experiments import ExperimentScale, clear_cache, pretrain_task, qat_accuracy
from repro.quant import QuantConfig

pytestmark = pytest.mark.slow


@pytest.mark.parametrize("seed", [19, 31])
def test_sst2_shape_across_seeds(seed):
    clear_cache()
    scale = replace(ExperimentScale.default(), seed=seed, num_train=512, num_dev=256)
    pretrained = pretrain_task("sst2", scale)
    assert pretrained.float_accuracy > 88.0, "float model failed to learn"

    w4 = qat_accuracy(pretrained, QuantConfig.fq_bert(weight_bits=4), scale)
    assert w4 > pretrained.float_accuracy - 4.0, "w4 QAT lost too much"

    w2_noclip = qat_accuracy(pretrained, QuantConfig.figure3(2, clip=False), scale)
    w2_clip = qat_accuracy(pretrained, QuantConfig.figure3(2, clip=True), scale)
    # The 2-bit cliff: no-clip 2-bit must be clearly below the w4 point.
    assert w2_noclip < w4 - 1.0, "2-bit cliff missing"
    # The clip-vs-noclip *ordering* at 2 bits is only stable when the model
    # survives quantization at all (the regime the default seed exhibits);
    # when both variants collapse the two are statistically tied.  The
    # seed-robust claim is that clip is never catastrophically worse.
    assert w2_clip >= w2_noclip - 8.0, "clip catastrophically worse at 2 bits"
