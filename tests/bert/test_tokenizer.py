"""Tokenizer and vocabulary: wordpiece splitting, encoding, padding."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bert.tokenizer import (
    CLS_TOKEN,
    PAD_TOKEN,
    SEP_TOKEN,
    SPECIAL_TOKENS,
    UNK_TOKEN,
    Vocabulary,
    WordPieceTokenizer,
)


@pytest.fixture
def vocab():
    return Vocabulary(["the", "movie", "was", "great", "grea", "##t", "##ing", "act"])


@pytest.fixture
def tokenizer(vocab):
    return WordPieceTokenizer(vocab)


class TestVocabulary:
    def test_special_tokens_first(self, vocab):
        for index, token in enumerate(SPECIAL_TOKENS):
            assert vocab.token_of(index) == token

    def test_add_idempotent(self, vocab):
        first = vocab.add("new")
        second = vocab.add("new")
        assert first == second

    def test_unknown_maps_to_unk(self, vocab):
        assert vocab.id_of("zzzzz") == vocab.unk_id

    def test_from_corpus_lowercases_and_dedups(self):
        vocab = Vocabulary.from_corpus(["The The THE", "movie"])
        assert "the" in vocab
        assert "The" not in vocab
        assert len(vocab) == len(SPECIAL_TOKENS) + 2

    def test_contains(self, vocab):
        assert "movie" in vocab
        assert "banana" not in vocab


class TestWordPiece:
    def test_whole_word(self, tokenizer):
        assert tokenizer.tokenize_word("movie") == ["movie"]

    def test_splits_into_pieces(self, tokenizer):
        # Greedy longest-match-first: "great" wins over "grea".
        assert tokenizer.tokenize_word("greating") == ["great", "##ing"]
        assert tokenizer.tokenize_word("great") == ["great"]
        # "greatt" resolves as the whole word "great" plus a continuation.
        assert tokenizer.tokenize_word("greatt") == ["great", "##t"]

    def test_unsplittable_is_unk(self, tokenizer):
        assert tokenizer.tokenize_word("xyz") == [UNK_TOKEN]

    def test_overlong_word_is_unk(self, tokenizer):
        assert tokenizer.tokenize_word("a" * 100) == [UNK_TOKEN]

    def test_tokenize_sentence(self, tokenizer):
        assert tokenizer.tokenize("the movie was great") == ["the", "movie", "was", "great"]


class TestEncoding:
    def test_single_sentence_layout(self, tokenizer):
        ids, mask, segments = tokenizer.encode("the movie", max_length=8)
        vocab = tokenizer.vocab
        assert ids[0] == vocab.cls_id
        assert ids[3] == vocab.sep_id
        assert list(mask[:4]) == [1, 1, 1, 1]
        assert list(mask[4:]) == [0] * 4
        assert list(ids[4:]) == [vocab.pad_id] * 4
        assert segments.sum() == 0

    def test_pair_layout(self, tokenizer):
        ids, mask, segments = tokenizer.encode("the movie", "was great", max_length=10)
        vocab = tokenizer.vocab
        sep_positions = np.where(ids == vocab.sep_id)[0]
        assert len(sep_positions) == 2
        # Segment 1 starts right after the first SEP.
        assert segments[sep_positions[0]] == 0
        assert segments[sep_positions[0] + 1] == 1

    def test_truncation_single(self, tokenizer):
        ids, mask, _ = tokenizer.encode("the movie was great " * 10, max_length=8)
        assert len(ids) == 8
        assert mask.sum() == 8

    def test_truncation_pair_longest_first(self, tokenizer):
        long_a = "the movie was great " * 5
        ids, mask, segments = tokenizer.encode(long_a, "act", max_length=10)
        assert len(ids) == 10
        # Second segment survives truncation.
        assert segments.max() == 1

    def test_encode_batch_shapes(self, tokenizer):
        pairs = [("the movie", None), ("was great", "act"), ("the", None)]
        ids, mask, segments = tokenizer.encode_batch(pairs, max_length=12)
        assert ids.shape == (3, 12)
        assert mask.shape == (3, 12)
        assert segments.shape == (3, 12)


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.sampled_from(["the", "movie", "was", "great", "act", "zzz"]),
        min_size=1,
        max_size=20,
    ),
    st.integers(min_value=6, max_value=32),
)
def test_encode_always_fits_and_pads(words, max_length):
    vocab = Vocabulary(["the", "movie", "was", "great", "act"])
    tokenizer = WordPieceTokenizer(vocab)
    ids, mask, segments = tokenizer.encode(" ".join(words), max_length=max_length)
    assert len(ids) == len(mask) == len(segments) == max_length
    # mask is a prefix of ones.
    transitions = np.diff(mask)
    assert np.all(transitions <= 0)
    # padded region is PAD ids.
    assert np.all(ids[mask == 0] == vocab.pad_id)
    # first token is CLS, last real token is SEP.
    assert ids[0] == vocab.cls_id
    assert ids[mask.sum() - 1] == vocab.sep_id
