"""Checkpoint save/load round-trips for float and quantized models."""

import numpy as np
import pytest

from repro.bert import BertConfig, BertForSequenceClassification, load_checkpoint, save_checkpoint
from repro.quant import QuantConfig, QuantBertForSequenceClassification


class TestFloatCheckpoint:
    def test_roundtrip_preserves_predictions(self, tmp_path, rng):
        config = BertConfig.tiny(vocab_size=32, max_position_embeddings=8)
        model = BertForSequenceClassification(config, rng=rng)
        ids = rng.integers(0, 32, size=(3, 8))
        before = model.predict(ids)

        path = tmp_path / "model.npz"
        save_checkpoint(model, path, kind="bert")
        loaded, kind = load_checkpoint(path)
        assert kind == "bert"
        np.testing.assert_array_equal(loaded.predict(ids), before)

    def test_config_restored(self, tmp_path, rng):
        config = BertConfig.tiny(vocab_size=77, num_labels=3, max_position_embeddings=8)
        model = BertForSequenceClassification(config, rng=rng)
        save_checkpoint(model, tmp_path / "m.npz", kind="bert")
        loaded, _ = load_checkpoint(tmp_path / "m.npz")
        assert loaded.config == config

    def test_parameters_bitwise_equal(self, tmp_path, rng):
        config = BertConfig.tiny(vocab_size=32, max_position_embeddings=8)
        model = BertForSequenceClassification(config, rng=rng)
        save_checkpoint(model, tmp_path / "m.npz", kind="bert")
        loaded, _ = load_checkpoint(tmp_path / "m.npz")
        for (name, a), (_, b) in zip(model.named_parameters(), loaded.named_parameters()):
            np.testing.assert_array_equal(a.data, b.data, err_msg=name)


class TestQuantCheckpoint:
    def test_roundtrip_with_observers(self, tmp_path, rng):
        config = BertConfig.tiny(vocab_size=32, max_position_embeddings=8)
        model = QuantBertForSequenceClassification(config, QuantConfig.fq_bert(), rng=rng)
        model.train()
        ids = rng.integers(0, 32, size=(4, 8))
        model(ids)  # initialize observers
        model.eval()
        before = model.predict(ids)

        path = tmp_path / "fq.npz"
        save_checkpoint(model, path, kind="quant")
        loaded, kind = load_checkpoint(path)
        assert kind == "quant"
        loaded.eval()
        np.testing.assert_array_equal(loaded.predict(ids), before)

    def test_qconfig_restored(self, tmp_path, rng):
        config = BertConfig.tiny(vocab_size=32, max_position_embeddings=8)
        qconfig = QuantConfig.fq_bert(weight_bits=8)
        model = QuantBertForSequenceClassification(config, qconfig, rng=rng)
        model(np.zeros((1, 4), dtype=np.int64))
        save_checkpoint(model, tmp_path / "fq.npz", kind="quant")
        loaded, _ = load_checkpoint(tmp_path / "fq.npz")
        assert loaded.qconfig == qconfig

    def test_loaded_quant_model_convertible(self, tmp_path, rng):
        """A re-loaded QAT checkpoint converts to the integer engine."""
        from repro.quant import convert_to_integer

        config = BertConfig.tiny(vocab_size=32, max_position_embeddings=8)
        model = QuantBertForSequenceClassification(config, QuantConfig.fq_bert(), rng=rng)
        model.train()
        ids = rng.integers(0, 32, size=(4, 8))
        model(ids)
        model.eval()
        save_checkpoint(model, tmp_path / "fq.npz", kind="quant")
        loaded, _ = load_checkpoint(tmp_path / "fq.npz")
        loaded.eval()
        engine = convert_to_integer(loaded)
        np.testing.assert_array_equal(engine.predict(ids), model.predict(ids))


class TestErrors:
    def test_unknown_kind_rejected(self, tmp_path, rng):
        config = BertConfig.tiny(vocab_size=16, max_position_embeddings=8)
        model = BertForSequenceClassification(config, rng=rng)
        save_checkpoint(model, tmp_path / "m.npz", kind="bert")
        # Corrupt the kind marker.
        import numpy as np

        with np.load(tmp_path / "m.npz") as data:
            arrays = {k: data[k] for k in data.files}
        arrays["__model_kind__"] = np.frombuffer(b"alien", dtype=np.uint8)
        np.savez(tmp_path / "bad.npz", **arrays)
        with pytest.raises(ValueError):
            load_checkpoint(tmp_path / "bad.npz")

    def test_model_without_config_rejected(self, tmp_path):
        from repro.autograd import nn

        with pytest.raises(ValueError):
            save_checkpoint(nn.Linear(2, 2), tmp_path / "x.npz")
