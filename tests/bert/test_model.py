"""BERT model components: shapes, masking, and end-to-end trainability."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.bert import (
    BertAttention,
    BertConfig,
    BertEmbeddings,
    BertEncoder,
    BertForSequenceClassification,
    BertLayer,
    BertModel,
    BertSelfAttention,
    merge_heads,
    split_heads,
)
from repro.bert.attention import _additive_mask


@pytest.fixture
def config():
    return BertConfig.tiny(vocab_size=50, num_labels=2, max_position_embeddings=16)


class TestConfig:
    def test_head_dim(self):
        assert BertConfig.base().head_dim == 64

    def test_base_shape(self):
        base = BertConfig.base()
        assert base.hidden_size == 768
        assert base.num_hidden_layers == 12
        assert base.num_attention_heads == 12
        assert base.intermediate_size == 3072

    def test_rejects_indivisible_heads(self):
        with pytest.raises(ValueError):
            BertConfig(hidden_size=10, num_attention_heads=3)

    def test_dict_roundtrip(self):
        config = BertConfig.small()
        assert BertConfig.from_dict(config.to_dict()) == config


class TestHeadSplit:
    def test_split_merge_roundtrip(self, rng):
        x = Tensor(rng.standard_normal((2, 5, 8), dtype=np.float32))
        assert merge_heads(split_heads(x, 4)).data == pytest.approx(x.data)

    def test_split_shape(self, rng):
        x = Tensor(rng.standard_normal((2, 5, 8), dtype=np.float32))
        assert split_heads(x, 4).shape == (2, 4, 5, 2)

    def test_split_rejects_indivisible(self, rng):
        x = Tensor(rng.standard_normal((1, 2, 7), dtype=np.float32))
        with pytest.raises(ValueError):
            split_heads(x, 2)


class TestEmbeddings:
    def test_output_shape(self, config, rng):
        emb = BertEmbeddings(config, rng=rng)
        out = emb(np.zeros((2, 10), dtype=np.int64))
        assert out.shape == (2, 10, config.hidden_size)

    def test_position_sensitivity(self, config, rng):
        """Same token at different positions embeds differently."""
        emb = BertEmbeddings(config, rng=rng)
        emb.eval()
        out = emb(np.full((1, 4), 7, dtype=np.int64)).data
        assert not np.allclose(out[0, 0], out[0, 1])

    def test_too_long_sequence_rejected(self, config, rng):
        emb = BertEmbeddings(config, rng=rng)
        with pytest.raises(ValueError):
            emb(np.zeros((1, config.max_position_embeddings + 1), dtype=np.int64))

    def test_rejects_1d_input(self, config, rng):
        emb = BertEmbeddings(config, rng=rng)
        with pytest.raises(ValueError):
            emb(np.zeros(5, dtype=np.int64))


class TestAttention:
    def test_self_attention_shape(self, config, rng):
        attn = BertSelfAttention(config, rng=rng)
        x = Tensor(rng.standard_normal((2, 6, config.hidden_size), dtype=np.float32))
        assert attn(x).shape == (2, 6, config.hidden_size)

    def test_additive_mask_values(self):
        mask = np.array([[1, 1, 0]])
        additive = _additive_mask(mask)
        assert additive.shape == (1, 1, 1, 3)
        assert additive[0, 0, 0, 0] == 0.0
        assert additive[0, 0, 0, 2] == -10000.0

    def test_additive_mask_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            _additive_mask(np.ones((2, 3, 4)))

    def test_masked_positions_do_not_affect_output(self, config, rng):
        """Changing a masked token must not change unmasked outputs."""
        attn = BertSelfAttention(config, rng=rng)
        attn.eval()
        x = rng.standard_normal((1, 6, config.hidden_size)).astype(np.float32)
        mask = np.array([[1, 1, 1, 1, 0, 0]])
        out1 = attn(Tensor(x.copy()), mask).data[:, :4]
        x[0, 4] += 5.0  # perturb a masked position's *input to K/V*
        out2 = attn(Tensor(x), mask).data[:, :4]
        # The masked token still contributes its own Q row, but rows 0..3
        # only see it through K/V, which the mask blocks.
        np.testing.assert_allclose(out1, out2, atol=1e-5)

    def test_attention_block_residual(self, config, rng):
        block = BertAttention(config, rng=rng)
        block.eval()
        x = Tensor(rng.standard_normal((1, 4, config.hidden_size), dtype=np.float32))
        out = block(x)
        assert out.shape == x.shape
        # LN output should be standardized.
        np.testing.assert_allclose(out.data.mean(axis=-1), 0.0, atol=0.3)


class TestEncoder:
    def test_layer_shape(self, config, rng):
        layer = BertLayer(config, rng=rng)
        x = Tensor(rng.standard_normal((2, 5, config.hidden_size), dtype=np.float32))
        assert layer(x).shape == x.shape

    def test_encoder_stacks(self, config, rng):
        encoder = BertEncoder(config, rng=rng)
        assert len(encoder.layers) == config.num_hidden_layers
        x = Tensor(rng.standard_normal((1, 5, config.hidden_size), dtype=np.float32))
        out, all_states = encoder(x, return_all=True)
        assert len(all_states) == config.num_hidden_layers
        np.testing.assert_array_equal(out.data, all_states[-1].data)


class TestFullModel:
    def test_forward_shapes(self, config, rng):
        model = BertForSequenceClassification(config, rng=rng)
        ids = rng.integers(0, config.vocab_size, size=(3, 10))
        logits = model(ids)
        assert logits.shape == (3, config.num_labels)

    def test_pooler_uses_cls(self, config, rng):
        model = BertModel(config, rng=rng)
        model.eval()
        ids = rng.integers(0, config.vocab_size, size=(2, 8))
        sequence, pooled = model(ids)
        assert sequence.shape == (2, 8, config.hidden_size)
        assert pooled.shape == (2, config.hidden_size)
        assert np.abs(pooled.data).max() <= 1.0  # tanh bounded

    def test_predict_returns_labels(self, config, rng):
        model = BertForSequenceClassification(config, rng=rng)
        ids = rng.integers(0, config.vocab_size, size=(4, 8))
        preds = model.predict(ids)
        assert preds.shape == (4,)
        assert set(preds).issubset({0, 1})

    def test_loss_backward_touches_all_parameters(self, config, rng):
        model = BertForSequenceClassification(config, rng=rng)
        ids = rng.integers(0, config.vocab_size, size=(2, 8))
        loss = model.loss(ids, np.array([0, 1]))
        loss.backward()
        missing = [
            name
            for name, param in model.named_parameters()
            if param.grad is None
        ]
        # Position/type embeddings beyond used range get sparse grads but are
        # still touched; nothing should be None.
        assert missing == []

    def test_can_overfit_tiny_batch(self, config, rng):
        """Optimization sanity: the model memorizes 8 examples."""
        from repro.autograd.optim import Adam

        model = BertForSequenceClassification(config, rng=rng)
        ids = rng.integers(0, config.vocab_size, size=(8, 8))
        labels = np.array([0, 1] * 4)
        optimizer = Adam(model.parameters(), lr=3e-3)
        for _ in range(60):
            optimizer.zero_grad()
            loss = model.loss(ids, labels)
            loss.backward()
            optimizer.step()
        assert float(loss.data) < 0.1
        np.testing.assert_array_equal(model.predict(ids), labels)
