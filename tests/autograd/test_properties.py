"""Property-based tests (hypothesis) on the autograd engine."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.autograd import Tensor
from repro.autograd import functional as F

finite_floats = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False, width=32
)


def small_arrays(max_side=6):
    return arrays(
        dtype=np.float32,
        shape=st.tuples(
            st.integers(1, max_side), st.integers(1, max_side)
        ),
        elements=finite_floats,
    )


@settings(max_examples=50, deadline=None)
@given(small_arrays())
def test_add_commutes(x):
    a = Tensor(x)
    b = Tensor(x * 0.5 + 1.0)
    np.testing.assert_allclose((a + b).data, (b + a).data, rtol=1e-6)


@settings(max_examples=50, deadline=None)
@given(small_arrays())
def test_double_negation(x):
    np.testing.assert_allclose((-(-Tensor(x))).data, x, rtol=1e-6)


@settings(max_examples=50, deadline=None)
@given(small_arrays())
def test_sum_equals_numpy(x):
    assert float(Tensor(x).sum().data) == np.float32(x.sum(dtype=np.float32))


@settings(max_examples=50, deadline=None)
@given(small_arrays())
def test_reshape_preserves_content(x):
    out = Tensor(x).reshape(-1) if x.size else None
    if out is not None:
        np.testing.assert_array_equal(np.sort(out.data), np.sort(x.reshape(-1)))


@settings(max_examples=50, deadline=None)
@given(small_arrays())
def test_transpose_involution(x):
    np.testing.assert_array_equal(Tensor(x).transpose().transpose().data, x)


@settings(max_examples=50, deadline=None)
@given(small_arrays())
def test_softmax_rows_sum_to_one(x):
    out = F.softmax(Tensor(x)).data
    np.testing.assert_allclose(out.sum(axis=-1), np.ones(x.shape[0]), rtol=1e-4)
    assert np.all(out >= 0)


@settings(max_examples=50, deadline=None)
@given(small_arrays())
def test_softmax_shift_invariant(x):
    a = F.softmax(Tensor(x)).data
    b = F.softmax(Tensor(x + 7.5)).data
    np.testing.assert_allclose(a, b, atol=1e-5)


@settings(max_examples=50, deadline=None)
@given(small_arrays(), st.floats(min_value=0.25, max_value=64.0))
def test_fake_quantize_idempotent(x, scale):
    """Quantizing twice at the same scale equals quantizing once."""
    once = F.fake_quantize(Tensor(x), scale, -127, 127).data
    twice = F.fake_quantize(Tensor(once), scale, -127, 127).data
    np.testing.assert_allclose(once, twice, atol=1e-6)


@settings(max_examples=50, deadline=None)
@given(small_arrays(), st.floats(min_value=0.25, max_value=64.0))
def test_fake_quantize_error_bound(x, scale):
    """Unsaturated values round-trip within half a quantization step."""
    out = F.fake_quantize(Tensor(x), scale, -127, 127).data
    unsaturated = np.abs(x * scale) <= 126.5
    error = np.abs(out - x)[unsaturated]
    if error.size:
        assert error.max() <= 0.5 / scale + 1e-6


@settings(max_examples=50, deadline=None)
@given(small_arrays())
def test_clamp_bounds(x):
    out = Tensor(x).clamp(-1.0, 1.0).data
    assert out.min() >= -1.0 and out.max() <= 1.0


@settings(max_examples=30, deadline=None)
@given(small_arrays())
def test_layer_norm_output_standardized(x):
    weight = Tensor(np.ones(x.shape[-1], dtype=np.float32))
    bias = Tensor(np.zeros(x.shape[-1], dtype=np.float32))
    out = F.layer_norm(Tensor(x), weight, bias).data
    # Near-constant rows divide float32 rounding residue by sqrt(eps), so the
    # bound is loose; genuinely varying rows are standardized much tighter.
    np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=0.05)
