"""Optimizers: convergence on quadratics, schedules, clipping."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.autograd.nn import Parameter
from repro.autograd.optim import SGD, Adam, AdamW, LinearWarmupSchedule, clip_grad_norm


def quadratic_loss(param: Parameter, target: np.ndarray) -> Tensor:
    diff = param - Tensor(target)
    return (diff * diff).sum()


def run_steps(optimizer, param, target, steps):
    for _ in range(steps):
        optimizer.zero_grad()
        loss = quadratic_loss(param, target)
        loss.backward()
        optimizer.step()
    return float(quadratic_loss(param, target).data)


@pytest.fixture
def target():
    return np.array([1.0, -2.0, 3.0], dtype=np.float32)


class TestSGD:
    def test_converges(self, target):
        param = Parameter(np.zeros(3, dtype=np.float32))
        final = run_steps(SGD([param], lr=0.1), param, target, 100)
        assert final < 1e-6

    def test_momentum_faster_than_plain(self, target):
        plain = Parameter(np.zeros(3, dtype=np.float32))
        moment = Parameter(np.zeros(3, dtype=np.float32))
        loss_plain = run_steps(SGD([plain], lr=0.01), plain, target, 30)
        loss_momentum = run_steps(SGD([moment], lr=0.01, momentum=0.9), moment, target, 30)
        assert loss_momentum < loss_plain

    def test_weight_decay_shrinks(self):
        param = Parameter(np.ones(3, dtype=np.float32))
        optimizer = SGD([param], lr=0.1, weight_decay=1.0)
        optimizer.zero_grad()
        param.grad = np.zeros(3, dtype=np.float32)
        optimizer.step()
        assert np.all(np.abs(param.data) < 1.0)

    def test_rejects_bad_lr(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(2))], lr=-1.0)

    def test_rejects_empty_params(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdam:
    def test_converges(self, target):
        param = Parameter(np.zeros(3, dtype=np.float32))
        final = run_steps(Adam([param], lr=0.1), param, target, 200)
        assert final < 1e-4

    def test_skips_params_without_grad(self):
        a = Parameter(np.zeros(2, dtype=np.float32))
        b = Parameter(np.ones(2, dtype=np.float32))
        optimizer = Adam([a, b], lr=0.1)
        a.grad = np.ones(2, dtype=np.float32)
        optimizer.step()
        np.testing.assert_array_equal(b.data, np.ones(2))
        assert not np.allclose(a.data, 0.0)

    def test_adamw_decoupled_decay(self):
        # With zero gradient, AdamW still decays the weights; Adam+wd couples
        # decay through the moment estimates instead.
        param = Parameter(np.ones(2, dtype=np.float32))
        optimizer = AdamW([param], lr=0.1, weight_decay=0.5)
        param.grad = np.zeros(2, dtype=np.float32)
        optimizer.step()
        np.testing.assert_allclose(param.data, np.full(2, 0.95), rtol=1e-5)
        # weight_decay restored after the step (so later steps decay too)
        assert optimizer.weight_decay == 0.5


class TestClipGradNorm:
    def test_clips_to_max(self):
        param = Parameter(np.zeros(4, dtype=np.float32))
        param.grad = np.full(4, 10.0, dtype=np.float32)
        norm = clip_grad_norm([param], max_norm=1.0)
        assert norm == pytest.approx(20.0)
        assert np.linalg.norm(param.grad) == pytest.approx(1.0, rel=1e-5)

    def test_no_clip_when_small(self):
        param = Parameter(np.zeros(4, dtype=np.float32))
        param.grad = np.full(4, 0.1, dtype=np.float32)
        clip_grad_norm([param], max_norm=10.0)
        np.testing.assert_allclose(param.grad, np.full(4, 0.1))


class TestSchedule:
    def test_warmup_then_decay(self):
        param = Parameter(np.zeros(2, dtype=np.float32))
        optimizer = SGD([param], lr=1.0)
        schedule = LinearWarmupSchedule(optimizer, warmup_steps=10, total_steps=100)
        lrs = [schedule.step() for _ in range(100)]
        assert lrs[0] == pytest.approx(0.1)
        assert lrs[9] == pytest.approx(1.0)
        assert lrs[-1] == pytest.approx(0.0, abs=0.02)
        assert max(lrs) == pytest.approx(1.0)

    def test_no_warmup(self):
        optimizer = SGD([Parameter(np.zeros(2))], lr=1.0)
        schedule = LinearWarmupSchedule(optimizer, warmup_steps=0, total_steps=10)
        assert schedule.step() == pytest.approx(0.9)

    def test_rejects_zero_total(self):
        optimizer = SGD([Parameter(np.zeros(2))], lr=1.0)
        with pytest.raises(ValueError):
            LinearWarmupSchedule(optimizer, warmup_steps=0, total_steps=0)
