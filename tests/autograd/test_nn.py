"""Module system: registration, modes, state dicts, and the standard layers."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.autograd import nn


class TwoLayer(nn.Module):
    def __init__(self):
        super().__init__()
        self.fc1 = nn.Linear(4, 8, rng=np.random.default_rng(0))
        self.fc2 = nn.Linear(8, 2, rng=np.random.default_rng(1))
        self.dropout = nn.Dropout(0.5)

    def forward(self, x):
        return self.fc2(self.dropout(self.fc1(x)))


class TestModuleRegistration:
    def test_named_parameters_paths(self):
        model = TwoLayer()
        names = {name for name, _ in model.named_parameters()}
        assert names == {"fc1.weight", "fc1.bias", "fc2.weight", "fc2.bias"}

    def test_parameters_count(self):
        model = TwoLayer()
        assert model.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2

    def test_modules_traversal(self):
        model = TwoLayer()
        kinds = [type(m).__name__ for m in model.modules()]
        assert "TwoLayer" in kinds and "Linear" in kinds and "Dropout" in kinds

    def test_train_eval_propagates(self):
        model = TwoLayer()
        model.eval()
        assert not model.dropout.training
        model.train()
        assert model.dropout.training

    def test_zero_grad(self):
        model = TwoLayer()
        out = model(Tensor(np.ones((2, 4), dtype=np.float32)))
        out.sum().backward()
        assert model.fc1.weight.grad is not None
        model.zero_grad()
        assert model.fc1.weight.grad is None

    def test_missing_attribute_raises(self):
        model = TwoLayer()
        with pytest.raises(AttributeError):
            _ = model.nonexistent


class TestStateDict:
    def test_roundtrip(self):
        a, b = TwoLayer(), TwoLayer()
        b.load_state_dict(a.state_dict())
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_state_dict_is_a_copy(self):
        model = TwoLayer()
        state = model.state_dict()
        state["fc1.weight"][:] = 0.0
        assert not np.allclose(model.fc1.weight.data, 0.0)

    def test_shape_mismatch_raises(self):
        model = TwoLayer()
        state = model.state_dict()
        state["fc1.weight"] = np.zeros((2, 2))
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_unknown_key_raises(self):
        model = TwoLayer()
        state = model.state_dict()
        state["bogus"] = np.zeros(3)
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_buffers_serialized(self):
        model = TwoLayer()
        model.register_buffer("stat", np.array([1.0, 2.0]))
        state = model.state_dict()
        assert "stat" in state
        model.set_buffer("stat", np.array([9.0, 9.0]))
        model.load_state_dict(state)
        np.testing.assert_array_equal(model.stat, [1.0, 2.0])


class TestLayers:
    def test_linear_shapes(self, rng):
        layer = nn.Linear(6, 3, rng=rng)
        out = layer(Tensor(rng.standard_normal((2, 5, 6), dtype=np.float32)))
        assert out.shape == (2, 5, 3)

    def test_linear_no_bias(self, rng):
        layer = nn.Linear(4, 2, bias=False, rng=rng)
        assert layer.bias is None
        out = layer(Tensor(np.zeros((1, 4), dtype=np.float32)))
        np.testing.assert_array_equal(out.data, np.zeros((1, 2)))

    def test_embedding_bounds_check(self, rng):
        layer = nn.Embedding(10, 4, rng=rng)
        with pytest.raises(IndexError):
            layer(np.array([10]))
        with pytest.raises(IndexError):
            layer(np.array([-1]))

    def test_layernorm_affine(self, rng):
        layer = nn.LayerNorm(8)
        layer.weight.data[:] = 2.0
        layer.bias.data[:] = 1.0
        out = layer(Tensor(rng.standard_normal((3, 8), dtype=np.float32)))
        np.testing.assert_allclose(out.data.mean(axis=-1), np.ones(3), atol=1e-4)

    def test_dropout_invalid_p(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.0)

    def test_sequential(self, rng):
        seq = nn.Sequential(nn.Linear(4, 8, rng=rng), nn.ReLU(), nn.Linear(8, 2, rng=rng))
        out = seq(Tensor(rng.standard_normal((3, 4), dtype=np.float32)))
        assert out.shape == (3, 2)
        assert len(seq) == 3
        assert isinstance(seq[1], nn.ReLU)

    def test_module_list(self, rng):
        layers = nn.ModuleList([nn.Linear(4, 4, rng=rng) for _ in range(3)])
        assert len(layers) == 3
        assert len(list(layers)) == 3
        # Registered: parameters discoverable.
        parent = nn.Module()
        parent.layers = layers
        assert len(parent.parameters()) == 6

    def test_activation_modules(self, rng):
        x = Tensor(rng.standard_normal((2, 3), dtype=np.float32))
        assert nn.GELU()(x).shape == (2, 3)
        assert nn.Tanh()(x).shape == (2, 3)
        assert nn.ReLU()(x).data.min() >= 0.0
