"""Gradients and values of the NN primitives in repro.autograd.functional."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.autograd import functional as F

from .test_tensor import check_gradient


class TestActivations:
    def test_relu_value(self):
        out = F.relu(Tensor(np.array([-1.0, 0.0, 2.0], dtype=np.float32)))
        np.testing.assert_array_equal(out.data, [0.0, 0.0, 2.0])

    def test_relu_gradient(self, rng):
        x = rng.standard_normal((3, 4), dtype=np.float32)
        x[np.abs(x) < 0.1] = 0.5
        check_gradient(F.relu, x)

    def test_gelu_gradient(self, rng):
        check_gradient(F.gelu, rng.standard_normal((3, 4), dtype=np.float32))

    def test_gelu_matches_reference(self, rng):
        x = rng.standard_normal(100, dtype=np.float32)
        out = F.gelu(Tensor(x)).data
        ref = 0.5 * x * (1 + np.tanh(np.sqrt(2 / np.pi) * (x + 0.044715 * x ** 3)))
        np.testing.assert_allclose(out, ref, rtol=1e-5)

    def test_sigmoid_stable_extremes(self):
        out = F.sigmoid(Tensor(np.array([-100.0, 0.0, 100.0], dtype=np.float32)))
        np.testing.assert_allclose(out.data, [0.0, 0.5, 1.0], atol=1e-6)

    def test_sigmoid_gradient(self, rng):
        check_gradient(F.sigmoid, rng.standard_normal((3, 4), dtype=np.float32))


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        out = F.softmax(Tensor(rng.standard_normal((3, 7), dtype=np.float32)))
        np.testing.assert_allclose(out.data.sum(axis=-1), np.ones(3), rtol=1e-6)

    def test_shift_invariance(self, rng):
        x = rng.standard_normal((2, 5), dtype=np.float32)
        a = F.softmax(Tensor(x)).data
        b = F.softmax(Tensor(x + 100.0)).data
        np.testing.assert_allclose(a, b, rtol=1e-5)

    def test_softmax_gradient(self, rng):
        x = rng.standard_normal((2, 5), dtype=np.float32)
        check_gradient(lambda t: F.softmax(t) * Tensor(np.arange(5, dtype=np.float32)), x)

    def test_log_softmax_gradient(self, rng):
        x = rng.standard_normal((2, 5), dtype=np.float32)
        check_gradient(
            lambda t: F.log_softmax(t) * Tensor(np.arange(5, dtype=np.float32)), x
        )

    def test_log_softmax_equals_log_of_softmax(self, rng):
        x = rng.standard_normal((2, 5), dtype=np.float32)
        np.testing.assert_allclose(
            F.log_softmax(Tensor(x)).data, np.log(F.softmax(Tensor(x)).data), rtol=1e-5
        )


class TestCrossEntropy:
    def test_uniform_logits_give_log_classes(self):
        logits = Tensor(np.zeros((4, 3), dtype=np.float32))
        loss = F.cross_entropy(logits, np.array([0, 1, 2, 0]))
        np.testing.assert_allclose(float(loss.data), np.log(3.0), rtol=1e-5)

    def test_perfect_prediction_low_loss(self):
        logits = np.full((2, 3), -20.0, dtype=np.float32)
        logits[0, 1] = 20.0
        logits[1, 2] = 20.0
        loss = F.cross_entropy(Tensor(logits), np.array([1, 2]))
        assert float(loss.data) < 1e-4

    def test_gradient(self, rng):
        labels = np.array([0, 2, 1])
        check_gradient(
            lambda t: F.cross_entropy(t, labels),
            rng.standard_normal((3, 3), dtype=np.float32),
        )

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            F.cross_entropy(Tensor(np.zeros(3)), np.array([0]))


class TestLayerNorm:
    def test_normalizes(self, rng):
        x = rng.standard_normal((4, 8), dtype=np.float32) * 5 + 3
        weight = Tensor(np.ones(8, dtype=np.float32))
        bias = Tensor(np.zeros(8, dtype=np.float32))
        out = F.layer_norm(Tensor(x), weight, bias).data
        np.testing.assert_allclose(out.mean(axis=-1), np.zeros(4), atol=1e-5)
        np.testing.assert_allclose(out.std(axis=-1), np.ones(4), atol=1e-2)

    def test_gradient(self, rng):
        weight = Tensor(rng.standard_normal(6, dtype=np.float32))
        bias = Tensor(rng.standard_normal(6, dtype=np.float32))
        check_gradient(
            lambda t: F.layer_norm(t, weight, bias),
            rng.standard_normal((3, 6), dtype=np.float32),
        )

    def test_gradient_wrt_params(self, rng):
        x = Tensor(rng.standard_normal((3, 6), dtype=np.float32))
        check_gradient(
            lambda w: F.layer_norm(x, w, Tensor(np.zeros(6, dtype=np.float32))),
            rng.standard_normal(6, dtype=np.float32),
        )


class TestDropoutAndEmbedding:
    def test_dropout_eval_identity(self, rng):
        x = Tensor(rng.standard_normal((5, 5), dtype=np.float32))
        assert F.dropout(x, 0.5, training=False) is x

    def test_dropout_preserves_expectation(self, rng):
        x = Tensor(np.ones((200, 200), dtype=np.float32))
        out = F.dropout(x, 0.3, training=True)
        assert abs(out.data.mean() - 1.0) < 0.05

    def test_embedding_lookup(self, rng):
        table = Tensor(rng.standard_normal((10, 4), dtype=np.float32), requires_grad=True)
        indices = np.array([[1, 3], [3, 9]])
        out = F.embedding(table, indices)
        np.testing.assert_array_equal(out.data, table.data[indices])

    def test_embedding_gradient_accumulates(self, rng):
        table = Tensor(rng.standard_normal((5, 2), dtype=np.float32), requires_grad=True)
        F.embedding(table, np.array([2, 2, 4])).sum().backward()
        assert table.grad[2, 0] == pytest.approx(2.0)
        assert table.grad[4, 0] == pytest.approx(1.0)
        assert table.grad[0, 0] == pytest.approx(0.0)

    def test_linear_matches_numpy(self, rng):
        x = rng.standard_normal((3, 4), dtype=np.float32)
        w = rng.standard_normal((5, 4), dtype=np.float32)
        b = rng.standard_normal(5, dtype=np.float32)
        out = F.linear(Tensor(x), Tensor(w), Tensor(b)).data
        np.testing.assert_allclose(out, x @ w.T + b, rtol=1e-5)


class TestSTE:
    def test_ste_round_forward(self):
        out = F.ste_round(Tensor(np.array([0.4, 0.5, 1.5, -0.6], dtype=np.float32)))
        # round-half-to-even
        np.testing.assert_array_equal(out.data, [0.0, 0.0, 2.0, -1.0])

    def test_ste_round_identity_gradient(self):
        t = Tensor(np.array([0.4, 1.7], dtype=np.float32), requires_grad=True)
        F.ste_round(t).sum().backward()
        np.testing.assert_array_equal(t.grad, [1.0, 1.0])

    def test_ste_floor(self):
        t = Tensor(np.array([1.9, -0.1], dtype=np.float32), requires_grad=True)
        out = F.ste_floor(t)
        np.testing.assert_array_equal(out.data, [1.0, -1.0])
        out.sum().backward()
        np.testing.assert_array_equal(t.grad, [1.0, 1.0])

    def test_fake_quantize_grid(self):
        x = Tensor(np.linspace(-2, 2, 9).astype(np.float32))
        out = F.fake_quantize(x, scale=2.0, qmin=-3, qmax=3)
        codes = out.data * 2.0
        np.testing.assert_allclose(codes, np.rint(codes), atol=1e-6)
        assert codes.min() >= -3 and codes.max() <= 3

    def test_fake_quantize_saturation_cuts_gradient(self):
        t = Tensor(np.array([-10.0, 0.2, 10.0], dtype=np.float32), requires_grad=True)
        F.fake_quantize(t, scale=1.0, qmin=-2, qmax=2).sum().backward()
        np.testing.assert_array_equal(t.grad, [0.0, 1.0, 0.0])

    def test_fake_quantize_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            F.fake_quantize(Tensor(np.ones(2)), scale=0.0, qmin=-1, qmax=1)
