"""Tensor autograd: gradients of every op checked against finite differences."""

import numpy as np
import pytest

from repro.autograd import Tensor, concatenate, no_grad, stack, where


def numerical_grad(fn, x: np.ndarray, eps: float = 1e-4) -> np.ndarray:
    """Central-difference gradient of a scalar-valued fn."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        upper = fn(x)
        flat[i] = original - eps
        lower = fn(x)
        flat[i] = original
        grad_flat[i] = (upper - lower) / (2 * eps)
    return grad


def check_gradient(build, x: np.ndarray, tol: float = 2e-2):
    """Compare autograd gradient of sum(build(x)) against finite differences."""
    tensor = Tensor(x.copy(), requires_grad=True)
    out = build(tensor).sum()
    out.backward()
    analytic = tensor.grad

    def scalar_fn(arr):
        return float(build(Tensor(arr.copy())).sum().data)

    numeric = numerical_grad(scalar_fn, x.astype(np.float64))
    np.testing.assert_allclose(analytic, numeric, rtol=tol, atol=tol)


class TestArithmeticGradients:
    def test_add(self, rng):
        check_gradient(lambda t: t + 3.0, rng.standard_normal((3, 4), dtype=np.float32))

    def test_sub(self, rng):
        check_gradient(lambda t: 5.0 - t, rng.standard_normal((3, 4), dtype=np.float32))

    def test_mul(self, rng):
        check_gradient(lambda t: t * t, rng.standard_normal((3, 4), dtype=np.float32))

    def test_div(self, rng):
        x = rng.standard_normal((3, 4), dtype=np.float32) + 3.0
        check_gradient(lambda t: 1.0 / t, x)

    def test_pow(self, rng):
        x = np.abs(rng.standard_normal((3, 4), dtype=np.float32)) + 0.5
        check_gradient(lambda t: t ** 3, x)

    def test_neg(self, rng):
        check_gradient(lambda t: -t, rng.standard_normal((5,), dtype=np.float32))

    def test_chained_expression(self, rng):
        x = rng.standard_normal((4, 4), dtype=np.float32)
        check_gradient(lambda t: (t * 2.0 + 1.0) * t - t / 2.0, x)


class TestMatmulGradients:
    def test_matmul_2d(self, rng):
        w = rng.standard_normal((4, 3), dtype=np.float32)
        check_gradient(lambda t: t.matmul(Tensor(w)), rng.standard_normal((2, 4), dtype=np.float32))

    def test_matmul_grad_wrt_rhs(self, rng):
        x = rng.standard_normal((2, 4), dtype=np.float32)
        check_gradient(lambda t: Tensor(x).matmul(t), rng.standard_normal((4, 3), dtype=np.float32))

    def test_matmul_batched(self, rng):
        w = rng.standard_normal((2, 4, 3), dtype=np.float32)
        check_gradient(
            lambda t: t.matmul(Tensor(w)), rng.standard_normal((2, 5, 4), dtype=np.float32)
        )

    def test_matmul_broadcast_lhs(self, rng):
        # (batch, s, k) @ (k, n): rhs broadcasts over batch.
        w = rng.standard_normal((4, 3), dtype=np.float32)
        check_gradient(
            lambda t: t.matmul(Tensor(w)), rng.standard_normal((3, 2, 4), dtype=np.float32)
        )

    def test_matmul_value(self, rng):
        a = rng.standard_normal((3, 4), dtype=np.float32)
        b = rng.standard_normal((4, 5), dtype=np.float32)
        out = Tensor(a).matmul(Tensor(b))
        np.testing.assert_allclose(out.data, a @ b, rtol=1e-5)


class TestReductionGradients:
    def test_sum_all(self, rng):
        check_gradient(lambda t: t.sum(), rng.standard_normal((3, 4), dtype=np.float32))

    def test_sum_axis_keepdims(self, rng):
        check_gradient(
            lambda t: t.sum(axis=1, keepdims=True),
            rng.standard_normal((3, 4), dtype=np.float32),
        )

    def test_mean(self, rng):
        check_gradient(lambda t: t.mean(axis=-1), rng.standard_normal((3, 4), dtype=np.float32))

    def test_var(self, rng):
        check_gradient(lambda t: t.var(axis=-1), rng.standard_normal((3, 6), dtype=np.float32))

    def test_max(self, rng):
        # Distinct values so the max subgradient is unambiguous.
        x = np.arange(12, dtype=np.float32).reshape(3, 4)
        rng.shuffle(x.reshape(-1))
        check_gradient(lambda t: t.max(axis=-1), x)


class TestElementwiseGradients:
    def test_exp(self, rng):
        check_gradient(lambda t: t.exp(), rng.standard_normal((3, 4), dtype=np.float32))

    def test_log(self, rng):
        x = np.abs(rng.standard_normal((3, 4), dtype=np.float32)) + 0.5
        check_gradient(lambda t: t.log(), x)

    def test_sqrt(self, rng):
        x = np.abs(rng.standard_normal((3, 4), dtype=np.float32)) + 0.5
        check_gradient(lambda t: t.sqrt(), x)

    def test_tanh(self, rng):
        check_gradient(lambda t: t.tanh(), rng.standard_normal((3, 4), dtype=np.float32))

    def test_abs(self, rng):
        x = rng.standard_normal((3, 4), dtype=np.float32)
        x[np.abs(x) < 0.1] = 0.5  # keep away from the kink
        check_gradient(lambda t: t.abs(), x)

    def test_clamp_inside_and_outside(self):
        x = np.array([-2.0, -0.5, 0.5, 2.0], dtype=np.float32)
        t = Tensor(x, requires_grad=True)
        t.clamp(-1.0, 1.0).sum().backward()
        np.testing.assert_array_equal(t.grad, [0.0, 1.0, 1.0, 0.0])


class TestShapeGradients:
    def test_reshape(self, rng):
        check_gradient(
            lambda t: t.reshape(2, 6) * 2.0, rng.standard_normal((3, 4), dtype=np.float32)
        )

    def test_transpose(self, rng):
        check_gradient(
            lambda t: t.transpose(1, 0) * 2.0, rng.standard_normal((3, 4), dtype=np.float32)
        )

    def test_swapaxes(self, rng):
        check_gradient(
            lambda t: t.swapaxes(-1, -2) * 2.0,
            rng.standard_normal((2, 3, 4), dtype=np.float32),
        )

    def test_getitem(self, rng):
        check_gradient(lambda t: t[1:, :2], rng.standard_normal((3, 4), dtype=np.float32))

    def test_getitem_fancy(self):
        x = np.arange(12, dtype=np.float32).reshape(3, 4)
        t = Tensor(x, requires_grad=True)
        picked = t[np.array([0, 0, 2]), np.array([1, 1, 3])]
        picked.sum().backward()
        expected = np.zeros((3, 4), dtype=np.float32)
        expected[0, 1] = 2.0  # repeated index accumulates
        expected[2, 3] = 1.0
        np.testing.assert_array_equal(t.grad, expected)


class TestBroadcasting:
    def test_add_broadcast_bias(self, rng):
        x = rng.standard_normal((3, 4), dtype=np.float32)
        bias = Tensor(rng.standard_normal(4, dtype=np.float32), requires_grad=True)
        out = Tensor(x) + bias
        out.sum().backward()
        np.testing.assert_allclose(bias.grad, np.full(4, 3.0), rtol=1e-6)

    def test_mul_broadcast_scalar_tensor(self, rng):
        scale = Tensor(np.array(2.0, dtype=np.float32), requires_grad=True)
        x = rng.standard_normal((3, 4), dtype=np.float32)
        (Tensor(x) * scale).sum().backward()
        np.testing.assert_allclose(float(scale.grad), x.sum(), rtol=1e-4)

    def test_broadcast_keepdim_axis(self, rng):
        a = Tensor(rng.standard_normal((3, 1), dtype=np.float32), requires_grad=True)
        b = Tensor(rng.standard_normal((3, 5), dtype=np.float32))
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, b.data.sum(axis=1, keepdims=True), rtol=1e-5)


class TestGraphMechanics:
    def test_grad_accumulates_across_uses(self):
        t = Tensor(np.array([2.0], dtype=np.float32), requires_grad=True)
        (t * 3.0 + t * 4.0).sum().backward()
        np.testing.assert_allclose(t.grad, [7.0])

    def test_diamond_graph(self):
        t = Tensor(np.array([3.0], dtype=np.float32), requires_grad=True)
        a = t * 2.0
        b = t * 5.0
        (a * b).sum().backward()  # d/dt (10 t^2) = 20 t
        np.testing.assert_allclose(t.grad, [60.0])

    def test_backward_requires_scalar(self):
        t = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(RuntimeError):
            (t * 2.0).backward()

    def test_backward_on_constant_raises(self):
        t = Tensor(np.ones(3))
        with pytest.raises(RuntimeError):
            t.backward()

    def test_no_grad_blocks_graph(self):
        t = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            out = t * 2.0
        assert not out.requires_grad

    def test_detach(self):
        t = Tensor(np.ones(3), requires_grad=True)
        d = t.detach()
        assert not d.requires_grad
        assert d.data is t.data

    def test_deep_chain_no_recursion_error(self):
        t = Tensor(np.array([1.0], dtype=np.float32), requires_grad=True)
        out = t
        for _ in range(3000):
            out = out + 1.0
        out.sum().backward()
        np.testing.assert_allclose(t.grad, [1.0])


class TestCombinators:
    def test_concatenate_gradient(self, rng):
        a = Tensor(rng.standard_normal((2, 3), dtype=np.float32), requires_grad=True)
        b = Tensor(rng.standard_normal((2, 2), dtype=np.float32), requires_grad=True)
        out = concatenate([a, b], axis=1)
        (out * 2.0).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 3), 2.0))
        np.testing.assert_allclose(b.grad, np.full((2, 2), 2.0))

    def test_stack_gradient(self, rng):
        a = Tensor(rng.standard_normal(4, dtype=np.float32), requires_grad=True)
        b = Tensor(rng.standard_normal(4, dtype=np.float32), requires_grad=True)
        stack([a, b], axis=0).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones(4))
        np.testing.assert_allclose(b.grad, np.ones(4))

    def test_where_gradient(self):
        cond = np.array([True, False, True])
        a = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        b = Tensor(np.zeros(3, dtype=np.float32), requires_grad=True)
        where(cond, a, b).sum().backward()
        np.testing.assert_array_equal(a.grad, [1.0, 0.0, 1.0])
        np.testing.assert_array_equal(b.grad, [0.0, 1.0, 0.0])
