"""End-to-end integration: train -> QAT -> integer engine -> accelerator.

This is the full deployment pipeline of the paper, executed on a tiny model:
1. train float BERT on the synthetic task,
2. QAT fine-tune the fully quantized FQ-BERT,
3. freeze to the integer-only engine,
4. run the integer engine through the accelerator's functional datapath,
5. evaluate latency/resources/power on the simulated FPGA.
Every handoff is checked for consistency.
"""

import numpy as np
import pytest

from repro.accel import AcceleratorConfig, AcceleratorSimulator, ZCU102, build_encoder_workload
from repro.baselines import simulate_baseline
from repro.accel.devices import CPU_I7_8700
from repro.data import accuracy
from repro.quant import convert_to_integer, evaluate


class TestPipeline:
    def test_qat_model_usable_for_classification(self, trained_quant_model, tiny_task):
        _, _, dev, _ = tiny_task
        assert evaluate(trained_quant_model, dev) > 70.0

    def test_integer_engine_agrees_with_qat(self, trained_quant_model, tiny_task):
        _, _, dev, _ = tiny_task
        integer = convert_to_integer(trained_quant_model)
        batch = dev.full_batch()
        qat_preds = trained_quant_model.predict(
            batch.input_ids, batch.attention_mask, batch.token_type_ids
        )
        int_preds = integer.predict(
            batch.input_ids, batch.attention_mask, batch.token_type_ids
        )
        agreement = (qat_preds == int_preds).mean()
        assert agreement >= 0.95

    def test_integer_engine_accuracy_preserved(self, trained_quant_model, tiny_task):
        _, _, dev, _ = tiny_task
        integer = convert_to_integer(trained_quant_model)
        batch = dev.full_batch()
        preds = integer.predict(batch.input_ids, batch.attention_mask, batch.token_type_ids)
        int_accuracy = accuracy(preds, batch.labels)
        qat_accuracy = evaluate(trained_quant_model, dev)
        assert int_accuracy >= qat_accuracy - 3.0

    def test_accelerator_functional_path_matches_integer_engine(
        self, trained_quant_model, tiny_task
    ):
        """Hardware datapath == integer engine, on real (trained) weights."""
        _, _, dev, _ = tiny_task
        integer = convert_to_integer(trained_quant_model)
        batch = dev.full_batch()
        ids = batch.input_ids[:2]
        mask = batch.attention_mask[:2]
        simulator = AcceleratorSimulator(
            AcceleratorConfig(num_pus=2, num_pes=4, num_multipliers=4), ZCU102
        )
        hw = simulator.run_functional(integer, ids, mask, batch.token_type_ids[:2])
        sw = integer.forward(ids, mask, batch.token_type_ids[:2])
        np.testing.assert_array_equal(hw, sw)

    def test_latency_simulation_on_trained_model_config(self, trained_quant_model):
        """The simulator accepts the tiny config and reports sane numbers."""
        config = trained_quant_model.config
        simulator = AcceleratorSimulator(AcceleratorConfig(), ZCU102)
        report = simulator.simulate(config, seq_len=16)
        assert report.latency_ms > 0
        assert report.fps_per_watt > 0

    def test_fpga_beats_cpu_on_same_workload(self, trained_quant_model):
        """The Table IV comparison holds for the tiny model too."""
        config = trained_quant_model.config
        workload = build_encoder_workload(config, seq_len=16)
        fpga = AcceleratorSimulator(AcceleratorConfig(), ZCU102).simulate(
            config, seq_len=16, workload=workload
        )
        cpu = simulate_baseline(workload, CPU_I7_8700)
        assert fpga.fps_per_watt > cpu.fps_per_watt
