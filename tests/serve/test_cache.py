"""LRU tokenization cache: hits, recency, eviction."""

import pytest

from repro.serve import LRUCache


class TestBasics:
    def test_miss_then_hit(self):
        cache = LRUCache(4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.hits == 1 and cache.misses == 1

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_len_and_contains(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        assert len(cache) == 1 and "a" in cache and "b" not in cache
        # __contains__ is a pure membership probe: no counter churn.
        assert cache.hits == 0 and cache.misses == 0

    def test_clear(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.clear()
        assert len(cache) == 0 and cache.get("a") is None


class TestEviction:
    def test_lru_entry_evicted_first(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)  # evicts "a", the least recently used
        assert "a" not in cache and "b" in cache and "c" in cache
        assert cache.evictions == 1

    def test_get_refreshes_recency(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")      # "b" is now LRU
        cache.put("c", 3)
        assert "a" in cache and "b" not in cache

    def test_put_refreshes_recency(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh, not insert: no eviction
        assert cache.evictions == 0
        cache.put("c", 3)
        assert "a" in cache and cache.get("a") == 10 and "b" not in cache

    def test_eviction_chain(self):
        cache = LRUCache(3)
        for i in range(10):
            cache.put(i, i)
        assert len(cache) == 3
        assert cache.evictions == 7
        assert all(i in cache for i in (7, 8, 9))


class TestHitRate:
    def test_zero_when_untouched(self):
        assert LRUCache(2).hit_rate == 0.0

    def test_ratio(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.get("a")
        cache.get("x")
        assert cache.hit_rate == pytest.approx(2 / 3)
