"""Serving metrics: percentile semantics and stats assembly."""

import pytest

from repro.serve import ServingStats, build_stats, percentile, percentile_sorted


class TestPercentile:
    def test_median_of_odd(self):
        assert percentile([3.0, 1.0, 2.0], 50) == 2.0

    def test_interpolates(self):
        assert percentile([0.0, 10.0], 50) == 5.0
        assert percentile([0.0, 10.0], 95) == 9.5

    def test_extremes(self):
        values = [5.0, 1.0, 9.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 9.0

    def test_singleton(self):
        assert percentile([7.0], 95) == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_order_invariant(self):
        assert percentile([9.0, 1.0, 5.0, 3.0], 75) == percentile(
            [1.0, 3.0, 5.0, 9.0], 75
        )

    def test_error_ordering_matches_sorted_variant(self):
        # empty + out-of-range q: both variants must report the range
        # error (the caller's bug) rather than the emptiness error
        with pytest.raises(ValueError, match=r"\[0, 100\]"):
            percentile([], 150)
        with pytest.raises(ValueError, match=r"\[0, 100\]"):
            percentile_sorted([], 150)


class TestPercentileSorted:
    """The single-sort fast path must be bit-identical to `percentile`."""

    def test_matches_percentile_on_random_data(self):
        import random

        rng = random.Random(7)
        values = [rng.uniform(0.0, 100.0) for _ in range(257)]
        ordered = sorted(values)
        for q in (0, 1, 25, 50, 75, 95, 99, 99.9, 100):
            assert percentile_sorted(ordered, q) == percentile(values, q)

    def test_singleton_and_errors(self):
        assert percentile_sorted([7.0], 95) == 7.0
        with pytest.raises(ValueError):
            percentile_sorted([], 50)
        with pytest.raises(ValueError):
            percentile_sorted([1.0], -1)


@pytest.fixture
def stats():
    return build_stats(
        latencies_ms=[1.0, 2.0, 3.0, 4.0],
        queue_ms=[0.5, 0.5, 1.0, 1.0],
        num_batches=2,
        makespan_ms=8.0,
        cache_hit_rate=0.25,
        real_tokens=30,
        padded_tokens=40,
        slo_met=3,
        device_busy_ms={0: 4.0, 1: 2.0},
    )


class TestBuildStats:
    def test_counts_and_ratios(self, stats):
        assert stats.num_requests == 4
        assert stats.mean_batch_size == 2.0
        assert stats.padding_efficiency == pytest.approx(0.75)
        assert stats.slo_attainment == pytest.approx(0.75)
        assert stats.throughput_rps == pytest.approx(4 / 0.008)

    def test_latency_percentiles_ordered(self, stats):
        assert (
            stats.p50_latency_ms
            <= stats.p95_latency_ms
            <= stats.p99_latency_ms
            <= stats.max_latency_ms
        )
        assert stats.mean_latency_ms == pytest.approx(2.5)

    def test_device_utilization(self, stats):
        util = stats.device_utilization()
        assert util[0] == pytest.approx(0.5)
        assert util[1] == pytest.approx(0.25)

    def test_render_mentions_key_numbers(self, stats):
        text = stats.render()
        assert "throughput" in text and "p50" in text
        assert "75.0%" in text           # padding efficiency
        assert "device 1" in text

    def test_empty_trace_yields_empty_stats(self):
        """A trace that completes zero requests (e.g. everything shed) must
        summarize to the well-defined empty object, not raise."""
        empty = build_stats(
            latencies_ms=[],
            queue_ms=[],
            num_batches=0,
            makespan_ms=0.0,
            cache_hit_rate=0.0,
            real_tokens=0,
            padded_tokens=0,
            slo_met=0,
            device_busy_ms={},
        )
        assert empty == ServingStats.empty()
        assert empty.num_requests == 0
        assert empty.p99_latency_ms == 0.0
        assert empty.throughput_rps == 0.0
        assert empty.slo_attainment == 1.0
        assert empty.device_utilization() == {}
        assert "requests:           0" in empty.render()

    def test_zero_makespan_utilization(self):
        stats = ServingStats(
            num_requests=1, num_batches=1, makespan_ms=0.0,
            p50_latency_ms=0.0, p95_latency_ms=0.0, p99_latency_ms=0.0,
            mean_latency_ms=0.0, max_latency_ms=0.0, mean_queue_ms=0.0,
            throughput_rps=0.0, cache_hit_rate=0.0, padding_efficiency=1.0,
            mean_batch_size=1.0, slo_attainment=1.0, device_busy_ms={0: 0.0},
        )
        assert stats.device_utilization() == {0: 0.0}
