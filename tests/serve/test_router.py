"""Device router: latency estimates, load balancing, busy accounting."""

import pytest

from repro.accel import AcceleratorConfig
from repro.accel.devices import ZCU102, ZCU111
from repro.bert import BertConfig
from repro.serve import DeviceRouter


@pytest.fixture(scope="module")
def router2():
    return DeviceRouter(BertConfig.tiny(), num_devices=2)


class TestLatencyEstimates:
    def test_positive_and_memoized(self):
        router = DeviceRouter(BertConfig.tiny(), num_devices=1)
        first = router.estimate_latency_ms(16, 4)
        assert first > 0
        assert router.estimate_latency_ms(16, 4) == first
        assert len(router._latency_cache) == 1

    def test_batching_amortizes_weight_stream(self):
        """Batch latency grows sublinearly: the resident weight tile serves
        the whole batch, so latency(B) < B * latency(1)."""
        router = DeviceRouter(BertConfig.tiny(), num_devices=1)
        single = router.estimate_latency_ms(16, 1)
        for batch in (2, 4, 8):
            assert router.estimate_latency_ms(16, batch) < batch * single

    def test_longer_sequences_cost_more(self):
        router = DeviceRouter(BertConfig.tiny(), num_devices=1)
        assert router.estimate_latency_ms(32, 1) > router.estimate_latency_ms(8, 1)

    def test_invalid_device_count(self):
        with pytest.raises(ValueError):
            DeviceRouter(BertConfig.tiny(), num_devices=0)


class TestLatencyCacheSharing:
    """The docstring's memoization contract, now asserted: identical design
    points share cache entries; distinct design points do not."""

    def test_identical_design_points_share_entries(self):
        config = AcceleratorConfig()
        router = DeviceRouter(
            BertConfig.tiny(), specs=[(config, ZCU102), (config, ZCU102)]
        )
        first = router.estimate_latency_ms(16, 4, device_id=0)
        assert len(router._latency_cache) == 1
        # The second instance's estimate is a cache hit, not a new entry.
        assert router.estimate_latency_ms(16, 4, device_id=1) == first
        assert len(router._latency_cache) == 1

    def test_distinct_design_points_get_their_own_entries(self):
        fast = AcceleratorConfig()
        slow = AcceleratorConfig(num_pus=2, num_pes=2, num_multipliers=4)
        router = DeviceRouter(
            BertConfig.tiny(), specs=[(fast, ZCU102), (slow, ZCU102), (fast, ZCU111)]
        )
        router.estimate_latency_ms(16, 4, device_id=0)
        router.estimate_latency_ms(16, 4, device_id=1)  # different config
        assert len(router._latency_cache) == 2
        router.estimate_latency_ms(16, 4, device_id=2)  # different FPGA part
        assert len(router._latency_cache) == 3

    def test_shapes_key_the_cache_too(self):
        config = AcceleratorConfig()
        router = DeviceRouter(BertConfig.tiny(), specs=[(config, ZCU102)] * 2)
        router.estimate_latency_ms(16, 4, device_id=0)
        router.estimate_latency_ms(16, 8, device_id=0)
        router.estimate_latency_ms(32, 4, device_id=1)
        assert len(router._latency_cache) == 3


class TestDispatch:
    def test_round_robins_idle_devices(self, router2):
        a = router2.dispatch(16, 1, ready_ms=0.0)
        b = router2.dispatch(16, 1, ready_ms=0.0)
        assert {a.device_id, b.device_id} == {0, 1}
        # Both start immediately: two devices, two batches.
        assert a.start_ms == 0.0 and b.start_ms == 0.0

    def test_queues_behind_busy_devices(self):
        router = DeviceRouter(BertConfig.tiny(), num_devices=1)
        first = router.dispatch(16, 1, ready_ms=0.0)
        second = router.dispatch(16, 1, ready_ms=0.0)
        assert second.start_ms == first.finish_ms
        assert second.finish_ms == second.start_ms + second.service_ms

    def test_ready_time_respected(self):
        router = DeviceRouter(BertConfig.tiny(), num_devices=1)
        dispatch = router.dispatch(16, 1, ready_ms=42.0)
        assert dispatch.start_ms == 42.0

    def test_busy_accounting(self):
        router = DeviceRouter(BertConfig.tiny(), num_devices=2)
        for _ in range(4):
            router.dispatch(16, 2, ready_ms=0.0)
        busy = router.busy_ms_by_device()
        assert set(busy) == {0, 1}
        expected = 2 * router.estimate_latency_ms(16, 2)
        assert busy[0] == pytest.approx(expected)
        assert busy[1] == pytest.approx(expected)
        assert router.devices[0].batches_served == 2
        assert router.devices[0].requests_served == 4

    def test_two_devices_halve_makespan(self):
        """N devices drain a backlog of identical batches ~N x faster."""
        single = DeviceRouter(BertConfig.tiny(), num_devices=1)
        dual = DeviceRouter(BertConfig.tiny(), num_devices=2)
        finish_single = max(single.dispatch(16, 4, 0.0).finish_ms for _ in range(8))
        finish_dual = max(dual.dispatch(16, 4, 0.0).finish_ms for _ in range(8))
        assert finish_dual == pytest.approx(finish_single / 2)


def _hetero_specs():
    """A scaled-down (2, 2, 4) design point next to the full (12, 8, 16).

    The full point is unambiguously faster at every shape (strictly more
    PUs, PEs, and multipliers), which is what the dispatch-ordering
    assertions below need.
    """
    return [
        (AcceleratorConfig(num_pus=2, num_pes=2, num_multipliers=4), ZCU102),
        (AcceleratorConfig.zcu102_n8_m16(), ZCU111),
    ]


class TestHeterogeneousFleet:
    """Replicas with different design points: estimates and dispatch."""

    def test_specs_override_num_devices(self):
        router = DeviceRouter(BertConfig.tiny(), num_devices=7, specs=_hetero_specs())
        assert router.num_devices == 2
        assert router.devices[0].spec != router.devices[1].spec

    def test_empty_specs_rejected(self):
        with pytest.raises(ValueError):
            DeviceRouter(BertConfig.tiny(), specs=[])

    def test_per_device_estimates_differ_and_memoize(self):
        router = DeviceRouter(BertConfig.tiny(), specs=_hetero_specs())
        slow = router.estimate_latency_ms(32, 4, device_id=0)
        fast = router.estimate_latency_ms(32, 4, device_id=1)
        assert fast < slow  # (16, 16) outruns (8, 16)
        # Memoized per design point: repeated queries hit the cache and
        # stay bit-identical.
        assert router.estimate_latency_ms(32, 4, device_id=0) == slow
        assert router.estimate_latency_ms(32, 4, device_id=1) == fast
        assert len(router._latency_cache) == 2

    def test_identical_design_points_share_cache_entries(self):
        spec = (AcceleratorConfig.zcu102_n8_m16(), ZCU102)
        router = DeviceRouter(BertConfig.tiny(), specs=[spec, spec])
        a = router.estimate_latency_ms(16, 2, device_id=0)
        b = router.estimate_latency_ms(16, 2, device_id=1)
        assert a == b
        assert len(router._latency_cache) == 1

    def test_earliest_finish_prefers_fast_idle_device(self):
        router = DeviceRouter(BertConfig.tiny(), specs=_hetero_specs())
        dispatch = router.dispatch(32, 4, ready_ms=0.0)
        assert dispatch.device_id == 1
        assert dispatch.service_ms == router.estimate_latency_ms(32, 4, device_id=1)

    def test_slow_idle_device_wins_over_queued_fast_one(self):
        """Earliest *finish*, not earliest available: once the fast device
        queues deep enough, starting later on the slow idle one finishes
        sooner."""
        router = DeviceRouter(BertConfig.tiny(), specs=_hetero_specs())
        slow = router.estimate_latency_ms(32, 4, device_id=0)
        fast = router.estimate_latency_ms(32, 4, device_id=1)
        seen = []
        while len(seen) < 30 and {d.device_id for d in seen} != {0, 1}:
            seen.append(router.dispatch(32, 4, ready_ms=0.0))
        # The fast device serves first; the slow one joins once the fast
        # queue's wait exceeds the service-time gap.
        assert seen[0].device_id == 1
        assert {d.device_id for d in seen} == {0, 1}
        for d in seen:
            expected = slow if d.device_id == 0 else fast
            assert d.service_ms == expected
            assert d.finish_ms == d.start_ms + d.service_ms

    def test_hetero_dispatch_is_optimal_per_batch(self):
        """Every dispatch finishes no later than the alternative would have."""
        router = DeviceRouter(BertConfig.tiny(), specs=_hetero_specs())
        shadow = {0: 0.0, 1: 0.0}  # busy_until per device, tracked outside
        for i in range(10):
            ready = 0.5 * i
            candidates = {
                dev: max(ready, shadow[dev]) + router.estimate_latency_ms(32, 4, dev)
                for dev in shadow
            }
            dispatch = router.dispatch(32, 4, ready_ms=ready)
            assert dispatch.finish_ms == pytest.approx(min(candidates.values()))
            shadow[dispatch.device_id] = dispatch.finish_ms

    def test_busy_accounting_tracks_per_device_service(self):
        router = DeviceRouter(BertConfig.tiny(), specs=_hetero_specs())
        for _ in range(4):
            router.dispatch(16, 2, ready_ms=0.0)
        busy = router.busy_ms_by_device()
        total_expected = sum(
            d.batches_served * router.estimate_latency_ms(16, 2, d.device_id)
            for d in router.devices
        )
        assert sum(busy.values()) == pytest.approx(total_expected)

    def test_block_until_delays_start(self):
        router = DeviceRouter(BertConfig.tiny(), specs=_hetero_specs())
        router.block_until(100.0)
        dispatch = router.dispatch(16, 2, ready_ms=0.0)
        assert dispatch.start_ms == 100.0
