"""Device router: latency estimates, load balancing, busy accounting."""

import pytest

from repro.bert import BertConfig
from repro.serve import DeviceRouter


@pytest.fixture(scope="module")
def router2():
    return DeviceRouter(BertConfig.tiny(), num_devices=2)


class TestLatencyEstimates:
    def test_positive_and_memoized(self):
        router = DeviceRouter(BertConfig.tiny(), num_devices=1)
        first = router.estimate_latency_ms(16, 4)
        assert first > 0
        assert router.estimate_latency_ms(16, 4) == first
        assert (16, 4) in router._latency_cache

    def test_batching_amortizes_weight_stream(self):
        """Batch latency grows sublinearly: the resident weight tile serves
        the whole batch, so latency(B) < B * latency(1)."""
        router = DeviceRouter(BertConfig.tiny(), num_devices=1)
        single = router.estimate_latency_ms(16, 1)
        for batch in (2, 4, 8):
            assert router.estimate_latency_ms(16, batch) < batch * single

    def test_longer_sequences_cost_more(self):
        router = DeviceRouter(BertConfig.tiny(), num_devices=1)
        assert router.estimate_latency_ms(32, 1) > router.estimate_latency_ms(8, 1)

    def test_invalid_device_count(self):
        with pytest.raises(ValueError):
            DeviceRouter(BertConfig.tiny(), num_devices=0)


class TestDispatch:
    def test_round_robins_idle_devices(self, router2):
        a = router2.dispatch(16, 1, ready_ms=0.0)
        b = router2.dispatch(16, 1, ready_ms=0.0)
        assert {a.device_id, b.device_id} == {0, 1}
        # Both start immediately: two devices, two batches.
        assert a.start_ms == 0.0 and b.start_ms == 0.0

    def test_queues_behind_busy_devices(self):
        router = DeviceRouter(BertConfig.tiny(), num_devices=1)
        first = router.dispatch(16, 1, ready_ms=0.0)
        second = router.dispatch(16, 1, ready_ms=0.0)
        assert second.start_ms == first.finish_ms
        assert second.finish_ms == second.start_ms + second.service_ms

    def test_ready_time_respected(self):
        router = DeviceRouter(BertConfig.tiny(), num_devices=1)
        dispatch = router.dispatch(16, 1, ready_ms=42.0)
        assert dispatch.start_ms == 42.0

    def test_busy_accounting(self):
        router = DeviceRouter(BertConfig.tiny(), num_devices=2)
        for _ in range(4):
            router.dispatch(16, 2, ready_ms=0.0)
        busy = router.busy_ms_by_device()
        assert set(busy) == {0, 1}
        expected = 2 * router.estimate_latency_ms(16, 2)
        assert busy[0] == pytest.approx(expected)
        assert busy[1] == pytest.approx(expected)
        assert router.devices[0].batches_served == 2
        assert router.devices[0].requests_served == 4

    def test_two_devices_halve_makespan(self):
        """N devices drain a backlog of identical batches ~N x faster."""
        single = DeviceRouter(BertConfig.tiny(), num_devices=1)
        dual = DeviceRouter(BertConfig.tiny(), num_devices=2)
        finish_single = max(single.dispatch(16, 4, 0.0).finish_ms for _ in range(8))
        finish_dual = max(dual.dispatch(16, 4, 0.0).finish_ms for _ in range(8))
        assert finish_dual == pytest.approx(finish_single / 2)
