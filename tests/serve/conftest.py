"""Fixtures for the serving-engine tests: a frozen integer model + text pool."""

import pytest

from repro.quant import convert_to_integer


@pytest.fixture(scope="session")
def integer_model(trained_quant_model):
    """The trained FQ-BERT frozen to the integer engine (session-cached)."""
    return convert_to_integer(trained_quant_model)


@pytest.fixture(scope="session")
def serve_pool(tiny_task):
    """(text_a, text_b) pool for trace generation, from the tiny task's dev set."""
    task, _, _, _ = tiny_task
    return [(ex.text_a, ex.text_b) for ex in task.dev]


@pytest.fixture(scope="session")
def serve_tokenizer(tiny_task):
    _, _, _, tokenizer = tiny_task
    return tokenizer
