"""End-to-end serving engine: bit-exactness, bucketing, caching, timing."""

import numpy as np
import pytest

from repro.serve import (
    ServingConfig,
    ServingEngine,
    TraceRequest,
    generate_trace,
)

BUCKETS = (8, 12, 16)


def make_engine(integer_model, serve_tokenizer, **overrides):
    kwargs = dict(
        max_batch_size=4, max_wait_ms=5.0, buckets=BUCKETS, num_devices=2
    )
    kwargs.update(overrides)
    return ServingEngine(integer_model, serve_tokenizer, ServingConfig(**kwargs))


class TestHeterogeneousEngine:
    def test_device_specs_build_mixed_fleet(
        self, integer_model, serve_tokenizer, serve_pool
    ):
        """``device_specs`` plumbs per-device design points into the router
        and the engine balances across them (logits stay bit-exact — timing
        heterogeneity never touches values)."""
        from repro.accel import AcceleratorConfig
        from repro.accel.devices import ZCU102, ZCU111

        engine = ServingEngine(
            integer_model,
            serve_tokenizer,
            ServingConfig(max_batch_size=2, max_wait_ms=5.0, buckets=BUCKETS),
            device_specs=[
                (AcceleratorConfig(num_pus=2, num_pes=2, num_multipliers=4), ZCU102),
                (AcceleratorConfig.zcu102_n8_m16(), ZCU111),
            ],
        )
        assert engine.router.num_devices == 2
        # A simultaneous burst: the fast device's queue must grow deep
        # enough that earliest-finish dispatch spills onto the slow one.
        trace = [
            TraceRequest(text_a=text_a, text_b=text_b, arrival_ms=0.0)
            for text_a, text_b in (serve_pool * 3)[:48]
        ]
        results = engine.run_trace(trace)
        assert {r.device_id for r in results} == {0, 1}
        slow = engine.router.estimate_latency_ms(BUCKETS[0], 2, device_id=0)
        fast = engine.router.estimate_latency_ms(BUCKETS[0], 2, device_id=1)
        assert fast < slow
        by_device = {0: 0, 1: 0}
        for r in results:
            by_device[r.device_id] += 1
        assert by_device[1] > by_device[0]


class TestBitExactness:
    def test_logits_match_unbatched_inference(
        self, integer_model, serve_tokenizer, serve_pool
    ):
        """The acceptance criterion: engine logits are bit-identical to
        one-at-a-time integer-model inference on the same requests, even
        though the engine batches, buckets, and pads differently."""
        engine = make_engine(integer_model, serve_tokenizer)
        trace = generate_trace(serve_pool, num_requests=24, seed=11)
        results = engine.run_trace(trace)
        assert len(results) == 24
        for result, item in zip(results, sorted(trace, key=lambda t: t.arrival_ms)):
            ids, mask, segments = serve_tokenizer.encode(
                item.text_a, item.text_b, max_length=max(BUCKETS)
            )
            solo = integer_model.forward(ids[None], mask[None], segments[None])[0]
            np.testing.assert_array_equal(result.logits, solo)
            assert result.prediction == int(solo.argmax())

    def test_deterministic_across_runs(
        self, integer_model, serve_tokenizer, serve_pool
    ):
        trace = generate_trace(serve_pool, num_requests=16, seed=3)
        runs = []
        for _ in range(2):
            engine = make_engine(integer_model, serve_tokenizer)
            results = engine.run_trace(trace)
            runs.append((results, engine.stats()))
        (res_a, stats_a), (res_b, stats_b) = runs
        assert stats_a == stats_b
        for a, b in zip(res_a, res_b):
            np.testing.assert_array_equal(a.logits, b.logits)
            assert (a.latency_ms, a.device_id, a.batch_id) == (
                b.latency_ms,
                b.device_id,
                b.batch_id,
            )


class TestBucketing:
    def test_bucketing_beats_naive_padding(
        self, integer_model, serve_tokenizer, serve_pool
    ):
        """Length bucketing strictly reduces padded tokens vs padding every
        request to max_seq_len (given the pool has short requests)."""
        trace = generate_trace(serve_pool, num_requests=32, seed=7)
        bucketed = make_engine(integer_model, serve_tokenizer)
        bucketed.run_trace(trace)
        naive = make_engine(integer_model, serve_tokenizer, buckets=(max(BUCKETS),))
        naive.run_trace(trace)
        # Sanity: the trace actually contains sub-max-length requests.
        lengths = [r.length for r in bucketed.results.values()]
        assert any(length <= BUCKETS[-2] for length in lengths)
        assert (
            bucketed.stats().padding_efficiency > naive.stats().padding_efficiency
        )

    def test_requests_padded_to_their_bucket(
        self, integer_model, serve_tokenizer, serve_pool
    ):
        engine = make_engine(integer_model, serve_tokenizer)
        engine.run_trace(generate_trace(serve_pool, num_requests=16, seed=5))
        for result in engine.results.values():
            assert result.bucket in BUCKETS
            assert result.length <= result.bucket


class TestBatchingBehavior:
    def test_full_batch_executes_immediately(
        self, integer_model, serve_tokenizer, serve_pool
    ):
        engine = make_engine(integer_model, serve_tokenizer, buckets=(16,))
        text = serve_pool[0][0]
        for _ in range(4):  # max_batch_size = 4, same bucket
            engine.submit(text, arrival_ms=1.0)
        assert engine.batcher.pending == 0      # flushed by size, no deadline
        results = engine.drain()
        assert all(r.batch_size == 4 and r.start_ms == 1.0 for r in results)
        assert all(r.queue_ms == 0.0 for r in results)

    def test_partial_batch_waits_for_deadline(
        self, integer_model, serve_tokenizer, serve_pool
    ):
        engine = make_engine(integer_model, serve_tokenizer)
        engine.submit(serve_pool[0][0], arrival_ms=2.0)
        (result,) = engine.drain()
        assert result.start_ms == 7.0           # arrival + max_wait_ms
        assert result.queue_ms == 5.0
        assert result.latency_ms == pytest.approx(5.0 + result.service_ms)

    def test_no_batch_exceeds_max_size(
        self, integer_model, serve_tokenizer, serve_pool
    ):
        engine = make_engine(integer_model, serve_tokenizer, max_batch_size=3)
        engine.run_trace(generate_trace(serve_pool, num_requests=25, seed=9))
        assert all(r.batch_size <= 3 for r in engine.results.values())

    def test_arrivals_must_be_monotonic(
        self, integer_model, serve_tokenizer, serve_pool
    ):
        engine = make_engine(integer_model, serve_tokenizer)
        engine.submit(serve_pool[0][0], arrival_ms=5.0)
        with pytest.raises(ValueError):
            engine.submit(serve_pool[1][0], arrival_ms=4.0)

    def test_oversized_bucket_rejected(self, integer_model, serve_tokenizer):
        max_pos = integer_model.config.max_position_embeddings
        with pytest.raises(ValueError):
            ServingEngine(
                integer_model,
                serve_tokenizer,
                ServingConfig(buckets=(max_pos + 8,)),
            )


class TestCaching:
    def test_repeat_text_hits_cache(self, integer_model, serve_tokenizer, serve_pool):
        engine = make_engine(integer_model, serve_tokenizer)
        text = serve_pool[0][0]
        first = engine.submit(text, arrival_ms=0.0)
        second = engine.submit(text, arrival_ms=1.0)
        results = {r.request_id: r for r in engine.drain()}
        assert not results[first].cache_hit
        assert results[second].cache_hit
        np.testing.assert_array_equal(results[first].logits, results[second].logits)

    def test_hit_rate_reported(self, integer_model, serve_tokenizer, serve_pool):
        engine = make_engine(integer_model, serve_tokenizer)
        # A pool of 3 texts over 24 requests guarantees heavy repetition.
        trace = generate_trace(serve_pool[:3], num_requests=24, seed=2)
        engine.run_trace(trace)
        stats = engine.stats()
        assert stats.cache_hit_rate >= 21 / 24

    def test_eviction_under_tiny_capacity(
        self, integer_model, serve_tokenizer, serve_pool
    ):
        engine = make_engine(integer_model, serve_tokenizer, cache_capacity=1)
        a, b = serve_pool[0][0], serve_pool[1][0]
        engine.submit(a, arrival_ms=0.0)
        engine.submit(b, arrival_ms=1.0)   # evicts a
        engine.submit(a, arrival_ms=2.0)   # miss again
        results = engine.drain()
        assert not any(r.cache_hit for r in results)
        assert engine.cache.evictions >= 1


class TestStatsAndSlo:
    def test_stats_shape(self, integer_model, serve_tokenizer, serve_pool):
        engine = make_engine(integer_model, serve_tokenizer)
        engine.run_trace(generate_trace(serve_pool, num_requests=16, seed=1))
        stats = engine.stats()
        assert stats.num_requests == 16
        assert stats.num_batches >= 16 / 4
        assert stats.makespan_ms > 0
        assert stats.throughput_rps > 0
        assert 0 < stats.padding_efficiency <= 1
        assert set(stats.device_busy_ms) == {0, 1}
        assert stats.p50_latency_ms <= stats.p99_latency_ms

    def test_stats_without_traffic_rejected(self, integer_model, serve_tokenizer):
        with pytest.raises(ValueError):
            make_engine(integer_model, serve_tokenizer).stats()

    def test_slo_accounting(self, integer_model, serve_tokenizer, serve_pool):
        trace = generate_trace(serve_pool, num_requests=12, seed=4)
        strict = make_engine(integer_model, serve_tokenizer, slo_ms=1e-6)
        strict.run_trace(trace)
        assert strict.stats().slo_attainment == 0.0
        loose = make_engine(integer_model, serve_tokenizer, slo_ms=1e9)
        loose.run_trace(trace)
        assert loose.stats().slo_attainment == 1.0

    def test_predictions_match_model_predict(
        self, integer_model, serve_tokenizer, serve_pool
    ):
        engine = make_engine(integer_model, serve_tokenizer)
        trace = generate_trace(serve_pool, num_requests=8, seed=6)
        results = engine.run_trace(trace)
        for result, item in zip(results, sorted(trace, key=lambda t: t.arrival_ms)):
            ids, mask, segments = serve_tokenizer.encode(
                item.text_a, item.text_b, max_length=max(BUCKETS)
            )
            assert result.prediction == int(
                integer_model.predict(ids[None], mask[None], segments[None])[0]
            )


class TestTraceGeneration:
    def test_deterministic(self, serve_pool):
        assert generate_trace(serve_pool, 10, seed=0) == generate_trace(
            serve_pool, 10, seed=0
        )

    def test_arrivals_increase(self, serve_pool):
        trace = generate_trace(serve_pool, 20, seed=1)
        arrivals = [t.arrival_ms for t in trace]
        assert arrivals == sorted(arrivals)

    def test_validation(self, serve_pool):
        with pytest.raises(ValueError):
            generate_trace(serve_pool, 0)
        with pytest.raises(ValueError):
            generate_trace([], 4)
