"""Dynamic batcher invariants: size caps, deadline flushes, bucketing."""

import pytest

from repro.serve import BatchingPolicy, DynamicBatcher, PendingRequest


def pending(length=8, at=0.0, tag=None):
    return PendingRequest(payload=tag, length=length, enqueue_ms=at)


class TestPolicy:
    def test_bucket_for_picks_smallest_fit(self):
        policy = BatchingPolicy(buckets=(8, 16, 32))
        assert policy.bucket_for(1) == 8
        assert policy.bucket_for(8) == 8
        assert policy.bucket_for(9) == 16
        assert policy.bucket_for(32) == 32

    def test_bucket_overflow_rejected(self):
        with pytest.raises(ValueError):
            BatchingPolicy(buckets=(8, 16)).bucket_for(17)

    def test_invalid_length_rejected(self):
        with pytest.raises(ValueError):
            BatchingPolicy().bucket_for(0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_batch_size": 0},
            {"max_wait_ms": -1.0},
            {"buckets": ()},
            {"buckets": (16, 8)},     # not increasing
            {"buckets": (8, 8, 16)},  # duplicate
            {"buckets": (0, 8)},      # non-positive
        ],
    )
    def test_invalid_policy_rejected(self, kwargs):
        with pytest.raises(ValueError):
            BatchingPolicy(**kwargs)

    def test_max_seq_len_is_largest_bucket(self):
        assert BatchingPolicy(buckets=(8, 48)).max_seq_len == 48


class TestSizeFlush:
    def test_flush_exactly_at_max_size(self):
        batcher = DynamicBatcher(BatchingPolicy(max_batch_size=3, buckets=(16,)))
        assert batcher.add(pending(), 0.0) is None
        assert batcher.add(pending(), 1.0) is None
        batch = batcher.add(pending(), 2.0)
        assert batch is not None and batch.size == 3
        assert batcher.pending == 0

    def test_no_batch_ever_exceeds_max_size(self):
        policy = BatchingPolicy(max_batch_size=4, max_wait_ms=5.0, buckets=(8, 16))
        batcher = DynamicBatcher(policy)
        batches = []
        for i in range(37):
            full = batcher.add(pending(length=8 if i % 3 else 16, at=float(i)), float(i))
            if full:
                batches.append(full)
        batches.extend(batcher.flush_all(100.0))
        assert batcher.pending == 0
        assert all(b.size <= policy.max_batch_size for b in batches)
        assert sum(b.size for b in batches) == 37

    def test_full_batch_flushes_at_submit_time(self):
        batcher = DynamicBatcher(BatchingPolicy(max_batch_size=2, buckets=(16,)))
        batcher.add(pending(at=0.0), 0.0)
        batch = batcher.add(pending(at=3.0), 3.0)
        assert batch.flush_ms == 3.0


class TestDeadlineFlush:
    def test_partial_batch_flushes_at_deadline(self):
        batcher = DynamicBatcher(
            BatchingPolicy(max_batch_size=8, max_wait_ms=5.0, buckets=(16,))
        )
        batcher.add(pending(at=1.0), 1.0)
        assert batcher.due_batches(5.9) == []          # deadline is 6.0
        flushed = batcher.due_batches(6.0)
        assert len(flushed) == 1 and flushed[0].size == 1
        assert flushed[0].flush_ms == 6.0              # fired at the deadline

    def test_deadline_is_oldest_requests(self):
        batcher = DynamicBatcher(
            BatchingPolicy(max_batch_size=8, max_wait_ms=5.0, buckets=(16,))
        )
        batcher.add(pending(at=0.0), 0.0)
        batcher.add(pending(at=4.0), 4.0)
        assert batcher.next_deadline() == 5.0
        flushed = batcher.due_batches(5.0)
        assert len(flushed) == 1 and flushed[0].size == 2

    def test_due_batches_come_out_in_deadline_order(self):
        batcher = DynamicBatcher(
            BatchingPolicy(max_batch_size=8, max_wait_ms=5.0, buckets=(8, 16))
        )
        batcher.add(pending(length=16, at=0.0), 0.0)
        batcher.add(pending(length=8, at=2.0), 2.0)
        flushed = batcher.due_batches(10.0)
        assert [b.flush_ms for b in flushed] == [5.0, 7.0]
        assert [b.bucket for b in flushed] == [16, 8]

    def test_next_deadline_none_when_idle(self):
        batcher = DynamicBatcher(BatchingPolicy())
        assert batcher.next_deadline() is None


class TestBucketing:
    def test_different_buckets_never_mix(self):
        batcher = DynamicBatcher(
            BatchingPolicy(max_batch_size=4, max_wait_ms=5.0, buckets=(8, 16))
        )
        for i, length in enumerate((3, 12, 5, 14)):
            batcher.add(pending(length=length, at=float(i)), float(i))
        flushed = batcher.flush_all(50.0)
        assert sorted(b.bucket for b in flushed) == [8, 16]
        for batch in flushed:
            assert all(r.length <= batch.bucket for r in batch.requests)

    def test_token_accounting(self):
        batcher = DynamicBatcher(BatchingPolicy(max_batch_size=2, buckets=(16,)))
        batch = None
        for length in (5, 11):
            batch = batcher.add(pending(length=length), 0.0) or batch
        assert batch.real_tokens == 16
        assert batch.padded_tokens == 32

    def test_flush_all_empties_every_bucket(self):
        batcher = DynamicBatcher(
            BatchingPolicy(max_batch_size=8, buckets=(8, 16, 32))
        )
        for length in (4, 12, 20, 6):
            batcher.add(pending(length=length), 0.0)
        assert batcher.pending == 4
        flushed = batcher.flush_all(1.0)
        assert batcher.pending == 0
        assert sum(b.size for b in flushed) == 4
