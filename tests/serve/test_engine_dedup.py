"""Batch-level encoding dedup must be invisible in results and timing."""

import numpy as np

from repro.perf import HashTokenizer, build_synthetic_integer_model
from repro.serve import ServingConfig, ServingEngine


def _engine(**overrides):
    model = build_synthetic_integer_model(seed=2)
    config = ServingConfig(
        max_batch_size=8,
        max_wait_ms=5.0,
        buckets=(8, 16),
        cache_capacity=64,
        **overrides,
    )
    return ServingEngine(model, HashTokenizer(model.config.vocab_size), config), model


class TestEngineDedup:
    def test_duplicate_requests_get_bit_identical_logits(self):
        engine, model = _engine()
        texts = ["alpha beta gamma", "alpha beta gamma", "delta", "alpha beta gamma"]
        for i, text in enumerate(texts):
            engine.submit(text, arrival_ms=float(i) * 0.1)
        results = engine.drain()
        assert len(results) == 4
        np.testing.assert_array_equal(results[0].logits, results[1].logits)
        np.testing.assert_array_equal(results[0].logits, results[3].logits)
        assert not np.array_equal(results[0].logits, results[2].logits)

    def test_deduped_logits_match_one_at_a_time_forward(self):
        engine, model = _engine()
        texts = ["one two three", "one two three", "four five", "six"]
        for i, text in enumerate(texts):
            engine.submit(text, arrival_ms=float(i) * 0.1)
        results = {r.request_id: r for r in engine.drain()}
        tokenizer = HashTokenizer(model.config.vocab_size)
        for request_id, text in enumerate(texts):
            bucket = results[request_id].bucket
            ids, mask, segments = tokenizer.encode(text, max_length=16)
            expected = model.forward(
                ids[None, :bucket], mask[None, :bucket], segments[None, :bucket]
            )[0]
            np.testing.assert_array_equal(results[request_id].logits, expected)

    def test_timing_still_models_full_flushed_batch(self):
        """Dedup saves host compute only — simulated service time must see
        the full padded batch the accelerator would run."""
        dup_engine, _ = _engine()
        for i in range(4):
            dup_engine.submit("same text", arrival_ms=0.0 if i == 0 else 0.01 * i)
        dup_results = dup_engine.drain()

        distinct_engine, _ = _engine()
        for i, text in enumerate(["a0", "a1", "a2", "a3"]):
            distinct_engine.submit(text, arrival_ms=0.0 if i == 0 else 0.01 * i)
        distinct_results = distinct_engine.drain()

        assert dup_results[0].batch_size == distinct_results[0].batch_size == 4
        assert dup_results[0].service_ms == distinct_results[0].service_ms
