"""Softmax core and LN core: function matches the quant reference, timing sane."""

import numpy as np
import pytest

from repro.accel import LnCore, SoftmaxCore, make_ln_core
from repro.quant import quantized_softmax


class TestSoftmaxCore:
    def test_matches_reference_softmax(self, rng):
        core = SoftmaxCore(score_scale=20.0)
        codes = rng.integers(-127, 128, size=(3, 4, 10))
        expected, _ = quantized_softmax(codes, 20.0)
        np.testing.assert_array_equal(core.forward(codes), expected)

    def test_mask_forwarded(self, rng):
        core = SoftmaxCore(score_scale=10.0)
        codes = rng.integers(-50, 50, size=(2, 6))
        mask = np.array([[1, 1, 1, 0, 0, 0], [1, 1, 1, 1, 1, 1]])
        out = core.forward(codes, mask=mask)
        assert np.all(out[0, 3:] == 0)

    def test_lut_is_256_entries(self):
        assert len(SoftmaxCore(score_scale=5.0).lut) == 256

    def test_cycle_model(self):
        core = SoftmaxCore(score_scale=5.0, simd=16, pipeline_depth=8)
        # 128-wide rows: 2 * ceil(128/16) + 8 = 24 cycles per row.
        assert core.cycles(num_rows=1, row_len=128) == 24
        assert core.cycles(num_rows=1536, row_len=128) == 1536 * 24

    def test_wider_simd_fewer_cycles(self):
        narrow = SoftmaxCore(score_scale=5.0, simd=8)
        wide = SoftmaxCore(score_scale=5.0, simd=32)
        assert wide.cycles(10, 128) < narrow.cycles(10, 128)


class TestLnCore:
    @pytest.fixture
    def core(self, rng):
        gamma = np.rint(rng.uniform(0.5, 2.0, 32) * 16).astype(np.int64)
        beta = np.rint(rng.uniform(-0.5, 0.5, 32) * 16).astype(np.int64)
        return make_ln_core(
            gamma, beta, scale_a=20.0, scale_b=25.0, out_scale=16.0
        )

    def test_stages_compose_to_forward(self, core, rng):
        codes_a = rng.integers(-127, 128, size=(3, 32))
        codes_b = rng.integers(-127, 128, size=(3, 32))
        v, mean = core.stage1(codes_a, codes_b)
        centered, std = core.stage2(v, mean)
        staged = core.stage3(centered, std)
        np.testing.assert_array_equal(staged, core.forward(codes_a, codes_b))

    def test_matches_integer_layernorm(self, core, rng):
        codes_a = rng.integers(-127, 128, size=(2, 32))
        codes_b = rng.integers(-127, 128, size=(2, 32))
        np.testing.assert_array_equal(
            core.forward(codes_a, codes_b), core.ln.forward(codes_a, codes_b)
        )

    def test_stage1_mean_is_row_mean(self, core, rng):
        codes_a = rng.integers(-127, 128, size=(4, 32))
        codes_b = rng.integers(-127, 128, size=(4, 32))
        v, mean = core.stage1(codes_a, codes_b)
        np.testing.assert_allclose(mean[:, 0], v.mean(axis=-1), atol=1.0)

    def test_cycle_model(self, core):
        # 3-stage pipeline over tokens: (tokens + 2) * scan + depth.
        assert core.cycles(num_tokens=128, width=768) == (128 + 2) * 48 + 6

    def test_output_in_8bit_range(self, core, rng):
        codes_a = rng.integers(-127, 128, size=(5, 32))
        codes_b = rng.integers(-127, 128, size=(5, 32))
        out = core.forward(codes_a, codes_b)
        assert out.min() >= -128 and out.max() <= 127
