"""PE/PU array: chunked accumulation equals plain integer matvec."""

import numpy as np
import pytest

from repro.accel import Bim, BimMode, BimType, ProcessingElement, make_pu, reference_matvec
from repro.quant.fixedpoint import FixedPointMultiplier
from repro.accel.pe import QuantizationModule


class TestProcessingElement:
    def test_row_accumulation_8x4(self, rng):
        pe = ProcessingElement(Bim(16))
        a = rng.integers(-127, 128, size=100)  # non-multiple of 16: padding path
        w = rng.integers(-7, 8, size=100)
        assert pe.accumulate_row(a, w) == int(a @ w)

    def test_row_accumulation_8x8(self, rng):
        pe = ProcessingElement(Bim(16))
        a = rng.integers(-127, 128, size=50)
        w = rng.integers(-127, 128, size=50)
        assert pe.accumulate_row(a, w, BimMode.MODE_8x8) == int(a @ w)

    def test_unsigned_activation_row(self, rng):
        pe = ProcessingElement(Bim(8))
        a = rng.integers(0, 256, size=30)
        w = rng.integers(-127, 128, size=30)
        assert pe.accumulate_row(a, w, BimMode.MODE_8x8, act_signed=False) == int(a @ w)

    def test_shape_mismatch_rejected(self):
        pe = ProcessingElement(Bim(8))
        with pytest.raises(ValueError):
            pe.accumulate_row(np.zeros(8), np.zeros(9))

    def test_cycles_per_row(self):
        pe = ProcessingElement(Bim(16))
        assert pe.cycles_per_row(768, BimMode.MODE_8x4) == 48
        assert pe.cycles_per_row(768, BimMode.MODE_8x8) == 96
        assert pe.cycles_per_row(100, BimMode.MODE_8x4) == 7  # ceil

    def test_accumulator_overflow_detected(self):
        pe = ProcessingElement(Bim(2))
        # 2^31 / (127*7) ~ 2.4M accumulations would overflow; simulate by
        # feeding max-magnitude products repeatedly.
        a = np.full(3_000_000, 127, dtype=np.int64)
        w = np.full(3_000_000, 7, dtype=np.int64)
        with pytest.raises(OverflowError):
            pe.accumulate_row(a, w)


class TestProcessingUnit:
    @pytest.mark.parametrize("bim_type", [BimType.TYPE_A, BimType.TYPE_B])
    def test_matvec_8x4(self, bim_type, rng):
        pu = make_pu(num_pes=4, num_multipliers=8, bim_type=bim_type)
        weights = rng.integers(-7, 8, size=(10, 33))
        x = rng.integers(-127, 128, size=33)
        np.testing.assert_array_equal(pu.matvec(weights, x), reference_matvec(weights, x))

    def test_matvec_8x8(self, rng):
        pu = make_pu(num_pes=4, num_multipliers=8)
        weights = rng.integers(-127, 128, size=(6, 20))
        x = rng.integers(-127, 128, size=20)
        np.testing.assert_array_equal(
            pu.matvec(weights, x, BimMode.MODE_8x8), reference_matvec(weights, x)
        )

    def test_passes(self):
        pu = make_pu(num_pes=8, num_multipliers=16)
        assert pu.passes(768) == 96
        assert pu.passes(7) == 1
        assert pu.passes(9) == 2


class TestQuantizationModule:
    def test_bias_add_and_requant(self, rng):
        module = QuantizationModule(requant=FixedPointMultiplier.from_float(0.01))
        acc = rng.integers(-10000, 10000, size=50)
        bias = rng.integers(-500, 500, size=50)
        out = module.apply(acc, bias)
        expected = np.clip(np.rint((acc + bias) * 0.01), -128, 127)
        assert np.abs(out - expected).max() <= 1

    def test_saturation(self):
        module = QuantizationModule(requant=FixedPointMultiplier.from_float(1.0))
        out = module.apply(np.array([100000, -100000]))
        np.testing.assert_array_equal(out, [127, -128])
