"""Resource model: Table III calibration and structural behaviour."""

import pytest

from repro.accel import (
    AcceleratorConfig,
    BimType,
    OnChipBuffer,
    ZCU102,
    ZCU111,
    bram_report,
    build_buffer_set,
    estimate_dsp,
    estimate_ff,
    estimate_lut,
    estimate_resources,
)
from repro.bert import BertConfig


class TestTableIIICalibration:
    """DSP/FF/LUT must match the paper's three design points exactly."""

    @pytest.mark.parametrize(
        "n, m, dsp, ff, lut",
        [
            (8, 16, 1751, 124433, 123157),
            (16, 8, 1671, 151010, 154192),
            (16, 16, 3287, 201469, 189724),
        ],
    )
    def test_dsp_ff_lut(self, n, m, dsp, ff, lut):
        config = AcceleratorConfig(num_pes=n, num_multipliers=m)
        assert estimate_dsp(config) == pytest.approx(dsp, abs=1)
        assert estimate_ff(config) == pytest.approx(ff, abs=10)
        assert estimate_lut(config) == pytest.approx(lut, abs=40)

    @pytest.mark.parametrize(
        "n, m, device, paper_bram",
        [(8, 16, ZCU102, 838), (16, 8, ZCU102, 877)],
    )
    def test_bram_within_10_percent(self, n, m, device, paper_bram):
        config = AcceleratorConfig(num_pes=n, num_multipliers=m)
        estimate = estimate_resources(config, BertConfig.base(), device=device)
        assert estimate.bram18k == pytest.approx(paper_bram, rel=0.10)

    def test_zcu111_uses_uram(self):
        """Table III footnote: some ZCU111 memory maps to URAM."""
        config = AcceleratorConfig.zcu111_n16_m16()
        estimate = estimate_resources(config, BertConfig.base(), device=ZCU111)
        assert estimate.uram > 0
        assert estimate.bram18k < 838  # big buffers moved off BRAM

    @pytest.mark.parametrize(
        "config, device",
        [
            (AcceleratorConfig.zcu102_n8_m16(), ZCU102),
            (AcceleratorConfig.zcu102_n16_m8(), ZCU102),
            (AcceleratorConfig.zcu111_n16_m16(), ZCU111),
        ],
    )
    def test_designs_fit_their_devices(self, config, device):
        estimate = estimate_resources(config, BertConfig.base(), device=device)
        assert estimate.fits(device)

    def test_oversized_design_does_not_fit(self):
        config = AcceleratorConfig(num_pes=64, num_multipliers=64)
        estimate = estimate_resources(config, BertConfig.base(), device=ZCU102)
        assert not estimate.fits(ZCU102)

    def test_dsp_utilization_high(self):
        """The paper notes DSP usage is very high on the target FPGA."""
        config = AcceleratorConfig.zcu111_n16_m16()
        estimate = estimate_resources(config, BertConfig.base(), device=ZCU111)
        assert estimate.utilization(ZCU111)["DSP48E"] > 0.7


class TestBimTypeAblation:
    def test_type_b_costs_more_lut(self):
        """Figure 4: Type A (shift at tree output) saves resources."""
        type_a = AcceleratorConfig(bim_type=BimType.TYPE_A)
        type_b = AcceleratorConfig(bim_type=BimType.TYPE_B)
        assert estimate_lut(type_b) > estimate_lut(type_a)

    def test_dsp_unaffected_by_bim_type(self):
        type_a = AcceleratorConfig(bim_type=BimType.TYPE_A)
        type_b = AcceleratorConfig(bim_type=BimType.TYPE_B)
        assert estimate_dsp(type_a) == estimate_dsp(type_b)


class TestBuffers:
    def test_bram_banking_by_capacity(self):
        buffer = OnChipBuffer("x", depth=18 * 1024, width_bits=8)  # 144 Kib
        assert buffer.bram18k() == 8

    def test_bram_banking_by_width(self):
        # Tiny but very wide: port width forces parallel banks.
        buffer = OnChipBuffer("x", depth=4, width_bits=144)
        assert buffer.bram18k() == 4

    def test_double_buffering_doubles(self):
        single = OnChipBuffer("x", depth=1024, width_bits=32)
        double = OnChipBuffer("x", depth=1024, width_bits=32, double_buffered=True)
        assert double.bram18k() == 2 * single.bram18k()

    def test_empty_buffer(self):
        assert OnChipBuffer("x", depth=0, width_bits=8).bram18k() == 0

    def test_buffer_set_has_figure2_buffers(self):
        buffers = build_buffer_set(AcceleratorConfig(), BertConfig.base())
        names = {buffer.name for buffer in buffers}
        assert names == {
            "weight_buf", "input_buf", "output_buf",
            "intermediate_buf", "psum_buf", "param_buf",
        }

    def test_weight_buffer_double_buffered(self):
        buffers = build_buffer_set(AcceleratorConfig(), BertConfig.base())
        weight_buf = next(b for b in buffers if b.name == "weight_buf")
        assert weight_buf.double_buffered

    def test_report_totals(self):
        buffers = build_buffer_set(AcceleratorConfig(), BertConfig.base())
        report = bram_report(buffers)
        assert report["total"] == sum(v for k, v in report.items() if k != "total")


class TestFitsBoundaries:
    """Exactly-at-capacity designs fit; one unit over does not.

    The design-space explorer's constraint filter leans on these edges: a
    candidate using every last DSP is feasible, headroom 0.0.
    """

    def test_exactly_at_capacity_fits(self):
        from repro.accel import FpgaDevice, ResourceEstimate

        device = FpgaDevice(name="tiny", bram18k=10, dsp48=20, ff=30, lut=40)
        exact = ResourceEstimate(bram18k=10, dsp48=20, ff=30, lut=40)
        assert device.fits(10, 20, 30, 40)
        assert exact.fits(device)
        assert exact.headroom(device) == 0.0

    @pytest.mark.parametrize(
        "resource", ["bram18k", "dsp48", "ff", "lut"]
    )
    def test_one_unit_over_any_resource_fails(self, resource):
        from repro.accel import FpgaDevice, ResourceEstimate

        device = FpgaDevice(name="tiny", bram18k=10, dsp48=20, ff=30, lut=40)
        usage = {"bram18k": 10, "dsp48": 20, "ff": 30, "lut": 40}
        usage[resource] += 1
        estimate = ResourceEstimate(**usage)
        assert not estimate.fits(device)
        assert estimate.headroom(device) < 0.0

    def test_uram_boundary(self):
        from repro.accel import FpgaDevice, ResourceEstimate

        device = FpgaDevice(name="tiny", bram18k=10, dsp48=20, ff=30, lut=40, uram=5)
        assert ResourceEstimate(bram18k=1, dsp48=1, ff=1, lut=1, uram=5).fits(device)
        assert not ResourceEstimate(bram18k=1, dsp48=1, ff=1, lut=1, uram=6).fits(device)

    def test_uram_on_uramless_device(self):
        """Any URAM use is categorically infeasible on a URAM-less part."""
        from repro.accel import ResourceEstimate

        estimate = ResourceEstimate(bram18k=1, dsp48=1, ff=1, lut=1, uram=1)
        assert not estimate.fits(ZCU102)
        assert estimate.headroom(ZCU102) == -1.0

    def test_utilization_reports_uram_only_when_present(self):
        from repro.accel import ResourceEstimate

        estimate = ResourceEstimate(bram18k=1, dsp48=1, ff=1, lut=1, uram=2)
        assert "URAM" not in estimate.utilization(ZCU102)
        assert estimate.utilization(ZCU111)["URAM"] == 2 / ZCU111.uram
