"""Failure injection: the verification harness must detect corruption.

A verification suite that never fails is untested itself.  These tests
corrupt one piece of the deployed model at a time and assert that
``verify_stack`` (or the specific equivalence check) flags exactly the
expected boundary.
"""

import numpy as np
import pytest

from repro.accel import AcceleratorConfig, AcceleratorSimulator, ZCU102
from repro.quant import convert_to_integer


@pytest.fixture
def deployed(trained_quant_model, tiny_task):
    _, _, dev, _ = tiny_task
    batch = dev.full_batch()
    engine = convert_to_integer(trained_quant_model)
    return engine, batch.input_ids[:4], batch.attention_mask[:4]


class TestWeightCorruption:
    def test_flipped_weight_changes_functional_output(self, deployed):
        engine, ids, mask = deployed
        baseline = engine.forward(ids, mask)
        # Corrupt one weight code of FFN1 in layer 0 (stay in 4-bit range).
        original = engine.layers[0].ffn1.weight_codes[0, 0]
        engine.layers[0].ffn1.weight_codes[0, 0] = -original if original else 7
        engine.layers[0].ffn1.invalidate_cache()  # in-place edit of frozen codes
        corrupted = engine.forward(ids, mask)
        engine.layers[0].ffn1.weight_codes[0, 0] = original
        engine.layers[0].ffn1.invalidate_cache()
        assert not np.array_equal(baseline, corrupted)

    def test_pe_array_tracks_corruption(self, deployed):
        """Corruption affects both paths identically (same frozen weights) —
        the equivalence check stays green, as it must: it checks datapath
        consistency, not weight integrity."""
        engine, ids, mask = deployed
        original = engine.layers[0].ffn1.weight_codes[1, 1]
        engine.layers[0].ffn1.weight_codes[1, 1] = 7
        try:
            simulator = AcceleratorSimulator(
                AcceleratorConfig(num_pus=2, num_pes=4, num_multipliers=8), ZCU102
            )
            hw = simulator.run_functional(engine, ids[:1], mask[:1])
            sw = engine.forward(ids[:1], mask[:1])
            np.testing.assert_array_equal(hw, sw)
        finally:
            engine.layers[0].ffn1.weight_codes[1, 1] = original


class TestRequantCorruption:
    def test_wrong_requant_breaks_qat_agreement(self, trained_quant_model, tiny_task):
        """A mis-frozen requant multiplier must surface in the QAT-vs-integer
        logit check (the boundary that owns scale correctness)."""
        from repro.quant.fixedpoint import FixedPointMultiplier

        _, _, dev, _ = tiny_task
        batch = dev.full_batch()
        ids, mask = batch.input_ids[:8], batch.attention_mask[:8]

        engine = convert_to_integer(trained_quant_model)
        with_good = engine.forward(ids, mask)
        bad = FixedPointMultiplier.from_float(
            engine.layers[0].ffn1.requant.to_float() * 2.0  # 2x wrong scale
        )
        engine.layers[0].ffn1.requant = bad
        with_bad = engine.forward(ids, mask)
        drift_good = np.abs(with_good - trained_quant_model(ids, mask).data).max()
        drift_bad = np.abs(with_bad - trained_quant_model(ids, mask).data).max()
        assert drift_bad > drift_good * 2


class TestLutCorruption:
    def test_non_monotone_exp_lut_detected(self, deployed):
        """A corrupted softmax LUT violates its monotonicity invariant."""
        engine, _, _ = deployed
        lut = engine.layers[0].attention.exp_lut.copy()
        lut[10] = lut[5] + 50  # break monotone decrease
        assert not np.all(np.diff(lut) <= 0)

    def test_corrupted_lut_changes_attention(self, deployed):
        engine, ids, mask = deployed
        baseline = engine.forward(ids, mask)
        original = engine.layers[0].attention.exp_lut.copy()
        engine.layers[0].attention.exp_lut[:32] = 0  # kill near-max entries
        corrupted = engine.forward(ids, mask)
        engine.layers[0].attention.exp_lut[:] = original
        assert not np.array_equal(baseline, corrupted)


class TestGeluLutCorruption:
    def test_identity_table_detected_by_output_change(self, deployed):
        engine, ids, mask = deployed
        baseline = engine.forward(ids, mask)
        gelu = engine.layers[0].gelu
        original = gelu.table.copy()
        gelu.table[:] = np.arange(-127, 128)  # identity instead of GELU
        corrupted = engine.forward(ids, mask)
        gelu.table[:] = original
        assert not np.array_equal(baseline, corrupted)
