"""Verification harness: the cross-model checks themselves."""

import numpy as np
import pytest

from repro.accel import AcceleratorConfig, VerificationReport, verify_stack


class TestVerificationReport:
    def test_empty_report_passes(self):
        assert VerificationReport().passed

    def test_failure_propagates(self):
        report = VerificationReport()
        report.add("ok", True, "fine")
        report.add("bad", False, "broken")
        assert not report.passed
        rendered = report.render()
        assert "[PASS] ok" in rendered and "[FAIL] bad" in rendered
        assert "FAILURES PRESENT" in rendered

    def test_all_pass_render(self):
        report = VerificationReport()
        report.add("a", True, "x")
        assert "ALL CHECKS PASSED" in report.render()


class TestVerifyStack:
    def test_trained_model_passes_all_checks(self, trained_quant_model, tiny_task):
        _, _, dev, _ = tiny_task
        batch = dev.full_batch()
        report = verify_stack(
            trained_quant_model,
            batch.input_ids[:3],
            batch.attention_mask[:3],
            batch.token_type_ids[:3],
        )
        assert report.passed, report.render()

    def test_check_names_complete(self, trained_quant_model, tiny_task):
        _, _, dev, _ = tiny_task
        batch = dev.full_batch()
        report = verify_stack(
            trained_quant_model, batch.input_ids[:2], batch.attention_mask[:2]
        )
        names = {check.name for check in report.checks}
        assert names == {
            "qat_vs_integer_predictions",
            "qat_vs_integer_logits",
            "integer_vs_pe_array",
            "functional_config_independence",
            "rtl_vs_integer_linear",
            "rtl_cycle_law",
        }

    def test_custom_accel_config(self, trained_quant_model, tiny_task):
        _, _, dev, _ = tiny_task
        batch = dev.full_batch()
        report = verify_stack(
            trained_quant_model,
            batch.input_ids[:2],
            batch.attention_mask[:2],
            accel_config=AcceleratorConfig(num_pus=4, num_pes=2, num_multipliers=8),
        )
        assert report.passed, report.render()

    def test_untrained_model_still_consistent(self, tiny_config):
        """Consistency between implementations holds regardless of training."""
        from repro.quant import QuantBertForSequenceClassification, QuantConfig

        rng = np.random.default_rng(9)
        model = QuantBertForSequenceClassification(
            tiny_config, QuantConfig.fq_bert(), rng=rng
        )
        model.train()
        ids = rng.integers(0, tiny_config.vocab_size, size=(2, 8))
        model(ids)  # calibrate observers
        model.eval()
        report = verify_stack(model, ids)
        assert report.passed, report.render()
