"""Lowering layer: allocation, capacity checks, program invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel import AcceleratorConfig, build_encoder_workload
from repro.accel.buffers import OnChipBuffer
from repro.accel.lowering import (
    BufferAllocator,
    InstructionKind,
    LoweringError,
    Region,
    lower_layer,
    lowering_report,
)
from repro.bert import BertConfig


class TestBufferAllocator:
    @pytest.fixture
    def allocator(self):
        return BufferAllocator(OnChipBuffer("test", depth=1024, width_bits=8))

    def test_bump_allocation(self, allocator):
        a = allocator.allocate("a", 100)
        b = allocator.allocate("b", 100)
        assert not a.overlaps(b)
        assert allocator.used_bytes == 200

    def test_overflow_raises(self, allocator):
        with pytest.raises(LoweringError):
            allocator.allocate("big", 2000)

    def test_free_enables_reuse(self, allocator):
        allocator.allocate("a", 1000)
        allocator.free("a")
        region = allocator.allocate("b", 1000)  # would not fit without reuse
        assert region.size == 1000

    def test_coalescing(self, allocator):
        allocator.allocate("a", 512)
        allocator.allocate("b", 512)
        allocator.free("a")
        allocator.free("b")
        # Freed blocks must merge so a full-size allocation fits again.
        assert allocator.allocate("c", 1024).size == 1024

    def test_free_unknown_raises(self, allocator):
        with pytest.raises(KeyError):
            allocator.free("ghost")

    def test_peak_tracking(self, allocator):
        allocator.allocate("a", 600)
        allocator.free("a")
        allocator.allocate("b", 100)
        assert allocator.peak_bytes == 600
        assert allocator.peak_utilization == pytest.approx(600 / 1024)

    def test_negative_allocation_rejected(self, allocator):
        with pytest.raises(ValueError):
            allocator.allocate("neg", -1)


class TestRegion:
    def test_overlap_same_buffer(self):
        a = Region("buf", 0, 10, "a")
        b = Region("buf", 5, 10, "b")
        c = Region("buf", 10, 10, "c")
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_no_overlap_across_buffers(self):
        a = Region("x", 0, 10, "a")
        b = Region("y", 0, 10, "b")
        assert not a.overlaps(b)


class TestLowerLayer:
    @pytest.mark.parametrize(
        "model, accel",
        [
            (BertConfig.base(), AcceleratorConfig.zcu102_n8_m16()),
            (BertConfig.base(), AcceleratorConfig.zcu111_n16_m16()),
            (BertConfig.tiny(), AcceleratorConfig(num_pus=2, num_pes=2, num_multipliers=4)),
        ],
        ids=["base-8x16", "base-16x16", "tiny"],
    )
    def test_lowering_succeeds_and_validates(self, model, accel):
        seq = min(128, model.max_position_embeddings)
        program = lower_layer(model, accel, seq_len=seq)
        program.validate()  # idempotent re-check
        assert program.instructions

    def test_stage_order_matches_figure5(self):
        program = lower_layer(BertConfig.base(), AcceleratorConfig.zcu102_n8_m16())
        assert program.stage_names() == [
            "X*W_Q", "X*W_K", "X*W_V", "Q*K^T", "softmax", "Attn*V",
            "O_A*W_s", "Add&LN_1", "FFN1", "GELU", "FFN2", "Add&LN_2",
        ]

    def test_dram_traffic_matches_workload(self):
        model = BertConfig.base()
        program = lower_layer(model, AcceleratorConfig.zcu102_n8_m16(), seq_len=128)
        workload = build_encoder_workload(model, seq_len=128)
        per_layer = workload.total_weight_bytes() / workload.num_layers
        assert program.total_dram_bytes() == pytest.approx(per_layer, rel=1e-9)

    def test_every_matvec_has_resident_tile_or_operands(self):
        program = lower_layer(BertConfig.base(), AcceleratorConfig.zcu102_n8_m16())
        loads = [
            i for i in program.instructions if i.kind is InstructionKind.LOAD_WEIGHT_TILE
        ]
        matvecs = [i for i in program.instructions if i.kind is InstructionKind.MATVEC]
        assert loads and matvecs
        # Weight matmuls: each LOAD is immediately followed by its MATVEC.
        for index, instruction in enumerate(program.instructions[:-1]):
            if instruction.kind is InstructionKind.LOAD_WEIGHT_TILE:
                follower = program.instructions[index + 1]
                assert follower.kind is InstructionKind.MATVEC
                assert follower.tile == instruction.tile

    def test_weight_tiles_ping_pong(self):
        program = lower_layer(BertConfig.base(), AcceleratorConfig.zcu102_n8_m16())
        ffn1_loads = [
            i for i in program.instructions
            if i.kind is InstructionKind.LOAD_WEIGHT_TILE and i.stage == "FFN1"
        ]
        offsets = {load.destination.offset for load in ffn1_loads}
        assert len(offsets) == 2  # alternating halves

    def test_intermediate_buffer_reuse(self):
        """Q/K space is reclaimed; FFN1's F1 reuses O_A's bytes."""
        program = lower_layer(BertConfig.base(), AcceleratorConfig.zcu102_n8_m16())
        report = lowering_report(program)
        assert report["peak_util_intermediate_buf"] <= 1.0
        assert report["peak_util_output_buf"] <= 1.0
        assert report["peak_util_input_buf"] <= 1.0

    def test_model_that_cannot_double_buffer_x_rejected(self):
        """The input buffer must hold X and X1 concurrently (the Add&LN_1
        residual); a model with intermediate_size < 2*hidden cannot, and the
        compiler must say so instead of emitting a broken program."""
        cramped = BertConfig(
            hidden_size=64,
            num_attention_heads=4,
            num_hidden_layers=1,
            intermediate_size=64,  # input buffer sized seq*64: no room for X1
            max_position_embeddings=32,
        )
        with pytest.raises(LoweringError):
            lower_layer(cramped, AcceleratorConfig(), seq_len=32)

    def test_report_keys(self):
        program = lower_layer(BertConfig.base(), AcceleratorConfig.zcu102_n8_m16())
        report = lowering_report(program)
        assert "dram_bytes_per_layer" in report
        assert report["instructions"] == len(program.instructions)


@settings(max_examples=25, deadline=None)
@given(
    n=st.sampled_from([2, 4, 8, 16]),
    m=st.sampled_from([4, 8, 16]),
    seq=st.sampled_from([8, 16, 32]),
)
def test_lowering_invariants_property(n, m, seq):
    """Any legal (N, M, seq) combination lowers to a valid program."""
    model = BertConfig.tiny(max_position_embeddings=seq)
    accel = AcceleratorConfig(num_pus=4, num_pes=n, num_multipliers=m)
    program = lower_layer(model, accel, seq_len=seq)
    program.validate()
    workload = build_encoder_workload(model, seq_len=seq)
    assert program.total_dram_bytes() == pytest.approx(
        workload.total_weight_bytes() / workload.num_layers
    )
