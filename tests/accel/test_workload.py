"""Workload derivation: op inventory, MAC counts, weight traffic."""

import pytest

from repro.accel import OpKind, build_encoder_workload
from repro.bert import BertConfig


@pytest.fixture(scope="module")
def base_workload():
    return build_encoder_workload(BertConfig.base(), seq_len=128)


class TestOpInventory:
    def test_stage_order_matches_figure5(self, base_workload):
        names = [op.name for op in base_workload.layer_ops]
        assert names == [
            "X*W_Q", "X*W_K", "X*W_V", "Q*K^T", "softmax", "Attn*V",
            "O_A*W_s", "Add&LN_1", "FFN1", "GELU", "FFN2", "Add&LN_2",
        ]

    def test_weight_matmul_dims(self, base_workload):
        ffn1 = next(op for op in base_workload.layer_ops if op.name == "FFN1")
        assert ffn1.out_dim == 3072 and ffn1.contract_dim == 768
        assert ffn1.vectors == 128
        assert ffn1.kind is OpKind.MATMUL_W

    def test_attention_matmul_dims(self, base_workload):
        qkt = next(op for op in base_workload.layer_ops if op.name == "Q*K^T")
        assert qkt.heads == 12
        assert qkt.out_dim == 128 and qkt.contract_dim == 64
        assert qkt.kind is OpKind.MATMUL_A


class TestAggregates:
    def test_total_macs_8x4(self, base_workload):
        """(4*768^2 + 2*768*3072) * 128 tokens * 12 layers."""
        per_token = 4 * 768 * 768 + 2 * 768 * 3072
        assert base_workload.total_macs(OpKind.MATMUL_W) == per_token * 128 * 12

    def test_total_macs_8x8(self, base_workload):
        per_layer = 2 * 12 * 128 * 128 * 64  # QK^T + AttnV over 12 heads
        assert base_workload.total_macs(OpKind.MATMUL_A) == per_layer * 12

    def test_total_flops_over_20_gflops(self, base_workload):
        """The paper's '>20 GFLOPs' headline for BERT-base at seq 128."""
        assert base_workload.total_flops() > 20e9

    def test_weight_bytes_4bit(self, base_workload):
        per_layer_params = 4 * 768 * 768 + 2 * 768 * 3072
        expected = per_layer_params * 0.5 * 12
        assert base_workload.total_weight_bytes() == pytest.approx(expected)

    def test_fp32_weight_bytes_8x_larger(self, base_workload):
        assert base_workload.total_weight_bytes_fp32() == pytest.approx(
            8 * base_workload.total_weight_bytes()
        )

    def test_non_matmul_ops_have_no_macs(self, base_workload):
        for op in base_workload.layer_ops:
            if op.kind in (OpKind.SOFTMAX, OpKind.LAYERNORM, OpKind.GELU):
                assert op.macs == 0
                assert op.weight_bytes == 0.0

    def test_seq_len_scaling(self):
        short = build_encoder_workload(BertConfig.base(), seq_len=64)
        long = build_encoder_workload(BertConfig.base(), seq_len=128)
        # Weight matmuls scale linearly, attention quadratically.
        assert long.total_macs(OpKind.MATMUL_W) == 2 * short.total_macs(OpKind.MATMUL_W)
        assert long.total_macs(OpKind.MATMUL_A) == 4 * short.total_macs(OpKind.MATMUL_A)
