"""Energy model: breakdown structure and the co-design payoff ordering."""

import pytest

from repro.accel import (
    AcceleratorConfig,
    EnergyParams,
    build_encoder_workload,
    compare_weight_widths,
    estimate_energy,
)
from repro.bert import BertConfig


@pytest.fixture(scope="module")
def workload():
    return build_encoder_workload(BertConfig.base(), seq_len=128)


@pytest.fixture(scope="module")
def breakdown(workload):
    return estimate_energy(workload, AcceleratorConfig.zcu102_n8_m16())


class TestBreakdown:
    def test_components_present(self, breakdown):
        assert set(breakdown.components_uj) == {
            "mac_8x4", "mac_8x8", "dram_weights", "sram", "special_cores"
        }

    def test_all_positive(self, breakdown):
        assert all(value > 0 for value in breakdown.components_uj.values())

    def test_dynamic_total_consistent(self, breakdown):
        assert breakdown.dynamic_uj == pytest.approx(
            sum(breakdown.components_uj.values())
        )

    def test_8x4_macs_dominate_8x8(self, breakdown):
        """Weight matmuls are ~36x the attention matmuls in MAC count."""
        assert breakdown.components_uj["mac_8x4"] > 10 * breakdown.components_uj["mac_8x8"]

    def test_static_energy_added(self, breakdown):
        params = EnergyParams()
        total = breakdown.total_uj(latency_ms=41.0, params=params)
        assert total > breakdown.dynamic_uj
        # static = 5.93 W * 41 ms = 243 mJ = 243_000 uJ, dominating at this
        # latency — matching the board-power reality of small FPGA designs.
        assert total - breakdown.dynamic_uj == pytest.approx(5.93 * 41.0 * 1000, rel=0.01)


class TestCoDesignPayoff:
    def test_lower_weight_bits_lower_energy(self, workload):
        energies = compare_weight_widths(workload, AcceleratorConfig())
        assert energies[32] > energies[8] > energies[4] > energies[2]

    def test_fp32_streaming_dram_dominated(self, workload):
        """At fp32 weight streaming, DRAM is the dominant dynamic term."""
        breakdown = estimate_energy(
            workload, AcceleratorConfig(), weight_bits=32
        )
        fp32_dram = (
            workload.total_weight_bytes() * (32 / 4) * EnergyParams().dram_byte_pj / 1e6
        )
        others = breakdown.dynamic_uj - breakdown.components_uj["dram_weights"]
        assert fp32_dram > others

    def test_4bit_weights_cut_dram_8x(self, workload):
        energies_dram = {}
        for bits in (32, 4):
            energies_dram[bits] = (
                workload.total_weight_bytes() * (bits / 4.0) * EnergyParams().dram_byte_pj
            )
        assert energies_dram[32] / energies_dram[4] == pytest.approx(8.0)


class TestDominantComponent:
    def test_singleton(self):
        from repro.accel import EnergyBreakdown

        assert EnergyBreakdown({"dram_weights": 1.0}).dominant_component() == (
            "dram_weights"
        )

    def test_clear_winner(self):
        from repro.accel import EnergyBreakdown

        breakdown = EnergyBreakdown({"sram": 2.0, "dram_weights": 5.0, "mac_8x4": 1.0})
        assert breakdown.dominant_component() == "dram_weights"

    def test_tie_breaks_alphabetically_not_by_insertion(self):
        from repro.accel import EnergyBreakdown

        tied = EnergyBreakdown({"sram": 3.0, "dram_weights": 3.0, "mac_8x4": 1.0})
        assert tied.dominant_component() == "dram_weights"
        reordered = EnergyBreakdown({"dram_weights": 3.0, "sram": 3.0, "mac_8x4": 1.0})
        assert reordered.dominant_component() == tied.dominant_component()

    def test_all_tied_is_deterministic(self):
        from repro.accel import EnergyBreakdown

        assert EnergyBreakdown({"c": 1.0, "b": 1.0, "a": 1.0}).dominant_component() == "a"

    def test_empty_breakdown_raises(self):
        from repro.accel import EnergyBreakdown

        with pytest.raises(ValueError, match="empty breakdown"):
            EnergyBreakdown().dominant_component()

    def test_real_breakdown_memory_dominates(self, breakdown):
        """Memory traffic (SRAM reads here) dwarfs compute — the co-design
        motivation — and the winner agrees with a hand max."""
        assert breakdown.dominant_component() == "sram"
        assert breakdown.dominant_component() == max(
            breakdown.components_uj, key=breakdown.components_uj.get
        )
