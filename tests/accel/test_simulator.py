"""Top-level simulator: reports, power, and hardware/software equivalence."""

import numpy as np
import pytest

from repro.accel import AcceleratorConfig, AcceleratorSimulator, ZCU102, ZCU111
from repro.bert import BertConfig
from repro.quant import convert_to_integer


class TestSimulationReport:
    @pytest.fixture(scope="class")
    def report(self):
        simulator = AcceleratorSimulator(AcceleratorConfig.zcu102_n8_m16(), ZCU102)
        return simulator.simulate(BertConfig.base(), seq_len=128)

    def test_summary_keys(self, report):
        summary = report.summary()
        for key in ("latency_ms", "throughput_fps", "power_watts", "fps_per_watt", "dsp48"):
            assert key in summary

    def test_power_near_paper(self, report):
        assert report.power_watts == pytest.approx(9.8, rel=0.05)

    def test_fps_per_watt_near_paper(self, report):
        assert report.fps_per_watt == pytest.approx(2.32, rel=0.15)

    def test_energy_consistency(self, report):
        assert report.energy_per_inference_mj == pytest.approx(
            report.power_watts * report.latency_ms
        )

    def test_fits(self, report):
        assert report.fits_device()

    def test_zcu111_more_efficient(self):
        small = AcceleratorSimulator(AcceleratorConfig.zcu102_n8_m16(), ZCU102).simulate(
            BertConfig.base()
        )
        big = AcceleratorSimulator(AcceleratorConfig.zcu111_n16_m16(), ZCU111).simulate(
            BertConfig.base()
        )
        assert big.fps_per_watt > small.fps_per_watt
        assert big.latency_ms < small.latency_ms


class TestFunctionalEquivalence:
    """The PE-array/softmax-core/LN-core path must reproduce the integer
    engine bit-for-bit — the RTL-vs-golden-model check of a real flow."""

    @pytest.fixture(scope="class")
    def setup(self):
        from repro.quant import QuantBertForSequenceClassification, QuantConfig

        rng = np.random.default_rng(7)
        config = BertConfig(
            vocab_size=48,
            hidden_size=16,
            num_hidden_layers=1,
            num_attention_heads=2,
            intermediate_size=32,
            max_position_embeddings=8,
            hidden_dropout_prob=0.0,
            attention_dropout_prob=0.0,
            num_labels=2,
        )
        model = QuantBertForSequenceClassification(config, QuantConfig.fq_bert(), rng=rng)
        model.train()
        for _ in range(3):
            ids = rng.integers(0, config.vocab_size, size=(2, 6))
            model(ids, np.ones((2, 6), dtype=np.int64))
        model.eval()
        integer = convert_to_integer(model)
        return config, integer, rng

    def test_logits_bit_exact_with_integer_engine(self, setup):
        config, integer, rng = setup
        simulator = AcceleratorSimulator(
            AcceleratorConfig(num_pus=2, num_pes=2, num_multipliers=4), ZCU102
        )
        ids = rng.integers(0, config.vocab_size, size=(2, 6))
        mask = np.ones((2, 6), dtype=np.int64)
        mask[1, 4:] = 0
        hw_logits = simulator.run_functional(integer, ids, mask)
        sw_logits = integer.forward(ids, mask)
        np.testing.assert_array_equal(hw_logits, sw_logits)

    def test_equivalence_holds_for_both_bim_types(self, setup):
        from repro.accel import BimType

        config, integer, rng = setup
        ids = rng.integers(0, config.vocab_size, size=(1, 5))
        mask = np.ones((1, 5), dtype=np.int64)
        results = []
        for bim_type in (BimType.TYPE_A, BimType.TYPE_B):
            simulator = AcceleratorSimulator(
                AcceleratorConfig(num_pus=2, num_pes=2, num_multipliers=4, bim_type=bim_type),
                ZCU102,
            )
            results.append(simulator.run_functional(integer, ids, mask))
        np.testing.assert_array_equal(results[0], results[1])


class TestDevices:
    def test_power_model_calibration(self):
        assert ZCU102.power(1751) == pytest.approx(9.8, rel=0.02)
        assert ZCU111.power(3287) == pytest.approx(13.2, rel=0.02)

    def test_capacity_from_table3(self):
        assert ZCU102.dsp48 == 2520
        assert ZCU111.dsp48 == 4272
        assert ZCU102.bram18k == 1824
        assert ZCU111.uram > 0

    def test_fits(self):
        assert ZCU102.fits(100, 100, 100, 100)
        assert not ZCU102.fits(100, 99999, 100, 100)
