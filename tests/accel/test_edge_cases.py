"""Edge cases across the accelerator stack: odd shapes, head/PU mismatches,
degenerate configurations."""

import numpy as np
import pytest

from repro.accel import (
    AcceleratorConfig,
    AcceleratorSimulator,
    Scheduler,
    ZCU102,
    build_encoder_workload,
    estimate_resources,
    replay_workload,
)
from repro.accel.workload import Op, OpKind
from repro.bert import BertConfig


class TestHeadPuMismatch:
    def test_more_heads_than_pus_needs_rounds(self):
        """A 16-head model on 12 PUs runs attention in 2 rounds."""
        config = BertConfig(
            hidden_size=256,
            num_attention_heads=16,
            num_hidden_layers=2,
            intermediate_size=512,
        )
        workload = build_encoder_workload(config, seq_len=32)
        accel_12 = AcceleratorConfig(num_pus=12)
        accel_16 = AcceleratorConfig(num_pus=16)
        qkt_12 = Scheduler(accel_12).time_matmul_act(
            next(op for op in workload.layer_ops if op.name == "Q*K^T")
        )
        qkt_16 = Scheduler(accel_16).time_matmul_act(
            next(op for op in workload.layer_ops if op.name == "Q*K^T")
        )
        assert qkt_12.compute_cycles == pytest.approx(2 * qkt_16.compute_cycles, rel=0.05)

    def test_fewer_heads_than_pus_idles_pus(self):
        """4 heads on 12 PUs: one round, same time as on 4 PUs."""
        op = Op("Q*K^T", OpKind.MATMUL_A, vectors=32, out_dim=32, contract_dim=16, heads=4)
        cycles_12 = Scheduler(AcceleratorConfig(num_pus=12)).time_matmul_act(op)
        cycles_4 = Scheduler(AcceleratorConfig(num_pus=4)).time_matmul_act(op)
        assert cycles_12.compute_cycles == cycles_4.compute_cycles


class TestOddShapes:
    def test_non_divisible_out_dim(self):
        """out_dim not divisible by H*N still schedules (partial pass)."""
        op = Op("odd", OpKind.MATMUL_W, vectors=8, out_dim=100, contract_dim=70)
        timing = Scheduler(AcceleratorConfig(num_pus=3, num_pes=7)).time_matmul_weight(op)
        assert timing.total_cycles > 0

    def test_contract_dim_smaller_than_lanes(self):
        op = Op("thin", OpKind.MATMUL_W, vectors=4, out_dim=8, contract_dim=3)
        timing = Scheduler(AcceleratorConfig(num_multipliers=16)).time_matmul_weight(op)
        assert timing.compute_cycles > 0

    def test_single_token_sequence(self):
        workload = build_encoder_workload(BertConfig.tiny(), seq_len=1)
        result = Scheduler(AcceleratorConfig()).schedule(workload)
        assert result.total_cycles > 0
        stats = replay_workload(workload, AcceleratorConfig())
        assert stats.total_cycles > 0

    def test_unknown_op_kind_rejected(self):
        class FakeKind:
            pass

        op = Op("x", OpKind.MATMUL_W, 1, 1, 1)
        object.__setattr__(op, "kind", FakeKind())
        with pytest.raises(ValueError):
            Scheduler(AcceleratorConfig()).schedule_op(op)


class TestDegenerateConfigs:
    def test_minimal_accelerator(self):
        """The smallest legal accelerator still schedules BERT-base."""
        config = AcceleratorConfig(num_pus=1, num_pes=1, num_multipliers=2)
        workload = build_encoder_workload(BertConfig.base(), seq_len=128)
        result = Scheduler(config).schedule(workload)
        big = Scheduler(AcceleratorConfig.zcu111_n16_m16()).schedule(workload)
        assert result.latency_ms > 100 * big.latency_ms

    def test_minimal_accelerator_resources_tiny(self):
        config = AcceleratorConfig(num_pus=1, num_pes=1, num_multipliers=2)
        estimate = estimate_resources(config, BertConfig.base(), device=ZCU102)
        assert estimate.dsp48 < 100

    def test_simulator_with_tiny_model_and_short_seq(self):
        model = BertConfig.tiny(max_position_embeddings=4)
        report = AcceleratorSimulator(AcceleratorConfig(), ZCU102).simulate(model, seq_len=4)
        assert report.latency_ms > 0
        assert report.throughput_fps > 0


class TestWorkloadValidation:
    def test_zero_vector_op_zero_macs(self):
        op = Op("empty", OpKind.MATMUL_W, vectors=0, out_dim=8, contract_dim=8)
        assert op.macs == 0

    def test_weight_bytes_respects_bits(self):
        op4 = Op("w4", OpKind.MATMUL_W, 1, 100, 100, weight_bits=4)
        op8 = Op("w8", OpKind.MATMUL_W, 1, 100, 100, weight_bits=8)
        assert op8.weight_bytes == 2 * op4.weight_bytes
