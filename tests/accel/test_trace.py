"""Command-stream model: generation rules and analytic cross-validation."""

import pytest

from repro.accel import (
    AcceleratorConfig,
    Command,
    CommandKind,
    CommandStreamGenerator,
    Scheduler,
    TraceExecutor,
    build_encoder_workload,
    replay_workload,
)
from repro.bert import BertConfig


@pytest.fixture(scope="module")
def workload():
    return build_encoder_workload(BertConfig.base(), seq_len=128)


@pytest.fixture(scope="module")
def small_workload():
    return build_encoder_workload(BertConfig.tiny(max_position_embeddings=16), seq_len=16)


class TestCommandGeneration:
    def test_matmul_w_structure(self, small_workload):
        generator = CommandStreamGenerator(AcceleratorConfig(num_pes=4, num_multipliers=8))
        op = small_workload.layer_ops[0]  # X*W_Q
        commands = list(generator.commands_for_op(op))
        kinds = [command.kind for command in commands]
        assert kinds.count(CommandKind.LOAD_TILE) == generator_passes(op, 4 * 12)
        assert kinds.count(CommandKind.COMPUTE_PASS) == kinds.count(CommandKind.DRAIN_PSUM)
        assert kinds[-1] is CommandKind.SYNC

    def test_gelu_generates_only_nothing(self, small_workload):
        generator = CommandStreamGenerator(AcceleratorConfig())
        gelu = next(op for op in small_workload.layer_ops if op.name == "GELU")
        assert list(generator.commands_for_op(gelu)) == []

    def test_softmax_single_block_command(self, small_workload):
        generator = CommandStreamGenerator(AcceleratorConfig())
        softmax = next(op for op in small_workload.layer_ops if op.name == "softmax")
        commands = list(generator.commands_for_op(softmax))
        assert [c.kind for c in commands] == [CommandKind.SOFTMAX_ROW, CommandKind.SYNC]

    def test_layer_stream_covers_all_stages(self, small_workload):
        generator = CommandStreamGenerator(AcceleratorConfig())
        stream = generator.layer_stream(small_workload)
        stages = {command.stage for command in stream}
        assert "FFN1" in stages and "Add&LN_2" in stages and "Q*K^T" in stages


def generator_passes(op, total_pes):
    import numpy as np

    return int(np.ceil(op.out_dim / total_pes))


class TestTraceExecutor:
    @pytest.mark.parametrize(
        "config",
        [
            AcceleratorConfig.zcu102_n8_m16(),
            AcceleratorConfig.zcu102_n16_m8(),
            AcceleratorConfig.zcu111_n16_m16(),
        ],
        ids=["n8m16", "n16m8", "n16m16"],
    )
    def test_agrees_with_analytic_scheduler(self, workload, config):
        """Two independently built timing models within 10% of each other."""
        analytic = Scheduler(config).schedule(workload).total_cycles
        trace = replay_workload(workload, config).total_cycles
        assert trace == pytest.approx(analytic, rel=0.10)

    def test_double_buffering_helps_in_trace_too(self, workload):
        on = replay_workload(workload, AcceleratorConfig(double_buffer_weights=True))
        off = replay_workload(workload, AcceleratorConfig(double_buffer_weights=False))
        assert on.total_cycles < off.total_cycles

    def test_pe_utilization_bounds(self, workload):
        stats = replay_workload(workload, AcceleratorConfig.zcu102_n8_m16())
        assert 0.6 < stats.pe_utilization <= 1.0

    def test_no_double_buffer_lowers_utilization(self, workload):
        on = replay_workload(workload, AcceleratorConfig(double_buffer_weights=True))
        off = replay_workload(workload, AcceleratorConfig(double_buffer_weights=False))
        assert off.pe_utilization < on.pe_utilization

    def test_empty_stream(self):
        stats = TraceExecutor(AcceleratorConfig()).run([])
        assert stats.total_cycles == 0
        assert stats.pe_utilization == 0.0

    def test_single_compute_command(self):
        executor = TraceExecutor(AcceleratorConfig())
        stats = executor.run([Command(CommandKind.COMPUTE_PASS, 100, "x")])
        assert stats.total_cycles == 100
        assert stats.busy_pe_cycles == 100

    def test_load_then_compute_dependency(self):
        """Compute against a tile must wait for its load."""
        executor = TraceExecutor(AcceleratorConfig())
        stats = executor.run(
            [
                Command(CommandKind.LOAD_TILE, 50, "s", tile=0),
                Command(CommandKind.COMPUTE_PASS, 10, "s", tile=0),
            ]
        )
        assert stats.total_cycles == 60

    def test_command_count_scales_with_layers(self, small_workload):
        config = AcceleratorConfig(num_pes=4, num_multipliers=8)
        stats = replay_workload(small_workload, config)
        generator = CommandStreamGenerator(config)
        per_layer = len(generator.layer_stream(small_workload))
        assert stats.commands == per_layer * small_workload.num_layers
