"""Cycle-accurate PU model: bit-exact function, cycle-exact timing law."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel import Bim, BimMode
from repro.accel.rtl import ProcessingUnitRTL, analytic_matvec_cycles
from repro.quant import FixedPointMultiplier, IntegerLinear


def make_pu(n=4, m=8, double_buffer=True, requant=0.01):
    return ProcessingUnitRTL(
        n, Bim(m), FixedPointMultiplier.from_float(requant), double_buffer_psum=double_buffer
    )


def reference(weights, x, bias, requant=0.01):
    linear = IntegerLinear(
        weight_codes=np.asarray(weights),
        bias_codes=np.asarray(bias) if bias is not None else None,
        requant=FixedPointMultiplier.from_float(requant),
        in_scale=1.0,
        weight_scale=1.0,
        out_scale=1.0,
    )
    return linear.forward(np.asarray(x)[None])[0]


class TestFunction:
    def test_bit_exact_8x4(self, rng):
        w = rng.integers(-7, 8, size=(16, 32))
        x = rng.integers(-127, 128, size=32)
        b = rng.integers(-500, 500, size=16)
        pu = make_pu()
        np.testing.assert_array_equal(pu.run_matvec(w, x, bias=b), reference(w, x, b))

    def test_bit_exact_8x8(self, rng):
        w = rng.integers(-127, 128, size=(8, 24))
        x = rng.integers(-127, 128, size=24)
        pu = make_pu()
        np.testing.assert_array_equal(
            pu.run_matvec(w, x, mode=BimMode.MODE_8x8), reference(w, x, None)
        )

    def test_bit_exact_unsigned_activations(self, rng):
        w = rng.integers(-127, 128, size=(4, 16))
        x = rng.integers(0, 256, size=16)
        pu = make_pu()
        np.testing.assert_array_equal(
            pu.run_matvec(w, x, mode=BimMode.MODE_8x8, act_signed=False),
            reference(w, x, None),
        )

    def test_single_buffer_same_function(self, rng):
        w = rng.integers(-7, 8, size=(12, 20))
        x = rng.integers(-127, 128, size=20)
        out_double = make_pu(double_buffer=True).run_matvec(w, x)
        out_single = make_pu(double_buffer=False).run_matvec(w, x)
        np.testing.assert_array_equal(out_double, out_single)


class TestTimingLaw:
    @pytest.mark.parametrize("double_buffer", [True, False])
    @pytest.mark.parametrize(
        "out_dim, k, n, m",
        [(16, 32, 4, 8), (8, 64, 8, 16), (7, 13, 4, 8), (1, 1, 1, 2), (20, 40, 8, 4)],
    )
    def test_cycles_match_closed_form(self, rng, out_dim, k, n, m, double_buffer):
        w = rng.integers(-7, 8, size=(out_dim, k))
        x = rng.integers(-127, 128, size=k)
        pu = make_pu(n, m, double_buffer)
        pu.run_matvec(w, x)
        expected = analytic_matvec_cycles(
            out_dim, k, n, Bim(m), double_buffer_psum=double_buffer
        )
        assert pu.cycle == expected

    def test_double_buffering_strictly_faster_when_multi_pass(self, rng):
        w = rng.integers(-7, 8, size=(32, 16))
        x = rng.integers(-127, 128, size=16)
        fast = make_pu(4, 8, True)
        slow = make_pu(4, 8, False)
        fast.run_matvec(w, x)
        slow.run_matvec(w, x)
        assert fast.cycle < slow.cycle

    def test_scheduler_is_conservative(self):
        """The coarse scheduler never undercharges relative to the RTL law."""
        from repro.accel import AcceleratorConfig, Scheduler
        from repro.accel.workload import Op, OpKind

        config = AcceleratorConfig(num_pus=1, num_pes=4, num_multipliers=8)
        op = Op("x", OpKind.MATMUL_W, vectors=1, out_dim=16, contract_dim=32)
        scheduled = Scheduler(config).time_matmul_weight(op)
        exact = analytic_matvec_cycles(
            16, 32, 4, Bim(8),
            pipeline_fill=config.pe_pipeline_fill,
            quant_depth=config.quant_pipeline_depth,
        )
        assert scheduled.compute_cycles >= exact - config.num_pes - config.quant_pipeline_depth


@settings(max_examples=40, deadline=None)
@given(
    out_dim=st.integers(1, 24),
    k=st.integers(1, 48),
    n=st.sampled_from([1, 2, 4, 8]),
    m=st.sampled_from([2, 4, 8, 16]),
    double_buffer=st.booleans(),
    seed=st.integers(0, 1000),
)
def test_rtl_property(out_dim, k, n, m, double_buffer, seed):
    """Function bit-exact and cycles law-exact on arbitrary shapes."""
    rng = np.random.default_rng(seed)
    w = rng.integers(-7, 8, size=(out_dim, k))
    x = rng.integers(-127, 128, size=k)
    pu = make_pu(n, m, double_buffer)
    out = pu.run_matvec(w, x)
    np.testing.assert_array_equal(out, reference(w, x, None))
    assert pu.cycle == analytic_matvec_cycles(
        out_dim, k, n, Bim(m), double_buffer_psum=double_buffer
    )
