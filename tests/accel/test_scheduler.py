"""Cycle-level scheduler: Table III latencies, overlap, scaling laws."""

import numpy as np
import pytest

from repro.accel import (
    AcceleratorConfig,
    AxiModel,
    OpKind,
    Scheduler,
    build_encoder_workload,
)
from repro.bert import BertConfig


@pytest.fixture(scope="module")
def base_workload():
    return build_encoder_workload(BertConfig.base(), seq_len=128)


class TestTableIIILatencies:
    """The simulator must land near the paper's measured latencies."""

    @pytest.mark.parametrize(
        "config, paper_ms",
        [
            (AcceleratorConfig.zcu102_n8_m16(), 43.89),
            (AcceleratorConfig.zcu102_n16_m8(), 45.35),
            (AcceleratorConfig.zcu111_n16_m16(), 23.79),
        ],
    )
    def test_latency_within_15_percent(self, base_workload, config, paper_ms):
        result = Scheduler(config).schedule(base_workload)
        assert result.latency_ms == pytest.approx(paper_ms, rel=0.15)

    def test_zcu111_nearly_2x_zcu102(self, base_workload):
        """Doubling the multipliers gives 'nearly twice the performance'."""
        small = Scheduler(AcceleratorConfig.zcu102_n8_m16()).schedule(base_workload)
        big = Scheduler(AcceleratorConfig.zcu111_n16_m16()).schedule(base_workload)
        speedup = small.latency_ms / big.latency_ms
        assert 1.5 < speedup < 2.0


class TestScalingLaws:
    def test_more_multipliers_never_slower(self, base_workload):
        latencies = []
        for m in (4, 8, 16, 32):
            config = AcceleratorConfig(num_pes=8, num_multipliers=m)
            latencies.append(Scheduler(config).schedule(base_workload).latency_ms)
        assert all(a >= b for a, b in zip(latencies, latencies[1:]))

    def test_more_pes_never_slower(self, base_workload):
        latencies = []
        for n in (4, 8, 16):
            config = AcceleratorConfig(num_pes=n, num_multipliers=16)
            latencies.append(Scheduler(config).schedule(base_workload).latency_ms)
        assert all(a >= b for a, b in zip(latencies, latencies[1:]))

    def test_utilization_below_one(self, base_workload):
        config = AcceleratorConfig.zcu102_n8_m16()
        result = Scheduler(config).schedule(base_workload)
        assert 0.5 < result.utilization(base_workload) < 1.0

    def test_frequency_scales_latency(self, base_workload):
        slow = AcceleratorConfig(frequency_mhz=107.0)
        fast = AcceleratorConfig(frequency_mhz=214.0)
        ratio = (
            Scheduler(slow).schedule(base_workload).latency_ms
            / Scheduler(fast).schedule(base_workload).latency_ms
        )
        assert ratio == pytest.approx(2.0, rel=1e-6)


class TestOverlap:
    def test_double_buffering_hides_transfer(self, base_workload):
        """Sec. III-C: off-chip transfer completely overlapped by compute."""
        on = AcceleratorConfig(double_buffer_weights=True)
        off = AcceleratorConfig(double_buffer_weights=False)
        with_overlap = Scheduler(on).schedule(base_workload)
        without = Scheduler(off).schedule(base_workload)
        assert with_overlap.total_cycles < without.total_cycles
        # With double buffering most transfer cycles are hidden.
        matmul_stages = [
            stage for stage in with_overlap.stages if stage.kind == "matmul_weight"
        ]
        hidden = sum(stage.hidden_transfer_cycles for stage in matmul_stages)
        total = sum(stage.transfer_cycles for stage in matmul_stages)
        assert hidden / total > 0.8

    def test_psum_double_buffer_reduces_stalls(self, base_workload):
        on = AcceleratorConfig(double_buffer_psum=True)
        off = AcceleratorConfig(double_buffer_psum=False)
        stalls_on = sum(
            stage.stall_cycles for stage in Scheduler(on).schedule(base_workload).stages
        )
        stalls_off = sum(
            stage.stall_cycles for stage in Scheduler(off).schedule(base_workload).stages
        )
        assert stalls_on < stalls_off

    def test_slow_axi_exposes_transfer(self, base_workload):
        """A starved AXI link cannot be hidden even with double buffering."""
        starved = AcceleratorConfig(axi_bytes_per_cycle=1)
        normal = AcceleratorConfig(axi_bytes_per_cycle=16)
        slow = Scheduler(starved).schedule(base_workload)
        fast = Scheduler(normal).schedule(base_workload)
        assert slow.total_cycles > fast.total_cycles
        exposed = sum(stage.exposed_transfer_cycles for stage in slow.stages)
        assert exposed > 0


class TestBreakdown:
    def test_all_stages_present(self, base_workload):
        result = Scheduler(AcceleratorConfig()).schedule(base_workload)
        breakdown = result.breakdown()
        assert set(breakdown) == {op.name for op in base_workload.layer_ops}

    def test_ffn_dominates(self, base_workload):
        """FFN1+FFN2 are ~2/3 of the matmul work per layer."""
        result = Scheduler(AcceleratorConfig()).schedule(base_workload)
        breakdown = result.breakdown()
        ffn = breakdown["FFN1"] + breakdown["FFN2"]
        qkv = breakdown["X*W_Q"] + breakdown["X*W_K"] + breakdown["X*W_V"]
        assert ffn > qkv

    def test_gelu_is_free(self, base_workload):
        result = Scheduler(AcceleratorConfig()).schedule(base_workload)
        assert result.breakdown()["GELU"] == 0

    def test_total_is_layers_times_layer_cycles(self, base_workload):
        result = Scheduler(AcceleratorConfig()).schedule(base_workload)
        assert result.total_cycles == result.layer_cycles * 12


class TestAxiModel:
    def test_zero_bytes(self):
        assert AxiModel().transfer_cycles(0) == 0

    def test_bandwidth_plus_burst_overhead(self):
        axi = AxiModel(bytes_per_cycle=16, burst_bytes=4096, burst_overhead_cycles=8)
        assert axi.transfer_cycles(4096) == 256 + 8
        assert axi.transfer_cycles(8192) == 512 + 16

    def test_effective_bandwidth_below_peak(self):
        axi = AxiModel(bytes_per_cycle=16)
        achieved = axi.effective_bandwidth(1 << 20, frequency_mhz=214.0)
        peak = 16 * 214e6 / 1e9
        assert 0.9 * peak < achieved < peak

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AcceleratorConfig(num_multipliers=3)
        with pytest.raises(ValueError):
            AcceleratorConfig(num_pus=0)
        with pytest.raises(ValueError):
            AcceleratorConfig(axi_bytes_per_cycle=0)
