"""BIM datapath: bit-exactness of both types in both modes (Figure 4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.accel import Bim, BimMode, BimType, split_nibbles


class TestNibbleSplit:
    def test_exhaustive_recombination(self):
        """All 256 int8 values: w == (w >> 4) * 16 + (w & 0xF)."""
        weights = np.arange(-128, 128)
        hi, lo = split_nibbles(weights)
        np.testing.assert_array_equal(hi * 16 + lo, weights)
        assert hi.min() >= -8 and hi.max() <= 7
        assert lo.min() >= 0 and lo.max() <= 15

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            split_nibbles(np.array([200]))


class TestConstruction:
    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            Bim(num_multipliers=12)

    def test_rejects_too_small(self):
        with pytest.raises(ValueError):
            Bim(num_multipliers=1)

    def test_lane_counts(self):
        bim = Bim(16)
        assert bim.lanes_8x4 == 16
        assert bim.lanes_8x8 == 8


class TestDot8x4:
    @pytest.mark.parametrize("bim_type", [BimType.TYPE_A, BimType.TYPE_B])
    def test_matches_reference(self, bim_type, rng):
        bim = Bim(16, bim_type)
        for _ in range(50):
            a = rng.integers(-127, 128, size=16)
            w = rng.integers(-7, 8, size=16)
            assert bim.dot_8x4(a, w) == int(a @ w)

    def test_unsigned_activations(self, rng):
        bim = Bim(8)
        a = rng.integers(0, 256, size=8)
        w = rng.integers(-7, 8, size=8)
        assert bim.dot_8x4(a, w, act_signed=False) == int(a @ w)

    def test_rejects_wrong_lane_count(self):
        bim = Bim(8)
        with pytest.raises(ValueError):
            bim.dot_8x4(np.zeros(4), np.zeros(4))

    def test_rejects_out_of_range_weights(self):
        bim = Bim(4)
        with pytest.raises(ValueError):
            bim.dot_8x4(np.zeros(4), np.array([8, 0, 0, 0]))

    def test_rejects_out_of_range_activations(self):
        bim = Bim(4)
        with pytest.raises(ValueError):
            bim.dot_8x4(np.array([128, 0, 0, 0]), np.zeros(4))


class TestDot8x8:
    @pytest.mark.parametrize("bim_type", [BimType.TYPE_A, BimType.TYPE_B])
    def test_matches_reference(self, bim_type, rng):
        bim = Bim(16, bim_type)
        for _ in range(50):
            a = rng.integers(-127, 128, size=8)
            w = rng.integers(-127, 128, size=8)
            assert bim.dot_8x8(a, w) == int(a @ w)

    def test_type_a_equals_type_b(self, rng):
        """The shift placement is a resource choice, not a numeric one."""
        type_a = Bim(8, BimType.TYPE_A)
        type_b = Bim(8, BimType.TYPE_B)
        for _ in range(50):
            a = rng.integers(-127, 128, size=4)
            w = rng.integers(-127, 128, size=4)
            assert type_a.dot_8x8(a, w) == type_b.dot_8x8(a, w)

    def test_exhaustive_single_lane_pairs(self):
        """Every (a, w) int8 pair through a 2-multiplier BIM in 8x8 mode."""
        bim = Bim(2)
        activations = np.arange(-127, 128, 8)
        weights = np.arange(-128, 128, 7)
        for a in activations:
            for w in weights:
                assert bim.dot_8x8(np.array([a]), np.array([w])) == int(a) * int(w)

    def test_unsigned_softmax_activations(self, rng):
        """Attn*V: unsigned 8-bit probabilities times signed 8-bit V."""
        bim = Bim(8)
        a = rng.integers(0, 256, size=4)
        w = rng.integers(-127, 128, size=4)
        assert bim.dot_8x8(a, w, act_signed=False) == int(a @ w)


class TestBatchHelpers:
    def test_batch_8x4(self, rng):
        bim = Bim(16)
        a = rng.integers(-127, 128, size=(10, 16))
        w = rng.integers(-7, 8, size=(10, 16))
        np.testing.assert_array_equal(bim.dot_8x4_batch(a, w), (a * w).sum(-1))

    def test_batch_8x8(self, rng):
        bim = Bim(16)
        a = rng.integers(-127, 128, size=(10, 8))
        w = rng.integers(-127, 128, size=(10, 8))
        np.testing.assert_array_equal(bim.dot_8x8_batch(a, w), (a * w).sum(-1))


class TestResourceModel:
    def test_psum_bits_growth(self):
        bim = Bim(16)
        assert bim.psum_bits(BimMode.MODE_8x4) == 12 + 4
        assert bim.psum_bits(BimMode.MODE_8x8) == 12 + 4 + 3

    def test_type_a_fewer_shifters(self):
        assert Bim(16, BimType.TYPE_A).shifter_count() == 1
        assert Bim(16, BimType.TYPE_B).shifter_count() == 8

    def test_type_a_saves_luts(self):
        """The paper's claim: shift-at-tree-output saves resources."""
        for m in (4, 8, 16, 32):
            assert Bim(m, BimType.TYPE_A).lut_cost() < Bim(m, BimType.TYPE_B).lut_cost()

    def test_dsp_is_multiplier_count(self):
        assert Bim(16).dsp_cost() == 16


@settings(max_examples=150, deadline=None)
@given(
    arrays(np.int64, 16, elements=st.integers(-127, 127)),
    arrays(np.int64, 16, elements=st.integers(-7, 7)),
    st.sampled_from([BimType.TYPE_A, BimType.TYPE_B]),
)
def test_dot_8x4_property(a, w, bim_type):
    assert Bim(16, bim_type).dot_8x4(a, w) == int(a @ w)


@settings(max_examples=150, deadline=None)
@given(
    arrays(np.int64, 8, elements=st.integers(-127, 127)),
    arrays(np.int64, 8, elements=st.integers(-128, 127)),
    st.sampled_from([BimType.TYPE_A, BimType.TYPE_B]),
)
def test_dot_8x8_property(a, w, bim_type):
    assert Bim(16, bim_type).dot_8x8(a, w) == int(a @ w)


@settings(max_examples=100, deadline=None)
@given(
    arrays(np.int64, 4, elements=st.integers(0, 255)),
    arrays(np.int64, 4, elements=st.integers(-128, 127)),
)
def test_dot_8x8_unsigned_property(a, w):
    assert Bim(8).dot_8x8(a, w, act_signed=False) == int(a @ w)
