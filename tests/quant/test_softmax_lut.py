"""Quantized softmax with the 256-entry exp LUT (Sec. III-B)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.autograd import Tensor
from repro.quant import (
    LUT_ENTRIES,
    OUTPUT_LEVELS,
    build_exp_lut,
    fake_quant_softmax,
    lut_max_error,
    quantized_softmax,
)


class TestLutConstruction:
    def test_entry_zero_is_one(self):
        lut = build_exp_lut(score_scale=10.0)
        assert lut[0] == OUTPUT_LEVELS  # exp(0) = 1.0 -> 255

    def test_monotone_decreasing(self):
        lut = build_exp_lut(score_scale=10.0)
        assert np.all(np.diff(lut) <= 0)

    def test_256_entries(self):
        assert len(build_exp_lut(score_scale=5.0)) == LUT_ENTRIES

    def test_max_error_small(self):
        """8-bit exp LUT is accurate to half a level."""
        assert lut_max_error(score_scale=10.0) <= 0.5 / OUTPUT_LEVELS + 1e-9

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            build_exp_lut(score_scale=0.0)
        with pytest.raises(ValueError):
            build_exp_lut(score_scale=1.0, entries=1)


class TestQuantizedSoftmax:
    def test_close_to_float_softmax(self, rng):
        scale = 20.0
        scores = rng.standard_normal((4, 12)) * 3
        codes = np.clip(np.rint(scores * scale), -127, 127).astype(np.int64)
        out, _ = quantized_softmax(codes, scale)
        exact = np.exp(codes / scale - (codes / scale).max(-1, keepdims=True))
        exact = exact / exact.sum(-1, keepdims=True)
        np.testing.assert_allclose(out / OUTPUT_LEVELS, exact, atol=0.02)

    def test_shift_invariance_exact(self, rng):
        """Adding a constant code to a row leaves the output unchanged."""
        scale = 15.0
        codes = rng.integers(-50, 50, size=(3, 8))
        a, _ = quantized_softmax(codes, scale)
        b, _ = quantized_softmax(codes + 20, scale)
        np.testing.assert_array_equal(a, b)

    def test_outputs_are_8bit(self, rng):
        codes = rng.integers(-127, 128, size=(5, 16))
        out, numerators = quantized_softmax(codes, 10.0)
        assert out.min() >= 0 and out.max() <= OUTPUT_LEVELS
        assert numerators.min() >= 0 and numerators.max() <= OUTPUT_LEVELS

    def test_max_position_dominates(self):
        codes = np.array([[0, 0, 120, 0]])
        out, _ = quantized_softmax(codes, 2.0)
        assert out[0, 2] == out.max()
        assert out[0, 2] > 200

    def test_mask_zeroes_padded_positions(self):
        codes = np.array([[10, 5, 120, 120]])
        mask = np.array([[1, 1, 0, 0]])
        out, numerators = quantized_softmax(codes, 5.0, mask=mask)
        assert out[0, 2] == 0 and out[0, 3] == 0
        assert numerators[0, 2] == 0
        # The valid positions renormalize among themselves.
        assert out[0, 0] > out[0, 1]

    def test_mask_max_taken_over_valid_only(self):
        """A huge masked score must not wash out the valid entries."""
        codes = np.array([[10, 8, 127]])
        mask = np.array([[1, 1, 0]])
        out, _ = quantized_softmax(codes, 5.0, mask=mask)
        assert out[0, 0] > 100  # not crushed by the masked 127

    def test_uniform_input_uniform_output(self):
        codes = np.full((1, 8), 42)
        out, _ = quantized_softmax(codes, 10.0)
        assert len(set(out[0].tolist())) == 1


class TestFakeQuantSoftmax:
    def test_matches_integer_softmax(self, rng):
        """The QAT forward and the integer engine compute the same codes."""
        scale = 25.0
        scores = rng.standard_normal((2, 3, 6, 6)).astype(np.float32)
        codes = np.clip(np.rint(scores * scale), -127, 127).astype(np.int64)

        fake = fake_quant_softmax(Tensor((codes / scale).astype(np.float32)), scale)
        integer, _ = quantized_softmax(codes, scale)
        np.testing.assert_allclose(fake.data * OUTPUT_LEVELS, integer, atol=1.0)

    def test_gradient_flows(self, rng):
        scores = Tensor(rng.standard_normal((2, 5)).astype(np.float32), requires_grad=True)
        out = fake_quant_softmax(scores, 20.0)
        (out * Tensor(np.arange(5, dtype=np.float32))).sum().backward()
        assert scores.grad is not None
        assert np.isfinite(scores.grad).all()

    def test_masked_overflow_safe(self, rng):
        """Masked positions above the valid max must not produce NaNs."""
        scores = np.zeros((1, 1, 1, 4), dtype=np.float32)
        scores[..., 2] = 60.0  # masked, far above valid max
        mask = np.array([1, 1, 0, 1]).reshape(1, 1, 1, 4)
        out = fake_quant_softmax(Tensor(scores), score_scale=2.0, mask=mask)
        assert np.isfinite(out.data).all()
        assert out.data[0, 0, 0, 2] == 0.0

    def test_rows_sum_near_one(self, rng):
        scores = Tensor(rng.standard_normal((3, 9)).astype(np.float32))
        out = fake_quant_softmax(scores, 30.0)
        np.testing.assert_allclose(out.data.sum(-1), 1.0, atol=0.05)

    def test_rejects_non_last_axis(self):
        with pytest.raises(ValueError):
            fake_quant_softmax(Tensor(np.zeros((2, 2))), 1.0, axis=0)


@settings(max_examples=80, deadline=None)
@given(
    arrays(
        dtype=np.int64,
        shape=st.tuples(st.integers(1, 4), st.integers(2, 16)),
        elements=st.integers(-127, 127),
    ),
    st.floats(min_value=2.0, max_value=60.0),
)
def test_quantized_softmax_properties(codes, scale):
    out, numerators = quantized_softmax(codes, scale)
    # Output codes valid and rows approximately normalized.
    assert out.min() >= 0 and out.max() <= OUTPUT_LEVELS
    row_sums = out.sum(axis=-1)
    # Each row's probabilities sum to ~255 (rounding slack per element).
    assert np.all(np.abs(row_sums - OUTPUT_LEVELS) <= codes.shape[-1])
    # The arg-max of the input is the arg-max of the output.
    assert np.all(
        out[np.arange(codes.shape[0]), codes.argmax(-1)] == out.max(axis=-1)
    )
