"""Model size accounting: the 7.94x compression ratio of Table I."""

import pytest

from repro.bert import BertConfig, BertForSequenceClassification
from repro.quant import (
    QuantConfig,
    compression_ratio,
    float_size_bytes,
    parameter_inventory,
    quantized_size_bytes,
    size_report,
)


class TestInventory:
    def test_matches_actual_model(self, rng):
        """Analytic inventory equals the real parameter count."""
        import numpy as np

        config = BertConfig.tiny(vocab_size=100, num_labels=2)
        model = BertForSequenceClassification(config, rng=np.random.default_rng(0))
        inventory = parameter_inventory(config)
        assert inventory.total == model.num_parameters()

    def test_bert_base_around_110m(self):
        inventory = parameter_inventory(BertConfig.base())
        assert 105e6 < inventory.total < 115e6

    def test_embeddings_dominate_memory_vs_task(self):
        inventory = parameter_inventory(BertConfig.base())
        assert inventory.embedding_weights > 20e6
        assert inventory.matmul_weights > inventory.embedding_weights


class TestCompression:
    def test_paper_ratio_within_one_percent(self):
        """Table I: 7.94x for the full FQ-BERT on BERT-base."""
        ratio = compression_ratio(BertConfig.base(), QuantConfig.fq_bert())
        assert ratio == pytest.approx(7.94, rel=0.01)

    def test_float_config_is_identity(self):
        ratio = compression_ratio(BertConfig.base(), QuantConfig.float_baseline())
        assert ratio == pytest.approx(1.0, rel=0.01)

    def test_8bit_weights_roughly_4x(self):
        ratio = compression_ratio(
            BertConfig.base(), QuantConfig.fq_bert(weight_bits=8, act_bits=8)
        )
        assert 3.5 < ratio < 4.1

    def test_unquantized_embeddings_reduce_ratio(self):
        from dataclasses import replace

        full = QuantConfig.fq_bert()
        no_emb = replace(full, quantize_embeddings=False)
        assert compression_ratio(BertConfig.base(), no_emb) < compression_ratio(
            BertConfig.base(), full
        )

    def test_sizes_consistent(self):
        config = BertConfig.base()
        qconfig = QuantConfig.fq_bert()
        assert quantized_size_bytes(config, qconfig) < float_size_bytes(config)
        report = size_report(config, qconfig)
        assert report["fp32_megabytes"] > 400  # the paper's ">320MB"
        assert report["compression_ratio"] == pytest.approx(
            compression_ratio(config, qconfig)
        )
