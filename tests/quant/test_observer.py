"""Range observers: EMA behaviour (Eq. 3), minmax, percentile."""

import numpy as np
import pytest

from repro.quant import EMAObserver, MinMaxObserver, PercentileObserver, make_observer


class TestEMAObserver:
    def test_first_observation_initializes(self):
        observer = EMAObserver(decay=0.9)
        observer.observe(np.array([1.0, -3.0]))
        assert observer.max_abs == pytest.approx(3.0)

    def test_ema_update_rule(self):
        observer = EMAObserver(decay=0.9)
        observer.observe(np.array([10.0]))
        observer.observe(np.array([0.0]))
        assert observer.max_abs == pytest.approx(9.0)

    def test_converges_to_stationary_max(self):
        observer = EMAObserver(decay=0.5)
        for _ in range(30):
            observer.observe(np.array([4.0, -2.0]))
        assert observer.max_abs == pytest.approx(4.0, rel=1e-6)

    def test_scale_matches_eq3(self):
        observer = EMAObserver()
        observer.observe(np.array([2.0]))
        assert observer.scale(8) == pytest.approx(127 / 2.0)

    def test_scale_before_data_raises(self):
        with pytest.raises(RuntimeError):
            EMAObserver().scale(8)

    def test_state_roundtrip(self):
        observer = EMAObserver(decay=0.9)
        observer.observe(np.array([5.0]))
        clone = EMAObserver(decay=0.9)
        clone.load_state(observer.state())
        assert clone.max_abs == observer.max_abs
        assert clone.initialized

    def test_rejects_bad_decay(self):
        with pytest.raises(ValueError):
            EMAObserver(decay=1.0)

    def test_empty_array_safe(self):
        observer = EMAObserver()
        observer.observe(np.array([]))
        assert observer.max_abs == 0.0


class TestMinMaxObserver:
    def test_never_decays(self):
        observer = MinMaxObserver()
        observer.observe(np.array([10.0]))
        observer.observe(np.array([1.0]))
        assert observer.max_abs == 10.0

    def test_empty_does_not_initialize(self):
        observer = MinMaxObserver()
        observer.observe(np.array([]))
        assert not observer.initialized


class TestPercentileObserver:
    def test_ignores_outliers(self):
        observer = PercentileObserver(percentile=90.0, decay=0.5)
        data = np.ones(100)
        data[0] = 1000.0
        for _ in range(20):
            observer.observe(data)
        assert observer.max_abs < 10.0

    def test_rejects_bad_percentile(self):
        with pytest.raises(ValueError):
            PercentileObserver(percentile=0.0)


class TestFactory:
    def test_all_kinds(self):
        assert isinstance(make_observer("ema"), EMAObserver)
        assert isinstance(make_observer("minmax"), MinMaxObserver)
        assert isinstance(make_observer("percentile"), PercentileObserver)

    def test_kwargs_forwarded(self):
        observer = make_observer("ema", decay=0.5)
        assert observer.decay == 0.5

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_observer("magic")
