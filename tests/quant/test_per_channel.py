"""Per-channel weight quantization (extension): QAT + integer engine."""

from dataclasses import replace

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.autograd.nn import Parameter
from repro.bert import BertConfig, BertForSequenceClassification
from repro.quant import (
    QuantConfig,
    VectorFixedPointMultiplier,
    WeightQuantizer,
    convert_to_integer,
    quantize_model,
)


def per_channel_config(weight_bits: int = 4) -> QuantConfig:
    return replace(
        QuantConfig.fq_bert(weight_bits=weight_bits),
        per_channel_weights=True,
        use_clip=False,
    )


class TestVectorMultiplier:
    def test_matches_scalar_per_channel(self, rng):
        from repro.quant import FixedPointMultiplier

        factors = rng.uniform(1e-4, 10.0, size=8)
        vector = VectorFixedPointMultiplier.from_floats(factors)
        acc = rng.integers(-100000, 100000, size=(5, 8))
        out = vector.apply(acc)
        for channel in range(8):
            scalar = FixedPointMultiplier.from_float(float(factors[channel]))
            np.testing.assert_array_equal(out[:, channel], scalar.apply(acc[:, channel]))

    def test_roundtrip_floats(self, rng):
        factors = rng.uniform(1e-3, 1e3, size=16)
        vector = VectorFixedPointMultiplier.from_floats(factors)
        np.testing.assert_allclose(vector.to_floats(), factors, rtol=1e-8)

    def test_channel_mismatch_rejected(self):
        vector = VectorFixedPointMultiplier.from_floats(np.ones(4))
        with pytest.raises(ValueError):
            vector.apply(np.zeros((2, 5), dtype=np.int64))

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            VectorFixedPointMultiplier.from_floats(np.array([1.0, 0.0]))


class TestPerChannelQuantizer:
    def test_scale_per_output_row(self, rng):
        weight = Parameter(
            np.vstack([np.full(8, 0.1), np.full(8, 1.0)]).astype(np.float32)
        )
        quantizer = WeightQuantizer(weight, per_channel_config())
        scales = quantizer.current_scale(weight)
        assert scales.shape == (2, 1)
        # Each row uses its own range: scale = 7 / row_max.
        assert scales[0, 0] == pytest.approx(70.0, rel=0.02)
        assert scales[1, 0] == pytest.approx(7.0, rel=0.02)

    def test_per_channel_beats_per_tensor_with_outlier_row(self, rng):
        """One outlier row ruins a per-tensor scale but not per-channel."""
        weight = Parameter(rng.uniform(-0.1, 0.1, size=(8, 16)).astype(np.float32))
        weight.data[0, 0] = 10.0  # outlier row

        per_tensor = WeightQuantizer(
            weight, replace(QuantConfig.fq_bert(), use_clip=False)
        )
        per_channel = WeightQuantizer(weight, per_channel_config())
        wq_tensor, _ = per_tensor(weight)
        wq_channel, _ = per_channel(weight)
        # Error on the non-outlier rows:
        error_tensor = np.abs(wq_tensor.data[1:] - weight.data[1:]).mean()
        error_channel = np.abs(wq_channel.data[1:] - weight.data[1:]).mean()
        assert error_channel < error_tensor / 4

    def test_rejects_non_2d(self):
        weight = Parameter(np.zeros((2, 3, 4), dtype=np.float32))
        with pytest.raises(ValueError):
            WeightQuantizer(weight, per_channel_config())

    def test_gradient_flows(self, rng):
        weight = Parameter(rng.standard_normal((4, 8)).astype(np.float32))
        quantizer = WeightQuantizer(weight, per_channel_config())
        out, _ = quantizer(weight)
        out.sum().backward()
        assert weight.grad is not None


class TestPerChannelEndToEnd:
    @pytest.fixture(scope="class")
    def models(self):
        rng = np.random.default_rng(5)
        config = BertConfig.tiny(vocab_size=48, max_position_embeddings=12)
        float_model = BertForSequenceClassification(config, rng=rng)
        quant = quantize_model(float_model, per_channel_config(), rng=rng)
        quant.train()
        ids = rng.integers(0, 48, size=(4, 10))
        for _ in range(3):
            quant(ids, np.ones((4, 10), dtype=np.int64))
        quant.eval()
        return quant, convert_to_integer(quant), config, rng

    def test_integer_agreement(self, models):
        quant, integer, config, rng = models
        ids = rng.integers(0, config.vocab_size, size=(6, 10))
        mask = np.ones((6, 10), dtype=np.int64)
        assert (quant.predict(ids, mask) == integer.predict(ids, mask)).mean() >= 0.9

    def test_integer_linear_uses_vector_requant(self, models):
        _, integer, _, _ = models
        linear = integer.layers[0].ffn1
        assert isinstance(linear.requant, VectorFixedPointMultiplier)
        assert linear.requant.multipliers.shape[0] == linear.weight_codes.shape[0]

    def test_weight_codes_in_4bit_range(self, models):
        _, integer, _, _ = models
        for layer in integer.layers:
            assert np.abs(layer.ffn1.weight_codes).max() <= 7
