"""QAT modules: configs, fake-quantizers, QuantLinear, QuantLayerNorm."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.autograd.nn import Parameter
from repro.quant import (
    FakeQuantize,
    LN_PARAM_FORMAT,
    QuantConfig,
    QuantLayerNorm,
    QuantLinear,
    WeightQuantizer,
)


class TestQuantConfig:
    def test_fq_bert_defaults(self):
        config = QuantConfig.fq_bert()
        assert config.weight_bits == 4 and config.act_bits == 8
        assert config.quantize_scales and config.quantize_softmax
        assert config.quantize_layernorm and config.quantize_bias
        assert not config.quantize_task_layer  # task layer stays on the CPU

    def test_float_baseline_disables_everything(self):
        config = QuantConfig.float_baseline()
        assert not config.quantize_weights
        assert not config.quantize_activations
        assert not config.quantize_softmax

    def test_figure3_isolates_weights(self):
        config = QuantConfig.figure3(weight_bits=2, clip=False)
        assert config.weight_bits == 2
        assert not config.use_clip
        assert config.quantize_weights
        assert not config.quantize_activations

    def test_figure3_32bit_is_float(self):
        assert QuantConfig.figure3(weight_bits=32, clip=True) == QuantConfig.float_baseline()

    def test_with_parts_cumulative(self):
        base = QuantConfig.weights_activations_only()
        row = base.with_parts(scales=True, softmax=True)
        assert row.quantize_scales and row.quantize_softmax
        assert not row.quantize_layernorm

    def test_maybe_quantize_scale(self):
        on = QuantConfig.fq_bert()
        off = QuantConfig.weights_activations_only()
        assert on.maybe_quantize_scale(0.123) != 0.123
        assert off.maybe_quantize_scale(0.123) == 0.123


class TestFakeQuantize:
    def test_quantizes_to_grid(self, rng):
        fq = FakeQuantize(QuantConfig.weights_activations_only())
        fq.train()
        x = Tensor(rng.standard_normal(100).astype(np.float32))
        out, scale = fq(x)
        codes = out.data * scale
        np.testing.assert_allclose(codes, np.rint(codes), atol=1e-4)

    def test_disabled_is_passthrough(self, rng):
        fq = FakeQuantize(QuantConfig.float_baseline())
        x = Tensor(rng.standard_normal(10).astype(np.float32))
        out, scale = fq(x)
        assert out is x and scale is None

    def test_eval_freezes_scale(self, rng):
        fq = FakeQuantize(QuantConfig.weights_activations_only())
        fq.train()
        fq(Tensor(np.ones(10, dtype=np.float32)))
        frozen = fq.scale
        fq.eval()
        fq(Tensor(np.full(10, 100.0, dtype=np.float32)))  # would change EMA
        assert fq.scale == frozen

    def test_observer_state_in_state_dict(self, rng):
        fq = FakeQuantize(QuantConfig.weights_activations_only())
        fq.train()
        fq(Tensor(np.ones(4, dtype=np.float32) * 3))
        state = fq.state_dict()
        assert "observer_state" in state

    def test_first_eval_call_still_initializes(self):
        """Even in eval mode an uninitialized observer observes once."""
        fq = FakeQuantize(QuantConfig.weights_activations_only())
        fq.eval()
        out, scale = fq(Tensor(np.ones(4, dtype=np.float32)))
        assert scale is not None


class TestWeightQuantizer:
    def test_no_clip_tracks_max(self, rng):
        config = QuantConfig.figure3(weight_bits=4, clip=False)
        weight = Parameter(rng.standard_normal((8, 8)).astype(np.float32))
        quantizer = WeightQuantizer(weight, config)
        _, scale = quantizer(weight)
        assert scale == pytest.approx(7.0 / np.abs(weight.data).max(), rel=0.01)

    def test_clip_initialized_from_percentile(self, rng):
        config = QuantConfig.fq_bert()
        weight = Parameter(rng.standard_normal((16, 16)).astype(np.float32))
        quantizer = WeightQuantizer(weight, config)
        clip = float(quantizer.clip_value.data)
        assert 0 < clip <= float(np.abs(weight.data).max())

    def test_clip_gradient_pact(self):
        """PACT rule: d/dc is 0 inside the window, +/-1 outside."""
        config = QuantConfig.fq_bert()
        weight = Parameter(np.array([[0.1, 5.0, -5.0]], dtype=np.float32))
        quantizer = WeightQuantizer(weight, config)
        quantizer.clip_value.data = np.array(1.0, dtype=np.float32)
        out, _ = quantizer(weight)
        out.sum().backward()
        # 0.1 inside -> no clip grad; +5 contributes +1; -5 contributes -1.
        assert float(quantizer.clip_value.grad) == pytest.approx(0.0, abs=1e-5)

    def test_clipped_values_saturate(self):
        config = QuantConfig.fq_bert()
        weight = Parameter(np.array([[0.1, 5.0]], dtype=np.float32))
        quantizer = WeightQuantizer(weight, config)
        quantizer.clip_value.data = np.array(0.5, dtype=np.float32)
        out, scale = quantizer(weight)
        assert abs(out.data[0, 1]) <= 0.5 + 1e-5

    def test_disabled_passthrough(self, rng):
        config = QuantConfig.float_baseline()
        weight = Parameter(rng.standard_normal((4, 4)).astype(np.float32))
        quantizer = WeightQuantizer(weight, config)
        out, scale = quantizer(weight)
        assert out is weight and scale is None

    def test_weight_gradient_flows_through(self, rng):
        config = QuantConfig.fq_bert()
        weight = Parameter(rng.standard_normal((4, 4)).astype(np.float32) * 0.1)
        quantizer = WeightQuantizer(weight, config)
        out, _ = quantizer(weight)
        out.sum().backward()
        assert weight.grad is not None
        assert np.abs(weight.grad).sum() > 0


class TestQuantLinear:
    def test_forward_shapes_and_scale(self, rng):
        layer = QuantLinear(8, 4, QuantConfig.fq_bert(), rng=rng)
        layer.train()
        x = Tensor(rng.standard_normal((2, 8)).astype(np.float32))
        out, scale = layer(x, in_scale=32.0)
        assert out.shape == (2, 4)
        assert scale is not None and scale > 0

    def test_bias_quantized_on_accumulator_grid(self, rng):
        """Eq. 4: the effective bias is an integer multiple of 1/(s_a s_w)."""
        config = QuantConfig.weights_activations_only()
        layer = QuantLinear(4, 3, config, rng=rng)
        layer.train()
        layer.bias.data[:] = np.array([0.1234, -0.5678, 0.9], dtype=np.float32)
        x = Tensor(np.zeros((1, 4), dtype=np.float32))
        out, out_scale = layer(x, in_scale=16.0)
        w_scale = layer.weight_quantizer.current_scale(layer.weight)
        s_bias = 16.0 * w_scale
        effective_bias = out.data[0] * 1.0  # x = 0 -> output is fq(bias)
        # Output itself is fake-quantized at out_scale; check the bias grid
        # by disabling the output quantizer.
        layer.output_quantizer.enabled = False
        out, _ = layer(x, in_scale=16.0)
        codes = out.data[0] * s_bias
        np.testing.assert_allclose(codes, np.rint(codes), atol=1e-2)

    def test_no_in_scale_skips_bias_quant(self, rng):
        config = QuantConfig.figure3(weight_bits=4, clip=True)
        layer = QuantLinear(4, 2, config, rng=rng)
        x = Tensor(rng.standard_normal((1, 4)).astype(np.float32))
        out, scale = layer(x, in_scale=None)
        assert scale is None  # activations unquantized in Figure 3 configs

    def test_load_float_weights_reinits_clip(self, rng):
        layer = QuantLinear(4, 4, QuantConfig.fq_bert(), rng=rng)
        new_weight = rng.standard_normal((4, 4)).astype(np.float32) * 10
        layer.load_float_weights(new_weight, np.zeros(4, dtype=np.float32))
        np.testing.assert_array_equal(layer.weight.data, new_weight)
        assert float(layer.weight_quantizer.clip_value.data) > 1.0

    def test_repr(self, rng):
        layer = QuantLinear(8, 4, QuantConfig.fq_bert(), rng=rng)
        assert "w4/a8" in repr(layer)


class TestQuantLayerNorm:
    def test_params_on_fixed_point_grid(self, rng):
        ln = QuantLayerNorm(8, QuantConfig.fq_bert())
        ln.weight.data = rng.standard_normal(8).astype(np.float32)
        gamma, beta = ln._quantized_params()
        step = LN_PARAM_FORMAT.resolution
        np.testing.assert_allclose(
            gamma.data / step, np.rint(gamma.data / step), atol=1e-4
        )

    def test_unquantized_params_pass_through(self, rng):
        ln = QuantLayerNorm(8, QuantConfig.weights_activations_only())
        gamma, beta = ln._quantized_params()
        assert gamma is ln.weight and beta is ln.bias

    def test_output_quantized(self, rng):
        ln = QuantLayerNorm(8, QuantConfig.fq_bert())
        ln.train()
        x = Tensor(rng.standard_normal((2, 8)).astype(np.float32))
        out, scale = ln(x)
        codes = out.data * scale
        np.testing.assert_allclose(codes, np.rint(codes), atol=1e-4)

    def test_params_saturate_at_format_bounds(self):
        ln = QuantLayerNorm(4, QuantConfig.fq_bert())
        ln.weight.data = np.array([100.0, -100.0, 1.0, 0.0], dtype=np.float32)
        gamma, _ = ln._quantized_params()
        assert gamma.data[0] == pytest.approx(LN_PARAM_FORMAT.max_value)
        assert gamma.data[1] == pytest.approx(LN_PARAM_FORMAT.min_value)
