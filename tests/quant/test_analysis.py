"""Quantization-noise analysis: SQNR laws and end-to-end drift."""

import numpy as np
import pytest

from repro.quant.analysis import (
    logit_degradation,
    per_channel_sqnr,
    sqnr_per_bit_slope,
    tensor_sqnr,
    weight_sqnr_report,
)


class TestTensorSqnr:
    def test_six_db_per_bit_law(self, rng):
        """Uniform quantization: ~6.02 dB per added bit on dense signals.

        Fitted over 4..10 bits; very low bitwidths deviate upward because
        the symmetric 2-bit grid has 3 levels, not 4.
        """
        values = rng.uniform(-1, 1, size=100_000)
        slope = sqnr_per_bit_slope(values, bit_range=(4, 6, 8, 10))
        assert slope == pytest.approx(6.02, abs=0.5)

    def test_more_bits_more_sqnr(self, rng):
        values = rng.standard_normal(10_000)
        sqnrs = [tensor_sqnr(values, bits) for bits in (2, 4, 8)]
        assert sqnrs[0] < sqnrs[1] < sqnrs[2]

    def test_clip_helps_heavy_tails(self, rng):
        """With outliers, a tuned clip beats minmax scaling (Figure 3's why).

        The gain is bounded by the clipped outlier's own saturation error,
        so we assert a clear (not unbounded) improvement.
        """
        values = rng.standard_normal(50_000)
        values[0] = 100.0  # one extreme outlier
        minmax = tensor_sqnr(values, 4)
        clipped = tensor_sqnr(values, 4, clip_max=float(np.percentile(np.abs(values), 99.9)))
        assert clipped > minmax + 5.0

    def test_all_zero_tensor(self):
        assert tensor_sqnr(np.zeros(10), 4) == float("inf")

    def test_gaussian_8bit_above_30db(self, rng):
        values = rng.standard_normal(50_000)
        assert tensor_sqnr(values, 8) > 30.0


class TestPerChannelSqnr:
    def test_preserves_small_rows(self, rng):
        """Aggregate SQNR is signal-weighted, so a tiny row barely moves it —
        the per-channel win is that the small row *survives* instead of
        quantizing to all-zero."""
        from repro.quant import fake_quantize_array, symmetric_scale

        small = rng.uniform(-0.01, 0.01, 64)
        large = rng.uniform(-1.0, 1.0, 64)
        weight = np.vstack([small, large])

        per_tensor_scale = float(symmetric_scale(np.abs(weight).max(), 4))
        per_tensor_small = fake_quantize_array(small, per_tensor_scale, 4)
        assert np.allclose(per_tensor_small, 0.0)  # row destroyed

        per_channel_scale = float(symmetric_scale(np.abs(small).max(), 4))
        per_channel_small = fake_quantize_array(small, per_channel_scale, 4)
        assert not np.allclose(per_channel_small, 0.0)  # row survives
        # And the aggregate metric never gets worse.
        assert per_channel_sqnr(weight, 4) >= tensor_sqnr(weight, 4) - 1e-9

    def test_equals_per_tensor_when_rows_homogeneous(self, rng):
        weight = rng.uniform(-1, 1, size=(8, 64))
        delta = per_channel_sqnr(weight, 8) - tensor_sqnr(weight, 8)
        assert abs(delta) < 3.0


class TestWeightReport:
    def test_report_covers_all_linears(self, trained_quant_model):
        rows = weight_sqnr_report(trained_quant_model)
        layers = {row["layer"] for row in rows}
        assert any("query" in layer for layer in layers)
        assert any("ffn1" in layer for layer in layers)
        for row in rows:
            assert row["sqnr_per_channel_db"] >= row["sqnr_minmax_db"] - 1e-6

    def test_bits_override(self, trained_quant_model):
        rows4 = weight_sqnr_report(trained_quant_model, bits=4)
        rows8 = weight_sqnr_report(trained_quant_model, bits=8)
        for row4, row8 in zip(rows4, rows8):
            assert row8["sqnr_minmax_db"] > row4["sqnr_minmax_db"]


class TestLogitDegradation:
    def test_metrics_present_and_sane(self, trained_float_model, trained_quant_model, tiny_task):
        _, _, dev, _ = tiny_task
        batch = dev.full_batch()
        metrics = logit_degradation(
            trained_float_model,
            trained_quant_model,
            batch.input_ids[:16],
            batch.attention_mask[:16],
            batch.token_type_ids[:16],
        )
        assert 0.0 <= metrics["prediction_flip_rate"] <= 1.0
        assert metrics["max_abs_drift"] >= metrics["mean_abs_drift"]
        assert np.isfinite(metrics["logit_sqnr_db"])
