"""Fixed-point arithmetic: Q-formats, the Eq. 5 multiplier, integer isqrt."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quant import FixedPointMultiplier, LN_PARAM_FORMAT, QFormat, integer_isqrt, saturate
from repro.quant.fixedpoint import bit_width_of


class TestQFormat:
    def test_q3_4_bounds(self):
        fmt = LN_PARAM_FORMAT
        assert fmt.total_bits == 8
        assert fmt.max_value == pytest.approx(7.9375)
        assert fmt.min_value == -8.0
        assert fmt.resolution == 0.0625

    def test_roundtrip_on_grid(self):
        fmt = QFormat(3, 4)
        values = np.arange(-8.0, 8.0, 0.0625)
        np.testing.assert_allclose(fmt.round_trip(values), values)

    def test_saturates(self):
        fmt = QFormat(3, 4)
        assert fmt.round_trip(np.array([100.0]))[0] == fmt.max_value
        assert fmt.round_trip(np.array([-100.0]))[0] == fmt.min_value

    def test_rounding_error_bound(self, rng):
        fmt = QFormat(3, 4)
        x = rng.uniform(-7.9, 7.9, size=100)
        assert np.abs(fmt.round_trip(x) - x).max() <= fmt.resolution / 2 + 1e-12


class TestFixedPointMultiplier:
    def test_roundtrip_accuracy(self):
        for value in (1e-6, 0.37, 1.0, 17.3, 1e6):
            fpm = FixedPointMultiplier.from_float(value)
            assert fpm.to_float() == pytest.approx(value, rel=1e-8)

    def test_mantissa_normalized(self):
        fpm = FixedPointMultiplier.from_float(0.123)
        assert 2 ** 30 <= fpm.multiplier < 2 ** 31

    def test_apply_matches_float_rounding(self, rng):
        fpm = FixedPointMultiplier.from_float(0.0037)
        acc = rng.integers(-(2 ** 24), 2 ** 24, size=1000)
        applied = fpm.apply(acc)
        expected = np.rint(acc * 0.0037)
        # off-by-one allowed at exact rounding boundaries
        assert np.abs(applied - expected).max() <= 1

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            FixedPointMultiplier.from_float(0.0)

    def test_apply_zero(self):
        fpm = FixedPointMultiplier.from_float(3.7)
        assert fpm.apply(np.array([0]))[0] == 0

    def test_large_factor(self):
        fpm = FixedPointMultiplier.from_float(1000.0)
        result = fpm.apply(np.array([123]))
        assert result[0] == pytest.approx(123000, abs=1)


@settings(max_examples=200, deadline=None)
@given(
    st.floats(min_value=1e-6, max_value=1e6, allow_nan=False),
    st.integers(min_value=-(2 ** 30), max_value=2 ** 30),
)
def test_multiplier_relative_error_property(factor, acc):
    """Requantization error is at most 1 code + 2^-30 relative (Eq. 5 s_f)."""
    fpm = FixedPointMultiplier.from_float(factor)
    applied = int(fpm.apply(np.array([acc]))[0])
    exact = acc * factor
    assert abs(applied - exact) <= 1.0 + abs(exact) * 2 ** -30


class TestIntegerIsqrt:
    def test_exhaustive_small(self):
        values = np.arange(0, 4096)
        roots = integer_isqrt(values)
        assert np.all(roots * roots <= values)
        assert np.all((roots + 1) * (roots + 1) > values)

    def test_perfect_squares(self):
        values = np.arange(0, 1000) ** 2
        np.testing.assert_array_equal(integer_isqrt(values), np.arange(0, 1000))

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            integer_isqrt(np.array([-1]))

    def test_zero(self):
        assert integer_isqrt(np.array([0]))[0] == 0


@settings(max_examples=200, deadline=None)
@given(st.integers(min_value=0, max_value=2 ** 52))
def test_isqrt_floor_property(value):
    root = int(integer_isqrt(np.array([value]))[0])
    assert root * root <= value < (root + 1) * (root + 1)


class TestSaturate:
    def test_signed_8bit(self):
        out = saturate(np.array([-1000, -128, 0, 127, 1000]), 8)
        np.testing.assert_array_equal(out, [-128, -128, 0, 127, 127])

    def test_unsigned(self):
        out = saturate(np.array([-5, 0, 255, 300]), 8, signed=False)
        np.testing.assert_array_equal(out, [0, 0, 255, 255])


class TestBitWidth:
    def test_positive(self):
        assert bit_width_of(0) == 1
        assert bit_width_of(1) == 2
        assert bit_width_of(127) == 8
        assert bit_width_of(128) == 9

    def test_negative(self):
        assert bit_width_of(-1) == 1
        assert bit_width_of(-128) == 8
        assert bit_width_of(-129) == 9
