"""Symmetric quantization math (Eqs. 1-5): exactness and properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.quant import (
    QuantParams,
    bias_scale,
    dequantize,
    fake_quantize_array,
    int_range,
    quantize,
    quantize_bias,
    quantize_scale_to_8bit,
    requant_factor,
    symmetric_scale,
    weight_scale,
)


class TestIntRange:
    def test_symmetric_ranges(self):
        assert int_range(8) == (-127, 127)
        assert int_range(4) == (-7, 7)
        assert int_range(2) == (-1, 1)

    def test_unsigned(self):
        assert int_range(8, signed=False) == (0, 255)

    def test_rejects_too_few_bits(self):
        with pytest.raises(ValueError):
            int_range(1, signed=True)
        with pytest.raises(ValueError):
            int_range(0, signed=False)


class TestScale:
    def test_eq2_weight_scale(self):
        """Eq. 2: s_w = (2^(k-1) - 1) / max|W|."""
        weights = np.array([-0.5, 0.25, 0.1])
        assert weight_scale(weights, 4) == pytest.approx(7 / 0.5)

    def test_clip_overrides_max(self):
        weights = np.array([-0.5, 0.25, 10.0])  # outlier
        assert weight_scale(weights, 4, clip_max=0.5) == pytest.approx(14.0)

    def test_zero_tensor_scale_is_safe(self):
        scale = symmetric_scale(0.0, 8)
        assert np.isfinite(scale) and scale > 0

    def test_per_channel_scales(self):
        maxes = np.array([1.0, 2.0, 4.0])
        scales = symmetric_scale(maxes, 8)
        np.testing.assert_allclose(scales, [127.0, 63.5, 31.75])


class TestQuantizeDequantize:
    def test_codes_in_range(self, rng):
        x = rng.standard_normal(1000) * 10
        codes = quantize(x, scale=weight_scale(x, 4), bits=4)
        assert codes.min() >= -7 and codes.max() <= 7

    def test_extremum_hits_qmax(self):
        x = np.array([-2.0, 1.0, 2.0])
        codes = quantize(x, weight_scale(x, 8), bits=8)
        assert codes.max() == 127 or codes.min() == -127

    def test_roundtrip_error_bound(self, rng):
        """Eq. 1 guarantee: |x - x_q| <= 1/(2s) inside the clip range."""
        x = rng.uniform(-1, 1, size=500)
        scale = weight_scale(x, 8)
        recovered = fake_quantize_array(x, scale, 8)
        assert np.abs(recovered - x).max() <= 0.5 / scale + 1e-12

    def test_saturation_clamps(self):
        codes = quantize(np.array([100.0]), scale=10.0, bits=8)
        assert codes[0] == 127

    def test_round_half_to_even(self):
        codes = quantize(np.array([0.5, 1.5, 2.5]), scale=1.0, bits=8)
        np.testing.assert_array_equal(codes, [0, 2, 2])

    def test_dequantize_inverse_on_grid(self):
        codes = np.array([-7, 0, 7])
        values = dequantize(codes, scale=14.0)
        np.testing.assert_array_equal(quantize(values, 14.0, 4), codes)


class TestBiasAndRequant:
    def test_eq4_bias_scale(self):
        assert bias_scale(4.0, 8.0) == 32.0

    def test_eq4_bias_codes(self):
        bias = np.array([0.5, -0.25])
        codes = quantize_bias(bias, act_scale=4.0, w_scale=8.0)
        np.testing.assert_array_equal(codes, [16, -8])

    def test_bias_overflow_detected(self):
        with pytest.raises(OverflowError):
            quantize_bias(np.array([1e9]), act_scale=100.0, w_scale=100.0)

    def test_eq5_requant_factor(self):
        assert requant_factor(2.0, 4.0, 8.0) == pytest.approx(1 / 16)

    def test_eq5_end_to_end(self, rng):
        """Integer accumulate + requant == quantized float output (Eq. 5)."""
        s_a, s_w = 32.0, 14.0
        x = rng.uniform(-1, 1, size=16)
        w = rng.uniform(-0.5, 0.5, size=16)
        b = 0.3
        x_q = quantize(x, s_a, 8)
        w_q = quantize(w, s_w, 4)
        b_q = quantize_bias(np.array([b]), s_a, s_w)[0]
        acc = int(x_q @ w_q) + int(b_q)

        y_exact = float(dequantize(x_q, s_a) @ dequantize(w_q, s_w) + b_q / (s_a * s_w))
        s_y = 16.0
        y_code_float = np.rint(y_exact * s_y)
        y_code_int = np.rint(acc * requant_factor(s_y, s_a, s_w))
        assert y_code_int == y_code_float


class TestQuantParams:
    def test_qmin_qmax(self):
        params = QuantParams(scale=10.0, bits=4)
        assert params.qmin == -7 and params.qmax == 7

    def test_fake_quantize_consistent(self, rng):
        params = QuantParams(scale=17.0, bits=8)
        x = rng.standard_normal(100)
        np.testing.assert_array_equal(
            params.fake_quantize(x), params.dequantize(params.quantize(x))
        )


class TestScaleQuantization:
    def test_power_of_two_exact(self):
        for exponent in range(-10, 11):
            scale = 2.0 ** exponent
            assert quantize_scale_to_8bit(scale) == pytest.approx(scale)

    def test_relative_error_bounded(self):
        """8-bit mantissa: relative error at most 1/256."""
        for scale in np.logspace(-6, 6, 200):
            quantized = quantize_scale_to_8bit(float(scale))
            assert abs(quantized - scale) / scale <= 1 / 256 + 1e-9

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            quantize_scale_to_8bit(0.0)


# ----------------------------------------------------------------------
# property-based invariants
# ----------------------------------------------------------------------
value_arrays = arrays(
    dtype=np.float64,
    shape=st.integers(1, 64),
    elements=st.floats(-1e3, 1e3, allow_nan=False, allow_infinity=False),
)


@settings(max_examples=100, deadline=None)
@given(value_arrays, st.sampled_from([2, 4, 6, 8]))
def test_quantize_always_in_range(x, bits):
    scale = weight_scale(x, bits)
    codes = quantize(x, scale, bits)
    qmin, qmax = int_range(bits)
    assert codes.min() >= qmin and codes.max() <= qmax


@settings(max_examples=100, deadline=None)
@given(value_arrays, st.sampled_from([4, 8]))
def test_fake_quantize_idempotent(x, bits):
    scale = weight_scale(x, bits)
    once = fake_quantize_array(x, scale, bits)
    twice = fake_quantize_array(once, scale, bits)
    np.testing.assert_allclose(once, twice, atol=1e-12)


@settings(max_examples=100, deadline=None)
@given(value_arrays)
def test_quantization_is_monotone(x):
    """x <= y implies Q(x) <= Q(y) — quantizers preserve order."""
    scale = weight_scale(x, 8)
    ordered = np.sort(x)
    codes = quantize(ordered, scale, 8)
    assert np.all(np.diff(codes) >= 0)


@settings(max_examples=100, deadline=None)
@given(value_arrays)
def test_symmetry(x):
    """Symmetric quantization: Q(-x) == -Q(x) (no zero point)."""
    scale = weight_scale(x, 8)
    np.testing.assert_array_equal(quantize(-x, scale, 8), -quantize(x, scale, 8))
