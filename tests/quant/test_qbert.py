"""The fully quantized BERT model: structure, scale threading, conversion."""

import numpy as np
import pytest

from repro.bert import BertConfig, BertForSequenceClassification
from repro.quant import (
    QuantBertForSequenceClassification,
    QuantConfig,
    QuantLinear,
    quantize_model,
)
from repro.quant.qbert import QuantEmbedding


@pytest.fixture
def config():
    return BertConfig.tiny(vocab_size=40, num_labels=2, max_position_embeddings=12)


@pytest.fixture
def inputs(config, rng):
    ids = rng.integers(0, config.vocab_size, size=(2, 10))
    mask = np.ones((2, 10), dtype=np.int64)
    mask[1, 6:] = 0
    return ids, mask


class TestForward:
    def test_logits_shape(self, config, inputs, rng):
        model = QuantBertForSequenceClassification(config, QuantConfig.fq_bert(), rng=rng)
        logits = model(*inputs)
        assert logits.shape == (2, config.num_labels)

    def test_all_quant_configs_run(self, config, inputs, rng):
        """Every ablation/figure configuration must execute."""
        configs = [
            QuantConfig.fq_bert(),
            QuantConfig.float_baseline(),
            QuantConfig.weights_activations_only(),
            QuantConfig.weights_activations_only().with_parts(scales=True),
            QuantConfig.weights_activations_only().with_parts(scales=True, softmax=True),
            QuantConfig.figure3(weight_bits=2, clip=True),
            QuantConfig.figure3(weight_bits=2, clip=False),
            QuantConfig.fq_bert(weight_bits=8, act_bits=8),
        ]
        for qconfig in configs:
            model = QuantBertForSequenceClassification(config, qconfig, rng=rng)
            logits = model(*inputs)
            assert np.isfinite(logits.data).all(), qconfig

    def test_scales_threaded_when_quantizing_activations(self, config, inputs, rng):
        model = QuantBertForSequenceClassification(config, QuantConfig.fq_bert(), rng=rng)
        model.train()
        embedded, scale = model.embeddings(inputs[0])
        assert scale is not None and scale > 0
        encoded, out_scale = model.encoder(embedded, scale, inputs[1])
        assert out_scale is not None and out_scale > 0

    def test_no_scales_for_float_baseline(self, config, inputs, rng):
        model = QuantBertForSequenceClassification(
            config, QuantConfig.float_baseline(), rng=rng
        )
        _, scale = model.embeddings(inputs[0])
        assert scale is None

    def test_loss_and_gradients(self, config, inputs, rng):
        model = QuantBertForSequenceClassification(config, QuantConfig.fq_bert(), rng=rng)
        loss = model.loss(inputs[0], np.array([0, 1]), inputs[1])
        loss.backward()
        grads = [p.grad for _, p in model.named_parameters()]
        assert all(g is not None for g in grads)
        # Clip thresholds are trainable parameters too.
        clip_names = [n for n, _ in model.named_parameters() if "clip_value" in n]
        assert clip_names

    def test_predict_interface(self, config, inputs, rng):
        model = QuantBertForSequenceClassification(config, QuantConfig.fq_bert(), rng=rng)
        preds = model.predict(*inputs)
        assert preds.shape == (2,)


class TestQuantEmbedding:
    def test_embedding_weights_on_grid(self, rng):
        qconfig = QuantConfig.fq_bert()
        emb = QuantEmbedding(20, 8, qconfig, rng=rng)
        out = emb(np.arange(5))
        scale = emb.weight_quantizer.current_scale(emb.weight)
        codes = out.data * scale
        np.testing.assert_allclose(codes, np.rint(codes), atol=1e-3)

    def test_disabled_when_config_says_so(self, rng):
        qconfig = QuantConfig.float_baseline()
        emb = QuantEmbedding(20, 8, qconfig, rng=rng)
        assert not emb.enabled
        out = emb(np.arange(3))
        np.testing.assert_array_equal(out.data, emb.weight.data[:3])


class TestConversion:
    def test_quantize_model_copies_weights(self, config, rng):
        float_model = BertForSequenceClassification(config, rng=rng)
        quant_model = quantize_model(float_model, QuantConfig.fq_bert(), rng=rng)
        np.testing.assert_array_equal(
            quant_model.embeddings.word_embeddings.weight.data,
            float_model.bert.embeddings.word_embeddings.weight.data,
        )
        np.testing.assert_array_equal(
            quant_model.encoder.layers[0].attention.self_attention.query.weight.data,
            float_model.bert.encoder.layers[0].attention.self_attention.query.weight.data,
        )
        np.testing.assert_array_equal(
            quant_model.classifier.weight.data, float_model.classifier.weight.data
        )

    def test_converted_model_close_to_float_at_8bit(self, config, inputs, rng):
        """Gentle quantization (8/8, no special parts) barely moves logits."""
        float_model = BertForSequenceClassification(config, rng=rng)
        float_model.eval()
        qconfig = QuantConfig.weights_activations_only(weight_bits=8, act_bits=8)
        quant_model = quantize_model(float_model, qconfig, rng=rng)
        quant_model.eval()
        from repro.autograd import no_grad

        with no_grad():
            float_logits = float_model(*inputs).data
            quant_logits = quant_model(*inputs).data
        np.testing.assert_allclose(quant_logits, float_logits, atol=0.15)

    def test_quantize_model_without_clip(self, config, rng):
        float_model = BertForSequenceClassification(config, rng=rng)
        qconfig = QuantConfig.figure3(weight_bits=4, clip=False)
        quant_model = quantize_model(float_model, qconfig, rng=rng)
        logits = quant_model(np.zeros((1, 4), dtype=np.int64))
        assert np.isfinite(logits.data).all()

    def test_mapping_covers_all_float_parameters(self, config, rng):
        from repro.quant.qbert import _parameter_name_mapping

        float_model = BertForSequenceClassification(config, rng=rng)
        mapping = _parameter_name_mapping(config)
        float_names = {name for name, _ in float_model.named_parameters()}
        assert set(mapping) == float_names

    def test_state_dict_roundtrip(self, config, inputs, rng):
        model = QuantBertForSequenceClassification(config, QuantConfig.fq_bert(), rng=rng)
        model.train()
        model(*inputs)  # initialize observers
        state = model.state_dict()
        clone = QuantBertForSequenceClassification(config, QuantConfig.fq_bert(), rng=rng)
        clone.load_state_dict(state)
        for (name, a), (_, b) in zip(clone.named_parameters(), model.named_parameters()):
            np.testing.assert_array_equal(a.data, b.data, err_msg=name)
