"""Post-training quantization: calibration behaviour and PTQ-vs-QAT ordering."""

import numpy as np
import pytest

from repro.quant import QuantConfig, evaluate, post_training_quantize
from repro.quant.ptq import calibrate
from repro.quant.qat import FakeQuantize
from repro.quant.qbert import quantize_model


class TestCalibration:
    def test_observers_initialized_after_calibration(self, trained_float_model, tiny_task):
        _, train, _, _ = tiny_task
        quant = post_training_quantize(
            trained_float_model, QuantConfig.fq_bert(), train, num_batches=2
        )
        for module in quant.modules():
            if isinstance(module, FakeQuantize) and module.enabled:
                assert module.observer.initialized

    def test_calibration_does_not_touch_weights(self, trained_float_model, tiny_task):
        _, train, _, _ = tiny_task
        quant = quantize_model(
            trained_float_model, QuantConfig.fq_bert(), rng=np.random.default_rng(0)
        )
        before = {name: p.data.copy() for name, p in quant.named_parameters()}
        calibrate(quant, train, num_batches=3)
        for name, param in quant.named_parameters():
            np.testing.assert_array_equal(param.data, before[name], err_msg=name)

    def test_model_left_in_eval_mode(self, trained_float_model, tiny_task):
        _, train, _, _ = tiny_task
        quant = post_training_quantize(
            trained_float_model, QuantConfig.fq_bert(), train, num_batches=1
        )
        assert not quant.training

    def test_num_batches_respected(self, trained_float_model, tiny_task):
        _, train, _, _ = tiny_task
        quant = quantize_model(
            trained_float_model, QuantConfig.fq_bert(), rng=np.random.default_rng(0)
        )
        # With decay d and k updates, EMA weight of the first observation is
        # d^(k-1); just verify calibration with more batches moves the stats.
        calibrate(quant, train, num_batches=1, rng=np.random.default_rng(1))
        one = quant.embeddings.layer_norm.output_quantizer.observer.max_abs
        calibrate(quant, train, num_batches=8, rng=np.random.default_rng(2))
        eight = quant.embeddings.layer_norm.output_quantizer.observer.max_abs
        assert one > 0 and eight > 0


class TestPtqAccuracy:
    def test_ptq_8bit_near_float(self, trained_float_model, tiny_task):
        """Gentle PTQ (8/8 weights-acts only) barely loses accuracy."""
        _, train, dev, _ = tiny_task
        float_accuracy = evaluate(trained_float_model, dev)
        quant = post_training_quantize(
            trained_float_model,
            QuantConfig.weights_activations_only(weight_bits=8, act_bits=8),
            train,
        )
        assert evaluate(quant, dev) >= float_accuracy - 3.0

    def test_ptq_works_with_full_fq_config(self, trained_float_model, tiny_task):
        _, train, dev, _ = tiny_task
        quant = post_training_quantize(trained_float_model, QuantConfig.fq_bert(), train)
        assert evaluate(quant, dev) > 60.0

    def test_ptq_integer_conversion_works(self, trained_float_model, tiny_task):
        """PTQ output is directly deployable to the integer engine."""
        from repro.quant import convert_to_integer

        _, train, dev, _ = tiny_task
        quant = post_training_quantize(trained_float_model, QuantConfig.fq_bert(), train)
        engine = convert_to_integer(quant)
        batch = dev.full_batch()
        preds = engine.predict(batch.input_ids, batch.attention_mask, batch.token_type_ids)
        assert preds.shape == (len(dev),)
