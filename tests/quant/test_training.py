"""Training loops: float training, QAT fine-tuning, evaluation."""

import numpy as np
import pytest

from repro.quant import QuantConfig, evaluate, quantize_model, train_classifier


class TestFloatTraining:
    def test_beats_chance(self, trained_float_model, tiny_task):
        _, _, dev, _ = tiny_task
        accuracy = evaluate(trained_float_model, dev)
        assert accuracy > 75.0

    def test_history_recorded(self, tiny_task, tiny_config):
        from repro.bert import BertForSequenceClassification

        _, train, dev, _ = tiny_task
        model = BertForSequenceClassification(tiny_config, rng=np.random.default_rng(5))
        result = train_classifier(model, train, dev, epochs=2, lr=1e-3, seed=5)
        assert len(result.epoch_accuracies) == 2
        assert len(result.epoch_losses) == 2
        assert result.best_accuracy >= max(result.epoch_accuracies) - 1e-9

    def test_keep_best_restores(self, tiny_task, tiny_config):
        from repro.bert import BertForSequenceClassification

        _, train, dev, _ = tiny_task
        model = BertForSequenceClassification(tiny_config, rng=np.random.default_rng(5))
        result = train_classifier(
            model, train, dev, epochs=2, lr=1e-3, seed=5, keep_best=True
        )
        assert result.final_accuracy == pytest.approx(result.best_accuracy, abs=2.0)

    def test_deterministic_given_seed(self, tiny_task, tiny_config):
        from repro.bert import BertForSequenceClassification

        _, train, dev, _ = tiny_task
        results = []
        for _ in range(2):
            model = BertForSequenceClassification(
                tiny_config, rng=np.random.default_rng(11)
            )
            result = train_classifier(model, train, dev, epochs=1, lr=1e-3, seed=11)
            results.append(result.final_accuracy)
        assert results[0] == results[1]


class TestQATTraining:
    def test_qat_preserves_accuracy(self, trained_float_model, trained_quant_model, tiny_task):
        """w4/a8 QAT stays within a few points of the float model."""
        _, _, dev, _ = tiny_task
        float_accuracy = evaluate(trained_float_model, dev)
        quant_accuracy = evaluate(trained_quant_model, dev)
        assert quant_accuracy >= float_accuracy - 8.0

    def test_qat_improves_over_post_training_quant(self, trained_float_model, tiny_task):
        """QAT fine-tuning should not hurt the freshly quantized model."""
        _, train, dev, _ = tiny_task
        qmodel = quantize_model(
            trained_float_model,
            QuantConfig.figure3(weight_bits=2, clip=False),
            rng=np.random.default_rng(2),
        )
        before = evaluate(qmodel, dev)
        train_classifier(qmodel, train, dev, epochs=1, lr=2e-4, seed=2)
        after = evaluate(qmodel, dev)
        assert after >= before - 3.0
