"""Integer-only inference engine: agreement with the QAT model (Eq. 5 realized)."""

import numpy as np
import pytest

from repro.autograd import no_grad
from repro.bert import BertConfig
from repro.quant import (
    GeluLUT,
    IntegerLinear,
    QuantBertForSequenceClassification,
    QuantConfig,
    convert_to_integer,
    int_range,
)
from repro.quant.fixedpoint import FixedPointMultiplier
from repro.quant.integer_model import IntegerLayerNorm, LN_FRAC_BITS
from repro.quant.qat import QuantLinear


@pytest.fixture(scope="module")
def calibrated_pair():
    """A QAT model with initialized observers plus its integer conversion."""
    rng = np.random.default_rng(42)
    config = BertConfig.tiny(vocab_size=64, num_labels=2, max_position_embeddings=16)
    model = QuantBertForSequenceClassification(config, QuantConfig.fq_bert(), rng=rng)
    model.train()
    # Calibrate observers with a few batches.
    for _ in range(4):
        ids = rng.integers(0, config.vocab_size, size=(4, 12))
        model(ids, np.ones((4, 12), dtype=np.int64))
    model.eval()
    integer = convert_to_integer(model)
    return model, integer, config


class TestIntegerLinear:
    def test_matches_fake_quant_linear(self, rng):
        """IntegerLinear.forward == QuantLinear forward on the same codes."""
        config = QuantConfig.fq_bert()
        qlinear = QuantLinear(16, 8, config, rng=rng)
        qlinear.train()
        in_scale = 32.0
        x_codes = rng.integers(-127, 128, size=(6, 16))
        x = (x_codes / in_scale).astype(np.float32)

        from repro.autograd import Tensor
        from repro.quant.integer_model import _convert_linear

        out, out_scale = qlinear(Tensor(x), in_scale)  # initializes observer
        qlinear.eval()
        out, out_scale = qlinear(Tensor(x), in_scale)
        integer = _convert_linear(qlinear, in_scale)
        int_out = integer.forward(x_codes)
        fake_codes = np.rint(out.data * out_scale)
        assert np.abs(int_out - fake_codes).max() <= 1  # rounding-tie slack

    def test_output_saturates_to_8bit(self, rng):
        weight = np.full((2, 4), 7, dtype=np.int64)
        linear = IntegerLinear(
            weight_codes=weight,
            bias_codes=None,
            requant=FixedPointMultiplier.from_float(1.0),
            in_scale=1.0,
            weight_scale=1.0,
            out_scale=1.0,
        )
        out = linear.forward(np.full((1, 4), 127, dtype=np.int64))
        assert out.max() <= 127 and out.min() >= -128

    def test_weight_bits_reported(self):
        linear = IntegerLinear(
            weight_codes=np.array([[7, -7]]),
            bias_codes=None,
            requant=FixedPointMultiplier.from_float(1.0),
            in_scale=1.0,
            weight_scale=1.0,
            out_scale=1.0,
        )
        assert linear.weight_bits == 4


class TestGeluLUT:
    def test_table_has_256_entries(self):
        lut = GeluLUT.build(in_scale=16.0, out_scale=16.0)
        assert len(lut.table) == 255  # codes -127..127

    def test_matches_float_gelu(self):
        in_scale, out_scale = 16.0, 20.0
        lut = GeluLUT.build(in_scale, out_scale)
        codes = np.arange(-127, 128)
        x = codes / in_scale
        gelu = 0.5 * x * (1 + np.tanh(np.sqrt(2 / np.pi) * (x + 0.044715 * x ** 3)))
        expected = np.clip(np.rint(gelu * out_scale), -127, 127)
        np.testing.assert_array_equal(lut.forward(codes), expected)

    def test_zero_maps_to_zero(self):
        lut = GeluLUT.build(10.0, 10.0)
        assert lut.forward(np.array([0]))[0] == 0


class TestIntegerLayerNorm:
    def test_matches_float_layernorm(self, rng):
        from repro.quant.fixedpoint import LN_PARAM_FORMAT

        hidden = 32
        gamma = rng.uniform(0.5, 2.0, hidden)
        beta = rng.uniform(-0.5, 0.5, hidden)
        scale_a, scale_b, out_scale = 20.0, 24.0, 18.0
        ln = IntegerLayerNorm(
            gamma_codes=LN_PARAM_FORMAT.to_fixed(gamma),
            beta_codes=LN_PARAM_FORMAT.to_fixed(beta),
            align_a=FixedPointMultiplier.from_float(2.0 ** LN_FRAC_BITS / scale_a),
            align_b=FixedPointMultiplier.from_float(2.0 ** LN_FRAC_BITS / scale_b),
            out_requant=FixedPointMultiplier.from_float(
                out_scale / 2.0 ** (LN_FRAC_BITS + LN_PARAM_FORMAT.frac_bits)
            ),
            out_scale=out_scale,
            eps_fx=int(1e-5 * 2 ** (2 * LN_FRAC_BITS)),
        )
        codes_a = rng.integers(-127, 128, size=(4, hidden))
        codes_b = rng.integers(-127, 128, size=(4, hidden))
        out = ln.forward(codes_a, codes_b)

        x = codes_a / scale_a + codes_b / scale_b
        mu = x.mean(-1, keepdims=True)
        var = x.var(-1, keepdims=True)
        gamma_q = LN_PARAM_FORMAT.round_trip(gamma)
        beta_q = LN_PARAM_FORMAT.round_trip(beta)
        expected = gamma_q * (x - mu) / np.sqrt(var + 1e-5) + beta_q
        expected_codes = np.clip(np.rint(expected * out_scale), -128, 127)
        assert np.abs(out - expected_codes).max() <= 1

    def test_constant_input_gives_beta(self, rng):
        from repro.quant.fixedpoint import LN_PARAM_FORMAT

        hidden = 16
        beta = np.full(hidden, 0.5)
        out_scale = 16.0
        ln = IntegerLayerNorm(
            gamma_codes=LN_PARAM_FORMAT.to_fixed(np.ones(hidden)),
            beta_codes=LN_PARAM_FORMAT.to_fixed(beta),
            align_a=FixedPointMultiplier.from_float(2.0 ** LN_FRAC_BITS / 16.0),
            align_b=FixedPointMultiplier.from_float(2.0 ** LN_FRAC_BITS / 16.0),
            out_requant=FixedPointMultiplier.from_float(
                out_scale / 2.0 ** (LN_FRAC_BITS + LN_PARAM_FORMAT.frac_bits)
            ),
            out_scale=out_scale,
            eps_fx=int(1e-5 * 2 ** (2 * LN_FRAC_BITS)),
        )
        codes = np.full((1, hidden), 32, dtype=np.int64)
        out = ln.forward(codes, codes)
        # (x - mu) = 0 everywhere, so output is beta -> 0.5 * 16 = 8.
        np.testing.assert_allclose(out, np.full((1, hidden), 8), atol=1)


class TestEndToEndAgreement:
    def test_predictions_match_fake_quant_model(self, calibrated_pair, rng):
        model, integer, config = calibrated_pair
        ids = rng.integers(0, config.vocab_size, size=(8, 12))
        mask = np.ones((8, 12), dtype=np.int64)
        mask[:, 9:] = 0
        fake_preds = model.predict(ids, mask)
        int_preds = integer.predict(ids, mask)
        assert (fake_preds == int_preds).mean() >= 0.9

    def test_logits_close(self, calibrated_pair, rng):
        model, integer, config = calibrated_pair
        ids = rng.integers(0, config.vocab_size, size=(4, 10))
        mask = np.ones((4, 10), dtype=np.int64)
        with no_grad():
            fake_logits = model(ids, mask).data
        int_logits = integer.forward(ids, mask)
        np.testing.assert_allclose(int_logits, fake_logits, atol=0.25)

    def test_encoder_outputs_are_int8_codes(self, calibrated_pair, rng):
        _, integer, config = calibrated_pair
        ids = rng.integers(0, config.vocab_size, size=(2, 8))
        codes = integer.encode(ids, np.ones((2, 8), dtype=np.int64))
        qmin, qmax = int_range(8)
        assert codes.dtype == np.int64
        assert codes.min() >= qmin and codes.max() <= qmax

    def test_weight_codes_fit_4_bits(self, calibrated_pair):
        _, integer, _ = calibrated_pair
        for layer in integer.layers:
            for linear in (layer.attention.query, layer.ffn1, layer.ffn2):
                assert np.abs(linear.weight_codes).max() <= 7

    def test_conversion_requires_activation_quant(self, rng):
        config = BertConfig.tiny(vocab_size=16, num_labels=2)
        model = QuantBertForSequenceClassification(
            config, QuantConfig.figure3(weight_bits=4, clip=True), rng=rng
        )
        with pytest.raises(ValueError):
            convert_to_integer(model)
