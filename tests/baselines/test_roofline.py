"""CPU/GPU roofline baselines: Table IV reproduction and model behaviour."""

import pytest

from repro.accel import CPU_I7_8700, GPU_K80, build_encoder_workload
from repro.baselines import compare_schemes, q8bert_config, qbert_mixed_config, simulate_baseline
from repro.bert import BertConfig
from repro.quant import QuantConfig, compression_ratio


@pytest.fixture(scope="module")
def workload():
    return build_encoder_workload(BertConfig.base(), seq_len=128)


class TestTableIVBaselines:
    def test_cpu_latency_near_paper(self, workload):
        report = simulate_baseline(workload, CPU_I7_8700)
        assert report.latency_ms == pytest.approx(145.06, rel=0.10)

    def test_gpu_latency_near_paper(self, workload):
        report = simulate_baseline(workload, GPU_K80)
        assert report.latency_ms == pytest.approx(27.84, rel=0.10)

    def test_cpu_fps_per_watt(self, workload):
        report = simulate_baseline(workload, CPU_I7_8700)
        assert report.fps_per_watt == pytest.approx(0.11, abs=0.03)

    def test_gpu_fps_per_watt(self, workload):
        report = simulate_baseline(workload, GPU_K80)
        assert report.fps_per_watt == pytest.approx(0.25, abs=0.05)

    def test_gpu_faster_than_cpu(self, workload):
        cpu = simulate_baseline(workload, CPU_I7_8700)
        gpu = simulate_baseline(workload, GPU_K80)
        assert gpu.latency_ms < cpu.latency_ms


class TestRooflineStructure:
    def test_per_op_decomposition(self, workload):
        report = simulate_baseline(workload, GPU_K80)
        assert len(report.op_times) == len(workload.layer_ops)
        total = sum(op.total_ms for op in report.op_times) * workload.num_layers
        assert report.latency_ms == pytest.approx(total)

    def test_op_time_is_max_of_compute_memory(self, workload):
        report = simulate_baseline(workload, CPU_I7_8700)
        for op in report.op_times:
            assert op.total_ms >= max(op.compute_ms, op.memory_ms)

    def test_ffn_dominates_cpu_time(self, workload):
        report = simulate_baseline(workload, CPU_I7_8700)
        times = {op.name: op.total_ms for op in report.op_times}
        assert times["FFN1"] > times["softmax"]
        assert times["FFN1"] > times["Add&LN_1"]

    def test_seq_scaling(self):
        short = simulate_baseline(
            build_encoder_workload(BertConfig.base(), seq_len=32), CPU_I7_8700
        )
        long = simulate_baseline(
            build_encoder_workload(BertConfig.base(), seq_len=128), CPU_I7_8700
        )
        assert long.latency_ms > short.latency_ms


class TestPartialQuantBaselines:
    def test_q8bert_config_shape(self):
        config = q8bert_config()
        assert config.weight_bits == 8
        assert not config.quantize_softmax and not config.quantize_layernorm

    def test_qbert_mixed_low_bit_weights(self):
        config = qbert_mixed_config(weight_bits=3)
        assert config.weight_bits == 3
        assert config.act_bits == 8

    def test_fq_bert_compresses_most(self):
        model = BertConfig.base()
        rows = {row.name: row for row in compare_schemes(model)}
        fq = rows["FQ-BERT (4/8)"]
        q8 = rows["Q8BERT-style (8/8)"]
        assert fq.compression > q8.compression
        assert fq.integer_only and not q8.integer_only

    def test_q8bert_roughly_4x(self):
        ratio = compression_ratio(BertConfig.base(), q8bert_config())
        assert 3.5 < ratio < 4.2
