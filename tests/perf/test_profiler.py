"""Timer and profiler primitives."""

import time

import pytest

from repro.perf import Profiler, time_callable


class TestTimer:
    def test_best_not_above_mean(self):
        result = time_callable(lambda: sum(range(2000)), repeats=5)
        assert result.repeats == 5
        assert 0 < result.best_ms <= result.mean_ms

    def test_rejects_zero_repeats(self):
        with pytest.raises(ValueError, match="repeats"):
            time_callable(lambda: None, repeats=0)

    def test_warmup_calls_run(self):
        calls = []
        time_callable(lambda: calls.append(1), repeats=2, warmup=3)
        assert len(calls) == 5


class TestProfiler:
    def test_spans_accumulate(self):
        profiler = Profiler()
        for _ in range(3):
            with profiler.span("work"):
                time.sleep(0.001)
        stats = profiler.spans["work"]
        assert stats.calls == 3
        assert stats.total_ms >= 3 * 0.5
        assert stats.mean_ms == pytest.approx(stats.total_ms / 3)

    def test_span_records_on_exception(self):
        profiler = Profiler()
        with pytest.raises(RuntimeError):
            with profiler.span("boom"):
                raise RuntimeError("x")
        assert profiler.spans["boom"].calls == 1

    def test_wrap_passes_through(self):
        profiler = Profiler()
        add = profiler.wrap("add", lambda a, b=0: a + b)
        assert add(2, b=3) == 5
        assert profiler.spans["add"].calls == 1

    def test_report_and_render(self):
        profiler = Profiler()
        with profiler.span("alpha"):
            pass
        report = profiler.report()
        assert set(report["alpha"]) == {"calls", "total_ms", "mean_ms"}
        assert "alpha" in profiler.render()

    def test_render_empty(self):
        assert "no spans" in Profiler().render()

    def test_reset(self):
        profiler = Profiler()
        with profiler.span("x"):
            pass
        profiler.reset()
        assert profiler.spans == {}


class TestChromeTrace:
    """Opt-in per-entry tracing, exported via the shared obs tracer."""

    def test_aggregate_mode_keeps_no_entries(self):
        profiler = Profiler()
        with profiler.span("x"):
            pass
        assert profiler.entries == []
        with pytest.raises(ValueError, match="trace=True"):
            profiler.chrome_trace()

    def test_entries_are_epoch_relative(self):
        profiler = Profiler(trace=True)
        with profiler.span("first"):
            time.sleep(0.001)
        with profiler.span("second"):
            pass
        (name_a, start_a, dur_a), (name_b, start_b, dur_b) = profiler.entries
        assert (name_a, name_b) == ("first", "second")
        assert start_a == 0.0
        assert start_b >= dur_a  # second began after first ended
        assert dur_a >= 0.5

    def test_chrome_document_shape(self):
        import json

        profiler = Profiler(trace=True)
        with profiler.span("stage"):
            pass
        doc = profiler.chrome_trace()
        assert doc["displayTimeUnit"] == "ms"
        meta, span = doc["traceEvents"]
        assert meta["ph"] == "M" and meta["args"]["name"] == "profiler"
        assert span["ph"] == "X" and span["name"] == "stage"
        json.loads(profiler.chrome_trace_json())

    def test_reset_clears_trace_state(self):
        profiler = Profiler(trace=True)
        with profiler.span("x"):
            pass
        profiler.reset()
        assert profiler.entries == []
        with profiler.span("y"):
            pass
        assert profiler.entries[0][1] == 0.0  # epoch restarted
