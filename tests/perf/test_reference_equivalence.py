"""Bit-exactness of the optimized kernels against the seed reference.

The vectorization pass (float64-BLAS exact GEMM, cached weight plans,
pre-widened LN parameters, shared LUTs) must be invisible in the outputs:
every kernel is compared code-for-code against the seed implementations
preserved in ``repro.perf.reference``, on random inputs and on adversarial
max-magnitude inputs that stress the exactness bounds.
"""

import numpy as np
import pytest

from repro.bert.config import BertConfig
from repro.perf import (
    build_synthetic_integer_model,
    reference_attention_forward,
    reference_encode,
    reference_forward,
    reference_layer_forward,
    reference_layernorm_forward,
    reference_linear_forward,
)
from repro.quant.fixedpoint import FixedPointMultiplier, VectorFixedPointMultiplier
from repro.quant.integer_model import IntegerLinear
from repro.quant.intgemm import EXACT_F64_LIMIT, CachedMatmul, exact_matmul, max_abs

SMALL_CONFIG = BertConfig(
    vocab_size=64,
    hidden_size=32,
    num_hidden_layers=2,
    num_attention_heads=4,
    intermediate_size=64,
    max_position_embeddings=32,
    num_labels=2,
)


@pytest.fixture(scope="module")
def model():
    return build_synthetic_integer_model(SMALL_CONFIG, seed=3)


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(11)


def _activation_codes(rng, shape, regime):
    """Input generators: random 8-bit codes or adversarial extremes."""
    if regime == "random":
        return rng.integers(-128, 128, size=shape).astype(np.int64)
    if regime == "max_magnitude":
        # Alternate the two saturation rails so accumulators see the
        # worst-case mix of +127 and -128 products.
        flat = np.arange(int(np.prod(shape)))
        return np.where(flat % 2 == 0, 127, -128).reshape(shape).astype(np.int64)
    if regime == "all_negative_rail":
        return np.full(shape, -128, dtype=np.int64)
    raise ValueError(regime)


REGIMES = ["random", "max_magnitude", "all_negative_rail"]


class TestLinearEquivalence:
    @pytest.mark.parametrize("regime", REGIMES)
    @pytest.mark.parametrize("shape", [(4, 32), (2, 8, 32), (8, 1, 32)])
    def test_matches_reference(self, model, rng, regime, shape):
        linear = model.layers[0].ffn1
        x = _activation_codes(rng, shape, regime)
        np.testing.assert_array_equal(
            linear.forward(x), reference_linear_forward(linear, x)
        )

    @pytest.mark.parametrize("regime", REGIMES)
    def test_per_channel_requant(self, rng, regime):
        """The vector-requant variant goes through the same exact GEMM."""
        out_dim, in_dim = 6, 16
        linear = IntegerLinear(
            weight_codes=rng.integers(-7, 8, size=(out_dim, in_dim)).astype(np.int64),
            bias_codes=rng.integers(-500, 501, size=out_dim).astype(np.int64),
            requant=VectorFixedPointMultiplier.from_floats(
                rng.uniform(0.001, 0.01, size=out_dim)
            ),
            in_scale=20.0,
            weight_scale=7.0,
            out_scale=20.0,
        )
        x = _activation_codes(rng, (5, in_dim), regime)
        np.testing.assert_array_equal(
            linear.forward(x), reference_linear_forward(linear, x)
        )

    def test_no_bias(self, rng):
        linear = IntegerLinear(
            weight_codes=rng.integers(-7, 8, size=(4, 8)).astype(np.int64),
            bias_codes=None,
            requant=FixedPointMultiplier.from_float(0.004),
            in_scale=20.0,
            weight_scale=7.0,
            out_scale=20.0,
        )
        x = _activation_codes(rng, (3, 8), "max_magnitude")
        np.testing.assert_array_equal(
            linear.forward(x), reference_linear_forward(linear, x)
        )

    def test_invalidate_cache_tracks_weight_edits(self, rng):
        linear = IntegerLinear(
            weight_codes=rng.integers(-7, 8, size=(4, 8)).astype(np.int64),
            bias_codes=None,
            requant=FixedPointMultiplier.from_float(0.004),
            in_scale=20.0,
            weight_scale=7.0,
            out_scale=20.0,
        )
        x = rng.integers(-128, 128, size=(3, 8)).astype(np.int64)
        linear.forward(x)  # builds the plan
        linear.weight_codes[0, 0] = 7 if linear.weight_codes[0, 0] != 7 else -7
        linear.invalidate_cache()
        np.testing.assert_array_equal(
            linear.forward(x), reference_linear_forward(linear, x)
        )


class TestLayerNormEquivalence:
    @pytest.mark.parametrize("regime", REGIMES)
    @pytest.mark.parametrize("shape", [(4, 32), (2, 3, 32)])
    def test_matches_reference(self, model, rng, regime, shape):
        ln = model.layers[0].attention_layernorm
        a = _activation_codes(rng, shape, regime)
        b = _activation_codes(rng, shape, "random" if regime != "random" else regime)
        np.testing.assert_array_equal(
            ln.forward(a, b), reference_layernorm_forward(ln, a, b)
        )

    def test_invalidate_cache_tracks_param_edits(self, model, rng):
        ln = model.layers[1].output_layernorm
        a = _activation_codes(rng, (2, 32), "random")
        b = _activation_codes(rng, (2, 32), "random")
        ln.forward(a, b)  # builds the caches
        original = ln.gamma_codes[0]
        try:
            ln.gamma_codes[0] = original + 1
            ln.invalidate_cache()
            np.testing.assert_array_equal(
                ln.forward(a, b), reference_layernorm_forward(ln, a, b)
            )
        finally:
            ln.gamma_codes[0] = original
            ln.invalidate_cache()


class TestAttentionEquivalence:
    @pytest.mark.parametrize("regime", REGIMES)
    @pytest.mark.parametrize("masked", [False, True])
    def test_matches_reference(self, model, rng, regime, masked):
        attn = model.layers[0].attention
        x = _activation_codes(rng, (3, 8, 32), regime)
        mask = None
        if masked:
            lengths = np.array([8, 5, 1])
            mask = (np.arange(8)[None, :] < lengths[:, None]).astype(np.int64)
        np.testing.assert_array_equal(
            attn.forward(x, mask), reference_attention_forward(attn, x, mask)
        )


class TestModelEquivalence:
    @pytest.mark.parametrize("regime", REGIMES)
    def test_layer_forward(self, model, rng, regime):
        layer = model.layers[1]
        x = _activation_codes(rng, (2, 6, 32), regime)
        np.testing.assert_array_equal(
            layer.forward(x, None), reference_layer_forward(layer, x, None)
        )

    def test_encode_and_forward(self, model, rng):
        ids = rng.integers(0, SMALL_CONFIG.vocab_size, size=(8, 16))
        lengths = rng.integers(4, 17, size=8)
        mask = (np.arange(16)[None, :] < lengths[:, None]).astype(np.int64)
        np.testing.assert_array_equal(
            model.encode(ids, mask), reference_encode(model, ids, mask)
        )
        np.testing.assert_array_equal(
            model.forward(ids, mask), reference_forward(model, ids, mask)
        )

    def test_chunked_forward_bit_identical(self, model, rng):
        ids = rng.integers(0, SMALL_CONFIG.vocab_size, size=(7, 16))
        np.testing.assert_array_equal(
            model.forward(ids, chunk_size=3), model.forward(ids)
        )

    def test_classify_rows_matches_per_row_classify(self, model, rng):
        ids = rng.integers(0, SMALL_CONFIG.vocab_size, size=(5, 16))
        codes = model.encode(ids)
        per_row = np.concatenate(
            [model.classify(codes[i : i + 1]) for i in range(codes.shape[0])]
        )
        np.testing.assert_array_equal(model.classify_rows(codes), per_row)


class TestExactGemm:
    def test_matches_int64_matmul(self, rng):
        a = rng.integers(-128, 128, size=(5, 16)).astype(np.int64)
        b = rng.integers(-7, 8, size=(16, 9)).astype(np.int64)
        out = exact_matmul(a, b)
        assert out.dtype == np.int64
        np.testing.assert_array_equal(out, a @ b)

    def test_batched_operands(self, rng):
        a = rng.integers(-128, 128, size=(2, 3, 4, 16)).astype(np.int64)
        b = rng.integers(-128, 128, size=(2, 3, 16, 5)).astype(np.int64)
        np.testing.assert_array_equal(exact_matmul(a, b), a @ b)

    def test_falls_back_beyond_f64_limit(self):
        """Magnitudes that float64 cannot certify use the int64 path."""
        a = np.full((1, 1), 2 ** 31, dtype=np.int64)
        b = np.full((1, 1), 2 ** 31, dtype=np.int64)
        assert max_abs(a) * max_abs(b) * 1 >= EXACT_F64_LIMIT
        np.testing.assert_array_equal(exact_matmul(a, b), a @ b)

    def test_cached_matmul_matches_and_freezes_operand(self, rng):
        b = rng.integers(-7, 8, size=(16, 9)).astype(np.int64)
        plan = CachedMatmul(b)
        a = rng.integers(-128, 128, size=(4, 16)).astype(np.int64)
        np.testing.assert_array_equal(plan(a), a @ b)
        with pytest.raises(ValueError):
            plan.b_f64[0, 0] = 1.0

    def test_cached_matmul_fallback(self):
        plan = CachedMatmul(np.full((1, 1), 2 ** 31, dtype=np.int64))
        a = np.full((1, 1), 2 ** 31, dtype=np.int64)
        np.testing.assert_array_equal(plan(a), np.array([[2 ** 62]], dtype=np.int64))

    def test_cached_matmul_fallback_uses_exact_integer_operand(self):
        """The fallback must not round-trip b through the lossy f64 copy."""
        b = np.array([[2 ** 60 + 1]], dtype=np.int64)  # not f64-representable
        plan = CachedMatmul(b)
        out = plan(np.array([[1]], dtype=np.int64))
        np.testing.assert_array_equal(out, np.array([[2 ** 60 + 1]], dtype=np.int64))

    def test_int64_min_does_not_defeat_the_guard(self):
        """np.abs(INT64_MIN) overflows; the guard must still force int64."""
        int64_min = np.iinfo(np.int64).min
        a = np.array([[int64_min, 1]], dtype=np.int64)
        b = np.array([[1], [1]], dtype=np.int64)
        assert max_abs(a) == 2 ** 63
        np.testing.assert_array_equal(exact_matmul(a, b), a @ b)

    def test_empty_operands(self):
        a = np.zeros((0, 4), dtype=np.int64)
        b = np.zeros((4, 3), dtype=np.int64)
        assert exact_matmul(a, b).shape == (0, 3)
        assert max_abs(a) == 0
