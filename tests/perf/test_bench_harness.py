"""The bench harness: suites, JSON round trip, and the regression gate."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.perf import (
    SCHEMA,
    SUITES,
    bench_text_pool,
    compare_runs,
    load_result,
    render_result,
    result_path,
    run_serve_suite,
    run_suite,
    write_result,
)
from repro.perf.bench import run_kernel_suite


def _doc(metrics, suite="kernels", profile="quick"):
    return {"schema": SCHEMA, "suite": suite, "profile": profile, "metrics": metrics}


def _metric(value, higher_is_better=False):
    return {"value": value, "unit": "ms", "higher_is_better": higher_is_better}


class TestRegressionGate:
    def test_lower_is_better_regression_detected(self):
        baseline = _doc({"latency": _metric(10.0)})
        current = _doc({"latency": _metric(11.5)})
        regressions = compare_runs(baseline, current, tolerance=0.10)
        assert [r.metric for r in regressions] == ["latency"]
        assert regressions[0].relative_change == pytest.approx(0.15)
        assert "rose" in regressions[0].render()

    def test_higher_is_better_regression_detected(self):
        baseline = _doc({"speedup": _metric(4.0, higher_is_better=True)})
        current = _doc({"speedup": _metric(3.0, higher_is_better=True)})
        regressions = compare_runs(baseline, current, tolerance=0.10)
        assert len(regressions) == 1
        assert "dropped" in regressions[0].render()

    def test_within_tolerance_passes(self):
        baseline = _doc({"latency": _metric(10.0)})
        current = _doc({"latency": _metric(10.9)})
        assert compare_runs(baseline, current, tolerance=0.10) == []

    def test_improvements_never_flagged(self):
        baseline = _doc(
            {"latency": _metric(10.0), "speedup": _metric(2.0, higher_is_better=True)}
        )
        current = _doc(
            {"latency": _metric(1.0), "speedup": _metric(9.0, higher_is_better=True)}
        )
        assert compare_runs(baseline, current) == []

    def test_profile_mismatch_raises(self):
        baseline = _doc({"latency": _metric(10.0)}, profile="full")
        current = _doc({"latency": _metric(10.0)}, profile="quick")
        with pytest.raises(ValueError, match="profile"):
            compare_runs(baseline, current)

    def test_suite_mismatch_raises(self):
        with pytest.raises(ValueError, match="suite"):
            compare_runs(_doc({}, suite="kernels"), _doc({}, suite="serve"))

    def test_unshared_metrics_ignored(self):
        baseline = _doc({"retired": _metric(10.0)})
        current = _doc({"brand_new": _metric(99.0)})
        assert compare_runs(baseline, current) == []

    def test_ungated_metrics_skipped(self):
        metric = dict(_metric(10.0), gated=False)
        baseline = _doc({"trace_wall_ms": metric})
        current = _doc({"trace_wall_ms": dict(metric, value=99.0)})
        assert compare_runs(baseline, current) == []

    def test_zero_baseline_skipped(self):
        baseline = _doc({"count": _metric(0.0)})
        current = _doc({"count": _metric(5.0)})
        assert compare_runs(baseline, current) == []

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError, match="tolerance"):
            compare_runs(_doc({}), _doc({}), tolerance=-0.1)


@pytest.fixture(scope="module")
def kernel_result():
    return run_kernel_suite(quick=True, seed=0)


@pytest.fixture(scope="module")
def serve_result():
    return run_serve_suite(quick=True, seed=0)


class TestKernelSuite:
    def test_document_shape(self, kernel_result):
        assert kernel_result["schema"] == SCHEMA
        assert kernel_result["suite"] == "kernels"
        assert kernel_result["profile"] == "quick"
        assert kernel_result["info"]["batch_size"] == 8

    def test_batched_forward_speedup_present_and_positive(self, kernel_result):
        speedup = kernel_result["metrics"]["batched_forward_batch8_speedup_vs_reference"]
        assert speedup["higher_is_better"] is True
        # Quick profile under CI load: assert a conservative floor; the
        # committed full-profile baseline documents the real (>2x) margin.
        assert speedup["value"] > 1.2

    def test_every_timing_metric_is_finite_positive(self, kernel_result):
        for name, metric in kernel_result["metrics"].items():
            assert np.isfinite(metric["value"]), name
            assert metric["value"] > 0, name

    def test_render_mentions_every_metric(self, kernel_result):
        text = render_result(kernel_result)
        for name in kernel_result["metrics"]:
            assert name in text


class TestServeSuite:
    def test_document_shape(self, serve_result):
        assert serve_result["suite"] == "serve"
        assert set(serve_result["metrics"]) >= {
            "trace_wall_ms",
            "wall_requests_per_s",
            "sim_p95_latency_ms",
            "sim_throughput_rps",
        }
        assert "profile_spans" in serve_result["info"]
        assert serve_result["info"]["profile_spans"]["model.encode"]["calls"] > 0

    def test_simulated_metrics_are_deterministic(self, serve_result):
        again = run_serve_suite(quick=True, seed=0)
        for name, metric in serve_result["metrics"].items():
            if name.startswith("sim_"):
                assert again["metrics"][name]["value"] == metric["value"], name

    def test_unknown_suite_rejected(self):
        with pytest.raises(ValueError, match="unknown suite"):
            run_suite("nonexistent")


class TestClusterSuite:
    @pytest.fixture(scope="class")
    def cluster_result(self):
        from repro.perf.bench import run_cluster_suite

        return run_cluster_suite(quick=True, seed=0)

    def test_document_shape(self, cluster_result):
        assert cluster_result["schema"] == SCHEMA
        assert cluster_result["suite"] == "cluster"
        assert cluster_result["profile"] == "quick"
        assert set(cluster_result["metrics"]) >= {
            "cluster_wall_ms",
            "sim_fixed_goodput_rps",
            "sim_auto_goodput_rps",
            "sim_hetero_throughput_rps",
        }

    def test_autoscaler_beats_fixed_fleet(self, cluster_result):
        """The suite's asserted contract, visible in the emitted numbers."""
        metrics = cluster_result["metrics"]
        assert (
            metrics["sim_auto_goodput_rps"]["value"]
            > metrics["sim_fixed_goodput_rps"]["value"]
        )

    def test_simulated_metrics_are_deterministic(self, cluster_result):
        from repro.perf.bench import run_cluster_suite

        again = run_cluster_suite(quick=True, seed=0)
        for name, metric in cluster_result["metrics"].items():
            if name.startswith("sim_"):
                assert again["metrics"][name]["value"] == metric["value"], name

    def test_in_suites_registry(self):
        assert "cluster" in SUITES


class TestFleetSuite:
    """The 1M-request run itself belongs to the bench smoke (it is the
    suite's whole point and costs a minute); the tier-1 tests pin the
    registry and the equivalence contract the suite enforces (covered in
    depth by tests/fleet/test_analytic.py)."""

    def test_in_suites_registry(self):
        assert "fleet" in SUITES
        from repro.perf import run_fleet_suite  # exported like the others

        assert callable(run_fleet_suite)

    def test_cli_accepts_fleet_suite(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["bench", "--quick", "--suite", "fleet"])
        assert args.suite == "fleet"


class TestJsonRoundTrip:
    def test_write_then_load(self, tmp_path, kernel_result):
        path = result_path(tmp_path, "kernels")
        assert path.name == "BENCH_kernels.json"
        write_result(kernel_result, path)
        assert load_result(path) == json.loads(json.dumps(kernel_result))

    def test_load_missing_returns_none(self, tmp_path):
        assert load_result(tmp_path / "BENCH_kernels.json") is None


class TestCliBench:
    def test_first_run_writes_baselines_and_passes(self, tmp_path):
        code = main(["bench", "--quick", "--suite", "serve", "--out-dir", str(tmp_path)])
        assert code == 0
        assert (tmp_path / "BENCH_serve.json").exists()

    def test_regression_fails_with_exit_1(self, tmp_path):
        assert main(["bench", "--quick", "--suite", "serve", "--out-dir", str(tmp_path)]) == 0
        path = tmp_path / "BENCH_serve.json"
        doc = json.loads(path.read_text())
        # Forge an impossibly good baseline so the next run must regress.
        for metric in doc["metrics"].values():
            metric["value"] = (
                metric["value"] * 1000.0
                if metric["higher_is_better"]
                else metric["value"] / 1000.0
            )
        path.write_text(json.dumps(doc))
        assert main(["bench", "--quick", "--suite", "serve", "--out-dir", str(tmp_path)]) == 1
        # The file was still rewritten with the fresh (honest) results, so
        # the forged values are gone and git diff would show what moved.
        fresh = json.loads(path.read_text())
        assert (
            fresh["metrics"]["sim_p95_latency_ms"]["value"]
            != doc["metrics"]["sim_p95_latency_ms"]["value"]
        )

    def test_no_check_skips_gate(self, tmp_path):
        assert main(["bench", "--quick", "--suite", "serve", "--out-dir", str(tmp_path)]) == 0
        path = tmp_path / "BENCH_serve.json"
        doc = json.loads(path.read_text())
        for metric in doc["metrics"].values():
            metric["value"] /= 1000.0
        path.write_text(json.dumps(doc))
        assert (
            main(
                [
                    "bench",
                    "--quick",
                    "--suite",
                    "serve",
                    "--no-check",
                    "--out-dir",
                    str(tmp_path),
                ]
            )
            == 0
        )

    def test_profile_mismatch_skips_gate_and_preserves_baseline(
        self, tmp_path, serve_result
    ):
        doc = dict(serve_result)
        doc["profile"] = "full"
        path = tmp_path / "BENCH_serve.json"
        write_result(doc, path)
        before = path.read_text()
        assert main(["bench", "--quick", "--suite", "serve", "--out-dir", str(tmp_path)]) == 0
        # Quick numbers must never silently replace a full-profile baseline.
        assert path.read_text() == before


class TestWorkloads:
    def test_synthetic_model_is_deterministic(self):
        from repro.perf import build_synthetic_integer_model

        a = build_synthetic_integer_model(seed=5)
        b = build_synthetic_integer_model(seed=5)
        np.testing.assert_array_equal(
            a.layers[0].ffn1.weight_codes, b.layers[0].ffn1.weight_codes
        )
        ids = np.arange(12).reshape(2, 6)
        np.testing.assert_array_equal(a.forward(ids), b.forward(ids))

    def test_text_pool_deterministic(self):
        assert bench_text_pool(8, seed=1) == bench_text_pool(8, seed=1)
        assert bench_text_pool(8, seed=1) != bench_text_pool(8, seed=2)

    def test_hash_tokenizer_contract(self):
        from repro.perf import HashTokenizer

        tok = HashTokenizer(vocab_size=64)
        ids, mask, segments = tok.encode("hello world", "again", max_length=8)
        assert ids.shape == mask.shape == segments.shape == (8,)
        assert ids[0] == 1 and mask.sum() == 4
        assert (segments[:4] == np.array([0, 0, 0, 1])).all()
        ids2, _, _ = tok.encode("hello world", "again", max_length=8)
        np.testing.assert_array_equal(ids, ids2)

    def test_hash_tokenizer_truncates(self):
        from repro.perf import HashTokenizer

        tok = HashTokenizer(vocab_size=64)
        ids, mask, _ = tok.encode(" ".join(["w"] * 50), max_length=8)
        assert mask.sum() == 8 and ids.shape == (8,)


class TestDseSuite:
    """The design-space search suite (quick profile — the full sweep and
    the pinned plan run in the CI bench smoke job; the search contracts
    themselves are covered in tests/search)."""

    @pytest.fixture(scope="class")
    def dse_result(self):
        from repro.perf.bench import run_dse_suite

        return run_dse_suite(quick=True, seed=0)

    def test_in_suites_registry(self):
        assert "dse" in SUITES

    def test_document_shape(self, dse_result):
        assert dse_result["suite"] == "dse"
        assert dse_result["profile"] == "quick"
        assert dse_result["schema"] == SCHEMA

    def test_throughput_contract_visible(self, dse_result):
        assert dse_result["metrics"]["dse_memoized_evals_per_s"]["value"] >= 1000.0

    def test_plan_is_feasible_and_pinned(self, dse_result):
        metrics = dse_result["metrics"]
        assert metrics["sim_plan_p99_latency_ms"]["value"] <= 150.0
        assert metrics["sim_plan_shed_rate"]["value"] == 0.0
        assert dse_result["info"]["plan"]["best"]

    def test_sim_metrics_reproduce(self, dse_result):
        from repro.perf.bench import run_dse_suite

        again = run_dse_suite(quick=True, seed=0)
        for name, metric in dse_result["metrics"].items():
            if name.startswith("sim_"):
                assert again["metrics"][name]["value"] == metric["value"], name
