"""Workload and schedule memoization: cached, identical, and safe."""

import numpy as np

from repro.accel.config import AcceleratorConfig
from repro.accel.scheduler import Scheduler
from repro.accel.workload import build_encoder_workload
from repro.bert.config import BertConfig


class TestWorkloadMemoization:
    def test_same_args_return_cached_object(self):
        config = BertConfig.tiny()
        first = build_encoder_workload(config, seq_len=32)
        second = build_encoder_workload(config, seq_len=32)
        assert first is second

    def test_distinct_args_distinct_workloads(self):
        config = BertConfig.tiny()
        assert build_encoder_workload(config, seq_len=32) is not build_encoder_workload(
            config, seq_len=64
        )
        assert build_encoder_workload(
            config, seq_len=32, batch_size=2
        ) is not build_encoder_workload(config, seq_len=32)

    def test_workload_is_hashable_and_immutable(self):
        workload = build_encoder_workload(BertConfig.tiny(), seq_len=16)
        assert hash(workload) == hash(
            build_encoder_workload(BertConfig.tiny(), seq_len=16)
        )
        assert isinstance(workload.layer_ops, tuple)


class TestScheduleMemoization:
    def test_second_call_returns_cached_result(self):
        scheduler = Scheduler(AcceleratorConfig())
        workload = build_encoder_workload(BertConfig.tiny(), seq_len=32)
        assert scheduler.schedule(workload) is scheduler.schedule(workload)

    def test_cached_result_equals_fresh_scheduler(self):
        config = AcceleratorConfig()
        workload = build_encoder_workload(BertConfig.base(), seq_len=64)
        warm = Scheduler(config)
        warm.schedule(workload)  # populate
        cached = warm.schedule(workload)
        fresh = Scheduler(config).schedule(workload)
        assert cached.total_cycles == fresh.total_cycles
        assert cached.breakdown() == fresh.breakdown()
        assert np.isclose(cached.latency_ms, fresh.latency_ms)

    def test_distinct_workloads_not_conflated(self):
        scheduler = Scheduler(AcceleratorConfig())
        short = scheduler.schedule(build_encoder_workload(BertConfig.base(), seq_len=32))
        long = scheduler.schedule(build_encoder_workload(BertConfig.base(), seq_len=128))
        assert short.total_cycles < long.total_cycles

    def test_loop_order_schedulers_do_not_share_cache(self):
        workload = build_encoder_workload(BertConfig.base(), seq_len=64)
        ws = Scheduler(AcceleratorConfig(), loop_order="weight_stationary").schedule(workload)
        ts = Scheduler(AcceleratorConfig(), loop_order="token_stationary").schedule(workload)
        assert ws.total_cycles != ts.total_cycles
