"""Fixtures for the search tests: spaces, models, and a planner harness.

The planner fixtures mirror the fleet tests' setup — a frozen synthetic
integer model on deliberately weak design points, so overload (and thus
plan discrimination) is reachable with a few hundred simulated requests.
"""

import pytest

from repro.accel import AcceleratorConfig
from repro.bert import BertConfig
from repro.fleet import FleetConfig, ReplicaSpec
from repro.perf.workloads import HashTokenizer, build_synthetic_integer_model
from repro.search import builtin_spaces
from repro.serve import ServingConfig


@pytest.fixture(scope="session")
def spaces():
    return builtin_spaces()


@pytest.fixture(scope="session")
def bert_base():
    return BertConfig.base()


@pytest.fixture(scope="session")
def cluster_model():
    config = BertConfig(
        vocab_size=512,
        hidden_size=64,
        num_hidden_layers=2,
        num_attention_heads=4,
        intermediate_size=128,
        max_position_embeddings=64,
        num_labels=2,
    )
    return build_synthetic_integer_model(config, seed=0)


@pytest.fixture(scope="session")
def hash_tokenizer():
    return HashTokenizer(vocab_size=512)


@pytest.fixture(scope="session")
def design_ladder():
    """weak < mid < default — the planner must price the strength range."""
    return [
        ReplicaSpec(
            accel_config=AcceleratorConfig(num_pus=2, num_pes=2, num_multipliers=4),
            name="weak",
        ),
        ReplicaSpec(
            accel_config=AcceleratorConfig(num_pus=4, num_pes=4, num_multipliers=8),
            name="mid",
        ),
        ReplicaSpec(name="default"),
    ]


@pytest.fixture(scope="session")
def fleet_config():
    return FleetConfig(
        serving=ServingConfig(
            max_batch_size=8,
            max_wait_ms=5.0,
            buckets=(16, 32, 64),
            num_devices=1,
            cache_capacity=512,
        )
    )
