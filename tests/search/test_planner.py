"""The capacity planner: feasibility, cost accounting, determinism."""

import pytest

from repro.fleet import ReplicaSpec
from repro.search import PlanSpec, PlanningResult, SloTarget, plan_capacity
from repro.search.planner import _plan_candidates


class TestSloTarget:
    def test_validation(self):
        with pytest.raises(ValueError, match="p99_ms"):
            SloTarget(p99_ms=0.0)
        with pytest.raises(ValueError, match="max_shed_rate"):
            SloTarget(p99_ms=100.0, max_shed_rate=1.5)


class TestPlanCandidates:
    def test_sizes_ascend_and_multisets_enumerate(self, design_ladder):
        plans = _plan_candidates(design_ladder, 2, include_autoscale=False)
        sizes = [len(plan.replicas) for plan in plans]
        assert sizes == sorted(sizes)
        # 3 singles + C(3+1, 2) = 6 pairs
        assert len(plans) == 9

    def test_autoscale_variants_follow_singles(self, design_ladder):
        plans = _plan_candidates(design_ladder, 3, include_autoscale=True)
        autoscaled = [plan for plan in plans if plan.autoscale is not None]
        assert len(autoscaled) == 3
        assert all(len(plan.replicas) == 1 for plan in autoscaled)
        assert all(plan.autoscale.max_replicas == 3 for plan in autoscaled)

    def test_no_autoscale_at_max_one(self, design_ladder):
        plans = _plan_candidates(design_ladder, 1, include_autoscale=True)
        assert all(plan.autoscale is None for plan in plans)

    def test_label_counts_duplicates(self, design_ladder):
        plan = PlanSpec(replicas=(design_ladder[0], design_ladder[0], design_ladder[1]))
        assert plan.label == "1x mid + 2x weak"


@pytest.fixture(scope="module")
def planning(request):
    """One shared full planning run against the pinned flash crowd."""
    ladder = request.getfixturevalue("design_ladder")
    model = request.getfixturevalue("cluster_model")
    tokenizer = request.getfixturevalue("hash_tokenizer")
    fleet_config = request.getfixturevalue("fleet_config")
    return plan_capacity(
        "flash-crowd",
        ladder,
        SloTarget(p99_ms=150.0),
        model,
        tokenizer,
        fleet_config=fleet_config,
        max_replicas=3,
        rate_scale=4.0,
        seed=0,
    )


class TestPlanCapacity:
    def test_best_plan_is_feasible(self, planning):
        assert planning.best is not None
        assert planning.best.feasible
        assert planning.best.p99_ms <= 150.0
        assert planning.best.shed_rate == 0.0

    def test_weak_single_replica_misses(self, planning):
        by_label = {outcome.plan.label: outcome for outcome in planning.outcomes}
        assert not by_label["1x weak"].feasible  # sheds under the burst

    def test_best_is_cheapest_feasible(self, planning):
        feasible = [o for o in planning.outcomes if o.feasible]
        assert planning.best.replica_seconds == min(
            o.replica_seconds for o in feasible
        )

    def test_costs_are_positive_and_scale_with_size(self, planning):
        by_label = {o.plan.label: o for o in planning.outcomes}
        assert 0 < by_label["1x mid"].replica_seconds < by_label["2x mid"].replica_seconds
        assert 0 < by_label["1x mid"].energy_j < by_label["2x mid"].energy_j

    def test_stronger_design_costs_more_energy(self, planning):
        by_label = {o.plan.label: o for o in planning.outcomes}
        assert by_label["1x default"].energy_j > by_label["1x mid"].energy_j

    def test_byte_identical_across_runs(
        self, design_ladder, cluster_model, hash_tokenizer, fleet_config, planning
    ):
        again = plan_capacity(
            "flash-crowd",
            design_ladder,
            SloTarget(p99_ms=150.0),
            cluster_model,
            hash_tokenizer,
            fleet_config=fleet_config,
            max_replicas=3,
            rate_scale=4.0,
            seed=0,
        )
        assert planning.to_json() == again.to_json()

    def test_energy_objective_changes_the_winner_key(
        self, design_ladder, cluster_model, hash_tokenizer, fleet_config
    ):
        by_energy = plan_capacity(
            "flash-crowd",
            design_ladder,
            SloTarget(p99_ms=150.0),
            cluster_model,
            hash_tokenizer,
            fleet_config=fleet_config,
            max_replicas=2,
            objective="energy",
            rate_scale=4.0,
            seed=0,
        )
        feasible = [o for o in by_energy.outcomes if o.feasible]
        assert by_energy.best.energy_j == min(o.energy_j for o in feasible)

    def test_budget_truncates(
        self, design_ladder, cluster_model, hash_tokenizer, fleet_config
    ):
        result = plan_capacity(
            "flash-crowd",
            design_ladder,
            SloTarget(p99_ms=150.0),
            cluster_model,
            hash_tokenizer,
            fleet_config=fleet_config,
            max_replicas=3,
            budget=4,
            rate_scale=4.0,
            seed=0,
        )
        assert result.truncated
        assert len(result.outcomes) == 4

    def test_impossible_target_returns_none(
        self, design_ladder, cluster_model, hash_tokenizer, fleet_config
    ):
        result = plan_capacity(
            "flash-crowd",
            design_ladder[:1],  # weak only
            SloTarget(p99_ms=1e-3),
            cluster_model,
            hash_tokenizer,
            fleet_config=fleet_config,
            max_replicas=1,
            rate_scale=4.0,
            seed=0,
        )
        assert result.best is None
        assert "no feasible plan" in result.render()

    def test_shed_tolerance_admits_shedding_plans(
        self, design_ladder, cluster_model, hash_tokenizer, fleet_config
    ):
        """A permissive shed budget makes the shedding weak replica legal."""
        tolerant = plan_capacity(
            "flash-crowd",
            design_ladder[:1],
            SloTarget(p99_ms=1e6, max_shed_rate=1.0, enforce_tenant_slos=False),
            cluster_model,
            hash_tokenizer,
            fleet_config=fleet_config,
            max_replicas=1,
            rate_scale=4.0,
            seed=0,
        )
        assert tolerant.best is not None

    def test_validation(
        self, design_ladder, cluster_model, hash_tokenizer, fleet_config
    ):
        target = SloTarget(p99_ms=100.0)
        with pytest.raises(ValueError, match="objective"):
            plan_capacity(
                "steady", design_ladder, target, cluster_model, hash_tokenizer,
                fleet_config=fleet_config, objective="latency",
            )
        with pytest.raises(ValueError, match="at least one"):
            plan_capacity(
                "steady", [], target, cluster_model, hash_tokenizer,
                fleet_config=fleet_config,
            )
        with pytest.raises(ValueError, match="unique"):
            plan_capacity(
                "steady", [design_ladder[0], design_ladder[0]], target,
                cluster_model, hash_tokenizer, fleet_config=fleet_config,
            )
        with pytest.raises(ValueError, match="max_replicas"):
            plan_capacity(
                "steady", design_ladder, target, cluster_model, hash_tokenizer,
                fleet_config=fleet_config, max_replicas=0,
            )

    def test_result_is_planning_result_with_stable_json(self, planning):
        assert isinstance(planning, PlanningResult)
        doc = planning.to_dict()
        assert doc["schema"] == "repro-search/1"
        assert doc["mode"] == "plan"
        assert doc["best"]["plan"] == planning.best.plan.label


class TestTenantSlos:
    def test_multi_tenant_slos_enforced(
        self, design_ladder, cluster_model, hash_tokenizer, fleet_config
    ):
        """With tenant enforcement on, the interactive tenant's 60 ms SLO
        binds even when the fleet-wide target is loose."""
        loose = plan_capacity(
            "multi-tenant",
            design_ladder[:1],
            SloTarget(p99_ms=1e6, max_shed_rate=1.0, enforce_tenant_slos=False),
            cluster_model,
            hash_tokenizer,
            fleet_config=fleet_config,
            max_replicas=1,
            rate_scale=2.0,
            seed=0,
        )
        strict = plan_capacity(
            "multi-tenant",
            design_ladder[:1],
            SloTarget(p99_ms=1e6, max_shed_rate=1.0, enforce_tenant_slos=True),
            cluster_model,
            hash_tokenizer,
            fleet_config=fleet_config,
            max_replicas=1,
            rate_scale=2.0,
            seed=0,
        )
        assert loose.best is not None
        # The weak replica blows the 60 ms interactive SLO at this rate.
        assert strict.best is None


class TestChaosAwarePlanning:
    """With a chaos plan, feasible means surviving the outage too."""

    @pytest.fixture(scope="class")
    def chaos_planning(self, request):
        from repro.fleet import ChaosPlan, ZoneOutage

        ladder = request.getfixturevalue("design_ladder")
        model = request.getfixturevalue("cluster_model")
        tokenizer = request.getfixturevalue("hash_tokenizer")
        fleet_config = request.getfixturevalue("fleet_config")
        # One zone holding replica 0: every single-replica plan goes
        # fully dark for the outage window; pairs keep a survivor.
        plan = ChaosPlan(
            name="zone-a-down",
            zones=(("zone-a", (0,)),),
            outages=(ZoneOutage(zone="zone-a", at_ms=150.0, recover_ms=600.0),),
        )
        return plan_capacity(
            "steady",
            ladder[1:],  # mid + default: clean-feasible even solo
            SloTarget(p99_ms=150.0, max_shed_rate=0.05),
            model,
            tokenizer,
            fleet_config=fleet_config,
            max_replicas=2,
            include_autoscale=False,
            rate_scale=2.0,
            seed=0,
            chaos=plan,
        )

    def test_chaos_verdicts_recorded(self, chaos_planning):
        assert chaos_planning.chaos_plan == "zone-a-down"
        assert all(
            o.chaos_feasible is not None for o in chaos_planning.outcomes
        )
        doc = chaos_planning.to_dict()
        assert doc["chaos_plan"] == "zone-a-down"
        assert all("chaos" in o for o in doc["outcomes"])

    def test_redundancy_required(self, chaos_planning):
        """Clean-feasible singles die with zone-a; only N+1 plans win."""
        singles = [
            o for o in chaos_planning.outcomes if len(o.plan.replicas) == 1
        ]
        assert singles and all(not o.feasible for o in singles)
        assert all(not o.chaos_feasible for o in singles)
        assert chaos_planning.best is not None
        assert len(chaos_planning.best.plan.replicas) >= 2
        assert chaos_planning.best.chaos_feasible

    def test_render_shows_both_verdicts(self, chaos_planning):
        rendered = chaos_planning.render()
        assert "replayed under chaos plan 'zone-a-down'" in rendered
        assert "chaos[" in rendered

    def test_no_chaos_omits_the_section(self, planning):
        assert planning.chaos_plan is None
        assert planning.to_dict()["chaos_plan"] is None
        assert all(
            o.chaos_feasible is None for o in planning.outcomes
        )
        assert "chaos[" not in planning.render()


class TestPlanEngines:
    """The columnar and event-loop inner loops return the same plans."""

    def test_engines_byte_identical(
        self, design_ladder, cluster_model, hash_tokenizer, fleet_config
    ):
        kw = dict(
            fleet_config=fleet_config, max_replicas=2, rate_scale=2.0,
            duration_scale=0.5, seed=3,
        )
        target = SloTarget(p99_ms=200.0, max_shed_rate=0.1)
        by_event = plan_capacity(
            "multi-tenant", design_ladder, target, cluster_model,
            hash_tokenizer, engine="event", **kw,
        )
        by_columnar = plan_capacity(
            "multi-tenant", design_ladder, target, cluster_model,
            hash_tokenizer, engine="columnar", **kw,
        )
        assert by_columnar.to_json() == by_event.to_json()
        assert by_columnar.render() == by_event.render()

    def test_unknown_engine_rejected(
        self, design_ladder, cluster_model, hash_tokenizer, fleet_config
    ):
        with pytest.raises(ValueError, match="unknown plan engine"):
            plan_capacity(
                "steady", design_ladder, SloTarget(p99_ms=100.0),
                cluster_model, hash_tokenizer, fleet_config=fleet_config,
                engine="quantum",
            )
