"""Design spaces: eager knob validation, enumeration, seeded sampling."""

import pytest

from repro.accel import AcceleratorConfig, ZCU102, ZCU111
from repro.accel.bim import BimType
from repro.search import DesignSpace, SPACE_NAMES, builtin_spaces


class TestCatalog:
    def test_names(self):
        assert SPACE_NAMES == ("small", "table3", "wide")

    def test_table3_contains_paper_points(self, spaces):
        candidates = spaces["table3"].candidates()
        for named, device in (
            (AcceleratorConfig.zcu102_n8_m16(), ZCU102),
            (AcceleratorConfig.zcu102_n16_m8(), ZCU102),
            (AcceleratorConfig.zcu111_n16_m16(), ZCU111),
        ):
            assert (named, device) in candidates

    def test_sizes(self, spaces):
        assert spaces["small"].size == 4
        assert spaces["table3"].size == 32
        assert spaces["wide"].size == 320

    def test_size_matches_enumeration(self, spaces):
        for space in spaces.values():
            assert len(space.candidates()) == space.size


class TestValidation:
    def test_bad_multiplier_axis_names_the_knob(self):
        with pytest.raises(ValueError, match="num_multipliers"):
            DesignSpace(name="bad", num_multipliers=(8, 12))

    def test_bad_pes_axis_names_the_knob(self):
        with pytest.raises(ValueError, match="num_pes"):
            DesignSpace(name="bad", num_pes=(0,))

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="num_pus"):
            DesignSpace(name="bad", num_pus=())

    def test_duplicate_axis_values_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            DesignSpace(name="bad", num_pes=(8, 8))

    def test_no_devices_rejected(self):
        with pytest.raises(ValueError, match="devices"):
            DesignSpace(name="bad", devices=())

    def test_nameless_rejected(self):
        with pytest.raises(ValueError, match="name"):
            DesignSpace(name="")


class TestEnumeration:
    def test_deterministic(self, spaces):
        space = spaces["table3"]
        assert space.candidates() == space.candidates()

    def test_devices_vary_slowest(self):
        space = DesignSpace(
            name="two-dev", devices=(ZCU102, ZCU111), num_pes=(4, 8)
        )
        devices = [device.name for _, device in space.candidates()]
        assert devices == ["ZCU102", "ZCU102", "ZCU111", "ZCU111"]

    def test_bim_axis_enumerates(self):
        space = DesignSpace(name="bims", bim_type=(BimType.TYPE_A, BimType.TYPE_B))
        types = [config.bim_type for config, _ in space.candidates()]
        assert types == [BimType.TYPE_A, BimType.TYPE_B]


class TestSampling:
    def test_no_budget_is_full_grid(self, spaces):
        space = spaces["table3"]
        assert space.sample() == space.candidates()

    def test_covering_budget_is_full_grid(self, spaces):
        space = spaces["table3"]
        assert space.sample(budget=space.size) == space.candidates()
        assert space.sample(budget=10_000) == space.candidates()

    def test_budget_caps_and_is_deterministic(self, spaces):
        space = spaces["wide"]
        sample = space.sample(budget=25, seed=3)
        assert len(sample) == 25
        assert sample == space.sample(budget=25, seed=3)

    def test_sample_is_subsequence_of_grid(self, spaces):
        space = spaces["wide"]
        grid = space.candidates()
        sample = space.sample(budget=17, seed=1)
        positions = [grid.index(candidate) for candidate in sample]
        assert positions == sorted(positions)
        assert len(set(positions)) == len(positions)

    def test_different_seeds_differ(self, spaces):
        space = spaces["wide"]
        assert space.sample(budget=25, seed=0) != space.sample(budget=25, seed=1)

    def test_bad_budget(self, spaces):
        with pytest.raises(ValueError, match="budget"):
            spaces["table3"].sample(budget=0)


class TestWithValidation:
    """The eager `AcceleratorConfig.with_` checks the spaces lean on."""

    def test_non_power_of_two_m_names_the_knob(self):
        with pytest.raises(ValueError, match="num_multipliers.*power of two"):
            AcceleratorConfig().with_(num_multipliers=12)

    def test_zero_pus_names_the_knob(self):
        with pytest.raises(ValueError, match="num_pus"):
            AcceleratorConfig().with_(num_pus=0)

    def test_zero_pes_names_the_knob(self):
        with pytest.raises(ValueError, match="num_pes"):
            AcceleratorConfig().with_(num_pes=0)

    def test_unknown_knob_rejected(self):
        with pytest.raises(ValueError, match="unknown AcceleratorConfig knob"):
            AcceleratorConfig().with_(num_bims=4)

    def test_negative_frequency_rejected(self):
        with pytest.raises(ValueError, match="frequency_mhz"):
            AcceleratorConfig().with_(frequency_mhz=-1.0)

    def test_valid_update_still_works(self):
        config = AcceleratorConfig().with_(num_pes=16, num_multipliers=8)
        assert (config.num_pes, config.num_multipliers) == (16, 8)
