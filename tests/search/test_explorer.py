"""The explorer: memoized pricing, dominance, and the Pareto front."""

import pytest

from repro.accel import AcceleratorConfig, ZCU102, ZCU111
from repro.search import (
    DesignSpace,
    clear_evaluation_cache,
    dominates,
    evaluate_candidate,
    evaluation_cache_size,
    explore,
    objective_vector,
    pareto_front,
)


class TestEvaluateCandidate:
    def test_matches_direct_simulation(self, bert_base):
        from repro.accel import AcceleratorSimulator

        config = AcceleratorConfig()
        report = evaluate_candidate(config, ZCU102, bert_base)
        direct = AcceleratorSimulator(config, ZCU102).simulate(bert_base, seq_len=128)
        assert report.latency_ms == direct.latency_ms
        assert report.resources == direct.resources
        assert report.power_watts == direct.power_watts

    def test_memoized_returns_same_object(self, bert_base):
        config = AcceleratorConfig(num_pes=16)
        first = evaluate_candidate(config, ZCU102, bert_base)
        assert evaluate_candidate(config, ZCU102, bert_base) is first

    def test_cache_grows_and_clears(self, bert_base):
        clear_evaluation_cache()
        assert evaluation_cache_size() == 0
        evaluate_candidate(AcceleratorConfig(), ZCU102, bert_base)
        evaluate_candidate(AcceleratorConfig(), ZCU111, bert_base)
        assert evaluation_cache_size() == 2

    def test_distinct_shapes_are_distinct_entries(self, bert_base):
        clear_evaluation_cache()
        evaluate_candidate(AcceleratorConfig(), ZCU102, bert_base, seq_len=64)
        evaluate_candidate(AcceleratorConfig(), ZCU102, bert_base, seq_len=128)
        assert evaluation_cache_size() == 2


class TestObjectiveVector:
    def test_latency_energy(self, bert_base):
        report = evaluate_candidate(AcceleratorConfig(), ZCU102, bert_base)
        assert objective_vector(report, ("latency", "energy")) == (
            report.latency_ms,
            report.energy_per_inference_mj,
        )

    def test_headroom_expands_per_resource(self, bert_base):
        report = evaluate_candidate(AcceleratorConfig(), ZCU102, bert_base)
        vector = objective_vector(report, ("headroom",))
        assert len(vector) == len(report.resources.utilization(ZCU102))

    def test_unknown_objective(self, bert_base):
        report = evaluate_candidate(AcceleratorConfig(), ZCU102, bert_base)
        with pytest.raises(ValueError, match="unknown objective"):
            objective_vector(report, ("fps",))

    def test_empty_objectives(self, bert_base):
        report = evaluate_candidate(AcceleratorConfig(), ZCU102, bert_base)
        with pytest.raises(ValueError, match="at least one"):
            objective_vector(report, ())


class TestDominance:
    def test_strictly_bigger_design_dominates_on_latency(self, bert_base):
        small = evaluate_candidate(AcceleratorConfig(num_pes=4), ZCU102, bert_base)
        large = evaluate_candidate(AcceleratorConfig(num_pes=8), ZCU102, bert_base)
        assert dominates(large, small, ("latency",))
        assert not dominates(small, large, ("latency",))

    def test_never_across_devices(self, bert_base):
        a = evaluate_candidate(AcceleratorConfig(), ZCU102, bert_base)
        b = evaluate_candidate(AcceleratorConfig(), ZCU111, bert_base)
        assert not dominates(a, b, ("latency",))
        assert not dominates(b, a, ("latency",))

    def test_equal_vectors_do_not_dominate(self, bert_base):
        report = evaluate_candidate(AcceleratorConfig(), ZCU102, bert_base)
        assert not dominates(report, report, ("latency", "energy"))

    def test_headroom_vector_preserves_the_table3_trade(self, bert_base):
        """(16,8) beats (8,16) on latency+energy+DSP but pays FF/LUT —
        under the elementwise headroom objective neither dominates."""
        n8m16 = evaluate_candidate(
            AcceleratorConfig.zcu102_n8_m16(), ZCU102, bert_base
        )
        n16m8 = evaluate_candidate(
            AcceleratorConfig.zcu102_n16_m8(), ZCU102, bert_base
        )
        assert dominates(n16m8, n8m16, ("latency", "energy"))
        objectives = ("latency", "energy", "headroom")
        assert not dominates(n16m8, n8m16, objectives)
        assert not dominates(n8m16, n16m8, objectives)


class TestParetoFront:
    def test_front_members_are_mutually_non_dominated(self, spaces, bert_base):
        result = explore(spaces["table3"], model=bert_base)
        for a in result.front:
            for b in result.front:
                assert not dominates(a, b, result.objectives)

    def test_dominated_points_are_excluded(self, spaces, bert_base):
        result = explore(spaces["table3"], model=bert_base, objectives=("latency",))
        # One survivor per device: nothing beats the fastest point.
        devices = [report.device.name for report in result.front]
        assert sorted(set(devices)) == ["ZCU102", "ZCU111"]
        assert len(result.front) == 2

    def test_duplicate_objective_vectors_kept_once(self, bert_base):
        report = evaluate_candidate(AcceleratorConfig(), ZCU102, bert_base)
        front = pareto_front([report, report], ("latency", "energy"))
        assert front == [report]

    def test_front_is_sorted_deterministically(self, spaces, bert_base):
        result = explore(spaces["table3"], model=bert_base)
        keys = [
            (r.device.name, r.latency_ms, r.energy_per_inference_mj)
            for r in result.front
        ]
        assert keys == sorted(keys)

    def test_empty_input(self):
        assert pareto_front([], ("latency",)) == []


class TestNamedPointsOnFront:
    """The acceptance contract: no hand-picked Table III point is dominated."""

    def test_paper_points_survive(self, spaces, bert_base):
        result = explore(spaces["table3"], model=bert_base)
        front_keys = {(r.device.name, r.config) for r in result.front}
        assert ("ZCU102", AcceleratorConfig.zcu102_n8_m16()) in front_keys
        assert ("ZCU102", AcceleratorConfig.zcu102_n16_m8()) in front_keys
        assert ("ZCU111", AcceleratorConfig.zcu111_n16_m16()) in front_keys


class TestExplore:
    def test_byte_identical_across_runs(self, spaces, bert_base):
        first = explore(spaces["small"], model=bert_base, seed=5)
        second = explore(spaces["small"], model=bert_base, seed=5)
        assert first.to_json() == second.to_json()

    def test_budget_caps_evaluations(self, spaces, bert_base):
        result = explore(spaces["wide"], model=bert_base, budget=30, seed=2)
        assert result.evaluated == 30
        assert result.feasible <= 30

    def test_infeasible_points_filtered(self, bert_base):
        # A grid of monsters: nothing fits a ZCU102.
        space = DesignSpace(
            name="monsters", num_pes=(32,), num_multipliers=(32,), devices=(ZCU102,)
        )
        result = explore(space, model=bert_base)
        assert result.evaluated == 1
        assert result.feasible == 0
        assert result.front == []

    def test_unknown_objective_rejected_before_pricing(self, spaces, bert_base):
        with pytest.raises(ValueError, match="unknown objective"):
            explore(spaces["small"], model=bert_base, objectives=("bogus",))

    def test_render_mentions_front_and_space(self, spaces, bert_base):
        result = explore(spaces["small"], model=bert_base)
        text = result.render()
        assert "space: small" in text
        assert "Pareto front" in text

    def test_json_candidates_share_simulate_shape(self, spaces, bert_base):
        """Front entries use the exact repro-design/1 shape simulate emits."""
        from repro.accel import AcceleratorSimulator

        result = explore(spaces["small"], model=bert_base)
        entry = result.to_dict()["front"][0]
        config = AcceleratorConfig(
            num_pus=entry["config"]["num_pus"],
            num_pes=entry["config"]["num_pes"],
            num_multipliers=entry["config"]["num_multipliers"],
        )
        direct = AcceleratorSimulator(config, ZCU102).simulate(
            bert_base, seq_len=result.seq_len
        )
        assert entry == direct.to_dict()
