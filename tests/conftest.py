"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.bert import BertConfig, BertForSequenceClassification
from repro.data import encode_task, make_sst2_like
from repro.quant import QuantConfig, quantize_model, train_classifier


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def tiny_task():
    """A small SST-2-like task with encoded splits (session-cached)."""
    task = make_sst2_like(num_train=256, num_dev=128, seed=3)
    train, dev, tokenizer = encode_task(task, max_length=16)
    return task, train, dev, tokenizer


@pytest.fixture(scope="session")
def tiny_config(tiny_task):
    _, _, _, tokenizer = tiny_task
    return BertConfig.tiny(
        vocab_size=len(tokenizer.vocab), num_labels=2, max_position_embeddings=16
    )


@pytest.fixture(scope="session")
def trained_float_model(tiny_task, tiny_config):
    """A float model trained enough to beat chance (session-cached)."""
    _, train, dev, _ = tiny_task
    model = BertForSequenceClassification(tiny_config, rng=np.random.default_rng(0))
    train_classifier(model, train, dev, epochs=6, lr=1.5e-3, batch_size=32, seed=0)
    return model


@pytest.fixture(scope="session")
def trained_quant_model(tiny_task, tiny_config, trained_float_model):
    """An FQ-BERT fine-tuned from the float model (session-cached)."""
    _, train, dev, _ = tiny_task
    qmodel = quantize_model(
        trained_float_model, QuantConfig.fq_bert(), rng=np.random.default_rng(1)
    )
    train_classifier(qmodel, train, dev, epochs=1, lr=2e-4, batch_size=32, seed=1)
    qmodel.eval()
    return qmodel
