"""Rolling windows: aggregation, degenerate shapes, shard-split merging."""

import io
import json

import numpy as np
import pytest

from repro.obs import QuantileSketch, WindowTracker


def _docs(tracker):
    return [json.loads(line) for line in tracker.lines]


class TestAggregation:
    def test_one_window_fields(self):
        w = WindowTracker(window_ms=20.0)
        w.record_arrival(1.0)
        w.record_arrival(2.0)
        w.record_shed(3.0, "overload")
        w.record_completion(5.0, 4.0, True)
        w.flush_all()
        (doc,) = _docs(w)
        assert doc["index"] == 0
        assert doc["start_ms"] == 0.0 and doc["end_ms"] == 20.0
        assert doc["arrivals"] == 2
        assert doc["completions"] == 1
        assert doc["shed"] == {"overload": 1}
        assert doc["shed_rate"] == 0.5
        assert doc["latency_p99_ms"] == 4.0
        assert doc["latency_max_ms"] == 4.0
        assert doc["goodput_rps"] == 1 / 0.020
        assert doc["queue_depth"] == 0

    def test_queue_depth_carries_across_windows(self):
        w = WindowTracker(window_ms=10.0)
        w.record_arrival(1.0)
        w.record_arrival(2.0)        # both admitted, neither finished
        w.record_completion(15.0, 14.0, True)
        w.flush_all()
        first, second = _docs(w)
        assert first["queue_depth"] == 2
        assert second["queue_depth"] == 1

    def test_scale_and_failure_events_bucketed(self):
        w = WindowTracker(window_ms=10.0)
        w.record_scale(5.0, "up")
        w.record_scale(15.0, "down")
        w.record_failure(5.0)
        w.record_recovery(15.0)
        w.flush_all()
        first, second = _docs(w)
        assert (first["scale_up"], first["failures"]) == (1, 1)
        assert (second["scale_down"], second["recoveries"]) == (1, 1)

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            WindowTracker(window_ms=0.0)


class TestDegenerateWindows:
    """The satellite checklist: empty, single-request, gap, and split."""

    def test_empty_run_emits_nothing(self):
        w = WindowTracker(window_ms=20.0)
        w.flush_all()
        assert w.lines == []

    def test_interior_empty_windows_are_emitted_as_zero(self):
        w = WindowTracker(window_ms=10.0)
        w.record_arrival(5.0)
        w.record_arrival(45.0)      # windows 1..3 are empty
        w.flush_all()
        docs = _docs(w)
        assert [d["index"] for d in docs] == [0, 1, 2, 3, 4]
        for doc in docs[1:4]:
            assert doc["arrivals"] == 0
            assert doc["latency_p99_ms"] == 0.0
            assert doc["shed"] == {}
            assert doc["throughput_rps"] == 0.0

    def test_single_request_window_p99_is_its_latency(self):
        w = WindowTracker(window_ms=20.0)
        w.record_arrival(1.0)
        w.record_completion(4.0, 3.0, True)
        w.flush_all()
        (doc,) = _docs(w)
        assert doc["latency_p99_ms"] == 3.0
        assert doc["latency_mean_ms"] == 3.0

    def test_failure_gap_windows_stay_empty_but_flagged(self):
        # a replica fails, traffic sheds during the gap, then it recovers
        w = WindowTracker(window_ms=10.0)
        w.record_arrival(5.0)
        w.record_completion(6.0, 1.0, True)
        w.record_failure(10.0)
        for t in (12.0, 14.0, 22.0):
            w.record_arrival(t)
            w.record_shed(t, "no-capacity")
        w.record_recovery(30.0)
        w.flush_all()
        docs = _docs(w)
        assert docs[1]["failures"] == 1
        assert docs[1]["shed"] == {"no-capacity": 2}
        assert docs[1]["completions"] == 0
        assert docs[2]["shed"] == {"no-capacity": 1}
        assert docs[3]["recoveries"] == 1
        assert all(d["queue_depth"] == 0 for d in docs)

    def test_window_split_at_shard_boundary_merges_identically(self):
        # the same records, once straight through and once drained into
        # two partials mid-window (what a shard boundary does)
        records = [(3.0, 2.0), (7.0, 1.5), (12.0, 4.0), (17.0, 2.5)]

        whole = WindowTracker(window_ms=20.0)
        for finish, lat in records:
            whole.record_arrival(finish - lat)
            whole.record_completion(finish, lat, True)
        whole.flush_all()

        split = WindowTracker(window_ms=20.0)
        for finish, lat in records[:2]:
            split.record_arrival(finish - lat)
            split.record_completion(finish, lat, True)
        first = split.take()            # shard edge at t=10, mid-window
        for finish, lat in records[2:]:
            split.record_arrival(finish - lat)
            split.record_completion(finish, lat, True)
        second = split.take()
        split.absorb(first)
        split.absorb(second)
        split.flush_all()

        assert split.lines == whole.lines


class TestFlushHorizon:
    """The zero-length-window satellite: trailing event-free windows up
    to the run horizon are emitted as explicit empty records."""

    def test_trailing_empty_windows_emitted_to_horizon(self):
        w = WindowTracker(window_ms=10.0)
        w.record_arrival(5.0)
        w.flush_all(horizon_ms=45.0)
        docs = _docs(w)
        assert [d["index"] for d in docs] == [0, 1, 2, 3, 4]
        for doc in docs[1:]:
            assert doc["arrivals"] == 0
            assert doc["completions"] == 0
            assert doc["shed"] == {}
            assert doc["latency_p99_ms"] == 0.0

    def test_horizon_on_boundary_closes_boundary_window_only(self):
        # horizon exactly at a window edge: the window ending there is
        # flushed, nothing past it
        w = WindowTracker(window_ms=10.0)
        w.record_arrival(5.0)
        w.flush_all(horizon_ms=30.0)
        assert [d["index"] for d in _docs(w)] == [0, 1, 2]

    def test_empty_run_with_horizon_emits_empty_records(self):
        w = WindowTracker(window_ms=10.0)
        w.flush_all(horizon_ms=25.0)
        docs = _docs(w)
        assert [d["index"] for d in docs] == [0, 1, 2]
        assert all(d["arrivals"] == 0 for d in docs)

    def test_horizon_never_truncates_recorded_windows(self):
        # records past the horizon still flush (horizon only extends)
        w = WindowTracker(window_ms=10.0)
        w.record_arrival(55.0)
        w.flush_all(horizon_ms=20.0)
        assert [d["index"] for d in _docs(w)] == [0, 1, 2, 3, 4, 5]

    def test_no_horizon_behavior_unchanged(self):
        w = WindowTracker(window_ms=10.0)
        w.record_arrival(5.0)
        w.flush_all()
        assert [d["index"] for d in _docs(w)] == [0]

    def test_two_equal_duration_runs_align_window_for_window(self):
        # the property obs diff keys on: same horizon, same indices,
        # regardless of where the last event landed
        early = WindowTracker(window_ms=10.0)
        early.record_arrival(5.0)
        early.flush_all(horizon_ms=50.0)
        late = WindowTracker(window_ms=10.0)
        late.record_arrival(45.0)
        late.flush_all(horizon_ms=50.0)
        assert [d["index"] for d in _docs(early)] == [
            d["index"] for d in _docs(late)
        ]


class TestFlushWatermark:
    def test_flush_closes_only_elapsed_windows(self):
        w = WindowTracker(window_ms=10.0)
        w.record_arrival(5.0)
        w.record_arrival(15.0)
        w.flush(10.0)
        assert [d["index"] for d in _docs(w)] == [0]
        w.flush(19.9)               # window 1 ends at 20.0: not yet
        assert len(w.lines) == 1
        w.flush_all()
        assert [d["index"] for d in _docs(w)] == [0, 1]

    def test_stream_receives_lines_at_flush_time(self):
        stream = io.StringIO()
        w = WindowTracker(window_ms=10.0, stream=stream)
        w.record_arrival(5.0)
        w.flush(10.0)
        assert stream.getvalue() == w.lines[0] + "\n"

    def test_on_close_gets_window_sketch(self):
        seen = []
        w = WindowTracker(
            window_ms=10.0,
            on_close=lambda index, win, sketch, shed_total: seen.append(
                (index, sketch, shed_total)
            ),
        )
        w.record_completion(5.0, 3.0, True)
        w.record_completion(6.0, 1.0, True)
        w.record_shed(7.0, "overload")
        w.flush_all()
        assert len(seen) == 1
        index, sketch, shed_total = seen[0]
        assert index == 0
        assert shed_total == 1
        assert sketch.count == 2
        assert (sketch.minimum, sketch.maximum) == (1.0, 3.0)
        assert sketch == QuantileSketch.of([3.0, 1.0])  # order-free


class TestBulkPaths:
    def test_record_arrivals_matches_scalar_loop(self):
        times = np.array([0.0, 5.0, 19.999, 20.0, 45.0])
        bulk = WindowTracker(window_ms=20.0)
        bulk.record_arrivals(times)
        scalar = WindowTracker(window_ms=20.0)
        for t in times:
            scalar.record_arrival(float(t))
        bulk.flush_all()
        scalar.flush_all()
        assert bulk.lines == scalar.lines

    def test_record_sheds_matches_scalar_loop(self):
        times = np.array([1.0, 21.0, 21.5])
        bulk = WindowTracker(window_ms=20.0)
        bulk.record_sheds(times, "no-capacity")
        scalar = WindowTracker(window_ms=20.0)
        for t in times:
            scalar.record_shed(float(t), "no-capacity")
        bulk.flush_all()
        scalar.flush_all()
        assert bulk.lines == scalar.lines

    def test_record_completions_matches_scalar_loop(self):
        batch = WindowTracker(window_ms=20.0)
        batch.record_completions(7.0, [3.0, 1.0], 1)
        scalar = WindowTracker(window_ms=20.0)
        scalar.record_completion(7.0, 3.0, True)
        scalar.record_completion(7.0, 1.0, False)
        batch.flush_all()
        scalar.flush_all()
        assert batch.lines == scalar.lines
