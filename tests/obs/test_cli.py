"""The CLI observability surface: loadtest dump flags + the metrics renderer."""

import json

import pytest

from repro.cli import main
from repro.obs import parse_prometheus

FAST = [
    "loadtest", "--scenario", "flash-crowd", "--replicas", "2", "--analytic",
    "--rate-scale", "0.3", "--duration-scale", "0.5", "--seed", "2",
]


def _dump_args(tmp_path, tag):
    return [
        "--metrics-out", str(tmp_path / f"{tag}.prom"),
        "--trace-out", str(tmp_path / f"{tag}.json"),
        "--windows", str(tmp_path / f"{tag}.jsonl"),
    ]


class TestLoadtestDumps:
    def test_writes_all_three_artifacts(self, tmp_path, capsys):
        assert main(FAST + _dump_args(tmp_path, "a")) == 0
        prom = (tmp_path / "a.prom").read_text()
        families = parse_prometheus(prom)
        assert "repro_requests_total" in families
        assert "repro_request_latency_ms" in families
        trace = json.loads((tmp_path / "a.json").read_text())
        assert trace["traceEvents"]
        lines = (tmp_path / "a.jsonl").read_text().splitlines()
        assert lines and all(json.loads(l)["end_ms"] for l in lines)
        assert "wrote" in capsys.readouterr().out

    def test_two_runs_are_byte_identical(self, tmp_path):
        assert main(FAST + _dump_args(tmp_path, "a")) == 0
        assert main(FAST + _dump_args(tmp_path, "b")) == 0
        for ext in (".prom", ".json", ".jsonl"):
            assert (tmp_path / f"a{ext}").read_bytes() == (
                tmp_path / f"b{ext}"
            ).read_bytes()

    def test_columnar_matches_event_loop(self, tmp_path):
        assert main(FAST + _dump_args(tmp_path, "a")) == 0
        columnar = [a for a in FAST if a != "--analytic"]
        assert (
            main(columnar + ["--columnar", "--shards", "3"] + _dump_args(tmp_path, "b"))
            == 0
        )
        for ext in (".prom", ".json", ".jsonl"):
            assert (tmp_path / f"a{ext}").read_bytes() == (
                tmp_path / f"b{ext}"
            ).read_bytes()

    def test_metrics_report_unchanged_by_dumping(self, tmp_path, capsys):
        assert main(FAST) == 0
        plain = capsys.readouterr().out
        assert main(FAST + _dump_args(tmp_path, "a")) == 0
        dumped = capsys.readouterr().out
        # the report body is identical; dumping only appends wrote-lines
        assert dumped.startswith(plain)

    def test_rejects_multi_scenario_dumps(self, tmp_path):
        with pytest.raises(SystemExit, match="single"):
            main(
                ["loadtest", "--scenario", "all", "--analytic",
                 "--metrics-out", str(tmp_path / "x.prom")]
            )

    def test_rejects_bad_window_width(self, tmp_path):
        with pytest.raises(SystemExit, match="window-ms"):
            main(FAST + ["--windows", str(tmp_path / "w.jsonl"), "--window-ms", "0"])


class TestMetricsSubcommand:
    @pytest.fixture(scope="class")
    def dumps(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("obs")
        assert main(FAST + _dump_args(path, "a")) == 0
        return path

    def test_renders_prometheus_dump(self, dumps, capsys):
        assert main(["metrics", "--prom", str(dumps / "a.prom")]) == 0
        out = capsys.readouterr().out
        assert "metric familie(s)" in out
        assert "repro_requests_total" in out

    def test_summarizes_windows_and_trace(self, dumps, capsys):
        assert (
            main(
                ["metrics", "--windows", str(dumps / "a.jsonl"),
                 "--trace", str(dumps / "a.json")]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "window(s)" in out and "trace event(s)" in out

    def test_requires_an_input(self):
        with pytest.raises(SystemExit, match="at least one"):
            main(["metrics"])
