"""The metrics registry: deterministic Prometheus text exposition."""

import pytest

from repro.obs import (
    DEFAULT_LATENCY_BUCKETS_MS,
    MetricsRegistry,
    parse_prometheus,
)
from repro.obs.registry import _format_value


class TestValueFormatting:
    def test_integral_floats_print_as_ints(self):
        assert _format_value(3.0) == "3"
        assert _format_value(0.0) == "0"
        assert _format_value(-2.0) == "-2"

    def test_fractional_floats_round_trip(self):
        assert _format_value(2.5) == "2.5"
        assert float(_format_value(0.1)) == 0.1

    def test_huge_integral_floats_stay_repr(self):
        # past 1e15 int(float) stops being a faithful rendering of the bits
        assert _format_value(1e18) == repr(1e18)


class TestCounter:
    def test_inc_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("x_total", "X.")
        c.inc()
        c.inc(2)
        assert c.value() == 3.0

    def test_negative_increment_rejected(self):
        c = MetricsRegistry().counter("x_total", "X.")
        with pytest.raises(ValueError, match="cannot decrease"):
            c.inc(-1)

    def test_labelled_samples_render_sorted(self):
        reg = MetricsRegistry()
        c = reg.counter("shed_total", "Shed.", labels=("reason",))
        c.inc(2, reason="overload")
        c.inc(1, reason="capacity")
        out = reg.render()
        lines = [l for l in out.splitlines() if not l.startswith("#")]
        assert lines == [
            'shed_total{reason="capacity"} 1',
            'shed_total{reason="overload"} 2',
        ]

    def test_wrong_labels_rejected(self):
        c = MetricsRegistry().counter("x_total", "X.", labels=("reason",))
        with pytest.raises(ValueError, match="expected labels"):
            c.inc(1, tenant="a")


class TestGauge:
    def test_set_overwrites(self):
        g = MetricsRegistry().gauge("g", "G.")
        g.set(1.5)
        g.set(2.5)
        assert g.value() == 2.5


class TestHistogram:
    def test_buckets_cumulative_with_inf(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_ms", "L.", buckets=(1.0, 10.0))
        for v in (0.5, 0.7, 5.0, 50.0):
            h.observe(v)
        out = reg.render()
        assert 'lat_ms_bucket{le="1"} 2' in out
        assert 'lat_ms_bucket{le="10"} 3' in out
        assert 'lat_ms_bucket{le="+Inf"} 4' in out
        assert "lat_ms_count 4" in out

    def test_boundary_value_lands_in_its_bucket(self):
        # le is inclusive: an observation exactly at a boundary counts there
        h = MetricsRegistry().histogram("h", "H.", buckets=(1.0, 10.0))
        h.observe(1.0)
        assert h.counts[0] == 1

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            MetricsRegistry().histogram("h", "H.", buckets=(10.0, 1.0))

    def test_observe_sorted_matches_observe(self):
        a = MetricsRegistry().histogram("h", "H.")
        b = MetricsRegistry().histogram("h", "H.")
        values = [5.0, 1.0, 3.0, 700.0]
        for v in sorted(values):
            a.observe(v)
        b.observe_sorted(sorted(values))
        assert a.render() == b.render()


class TestRegistry:
    def test_families_render_sorted_by_name(self):
        reg = MetricsRegistry()
        reg.gauge("zeta", "Z.").set(1)
        reg.counter("alpha_total", "A.").inc()
        out = reg.render()
        assert out.index("alpha_total") < out.index("zeta")
        assert out.endswith("\n")

    def test_reregistration_returns_same_metric(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", "X.")
        b = reg.counter("x_total", "X.")
        assert a is b

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x", "X.")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x", "X.")

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render() == ""

    def test_default_buckets_are_strictly_increasing(self):
        assert list(DEFAULT_LATENCY_BUCKETS_MS) == sorted(
            set(DEFAULT_LATENCY_BUCKETS_MS)
        )


class TestParseRoundTrip:
    def test_parse_reads_back_rendered_values(self):
        reg = MetricsRegistry()
        reg.counter("reqs_total", "R.").inc(7)
        shed = reg.counter("shed_total", "S.", labels=("reason",))
        shed.inc(2, reason="overload")
        h = reg.histogram("lat_ms", "L.", buckets=(1.0, 10.0))
        h.observe(0.5)
        h.observe(5.0)
        families = parse_prometheus(reg.render())
        assert families["reqs_total"]["reqs_total"] == 7.0
        assert families["shed_total"]['shed_total{reason="overload"}'] == 2.0
        assert families["lat_ms"]['lat_ms_bucket{le="+Inf"}'] == 2.0
        assert families["lat_ms"]["lat_ms_count"] == 2.0


class TestParseHardening:
    """The satellite contract: strict parsing with position-naming errors."""

    def test_duplicate_series_rejected_with_line_number(self):
        text = "a_total 1\nb_total 2\na_total 3\n"
        with pytest.raises(ValueError, match=r"line 3: duplicate series 'a_total'"):
            parse_prometheus(text)

    def test_duplicate_labelled_series_rejected(self):
        text = (
            'shed_total{reason="overload"} 1\n'
            'shed_total{reason="timeout"} 2\n'
            'shed_total{reason="overload"} 3\n'
        )
        with pytest.raises(ValueError, match="line 3: duplicate series"):
            parse_prometheus(text)

    def test_distinct_labels_are_not_duplicates(self):
        text = 'x{t="a"} 1\nx{t="b"} 2\n'
        assert parse_prometheus(text)["x"] == {'x{t="a"}': 1.0, 'x{t="b"}': 2.0}

    def test_bad_escape_rejected_with_position(self):
        text = 'x{t="a\\qb"} 1\n'
        with pytest.raises(ValueError, match=r"line 1, col 7: bad label escape"):
            parse_prometheus(text)

    def test_trailing_backslash_rejected(self):
        # escape with nothing after it before the closing brace
        with pytest.raises(ValueError, match="bad label escape"):
            parse_prometheus('x{t="ab\\} 1')

    def test_unterminated_label_value_rejected(self):
        with pytest.raises(ValueError, match="unterminated label value"):
            parse_prometheus('x{t="open} 1\n')

    def test_unclosed_braces_rejected(self):
        with pytest.raises(ValueError, match="unclosed label braces"):
            parse_prometheus('x{t="a" 1\n')

    def test_valid_escapes_accepted(self):
        text = 'x{t="a\\\\b\\"c\\nd"} 5\n'
        (key,) = parse_prometheus(text)["x"]
        assert key == 'x{t="a\\\\b\\"c\\nd"}'


class TestNonFiniteRoundTrip:
    """NaN and infinities render canonically and parse back."""

    def test_format_canonical_spellings(self):
        assert _format_value(float("nan")) == "NaN"
        assert _format_value(float("inf")) == "+Inf"
        assert _format_value(float("-inf")) == "-Inf"

    def test_gauge_round_trips_non_finite(self):
        import math

        reg = MetricsRegistry()
        g = reg.gauge("weird", "W.", labels=("kind",))
        g.set(float("nan"), kind="nan")
        g.set(float("inf"), kind="pinf")
        g.set(float("-inf"), kind="ninf")
        samples = parse_prometheus(reg.render())["weird"]
        assert math.isnan(samples['weird{kind="nan"}'])
        assert samples['weird{kind="pinf"}'] == float("inf")
        assert samples['weird{kind="ninf"}'] == float("-inf")


class TestHistogramLoad:
    def test_load_replaces_contents_wholesale(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_ms", "L.", buckets=(1.0, 10.0))
        h.observe(0.5)
        h.load([2, 3, 1], total=25.0, count=6)
        families = parse_prometheus(reg.render())
        assert families["lat_ms"]['lat_ms_bucket{le="1"}'] == 2.0
        assert families["lat_ms"]['lat_ms_bucket{le="10"}'] == 5.0
        assert families["lat_ms"]['lat_ms_bucket{le="+Inf"}'] == 6.0
        assert families["lat_ms"]["lat_ms_sum"] == 25.0

    def test_load_wrong_arity_rejected(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_ms", "L.", buckets=(1.0, 10.0))
        with pytest.raises(ValueError, match="bucket counts"):
            h.load([1, 2], total=3.0, count=3)
