"""Quantile sketch: exact merge algebra + documented error bounds.

The hypothesis suite is the satellite contract from the analysis PR:
merge is bit-exactly commutative and associative, and the sketched p99
always sits inside the guaranteed ``quantile_bounds`` interval together
with the exact sorted-list percentile, on adversarial distributions
(heavy tails, duplicates, zeros, near-boundary values).
"""

import json
import math
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import QuantileSketch
from repro.obs.analysis.sketch import RESOLUTION, _slot_edges, _slot_of
from repro.serve.metrics import percentile

# Adversarial-ish sample strategy: zeros, exact powers of two (bucket
# edges), huge and tiny magnitudes, and plain floats.
_sample = st.one_of(
    st.just(0.0),
    st.sampled_from([2.0 ** e for e in range(-20, 40, 7)]),
    st.floats(min_value=0.0, max_value=1e12, allow_nan=False, allow_infinity=False),
    st.floats(min_value=1e-12, max_value=1.0, allow_nan=False, allow_infinity=False),
)
_samples = st.lists(_sample, min_size=1, max_size=200)


class TestMergeAlgebra:
    @settings(max_examples=200, deadline=None)
    @given(_samples, _samples)
    def test_merge_commutes(self, xs, ys):
        a, b = QuantileSketch.of(xs), QuantileSketch.of(ys)
        assert a.merge(b) == b.merge(a)

    @settings(max_examples=200, deadline=None)
    @given(_samples, _samples, _samples)
    def test_merge_associates(self, xs, ys, zs):
        a, b, c = (QuantileSketch.of(v) for v in (xs, ys, zs))
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        assert left == right
        # not just dataclass-equal: identical quantile estimates too
        for q in (0.0, 50.0, 99.0, 100.0):
            assert left.quantile(q) == right.quantile(q)

    @settings(max_examples=100, deadline=None)
    @given(_samples)
    def test_split_anywhere_equals_whole(self, xs):
        whole = QuantileSketch.of(xs)
        cut = len(xs) // 2
        split = QuantileSketch.of(xs[:cut]).merge(QuantileSketch.of(xs[cut:]))
        assert split == whole

    @settings(max_examples=100, deadline=None)
    @given(st.lists(_sample, min_size=32, max_size=300))
    def test_bulk_extend_matches_scalar_adds(self, xs):
        # the vectorized flush path must land every sample exactly where
        # the scalar path does (slots, extrema, fixed-point sum)
        bulk = QuantileSketch()
        bulk.extend(xs)
        scalar = QuantileSketch()
        for x in xs:
            scalar.add(x)
        assert bulk == scalar

    def test_bulk_extend_rejects_bad_domain(self):
        for bad in (-1.0, float("nan"), float("inf")):
            with pytest.raises(ValueError):
                QuantileSketch.of([1.0] * 40 + [bad])

    def test_empty_is_identity(self):
        s = QuantileSketch.of([1.0, 2.0, 3.0])
        assert s.merge(QuantileSketch()) == s
        assert QuantileSketch().merge(s) == s


class TestErrorBounds:
    @settings(max_examples=200, deadline=None)
    @given(_samples, st.sampled_from([50.0, 90.0, 99.0]))
    def test_exact_percentile_inside_bounds(self, xs, q):
        sketch = QuantileSketch.of(xs)
        lo, hi = sketch.quantile_bounds(q)
        exact = percentile(xs, q)
        estimate = sketch.quantile(q)
        assert lo <= exact <= hi
        assert lo <= estimate <= hi

    @settings(max_examples=200, deadline=None)
    @given(_samples, st.sampled_from([50.0, 99.0]))
    def test_bounds_width_is_documented_resolution(self, xs, q):
        lo, hi = QuantileSketch.of(xs).quantile_bounds(q)
        assert hi <= lo * (1.0 + RESOLUTION) + 1e-9

    @settings(max_examples=100, deadline=None)
    @given(_samples)
    def test_mean_tracks_exact_sum(self, xs):
        # fixed-point resolution is 2**-20 per sample, so the mean error
        # is bounded by half that scale regardless of length
        sketch = QuantileSketch.of(xs)
        assert sketch.mean == pytest.approx(
            math.fsum(xs) / len(xs), abs=1e-6, rel=1e-9
        )


class TestExactShapes:
    def test_single_value_is_exact(self):
        assert QuantileSketch.of([4.0]).quantile(99.0) == 4.0
        assert QuantileSketch.of([4.0]).quantile_bounds(99.0) == (4.0, 4.0)

    def test_constant_window_is_exact(self):
        s = QuantileSketch.of([7.5] * 10)
        assert s.quantile(0.0) == 7.5
        assert s.quantile(100.0) == 7.5
        assert s.minimum == s.maximum == 7.5

    def test_zeros_only(self):
        s = QuantileSketch.of([0.0, 0.0, 0.0])
        assert s.quantile(99.0) == 0.0
        assert s.mean == 0.0

    def test_extremes_are_exact(self):
        s = QuantileSketch.of([1.0, 2.0, 3000.0])
        assert s.quantile(0.0) == 1.0
        assert s.quantile(100.0) == 3000.0

    def test_domain_rejections(self):
        s = QuantileSketch()
        for bad in (-1.0, float("nan"), float("inf")):
            with pytest.raises(ValueError):
                s.add(bad)
        with pytest.raises(ValueError):
            QuantileSketch.of([1.0]).quantile(101.0)
        with pytest.raises(ValueError):
            QuantileSketch().quantile(50.0)

    def test_slot_edges_bracket_their_values(self):
        for value in (0.001, 0.5, 1.0, 3.7, 50.0, 1e9):
            lo, hi = _slot_edges(_slot_of(value))
            assert lo <= value < hi
            assert hi <= lo * (1.0 + RESOLUTION) + 1e-12

    def test_pickle_round_trip(self):
        s = QuantileSketch.of([0.0, 1.0, 2.5, 1e6])
        assert pickle.loads(pickle.dumps(s)) == s

    def test_to_dict_is_json_ready(self):
        d = QuantileSketch.of([1.0, 2.0]).to_dict()
        assert json.loads(json.dumps(d)) == d
        assert d["total"] == 2
