"""The observability contracts, differentially enforced.

Two byte-level contracts from the module docstring of
:mod:`repro.obs.observer`:

1. **Transparency** — attaching a :class:`FleetObserver` never changes a
   report byte, on either engine.
2. **Engine equivalence** — the event-loop and columnar engines emit
   byte-identical Prometheus dumps, window JSONL, and Chrome trace JSON,
   at any shard count, forked workers included.

The matrix mirrors ``tests/fleet/test_columnar_equiv.py`` (same frozen
model, same weak/strong specs, same autoscale policy and failure plan) so
the underlying reports are runs the fleet suite already proves identical.
"""

import io
import json

import pytest

from repro.fleet import (
    AutoscalePolicy,
    FailureEvent,
    run_scenario,
    run_scenario_columnar,
)
from repro.fleet.scenarios import SCENARIO_NAMES
from repro.obs import FleetObserver, NullObserver

AUTOSCALE = AutoscalePolicy(
    min_replicas=1, max_replicas=5, interval_ms=200.0, cooldown_ticks=2
)
FAILURES = (FailureEvent(replica_id=0, fail_ms=300.0, recover_ms=900.0),)
KW = dict(seed=2, rate_scale=0.4, duration_scale=0.5)


def _streams(obs):
    return (obs.render_prometheus(), obs.window_lines(), obs.trace_json())


class TestScenarioMatrix:
    """Every scenario class x autoscale x failures: identical streams."""

    @pytest.mark.parametrize("scenario", sorted(SCENARIO_NAMES))
    @pytest.mark.parametrize("autoscaled", [False, True], ids=["fixed", "autoscale"])
    @pytest.mark.parametrize("failing", [False, True], ids=["healthy", "failures"])
    def test_byte_identical_streams(
        self, scenario, autoscaled, failing,
        cluster_model, hash_tokenizer, hetero_specs, fleet_config,
    ):
        kw = dict(
            autoscale=AUTOSCALE if autoscaled else None,
            failures=FAILURES if failing else (),
            **KW,
        )
        ref_obs, col_obs = FleetObserver(), FleetObserver()
        ref = run_scenario(
            scenario, cluster_model, hash_tokenizer, hetero_specs, fleet_config,
            analytic=True, obs=ref_obs,
            scale_spec=hetero_specs[0] if autoscaled else None, **kw,
        )
        got = run_scenario_columnar(
            scenario, cluster_model, hash_tokenizer, hetero_specs, fleet_config,
            shards=3, obs=col_obs,
            scale_spec=hetero_specs[0] if autoscaled else None, **kw,
        )
        plain = run_scenario_columnar(
            scenario, cluster_model, hash_tokenizer, hetero_specs, fleet_config,
            shards=3,
            scale_spec=hetero_specs[0] if autoscaled else None, **kw,
        )
        # transparency: the observer moved nothing, on either engine
        assert ref.to_json() == plain.to_json()
        assert got.to_json() == plain.to_json()
        # equivalence: every stream matches byte for byte
        assert _streams(col_obs) == _streams(ref_obs)


class TestShardCounts:
    """One loaded scenario across shard counts and forked workers."""

    @pytest.mark.parametrize(
        "shards,procs", [(1, False), (2, False), (5, False), (4, True)],
        ids=["shards1", "shards2", "shards5", "fork4"],
    )
    def test_any_shard_count_same_streams(
        self, shards, procs,
        cluster_model, hash_tokenizer, hetero_specs, fleet_config,
    ):
        kw = dict(autoscale=AUTOSCALE, failures=FAILURES, **KW)
        ref_obs, col_obs = FleetObserver(), FleetObserver()
        ref = run_scenario(
            "flash-crowd", cluster_model, hash_tokenizer, hetero_specs,
            fleet_config, analytic=True, obs=ref_obs,
            scale_spec=hetero_specs[0], **kw,
        )
        got = run_scenario_columnar(
            "flash-crowd", cluster_model, hash_tokenizer, hetero_specs,
            fleet_config, shards=shards, shard_processes=procs, obs=col_obs,
            scale_spec=hetero_specs[0], **kw,
        )
        assert got.to_json() == ref.to_json()
        assert _streams(col_obs) == _streams(ref_obs)


class TestDeterminism:
    def test_same_seed_same_bytes(
        self, cluster_model, hash_tokenizer, hetero_specs, fleet_config
    ):
        def one():
            obs = FleetObserver()
            run_scenario(
                "diurnal", cluster_model, hash_tokenizer, hetero_specs,
                fleet_config, analytic=True, obs=obs, failures=FAILURES, **KW,
            )
            return _streams(obs)

        assert one() == one()

    def test_trace_json_loads(
        self, cluster_model, hash_tokenizer, hetero_specs, fleet_config
    ):
        obs = FleetObserver()
        run_scenario(
            "steady", cluster_model, hash_tokenizer, hetero_specs,
            fleet_config, analytic=True, obs=obs, **KW,
        )
        doc = json.loads(obs.trace_json())
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert "X" in phases and "M" in phases
        assert doc["displayTimeUnit"] == "ms"

    def test_windows_stream_matches_lines(
        self, cluster_model, hash_tokenizer, hetero_specs, fleet_config
    ):
        stream = io.StringIO()
        obs = FleetObserver(windows_stream=stream)
        run_scenario(
            "steady", cluster_model, hash_tokenizer, hetero_specs,
            fleet_config, analytic=True, obs=obs, **KW,
        )
        assert stream.getvalue() == "".join(l + "\n" for l in obs.window_lines())


class TestDisabledPaths:
    def test_null_observer_is_transparent(
        self, cluster_model, hash_tokenizer, hetero_specs, fleet_config
    ):
        plain = run_scenario(
            "steady", cluster_model, hash_tokenizer, hetero_specs,
            fleet_config, analytic=True, **KW,
        )
        nulled = run_scenario(
            "steady", cluster_model, hash_tokenizer, hetero_specs,
            fleet_config, analytic=True, obs=NullObserver(), **KW,
        )
        assert nulled.to_json() == plain.to_json()

    def test_null_observer_is_falsy_noop(self):
        null = NullObserver()
        assert not null
        assert null.on_arrival(1.0) is None
        assert null.finalize(None) is None

    def test_obs_disables_native_kernel_gate(
        self, cluster_model, hash_tokenizer, hetero_specs, fleet_config
    ):
        # the native sweep has no callbacks; an attached observer must
        # force the byte-identical python sweep rather than lose events
        obs = FleetObserver()
        report = run_scenario_columnar(
            "steady", cluster_model, hash_tokenizer, hetero_specs,
            fleet_config, native=True, obs=obs, **KW,
        )
        assert report.stats.completed > 0
        prom = obs.render_prometheus()
        assert f"repro_requests_completed_total {report.stats.completed}" in prom
