"""Burn-rate alerting: rule validation, fire/resolve mechanics, replay."""

import json
import pickle

import pytest

from repro.obs import AlertEvaluator, BurnRateRule, WindowTracker, default_policy
from repro.obs.analysis.alerts import replay_windows

# A fast page rule over tiny trailing windows: with objective 0.99 the
# budget is 0.01, so a window with >= 10% bad burns at >= 10x.
FAST_PAGE = BurnRateRule(
    name="fast-page",
    tier="page",
    signal="slo",
    objective=0.99,
    long_windows=3,
    short_windows=1,
    burn_threshold=10.0,
)

SHED_RULE = BurnRateRule(
    name="shed-page",
    tier="page",
    signal="shed",
    objective=0.99,
    long_windows=2,
    short_windows=1,
    burn_threshold=10.0,
)


def _good(ev, end_ms, n=100):
    return ev.observe_window(end_ms, arrivals=n, completions=n, slo_met=n, shed_total=0)


def _bad(ev, end_ms, n=100):
    return ev.observe_window(end_ms, arrivals=n, completions=n, slo_met=0, shed_total=0)


class TestRuleValidation:
    def test_rejects_bad_tier(self):
        with pytest.raises(ValueError, match="tier"):
            BurnRateRule("r", "sev1", "slo", 0.99, 3, 1, 10.0)

    def test_rejects_bad_signal(self):
        with pytest.raises(ValueError, match="signal"):
            BurnRateRule("r", "page", "latency", 0.99, 3, 1, 10.0)

    def test_rejects_objective_out_of_range(self):
        for objective in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ValueError, match="objective"):
                BurnRateRule("r", "page", "slo", objective, 3, 1, 10.0)

    def test_rejects_short_longer_than_long(self):
        with pytest.raises(ValueError, match="short <= long"):
            BurnRateRule("r", "page", "slo", 0.99, 2, 5, 10.0)
        with pytest.raises(ValueError, match="short <= long"):
            BurnRateRule("r", "page", "slo", 0.99, 3, 0, 10.0)

    def test_rejects_nonpositive_threshold(self):
        with pytest.raises(ValueError, match="threshold"):
            BurnRateRule("r", "page", "slo", 0.99, 3, 1, 0.0)

    def test_duplicate_rule_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            AlertEvaluator(policy=[FAST_PAGE, FAST_PAGE])

    def test_default_policy_is_valid_and_two_tier(self):
        rules = default_policy()
        tiers = {rule.tier for rule in rules}
        assert tiers == {"page", "ticket"}
        AlertEvaluator(policy=rules)  # must construct cleanly


class TestFireResolve:
    def test_quiet_stream_never_fires(self):
        ev = AlertEvaluator(policy=[FAST_PAGE])
        for i in range(20):
            assert _good(ev, (i + 1) * 10.0) == []
        assert ev.transitions == []
        assert ev.firing() == {"fast-page": False}

    def test_fires_on_burn_and_resolves_after(self):
        ev = AlertEvaluator(policy=[FAST_PAGE])
        _good(ev, 10.0)
        # 100% bad burns at 100x >= 10x on both trailing windows
        assert _bad(ev, 20.0) == [(20.0, "fast-page", "fire")]
        assert ev.firing() == {"fast-page": True}
        # short window (1) recovers immediately; condition needs BOTH
        assert _good(ev, 30.0) == [(30.0, "fast-page", "resolve")]
        assert ev.transitions == [
            (20.0, "fast-page", "fire"),
            (30.0, "fast-page", "resolve"),
        ]
        assert ev.transition_counts() == {"fast-page": (1, 1)}

    def test_long_window_gives_significance(self):
        # one bad window out of a long good history doesn't re-fire after
        # the short window clears: both conditions must hold
        ev = AlertEvaluator(policy=[FAST_PAGE])
        for i in range(3):
            _good(ev, (i + 1) * 10.0)
        _bad(ev, 40.0)
        _good(ev, 50.0)
        assert [a for (_, _, a) in ev.transitions] == ["fire", "resolve"]

    def test_shed_signal_burns_against_arrivals(self):
        ev = AlertEvaluator(policy=[SHED_RULE])
        ev.observe_window(10.0, arrivals=100, completions=50, slo_met=50, shed_total=50)
        assert ev.transitions == [(10.0, "shed-page", "fire")]
        ev.observe_window(20.0, arrivals=100, completions=100, slo_met=100, shed_total=0)
        assert ev.transitions[-1] == (20.0, "shed-page", "resolve")

    def test_empty_windows_are_neutral(self):
        # zero-total windows contribute burn 0.0, not NaN, and age the
        # trailing deques like any other window
        ev = AlertEvaluator(policy=[FAST_PAGE])
        _bad(ev, 10.0)
        assert ev.firing() == {"fast-page": True}
        for i in range(3):
            ev.observe_window((i + 2) * 10.0, 0, 0, 0, 0)
        assert ev.firing() == {"fast-page": False}

    def test_determinism_same_stream_same_transitions(self):
        stream = [
            (10.0, 100, 90, 60, 10),
            (20.0, 100, 40, 10, 60),
            (30.0, 100, 100, 100, 0),
            (40.0, 0, 0, 0, 0),
        ]
        runs = []
        for _ in range(2):
            ev = AlertEvaluator()
            for row in stream:
                ev.observe_window(*row)
            runs.append((ev.transitions, ev.firing(), ev.transition_counts()))
        assert runs[0] == runs[1]


class TestReplay:
    def test_replay_matches_in_run_evaluation(self):
        # drive a tracker through a burst of misses, then replay its own
        # JSONL artifact: transition histories must be identical
        live = []
        w = WindowTracker(
            window_ms=10.0,
            on_close=lambda index, win, sketch, shed_total: live.extend(
                ev.observe_window(
                    (index + 1) * 10.0,
                    win.arrivals,
                    win.completions,
                    win.slo_met,
                    shed_total,
                )
            ),
        )
        ev = AlertEvaluator(policy=[FAST_PAGE, SHED_RULE])
        for t in (1.0, 2.0, 3.0, 12.0, 13.0):
            w.record_arrival(t)
        w.record_completion(4.0, 3.0, True)
        w.record_shed(5.0, "overload")
        w.record_shed(6.0, "overload")
        w.record_completion(14.0, 2.0, True)
        w.record_completion(15.0, 12.0, False)
        w.flush_all()

        docs = [json.loads(line) for line in w.lines]
        replayed = replay_windows(docs, policy=[FAST_PAGE, SHED_RULE])
        assert replayed.transitions == live
        assert replayed.windows_seen == len(docs)

    def test_pickle_round_trip_resumes_mid_stream(self):
        # the evaluator rides the observer partial across shard pickles:
        # resuming a pickled evaluator must match an uninterrupted one
        whole = AlertEvaluator(policy=[FAST_PAGE])
        resumed = AlertEvaluator(policy=[FAST_PAGE])
        stream = [(10.0, 100, 100, 100, 0), (20.0, 100, 100, 0, 0)]
        tail = [(30.0, 100, 100, 100, 0), (40.0, 100, 100, 100, 0)]
        for row in stream:
            whole.observe_window(*row)
            resumed.observe_window(*row)
        resumed = pickle.loads(pickle.dumps(resumed))
        for row in tail:
            whole.observe_window(*row)
            resumed.observe_window(*row)
        assert resumed.transitions == whole.transitions
        assert resumed.firing() == whole.firing()
