"""The tracer: Chrome trace-event export with canonical ordering."""

import json

from repro.obs import Tracer


def test_span_units_are_microseconds():
    t = Tracer()
    t.add_span("batch", 2.0, 3.5, tid=1, args={"size": 4})
    (event,) = t.events
    assert event["ph"] == "X"
    assert event["ts"] == 2000.0
    assert event["dur"] == 3500.0
    assert event["tid"] == 1


def test_instant_and_counter_shapes():
    t = Tracer()
    t.add_instant("replica-fail", 10.0, tid=3)
    t.add_counter("autoscaler", 20.0, {"utilization": 0.5})
    fail, counter = t.events
    assert fail["ph"] == "i" and fail["s"] == "t"
    assert counter["ph"] == "C" and counter["args"] == {"utilization": 0.5}


def test_metadata_sorts_first():
    t = Tracer()
    t.add_span("batch", 1.0, 1.0)
    t.add_thread_name(0, "replica-0")
    doc = t.to_chrome()
    assert doc["traceEvents"][0]["ph"] == "M"
    assert doc["displayTimeUnit"] == "ms"


def test_emission_order_does_not_change_bytes():
    events = [
        ("a", 5.0, 1.0, 0),
        ("b", 1.0, 2.0, 1),
        ("c", 1.0, 2.0, 0),
    ]
    forward, backward = Tracer(), Tracer()
    for name, start, dur, tid in events:
        forward.add_span(name, start, dur, tid=tid)
    for name, start, dur, tid in reversed(events):
        backward.add_span(name, start, dur, tid=tid)
    assert forward.to_json() == backward.to_json()


def test_take_drains_and_absorb_restores():
    t = Tracer()
    t.add_span("batch", 1.0, 1.0)
    shipped = t.take()
    assert t.events == []
    other = Tracer()
    other.absorb(shipped)
    assert other.to_json() == json.dumps(
        {"displayTimeUnit": "ms", "traceEvents": shipped}, sort_keys=True
    ) + "\n"


def test_json_is_valid_and_stable():
    t = Tracer()
    t.add_span("batch", 1.0, 1.0, args={"bucket": 16, "size": 8})
    t.add_instant("scale-up", 2.0)
    first = t.to_json()
    assert json.loads(first)["traceEvents"]
    assert t.to_json() == first
