"""Offline obs analysis: loaders, critical paths, report/diff determinism.

The acceptance contracts from the analysis PR:

- ``RunArtifacts`` round-trips the three artifact formats;
- ``render_report`` is a pure function of the artifact bytes (two
  identical runs render byte-identical reports);
- ``diff_runs`` of a clean run against one with an injected gray
  slowdown ranks the affected replica's service phase first;
- the chaos + alerting differential: both engines, at several shard
  counts, emit byte-identical streams *with alert transitions in them*.
"""

import json

import pytest

from repro.fleet import (
    ChaosPlan,
    GrayWindow,
    ResiliencePolicy,
    run_scenario,
    run_scenario_columnar,
)
from repro.obs import FleetObserver, RunArtifacts, diff_runs, render_diff, render_report
from repro.obs.analysis import CriticalPath, critical_paths, replica_phases, tenant_table

PROM_TEXT = """\
# HELP repro_slo_attainment x
# TYPE repro_slo_attainment gauge
repro_slo_attainment 0.9
# HELP repro_tenant_latency_ms x
# TYPE repro_tenant_latency_ms gauge
repro_tenant_latency_ms{stat="p99",tenant="acme"} 12.5
repro_tenant_latency_ms{stat="mean",tenant="acme"} 4.0
# HELP repro_tenant_shed_rate x
# TYPE repro_tenant_shed_rate gauge
repro_tenant_shed_rate{tenant="acme"} 0.25
"""


def _trace(events):
    return json.dumps({"traceEvents": events, "displayTimeUnit": "ms"})


def _batch(tid, ts_us, dur_us, wl, wr, wb, wq, bucket=16, size=2):
    return {
        "ph": "X", "name": "batch", "pid": 1, "tid": tid,
        "ts": ts_us, "dur": dur_us,
        "args": {"bucket": bucket, "size": size,
                 "wl": wl, "wr": wr, "wb": wb, "wq": wq},
    }


def _meta(tid, name):
    return {"ph": "M", "name": "thread_name", "pid": 1, "tid": tid,
            "args": {"name": name}}


class TestLoaders:
    def test_from_strings_round_trips_all_three(self):
        windows_text = (
            json.dumps({"index": 0, "end_ms": 20.0, "arrivals": 1,
                        "completions": 1, "slo_met": 1, "shed_total": 0}) + "\n"
        )
        art = RunArtifacts.from_strings(
            prom_text=PROM_TEXT,
            windows_text=windows_text,
            trace_text=_trace([_meta(0, "replica-0 [weak]")]),
        )
        assert art.gauge("repro_slo_attainment") == 0.9
        assert art.gauge("repro_tenant_shed_rate", tenant="acme") == 0.25
        assert art.gauge("repro_tenant_shed_rate", tenant="ghost") is None
        assert art.windows[0]["index"] == 0
        assert art.trace[0]["name"] == "thread_name"

    def test_partial_artifacts_are_fine(self):
        art = RunArtifacts.from_strings()
        assert art.gauge("anything") is None
        assert art.alert_replay() is None
        assert render_report(art) == "\n"

    def test_tenant_table_slices_families(self):
        art = RunArtifacts.from_strings(prom_text=PROM_TEXT)
        table = tenant_table(art.prom)
        assert table == {"acme": {"p99": 12.5, "mean": 4.0, "shed_rate": 0.25}}


class TestCriticalPaths:
    TRACE = [
        _meta(0, "replica-0 [weak]"),
        _meta(1, "replica-1 [strong]"),
        _batch(0, 1000, 2000, wl=9.0, wr=1.0, wb=2.0, wq=4.0),
        _batch(1, 5000, 1000, wl=30.0, wr=20.0, wb=3.0, wq=6.0),
        _batch(0, 9000, 500, wl=4.0, wr=0.0, wb=1.0, wq=2.5),
    ]

    def test_ranked_by_worst_request_latency(self):
        paths = critical_paths(self.TRACE, top=2)
        assert [p.latency_ms for p in paths] == [30.0, 9.0]
        worst = paths[0]
        assert (worst.replica, worst.label) == (1, "strong")
        assert dict(worst.phases) == {
            "retry-hedge": 20.0, "batch-wait": 3.0, "queue-wait": 6.0,
            "service": 1.0,
        }

    def test_spans_without_decomposition_are_skipped(self):
        legacy = [{"ph": "X", "name": "batch", "tid": 0, "ts": 0, "dur": 100,
                   "args": {"bucket": 16, "size": 1}}]
        assert critical_paths(legacy) == []

    def test_replica_phases_fold_means(self):
        phases = replica_phases(self.TRACE)
        weak = phases[0]
        assert (weak.label, weak.batches) == ("weak", 2)
        assert weak.mean_ms("service") == pytest.approx((2.0 + 0.5) / 2)
        assert weak.mean_ms("queue-wait") == pytest.approx((4.0 + 2.5) / 2)


# one injected 2x gray slowdown on replica 1, mid-run
GRAY = ChaosPlan(
    name="gray-slowdown",
    grays=(GrayWindow(replica_id=1, start_ms=20.0, end_ms=100.0, slowdown=2.0),),
)


def _observed_run(cluster_model, hash_tokenizer, specs, fleet_config, **kw):
    obs = FleetObserver()
    run_scenario(
        "steady", cluster_model, hash_tokenizer, specs, fleet_config,
        analytic=True, obs=obs, **kw,
    )
    return RunArtifacts.from_strings(
        prom_text=obs.render_prometheus(),
        windows_text="".join(line + "\n" for line in obs.window_lines()),
        trace_text=obs.trace_json(),
    )


class TestReportAndDiff:
    KW = dict(seed=2, rate_scale=0.4, duration_scale=0.5)

    def test_report_is_deterministic_across_reruns(
        self, cluster_model, hash_tokenizer, hetero_specs, fleet_config
    ):
        reports = [
            render_report(_observed_run(
                cluster_model, hash_tokenizer, hetero_specs, fleet_config, **self.KW
            ))
            for _ in range(2)
        ]
        assert reports[0] == reports[1]
        assert "== overview ==" in reports[0]
        assert "== replica phases (ms/batch) ==" in reports[0]
        assert "== critical paths (worst requests) ==" in reports[0]

    def test_diff_attributes_injected_gray_slowdown(
        self, cluster_model, hash_tokenizer, hetero_specs, fleet_config
    ):
        clean = _observed_run(
            cluster_model, hash_tokenizer, hetero_specs, fleet_config, **self.KW
        )
        gray = _observed_run(
            cluster_model, hash_tokenizer, hetero_specs, fleet_config,
            chaos=GRAY, **self.KW,
        )
        report = diff_runs(clean, gray)
        top = report.top_attribution()
        assert top is not None
        assert top.subject.startswith("replica 1 ")
        assert top.metric == "service"
        assert top.after > top.before
        rendered = render_diff(report)
        first = rendered.splitlines()[1]
        assert first.startswith("1. replica 1 ") and " service:" in first
        # the window streams must align index-for-index (same duration)
        assert report.windows_before == report.windows_after
        assert report.first_divergence is not None

    def test_diff_of_identical_runs_is_quiet(
        self, cluster_model, hash_tokenizer, hetero_specs, fleet_config
    ):
        a = _observed_run(
            cluster_model, hash_tokenizer, hetero_specs, fleet_config, **self.KW
        )
        b = _observed_run(
            cluster_model, hash_tokenizer, hetero_specs, fleet_config, **self.KW
        )
        report = diff_runs(a, b)
        assert report.replica_rows == []
        assert report.metric_rows == []
        assert report.first_divergence is None
        assert "streams identical" in render_diff(report)


# harsh enough to burn the error budget: one replica grayed 8x while the
# other handles a timeout-constrained overload with retries
HARSH = ChaosPlan(
    name="harsh",
    grays=(GrayWindow(replica_id=0, start_ms=20.0, end_ms=110.0, slowdown=8.0),),
)
HARSH_POLICY = ResiliencePolicy(
    max_retries=2, retry_budget_ratio=1.0, timeout_ms=10.0
)


class TestAlertDifferential:
    """Alert streams byte-equal across engines x shard counts, with the
    chaos plan actually driving transitions (a vacuous pass is a bug)."""

    KW = dict(
        seed=2, rate_scale=8.0, duration_scale=0.5,
        chaos=HARSH, resilience=HARSH_POLICY,
    )

    def _streams(self, obs):
        return (obs.render_prometheus(), obs.window_lines(), obs.trace_json())

    def test_alert_streams_byte_equal_across_engines_and_shards(
        self, cluster_model, hash_tokenizer, hetero_specs, fleet_config
    ):
        ref_obs = FleetObserver()
        run_scenario(
            "steady", cluster_model, hash_tokenizer, hetero_specs, fleet_config,
            analytic=True, obs=ref_obs, **self.KW,
        )
        fires = [t for t in ref_obs.alerts.transitions if t[2] == "fire"]
        assert fires, "chaos plan failed to trigger any alert (vacuous test)"
        ref_streams = self._streams(ref_obs)
        assert any('"name": "alert-fire"' in line for line in ref_streams[2].splitlines())
        for shards in (1, 2, 5):
            col_obs = FleetObserver()
            run_scenario_columnar(
                "steady", cluster_model, hash_tokenizer, hetero_specs,
                fleet_config, shards=shards, obs=col_obs, **self.KW,
            )
            assert self._streams(col_obs) == ref_streams
            assert col_obs.alerts.transitions == ref_obs.alerts.transitions
