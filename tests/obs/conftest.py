"""Fixtures for the observability tests: the fleet suite's frozen cluster.

The differential suite re-runs the fleet equivalence matrix with an
observer attached, so it serves the exact same frozen synthetic model on
the same deliberately weak design points as ``tests/fleet`` — byte
comparisons only mean something when the underlying runs are the ones the
fleet suite already proves identical.
"""

import pytest

from repro.accel import AcceleratorConfig
from repro.bert import BertConfig
from repro.fleet import FleetConfig, ReplicaSpec
from repro.perf.workloads import HashTokenizer, build_synthetic_integer_model
from repro.serve import ServingConfig


@pytest.fixture(scope="session")
def cluster_model():
    """A small frozen integer model shared by every obs test."""
    config = BertConfig(
        vocab_size=512,
        hidden_size=64,
        num_hidden_layers=2,
        num_attention_heads=4,
        intermediate_size=128,
        max_position_embeddings=64,
        num_labels=2,
    )
    return build_synthetic_integer_model(config, seed=0)


@pytest.fixture(scope="session")
def hash_tokenizer():
    return HashTokenizer(vocab_size=512)


@pytest.fixture
def weak_spec():
    """A deliberately slow design point (overload with few requests)."""
    return ReplicaSpec(
        accel_config=AcceleratorConfig(num_pus=2, num_pes=2, num_multipliers=4),
        name="weak",
    )


@pytest.fixture
def hetero_specs(weak_spec):
    """Two design points, so routing ties and projections are exercised."""
    strong = ReplicaSpec(
        accel_config=AcceleratorConfig(num_pus=4, num_pes=2, num_multipliers=8),
        name="strong",
    )
    return [weak_spec, strong]


@pytest.fixture
def fleet_config():
    return FleetConfig(
        serving=ServingConfig(
            max_batch_size=8,
            max_wait_ms=5.0,
            buckets=(16, 32, 64),
            num_devices=1,
            cache_capacity=512,
        ),
        admit_slo_factor=1.0,
    )
