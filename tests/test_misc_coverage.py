"""Coverage of small public surfaces not exercised elsewhere."""

import numpy as np
import pytest

from repro.autograd import Tensor, concatenate
from repro.bert import BertConfig
from repro.bert.tokenizer import Vocabulary, WordPieceTokenizer


class TestTensorMisc:
    def test_item(self):
        assert Tensor(np.array([3.5])).item() == pytest.approx(3.5)

    def test_repr(self):
        assert "requires_grad=True" in repr(Tensor(np.ones(2), requires_grad=True))
        assert "shape=(2,)" in repr(Tensor(np.ones(2)))

    def test_len(self):
        assert len(Tensor(np.zeros((5, 2)))) == 5

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor(np.ones(2)) ** Tensor(np.ones(2))

    def test_concatenate_default_axis(self, rng):
        a = Tensor(rng.standard_normal((2, 3), dtype=np.float32))
        b = Tensor(rng.standard_normal((2, 2), dtype=np.float32))
        assert concatenate([a, b]).shape == (2, 5)

    def test_rsub_rtruediv(self):
        t = Tensor(np.array([2.0], dtype=np.float32))
        np.testing.assert_allclose((3.0 - t).data, [1.0])
        np.testing.assert_allclose((8.0 / t).data, [4.0])

    def test_zero_grad(self):
        t = Tensor(np.ones(2), requires_grad=True)
        (t * 2.0).sum().backward()
        assert t.grad is not None
        t.zero_grad()
        assert t.grad is None


class TestTokenizerEdges:
    def test_empty_text(self):
        tokenizer = WordPieceTokenizer(Vocabulary(["a"]))
        ids, mask, segments = tokenizer.encode("", max_length=4)
        # Just [CLS] [SEP] + padding.
        assert mask.sum() == 2

    def test_tokenize_empty_string(self):
        tokenizer = WordPieceTokenizer(Vocabulary(["a"]))
        assert tokenizer.tokenize("") == []

    def test_pair_with_empty_hypothesis(self):
        tokenizer = WordPieceTokenizer(Vocabulary(["a", "b"]))
        ids, mask, segments = tokenizer.encode("a", "", max_length=8)
        assert mask.sum() == 4  # CLS a SEP SEP
        assert segments[3] == 1


class TestEnergyMisc:
    def test_dominant_component(self):
        from repro.accel import AcceleratorConfig, build_encoder_workload, estimate_energy

        workload = build_encoder_workload(BertConfig.base(), seq_len=128)
        breakdown = estimate_energy(workload, AcceleratorConfig(), weight_bits=32)
        assert breakdown.dominant_component() == "dram_weights"


class TestExperimentsMainModule:
    def test_only_table3_runs(self, capsys):
        from repro.experiments.__main__ import main
        import sys

        argv = sys.argv
        sys.argv = ["experiments", "--only", "table3"]
        try:
            main()
        finally:
            sys.argv = argv
        out = capsys.readouterr().out
        assert "Table III" in out


@pytest.mark.slow
class TestReportGenerator:
    def test_smoke_report(self):
        from repro.experiments import ExperimentScale, clear_cache, generate_report

        clear_cache()
        text = generate_report(ExperimentScale.smoke())
        assert "# FQ-BERT reproduction report" in text
        assert "Table III" in text and "Table IV" in text
        assert "Figure 3" in text
        assert "compression" in text
