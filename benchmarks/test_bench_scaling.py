"""Scaling benches: (N, M) design-space sweep and sequence-length scaling.

Extensions beyond the paper's three design points: the full (N, M) grid on
both devices (which configurations fit, and their efficiency), and latency
as a function of sequence length (attention's quadratic term).
"""

import pytest

from repro.accel import (
    AcceleratorConfig,
    AcceleratorSimulator,
    ZCU102,
    ZCU111,
    build_encoder_workload,
)
from repro.bert import BertConfig
from repro.experiments import render_table


class TestDesignSpaceSweep:
    def test_bench_nm_grid(self, record_table):
        rows = []
        model = BertConfig.base()
        for device in (ZCU102, ZCU111):
            for n in (4, 8, 16, 32):
                for m in (8, 16, 32):
                    config = AcceleratorConfig(num_pes=n, num_multipliers=m)
                    report = AcceleratorSimulator(config, device).simulate(model)
                    rows.append(
                        [
                            device.name,
                            f"({n},{m})",
                            report.resources.dsp48,
                            report.latency_ms,
                            report.fps_per_watt,
                            "yes" if report.fits_device() else "NO",
                        ]
                    )
        record_table(
            "scaling_nm_grid",
            render_table(
                ["device", "(N,M)", "DSP", "latency(ms)", "fps/W", "fits"],
                rows,
                title="Design-space sweep (extension)",
            ),
        )
        # The paper's chosen points must fit; the largest configs must not.
        by_key = {(row[0], row[1]): row for row in rows}
        assert by_key[("ZCU102", "(8,16)")][5] == "yes"
        assert by_key[("ZCU102", "(32,32)")][5] == "NO"

    def test_fps_per_watt_improves_with_scale_until_power_dominates(self):
        """Bigger arrays amortize static power -> better fps/W (while fitting)."""
        model = BertConfig.base()
        small = AcceleratorSimulator(
            AcceleratorConfig(num_pes=4, num_multipliers=8), ZCU111
        ).simulate(model)
        big = AcceleratorSimulator(
            AcceleratorConfig(num_pes=16, num_multipliers=16), ZCU111
        ).simulate(model)
        assert big.fps_per_watt > small.fps_per_watt


class TestSequenceLengthScaling:
    def test_bench_seq_sweep(self, record_table):
        config = AcceleratorConfig.zcu102_n8_m16()
        simulator = AcceleratorSimulator(config, ZCU102)
        rows = []
        for seq_len in (32, 64, 128, 256, 384):
            report = simulator.simulate(BertConfig.base(), seq_len=seq_len)
            rows.append([seq_len, report.latency_ms, report.latency_ms / seq_len * 1000])
        record_table(
            "scaling_seq_len",
            render_table(
                ["seq len", "latency(ms)", "us/token"],
                rows,
                title="Sequence-length scaling (extension)",
            ),
        )
        latencies = {row[0]: row[1] for row in rows}
        # Superlinear growth: attention's quadratic term.
        assert latencies[256] > 2.0 * latencies[128]

    def test_short_sequences_dominated_by_weight_streaming(self):
        """At tiny seq, weight transfer cannot hide behind compute."""
        config = AcceleratorConfig.zcu102_n8_m16()
        workload = build_encoder_workload(BertConfig.base(), seq_len=8)
        from repro.accel import Scheduler

        result = Scheduler(config).schedule(workload)
        exposed = sum(s.exposed_transfer_cycles for s in result.stages)
        assert exposed > 0


class TestPuCountSweep:
    def test_bench_pu_sweep(self, record_table):
        """H sweep: the paper fixes H=12 (one PU per BERT-base head)."""
        model = BertConfig.base()
        rows = []
        for pus in (4, 8, 12, 16, 24):
            config = AcceleratorConfig(num_pus=pus, num_pes=8, num_multipliers=16)
            report = AcceleratorSimulator(config, ZCU111).simulate(model, seq_len=128)
            rows.append(
                [pus, report.resources.dsp48, report.latency_ms,
                 "yes" if report.fits_device() else "NO"]
            )
        record_table(
            "scaling_pu_count",
            render_table(
                ["PUs (H)", "DSP", "latency(ms)", "fits ZCU111"],
                rows,
                title="PU-count sweep (extension; paper fixes H=12)",
            ),
        )
        latencies = {row[0]: row[2] for row in rows}
        # More PUs help the weight matmuls, but attention rounds quantize at
        # multiples of the head count: H=16 wastes 4 PUs during attention.
        assert latencies[12] < latencies[8]
        assert latencies[24] <= latencies[16]


class TestModelScaleSweep:
    def test_bench_model_sizes(self, record_table):
        """Latency across model scales (tiny to base) on the ZCU102 point."""
        simulator = AcceleratorSimulator(AcceleratorConfig.zcu102_n8_m16(), ZCU102)
        rows = []
        for name, model in (
            ("tiny", BertConfig.tiny(max_position_embeddings=128)),
            ("small", BertConfig.small(max_position_embeddings=128)),
            ("base", BertConfig.base()),
        ):
            report = simulator.simulate(model, seq_len=128)
            rows.append([name, model.hidden_size, model.num_hidden_layers, report.latency_ms])
        record_table(
            "scaling_model_size",
            render_table(
                ["model", "hidden", "layers", "latency(ms)"],
                rows,
                title="Model-scale sweep (extension)",
            ),
        )
        assert rows[-1][3] > rows[0][3]
