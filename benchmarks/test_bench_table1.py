"""Bench: regenerate Table I (FQ-BERT vs float accuracy + compression).

Paper: BERT 32/32 -> 92.32 / 84.19 / 83.97; FQ-BERT 4/8 -> 91.51 / 81.11 /
80.36; 7.94x compression.  Expected shape here: sub-1%-drop on the easy
SST-2-like task, larger drop on the MNLI-like tasks, ~7.94x compression.
"""

import pytest

from repro.experiments import run_table1


@pytest.fixture(scope="module")
def table1(experiment_scale):
    return run_table1(experiment_scale)


def test_bench_table1(benchmark, experiment_scale, record_table):
    result = benchmark.pedantic(
        lambda: run_table1(experiment_scale), rounds=1, iterations=1
    )
    record_table("table1", result.render())
    assert result.compression == pytest.approx(7.94, rel=0.01)


def test_table1_sst2_drop_below_2_points(table1):
    """Paper: 0.81% drop on SST-2 — 'negligible performance loss'."""
    assert table1.drop("sst2") < 2.0


def test_table1_mnli_drops_exceed_sst2(table1):
    """Paper: MNLI (-3.08) and MNLI-m (-3.61) lose more than SST-2 (-0.81)."""
    assert table1.drop("mnli") >= table1.drop("sst2") - 0.5
    assert table1.drop("mnli-mm") >= table1.drop("sst2") - 0.5

    assert max(table1.drop("mnli"), table1.drop("mnli-mm")) > table1.drop("sst2")


def test_table1_all_tasks_learned(table1):
    """Quantized accuracy stays far above chance on every task."""
    assert table1.quant_accuracy["sst2"] > 85.0
    assert table1.quant_accuracy["mnli"] > 60.0
    assert table1.quant_accuracy["mnli-mm"] > 55.0
