"""Micro-benchmarks of the hot kernels (pytest-benchmark timing runs).

These quantify the simulation substrate itself: integer matmul + requant
(the Eq. 5 kernel), the LUT softmax, the fixed-point LN, fake-quant QAT
forward, and a BIM batch evaluation.
"""

import numpy as np
import pytest

from repro.accel import Bim
from repro.autograd import Tensor
from repro.autograd import functional as F
from repro.quant import FixedPointMultiplier, quantized_softmax, saturate
from repro.quant.integer_model import IntegerLayerNorm, LN_FRAC_BITS
from repro.quant.fixedpoint import LN_PARAM_FORMAT


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(0)


def test_bench_integer_matmul_requant(benchmark, rng):
    """Eq. 5: x_I @ W_I^T + b_I, then fixed-point requantization."""
    x = rng.integers(-127, 128, size=(128, 768))
    w = rng.integers(-7, 8, size=(768, 768))
    b = rng.integers(-1000, 1000, size=768)
    requant = FixedPointMultiplier.from_float(0.004)

    def kernel():
        acc = x @ w.T + b
        return saturate(requant.apply(acc), 8)

    out = benchmark(kernel)
    assert out.shape == (128, 768)


def test_bench_quantized_softmax(benchmark, rng):
    codes = rng.integers(-127, 128, size=(12, 128, 128))
    out, _ = benchmark(quantized_softmax, codes, 25.0)
    assert out.shape == codes.shape


def test_bench_integer_layernorm(benchmark, rng):
    hidden = 768
    ln = IntegerLayerNorm(
        gamma_codes=LN_PARAM_FORMAT.to_fixed(rng.uniform(0.5, 2, hidden)),
        beta_codes=LN_PARAM_FORMAT.to_fixed(rng.uniform(-0.5, 0.5, hidden)),
        align_a=FixedPointMultiplier.from_float(2.0 ** LN_FRAC_BITS / 20.0),
        align_b=FixedPointMultiplier.from_float(2.0 ** LN_FRAC_BITS / 25.0),
        out_requant=FixedPointMultiplier.from_float(
            16.0 / 2.0 ** (LN_FRAC_BITS + LN_PARAM_FORMAT.frac_bits)
        ),
        out_scale=16.0,
        eps_fx=int(1e-5 * 2 ** (2 * LN_FRAC_BITS)),
    )
    a = rng.integers(-127, 128, size=(128, hidden))
    b = rng.integers(-127, 128, size=(128, hidden))
    out = benchmark(ln.forward, a, b)
    assert out.shape == (128, hidden)


def test_bench_fake_quantize_forward(benchmark, rng):
    x = Tensor(rng.standard_normal((128, 768)).astype(np.float32), requires_grad=True)
    out = benchmark(F.fake_quantize, x, 32.0, -127, 127)
    assert out.shape == (128, 768)


def test_bench_bim_batch_8x4(benchmark, rng):
    bim = Bim(16)
    a = rng.integers(-127, 128, size=(4096, 16))
    w = rng.integers(-7, 8, size=(4096, 16))
    out = benchmark(bim.dot_8x4_batch, a, w)
    assert out.shape == (4096,)


def test_bench_bim_batch_8x8(benchmark, rng):
    bim = Bim(16)
    a = rng.integers(-127, 128, size=(4096, 8))
    w = rng.integers(-127, 128, size=(4096, 8))
    out = benchmark(bim.dot_8x8_batch, a, w)
    assert out.shape == (4096,)


def test_bench_qat_training_step(benchmark, rng):
    """One QAT forward+backward on a tiny quantized BERT."""
    from repro.bert import BertConfig
    from repro.quant import QuantBertForSequenceClassification, QuantConfig

    config = BertConfig.tiny(vocab_size=64, max_position_embeddings=16)
    model = QuantBertForSequenceClassification(config, QuantConfig.fq_bert(), rng=rng)
    ids = rng.integers(0, 64, size=(8, 16))
    labels = np.array([0, 1] * 4)

    def step():
        model.zero_grad()
        loss = model.loss(ids, labels)
        loss.backward()
        return float(loss.data)

    loss = benchmark(step)
    assert np.isfinite(loss)
