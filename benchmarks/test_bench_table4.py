"""Bench: regenerate Table IV (CPU / GPU / ZCU102 / ZCU111 comparison).

Paper: latency 145.06 / 27.84 / 43.89 / 23.79 ms; power 65 / 143 / 9.8 /
13.2 W; fps/W 0.11 / 0.25 / 2.32 / 3.18.  Headline: 28.91x over CPU and
12.72x over GPU in energy efficiency; 6.10x / 1.17x in latency.
"""

import pytest

from repro.experiments import PAPER_TABLE4, run_table4


@pytest.fixture(scope="module")
def table4():
    return run_table4()


def test_bench_table4(benchmark, record_table):
    result = benchmark(run_table4)
    record_table("table4", result.render())
    assert set(result.platforms) == set(PAPER_TABLE4)


def test_table4_latencies_near_paper(table4):
    for name, row in table4.platforms.items():
        assert row["latency_ms"] == pytest.approx(
            PAPER_TABLE4[name]["latency_ms"], rel=0.15
        ), name


def test_table4_power_near_paper(table4):
    for name, row in table4.platforms.items():
        assert row["power_watts"] == pytest.approx(
            PAPER_TABLE4[name]["power_watts"], rel=0.05
        ), name


def test_table4_energy_efficiency_headline(table4):
    """FPGA wins by ~29x (CPU) and ~13x (GPU) in fps/W."""
    assert table4.speedup("CPU") == pytest.approx(28.91, rel=0.35)
    assert table4.speedup("GPU") == pytest.approx(12.72, rel=0.35)


def test_table4_latency_headline(table4):
    """Best FPGA beats CPU ~6.1x and GPU ~1.17x in latency."""
    cpu = table4.platforms["CPU"]["latency_ms"]
    gpu = table4.platforms["GPU"]["latency_ms"]
    best = table4.platforms["ZCU111"]["latency_ms"]
    assert cpu / best == pytest.approx(6.10, rel=0.25)
    assert gpu / best == pytest.approx(1.17, rel=0.25)
