"""Bench: regenerate Table II (cumulative quantization ablation on SST-2).

Paper rows: 92.32 / 91.63 / 91.28 / 91.86 / 91.51 — quantizing w/a costs the
most; the remaining parts (scales, softmax, LN) cost little, and softmax
quantization can even *recover* accuracy.  Expected shape here: the float
row is the highest and all quantized rows stay within a few points of it.
"""

import pytest

from repro.experiments import run_table2


@pytest.fixture(scope="module")
def table2(experiment_scale):
    return run_table2(scale=experiment_scale)


def test_bench_table2(benchmark, experiment_scale, record_table):
    result = benchmark.pedantic(
        lambda: run_table2(scale=experiment_scale), rounds=1, iterations=1
    )
    record_table("table2", result.render())
    assert len(result.accuracies) == 5


def test_table2_float_is_best_or_near_best(table2):
    float_accuracy = table2.accuracies[0]
    assert float_accuracy >= max(table2.accuracies[1:]) - 1.0


def test_table2_quantized_rows_within_5_points(table2):
    """Full quantization costs little on SST-2 (paper: 0.81%)."""
    float_accuracy = table2.accuracies[0]
    for row_accuracy in table2.accuracies[1:]:
        assert row_accuracy > float_accuracy - 5.0


def test_table2_fully_quantized_still_learned(table2):
    assert table2.accuracies[-1] > 85.0
