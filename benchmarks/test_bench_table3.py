"""Bench: regenerate Table III (resources + latency per (N, M) design point).

Paper rows (12 PUs): ZCU102 (8,16) 838/1751/124433/123157 @ 43.89 ms;
ZCU102 (16,8) 877/1671/151010/154192 @ 45.35 ms; ZCU111 (16,16) 679*/3287/
201469/189724 @ 23.79 ms.  DSP/FF/LUT are calibration-exact; latency within
15%; BRAM within 10% (ZCU111 splits into BRAM + URAM per the footnote).
"""

import pytest

from repro.accel import AcceleratorConfig, AcceleratorSimulator, ZCU102
from repro.bert import BertConfig
from repro.experiments import PAPER_TABLE3, run_table3


@pytest.fixture(scope="module")
def table3():
    return run_table3()


def test_bench_table3(benchmark, record_table):
    result = benchmark(run_table3)
    record_table("table3", result.render())
    assert len(result.reports) == 3


def test_table3_dsp_matches_paper_exactly(table3):
    for key, report in table3.reports.items():
        assert report.resources.dsp48 == pytest.approx(PAPER_TABLE3[key]["dsp"], abs=1), key


def test_table3_ff_lut_match_paper(table3):
    for key, report in table3.reports.items():
        assert report.resources.ff == pytest.approx(PAPER_TABLE3[key]["ff"], rel=0.001), key
        assert report.resources.lut == pytest.approx(PAPER_TABLE3[key]["lut"], rel=0.001), key


def test_table3_latency_within_15_percent(table3):
    for key, report in table3.reports.items():
        assert report.latency_ms == pytest.approx(
            PAPER_TABLE3[key]["latency_ms"], rel=0.15
        ), key


def test_table3_zcu111_doubles_performance(table3):
    zcu102 = table3.reports[("ZCU102", 8, 16)].latency_ms
    zcu111 = table3.reports[("ZCU111", 16, 16)].latency_ms
    assert 1.5 < zcu102 / zcu111 < 2.0


def test_bench_single_simulation_speed(benchmark):
    """Micro-bench: one full design-point evaluation (should be fast)."""
    simulator = AcceleratorSimulator(AcceleratorConfig.zcu102_n8_m16(), ZCU102)
    report = benchmark(simulator.simulate, BertConfig.base(), 128)
    assert report.latency_ms > 0
