"""Benches for the extension subsystems:

- command-stream trace vs analytic scheduler (timing-model cross-validation)
- energy breakdown per inference + the weight-width payoff
- PTQ vs QAT accuracy (what the paper's fine-tuning step buys)
"""

import pytest

from repro.accel import (
    AcceleratorConfig,
    EnergyParams,
    Scheduler,
    build_encoder_workload,
    compare_weight_widths,
    estimate_energy,
    replay_workload,
)
from repro.bert import BertConfig
from repro.experiments import render_table


@pytest.fixture(scope="module")
def workload():
    return build_encoder_workload(BertConfig.base(), seq_len=128)


class TestTraceCrossValidation:
    def test_bench_trace_vs_analytic(self, workload, record_table, benchmark):
        rows = []
        for name, config in (
            ("ZCU102 (8,16)", AcceleratorConfig.zcu102_n8_m16()),
            ("ZCU102 (16,8)", AcceleratorConfig.zcu102_n16_m8()),
            ("ZCU111 (16,16)", AcceleratorConfig.zcu111_n16_m16()),
        ):
            analytic = Scheduler(config).schedule(workload).total_cycles
            trace = replay_workload(workload, config)
            rows.append(
                [
                    name,
                    analytic,
                    trace.total_cycles,
                    trace.total_cycles / analytic,
                    trace.pe_utilization,
                ]
            )
        record_table(
            "extension_trace_validation",
            render_table(
                ["design", "analytic cycles", "trace cycles", "ratio", "PE util"],
                rows,
                title="Timing-model cross-validation (analytic vs event-driven)",
                precision=3,
            ),
        )
        assert all(0.9 <= row[3] <= 1.1 for row in rows)
        benchmark.pedantic(
            lambda: replay_workload(workload, AcceleratorConfig.zcu102_n8_m16()),
            rounds=1,
            iterations=1,
        )


class TestEnergyBreakdown:
    def test_bench_energy_breakdown(self, workload, record_table, benchmark):
        breakdown = benchmark(
            estimate_energy, workload, AcceleratorConfig.zcu102_n8_m16()
        )
        rows = [
            [name, value, 100.0 * value / breakdown.dynamic_uj]
            for name, value in sorted(
                breakdown.components_uj.items(), key=lambda kv: -kv[1]
            )
        ]
        record_table(
            "extension_energy_breakdown",
            render_table(
                ["component", "energy (uJ)", "% of dynamic"],
                rows,
                title="Dynamic energy per inference (ZCU102, w4/a8)",
            ),
        )
        assert breakdown.dynamic_uj > 0

    def test_bench_weight_width_energy(self, workload, record_table):
        energies = compare_weight_widths(workload, AcceleratorConfig())
        rows = [[bits, energy, energies[32] / energy] for bits, energy in energies.items()]
        record_table(
            "extension_energy_vs_weight_bits",
            render_table(
                ["weight bits", "dynamic energy (uJ)", "saving vs fp32"],
                rows,
                title="Energy vs weight storage width",
            ),
        )
        assert energies[4] < energies[32] / 2


class TestPerChannelAblation:
    def test_bench_per_channel_vs_per_tensor(self, experiment_scale, record_table):
        """Granularity ablation: per-tensor (clip / no-clip) vs per-channel."""
        from dataclasses import replace

        from repro.experiments.common import pretrain_task, qat_accuracy
        from repro.quant import QuantConfig

        pretrained = pretrain_task("sst2", experiment_scale)
        rows = []
        for bits in (4, 2):
            schemes = {
                "per-tensor noclip": QuantConfig.figure3(bits, clip=False),
                "per-tensor clip": QuantConfig.figure3(bits, clip=True),
                "per-channel": replace(
                    QuantConfig.figure3(bits, clip=False), per_channel_weights=True
                ),
            }
            accuracies = {
                name: qat_accuracy(pretrained, config, experiment_scale)
                for name, config in schemes.items()
            }
            rows.append([f"w{bits}"] + [accuracies[k] for k in schemes])
        record_table(
            "extension_per_channel",
            render_table(
                ["bits", "per-tensor noclip", "per-tensor clip", "per-channel"],
                rows,
                title="Weight-scale granularity ablation (SST-2-like, float "
                f"{pretrained.float_accuracy:.2f})",
            ),
        )
        # At 2 bits, per-channel should rescue accuracy at least as well as
        # the trained clip (both fight the same outlier problem).
        w2 = rows[-1]
        assert w2[3] >= w2[1] - 1.0


class TestSqnrAnalysis:
    def test_bench_sqnr_vs_bits(self, record_table, rng=None):
        """SQNR vs bitwidth on real trained weights: the ~6 dB/bit law."""
        import numpy as np

        from repro.experiments.common import pretrain_task
        from repro.quant.analysis import tensor_sqnr

        pretrained = pretrain_task("sst2", None)
        weight = pretrained.model.bert.encoder.layers[0].attention.self_attention.query.weight.data
        rows = []
        for bits in (2, 3, 4, 6, 8):
            rows.append([bits, tensor_sqnr(weight, bits)])
        record_table(
            "extension_sqnr_vs_bits",
            render_table(
                ["weight bits", "SQNR (dB)"],
                rows,
                title="Weight SQNR vs bitwidth (trained query projection)",
            ),
        )
        sqnrs = [row[1] for row in rows]
        assert all(a < b for a, b in zip(sqnrs, sqnrs[1:]))

    def test_bench_granularity_sqnr(self, experiment_scale, record_table):
        """Per-layer SQNR: clip vs minmax vs per-channel on a trained model."""
        import numpy as np

        from repro.experiments.common import pretrain_task
        from repro.quant import QuantConfig, quantize_model
        from repro.quant.analysis import weight_sqnr_report

        pretrained = pretrain_task("sst2", experiment_scale)
        quant = quantize_model(
            pretrained.model, QuantConfig.fq_bert(), rng=np.random.default_rng(0)
        )
        rows = [
            [
                row["layer"].split(".")[-1] + f"@{row['layer'].split('.')[2]}"
                if row["layer"].count(".") > 2 else row["layer"],
                row["sqnr_clip_db"],
                row["sqnr_minmax_db"],
                row["sqnr_per_channel_db"],
            ]
            for row in weight_sqnr_report(quant)
        ]
        record_table(
            "extension_sqnr_granularity",
            render_table(
                ["layer", "clip dB", "minmax dB", "per-channel dB"],
                rows,
                title="Per-layer weight SQNR at 4 bits",
            ),
        )
        assert rows


class TestPtqVsQat:
    def test_bench_ptq_vs_qat(self, experiment_scale, record_table):
        """What QAT buys over calibration-only PTQ, per bitwidth."""
        import numpy as np

        from repro.experiments.common import pretrain_task
        from repro.quant import QuantConfig, evaluate, post_training_quantize
        from repro.experiments.common import qat_accuracy

        pretrained = pretrain_task("sst2", experiment_scale)
        rows = []
        for bits in (8, 4, 2):
            qconfig = QuantConfig.fq_bert(weight_bits=bits)
            pretrained.model.load_state_dict(pretrained.float_state)
            ptq_model = post_training_quantize(
                pretrained.model, qconfig, pretrained.train_data,
                rng=np.random.default_rng(0),
            )
            ptq = evaluate(ptq_model, pretrained.dev_data)
            qat = qat_accuracy(pretrained, qconfig, experiment_scale)
            rows.append([f"w{bits}/a8", ptq, qat, qat - ptq])
        record_table(
            "extension_ptq_vs_qat",
            render_table(
                ["config", "PTQ acc", "QAT acc", "QAT gain"],
                rows,
                title="PTQ vs QAT (SST-2-like, float baseline "
                f"{pretrained.float_accuracy:.2f})",
            ),
        )
        # At w2, fine-tuning must recover meaningfully more than calibration.
        w2 = rows[-1]
        assert w2[3] > -1.0
        # At w8, both are close to float (nothing to recover).
        w8 = rows[0]
        assert abs(w8[1] - w8[2]) < 5.0
