"""Bench: regenerate Figure 3 (accuracy vs weight bitwidth, clip vs no-clip).

Paper shape: accuracy degrades gracefully at 8/6/4 bits, collapses at 2
bits, and the tuned clip thresholds clearly beat no-clipping at 2 bits
(SST-2: 83.26 vs 77.64; MNLI: 71.9 vs 48.58).
"""

import pytest

from repro.experiments import run_figure3


@pytest.fixture(scope="module")
def figure3(experiment_scale):
    return run_figure3(scale=experiment_scale)


def test_bench_figure3(benchmark, experiment_scale, record_table):
    result = benchmark.pedantic(
        lambda: run_figure3(scale=experiment_scale), rounds=1, iterations=1
    )
    from repro.experiments import figure3_chart

    record_table("figure3", result.render())
    record_table(
        "figure3_chart",
        figure3_chart(result, "sst2") + "\n\n" + figure3_chart(result, "mnli"),
    )
    assert len(result.accuracy) == 2 * 5 * 2


@pytest.mark.parametrize("task", ["sst2", "mnli"])
def test_figure3_graceful_until_4_bits(figure3, task):
    """8/6/4-bit weights stay within a few points of float."""
    anchor = figure3.accuracy[(task, 32, True)]
    for bits in (8, 6, 4):
        for clip in (True, False):
            assert figure3.accuracy[(task, bits, clip)] > anchor - 5.0, (bits, clip)


@pytest.mark.parametrize("task", ["sst2", "mnli"])
def test_figure3_cliff_at_2_bits(figure3, task):
    """The 2-bit point drops dramatically relative to 4-bit."""
    at4 = figure3.accuracy[(task, 4, False)]
    at2 = figure3.accuracy[(task, 2, False)]
    assert at4 - at2 > 5.0


def test_figure3_clip_helps_at_2_bits(figure3):
    """The paper's headline for clipping: clear win at the lowest bitwidth."""
    for task in ("sst2", "mnli"):
        clip = figure3.accuracy[(task, 2, True)]
        no_clip = figure3.accuracy[(task, 2, False)]
        assert clip > no_clip, task


def test_figure3_mnli_harder_than_sst2(figure3):
    """The harder task loses more at every low bitwidth (paper Table I/Fig 3)."""
    sst2_drop = figure3.accuracy[("sst2", 32, True)] - figure3.accuracy[("sst2", 2, True)]
    mnli_drop = figure3.accuracy[("mnli", 32, True)] - figure3.accuracy[("mnli", 2, True)]
    assert mnli_drop > sst2_drop
