"""Benchmark harness configuration.

Each ``test_bench_*`` module regenerates one of the paper's tables or
figures (plus ablation benches for design decisions).  Rendered tables are
written to ``benchmarks/results/*.txt`` so a benchmark run leaves a durable
record that can be diffed against the paper and against EXPERIMENTS.md.
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def record_table():
    """Write a rendered table to benchmarks/results/<name>.txt (and stdout)."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")

    return write


@pytest.fixture(scope="session")
def experiment_scale():
    """Full experiment scale shared by the accuracy benches."""
    from repro.experiments import ExperimentScale

    return ExperimentScale.default()
