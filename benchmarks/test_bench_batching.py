"""Bench: batch scaling — throughput headroom beyond the paper's batch 1.

The paper measures batch-1 latency (the edge-inference operating point).
Because weights stream from DDR once per layer regardless of batch, larger
batches amortize the stream and raise throughput per watt.  This bench
quantifies that headroom on the ZCU102 design point, and checks the
latency/throughput trade behaves sanely.
"""

import pytest

from repro.accel import AcceleratorConfig, AcceleratorSimulator, ZCU102, build_encoder_workload
from repro.bert import BertConfig
from repro.experiments import render_table


@pytest.fixture(scope="module")
def batch_results():
    simulator = AcceleratorSimulator(AcceleratorConfig.zcu102_n8_m16(), ZCU102)
    model = BertConfig.base()
    results = {}
    for batch in (1, 2, 4, 8, 16):
        workload = build_encoder_workload(model, seq_len=128, batch_size=batch)
        report = simulator.simulate(model, seq_len=128, workload=workload)
        results[batch] = report
    return results


def test_bench_batch_scaling(batch_results, record_table, benchmark):
    rows = []
    for batch, report in batch_results.items():
        batch_latency = report.latency_ms
        per_item = batch_latency / batch
        fps = 1000.0 / per_item
        rows.append([batch, batch_latency, per_item, fps, fps / report.power_watts])
    record_table(
        "extension_batch_scaling",
        render_table(
            ["batch", "batch latency(ms)", "ms/item", "items/s", "items/s/W"],
            rows,
            title="Batch scaling on ZCU102 (8,16) — weight-stream amortization",
        ),
    )
    benchmark.pedantic(
        lambda: build_encoder_workload(BertConfig.base(), 128, batch_size=8),
        rounds=1,
        iterations=1,
    )


def test_per_item_latency_improves_with_batch(batch_results):
    per_item = {
        batch: report.latency_ms / batch for batch, report in batch_results.items()
    }
    assert per_item[16] < per_item[1]


def test_throughput_gain_is_bounded(batch_results):
    """Batch-1 is already compute-bound with double buffering, so the gain
    from amortizing the (mostly hidden) weight stream is modest — the reason
    the paper's batch-1 focus loses little throughput."""
    gain = (batch_results[1].latency_ms / 1) / (batch_results[16].latency_ms / 16)
    assert 1.0 < gain < 1.5


def test_batch_latency_superlinear_in_batch(batch_results):
    """Total batch latency grows ~linearly (no magic parallelism)."""
    assert batch_results[8].latency_ms > 7 * batch_results[1].latency_ms * 0.9


def test_invalid_batch_rejected():
    with pytest.raises(ValueError):
        build_encoder_workload(BertConfig.base(), 128, batch_size=0)
