"""Optimized vs. seed integer kernels: the vectorization-pass scorecard.

Runs the kernel bench suite (quick profile) and records the speedup table
to ``benchmarks/results/vectorization_speedup.txt``.  The committed
``BENCH_kernels.json`` at the repo root holds the full-profile baseline the
regression gate (``repro.cli bench``) compares against.
"""

from repro.perf import render_result
from repro.perf.bench import run_kernel_suite


def test_bench_vectorization_speedup(record_table):
    result = run_kernel_suite(quick=True, seed=0)
    metrics = result["metrics"]

    lines = ["Vectorization pass: optimized vs. seed kernels (quick profile)", ""]
    lines.append(render_result(result))
    record_table("vectorization_speedup", "\n".join(lines))

    # The suite itself asserts bit-exactness before timing; here we pin the
    # perf claim with CI-load headroom (the full profile documents >2x).
    speedup = metrics["batched_forward_batch8_speedup_vs_reference"]["value"]
    assert speedup > 1.3, f"batched forward speedup collapsed to {speedup:.2f}x"
    assert metrics["integer_linear_ffn1_speedup_vs_reference"]["value"] > 1.3
