"""Ablation benches for the design decisions called out in DESIGN.md:

- BIM Type A vs Type B (Figure 4): resource trade at equal throughput.
- Weight double buffering (Sec. III-C): transfer overlap.
- Psum double buffering (Sec. III-B): quantization-drain hiding.
- Softmax LUT size (Sec. III-B): 256 entries suffice after max-subtraction.
- AXI bandwidth: when the 'completely overlapped' claim stops holding.
"""

import numpy as np
import pytest

from repro.accel import (
    AcceleratorConfig,
    Bim,
    BimType,
    Scheduler,
    build_encoder_workload,
    estimate_lut,
)
from repro.bert import BertConfig
from repro.experiments import render_table
from repro.quant.softmax_lut import OUTPUT_LEVELS, build_exp_lut, lut_max_error


@pytest.fixture(scope="module")
def workload():
    return build_encoder_workload(BertConfig.base(), seq_len=128)


class TestBimTypeAblation:
    def test_bench_bim_type_resources(self, record_table):
        rows = []
        for m in (8, 16, 32):
            lut_a = Bim(m, BimType.TYPE_A).lut_cost()
            lut_b = Bim(m, BimType.TYPE_B).lut_cost()
            rows.append([m, lut_a, lut_b, lut_b / lut_a])
        record_table(
            "ablation_bim_type",
            render_table(
                ["M", "Type A LUTs", "Type B LUTs", "B/A"],
                rows,
                title="BIM ablation: shift placement (Figure 4)",
            ),
        )
        assert all(row[2] > row[1] for row in rows)

    def test_type_choice_does_not_change_latency(self, workload):
        """The shift placement is purely a resource decision."""
        for bim_type in (BimType.TYPE_A, BimType.TYPE_B):
            config = AcceleratorConfig(bim_type=bim_type)
            result = Scheduler(config).schedule(workload)
            assert result.latency_ms == pytest.approx(
                Scheduler(AcceleratorConfig()).schedule(workload).latency_ms
            )

    def test_full_design_lut_gap(self):
        a = estimate_lut(AcceleratorConfig(bim_type=BimType.TYPE_A))
        b = estimate_lut(AcceleratorConfig(bim_type=BimType.TYPE_B))
        assert b - a > 5000  # 96 BIMs' worth of extra shifters


class TestDoubleBufferingAblation:
    def test_bench_double_buffering(self, workload, record_table):
        rows = []
        for weights_db, psum_db in ((True, True), (True, False), (False, True), (False, False)):
            config = AcceleratorConfig(
                double_buffer_weights=weights_db, double_buffer_psum=psum_db
            )
            result = Scheduler(config).schedule(workload)
            rows.append(
                [
                    "yes" if weights_db else "no",
                    "yes" if psum_db else "no",
                    result.latency_ms,
                ]
            )
        record_table(
            "ablation_double_buffering",
            render_table(
                ["weight dbuf", "psum dbuf", "latency(ms)"],
                rows,
                title="Double-buffering ablation",
            ),
        )
        latencies = [row[2] for row in rows]
        assert latencies[0] == min(latencies)  # both on is fastest
        assert latencies[3] == max(latencies)  # both off is slowest

    def test_transfer_fully_hidden_only_with_double_buffering(self, workload):
        """Sec. III-C's claim, quantified."""
        on = Scheduler(AcceleratorConfig(double_buffer_weights=True)).schedule(workload)
        off = Scheduler(AcceleratorConfig(double_buffer_weights=False)).schedule(workload)
        exposed_on = sum(s.exposed_transfer_cycles for s in on.stages)
        exposed_off = sum(s.exposed_transfer_cycles for s in off.stages)
        assert exposed_on < 0.2 * exposed_off


class TestAxiBandwidthSweep:
    def test_bench_axi_sweep(self, workload, record_table):
        """Find where weight streaming stops being hidden."""
        rows = []
        for bytes_per_cycle in (1, 2, 4, 8, 16, 32):
            config = AcceleratorConfig(axi_bytes_per_cycle=bytes_per_cycle)
            result = Scheduler(config).schedule(workload)
            exposed = sum(s.exposed_transfer_cycles for s in result.stages)
            rows.append([bytes_per_cycle, result.latency_ms, exposed])
        record_table(
            "ablation_axi_bandwidth",
            render_table(
                ["AXI B/cycle", "latency(ms)", "exposed transfer cycles/layer"],
                rows,
                title="AXI bandwidth sweep",
            ),
        )
        # Latency is monotone non-increasing in bandwidth and saturates.
        latencies = [row[1] for row in rows]
        assert all(a >= b for a, b in zip(latencies, latencies[1:]))
        assert latencies[-1] == pytest.approx(latencies[-2], rel=0.02)


class TestLoopOrderAblation:
    def test_bench_loop_order(self, workload, record_table):
        """Why the paper streams tokens past resident weight tiles."""
        rows = []
        for order in Scheduler.LOOP_ORDERS:
            result = Scheduler(AcceleratorConfig(), loop_order=order).schedule(workload)
            exposed = sum(s.exposed_transfer_cycles for s in result.stages)
            transfer = sum(s.transfer_cycles for s in result.stages)
            rows.append([order, result.latency_ms, transfer, exposed])
        record_table(
            "ablation_loop_order",
            render_table(
                ["loop order", "latency(ms)", "transfer cycles/layer", "exposed cycles/layer"],
                rows,
                title="Dataflow loop-order ablation (Sec. III-C)",
            ),
        )
        weight_stationary, token_stationary = rows
        # Token-stationary reloads every tile per token: ~seq x the traffic
        # and a crushing latency penalty.
        assert token_stationary[2] > 100 * weight_stationary[2]
        assert token_stationary[1] > 3 * weight_stationary[1]

    def test_unknown_loop_order_rejected(self):
        import pytest as _pytest

        with _pytest.raises(ValueError):
            Scheduler(AcceleratorConfig(), loop_order="output_stationary")


class TestSoftmaxLutSweep:
    def test_bench_lut_size_sweep(self, record_table):
        """256 entries suffice: max error flattens at the 8-bit floor."""
        score_scale = 25.0
        rows = []
        for entries in (32, 64, 128, 256, 512):
            error = lut_max_error(score_scale, entries=entries)
            rows.append([entries, error * OUTPUT_LEVELS])
        record_table(
            "ablation_softmax_lut",
            render_table(
                ["LUT entries", "max |error| (in 8-bit levels)"],
                rows,
                title="Softmax LUT size sweep",
                precision=3,
            ),
        )
        errors = [row[1] for row in rows]
        assert errors[3] <= 0.5 + 1e-6  # 256 entries: within half a level
        # Below 256 entries the clamp truncates the tail; the error at 256
        # entries is no worse than the larger table.
        assert errors[3] <= errors[0]
        assert errors[4] <= errors[3] + 1e-9

    def test_lut_tail_clamp_error(self):
        """Small tables clamp large differences; quantify the tail error."""
        scale = 60.0
        small = build_exp_lut(scale, entries=64)
        full = build_exp_lut(scale, entries=256)
        diffs = np.arange(256)
        small_values = small[np.clip(diffs, 0, 63)]
        assert np.abs(small_values - full).max() >= 0  # tail clamped
