"""Bench: dynamic batching vs sequential serving over simulated devices.

The serving engine's claim: under traffic, grouping requests into padded
same-bucket batches beats one-at-a-time execution because the accelerator
amortizes its weight stream across the batch (latency(B) < B x latency(1))
and multiple devices drain the backlog in parallel.  This bench drives the
same burst trace through both policies across batch sizes and device
counts and records simulated throughput and p95 latency.
"""

import numpy as np
import pytest

from repro.bert import BertConfig, BertForSequenceClassification
from repro.data import encode_task, make_sst2_like
from repro.experiments import render_table
from repro.quant import QuantConfig, convert_to_integer
from repro.quant.ptq import post_training_quantize
from repro.serve import ServingConfig, ServingEngine, generate_trace

NUM_REQUESTS = 96
BUCKETS = (8, 12, 16)


@pytest.fixture(scope="module")
def serving_setup():
    """A calibrated integer model + tokenizer + request pool (accuracy is
    irrelevant here; the bench measures the serving path's timing)."""
    task = make_sst2_like(num_train=256, num_dev=128, seed=3)
    train, _, tokenizer = encode_task(task, max_length=max(BUCKETS))
    config = BertConfig.tiny(
        vocab_size=len(tokenizer.vocab), num_labels=2,
        max_position_embeddings=max(BUCKETS),
    )
    model = BertForSequenceClassification(config, rng=np.random.default_rng(0))
    quant = post_training_quantize(
        model, QuantConfig.fq_bert(), train, rng=np.random.default_rng(1)
    )
    quant.eval()
    integer_model = convert_to_integer(quant)
    pool = [(ex.text_a, ex.text_b) for ex in task.dev]
    return integer_model, tokenizer, pool


def run_serving(setup, max_batch_size, num_devices, buckets=BUCKETS):
    integer_model, tokenizer, pool = setup
    engine = ServingEngine(
        integer_model,
        tokenizer,
        ServingConfig(
            max_batch_size=max_batch_size,
            max_wait_ms=0.05,
            buckets=buckets,
            num_devices=num_devices,
        ),
    )
    # A saturating burst: offered load far above device capacity, so the
    # makespan measures drain throughput, not arrival pacing.
    trace = generate_trace(pool, NUM_REQUESTS, mean_interarrival_ms=0.005, seed=17)
    engine.run_trace(trace)
    return engine.stats()


@pytest.fixture(scope="module")
def sweep(serving_setup):
    """Serving stats across (batch size, device count) design points."""
    results = {}
    for batch_size in (1, 2, 4, 8, 16):
        results[(batch_size, 1)] = run_serving(serving_setup, batch_size, 1)
    for devices in (2, 4):
        results[(8, devices)] = run_serving(serving_setup, 8, devices)
    return results


def test_bench_serving_sweep(sweep, record_table, benchmark):
    rows = []
    for (batch_size, devices), stats in sorted(sweep.items()):
        rows.append(
            [
                batch_size,
                devices,
                stats.throughput_rps,
                stats.p50_latency_ms,
                stats.p95_latency_ms,
                stats.p99_latency_ms,
                stats.padding_efficiency * 100,
                stats.mean_batch_size,
            ]
        )
    record_table(
        "serving_dynamic_batching",
        render_table(
            ["batch", "devices", "req/s", "p50(ms)", "p95(ms)", "p99(ms)",
             "padding eff(%)", "mean batch"],
            rows,
            title=f"Dynamic batching vs sequential ({NUM_REQUESTS}-request burst, ZCU102)",
        ),
    )
    benchmark.pedantic(
        lambda: generate_trace([("a b c", None)], NUM_REQUESTS, seed=17),
        rounds=1,
        iterations=1,
    )


def test_dynamic_batching_beats_sequential(sweep):
    """The acceptance criterion: batch >= 4 strictly out-throughputs
    sequential (batch-1) execution on the same trace and device."""
    sequential = sweep[(1, 1)].throughput_rps
    for batch_size in (4, 8, 16):
        assert sweep[(batch_size, 1)].throughput_rps > sequential


def test_throughput_monotone_in_batch_size(sweep):
    ordered = [sweep[(b, 1)].throughput_rps for b in (1, 2, 4, 8)]
    assert ordered == sorted(ordered)


def test_more_devices_raise_throughput(sweep):
    assert sweep[(8, 2)].throughput_rps > sweep[(8, 1)].throughput_rps
    assert sweep[(8, 4)].throughput_rps > sweep[(8, 2)].throughput_rps


def test_batching_trades_latency_for_throughput(sweep):
    """Under a saturating burst, batching should not *hurt* p95 latency:
    the backlog drains faster even though each batch waits to fill."""
    assert sweep[(8, 1)].p95_latency_ms < sweep[(1, 1)].p95_latency_ms


def test_sequential_is_fully_sequential(sweep):
    assert sweep[(1, 1)].mean_batch_size == 1.0
