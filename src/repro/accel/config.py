"""Accelerator configuration (the (N, M) design points of Table III)."""

from __future__ import annotations

from dataclasses import dataclass, fields, replace

from .bim import BimType


def validate_knob(name: str, value) -> None:
    """Eagerly validate one sweep knob, naming the knob in any error.

    ``__post_init__`` enforces the same invariants, but by the time it
    fires a sweep has lost *which* knob it was varying — the design-space
    explorer (and :meth:`AcceleratorConfig.with_`) call this per knob so
    a bad axis value reads ``num_multipliers must be a power of two``
    instead of a bare ``M must be a power of two``.

    Args:
        name: The :class:`AcceleratorConfig` field being set.
        value: The proposed value.

    Raises:
        ValueError: If the value violates the knob's invariant.
    """
    if name in ("num_pus", "num_pes"):
        if not isinstance(value, int) or value < 1:
            raise ValueError(f"{name} must be an integer >= 1, got {value!r}")
    elif name == "num_multipliers":
        if not isinstance(value, int) or value < 2 or (value & (value - 1)) != 0:
            raise ValueError(
                f"{name} must be a power of two >= 2, got {value!r}"
            )
    elif name == "frequency_mhz":
        if not value > 0:
            raise ValueError(f"{name} must be > 0, got {value!r}")
    elif name == "axi_bytes_per_cycle":
        if not isinstance(value, int) or value < 1:
            raise ValueError(f"{name} must be an integer >= 1, got {value!r}")


@dataclass(frozen=True)
class AcceleratorConfig:
    """Parameters of one accelerator instance.

    ``num_pus`` is H (12 in the paper, matching BERT-base's 12 attention
    heads so attention ops map one head per PU), ``num_pes`` is N, and
    ``num_multipliers`` is M — the knobs examined in Table III.
    """

    num_pus: int = 12               # H
    num_pes: int = 8                # N
    num_multipliers: int = 16       # M (8b x 4b multipliers per BIM)
    bim_type: BimType = BimType.TYPE_A
    frequency_mhz: float = 214.0
    axi_bytes_per_cycle: int = 16   # 128-bit AXI4 @ accelerator clock
    double_buffer_weights: bool = True
    double_buffer_psum: bool = True
    pe_pipeline_fill: int = 4       # refill cycles per weight-row pass
    quant_pipeline_depth: int = 4   # quantization module latency (Sec. III-B)
    softmax_simd: int = 16          # softmax core lanes
    softmax_pipeline_depth: int = 8
    ln_simd: int = 16               # LN core SIMD width
    ln_pipeline_depth: int = 6
    stage_sync_cycles: int = 32     # controller sync at each Fig. 5 stage edge

    def __post_init__(self):
        if self.num_pus < 1 or self.num_pes < 1:
            raise ValueError("num_pus and num_pes must be >= 1")
        m = self.num_multipliers
        if m < 2 or (m & (m - 1)) != 0:
            raise ValueError(f"M must be a power of two >= 2, got {m}")
        if self.axi_bytes_per_cycle < 1:
            raise ValueError("axi_bytes_per_cycle must be >= 1")

    @property
    def total_multipliers(self) -> int:
        """H * N * M — the headline compute capacity."""
        return self.num_pus * self.num_pes * self.num_multipliers

    @property
    def total_pes(self) -> int:
        return self.num_pus * self.num_pes

    def with_(self, **kwargs) -> "AcceleratorConfig":
        """Functional update helper for sweeps.

        Every knob is validated *eagerly*, before the replacement config is
        built, so a bad sweep axis fails with the knob's name in the error
        (``num_multipliers must be a power of two >= 2, got 12``) rather
        than the context-free ``__post_init__`` message.

        Raises:
            ValueError: If a knob name is unknown or a value violates that
                knob's invariant.
        """
        known = {f.name for f in fields(self)}
        for name, value in kwargs.items():
            if name not in known:
                raise ValueError(
                    f"unknown AcceleratorConfig knob {name!r}; "
                    f"choose from {sorted(known)}"
                )
            validate_knob(name, value)
        return replace(self, **kwargs)

    # ------------------------------------------------------------------
    # the paper's named design points
    # ------------------------------------------------------------------
    @classmethod
    def zcu102_n8_m16(cls) -> "AcceleratorConfig":
        """Table III row (8, 16) on ZCU102."""
        return cls(num_pes=8, num_multipliers=16)

    @classmethod
    def zcu102_n16_m8(cls) -> "AcceleratorConfig":
        """Table III row (16, 8) on ZCU102."""
        return cls(num_pes=16, num_multipliers=8)

    @classmethod
    def zcu111_n16_m16(cls) -> "AcceleratorConfig":
        """Table III row (16, 16) on ZCU111 (double the multipliers)."""
        return cls(num_pes=16, num_multipliers=16)
