"""Workload description: the operator stream of one BERT inference.

The scheduler (Figure 5 dataflow) and the CPU/GPU baselines both consume
this representation, so every latency number in Tables III/IV is computed
from the *same* operator inventory, derived analytically from a
:class:`repro.bert.BertConfig` and a sequence length.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from functools import lru_cache
from typing import Tuple

from ..bert.config import BertConfig


class OpKind(Enum):
    """Operator classes the accelerator distinguishes."""

    MATMUL_W = "matmul_weight"   # activation x weight, 8b x 4b on the PEs
    MATMUL_A = "matmul_act"      # activation x activation, 8b x 8b (BIM fused)
    SOFTMAX = "softmax"          # softmax core
    LAYERNORM = "layernorm"      # LN core (Add&LN)
    GELU = "gelu"                # elementwise LUT, overlapped with writeback


@dataclass(frozen=True)
class Op:
    """One operator instance within an encoder layer.

    For matmuls the hardware executes ``vectors`` independent matrix-vector
    products of shape ``(out_dim, contract_dim)``, replicated over ``heads``
    attention heads (1 for weight matmuls, which see the full hidden dim).
    """

    name: str
    kind: OpKind
    vectors: int = 0        # number of input vectors (tokens / rows)
    out_dim: int = 0        # outputs per vector
    contract_dim: int = 0   # dot-product length K
    heads: int = 1
    weight_bits: int = 4    # storage width of streamed weights (MATMUL_W)

    @property
    def macs(self) -> int:
        """Multiply-accumulates of this op (0 for non-matmul kinds)."""
        if self.kind in (OpKind.MATMUL_W, OpKind.MATMUL_A):
            return self.vectors * self.out_dim * self.contract_dim * self.heads
        return 0

    @property
    def weight_bytes(self) -> float:
        """Off-chip weight traffic of this op at its storage width."""
        if self.kind is not OpKind.MATMUL_W:
            return 0.0
        return self.out_dim * self.contract_dim * self.weight_bits / 8.0


@dataclass(frozen=True)
class EncoderWorkload:
    """The per-layer op stream plus the layer count.

    Fully immutable (and therefore hashable): ``layer_ops`` is a tuple of
    frozen :class:`Op` instances, which lets the scheduler memoize its
    cycle accounting per workload.
    """

    config: BertConfig
    seq_len: int
    layer_ops: Tuple[Op, ...]
    num_layers: int
    batch_size: int = 1

    # ------------------------------------------------------------------
    # aggregate statistics (used by baselines and reports)
    # ------------------------------------------------------------------
    def total_macs(self, kind: OpKind = None) -> int:
        total = 0
        for op in self.layer_ops:
            if kind is None or op.kind is kind:
                total += op.macs
        return total * self.num_layers

    def total_flops(self) -> float:
        """2 x MACs over the whole encoder (ignoring cheap elementwise ops)."""
        return 2.0 * self.total_macs()

    def total_weight_bytes(self) -> float:
        """Per-inference off-chip weight traffic at quantized width."""
        return sum(op.weight_bytes for op in self.layer_ops) * self.num_layers

    def total_weight_bytes_fp32(self) -> float:
        """Weight traffic if weights were fp32 (the CPU/GPU baselines)."""
        total = 0.0
        for op in self.layer_ops:
            if op.kind is OpKind.MATMUL_W:
                total += op.out_dim * op.contract_dim * 4.0
        return total * self.num_layers


@lru_cache(maxsize=512)
def build_encoder_workload(
    config: BertConfig,
    seq_len: int = 128,
    weight_bits: int = 4,
    batch_size: int = 1,
) -> EncoderWorkload:
    """Derive the Figure 5 op stream for one encoder layer.

    Stage order matches the paper's dataflow: ``X·W_Q``, ``X·W_K``, ``X·W_V``,
    ``Q·Kᵀ``, softmax, ``Attn·V``, ``O_A·W_s``, Add&LN, FFN1 (+GELU), FFN2,
    Add&LN.

    ``batch_size > 1`` multiplies every op's vector count while the weight
    traffic stays fixed — a resident weight tile serves the whole batch, so
    batching amortizes the off-chip stream (the paper evaluates batch 1
    latency; the batch-scaling bench quantifies the throughput headroom).

    Memoized per ``(config, seq_len, weight_bits, batch_size)``: the serving
    router asks for the same (config, seq-bucket) shapes on every batch, and
    the derivation is pure, so repeated calls return the cached (immutable)
    workload instead of re-deriving it.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    hidden = config.hidden_size
    inter = config.intermediate_size
    heads = config.num_attention_heads
    head_dim = config.head_dim
    tokens = seq_len * batch_size

    ops = (
        Op("X*W_Q", OpKind.MATMUL_W, tokens, hidden, hidden, weight_bits=weight_bits),
        Op("X*W_K", OpKind.MATMUL_W, tokens, hidden, hidden, weight_bits=weight_bits),
        Op("X*W_V", OpKind.MATMUL_W, tokens, hidden, hidden, weight_bits=weight_bits),
        Op("Q*K^T", OpKind.MATMUL_A, tokens, seq_len, head_dim, heads=heads),
        Op("softmax", OpKind.SOFTMAX, vectors=heads * tokens, out_dim=seq_len),
        Op("Attn*V", OpKind.MATMUL_A, tokens, head_dim, seq_len, heads=heads),
        Op("O_A*W_s", OpKind.MATMUL_W, tokens, hidden, hidden, weight_bits=weight_bits),
        Op("Add&LN_1", OpKind.LAYERNORM, vectors=tokens, out_dim=hidden),
        Op("FFN1", OpKind.MATMUL_W, tokens, inter, hidden, weight_bits=weight_bits),
        Op("GELU", OpKind.GELU, vectors=tokens, out_dim=inter),
        Op("FFN2", OpKind.MATMUL_W, tokens, hidden, inter, weight_bits=weight_bits),
        Op("Add&LN_2", OpKind.LAYERNORM, vectors=tokens, out_dim=hidden),
    )
    return EncoderWorkload(
        config=config,
        seq_len=seq_len,
        layer_ops=ops,
        num_layers=config.num_hidden_layers,
        batch_size=batch_size,
    )
