"""Cycle-accurate microarchitecture model of one Processing Unit.

The analytic scheduler and the command-stream executor both *assume* the
per-pass timing formula ``ceil(K / lanes) + fill`` and the psum-drain
overlap rules.  This module discharges those assumptions: it models a PU at
the register-transfer level of abstraction — per-cycle state updates of the
BIM input registers, the adder-tree pipeline, the per-PE accumulators, the
ping-pong Psum Buf, and the quantization pipeline — and executes a real
matrix-vector product cycle by cycle.

Two things are checked against it in the tests:

1. **Function**: the drained, requantized outputs equal
   :class:`repro.quant.IntegerLinear` bit for bit.
2. **Timing**: the measured cycle count matches the analytic per-pass
   formula (pipeline fill + chunks + exposed drain) exactly, for both psum
   buffering modes.

This is the deepest level of the simulation stack; it runs small shapes
only (it is a Python loop per cycle) and exists to certify the faster
models above it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..quant.fixedpoint import FixedPointMultiplier, saturate
from .bim import Bim, BimMode, BimType


@dataclass
class PipelineStage:
    """One register stage: holds a value for exactly one cycle."""

    value: Optional[object] = None


@dataclass
class QuantUnit:
    """The quantization module: a ``depth``-stage pipeline, one psum/cycle."""

    requant: FixedPointMultiplier
    depth: int = 4
    out_bits: int = 8
    stages: List[PipelineStage] = field(default_factory=list)
    drained: List[int] = field(default_factory=list)

    def __post_init__(self):
        self.stages = [PipelineStage() for _ in range(self.depth)]

    def tick(self, accepted: Optional[int]) -> None:
        """Advance one cycle, optionally accepting one accumulator value."""
        out = self.stages[-1].value
        for index in range(self.depth - 1, 0, -1):
            self.stages[index].value = self.stages[index - 1].value
        self.stages[0].value = accepted
        if out is not None:
            code = int(saturate(self.requant.apply(np.array([out])), self.out_bits)[0])
            self.drained.append(code)

    @property
    def busy(self) -> bool:
        return any(stage.value is not None for stage in self.stages)


class ProcessingUnitRTL:
    """Cycle-accurate PU: N PEs fed by a shared activation broadcast.

    Execution of one *pass* (N output rows over a length-K contraction):

    - ``fill`` cycles of pipeline refill (weight-row switch + adder tree),
    - ``ceil(K / lanes)`` compute cycles, each performing one BIM dot per PE,
    - the pass's N accumulators land in the active Psum Buf half; the quant
      unit drains one per cycle.  With a ping-pong buffer the next pass may
      start immediately (the quant unit drains the other half in parallel)
      *unless* the previous drain has not finished — exactly the stall rule
      the analytic model charges.
    """

    def __init__(
        self,
        num_pes: int,
        bim: Bim,
        requant: FixedPointMultiplier,
        pipeline_fill: int = 4,
        quant_depth: int = 4,
        double_buffer_psum: bool = True,
    ):
        self.num_pes = num_pes
        self.bim = bim
        self.pipeline_fill = pipeline_fill
        self.double_buffer_psum = double_buffer_psum
        self.quant = QuantUnit(requant, depth=quant_depth)
        self.cycle = 0

    def _tick(self, accept: Optional[int] = None) -> None:
        self.quant.tick(accept)
        self.cycle += 1

    def run_matvec(
        self,
        weights: np.ndarray,      # (out_dim, k) integer codes
        activations: np.ndarray,  # (k,) integer codes
        bias: Optional[np.ndarray] = None,
        mode: BimMode = BimMode.MODE_8x4,
        act_signed: bool = True,
    ) -> np.ndarray:
        """Execute the full matvec cycle by cycle; returns output codes."""
        weights = np.asarray(weights, dtype=np.int64)
        activations = np.asarray(activations, dtype=np.int64)
        out_dim, k = weights.shape
        lanes = self.bim.lanes_8x4 if mode is BimMode.MODE_8x4 else self.bim.lanes_8x8
        chunks = int(np.ceil(k / lanes))
        passes = int(np.ceil(out_dim / self.num_pes))

        pending_drain: List[int] = []  # accumulators awaiting the quant unit
        for pass_index in range(passes):
            rows = range(
                pass_index * self.num_pes, min((pass_index + 1) * self.num_pes, out_dim)
            )
            # Stall until the psum half we need is free: ping-pong hides the
            # drain behind this pass; a single buffer forces it to finish.
            if not self.double_buffer_psum:
                while pending_drain or self.quant.busy:
                    pending_drain = self._feed(pending_drain)

            # Pipeline refill (weight switch, adder tree latency).
            for _ in range(self.pipeline_fill):
                pending_drain = self._feed(pending_drain)

            # Compute: one chunk of every PE per cycle.
            accumulators = {row: 0 for row in rows}
            for chunk in range(chunks):
                start = chunk * lanes
                stop = min(start + lanes, k)
                act = activations[start:stop]
                if act.shape[0] < lanes:
                    act = np.pad(act, (0, lanes - act.shape[0]))
                for row in rows:
                    wchunk = weights[row, start:stop]
                    if wchunk.shape[0] < lanes:
                        wchunk = np.pad(wchunk, (0, lanes - wchunk.shape[0]))
                    if mode is BimMode.MODE_8x4:
                        accumulators[row] += self.bim.dot_8x4(act, wchunk, act_signed)
                    else:
                        accumulators[row] += self.bim.dot_8x8(act, wchunk, act_signed)
                pending_drain = self._feed(pending_drain)

            # With ping-pong, the completed pass's accumulators queue behind
            # whatever is still draining; the *next* pass can only start once
            # the queue is at most one half deep.
            for row in rows:
                value = accumulators[row]
                if bias is not None:
                    value += int(bias[row])
                pending_drain.append(value)
            if self.double_buffer_psum:
                while len(pending_drain) > self.num_pes:
                    pending_drain = self._feed(pending_drain)

        # Final drain.
        while pending_drain or self.quant.busy:
            pending_drain = self._feed(pending_drain)
        return np.array(self.quant.drained, dtype=np.int64)

    def _feed(self, pending: List[int]) -> List[int]:
        """One cycle: hand at most one pending accumulator to the quant unit."""
        if pending:
            self._tick(pending[0])
            return pending[1:]
        self._tick(None)
        return pending


def analytic_matvec_cycles(
    out_dim: int,
    k: int,
    num_pes: int,
    bim: Bim,
    mode: BimMode = BimMode.MODE_8x4,
    pipeline_fill: int = 4,
    quant_depth: int = 4,
    double_buffer_psum: bool = True,
) -> int:
    """The exact closed-form cycle count of :class:`ProcessingUnitRTL`.

    With the ping-pong Psum Buf, a pass's N drains hide behind the *next*
    pass's ``fill + chunks`` cycles; only the excess stalls, and only the
    final pass pays its row count plus the quant pipeline flush:

    ``passes * (fill + chunks) + (passes-1) * max(0, N - fill - chunks)
    + last_rows + depth``

    Single-buffered, every pass serializes its full drain (N + depth).
    This law is certified cycle-exactly against the RTL model by the tests;
    the coarse scheduler charges a slightly more conservative variant.
    """
    lanes = bim.lanes_8x4 if mode is BimMode.MODE_8x4 else bim.lanes_8x8
    chunks = int(np.ceil(k / lanes))
    passes = int(np.ceil(out_dim / num_pes))
    pass_cycles = pipeline_fill + chunks
    last_rows = out_dim - (passes - 1) * num_pes
    if double_buffer_psum:
        stall = max(0, num_pes - pass_cycles)
        return passes * pass_cycles + (passes - 1) * stall + last_rows + quant_depth
    # Single-buffered: every pass serializes draining its actual row count.
    return (
        passes * pass_cycles
        + (passes - 1) * (num_pes + quant_depth)
        + last_rows
        + quant_depth
    )
