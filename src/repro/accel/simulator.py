"""Top-level accelerator simulator: performance, resources, power in one call.

``AcceleratorSimulator`` ties the pieces together:

- :meth:`simulate` — schedule a BERT inference (Figure 5 dataflow) and
  return latency/throughput/energy plus the resource estimate, i.e. one row
  of Tables III/IV.
- :meth:`run_functional` — execute an :class:`IntegerBertForSequenceClassification`
  through the PE-array/softmax-core/LN-core functional models, verifying the
  datapath is bit-exact with the integer engine (the hardware-equivalence
  check a real tape-out flow would run against RTL simulation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..bert.config import BertConfig
from ..quant.integer_model import (
    IntegerBertForSequenceClassification,
    _merge_heads_np,
    _split_heads_np,
)
from .bim import BimMode
from .config import AcceleratorConfig
from .cores import LnCore, SoftmaxCore
from .devices import FpgaDevice, ZCU102
from .pe import ProcessingUnit
from .resources import ResourceEstimate, estimate_resources
from .scheduler import ScheduleResult, Scheduler
from .workload import EncoderWorkload, build_encoder_workload


@dataclass
class SimulationReport:
    """One design point's full evaluation (a row of Tables III/IV)."""

    config: AcceleratorConfig
    device: FpgaDevice
    schedule: ScheduleResult
    resources: ResourceEstimate
    power_watts: float

    @property
    def latency_ms(self) -> float:
        return self.schedule.latency_ms

    @property
    def throughput_fps(self) -> float:
        return self.schedule.throughput_fps

    @property
    def fps_per_watt(self) -> float:
        return self.throughput_fps / self.power_watts

    @property
    def energy_per_inference_mj(self) -> float:
        return self.power_watts * self.latency_ms

    def fits_device(self) -> bool:
        return self.resources.fits(self.device)

    @property
    def headroom(self) -> float:
        """Smallest per-resource free fraction on the report's device."""
        return self.resources.headroom(self.device)

    def to_dict(self) -> Dict:
        """JSON-ready report of this design point (``repro-design/1``).

        The one report shape shared by ``repro.cli simulate --json`` and
        the design-space explorer's candidate entries, so single-point
        evaluations and sweep results are scriptable with the same keys.
        All values come from the analytic models — deterministic on every
        machine.
        """
        config = self.config
        return {
            "schema": "repro-design/1",
            "device": self.device.name,
            "config": {
                "num_pus": config.num_pus,
                "num_pes": config.num_pes,
                "num_multipliers": config.num_multipliers,
                "bim_type": config.bim_type.value,
                "frequency_mhz": config.frequency_mhz,
            },
            "latency_ms": self.latency_ms,
            "throughput_fps": self.throughput_fps,
            "power_watts": self.power_watts,
            "energy_per_inference_mj": self.energy_per_inference_mj,
            "fps_per_watt": self.fps_per_watt,
            "resources": {
                "bram18k": self.resources.bram18k,
                "dsp48": self.resources.dsp48,
                "ff": self.resources.ff,
                "lut": self.resources.lut,
                "uram": self.resources.uram,
            },
            "utilization": self.resources.utilization(self.device),
            "headroom": self.headroom,
            "fits_device": self.fits_device(),
        }

    def summary(self) -> Dict[str, float]:
        return {
            "latency_ms": self.latency_ms,
            "throughput_fps": self.throughput_fps,
            "power_watts": self.power_watts,
            "fps_per_watt": self.fps_per_watt,
            "dsp48": self.resources.dsp48,
            "bram18k": self.resources.bram18k,
            "ff": self.resources.ff,
            "lut": self.resources.lut,
        }


class AcceleratorSimulator:
    """Simulator for one accelerator configuration on one FPGA device."""

    def __init__(self, config: AcceleratorConfig, device: FpgaDevice = ZCU102):
        self.config = config
        self.device = device
        self.scheduler = Scheduler(config)

    # ------------------------------------------------------------------
    # performance / resource / power evaluation
    # ------------------------------------------------------------------
    def simulate(
        self,
        model: BertConfig,
        seq_len: int = 128,
        workload: Optional[EncoderWorkload] = None,
        batch_size: int = 1,
    ) -> SimulationReport:
        """Evaluate one design point on one (possibly batched) inference.

        ``batch_size > 1`` builds a batch-aware workload: every op's vector
        count scales with the batch while the weight stream stays fixed,
        so the schedule reflects the amortization batching buys.  An
        explicit ``workload`` overrides both ``seq_len`` and ``batch_size``.
        """
        workload = workload or build_encoder_workload(
            model, seq_len=seq_len, batch_size=batch_size
        )
        schedule = self.scheduler.schedule(workload)
        resources = estimate_resources(self.config, model, seq_len=seq_len, device=self.device)
        power = self.device.power(resources.dsp48)
        return SimulationReport(
            config=self.config,
            device=self.device,
            schedule=schedule,
            resources=resources,
            power_watts=power,
        )

    # ------------------------------------------------------------------
    # functional (bit-exact) execution on the modeled datapath
    # ------------------------------------------------------------------
    def run_functional(
        self,
        integer_model: IntegerBertForSequenceClassification,
        input_ids: np.ndarray,
        attention_mask: Optional[np.ndarray] = None,
        token_type_ids: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Execute the integer model through the PE/core functional models.

        Every matmul goes through :class:`ProcessingUnit.matvec` (BIM
        arithmetic, 8x4 for weights and 8x8 for activation pairs), softmax
        through :class:`SoftmaxCore`, Add&LN through :class:`LnCore`.
        Returns logits; bit-exact with ``integer_model.forward`` because all
        the underlying integer arithmetic is exact.
        """
        pu = ProcessingUnit(num_pes=self.config.num_pes, bim=_bim_of(self.config))
        codes = integer_model._embed_fn(np.asarray(input_ids), token_type_ids)
        for layer in integer_model.layers:
            codes = self._run_layer(pu, layer, codes, attention_mask)
        final_scale = integer_model.layers[-1].output_layernorm.out_scale
        return integer_model._head_fn(codes / final_scale)

    def _run_layer(self, pu, layer, x_codes, attention_mask):
        attn = layer.attention
        q = self._pe_linear(pu, attn.query, x_codes)
        k = self._pe_linear(pu, attn.key, x_codes)
        v = self._pe_linear(pu, attn.value, x_codes)

        q = _split_heads_np(q, attn.num_heads)
        k = _split_heads_np(k, attn.num_heads)
        v = _split_heads_np(v, attn.num_heads)

        # Q*K^T on the PEs in 8x8 mode, one head per PU.
        from ..quant.fixedpoint import saturate

        batch, heads, seq, head_dim = q.shape
        scores = np.zeros((batch, heads, seq, seq), dtype=np.int64)
        for b in range(batch):
            for h in range(heads):
                for t in range(seq):
                    scores[b, h, t] = pu.matvec(k[b, h], q[b, h, t], BimMode.MODE_8x8)
        score_codes = saturate(attn.score_requant.apply(scores), 8)

        core = SoftmaxCore(attn.score_scale, simd=self.config.softmax_simd)
        mask = attention_mask[:, None, None, :] if attention_mask is not None else None
        prob_codes = core.forward(score_codes, mask=mask)

        context = np.zeros((batch, heads, seq, head_dim), dtype=np.int64)
        for b in range(batch):
            for h in range(heads):
                for t in range(seq):
                    context[b, h, t] = pu.matvec(
                        v[b, h].T, prob_codes[b, h, t], BimMode.MODE_8x8, act_signed=False
                    )
        context_codes = saturate(attn.context_requant.apply(context), 8)
        context_codes = _merge_heads_np(context_codes)

        projected = self._pe_linear(pu, layer.attention_output, context_codes)
        attended = _apply_ln(self.config, layer.attention_layernorm, projected, x_codes)

        intermediate = self._pe_linear(pu, layer.ffn1, attended)
        activated = layer.gelu.forward(intermediate)
        ffn_out = self._pe_linear(pu, layer.ffn2, activated)
        return _apply_ln(self.config, layer.output_layernorm, ffn_out, attended)

    def _pe_linear(self, pu, int_linear, x_codes: np.ndarray) -> np.ndarray:
        """A weight matmul through the PE array (8x4 mode), then requant."""
        from ..quant.fixedpoint import saturate

        batch, seq, _ = x_codes.shape
        out_dim = int_linear.weight_codes.shape[0]
        acc = np.zeros((batch, seq, out_dim), dtype=np.int64)
        for b in range(batch):
            for t in range(seq):
                acc[b, t] = pu.matvec(
                    int_linear.weight_codes, x_codes[b, t], BimMode.MODE_8x4
                )
        if int_linear.bias_codes is not None:
            acc = acc + int_linear.bias_codes
        return saturate(int_linear.requant.apply(acc), int_linear.out_bits)


def _apply_ln(config: AcceleratorConfig, ln, codes_a: np.ndarray, codes_b: np.ndarray):
    """Route Add&LN through the LnCore when the layer uses integer LN."""
    from ..quant.integer_model import IntegerLayerNorm

    if isinstance(ln, IntegerLayerNorm):
        core = LnCore(ln=ln, simd=config.ln_simd)
        return core.forward(codes_a, codes_b)
    return ln.forward(codes_a, codes_b)


def _bim_of(config: AcceleratorConfig):
    from .bim import Bim

    return Bim(config.num_multipliers, config.bim_type)
