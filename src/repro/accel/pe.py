"""Processing Element (PE) and Processing Unit (PU) functional models.

Architecture (Figure 2): the accelerator has ``H`` PUs; each PU contains
``N`` PEs; each PE is one BIM feeding an accumulator whose partial sums land
in a double-buffered Psum Buf and then pass through the quantization module
(bias add + Eq. 5 requantization).

The functional model here is *bit-exact*: ``matvec``/``matmul`` produce the
same integer accumulators as ``x @ W.T`` in int64, because the BIM recombination
is exact.  The cycle-accurate timing lives in :mod:`repro.accel.scheduler`;
keeping function and timing separate lets the tests verify each in isolation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..quant.fixedpoint import FixedPointMultiplier, saturate
from .bim import Bim, BimMode, BimType


@dataclass(frozen=True)
class ProcessingElement:
    """One PE: a BIM plus a 32-bit accumulator.

    ``accumulate_row`` walks a length-K operand pair in chunks of the BIM's
    lane width, exactly as the hardware streams a weight row past the PE.
    """

    bim: Bim

    def accumulate_row(
        self,
        activations: np.ndarray,
        weights: np.ndarray,
        mode: BimMode = BimMode.MODE_8x4,
        act_signed: bool = True,
    ) -> int:
        """Full dot product of one weight row, chunked at BIM lane width.

        ``act_signed=False`` flips the per-multiplier sign signal for
        unsigned activations (the softmax outputs feeding ``Attn·V``).
        """
        activations = np.asarray(activations, dtype=np.int64)
        weights = np.asarray(weights, dtype=np.int64)
        if activations.shape != weights.shape:
            raise ValueError(f"operand shapes differ: {activations.shape} vs {weights.shape}")
        lanes = self.bim.lanes_8x4 if mode is BimMode.MODE_8x4 else self.bim.lanes_8x8
        k = activations.shape[0]
        accumulator = 0
        for start in range(0, k, lanes):
            chunk_a = activations[start : start + lanes]
            chunk_w = weights[start : start + lanes]
            if chunk_a.shape[0] < lanes:  # zero-pad the final partial chunk
                pad = lanes - chunk_a.shape[0]
                chunk_a = np.pad(chunk_a, (0, pad))
                chunk_w = np.pad(chunk_w, (0, pad))
            if mode is BimMode.MODE_8x4:
                accumulator += self.bim.dot_8x4(chunk_a, chunk_w, act_signed=act_signed)
            else:
                accumulator += self.bim.dot_8x8(chunk_a, chunk_w, act_signed=act_signed)
            _check_int32(accumulator)
        return accumulator

    def cycles_per_row(self, k: int, mode: BimMode) -> int:
        """Cycles to stream a length-``k`` dot product through the BIM."""
        lanes = self.bim.lanes_8x4 if mode is BimMode.MODE_8x4 else self.bim.lanes_8x8
        return int(np.ceil(k / lanes))


def _check_int32(value: int) -> None:
    if not (-(2 ** 31) <= value < 2 ** 31):
        raise OverflowError(f"accumulator overflowed int32: {value}")


@dataclass(frozen=True)
class QuantizationModule:
    """The 'Quant' block of Figure 2: bias add + Eq. 5 requantization.

    Pipelined in hardware ("spends more than one cycle", hence the
    double-buffered Psum Buf); functionally it is bias-add, fixed-point
    multiply, and 8-bit saturation.
    """

    requant: FixedPointMultiplier
    out_bits: int = 8
    pipeline_depth: int = 4  # cycles; used by the scheduler's drain model

    def apply(self, accumulators: np.ndarray, bias: Optional[np.ndarray] = None) -> np.ndarray:
        acc = np.asarray(accumulators, dtype=np.int64)
        if bias is not None:
            acc = acc + np.asarray(bias, dtype=np.int64)
        return saturate(self.requant.apply(acc), self.out_bits)


@dataclass(frozen=True)
class ProcessingUnit:
    """One PU: ``N`` PEs sharing a broadcast activation vector.

    Each PE owns one output row of the current weight tile, so a PU
    produces ``N`` outputs per pass.  ``matvec`` runs the whole
    matrix-vector product a PU would execute over several passes.
    """

    num_pes: int
    bim: Bim

    def pe(self) -> ProcessingElement:
        return ProcessingElement(self.bim)

    def matvec(
        self,
        weights: np.ndarray,  # (out_dim, k) integer codes
        activations: np.ndarray,  # (k,) integer codes
        mode: BimMode = BimMode.MODE_8x4,
        act_signed: bool = True,
    ) -> np.ndarray:
        """Bit-exact matrix-vector product as executed by the PE array."""
        weights = np.asarray(weights, dtype=np.int64)
        activations = np.asarray(activations, dtype=np.int64)
        out_dim, k = weights.shape
        element = self.pe()
        outputs = np.zeros(out_dim, dtype=np.int64)
        for row in range(out_dim):
            outputs[row] = element.accumulate_row(
                activations, weights[row], mode, act_signed=act_signed
            )
        return outputs

    def passes(self, out_dim: int) -> int:
        """Number of N-output passes to cover ``out_dim`` rows."""
        return int(np.ceil(out_dim / self.num_pes))


def reference_matvec(weights: np.ndarray, activations: np.ndarray) -> np.ndarray:
    """Plain int64 reference the PE array must match bit-exactly."""
    return np.asarray(weights, dtype=np.int64) @ np.asarray(activations, dtype=np.int64)


def make_pu(num_pes: int, num_multipliers: int, bim_type: BimType = BimType.TYPE_A) -> ProcessingUnit:
    """Convenience constructor for a PU with ``N`` PEs of ``M`` multipliers."""
    return ProcessingUnit(num_pes=num_pes, bim=Bim(num_multipliers, bim_type))
