"""Command-stream model of the accelerator controller (Figure 2, 'Controller').

The analytic scheduler (:mod:`repro.accel.scheduler`) computes closed-form
cycle counts.  This module is the *other* half of a credible performance
methodology: it expands the Figure 5 dataflow into an explicit command
stream — ``LOAD_TILE`` / ``COMPUTE_PASS`` / ``DRAIN_PSUM`` / special-core
commands — and replays it on a small event-driven engine with two resources
(the AXI read channel and the PE array) and a double-buffer dependency rule.

Because the two models are built independently from the same architecture
description, their agreement (checked in the tests within a few percent) is
evidence that neither has a bookkeeping bug — the simulation-level analogue
of RTL-vs-model co-verification.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterator, List, Optional

import numpy as np

from .config import AcceleratorConfig
from .memory import AxiModel
from .workload import EncoderWorkload, Op, OpKind


class CommandKind(Enum):
    """Controller command opcodes."""

    LOAD_TILE = "load_tile"        # DDR -> weight buffer (AXI resource)
    COMPUTE_PASS = "compute_pass"  # one pass of all PEs (PE-array resource)
    DRAIN_PSUM = "drain_psum"      # quantization module drains a PU's psums
    SOFTMAX_ROW = "softmax_row"    # softmax core processes one batch of rows
    LN_TOKENS = "ln_tokens"        # LN core processes the token stream
    SYNC = "sync"                  # stage barrier


@dataclass(frozen=True)
class Command:
    """One controller command with its resource occupancy in cycles."""

    kind: CommandKind
    cycles: int
    stage: str
    tile: int = 0  # which weight tile a LOAD/COMPUTE refers to


@dataclass
class TraceStats:
    """Outcome of replaying a command stream."""

    total_cycles: int
    busy_pe_cycles: int
    busy_axi_cycles: int
    commands: int

    @property
    def pe_utilization(self) -> float:
        return self.busy_pe_cycles / self.total_cycles if self.total_cycles else 0.0


class CommandStreamGenerator:
    """Expand one encoder layer's ops into the controller command stream."""

    def __init__(self, config: AcceleratorConfig, axi: Optional[AxiModel] = None):
        self.config = config
        self.axi = axi or AxiModel(bytes_per_cycle=config.axi_bytes_per_cycle)

    def commands_for_op(self, op: Op) -> Iterator[Command]:
        cfg = self.config
        if op.kind is OpKind.MATMUL_W:
            passes = int(np.ceil(op.out_dim / cfg.total_pes))
            chunk = int(np.ceil(op.contract_dim / cfg.num_multipliers))
            pass_cycles = chunk + cfg.pe_pipeline_fill
            tile_bytes = op.weight_bytes / max(1, passes)
            tile_cycles = self.axi.transfer_cycles(tile_bytes)
            drain = cfg.num_pes + cfg.quant_pipeline_depth
            for tile in range(passes):
                yield Command(CommandKind.LOAD_TILE, tile_cycles, op.name, tile)
                # One pass per token against the resident tile.
                for _ in range(op.vectors):
                    yield Command(CommandKind.COMPUTE_PASS, pass_cycles, op.name, tile)
                    yield Command(CommandKind.DRAIN_PSUM, drain, op.name, tile)
        elif op.kind is OpKind.MATMUL_A:
            lanes = max(1, cfg.num_multipliers // 2)
            rounds = int(np.ceil(op.heads / cfg.num_pus))
            passes = int(np.ceil(op.out_dim / cfg.num_pes))
            chunk = int(np.ceil(op.contract_dim / lanes))
            pass_cycles = chunk + cfg.pe_pipeline_fill
            drain = cfg.num_pes + cfg.quant_pipeline_depth
            for _ in range(rounds * op.vectors * passes):
                yield Command(CommandKind.COMPUTE_PASS, pass_cycles, op.name)
                yield Command(CommandKind.DRAIN_PSUM, drain, op.name)
        elif op.kind is OpKind.SOFTMAX:
            row_scan = int(np.ceil(op.out_dim / cfg.softmax_simd))
            row_cycles = 2 * row_scan + cfg.softmax_pipeline_depth
            yield Command(CommandKind.SOFTMAX_ROW, op.vectors * row_cycles, op.name)
        elif op.kind is OpKind.LAYERNORM:
            token_scan = int(np.ceil(op.out_dim / cfg.ln_simd))
            cycles = (op.vectors + 2) * token_scan + cfg.ln_pipeline_depth
            yield Command(CommandKind.LN_TOKENS, cycles, op.name)
        elif op.kind is OpKind.GELU:
            return  # folded into the FFN1 drain (zero-cost LUT)
        else:
            raise ValueError(f"unknown op kind {op.kind}")
        yield Command(CommandKind.SYNC, self.config.stage_sync_cycles, op.name)

    def layer_stream(self, workload: EncoderWorkload) -> List[Command]:
        commands: List[Command] = []
        for op in workload.layer_ops:
            commands.extend(self.commands_for_op(op))
        return commands


class TraceExecutor:
    """Event-driven replay of a command stream.

    Resource rules:

    - ``LOAD_TILE`` occupies the AXI channel.  With weight double buffering
      the load of tile ``t+1`` may run while tile ``t`` computes; without,
      the load must finish before any compute against that tile starts and
      cannot overlap compute at all.
    - ``COMPUTE_PASS`` occupies the PE array and must wait for its tile's
      load to have finished.
    - ``DRAIN_PSUM`` runs on the quantization pipeline.  With psum double
      buffering it overlaps the next pass; without it blocks the PE array.
    - Special-core commands and ``SYNC`` serialize with the PE array (the
      Figure 5 stages are sequential).
    """

    def __init__(self, config: AcceleratorConfig):
        self.config = config

    def run(self, commands: List[Command]) -> TraceStats:
        cfg = self.config
        pe_free = 0           # next cycle the PE array is free
        axi_free = 0          # next cycle the AXI channel is free
        drain_free = 0        # next cycle the quant pipeline is free
        tile_ready: Dict[tuple, int] = {}  # (stage, tile) -> load finish time
        busy_pe = 0
        busy_axi = 0

        for command in commands:
            if command.kind is CommandKind.LOAD_TILE:
                key = (command.stage, command.tile)
                if cfg.double_buffer_weights:
                    start = axi_free
                else:
                    # Single buffer: the previous tile's compute must fully
                    # finish before its buffer can be overwritten.
                    start = max(axi_free, pe_free)
                finish = start + command.cycles
                axi_free = finish
                tile_ready[key] = finish
                if not cfg.double_buffer_weights:
                    # Compute cannot proceed during the exclusive load.
                    pe_free = max(pe_free, finish)
                busy_axi += command.cycles

            elif command.kind is CommandKind.COMPUTE_PASS:
                key = (command.stage, command.tile)
                start = max(pe_free, tile_ready.get(key, 0), drain_free_blocking(cfg, drain_free, pe_free))
                finish = start + command.cycles
                pe_free = finish
                busy_pe += command.cycles

            elif command.kind is CommandKind.DRAIN_PSUM:
                if cfg.double_buffer_psum:
                    # Overlaps the next pass; occupies only the quant pipeline.
                    drain_free = max(drain_free, pe_free) + command.cycles
                else:
                    # Blocks the array until drained.
                    pe_free = max(pe_free, drain_free, pe_free) + command.cycles
                    drain_free = pe_free

            else:  # SOFTMAX_ROW / LN_TOKENS / SYNC serialize on the array
                start = max(pe_free, drain_free)
                pe_free = start + command.cycles

        total = max(pe_free, axi_free, drain_free)
        return TraceStats(
            total_cycles=int(total),
            busy_pe_cycles=int(busy_pe),
            busy_axi_cycles=int(busy_axi),
            commands=len(commands),
        )


def drain_free_blocking(cfg: AcceleratorConfig, drain_free: int, pe_free: int) -> int:
    """With a double-buffered Psum Buf, a new pass may start as soon as the
    *other* half is free — i.e. once the drain pipeline has caught up to the
    previous pass.  Single-buffered handling blocks inside DRAIN_PSUM."""
    if cfg.double_buffer_psum:
        return drain_free - (cfg.num_pes + cfg.quant_pipeline_depth)
    return 0


def replay_workload(
    workload: EncoderWorkload, config: AcceleratorConfig
) -> TraceStats:
    """Generate + replay the full-model command stream; returns totals."""
    generator = CommandStreamGenerator(config)
    layer = generator.layer_stream(workload)
    stats = TraceExecutor(config).run(layer)
    return TraceStats(
        total_cycles=stats.total_cycles * workload.num_layers,
        busy_pe_cycles=stats.busy_pe_cycles * workload.num_layers,
        busy_axi_cycles=stats.busy_axi_cycles * workload.num_layers,
        commands=stats.commands * workload.num_layers,
    )
