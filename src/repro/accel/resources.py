"""FPGA resource model, calibrated against Table III.

The model is structural-affine: each term corresponds to a hardware block
whose count scales with an architectural parameter, and the coefficients
are calibrated so that the three implemented design points of Table III are
matched (exactly, for DSP/FF/LUT — three points, three coefficients each):

- **DSP48**: one per 8b x 4b multiplier (H*N*M), plus accumulate/shift-add
  DSPs per BIM lane group (5/6 per multiplier column per PU, i.e. ~0.83*H*M),
  plus a fixed 55 for the softmax core divider, LN core SIMD lanes, and the
  requantization multipliers.
- **FF / LUT**: per-multiplier pipeline registers/logic (H*N*M), per-PE
  accumulator + quantization pipeline (H*N), plus a fixed base (controller,
  AXI, buffers' glue).
- **BRAM18K**: computed bottom-up from the Figure 2 buffer inventory
  (:mod:`repro.accel.buffers`) plus a calibrated fixed block for FIFOs and
  HLS-inferred storage.  On ZCU111 the big activation buffers map to URAM
  (the Table III footnote), which the model reports separately.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..bert.config import BertConfig
from .bim import Bim, BimType
from .buffers import build_buffer_set
from .config import AcceleratorConfig
from .devices import FpgaDevice

# Calibrated coefficients (exact fit to Table III's three design points).
_DSP_PER_MULTIPLIER = 1.0
_DSP_PER_PU_LANE = 5.0 / 6.0     # x H*M: psum accumulate/shift-add in DSP48
_DSP_FIXED = 55.0                # softmax divider, LN SIMD, requant multipliers

_FF_PER_MULTIPLIER = 32.85
_FF_PER_PE = 276.8
_FF_FIXED = 47403.0

_LUT_PER_MULTIPLIER = 23.13
_LUT_PER_PE = 323.3
_LUT_FIXED = 56592.0

# Buffer blocks that HLS maps to URAM when the device has URAM columns.
_URAM_CAPACITY_BITS = 288 * 1024


@dataclass(frozen=True)
class ResourceEstimate:
    """Estimated resource usage of one design point."""

    bram18k: int
    dsp48: int
    ff: int
    lut: int
    uram: int = 0

    def fits(self, device: FpgaDevice) -> bool:
        return device.fits(self.bram18k, self.dsp48, self.ff, self.lut) and (
            self.uram <= device.uram
        )

    def utilization(self, device: FpgaDevice) -> Dict[str, float]:
        utilization = {
            "BRAM18K": self.bram18k / device.bram18k,
            "DSP48E": self.dsp48 / device.dsp48,
            "FF": self.ff / device.ff,
            "LUT": self.lut / device.lut,
        }
        if device.uram > 0:
            utilization["URAM"] = self.uram / device.uram
        return utilization

    def headroom(self, device: FpgaDevice) -> float:
        """Smallest per-resource free fraction on ``device``.

        The binding constraint of the design-space explorer: 0.3 means the
        tightest resource class still has 30% of the device left.  Negative
        when the design does not fit; a URAM-using design on a URAM-less
        part reports -1.0 (categorically infeasible).
        """
        fractions = [1.0 - used for used in self.utilization(device).values()]
        if self.uram > 0 and device.uram == 0:
            fractions.append(-1.0)
        return min(fractions)


def estimate_dsp(config: AcceleratorConfig) -> int:
    h, n, m = config.num_pus, config.num_pes, config.num_multipliers
    return int(
        round(
            _DSP_PER_MULTIPLIER * h * n * m
            + _DSP_PER_PU_LANE * h * m
            + _DSP_FIXED
        )
    )


def estimate_ff(config: AcceleratorConfig) -> int:
    h, n, m = config.num_pus, config.num_pes, config.num_multipliers
    return int(round(_FF_PER_MULTIPLIER * h * n * m + _FF_PER_PE * h * n + _FF_FIXED))


def estimate_lut(config: AcceleratorConfig) -> int:
    h, n, m = config.num_pus, config.num_pes, config.num_multipliers
    base = _LUT_PER_MULTIPLIER * h * n * m + _LUT_PER_PE * h * n + _LUT_FIXED
    # The calibration points use Type A BIMs; Type B pays extra shifters
    # (M/2 per BIM instead of 1) but saves the rearrangement muxes.
    type_a = Bim(m, BimType.TYPE_A).lut_cost()
    actual = Bim(m, config.bim_type).lut_cost()
    base += (actual - type_a) * h * n
    return int(round(base))


def estimate_bram(
    config: AcceleratorConfig,
    model: BertConfig,
    seq_len: int = 128,
    device: Optional[FpgaDevice] = None,
) -> Dict[str, int]:
    """BRAM18K (and URAM) estimate from the buffer inventory.

    Returns ``{"bram18k": ..., "uram": ...}``.  With a URAM-bearing device
    the large sequential buffers (input/output/intermediate) move to URAM,
    reproducing the ZCU111 footnote of Table III.
    """
    buffers = build_buffer_set(config, model, seq_len=seq_len)
    fifo_and_glue = 96  # HLS dataflow FIFOs, AXI adapters (calibrated)

    uram = 0
    bram = fifo_and_glue
    for buffer in buffers:
        if device is not None and device.uram > 0 and buffer.name in (
            "input_buf",
            "output_buf",
            "intermediate_buf",
        ):
            uram += int(np.ceil(buffer.capacity_bits / _URAM_CAPACITY_BITS))
        else:
            bram += buffer.bram18k()
    return {"bram18k": bram, "uram": uram}


def estimate_resources(
    config: AcceleratorConfig,
    model: BertConfig,
    seq_len: int = 128,
    device: Optional[FpgaDevice] = None,
) -> ResourceEstimate:
    """Full resource estimate for one design point."""
    memory = estimate_bram(config, model, seq_len=seq_len, device=device)
    return ResourceEstimate(
        bram18k=memory["bram18k"],
        dsp48=estimate_dsp(config),
        ff=estimate_ff(config),
        lut=estimate_lut(config),
        uram=memory["uram"],
    )
