"""Softmax core and LN core: functional models of the special-function units.

These wrap the bit-accurate arithmetic from :mod:`repro.quant` with the
hardware organization described in Sec. III-B: the softmax core's two-pass
row scan over a 256-entry exp LUT, and the LN core's coarse-grained 3-stage
SIMD pipeline.  Cycle counts mirror :mod:`repro.accel.scheduler` so the
functional and timing models stay consistent (a property the tests check).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..quant.fixedpoint import FixedPointMultiplier
from ..quant.integer_model import IntegerLayerNorm, LN_FRAC_BITS
from ..quant.softmax_lut import build_exp_lut, quantized_softmax


@dataclass
class SoftmaxCore:
    """LUT-based softmax unit (Figure 2, right).

    The exp LUT is loaded into the parameter buffer at initialization; at
    run time the core performs, per row: pass 1 — find the max and read the
    LUT for every element while accumulating the denominator; pass 2 —
    normalize each numerator.  ``simd`` elements are processed per cycle.
    """

    score_scale: float
    simd: int = 16
    pipeline_depth: int = 8

    def __post_init__(self):
        self.lut = build_exp_lut(self.score_scale)
        if len(self.lut) != 256:
            raise ValueError("softmax core expects a 256-entry LUT")

    def forward(
        self, score_codes: np.ndarray, mask: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Bit-accurate softmax over the last axis (8-bit codes out)."""
        outputs, _ = quantized_softmax(
            score_codes, self.score_scale, lut=self.lut, mask=mask
        )
        return outputs

    def cycles(self, num_rows: int, row_len: int) -> int:
        """Total cycles for ``num_rows`` independent rows."""
        row_scan = int(np.ceil(row_len / self.simd))
        return num_rows * (2 * row_scan + self.pipeline_depth)


@dataclass
class LnCore:
    """The 3-stage pipelined SIMD layer-normalization unit (Sec. III-B).

    Stage 1 consumes two input vectors with two scaling factors and produces
    the aligned sum and its mean; stage 2 subtracts the mean and computes
    the variance; stage 3 applies gamma/beta and requantizes.  The
    arithmetic is exactly :class:`repro.quant.IntegerLayerNorm`; this class
    adds the stage decomposition and timing.
    """

    ln: IntegerLayerNorm
    simd: int = 16
    pipeline_depth: int = 6

    def stage1(self, codes_a: np.ndarray, codes_b: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Align-and-add plus mean (returns the Q.15 vector and its mean)."""
        v = self.ln.align_a.apply(codes_a.astype(np.int64)) + self.ln.align_b.apply(
            codes_b.astype(np.int64)
        )
        mean = np.rint(v.sum(axis=-1, keepdims=True) / v.shape[-1]).astype(np.int64)
        return v, mean

    def stage2(self, v: np.ndarray, mean: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Center and compute the integer std (Q.15)."""
        from ..quant.fixedpoint import integer_isqrt

        centered = v - mean
        var = (centered * centered).sum(axis=-1, keepdims=True) // v.shape[-1]
        std = integer_isqrt(var + self.ln.eps_fx)
        return centered, std

    def stage3(self, centered: np.ndarray, std: np.ndarray) -> np.ndarray:
        """Normalize, apply gamma/beta, requantize to 8-bit codes."""
        from ..quant.fixedpoint import saturate

        normalized = (centered << LN_FRAC_BITS) // np.maximum(std, 1)
        acc = normalized * self.ln.gamma_codes.astype(np.int64) + (
            self.ln.beta_codes.astype(np.int64) << LN_FRAC_BITS
        )
        return saturate(self.ln.out_requant.apply(acc), 8)

    def forward(self, codes_a: np.ndarray, codes_b: np.ndarray) -> np.ndarray:
        """Run all three stages; must equal ``IntegerLayerNorm.forward``."""
        v, mean = self.stage1(codes_a, codes_b)
        centered, std = self.stage2(v, mean)
        return self.stage3(centered, std)

    def cycles(self, num_tokens: int, width: int) -> int:
        token_scan = int(np.ceil(width / self.simd))
        return (num_tokens + 2) * token_scan + self.pipeline_depth


def make_ln_core(
    gamma_codes: np.ndarray,
    beta_codes: np.ndarray,
    scale_a: float,
    scale_b: float,
    out_scale: float,
    eps: float = 1e-5,
    simd: int = 16,
) -> LnCore:
    """Build an LnCore directly from scales (used by unit tests)."""
    from ..quant.fixedpoint import LN_PARAM_FORMAT

    two_f = 2.0 ** LN_FRAC_BITS
    ln = IntegerLayerNorm(
        gamma_codes=np.asarray(gamma_codes, dtype=np.int64),
        beta_codes=np.asarray(beta_codes, dtype=np.int64),
        align_a=FixedPointMultiplier.from_float(two_f / scale_a),
        align_b=FixedPointMultiplier.from_float(two_f / scale_b),
        out_requant=FixedPointMultiplier.from_float(
            out_scale / 2.0 ** (LN_FRAC_BITS + LN_PARAM_FORMAT.frac_bits)
        ),
        out_scale=out_scale,
        eps_fx=int(round(eps * 2.0 ** (2 * LN_FRAC_BITS))),
    )
    return LnCore(ln=ln, simd=simd)
