"""Lowering: compile a BERT encoder layer into an addressed program.

A real accelerator stack has a compiler between the model and the command
stream: something must decide *where* each tensor lives in the on-chip
buffers, reuse the space of dead tensors, check that everything fits, plan
the weight tiles, and emit instructions with concrete addresses.  This
module is that layer:

- :class:`BufferAllocator` — first-fit allocator with ``free`` over one
  on-chip buffer, so tensor lifetimes drive reuse (F1 can take O_A's bytes
  once the attention output is consumed).
- :func:`lower_layer` — walk the Figure 5 stages, allocate each tensor at
  its birth and free it at its death, and emit a :class:`Program` of
  addressed instructions, statically validated.

The program's stage/tile structure is consistent with
:mod:`repro.accel.trace` and its DRAM traffic matches the workload model —
both checked by tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..bert.config import BertConfig
from .buffers import OnChipBuffer, build_buffer_set
from .config import AcceleratorConfig
from .workload import OpKind, build_encoder_workload


class LoweringError(Exception):
    """Raised when a model does not fit the accelerator's buffers."""


@dataclass(frozen=True)
class Region:
    """A named byte range inside one on-chip buffer."""

    buffer: str
    offset: int   # bytes
    size: int     # bytes
    name: str

    @property
    def end(self) -> int:
        return self.offset + self.size

    def overlaps(self, other: "Region") -> bool:
        return self.buffer == other.buffer and not (
            self.end <= other.offset or other.end <= self.offset
        )


class BufferAllocator:
    """First-fit allocator with free-list reuse for one on-chip buffer."""

    def __init__(self, buffer: OnChipBuffer):
        self.buffer = buffer
        # capacity_bits describes one copy; double buffering doubles the
        # physical storage (the ping/pong halves the compiler addresses).
        physical = buffer.capacity_bits * (2 if buffer.double_buffered else 1)
        self.capacity_bytes = physical // 8
        self._free: List[Tuple[int, int]] = [(0, self.capacity_bytes)]  # (offset, size)
        self.active: Dict[str, Region] = {}
        self.peak_bytes = 0

    def allocate(self, name: str, size_bytes: int) -> Region:
        if size_bytes < 0:
            raise ValueError(f"negative allocation for {name}")
        for index, (offset, size) in enumerate(self._free):
            if size >= size_bytes:
                region = Region(self.buffer.name, offset, size_bytes, name)
                remaining = size - size_bytes
                if remaining:
                    self._free[index] = (offset + size_bytes, remaining)
                else:
                    del self._free[index]
                self.active[name] = region
                self.peak_bytes = max(self.peak_bytes, self.used_bytes)
                return region
        raise LoweringError(
            f"buffer {self.buffer.name!r} cannot fit {name!r} "
            f"({size_bytes} B; {self.capacity_bytes - self.used_bytes} B free "
            f"of {self.capacity_bytes}, fragmented into {len(self._free)} blocks)"
        )

    def free(self, name: str) -> None:
        region = self.active.pop(name, None)
        if region is None:
            raise KeyError(f"no active allocation named {name!r}")
        self._free.append((region.offset, region.size))
        self._coalesce()

    def _coalesce(self) -> None:
        self._free.sort()
        merged: List[Tuple[int, int]] = []
        for offset, size in self._free:
            if merged and merged[-1][0] + merged[-1][1] == offset:
                merged[-1] = (merged[-1][0], merged[-1][1] + size)
            else:
                merged.append((offset, size))
        self._free = merged

    @property
    def used_bytes(self) -> int:
        return sum(region.size for region in self.active.values())

    @property
    def peak_utilization(self) -> float:
        return self.peak_bytes / self.capacity_bytes if self.capacity_bytes else 0.0


class InstructionKind(Enum):
    LOAD_WEIGHT_TILE = "load_weight_tile"
    MATVEC = "matvec"          # PE-array pass over a resident tile
    SOFTMAX = "softmax"
    LAYERNORM = "layernorm"
    GELU_LUT = "gelu_lut"


@dataclass(frozen=True)
class Instruction:
    """One addressed instruction of the lowered program."""

    kind: InstructionKind
    stage: str
    sources: Tuple[Region, ...]
    destination: Optional[Region]
    tile: int = 0
    dram_bytes: float = 0.0  # off-chip traffic caused by this instruction


@dataclass
class Program:
    """A lowered encoder layer: allocations + addressed instruction stream."""

    config: AcceleratorConfig
    model: BertConfig
    seq_len: int
    allocators: Dict[str, BufferAllocator]
    tensor_regions: Dict[str, Region] = field(default_factory=dict)
    instructions: List[Instruction] = field(default_factory=list)

    def total_dram_bytes(self) -> float:
        return sum(instruction.dram_bytes for instruction in self.instructions)

    def stage_names(self) -> List[str]:
        seen: List[str] = []
        for instruction in self.instructions:
            if instruction.stage not in seen:
                seen.append(instruction.stage)
        return seen

    def peak_utilization(self) -> Dict[str, float]:
        return {name: alloc.peak_utilization for name, alloc in self.allocators.items()}

    def validate(self) -> None:
        """Static checks: operands in range; concurrently-live tensors disjoint.

        Disjointness among live tensors is guaranteed by the allocator, so
        this re-checks the invariant independently from the recorded
        regions: two tensors whose *instruction windows* overlap must not
        share bytes.
        """
        windows: Dict[str, Tuple[int, int]] = {}
        for index, instruction in enumerate(self.instructions):
            operands = list(instruction.sources)
            if instruction.destination is not None:
                operands.append(instruction.destination)
            for region in operands:
                if region.size < 0 or region.end > self.allocators[region.buffer].capacity_bytes:
                    raise LoweringError(f"region {region.name!r} out of range")
                first, last = windows.get(region.name, (index, index))
                windows[region.name] = (min(first, index), max(last, index))
        regions_by_name = {}
        for instruction in self.instructions:
            for region in list(instruction.sources) + (
                [instruction.destination] if instruction.destination else []
            ):
                regions_by_name[region.name] = region
        names = list(windows)
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                if a.split(":")[0] == b.split(":")[0]:
                    continue  # tiles of one stage intentionally ping-pong
                wa, wb = windows[a], windows[b]
                if wa[0] <= wb[1] and wb[0] <= wa[1]:
                    if regions_by_name[a].overlaps(regions_by_name[b]):
                        raise LoweringError(
                            f"live tensors {a!r} and {b!r} overlap in "
                            f"{regions_by_name[a].buffer}"
                        )


def _act_bytes(elements: int) -> int:
    return elements  # 8-bit activations: one byte per element


def lower_layer(
    model: BertConfig,
    accel: AcceleratorConfig,
    seq_len: int = 128,
    weight_bits: int = 4,
) -> Program:
    """Compile one encoder layer to an addressed, capacity-checked program.

    Tensor placement (Figure 2): the layer input X and the post-attention
    activation X1 live in the input buffer; Q/K/V and the attention matrix
    in the intermediate buffer; the attention output O_A, the FFN hidden F1
    and the layer output X2 share the output buffer via lifetime reuse.
    Raises :class:`LoweringError` if anything does not fit.
    """
    buffers = {b.name: b for b in build_buffer_set(accel, model, seq_len, weight_bits)}
    allocators = {name: BufferAllocator(buffer) for name, buffer in buffers.items()}

    hidden = model.hidden_size
    inter = model.intermediate_size
    heads = model.num_attention_heads

    program = Program(
        config=accel, model=model, seq_len=seq_len, allocators=allocators
    )
    regions = program.tensor_regions

    def alloc(buffer: str, name: str, nbytes: int) -> Region:
        region = allocators[buffer].allocate(name, nbytes)
        regions[name] = region
        return region

    def free(buffer: str, name: str) -> None:
        allocators[buffer].free(name)

    # Births at layer entry.
    alloc("input_buf", "X", _act_bytes(seq_len * hidden))
    alloc("intermediate_buf", "Q", _act_bytes(seq_len * hidden))
    alloc("intermediate_buf", "K", _act_bytes(seq_len * hidden))
    alloc("intermediate_buf", "V", _act_bytes(seq_len * hidden))
    alloc("intermediate_buf", "ATTN", _act_bytes(heads * seq_len * seq_len))
    allocators["psum_buf"].allocate("PSUM", accel.total_pes * 4)

    workload = build_encoder_workload(model, seq_len, weight_bits)
    weight_capacity = allocators["weight_buf"].capacity_bytes
    half_capacity = weight_capacity // 2 if accel.double_buffer_weights else weight_capacity

    def emit_weight_matmul(op, source: Region, destination: Region) -> None:
        passes = int(np.ceil(op.out_dim / accel.total_pes))
        tile_bytes = op.weight_bytes / passes
        if tile_bytes > half_capacity:
            raise LoweringError(
                f"weight tile of stage {op.name!r} ({tile_bytes:.0f} B) exceeds "
                f"a weight-buffer half ({half_capacity} B)"
            )
        resident = int(tile_bytes) * (2 if accel.double_buffer_weights and passes > 1 else 1)
        allocators["weight_buf"].peak_bytes = max(
            allocators["weight_buf"].peak_bytes, resident
        )
        for tile in range(passes):
            tile_region = Region(
                "weight_buf",
                offset=(tile % 2) * int(half_capacity) if accel.double_buffer_weights else 0,
                size=int(tile_bytes),
                name=f"{op.name}:tile{tile}",
            )
            program.instructions.append(
                Instruction(
                    InstructionKind.LOAD_WEIGHT_TILE, op.name, (), tile_region,
                    tile=tile, dram_bytes=tile_bytes,
                )
            )
            program.instructions.append(
                Instruction(
                    InstructionKind.MATVEC, op.name, (source, tile_region),
                    destination, tile=tile,
                )
            )

    ops = {op.name: op for op in workload.layer_ops}

    emit_weight_matmul(ops["X*W_Q"], regions["X"], regions["Q"])
    emit_weight_matmul(ops["X*W_K"], regions["X"], regions["K"])
    emit_weight_matmul(ops["X*W_V"], regions["X"], regions["V"])

    program.instructions.append(
        Instruction(InstructionKind.MATVEC, "Q*K^T", (regions["Q"], regions["K"]), regions["ATTN"])
    )
    free("intermediate_buf", "Q")
    free("intermediate_buf", "K")

    program.instructions.append(
        Instruction(InstructionKind.SOFTMAX, "softmax", (regions["ATTN"],), regions["ATTN"])
    )

    o_a = alloc("output_buf", "O_A", _act_bytes(seq_len * hidden))
    program.instructions.append(
        Instruction(InstructionKind.MATVEC, "Attn*V", (regions["ATTN"], regions["V"]), o_a)
    )
    free("intermediate_buf", "ATTN")
    free("intermediate_buf", "V")

    x1 = alloc("input_buf", "X1", _act_bytes(seq_len * hidden))
    emit_weight_matmul(ops["O_A*W_s"], o_a, x1)
    free("output_buf", "O_A")
    program.instructions.append(
        Instruction(InstructionKind.LAYERNORM, "Add&LN_1", (x1, regions["X"]), x1)
    )
    free("input_buf", "X")

    f1 = alloc("output_buf", "F1", _act_bytes(seq_len * inter))
    emit_weight_matmul(ops["FFN1"], x1, f1)
    program.instructions.append(
        Instruction(InstructionKind.GELU_LUT, "GELU", (f1,), f1)
    )
    x2 = alloc("input_buf", "X2", _act_bytes(seq_len * hidden))
    emit_weight_matmul(ops["FFN2"], f1, x2)
    free("output_buf", "F1")
    program.instructions.append(
        Instruction(InstructionKind.LAYERNORM, "Add&LN_2", (x2, x1), x2)
    )
    free("input_buf", "X1")

    program.validate()
    return program


def lowering_report(program: Program) -> Dict[str, float]:
    """Summary used by examples/tests: peak utilization + traffic."""
    report = {
        f"peak_util_{name}": utilization
        for name, utilization in program.peak_utilization().items()
    }
    report["dram_bytes_per_layer"] = program.total_dram_bytes()
    report["instructions"] = len(program.instructions)
    return report
