"""Cross-model verification harness.

The reproduction maintains four implementations of the FQ-BERT datapath at
different abstraction levels:

1. the QAT fake-quant model (float arithmetic on quantized grids),
2. the integer-only engine (numpy integer kernels),
3. the accelerator functional model (PE arrays + special-function cores),
4. the cycle-accurate PU microarchitecture model (per-cycle RTL-style).

``verify_stack`` runs one set of inputs through all four and reports the
agreement at each boundary — the simulation-level analogue of the
golden-model checks a tape-out flow runs between software model, RTL
simulation, and netlist.  Returns a :class:`VerificationReport`; every
check also carries its tolerance so the report is self-describing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..quant.integer_model import IntegerBertForSequenceClassification, convert_to_integer
from .bim import BimMode
from .config import AcceleratorConfig
from .devices import ZCU102
from .rtl import ProcessingUnitRTL, analytic_matvec_cycles
from .simulator import AcceleratorSimulator


@dataclass
class Check:
    """One verification check's outcome."""

    name: str
    passed: bool
    detail: str


@dataclass
class VerificationReport:
    """All checks of one verification run."""

    checks: List[Check] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(check.passed for check in self.checks)

    def add(self, name: str, passed: bool, detail: str) -> None:
        self.checks.append(Check(name, bool(passed), detail))

    def render(self) -> str:
        lines = ["verification report:"]
        for check in self.checks:
            status = "PASS" if check.passed else "FAIL"
            lines.append(f"  [{status}] {check.name}: {check.detail}")
        lines.append(f"  => {'ALL CHECKS PASSED' if self.passed else 'FAILURES PRESENT'}")
        return "\n".join(lines)


def verify_stack(
    quant_model,
    input_ids: np.ndarray,
    attention_mask: Optional[np.ndarray] = None,
    token_type_ids: Optional[np.ndarray] = None,
    accel_config: Optional[AcceleratorConfig] = None,
    prediction_agreement: float = 0.9,
    logit_tolerance: float = 0.3,
) -> VerificationReport:
    """Run the full verification chain on a trained FQ-BERT.

    Parameters mirror the model's forward; ``accel_config`` defaults to a
    small array (functional results are configuration-independent — that
    itself is one of the checks).
    """
    report = VerificationReport()
    quant_model.eval()
    engine = convert_to_integer(quant_model)

    # 1. QAT fake-quant vs integer engine.
    qat_predictions = quant_model.predict(input_ids, attention_mask, token_type_ids)
    from ..autograd import no_grad

    with no_grad():
        qat_logits = quant_model(input_ids, attention_mask, token_type_ids).data
    engine_predictions = engine.predict(input_ids, attention_mask, token_type_ids)
    engine_logits = engine.forward(input_ids, attention_mask, token_type_ids)
    agreement = float((qat_predictions == engine_predictions).mean())
    report.add(
        "qat_vs_integer_predictions",
        agreement >= prediction_agreement,
        f"agreement {agreement:.3f} (threshold {prediction_agreement})",
    )
    max_logit_diff = float(np.abs(qat_logits - engine_logits).max())
    report.add(
        "qat_vs_integer_logits",
        max_logit_diff <= logit_tolerance,
        f"max |logit diff| {max_logit_diff:.4f} (tolerance {logit_tolerance})",
    )

    # 2. Integer engine vs accelerator functional datapath (bit-exact).
    config = accel_config or AcceleratorConfig(num_pus=2, num_pes=4, num_multipliers=8)
    simulator = AcceleratorSimulator(config, ZCU102)
    hw_logits = simulator.run_functional(
        engine, input_ids, attention_mask, token_type_ids
    )
    exact = bool(np.array_equal(hw_logits, engine_logits))
    report.add(
        "integer_vs_pe_array",
        exact,
        "bit-exact" if exact else
        f"max diff {np.abs(hw_logits - engine_logits).max():.4g}",
    )

    # 3. Configuration independence of the functional result.
    other = AcceleratorSimulator(
        AcceleratorConfig(num_pus=3, num_pes=8, num_multipliers=16), ZCU102
    )
    hw_logits_2 = other.run_functional(engine, input_ids, attention_mask, token_type_ids)
    independent = bool(np.array_equal(hw_logits, hw_logits_2))
    report.add(
        "functional_config_independence",
        independent,
        "identical across (N, M) configurations" if independent else "differs",
    )

    # 4. One weight matmul through the cycle-accurate PU model.
    report.checks.extend(_verify_rtl_linear(engine, config).checks)
    return report


def _verify_rtl_linear(
    engine: IntegerBertForSequenceClassification, config: AcceleratorConfig
) -> VerificationReport:
    """Run the first layer's query projection through the RTL-level PU."""
    report = VerificationReport()
    if not engine.layers:
        report.add("rtl_linear", False, "engine has no layers")
        return report
    linear = engine.layers[0].attention.query
    from .bim import Bim

    rng = np.random.default_rng(0)
    x_codes = rng.integers(-127, 128, size=linear.weight_codes.shape[1])
    from ..quant.fixedpoint import FixedPointMultiplier

    if not isinstance(linear.requant, FixedPointMultiplier):
        report.add("rtl_linear", True, "skipped (per-channel requant)")
        return report
    pu = ProcessingUnitRTL(
        num_pes=config.num_pes,
        bim=Bim(config.num_multipliers, config.bim_type),
        requant=linear.requant,
        pipeline_fill=config.pe_pipeline_fill,
        quant_depth=config.quant_pipeline_depth,
        double_buffer_psum=config.double_buffer_psum,
    )
    rtl_out = pu.run_matvec(linear.weight_codes, x_codes, bias=linear.bias_codes)
    ref_out = linear.forward(x_codes[None])[0]
    exact = bool(np.array_equal(rtl_out, ref_out))
    report.add(
        "rtl_vs_integer_linear",
        exact,
        "bit-exact" if exact else "mismatch",
    )
    expected_cycles = analytic_matvec_cycles(
        linear.weight_codes.shape[0],
        linear.weight_codes.shape[1],
        config.num_pes,
        Bim(config.num_multipliers, config.bim_type),
        mode=BimMode.MODE_8x4,
        pipeline_fill=config.pe_pipeline_fill,
        quant_depth=config.quant_pipeline_depth,
        double_buffer_psum=config.double_buffer_psum,
    )
    report.add(
        "rtl_cycle_law",
        pu.cycle == expected_cycles,
        f"measured {pu.cycle} == closed-form {expected_cycles}"
        if pu.cycle == expected_cycles
        else f"measured {pu.cycle} != closed-form {expected_cycles}",
    )
    return report
