"""Off-chip memory (AXI4) transfer model.

Weights live in off-chip DDR and stream to the FPGA over AXI4 (Sec. III-A).
The model is bandwidth + per-burst overhead: a transfer of ``nbytes`` takes
``ceil(nbytes / bytes_per_cycle)`` data beats plus a fixed address/handshake
overhead per burst.  The scheduler overlaps these cycles with compute when
the weight buffer is double-buffered.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class AxiModel:
    """AXI4 read-channel timing model."""

    bytes_per_cycle: int = 16       # 128-bit data bus at the core clock
    burst_bytes: int = 4096         # max burst length before re-arbitration
    burst_overhead_cycles: int = 8  # address phase + handshake per burst

    def transfer_cycles(self, nbytes: float) -> int:
        """Cycles to move ``nbytes`` from DDR into an on-chip buffer."""
        if nbytes <= 0:
            return 0
        data_cycles = int(np.ceil(nbytes / self.bytes_per_cycle))
        bursts = int(np.ceil(nbytes / self.burst_bytes))
        return data_cycles + bursts * self.burst_overhead_cycles

    def effective_bandwidth(self, nbytes: float, frequency_mhz: float) -> float:
        """Achieved GB/s for a transfer of ``nbytes`` at the given clock."""
        cycles = self.transfer_cycles(nbytes)
        if cycles == 0:
            return 0.0
        seconds = cycles / (frequency_mhz * 1e6)
        return nbytes / seconds / 1e9
