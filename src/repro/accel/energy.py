"""Bottom-up energy model: where the joules go per inference.

The board-level power numbers of Table IV come from the calibrated device
model (:mod:`repro.accel.devices`).  This module complements them with an
*event-based* energy breakdown in the style of Horowitz's ISSCC'14 survey
numbers (scaled to a 16 nm FPGA fabric): energy per MAC at each operand
width, per on-chip buffer access, and per off-chip DRAM byte.  It exposes
which architectural choices actually save energy — 4-bit weights cut both
MAC and DRAM energy, the LUT softmax removes exp() entirely, and weight
compression shrinks the dominant DRAM term by 8x.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from .config import AcceleratorConfig
from .workload import EncoderWorkload, OpKind


@dataclass(frozen=True)
class EnergyParams:
    """Per-event energies in picojoules.

    Defaults are Horowitz-style 45 nm numbers scaled by ~0.4 for a modern
    FPGA node, with the LUT-fabric overhead folded in (FPGA logic costs
    ~10x ASIC): an 8b x 4b MAC lands around 0.3 pJ of dynamic energy, an
    8b x 8b one around 0.5 pJ; SRAM (BRAM) accesses a few pJ per byte;
    DRAM ~160 pJ per byte.  Absolute values carry large error bars — the
    *ratios* (DRAM >> SRAM >> MAC) are what drive the conclusions.
    """

    mac_8x4_pj: float = 0.3
    mac_8x8_pj: float = 0.5
    # Per-byte BRAM energy assuming wide-row reads amortized across the PE
    # array's lanes (a raw single-byte access would cost ~5x more).
    sram_byte_pj: float = 0.5
    dram_byte_pj: float = 160.0
    special_op_pj: float = 1.2   # softmax/LN per-element (LUT + SIMD ALU)
    static_watts: float = 5.93   # board static power (device model)


@dataclass
class EnergyBreakdown:
    """Per-component energy of one inference, in microjoules."""

    components_uj: Dict[str, float] = field(default_factory=dict)

    @property
    def dynamic_uj(self) -> float:
        return sum(self.components_uj.values())

    def total_uj(self, latency_ms: float, params: EnergyParams) -> float:
        """Dynamic + static energy given the inference latency.

        watts * milliseconds = millijoules; * 1000 -> microjoules.
        """
        return self.dynamic_uj + params.static_watts * latency_ms * 1e3

    def dominant_component(self) -> str:
        """The component with the highest energy.

        Ties break to the lexicographically first name (not dict insertion
        order), so the answer is stable however the breakdown was built —
        the explorer's reports lean on this determinism.

        Raises:
            ValueError: If the breakdown has no components.
        """
        if not self.components_uj:
            raise ValueError("empty breakdown has no dominant component")
        return min(self.components_uj.items(), key=lambda kv: (-kv[1], kv[0]))[0]


def estimate_energy(
    workload: EncoderWorkload,
    config: AcceleratorConfig,
    params: EnergyParams = EnergyParams(),
    weight_bits: int = 4,
) -> EnergyBreakdown:
    """Event-count energy estimate of one inference."""
    breakdown = EnergyBreakdown()
    pj = breakdown.components_uj  # accumulate in pJ, convert at the end

    macs_w = workload.total_macs(OpKind.MATMUL_W)
    macs_a = workload.total_macs(OpKind.MATMUL_A)
    pj["mac_8x4"] = macs_w * params.mac_8x4_pj
    pj["mac_8x8"] = macs_a * params.mac_8x8_pj

    # Off-chip: every weight byte crosses DRAM once per inference (weights
    # are streamed, not cached across layers).  The workload carries 4-bit
    # weights; rescale to the storage width under evaluation.
    dram_bytes = workload.total_weight_bytes() * weight_bits / 4.0
    pj["dram_weights"] = dram_bytes * params.dram_byte_pj

    # On-chip SRAM traffic: each MAC reads one activation byte and
    # weight_bits/8 weight byte from BRAM; outputs write once.
    act_reads = macs_w + macs_a
    weight_reads = macs_w * weight_bits / 8.0 + macs_a  # 8x8 reads full bytes
    pj["sram"] = (act_reads + weight_reads) * params.sram_byte_pj / 1.0

    special_elems = 0
    for op in workload.layer_ops:
        if op.kind in (OpKind.SOFTMAX, OpKind.LAYERNORM, OpKind.GELU):
            special_elems += op.vectors * op.out_dim
    pj["special_cores"] = special_elems * workload.num_layers * params.special_op_pj

    breakdown.components_uj = {name: value / 1e6 for name, value in pj.items()}
    return breakdown


def compare_weight_widths(
    workload: EncoderWorkload,
    config: AcceleratorConfig,
    params: EnergyParams = EnergyParams(),
) -> Dict[int, float]:
    """Dynamic energy (uJ) at different weight storage widths.

    Shows the algorithm/hardware co-design payoff: 4-bit weights cut the
    dominant DRAM term 8x relative to fp32 streaming.
    """
    energies = {}
    for bits in (32, 8, 4, 2):
        scaled = EnergyBreakdown()
        base = estimate_energy(workload, config, params, weight_bits=bits)
        scaled.components_uj = dict(base.components_uj)
        # DRAM term scales with the storage width.
        scaled.components_uj["dram_weights"] = (
            workload.total_weight_bytes() * (bits / 4.0) * params.dram_byte_pj / 1e6
        )
        energies[bits] = scaled.dynamic_uj
    return energies
