"""Cycle-level scheduler implementing the Figure 5 dataflow.

The accelerator executes one encoder layer as a sequence of stages
(``X·W_Q`` ... ``Add&LN``), each divided into *sub-stages* (passes) whose
weight tiles stream from DDR while the previous tile computes (Sec. III-C:
"through task-level scheduling, the off-chip transfer can be completely
overlapped by computing" — true exactly when the weight buffer is double
buffered and per-tile transfer time <= per-tile compute time, which the
ablation bench demonstrates).

Timing model per op kind:

- ``MATMUL_W`` (8b x 4b): the output dimension is spread across all
  H*N PEs; each pass streams a length-K dot product through every BIM at M
  lanes/cycle.  Per pass we add a pipeline refill and any non-hidden psum
  drain (the quantization module takes ``quant_pipeline_depth`` cycles and
  drains N psums per PU; the double-buffered Psum Buf hides this unless the
  pass is shorter than the drain).
- ``MATMUL_A`` (8b x 8b): one attention head per PU (H = #heads for
  BERT-base); the BIM fuses multiplier pairs so it offers M/2 lanes.
- ``SOFTMAX``: the softmax core scans each row twice (max+exp/accumulate,
  then normalize) at ``softmax_simd`` lanes.
- ``LAYERNORM``: the 3-stage SIMD LN core, pipelined across tokens.
- ``GELU``: a 256-entry LUT applied during FFN1 writeback — zero extra
  cycles (accounted as overlapped).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from .config import AcceleratorConfig
from .memory import AxiModel
from .workload import EncoderWorkload, Op, OpKind


@dataclass
class StageTiming:
    """Cycle accounting of one Figure 5 stage (one op)."""

    name: str
    kind: str
    compute_cycles: int = 0
    transfer_cycles: int = 0       # total weight-streaming cycles
    hidden_transfer_cycles: int = 0  # portion overlapped with compute
    stall_cycles: int = 0          # psum-drain stalls
    total_cycles: int = 0

    @property
    def exposed_transfer_cycles(self) -> int:
        return self.transfer_cycles - self.hidden_transfer_cycles


@dataclass
class ScheduleResult:
    """Full-inference timing: per-stage breakdown (one layer) and totals."""

    config: AcceleratorConfig
    stages: List[StageTiming] = field(default_factory=list)
    layer_cycles: int = 0
    total_cycles: int = 0
    num_layers: int = 1

    @property
    def latency_ms(self) -> float:
        return self.total_cycles / (self.config.frequency_mhz * 1e3)

    @property
    def throughput_fps(self) -> float:
        return 1000.0 / self.latency_ms if self.total_cycles else 0.0

    def breakdown(self) -> Dict[str, int]:
        """Per-stage total cycles of one layer (for reports/plots)."""
        return {stage.name: stage.total_cycles for stage in self.stages}

    def utilization(self, workload: EncoderWorkload) -> float:
        """Achieved MACs/cycle over peak MACs/cycle (8x4-equivalent)."""
        peak = self.config.total_multipliers
        macs = workload.total_macs(OpKind.MATMUL_W) + 2 * workload.total_macs(
            OpKind.MATMUL_A
        )
        return macs / (peak * self.total_cycles) if self.total_cycles else 0.0


class Scheduler:
    """Schedules an :class:`EncoderWorkload` on an accelerator config.

    ``loop_order`` selects the matmul dataflow:

    - ``"weight_stationary"`` (the paper's Sec. III-C scheduling): a weight
      tile is loaded once and every token streams past it, so each weight
      byte crosses the AXI bus exactly once per layer.
    - ``"token_stationary"``: each token's full matvec completes before the
      next token starts, so every tile reloads per token — the weight
      traffic multiplies by the token count.  Kept as the ablation that
      shows why the paper's loop order is the right one.
    """

    LOOP_ORDERS = ("weight_stationary", "token_stationary")

    def __init__(
        self,
        config: AcceleratorConfig,
        axi: AxiModel = None,
        loop_order: str = "weight_stationary",
    ):
        if loop_order not in self.LOOP_ORDERS:
            raise ValueError(
                f"unknown loop_order {loop_order!r}; choose from {self.LOOP_ORDERS}"
            )
        self.config = config
        self.loop_order = loop_order
        self.axi = axi or AxiModel(bytes_per_cycle=config.axi_bytes_per_cycle)
        self._schedule_cache: Dict[EncoderWorkload, ScheduleResult] = {}

    # ------------------------------------------------------------------
    # per-op timing
    # ------------------------------------------------------------------
    def _drain_stall(self, pass_cycles: int) -> int:
        """Non-hidden psum-drain cycles per pass.

        The quantization module needs ``N + depth`` cycles to drain a PU's
        psums; a double-buffered Psum Buf hides that behind the next pass
        when the pass is long enough, a single-buffered one serializes it.
        """
        drain = self.config.num_pes + self.config.quant_pipeline_depth
        if self.config.double_buffer_psum:
            return max(0, drain - pass_cycles)
        return drain

    def time_matmul_weight(self, op: Op) -> StageTiming:
        cfg = self.config
        lanes = cfg.num_multipliers
        passes = int(np.ceil(op.out_dim / cfg.total_pes))
        chunk = int(np.ceil(op.contract_dim / lanes))
        pass_cycles = chunk + cfg.pe_pipeline_fill
        stall = self._drain_stall(pass_cycles)
        compute = op.vectors * passes * (pass_cycles + stall)

        reloads = op.vectors if self.loop_order == "token_stationary" else 1
        transfer = self.axi.transfer_cycles(op.weight_bytes) * reloads
        tile_bytes = op.weight_bytes / max(1, passes)
        prologue = self.axi.transfer_cycles(tile_bytes)
        if cfg.double_buffer_weights:
            # All but the first tile stream during compute; if the stream is
            # slower than compute the difference is exposed.
            hidden = min(transfer - prologue, max(0, compute - prologue))
            exposed = transfer - hidden
        else:
            hidden = 0
            exposed = transfer
        total = compute + exposed + cfg.stage_sync_cycles
        return StageTiming(
            name=op.name,
            kind=op.kind.value,
            compute_cycles=compute,
            transfer_cycles=transfer,
            hidden_transfer_cycles=hidden,
            stall_cycles=op.vectors * passes * stall,
            total_cycles=total,
        )

    def time_matmul_act(self, op: Op) -> StageTiming:
        cfg = self.config
        lanes = max(1, cfg.num_multipliers // 2)
        rounds = int(np.ceil(op.heads / cfg.num_pus))
        passes = int(np.ceil(op.out_dim / cfg.num_pes))
        chunk = int(np.ceil(op.contract_dim / lanes))
        pass_cycles = chunk + cfg.pe_pipeline_fill
        stall = self._drain_stall(pass_cycles)
        compute = rounds * op.vectors * passes * (pass_cycles + stall)
        total = compute + cfg.stage_sync_cycles
        return StageTiming(
            name=op.name,
            kind=op.kind.value,
            compute_cycles=compute,
            stall_cycles=rounds * op.vectors * passes * stall,
            total_cycles=total,
        )

    def time_softmax(self, op: Op) -> StageTiming:
        cfg = self.config
        row_scan = int(np.ceil(op.out_dim / cfg.softmax_simd))
        # Pass 1 finds the max and accumulates LUT numerators; pass 2
        # normalizes.  Rows pipeline, so the depth is paid once per row.
        row_cycles = 2 * row_scan + cfg.softmax_pipeline_depth
        compute = op.vectors * row_cycles
        return StageTiming(
            name=op.name,
            kind=op.kind.value,
            compute_cycles=compute,
            total_cycles=compute + cfg.stage_sync_cycles,
        )

    def time_layernorm(self, op: Op) -> StageTiming:
        cfg = self.config
        token_scan = int(np.ceil(op.out_dim / cfg.ln_simd))
        # 3-stage pipeline over tokens: steady-state one token per scan.
        compute = (op.vectors + 2) * token_scan + cfg.ln_pipeline_depth
        return StageTiming(
            name=op.name,
            kind=op.kind.value,
            compute_cycles=compute,
            total_cycles=compute + cfg.stage_sync_cycles,
        )

    def time_gelu(self, op: Op) -> StageTiming:
        # The 256-entry GELU LUT is applied as FFN1 results drain through the
        # quantization module — fully overlapped.
        return StageTiming(name=op.name, kind=op.kind.value, total_cycles=0)

    # ------------------------------------------------------------------
    # full schedule
    # ------------------------------------------------------------------
    def schedule_op(self, op: Op) -> StageTiming:
        if op.kind is OpKind.MATMUL_W:
            return self.time_matmul_weight(op)
        if op.kind is OpKind.MATMUL_A:
            return self.time_matmul_act(op)
        if op.kind is OpKind.SOFTMAX:
            return self.time_softmax(op)
        if op.kind is OpKind.LAYERNORM:
            return self.time_layernorm(op)
        if op.kind is OpKind.GELU:
            return self.time_gelu(op)
        raise ValueError(f"unknown op kind: {op.kind}")

    def schedule(self, workload: EncoderWorkload) -> ScheduleResult:
        """Schedule the full encoder: per-layer stages x layer count.

        Memoized per workload: the timing model is a pure function of
        (config, workload), and the serving router re-submits the same
        (config, seq-bucket) workloads on every batch.  The returned
        :class:`ScheduleResult` is shared across calls — treat it as
        read-only.
        """
        cached = self._schedule_cache.get(workload)
        if cached is not None:
            return cached
        result = ScheduleResult(config=self.config, num_layers=workload.num_layers)
        for op in workload.layer_ops:
            result.stages.append(self.schedule_op(op))
        result.layer_cycles = sum(stage.total_cycles for stage in result.stages)
        result.total_cycles = result.layer_cycles * workload.num_layers
        self._schedule_cache[workload] = result
        return result
