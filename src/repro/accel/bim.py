"""Bit-split Inner-product Module (BIM) — Figure 4 of the paper.

The accelerator must serve two multiplication shapes with one datapath:

- 8-bit × 4-bit for activation-weight products (``X·W_Q``, FFN matmuls, ...)
- 8-bit × 8-bit for activation-activation products (``Q·Kᵀ``, ``Attn·V``)

Each BIM contains ``M = 2^m`` 8b×4b multipliers, two adder trees, and
shift-add logic.  In 8/4 mode every multiplier carries an independent
product, so the BIM computes an M-element dot product per cycle.  In 8/8
mode each 8-bit weight is split into a signed high nibble and an unsigned
low nibble; a *pair* of multipliers computes the two partial products and
the shift-add logic recombines them as ``(a·w_hi << 4) + a·w_lo``, so the
BIM computes an (M/2)-element dot product per cycle.

Two shift placements exist (Figure 4):

- **Type A** shifts once at the adder-tree output: all high-nibble products
  are routed into one tree, all low-nibble products into the other, and the
  high tree's sum is shifted before the final add.  One shifter total, but
  the operands must be *rearranged* so that hi/lo products land in the
  right tree — the paper notes this saves resources at the cost of an input
  permutation (the "Format Change" blocks in Figure 2).
- **Type B** shifts every pair's high product before summation: M/2
  shifters, natural operand order.

Both types are bit-exact equals; this module models both and exposes their
differing resource costs.  The functional model asserts the bit-width
invariants a hardware implementation relies on (product widths, adder-tree
growth), so the tests double as a datapath verification suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Tuple

import numpy as np


class BimType(Enum):
    """Shift-add placement variant (Figure 4)."""

    TYPE_A = "A"  # shift at adder-tree output; needs input rearrangement
    TYPE_B = "B"  # shift per multiplier pair; natural operand order


class BimMode(Enum):
    """Multiplication shape served by the BIM in a given cycle."""

    MODE_8x4 = "8x4"
    MODE_8x8 = "8x8"


def _check_range(values: np.ndarray, bits: int, signed: bool, what: str) -> None:
    values = np.asarray(values)
    if signed:
        low, high = -(2 ** (bits - 1)), 2 ** (bits - 1) - 1
    else:
        low, high = 0, 2 ** bits - 1
    if values.size and (values.min() < low or values.max() > high):
        raise ValueError(
            f"{what} out of {bits}-bit {'signed' if signed else 'unsigned'} range "
            f"[{low}, {high}]: got [{values.min()}, {values.max()}]"
        )


def split_nibbles(weights: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Split signed 8-bit weights into (signed high, unsigned low) nibbles.

    ``w = w_hi * 16 + w_lo`` with ``w_hi`` in [-8, 7] and ``w_lo`` in [0, 15]
    — the two's-complement split the BIM's 8/8 mode uses.  The high nibble is
    the arithmetic right shift, the low nibble the raw bottom 4 bits.
    """
    weights = np.asarray(weights, dtype=np.int64)
    _check_range(weights, 8, signed=True, what="8x8-mode weights")
    w_hi = weights >> 4          # arithmetic shift: signed high nibble
    w_lo = weights & 0xF         # unsigned low nibble
    assert np.array_equal(w_hi * 16 + w_lo, weights)
    return w_hi, w_lo


@dataclass(frozen=True)
class Bim:
    """Functional + resource model of one BIM instance."""

    num_multipliers: int  # M = 2^m
    bim_type: BimType = BimType.TYPE_A

    def __post_init__(self):
        m = self.num_multipliers
        if m < 2 or (m & (m - 1)) != 0:
            raise ValueError(f"M must be a power of two >= 2, got {m}")

    @property
    def lanes_8x4(self) -> int:
        """Dot-product length per cycle in 8/4 mode."""
        return self.num_multipliers

    @property
    def lanes_8x8(self) -> int:
        """Dot-product length per cycle in 8/8 mode."""
        return self.num_multipliers // 2

    # ------------------------------------------------------------------
    # functional model
    # ------------------------------------------------------------------
    def dot_8x4(
        self,
        activations: np.ndarray,
        weights: np.ndarray,
        act_signed: bool = True,
    ) -> int:
        """One 8/4-mode cycle: M-element dot product.

        The per-multiplier sign signal lets unsigned activations (softmax
        outputs) share the same hardware; weights are always signed 4-bit.
        """
        activations = np.asarray(activations, dtype=np.int64)
        weights = np.asarray(weights, dtype=np.int64)
        if activations.shape != (self.num_multipliers,) or weights.shape != (
            self.num_multipliers,
        ):
            raise ValueError(
                f"8x4 mode needs exactly M={self.num_multipliers} lane inputs, "
                f"got {activations.shape} and {weights.shape}"
            )
        _check_range(activations, 8, signed=act_signed, what="activations")
        _check_range(weights, 4, signed=True, what="4-bit weights")
        products = activations * weights
        # 8b x 4b products fit in 12 bits signed (or 13 for unsigned acts).
        _check_range(products, 13, signed=True, what="8x4 products")
        return int(self._sum_tree(products))

    def dot_8x8(
        self,
        activations: np.ndarray,
        weights: np.ndarray,
        act_signed: bool = True,
    ) -> int:
        """One 8/8-mode cycle: (M/2)-element dot product via nibble split."""
        activations = np.asarray(activations, dtype=np.int64)
        weights = np.asarray(weights, dtype=np.int64)
        lanes = self.lanes_8x8
        if activations.shape != (lanes,) or weights.shape != (lanes,):
            raise ValueError(
                f"8x8 mode needs exactly M/2={lanes} lane inputs, "
                f"got {activations.shape} and {weights.shape}"
            )
        _check_range(activations, 8, signed=act_signed, what="activations")
        w_hi, w_lo = split_nibbles(weights)

        hi_products = activations * w_hi  # signed 4-bit operand
        lo_products = activations * w_lo  # unsigned 4-bit operand
        _check_range(hi_products, 13, signed=True, what="high-nibble products")
        _check_range(lo_products, 13, signed=True, what="low-nibble products")

        if self.bim_type is BimType.TYPE_A:
            # Rearranged inputs: one tree sums all hi products, the other all
            # lo products; a single shifter applies << 4 to the hi tree's sum.
            hi_sum = self._sum_tree(hi_products)
            lo_sum = self._sum_tree(lo_products)
            return int((hi_sum << 4) + lo_sum)
        # Type B: each pair recombines first (one shifter per pair), then the
        # adder tree sums the per-pair 8x8 products.
        pair_products = (hi_products << 4) + lo_products
        return int(self._sum_tree(pair_products))

    @staticmethod
    def _sum_tree(products: np.ndarray) -> int:
        """Balanced binary adder tree (associativity is exact for ints)."""
        level = [int(p) for p in products]
        while len(level) > 1:
            if len(level) % 2:
                level.append(0)
            level = [level[i] + level[i + 1] for i in range(0, len(level), 2)]
        return level[0]

    # ------------------------------------------------------------------
    # vectorized helpers used by the PE/PU functional simulation
    # ------------------------------------------------------------------
    def dot_8x4_batch(self, activations: np.ndarray, weights: np.ndarray) -> np.ndarray:
        """Vectorized 8/4 dot products over the last axis (length M each)."""
        activations = np.asarray(activations, dtype=np.int64)
        weights = np.asarray(weights, dtype=np.int64)
        if activations.shape[-1] != self.num_multipliers:
            raise ValueError("last axis must equal M")
        return (activations * weights).sum(axis=-1)

    def dot_8x8_batch(self, activations: np.ndarray, weights: np.ndarray) -> np.ndarray:
        """Vectorized 8/8 dot products over the last axis (length M/2 each)."""
        activations = np.asarray(activations, dtype=np.int64)
        weights = np.asarray(weights, dtype=np.int64)
        if activations.shape[-1] != self.lanes_8x8:
            raise ValueError("last axis must equal M/2")
        w_hi = weights >> 4
        w_lo = weights & 0xF
        hi = (activations * w_hi).sum(axis=-1)
        lo = (activations * w_lo).sum(axis=-1)
        return (hi << 4) + lo

    # ------------------------------------------------------------------
    # resource model
    # ------------------------------------------------------------------
    def psum_bits(self, mode: BimMode, act_signed: bool = True) -> int:
        """Bit width of the BIM output partial sum (for buffer sizing)."""
        product_bits = 12 if act_signed else 13
        if mode is BimMode.MODE_8x4:
            growth = int(np.log2(self.num_multipliers))
            return product_bits + growth
        growth = int(np.log2(max(2, self.lanes_8x8)))
        return product_bits + 4 + growth  # << 4 recombination adds 4 bits

    def shifter_count(self) -> int:
        """Number of shift units — the resource difference of Figure 4."""
        if self.bim_type is BimType.TYPE_A:
            return 1
        return self.lanes_8x8

    def lut_cost(self) -> int:
        """Estimated LUTs for the shift-add/select logic (excl. multipliers).

        A 16-bit-ish barrel segment plus the recombine adder costs roughly
        48 LUTs per shifter; Type A additionally pays an input-rearrangement
        mux of about 8 LUTs per lane.  These constants feed the Type A vs
        Type B ablation bench; absolute values are order-of-magnitude HLS
        estimates.
        """
        shifter_luts = 48 * self.shifter_count()
        rearrange_luts = 8 * self.num_multipliers if self.bim_type is BimType.TYPE_A else 0
        tree_luts = 16 * (self.num_multipliers - 1)  # adder tree
        return shifter_luts + rearrange_luts + tree_luts

    def dsp_cost(self) -> int:
        """One DSP48 per 8b x 4b multiplier (the Table III calibration)."""
        return self.num_multipliers
