"""On-chip buffer inventory and BRAM estimation (Figure 2's buffer set).

Each buffer is sized from the model shape and accelerator configuration;
BRAM18K usage follows the standard Xilinx mapping (one BRAM18K holds 18 Kib,
split into banks wide enough for the port).  The weight and psum buffers are
double-buffered, doubling their block count — the trade that buys transfer/
compute overlap (Sec. III-A).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..bert.config import BertConfig
from .config import AcceleratorConfig

BRAM18K_BITS = 18 * 1024


@dataclass(frozen=True)
class OnChipBuffer:
    """One named buffer: capacity, port width, and banking."""

    name: str
    depth: int            # addressable entries
    width_bits: int       # port width per entry
    double_buffered: bool = False

    @property
    def capacity_bits(self) -> int:
        return self.depth * self.width_bits

    def bram18k(self) -> int:
        """BRAM18K blocks: capacity-based banks, at least one per 36b of port.

        A BRAM18K port is at most 36 bits wide, so wide ports force
        parallel banks even when capacity alone would not.
        """
        if self.depth == 0:
            return 0
        width_banks = int(np.ceil(self.width_bits / 36))
        capacity_banks = int(np.ceil(self.capacity_bits / BRAM18K_BITS))
        banks = max(width_banks, capacity_banks)
        return banks * (2 if self.double_buffered else 1)


def build_buffer_set(
    accel: AcceleratorConfig,
    model: BertConfig,
    seq_len: int = 128,
    weight_bits: int = 4,
    act_bits: int = 8,
) -> List[OnChipBuffer]:
    """Instantiate the Figure 2 buffers for a model/accelerator pair."""
    hidden = model.hidden_size
    inter = model.intermediate_size
    heads = model.num_attention_heads
    head_dim = model.head_dim

    # Weight tile: one pass worth of rows for every PE, double buffered so
    # the next tile streams in during compute.  The largest contraction is
    # FFN2's (K = intermediate size).
    tile_rows = accel.total_pes
    max_k = max(hidden, inter)
    weight_buffer = OnChipBuffer(
        "weight_buf",
        depth=tile_rows * max_k,
        width_bits=weight_bits,
        double_buffered=accel.double_buffer_weights,
    )

    # Input/output buffers hold a full activation matrix (seq x hidden).
    io_depth = seq_len * max(hidden, inter)
    input_buffer = OnChipBuffer("input_buf", depth=io_depth, width_bits=act_bits)
    output_buffer = OnChipBuffer("output_buf", depth=io_depth, width_bits=act_bits)

    # Intermediate buffer: Q, K, V (seq x hidden each) + attention matrix
    # (heads x seq x seq), all 8-bit codes.
    qkv_depth = 3 * seq_len * hidden
    attn_depth = heads * seq_len * seq_len
    intermediate_buffer = OnChipBuffer(
        "intermediate_buf", depth=qkv_depth + attn_depth, width_bits=act_bits
    )

    # Psum buffer: one 32-bit accumulator per PE, double buffered so the
    # quantization module drains one half while the PEs fill the other.
    psum_buffer = OnChipBuffer(
        "psum_buf",
        depth=accel.total_pes,
        width_bits=32,
        double_buffered=accel.double_buffer_psum,
    )

    # Parameter buffer: scaling factors, biases, LN parameters, softmax LUT.
    num_tensors_per_layer = 10
    scale_depth = model.num_hidden_layers * num_tensors_per_layer
    bias_depth = 4 * hidden + inter + hidden  # largest layer's biases, int32
    ln_depth = 2 * 2 * hidden                 # two LN blocks' gamma/beta
    lut_depth = 256
    parameter_buffer = OnChipBuffer(
        "param_buf",
        depth=scale_depth + bias_depth + ln_depth + lut_depth,
        width_bits=32,
    )

    _ = head_dim  # head_dim folds into qkv_depth; named for clarity
    return [
        weight_buffer,
        input_buffer,
        output_buffer,
        intermediate_buffer,
        psum_buffer,
        parameter_buffer,
    ]


def total_bram18k(buffers: List[OnChipBuffer]) -> int:
    return sum(buffer.bram18k() for buffer in buffers)


def bram_report(buffers: List[OnChipBuffer]) -> Dict[str, int]:
    report = {buffer.name: buffer.bram18k() for buffer in buffers}
    report["total"] = total_bram18k(buffers)
    return report
