"""FPGA accelerator simulator for FQ-BERT (the paper's Section III).

Components:

- :mod:`bim` — Bit-split Inner-product Module (Figure 4), bit-exact
- :mod:`pe` — PE / PU array functional models
- :mod:`cores` — softmax core (LUT) and LN core (3-stage SIMD)
- :mod:`buffers` — on-chip buffer inventory + BRAM estimation
- :mod:`memory` — AXI4 off-chip transfer model
- :mod:`workload` — the Figure 5 operator stream
- :mod:`scheduler` — cycle-level dataflow scheduling
- :mod:`resources` — Table III-calibrated resource model
- :mod:`devices` — FPGA/CPU/GPU device catalog
- :mod:`simulator` — everything combined: latency, resources, power
"""

from .bim import Bim, BimMode, BimType, split_nibbles
from .buffers import OnChipBuffer, bram_report, build_buffer_set, total_bram18k
from .config import AcceleratorConfig
from .cores import LnCore, SoftmaxCore, make_ln_core
from .devices import (
    COMPUTE_DEVICES,
    CPU_I7_8700,
    FPGA_DEVICES,
    GPU_K80,
    ZCU102,
    ZCU111,
    ComputeDevice,
    FpgaDevice,
)
from .lowering import (
    BufferAllocator,
    Instruction,
    InstructionKind,
    LoweringError,
    Program,
    Region,
    lower_layer,
    lowering_report,
)
from .rtl import ProcessingUnitRTL, analytic_matvec_cycles
from .verification import Check, VerificationReport, verify_stack
from .energy import EnergyBreakdown, EnergyParams, compare_weight_widths, estimate_energy
from .memory import AxiModel
from .trace import (
    Command,
    CommandKind,
    CommandStreamGenerator,
    TraceExecutor,
    TraceStats,
    replay_workload,
)
from .pe import ProcessingElement, ProcessingUnit, QuantizationModule, make_pu, reference_matvec
from .resources import ResourceEstimate, estimate_bram, estimate_dsp, estimate_ff, estimate_lut, estimate_resources
from .scheduler import ScheduleResult, Scheduler, StageTiming
from .simulator import AcceleratorSimulator, SimulationReport
from .workload import EncoderWorkload, Op, OpKind, build_encoder_workload

__all__ = [
    "Bim",
    "BimMode",
    "BimType",
    "split_nibbles",
    "ProcessingElement",
    "ProcessingUnit",
    "QuantizationModule",
    "make_pu",
    "reference_matvec",
    "SoftmaxCore",
    "LnCore",
    "make_ln_core",
    "OnChipBuffer",
    "build_buffer_set",
    "total_bram18k",
    "bram_report",
    "AxiModel",
    "EnergyParams",
    "EnergyBreakdown",
    "estimate_energy",
    "compare_weight_widths",
    "Command",
    "CommandKind",
    "CommandStreamGenerator",
    "TraceExecutor",
    "TraceStats",
    "replay_workload",
    "BufferAllocator",
    "Region",
    "Instruction",
    "InstructionKind",
    "Program",
    "LoweringError",
    "lower_layer",
    "lowering_report",
    "ProcessingUnitRTL",
    "analytic_matvec_cycles",
    "verify_stack",
    "VerificationReport",
    "Check",
    "AcceleratorConfig",
    "EncoderWorkload",
    "Op",
    "OpKind",
    "build_encoder_workload",
    "Scheduler",
    "ScheduleResult",
    "StageTiming",
    "ResourceEstimate",
    "estimate_resources",
    "estimate_dsp",
    "estimate_ff",
    "estimate_lut",
    "estimate_bram",
    "FpgaDevice",
    "ComputeDevice",
    "ZCU102",
    "ZCU111",
    "CPU_I7_8700",
    "GPU_K80",
    "FPGA_DEVICES",
    "COMPUTE_DEVICES",
    "AcceleratorSimulator",
    "SimulationReport",
]
