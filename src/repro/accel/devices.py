"""Device catalog: FPGA parts and baseline CPU/GPU characteristics.

FPGA capacities are the ZCU102/ZCU111 rows of Table III.  CPU/GPU entries
carry the published peak characteristics of the paper's baseline parts
(Intel Core i7-8700, NVIDIA Tesla K80) used by the roofline models in
:mod:`repro.baselines`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class FpgaDevice:
    """An FPGA part: resource capacity and board-level power coefficients."""

    name: str
    bram18k: int
    dsp48: int
    ff: int
    lut: int
    uram: int = 0  # URAM288 blocks (ZCU111 only)
    # Board power model: P = static_watts + dsp_milliwatts * DSP_used / 1000
    # Calibrated against Table IV (ZCU102 9.8 W at 1751 DSP, ZCU111 13.2 W at
    # 3287 DSP -> ~2.21 mW/DSP at 214 MHz + 5.93 W static/board).
    static_watts: float = 5.93
    dsp_milliwatts: float = 2.2135

    def fits(self, bram18k: int, dsp48: int, ff: int, lut: int) -> bool:
        """Whether a design's resource usage fits this device."""
        return (
            bram18k <= self.bram18k
            and dsp48 <= self.dsp48
            and ff <= self.ff
            and lut <= self.lut
        )

    def power(self, dsp_used: int) -> float:
        """Board power in watts for a design using ``dsp_used`` DSPs."""
        return self.static_watts + self.dsp_milliwatts * dsp_used / 1000.0


ZCU102 = FpgaDevice(
    name="ZCU102",
    bram18k=1824,
    dsp48=2520,
    ff=548160,
    lut=274080,
    uram=0,
)

ZCU111 = FpgaDevice(
    name="ZCU111",
    bram18k=2160,
    dsp48=4272,
    ff=850560,
    lut=425280,
    uram=80,
)

FPGA_DEVICES: Dict[str, FpgaDevice] = {device.name: device for device in (ZCU102, ZCU111)}


@dataclass(frozen=True)
class ComputeDevice:
    """A CPU/GPU baseline part for the roofline latency model."""

    name: str
    peak_gflops: float        # fp32 peak
    memory_bandwidth_gbs: float
    power_watts: float        # the power figure the paper reports (Table IV)
    compute_efficiency: float  # achieved/peak compute for batch-1 transformer
    bandwidth_efficiency: float
    per_op_overhead_us: float  # framework/kernel-launch overhead per operator

    def effective_gflops(self) -> float:
        return self.peak_gflops * self.compute_efficiency

    def effective_bandwidth_gbs(self) -> float:
        return self.memory_bandwidth_gbs * self.bandwidth_efficiency


# Intel Core i7-8700: 6 cores x 3.2 GHz base (AVX2, 2x256-bit FMA) ->
# ~614 GFLOPS fp32 peak; dual-channel DDR4-2666 -> 41.6 GB/s.  Efficiency
# calibrated so that BERT-base (batch 1, seq 128) lands near the paper's
# 145.06 ms — about 25% of peak, typical of PyTorch CPU inference.
CPU_I7_8700 = ComputeDevice(
    name="Intel Core i7-8700",
    peak_gflops=614.4,
    memory_bandwidth_gbs=41.6,
    power_watts=65.0,
    compute_efficiency=0.25,
    bandwidth_efficiency=0.60,
    per_op_overhead_us=20.0,
)

# NVIDIA Tesla K80 (single GK210 as used with CUDA device 0): 2.8 TFLOPS
# fp32 boost, 240 GB/s.  Batch-1 inference keeps the GPU badly underutilized;
# ~30% compute efficiency plus ~10 us launch overhead per kernel reproduces
# the paper's 27.84 ms.
GPU_K80 = ComputeDevice(
    name="NVIDIA K80",
    peak_gflops=2800.0,
    memory_bandwidth_gbs=240.0,
    power_watts=143.0,
    compute_efficiency=0.30,
    bandwidth_efficiency=0.55,
    per_op_overhead_us=10.0,
)

COMPUTE_DEVICES: Dict[str, ComputeDevice] = {
    "cpu": CPU_I7_8700,
    "gpu": GPU_K80,
}
