"""Synthetic GLUE-like task generators.

The paper evaluates on SST-2 (binary sentiment) and MNLI (3-way entailment,
with matched and mismatched dev sets).  Those datasets cannot be shipped
here, so we generate synthetic tasks with the same *interfaces* and the same
*relative difficulty ordering*:

- :func:`make_sst2_like` — single sentences whose label is carried by
  sentiment-bearing words mixed with neutral filler; an easy, nearly
  linearly-separable task (like SST-2, where BERT reaches 92%+).
- :func:`make_mnli_like` — premise/hypothesis pairs whose label
  (entailment / neutral / contradiction) depends on *relations between* the
  two sentences (shared topic entity + quantifier/negation logic); a harder,
  compositional task, so quantization costs more accuracy — reproducing the
  paper's observation that the MNLI drop (≈3%) exceeds the SST-2 drop (<1%).
  ``matched=False`` draws topic entities from held-out "genres", mirroring
  MNLI-mismatched.

Generators are fully deterministic given a seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

# ----------------------------------------------------------------------
# word banks
# ----------------------------------------------------------------------
# The sentiment lexicon is *graded*: strong words carry +/-3, weak words
# +/-1.  A sentence's label is the sign of its summed strength, and the
# generator deliberately produces "hard" reviews whose word-count majority
# disagrees with the strength-weighted sum (one "superb" outweighing two
# "bland"s).  Solving those requires the model to represent word strength,
# not just polarity — fine-grained weights that low-bitwidth quantization
# erodes, which is what produces Figure 3's accuracy cliff below 4 bits.
STRONG_POSITIVE_WORDS = [
    "wonderful", "superb", "brilliant", "dazzling", "masterful", "luminous",
    "gripping", "magnificent", "stunning",
]
WEAK_POSITIVE_WORDS = [
    "decent", "pleasant", "watchable", "agreeable", "tidy", "amiable",
    "passable", "serviceable", "adequate",
]
STRONG_NEGATIVE_WORDS = [
    "dreadful", "abysmal", "unwatchable", "atrocious", "dismal", "excruciating",
    "incoherent", "insufferable", "disastrous",
]
WEAK_NEGATIVE_WORDS = [
    "bland", "uneven", "sluggish", "forgettable", "thin", "tired",
    "choppy", "muddled", "stale",
]
WORD_STRENGTHS = {
    **{word: 3 for word in STRONG_POSITIVE_WORDS},
    **{word: 1 for word in WEAK_POSITIVE_WORDS},
    **{word: -3 for word in STRONG_NEGATIVE_WORDS},
    **{word: -1 for word in WEAK_NEGATIVE_WORDS},
}
POSITIVE_WORDS = STRONG_POSITIVE_WORDS + WEAK_POSITIVE_WORDS
NEGATIVE_WORDS = STRONG_NEGATIVE_WORDS + WEAK_NEGATIVE_WORDS
NEUTRAL_WORDS = [
    "movie", "film", "plot", "scene", "story", "actor", "director",
    "script", "the", "a", "with", "its", "about", "this", "that",
    "ending", "dialogue", "pace", "camera", "music", "cast", "moments",
]

# MNLI-like banks: topic entities per "genre"; matched genres are used for
# training + matched dev, mismatched genres only for the mismatched dev set.
MATCHED_GENRE_ENTITIES = [
    ["engineer", "pilot", "teacher", "doctor", "farmer", "lawyer"],
    ["cat", "dog", "horse", "sparrow", "rabbit", "fox"],
    ["train", "bus", "ferry", "tram", "truck", "bicycle"],
]
MISMATCHED_GENRE_ENTITIES = [
    ["violinist", "sculptor", "novelist", "dancer", "painter", "poet"],
    ["glacier", "volcano", "river", "canyon", "meadow", "dune"],
]
ACTION_WORDS = [
    "works", "travels", "sleeps", "sings", "waits", "reads",
    "runs", "eats", "rests", "moves", "plays", "watches",
]
PLACE_WORDS = [
    "in the city", "near the park", "by the station", "at home",
    "on the hill", "along the coast", "in the valley", "at the market",
]
QUANTIFIERS_ALL = ["every", "each", "all"]
QUANTIFIERS_SOME = ["some", "a few", "several"]
NEGATIONS = ["never", "not"]


@dataclass
class Example:
    """One classification example (text_b is None for single-sentence tasks)."""

    text_a: str
    text_b: Optional[str]
    label: int


@dataclass
class TaskData:
    """A generated task: train and dev splits plus label names."""

    name: str
    train: List[Example]
    dev: List[Example]
    label_names: Tuple[str, ...]

    @property
    def num_labels(self) -> int:
        return len(self.label_names)

    def corpus(self) -> List[str]:
        """All sentences (for vocabulary building)."""
        sentences: List[str] = []
        for example in self.train + self.dev:
            sentences.append(example.text_a)
            if example.text_b is not None:
                sentences.append(example.text_b)
        return sentences


def _sentiment_words(rng: np.random.Generator, label: int, hard: bool) -> List[str]:
    """Choose the sentiment-bearing words of one review.

    Easy reviews: 2-4 words of the label's polarity (mixed strengths).
    Hard reviews: the word-*count* majority opposes the label but the
    strength-weighted sum supports it — e.g. a positive review containing
    one strong positive (+3) and two weak negatives (-1 each, sum +1).
    """
    sign = 1 if label == 1 else -1
    strong_own = STRONG_POSITIVE_WORDS if sign > 0 else STRONG_NEGATIVE_WORDS
    weak_own = WEAK_POSITIVE_WORDS if sign > 0 else WEAK_NEGATIVE_WORDS
    weak_opp = WEAK_NEGATIVE_WORDS if sign > 0 else WEAK_POSITIVE_WORDS

    if not hard:
        count = int(rng.integers(2, 5))
        bank = strong_own + weak_own
        return [str(rng.choice(bank)) for _ in range(count)]
    # Hard: one strong own-polarity word vs. two opposite weak words
    # (sum = +/-1), occasionally padded with a matched weak pair.
    words = [str(rng.choice(strong_own)), str(rng.choice(weak_opp)), str(rng.choice(weak_opp))]
    if rng.random() < 0.3:
        words.append(str(rng.choice(weak_own)))
        words.append(str(rng.choice(weak_opp)))
    return words


def _sst2_sentence(rng: np.random.Generator, label: int, hard: bool) -> str:
    """One synthetic review: neutral filler + graded sentiment words."""
    sentiment = _sentiment_words(rng, label, hard)
    length = int(rng.integers(len(sentiment) + 3, len(sentiment) + 9))
    words = [str(rng.choice(NEUTRAL_WORDS)) for _ in range(length)]
    positions = rng.choice(length, size=len(sentiment), replace=False)
    for position, word in zip(positions, sentiment):
        words[position] = word
    return " ".join(words)


def sentence_strength(sentence: str) -> int:
    """Summed lexicon strength of a sentence (ground-truth oracle)."""
    return sum(WORD_STRENGTHS.get(word, 0) for word in sentence.split())


def make_sst2_like(
    num_train: int = 512,
    num_dev: int = 256,
    noise: float = 0.03,
    hard_fraction: float = 0.4,
    seed: int = 0,
) -> TaskData:
    """Generate the SST-2-like binary sentiment task.

    ``hard_fraction`` of the examples have a count/strength conflict (see
    :func:`_sentiment_words`); ``noise`` flips labels outright, setting the
    Bayes floor.
    """
    rng = np.random.default_rng(seed)

    def generate(count: int) -> List[Example]:
        examples = []
        for i in range(count):
            label = int(i % 2)
            hard = bool(rng.random() < hard_fraction)
            sentence = _sst2_sentence(rng, label, hard)
            observed = label if rng.random() >= noise else 1 - label
            examples.append(Example(sentence, None, observed))
        return examples

    train = generate(num_train)
    dev = generate(num_dev)
    rng.shuffle(train)  # type: ignore[arg-type]
    return TaskData("sst2-like", train, dev, ("negative", "positive"))


ENTAILMENT, NEUTRAL, CONTRADICTION = 0, 1, 2


def _mnli_pair(
    rng: np.random.Generator,
    label: int,
    entities: Sequence[Sequence[str]],
    noise: float,
) -> Tuple[str, str]:
    """One premise/hypothesis pair with compositional quantifier logic.

    Premise: ``every <entity> <action> <place> while <distractor clause>``.
    - entailment: hypothesis weakens the quantifier and keeps the fact
      (``some <entity> <action> <place>``)
    - contradiction: hypothesis negates the fact for the same entity
      (``some <entity> never <action> <place>``)
    - neutral: hypothesis is about a different action or place, so the
      premise neither supports nor refutes it.

    Both sentences carry an unrelated *distractor clause* about a different
    entity, so the model must bind the right entity to the right predicate
    across the pair — a genuinely relational, capacity-stressing decision
    (unlike the lexical SST-2-like task), which is what makes this task
    lose more accuracy under quantization, as MNLI does in the paper.
    """
    genre = entities[int(rng.integers(len(entities)))]
    entity = str(rng.choice(genre))
    action = str(rng.choice(ACTION_WORDS))
    place = str(rng.choice(PLACE_WORDS))
    quant_all = str(rng.choice(QUANTIFIERS_ALL))
    quant_some = str(rng.choice(QUANTIFIERS_SOME))

    def distractor() -> str:
        other_genre = entities[int(rng.integers(len(entities)))]
        other_entity = str(rng.choice([e for e in other_genre if e != entity]))
        other_action = str(rng.choice(ACTION_WORDS))
        other_place = str(rng.choice(PLACE_WORDS))
        quantifier = str(rng.choice(QUANTIFIERS_ALL + QUANTIFIERS_SOME))
        clause = f"{quantifier} {other_entity} {other_action} {other_place}"
        if rng.random() < 0.3:
            clause = f"{quantifier} {other_entity} {str(rng.choice(NEGATIONS))} " \
                     f"{other_action} {other_place}"
        return clause

    premise = f"{quant_all} {entity} {action} {place} while {distractor()}"

    if rng.random() < noise:
        label = int(rng.integers(3))  # label noise lowers the Bayes floor

    if label == ENTAILMENT:
        core = f"{quant_some} {entity} {action} {place}"
    elif label == CONTRADICTION:
        negation = str(rng.choice(NEGATIONS))
        core = f"{quant_some} {entity} {negation} {action} {place}"
    else:  # NEUTRAL: change the action (and often the place)
        other_action = str(rng.choice([a for a in ACTION_WORDS if a != action]))
        other_place = str(rng.choice(PLACE_WORDS)) if rng.random() < 0.5 else place
        core = f"{quant_some} {entity} {other_action} {other_place}"
    hypothesis = f"{core} while {distractor()}"
    return premise, hypothesis


def make_mnli_like(
    num_train: int = 768,
    num_dev: int = 256,
    noise: float = 0.10,
    matched: bool = True,
    seed: int = 1,
) -> TaskData:
    """Generate the MNLI-like 3-way entailment task.

    ``matched=True`` draws dev examples from the training genres (MNLI-m);
    ``matched=False`` uses held-out genres (MNLI-mm), which is slightly
    harder because the topic entities were never seen in training.
    """
    rng = np.random.default_rng(seed)
    train: List[Example] = []
    for i in range(num_train):
        label = int(i % 3)
        premise, hypothesis = _mnli_pair(rng, label, MATCHED_GENRE_ENTITIES, noise)
        train.append(Example(premise, hypothesis, label))

    dev_entities = MATCHED_GENRE_ENTITIES if matched else MISMATCHED_GENRE_ENTITIES
    dev: List[Example] = []
    for i in range(num_dev):
        label = int(i % 3)
        premise, hypothesis = _mnli_pair(rng, label, dev_entities, noise)
        dev.append(Example(premise, hypothesis, label))

    rng.shuffle(train)  # type: ignore[arg-type]
    name = "mnli-like-matched" if matched else "mnli-like-mismatched"
    return TaskData(name, train, dev, ("entailment", "neutral", "contradiction"))


def full_corpus_for_vocab(seed: int = 0) -> List[str]:
    """Corpus covering all tasks/genres so one vocabulary serves every run.

    Includes the mismatched genres: in real MNLI-mm the *words* are in the
    BERT vocabulary even though the *genres* are unseen, so the mismatch
    stresses generalization, not tokenization.
    """
    sentences: List[str] = []
    sentences.extend(POSITIVE_WORDS)
    sentences.extend(NEGATIVE_WORDS)
    sentences.extend(NEUTRAL_WORDS)
    for genre in MATCHED_GENRE_ENTITIES + MISMATCHED_GENRE_ENTITIES:
        sentences.extend(genre)
    sentences.extend(ACTION_WORDS)
    sentences.extend(" ".join(PLACE_WORDS).split())
    sentences.extend(QUANTIFIERS_ALL + QUANTIFIERS_SOME + NEGATIONS)
    sentences.append("while")
    return sentences
