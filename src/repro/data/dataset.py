"""Dataset container, batching, and the encoded-batch representation."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..bert.tokenizer import Vocabulary, WordPieceTokenizer
from .synthetic import Example, TaskData, full_corpus_for_vocab


@dataclass
class Batch:
    """One encoded minibatch ready for the model."""

    input_ids: np.ndarray      # (batch, seq) int64
    attention_mask: np.ndarray  # (batch, seq) int64, 1 = real token
    token_type_ids: np.ndarray  # (batch, seq) int64 segment ids
    labels: np.ndarray          # (batch,) int64

    def __len__(self) -> int:
        return self.input_ids.shape[0]


class EncodedDataset:
    """Examples encoded once up front; provides shuffled minibatch iteration."""

    def __init__(
        self,
        examples: Sequence[Example],
        tokenizer: WordPieceTokenizer,
        max_length: int = 64,
    ):
        if not examples:
            raise ValueError("dataset is empty")
        pairs = [(ex.text_a, ex.text_b) for ex in examples]
        ids, mask, segments = tokenizer.encode_batch(pairs, max_length=max_length)
        self.input_ids = ids
        self.attention_mask = mask
        self.token_type_ids = segments
        self.labels = np.array([ex.label for ex in examples], dtype=np.int64)

    def __len__(self) -> int:
        return self.input_ids.shape[0]

    def full_batch(self) -> Batch:
        return Batch(self.input_ids, self.attention_mask, self.token_type_ids, self.labels)

    def batches(
        self,
        batch_size: int,
        shuffle: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> Iterator[Batch]:
        """Yield minibatches, optionally shuffled."""
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        order = np.arange(len(self))
        if shuffle:
            (rng or np.random.default_rng()).shuffle(order)
        for start in range(0, len(order), batch_size):
            index = order[start : start + batch_size]
            yield Batch(
                self.input_ids[index],
                self.attention_mask[index],
                self.token_type_ids[index],
                self.labels[index],
            )


def build_tokenizer(extra_corpus: Sequence[str] = ()) -> WordPieceTokenizer:
    """Tokenizer over the union vocabulary of all synthetic tasks."""
    corpus = list(full_corpus_for_vocab()) + list(extra_corpus)
    return WordPieceTokenizer(Vocabulary.from_corpus(corpus))


def encode_task(
    task: TaskData,
    tokenizer: Optional[WordPieceTokenizer] = None,
    max_length: int = 32,
) -> Tuple[EncodedDataset, EncodedDataset, WordPieceTokenizer]:
    """Encode a task's train/dev splits, building a tokenizer if needed."""
    tokenizer = tokenizer or build_tokenizer(task.corpus())
    train = EncodedDataset(task.train, tokenizer, max_length=max_length)
    dev = EncodedDataset(task.dev, tokenizer, max_length=max_length)
    return train, dev, tokenizer


def accuracy(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of correct predictions, in percent (matching the paper)."""
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.shape != labels.shape:
        raise ValueError(f"shape mismatch: {predictions.shape} vs {labels.shape}")
    return float((predictions == labels).mean() * 100.0)
