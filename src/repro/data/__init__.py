"""Synthetic GLUE-like datasets (SST-2-like, MNLI-like) and batching."""

from .glue import load_mnli, load_sst2, write_mnli_fixture, write_sst2_fixture
from .dataset import Batch, EncodedDataset, accuracy, build_tokenizer, encode_task
from .synthetic import (
    CONTRADICTION,
    ENTAILMENT,
    NEUTRAL,
    Example,
    TaskData,
    full_corpus_for_vocab,
    make_mnli_like,
    make_sst2_like,
)

__all__ = [
    "Example",
    "TaskData",
    "make_sst2_like",
    "make_mnli_like",
    "full_corpus_for_vocab",
    "ENTAILMENT",
    "NEUTRAL",
    "CONTRADICTION",
    "Batch",
    "EncodedDataset",
    "encode_task",
    "build_tokenizer",
    "accuracy",
    "load_sst2",
    "load_mnli",
    "write_sst2_fixture",
    "write_mnli_fixture",
]
