"""Loaders for real GLUE-format TSV files (SST-2 and MNLI layouts).

The reproduction ships synthetic tasks (network access and dataset
redistribution are unavailable), but the pipeline is format-compatible with
the actual GLUE downloads: point these loaders at an extracted ``SST-2/`` or
``MNLI/`` directory and every downstream stage — tokenizer building, QAT,
integer conversion, accelerator simulation — runs unchanged on the real
data.  Tests exercise the loaders against miniature fixture files.
"""

from __future__ import annotations

import csv
import pathlib
from typing import Dict, List, Optional, Union

from .synthetic import Example, TaskData

PathLike = Union[str, pathlib.Path]

MNLI_LABELS: Dict[str, int] = {"entailment": 0, "neutral": 1, "contradiction": 2}


def _read_tsv(path: pathlib.Path) -> List[Dict[str, str]]:
    with open(path, newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle, delimiter="\t", quoting=csv.QUOTE_NONE)
        return list(reader)


def load_sst2(
    directory: PathLike,
    max_examples: Optional[int] = None,
) -> TaskData:
    """Load GLUE SST-2 (``train.tsv`` + ``dev.tsv``, columns sentence/label)."""
    directory = pathlib.Path(directory)

    def read_split(name: str) -> List[Example]:
        rows = _read_tsv(directory / f"{name}.tsv")
        examples = []
        for row in rows[:max_examples]:
            if "sentence" not in row or "label" not in row:
                raise ValueError(
                    f"{name}.tsv is not SST-2-format (needs 'sentence' and 'label' columns)"
                )
            examples.append(Example(row["sentence"].strip(), None, int(row["label"])))
        if not examples:
            raise ValueError(f"no examples found in {directory / (name + '.tsv')}")
        return examples

    return TaskData(
        name="sst2",
        train=read_split("train"),
        dev=read_split("dev"),
        label_names=("negative", "positive"),
    )


def load_mnli(
    directory: PathLike,
    matched: bool = True,
    max_examples: Optional[int] = None,
) -> TaskData:
    """Load GLUE MNLI (``train.tsv`` + ``dev_matched.tsv``/``dev_mismatched.tsv``)."""
    directory = pathlib.Path(directory)

    def read_split(filename: str) -> List[Example]:
        rows = _read_tsv(directory / filename)
        examples = []
        for row in rows[:max_examples]:
            label_text = row.get("gold_label") or row.get("label")
            if label_text is None or "sentence1" not in row or "sentence2" not in row:
                raise ValueError(
                    f"{filename} is not MNLI-format "
                    "(needs sentence1/sentence2/gold_label columns)"
                )
            label_text = label_text.strip()
            if label_text not in MNLI_LABELS:
                continue  # MNLI contains a few '-' (no-consensus) rows
            examples.append(
                Example(
                    row["sentence1"].strip(),
                    row["sentence2"].strip(),
                    MNLI_LABELS[label_text],
                )
            )
        if not examples:
            raise ValueError(f"no usable examples found in {directory / filename}")
        return examples

    dev_file = "dev_matched.tsv" if matched else "dev_mismatched.tsv"
    return TaskData(
        name="mnli-matched" if matched else "mnli-mismatched",
        train=read_split("train.tsv"),
        dev=read_split(dev_file),
        label_names=("entailment", "neutral", "contradiction"),
    )


def write_sst2_fixture(directory: PathLike, task: TaskData) -> None:
    """Write a TaskData back out in SST-2 TSV format (round-trip testing)."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    for name, split in (("train", task.train), ("dev", task.dev)):
        with open(directory / f"{name}.tsv", "w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle, delimiter="\t")
            writer.writerow(["sentence", "label"])
            for example in split:
                writer.writerow([example.text_a, example.label])


def write_mnli_fixture(directory: PathLike, task: TaskData, matched: bool = True) -> None:
    """Write a TaskData back out in MNLI TSV format (round-trip testing)."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    inverse = {index: name for name, index in MNLI_LABELS.items()}
    dev_file = "dev_matched.tsv" if matched else "dev_mismatched.tsv"
    for filename, split in (("train.tsv", task.train), (dev_file, task.dev)):
        with open(directory / filename, "w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle, delimiter="\t")
            writer.writerow(["sentence1", "sentence2", "gold_label"])
            for example in split:
                writer.writerow([example.text_a, example.text_b, inverse[example.label]])
