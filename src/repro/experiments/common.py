"""Shared machinery for the accuracy experiments (Figure 3, Tables I & II).

The paper's recipe (Sec. IV-A): train the float model for a few epochs,
then fine-tune with the quantization function.  Float pretraining is the
expensive common prefix of every sweep point, so it is cached per task —
each quantization configuration then fine-tunes from the same checkpoint,
which also mirrors the paper (one float model, many quantized variants).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..bert.config import BertConfig
from ..bert.model import BertForSequenceClassification
from ..data.dataset import EncodedDataset, encode_task
from ..data.synthetic import TaskData, make_mnli_like, make_sst2_like
from ..quant.qat import QuantConfig
from ..quant.qbert import quantize_model
from ..quant.training import evaluate, train_classifier


@dataclass
class ExperimentScale:
    """Dataset/model/training sizes for the accuracy experiments.

    ``default()`` is used by the benchmark harness; ``smoke()`` keeps CI
    fast.  Both exercise identical code paths.  The MNLI-like task is
    compositional and needs more data and epochs than the lexical
    SST-2-like task — :meth:`for_task` applies those per-task settings,
    mirroring how real GLUE fine-tuning budgets differ per task.
    """

    num_train: int = 768
    num_dev: int = 384
    max_length: int = 24
    float_epochs: int = 6
    qat_epochs: int = 1
    float_lr: float = 1e-3
    qat_lr: float = 2e-4
    batch_size: int = 32
    seed: int = 7
    mnli_train_factor: int = 2
    mnli_epoch_factor: int = 4
    # Model capacity: chosen so the tasks sit at the model's capacity limit,
    # where quantization genuinely costs accuracy (see DESIGN.md).  The QAT
    # budget (1 epoch at a low LR) is deliberately a small fraction of the
    # from-scratch training cost, mirroring the paper's regime where a brief
    # quantization fine-tune cannot re-learn what pretraining provided.
    hidden_size: int = 16
    num_layers: int = 2
    num_heads: int = 4
    intermediate_size: int = 32

    @classmethod
    def default(cls) -> "ExperimentScale":
        return cls()

    @classmethod
    def smoke(cls) -> "ExperimentScale":
        return cls(
            num_train=192,
            num_dev=96,
            float_epochs=2,
            qat_epochs=1,
            max_length=16,
            mnli_train_factor=1,
            mnli_epoch_factor=1,
        )

    def for_task(self, name: str) -> "ExperimentScale":
        """Per-task training budget (MNLI-like needs a larger one)."""
        if not name.startswith("mnli"):
            return self
        from dataclasses import replace

        return replace(
            self,
            num_train=self.num_train * self.mnli_train_factor,
            float_epochs=self.float_epochs * self.mnli_epoch_factor,
            float_lr=1.5e-3,
            max_length=max(self.max_length, 40),
        )


@dataclass
class PretrainedTask:
    """A task with its encoded data and a trained float model."""

    task: TaskData
    train_data: EncodedDataset
    dev_data: EncodedDataset
    config: BertConfig
    model: BertForSequenceClassification
    float_accuracy: float
    float_state: Dict[str, np.ndarray]


_PRETRAIN_CACHE: Dict[Tuple, PretrainedTask] = {}


def make_task(name: str, scale: ExperimentScale) -> TaskData:
    """Instantiate one of the paper's tasks by name."""
    if name == "sst2":
        return make_sst2_like(scale.num_train, scale.num_dev, seed=scale.seed)
    if name == "mnli":
        return make_mnli_like(scale.num_train, scale.num_dev, matched=True, seed=scale.seed)
    if name == "mnli-mm":
        return make_mnli_like(scale.num_train, scale.num_dev, matched=False, seed=scale.seed)
    raise ValueError(f"unknown task {name!r}; choose sst2 / mnli / mnli-mm")


def pretrain_task(name: str, scale: Optional[ExperimentScale] = None) -> PretrainedTask:
    """Train (or fetch the cached) float model for a task."""
    scale = (scale or ExperimentScale.default()).for_task(name)
    key = (name, scale.num_train, scale.num_dev, scale.max_length, scale.float_epochs, scale.seed)
    if key in _PRETRAIN_CACHE:
        return _PRETRAIN_CACHE[key]

    task = make_task(name, scale)
    train_data, dev_data, tokenizer = encode_task(task, max_length=scale.max_length)
    config = BertConfig(
        vocab_size=len(tokenizer.vocab),
        hidden_size=scale.hidden_size,
        num_hidden_layers=scale.num_layers,
        num_attention_heads=scale.num_heads,
        intermediate_size=scale.intermediate_size,
        max_position_embeddings=scale.max_length,
        hidden_dropout_prob=0.0,
        attention_dropout_prob=0.0,
        num_labels=task.num_labels,
    )
    rng = np.random.default_rng(scale.seed)
    model = BertForSequenceClassification(config, rng=rng)
    result = train_classifier(
        model,
        train_data,
        dev_data,
        epochs=scale.float_epochs,
        lr=scale.float_lr,
        batch_size=scale.batch_size,
        seed=scale.seed,
    )
    pretrained = PretrainedTask(
        task=task,
        train_data=train_data,
        dev_data=dev_data,
        config=config,
        model=model,
        float_accuracy=result.final_accuracy,
        float_state=model.state_dict(),
    )
    _PRETRAIN_CACHE[key] = pretrained
    return pretrained


def qat_accuracy(
    pretrained: PretrainedTask,
    qconfig: QuantConfig,
    scale: Optional[ExperimentScale] = None,
) -> float:
    """Fine-tune a quantized copy of the pretrained model; return accuracy."""
    scale = (scale or ExperimentScale.default()).for_task(pretrained.task.name.split("-like")[0])
    pretrained.model.load_state_dict(pretrained.float_state)  # fresh checkpoint
    rng = np.random.default_rng(scale.seed + 1)
    quant_model = quantize_model(pretrained.model, qconfig, rng=rng)
    result = train_classifier(
        quant_model,
        pretrained.train_data,
        pretrained.dev_data,
        epochs=scale.qat_epochs,
        lr=scale.qat_lr,
        batch_size=scale.batch_size,
        seed=scale.seed + 1,
        keep_best=False,
    )
    return result.final_accuracy


def float_accuracy_of(pretrained: PretrainedTask) -> float:
    """Re-evaluate the cached float model (sanity hook for tests)."""
    pretrained.model.load_state_dict(pretrained.float_state)
    return evaluate(pretrained.model, pretrained.dev_data)


def clear_cache() -> None:
    """Drop cached pretrained models (used between property-test cases)."""
    _PRETRAIN_CACHE.clear()
