"""Figure 3: accuracy vs weight-quantization bitwidth, with and without clip.

Paper result (BERT-base on real SST-2/MNLI):

- accuracy degrades gracefully at 8/6/4 bits and collapses at 2 bits;
- clipping (tuned MIN/MAX thresholds) clearly beats no-clipping at low
  bitwidth (2-bit SST-2: 83.26 with clip vs 77.64 without; 2-bit MNLI:
  71.9 vs 48.58).

This driver reproduces the *sweep* on the synthetic tasks: for each
bitwidth in {32, 8, 6, 4, 2} and each clip mode, QAT fine-tunes from the
shared float checkpoint and reports dev accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..quant.qat import QuantConfig
from .common import ExperimentScale, pretrain_task, qat_accuracy
from .tables import render_table

BITWIDTHS = (32, 8, 6, 4, 2)

# The paper's measured points, for side-by-side reporting.
PAPER_FIGURE3 = {
    "sst2": {
        (32, True): 92.32, (32, False): 92.32,
        (8, True): 91.74, (8, False): 92.09,
        (6, True): 91.28, (6, False): 91.86,
        (4, True): 91.63, (4, False): 89.33,
        (2, True): 83.26, (2, False): 77.64,
    },
    "mnli": {
        (32, True): 84.19, (32, False): 84.19,
        (8, True): 83.11, (8, False): 83.51,
        (6, True): 82.89, (6, False): 82.8,
        (4, True): 83.21, (4, False): 79.91,
        (2, True): 71.9, (2, False): 48.58,
    },
}


@dataclass
class Figure3Result:
    """Sweep results: ``accuracy[(task, bits, clip)] -> percent``."""

    accuracy: Dict[Tuple[str, int, bool], float] = field(default_factory=dict)

    def series(self, task: str, clip: bool) -> List[float]:
        return [self.accuracy[(task, bits, clip)] for bits in BITWIDTHS]

    def render(self) -> str:
        rows = []
        for task in sorted({key[0] for key in self.accuracy}):
            for bits in BITWIDTHS:
                rows.append(
                    [
                        task,
                        bits,
                        self.accuracy[(task, bits, True)],
                        self.accuracy[(task, bits, False)],
                        PAPER_FIGURE3.get(task, {}).get((bits, True), float("nan")),
                        PAPER_FIGURE3.get(task, {}).get((bits, False), float("nan")),
                    ]
                )
        return render_table(
            ["task", "w-bits", "CLIP", "NO_CLIP", "paper CLIP", "paper NO_CLIP"],
            rows,
            title="Figure 3: accuracy vs weight bitwidth",
        )


def run_figure3(
    tasks: Tuple[str, ...] = ("sst2", "mnli"),
    bitwidths: Tuple[int, ...] = BITWIDTHS,
    scale: Optional[ExperimentScale] = None,
) -> Figure3Result:
    """Run the full sweep (float anchor is shared between clip modes)."""
    scale = scale or ExperimentScale.default()
    result = Figure3Result()
    for task_name in tasks:
        pretrained = pretrain_task(task_name, scale)
        for bits in bitwidths:
            if bits >= 32:
                accuracy = pretrained.float_accuracy
                result.accuracy[(task_name, bits, True)] = accuracy
                result.accuracy[(task_name, bits, False)] = accuracy
                continue
            for clip in (True, False):
                qconfig = QuantConfig.figure3(weight_bits=bits, clip=clip)
                result.accuracy[(task_name, bits, clip)] = qat_accuracy(
                    pretrained, qconfig, scale
                )
    return result
