"""Full reproduction report generator.

``generate_report`` runs every experiment (hardware tables fast, accuracy
experiments at the requested scale) and renders a single markdown document
with paper-vs-measured numbers — the automated counterpart of
EXPERIMENTS.md.  Used by ``python -m repro.experiments --report``.
"""

from __future__ import annotations

import io
import time
from typing import Optional

from .common import ExperimentScale
from .figure3 import PAPER_FIGURE3, run_figure3
from .plots import figure3_chart
from .table1 import PAPER_TABLE1, run_table1
from .table2 import PAPER_TABLE2, run_table2
from .table3 import PAPER_TABLE3, run_table3
from .table4 import PAPER_TABLE4, run_table4


def generate_report(scale: Optional[ExperimentScale] = None) -> str:
    """Run everything; return the markdown report."""
    scale = scale or ExperimentScale.default()
    out = io.StringIO()
    started = time.time()

    out.write("# FQ-BERT reproduction report\n\n")
    out.write(
        "Automated paper-vs-measured comparison. Hardware numbers come from\n"
        "the calibrated simulator; accuracy numbers from tiny-model QAT on\n"
        "synthetic tasks (see DESIGN.md for the substitution rationale).\n\n"
    )

    # Hardware tables first: fast and deterministic.
    table3 = run_table3()
    out.write("## Table III — resources and latency\n\n```\n")
    out.write(table3.render())
    out.write("\n```\n\n")

    table4 = run_table4()
    out.write("## Table IV — platform comparison\n\n```\n")
    out.write(table4.render())
    out.write("\n```\n\n")
    out.write(
        f"- energy-efficiency advantage vs CPU: measured "
        f"{table4.speedup('CPU'):.2f}x (paper 28.91x)\n"
        f"- energy-efficiency advantage vs GPU: measured "
        f"{table4.speedup('GPU'):.2f}x (paper 12.72x)\n\n"
    )

    # Accuracy experiments.
    table1 = run_table1(scale)
    out.write("## Table I — accuracy and compression\n\n```\n")
    out.write(table1.render())
    out.write("\n```\n\n")
    out.write(
        f"- SST-2-like drop: {table1.drop('sst2'):+.2f} (paper +0.81); "
        f"MNLI-like drops: {table1.drop('mnli'):+.2f} / "
        f"{table1.drop('mnli-mm'):+.2f} (paper +3.08 / +3.61)\n"
        f"- compression: {table1.compression:.2f}x "
        f"(paper {PAPER_TABLE1['compression']}x)\n\n"
    )

    table2 = run_table2(scale=scale)
    out.write("## Table II — quantization ablation\n\n```\n")
    out.write(table2.render())
    out.write("\n```\n\n")

    figure3 = run_figure3(scale=scale)
    out.write("## Figure 3 — accuracy vs weight bitwidth\n\n```\n")
    out.write(figure3.render())
    out.write("\n\n")
    out.write(figure3_chart(figure3, "sst2"))
    out.write("\n\n")
    out.write(figure3_chart(figure3, "mnli"))
    out.write("\n```\n\n")

    for task in ("sst2", "mnli"):
        clip2 = figure3.accuracy[(task, 2, True)]
        noclip2 = figure3.accuracy[(task, 2, False)]
        paper_clip = PAPER_FIGURE3[task][(2, True)]
        paper_noclip = PAPER_FIGURE3[task][(2, False)]
        out.write(
            f"- {task} @2-bit: CLIP {clip2:.2f} vs NO_CLIP {noclip2:.2f} "
            f"(paper {paper_clip} vs {paper_noclip}) — clip advantage "
            f"{'reproduced' if clip2 > noclip2 else 'NOT reproduced'}\n"
        )

    elapsed = time.time() - started
    out.write(f"\n_Total runtime: {elapsed:.1f}s._\n")
    _ = PAPER_TABLE2, PAPER_TABLE3, PAPER_TABLE4  # referenced by renders
    return out.getvalue()
