"""Table IV: latency / power / fps-per-watt across CPU, GPU, and FPGAs.

Paper row (BERT-base, batch 1, seq 128):

===========  =======  ======  =======  =======
metric       CPU      GPU     ZCU102   ZCU111
===========  =======  ======  =======  =======
latency(ms)  145.06   27.84   43.89    23.79
power(W)     65       143     9.8      13.2
fps/W        0.11     0.25    2.32     3.18
===========  =======  ======  =======  =======

Headline claims: 28.91x (CPU) and 12.72x (GPU) better energy efficiency;
6.10x / 1.17x better latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..accel.config import AcceleratorConfig
from ..accel.devices import CPU_I7_8700, GPU_K80, ZCU102, ZCU111
from ..accel.simulator import AcceleratorSimulator
from ..accel.workload import build_encoder_workload
from ..baselines.roofline import simulate_baseline
from ..bert.config import BertConfig
from .tables import render_table

PAPER_TABLE4 = {
    "CPU": {"latency_ms": 145.06, "power_watts": 65.0, "fps_per_watt": 0.11},
    "GPU": {"latency_ms": 27.84, "power_watts": 143.0, "fps_per_watt": 0.25},
    "ZCU102": {"latency_ms": 43.89, "power_watts": 9.8, "fps_per_watt": 2.32},
    "ZCU111": {"latency_ms": 23.79, "power_watts": 13.2, "fps_per_watt": 3.18},
}


@dataclass
class Table4Result:
    """Per-platform latency/power/efficiency summaries."""

    platforms: Dict[str, Dict[str, float]]

    def speedup(self, platform: str, metric: str = "fps_per_watt") -> float:
        """Best-FPGA advantage over a baseline platform."""
        best = max(
            self.platforms[name][metric] for name in ("ZCU102", "ZCU111")
        )
        return best / self.platforms[platform][metric]

    def render(self) -> str:
        headers = ["platform", "latency(ms)", "power(W)", "fps/W", "paper fps/W"]
        rows = []
        for name, summary in self.platforms.items():
            rows.append(
                [
                    name,
                    summary["latency_ms"],
                    summary["power_watts"],
                    summary["fps_per_watt"],
                    PAPER_TABLE4.get(name, {}).get("fps_per_watt", float("nan")),
                ]
            )
        return render_table(headers, rows, title="Table IV: platform comparison")


def run_table4(model: Optional[BertConfig] = None, seq_len: int = 128) -> Table4Result:
    model = model or BertConfig.base()
    workload = build_encoder_workload(model, seq_len=seq_len)

    platforms: Dict[str, Dict[str, float]] = {}
    for name, device in (("CPU", CPU_I7_8700), ("GPU", GPU_K80)):
        report = simulate_baseline(workload, device)
        platforms[name] = {
            "latency_ms": report.latency_ms,
            "power_watts": report.power_watts,
            "fps_per_watt": report.fps_per_watt,
        }

    fpga_points = (
        ("ZCU102", ZCU102, AcceleratorConfig.zcu102_n8_m16()),
        ("ZCU111", ZCU111, AcceleratorConfig.zcu111_n16_m16()),
    )
    for name, device, config in fpga_points:
        report = AcceleratorSimulator(config, device).simulate(model, seq_len=seq_len)
        platforms[name] = {
            "latency_ms": report.latency_ms,
            "power_watts": report.power_watts,
            "fps_per_watt": report.fps_per_watt,
        }
    return Table4Result(platforms=platforms)
