"""Run every experiment and print the paper-style tables.

Usage::

    python -m repro.experiments            # full scale (a few minutes)
    python -m repro.experiments --smoke    # quick smoke run
"""

from __future__ import annotations

import argparse
import time

from .common import ExperimentScale
from .figure3 import run_figure3
from .table1 import run_table1
from .table2 import run_table2
from .table3 import run_table3
from .table4 import run_table4


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="small fast run")
    parser.add_argument(
        "--only",
        choices=["figure3", "table1", "table2", "table3", "table4"],
        help="run a single experiment",
    )
    parser.add_argument(
        "--report",
        metavar="PATH",
        help="write a full markdown reproduction report to PATH",
    )
    args = parser.parse_args()
    scale = ExperimentScale.smoke() if args.smoke else ExperimentScale.default()

    if args.report:
        from .report import generate_report

        text = generate_report(scale)
        with open(args.report, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"report written to {args.report}")
        return

    runners = {
        "table3": lambda: run_table3(),
        "table4": lambda: run_table4(),
        "table1": lambda: run_table1(scale),
        "table2": lambda: run_table2(scale=scale),
        "figure3": lambda: run_figure3(scale=scale),
    }
    selected = [args.only] if args.only else list(runners)

    for name in selected:
        start = time.time()
        result = runners[name]()
        elapsed = time.time() - start
        print(result.render())
        print(f"[{name} completed in {elapsed:.1f}s]\n")


if __name__ == "__main__":
    main()
