"""Table I: FQ-BERT (w4/a8) vs the float baseline, plus compression ratio.

Paper row: BERT 32/32 -> SST-2 92.32, MNLI 84.19, MNLI-m 83.97;
FQ-BERT 4/8 -> 91.51 (-0.81), 81.11 (-3.08), 80.36 (-3.61); 7.94x smaller.

The reproduction must show: (i) a small drop on the easy task, (ii) a
clearly larger drop on the harder MNLI-like tasks, (iii) ~7.94x compression
(computed analytically for BERT-base, the model the paper compresses).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..bert.config import BertConfig
from ..quant.model_size import compression_ratio
from ..quant.qat import QuantConfig
from .common import ExperimentScale, pretrain_task, qat_accuracy
from .tables import render_table

PAPER_TABLE1 = {
    "float": {"sst2": 92.32, "mnli": 84.19, "mnli-mm": 83.97},
    "fq_bert": {"sst2": 91.51, "mnli": 81.11, "mnli-mm": 80.36},
    "compression": 7.94,
}

TASKS: Tuple[str, ...] = ("sst2", "mnli", "mnli-mm")


@dataclass
class Table1Result:
    """Accuracies per task for the float baseline and FQ-BERT + compression."""

    float_accuracy: Dict[str, float] = field(default_factory=dict)
    quant_accuracy: Dict[str, float] = field(default_factory=dict)
    compression: float = 0.0

    def drop(self, task: str) -> float:
        return self.float_accuracy[task] - self.quant_accuracy[task]

    def render(self) -> str:
        header = ["model", "w/a"] + list(TASKS) + ["comp. ratio"]
        rows = [
            ["BERT", "32/32"] + [self.float_accuracy[t] for t in TASKS] + [1.0],
            ["FQ-BERT", "4/8"] + [self.quant_accuracy[t] for t in TASKS] + [self.compression],
        ]
        return render_table(header, rows, title="Table I: FQ-BERT accuracy and compression")


def run_table1(scale: Optional[ExperimentScale] = None) -> Table1Result:
    """Train float + FQ-BERT per task; compute BERT-base compression."""
    scale = scale or ExperimentScale.default()
    result = Table1Result()
    qconfig = QuantConfig.fq_bert(weight_bits=4, act_bits=8)
    for task in TASKS:
        pretrained = pretrain_task(task, scale)
        result.float_accuracy[task] = pretrained.float_accuracy
        result.quant_accuracy[task] = qat_accuracy(pretrained, qconfig, scale)
    # The 7.94x figure is a property of BERT-base's parameter inventory.
    result.compression = compression_ratio(BertConfig.base(), qconfig)
    return result
