"""Table III: resource consumption and latency per (N, M) design point.

Paper rows (12 PUs, BERT-base, seq 128, 214 MHz):

=========  =========  =====  ======  ======  ======  ===========
device     (N, M)     BRAM   DSP48E  FF      LUT     latency(ms)
=========  =========  =====  ======  ======  ======  ===========
ZCU102     (8, 16)    838    1751    124433  123157  43.89
ZCU102     (16, 8)    877    1671    151010  154192  45.35
ZCU111     (16, 16)   679*   3287    201469  189724  23.79
=========  =========  =====  ======  ======  ======  ===========

(* some ZCU111 memory maps to URAM, which Vivado reports separately.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..accel.config import AcceleratorConfig
from ..accel.devices import FpgaDevice, ZCU102, ZCU111
from ..accel.simulator import AcceleratorSimulator, SimulationReport
from ..bert.config import BertConfig
from .tables import render_table

PAPER_TABLE3 = {
    ("ZCU102", 8, 16): {"bram": 838, "dsp": 1751, "ff": 124433, "lut": 123157, "latency_ms": 43.89},
    ("ZCU102", 16, 8): {"bram": 877, "dsp": 1671, "ff": 151010, "lut": 154192, "latency_ms": 45.35},
    ("ZCU111", 16, 16): {"bram": 679, "dsp": 3287, "ff": 201469, "lut": 189724, "latency_ms": 23.79},
}

DESIGN_POINTS = (
    (ZCU102, AcceleratorConfig.zcu102_n8_m16()),
    (ZCU102, AcceleratorConfig.zcu102_n16_m8()),
    (ZCU111, AcceleratorConfig.zcu111_n16_m16()),
)


@dataclass
class Table3Result:
    """Simulation reports per design point, keyed like the paper rows."""

    reports: Dict[tuple, SimulationReport] = field(default_factory=dict)

    def render(self) -> str:
        headers = [
            "device", "(N,M)", "BRAM18K", "DSP48E", "FF", "LUT", "URAM",
            "latency(ms)", "paper(ms)", "fits",
        ]
        rows: List[list] = []
        for (device, n, m), report in self.reports.items():
            paper = PAPER_TABLE3.get((device, n, m), {})
            rows.append(
                [
                    device,
                    f"({n},{m})",
                    report.resources.bram18k,
                    report.resources.dsp48,
                    report.resources.ff,
                    report.resources.lut,
                    report.resources.uram,
                    report.latency_ms,
                    paper.get("latency_ms", float("nan")),
                    "yes" if report.fits_device() else "NO",
                ]
            )
        return render_table(headers, rows, title="Table III: resources and latency")


def run_table3(
    model: Optional[BertConfig] = None,
    seq_len: int = 128,
) -> Table3Result:
    model = model or BertConfig.base()
    result = Table3Result()
    for device, config in DESIGN_POINTS:
        simulator = AcceleratorSimulator(config, device)
        report = simulator.simulate(model, seq_len=seq_len)
        result.reports[(device.name, config.num_pes, config.num_multipliers)] = report
    return result


def design_point(device: FpgaDevice, n: int, m: int) -> AcceleratorSimulator:
    """Simulator for an arbitrary (N, M) point (used by scaling benches)."""
    return AcceleratorSimulator(AcceleratorConfig(num_pes=n, num_multipliers=m), device)
