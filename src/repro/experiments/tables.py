"""Plain-text table rendering for the experiment drivers.

Every experiment returns both structured data (for tests/benches) and a
rendered table whose rows mirror the paper's tables, so a terminal diff
against the paper is straightforward.
"""

from __future__ import annotations

from typing import List, Sequence, Union

Cell = Union[str, int, float]


def format_cell(value: Cell, precision: int = 2) -> str:
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Cell]],
    title: str = "",
    precision: int = 2,
) -> str:
    """Render an aligned monospace table."""
    formatted = [[format_cell(cell, precision) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in formatted:
        if len(row) != len(headers):
            raise ValueError(f"row has {len(row)} cells, expected {len(headers)}")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(width) for cell, width in zip(cells, widths))

    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(line(list(headers)))
    parts.append(line(["-" * width for width in widths]))
    for row in formatted:
        parts.append(line(row))
    return "\n".join(parts)
