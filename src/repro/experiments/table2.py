"""Table II: ablation — quantizing each part of BERT cumulatively.

Paper rows (SST-2):

====  =====  =======  ==========  ========
w/a   scale  softmax  layer norm  accuracy
====  =====  =======  ==========  ========
-     -      -        -           92.32
yes   -      -        -           91.63
yes   yes    -        -           91.28
yes   yes    yes      -           91.86
yes   yes    yes      yes         91.51
====  =====  =======  ==========  ========

The interesting observation is non-monotonicity: quantizing the softmax
*recovers* accuracy (91.28 -> 91.86).  The reproduction runs the same five
configurations on the SST-2-like task.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..quant.qat import QuantConfig
from .common import ExperimentScale, pretrain_task, qat_accuracy
from .tables import render_table

PAPER_TABLE2 = (92.32, 91.63, 91.28, 91.86, 91.51)

# (w/a, scale, softmax, layernorm) flags for each ablation row.
ABLATION_ROWS: Tuple[Tuple[bool, bool, bool, bool], ...] = (
    (False, False, False, False),
    (True, False, False, False),
    (True, True, False, False),
    (True, True, True, False),
    (True, True, True, True),
)


@dataclass
class Table2Result:
    """Accuracy per ablation row, in the paper's row order."""

    accuracies: List[float] = field(default_factory=list)

    def render(self) -> str:
        rows = []
        for flags, accuracy, paper in zip(ABLATION_ROWS, self.accuracies, PAPER_TABLE2):
            wa, scale, softmax, layernorm = flags
            rows.append(
                [
                    "yes" if wa else "-",
                    "yes" if scale else "-",
                    "yes" if softmax else "-",
                    "yes" if layernorm else "-",
                    accuracy,
                    paper,
                ]
            )
        return render_table(
            ["w/a", "scale", "softmax", "layer norm", "accuracy", "paper"],
            rows,
            title="Table II: quantization ablation (SST-2-like)",
        )


def ablation_config(wa: bool, scale: bool, softmax: bool, layernorm: bool) -> QuantConfig:
    """Build the QuantConfig for one ablation row."""
    if not wa:
        return QuantConfig.float_baseline()
    return QuantConfig.weights_activations_only().with_parts(
        scales=scale, softmax=softmax, layernorm=layernorm
    )


def run_table2(
    task: str = "sst2", scale: Optional[ExperimentScale] = None
) -> Table2Result:
    scale = scale or ExperimentScale.default()
    pretrained = pretrain_task(task, scale)
    result = Table2Result()
    for flags in ABLATION_ROWS:
        if not flags[0]:
            result.accuracies.append(pretrained.float_accuracy)
            continue
        qconfig = ablation_config(*flags)
        result.accuracies.append(qat_accuracy(pretrained, qconfig, scale))
    return result
