"""ASCII chart rendering (no plotting dependencies available offline).

Used to reproduce the paper's *figures* as figures: Figure 3's
accuracy-vs-bitwidth series render as a monospace line chart with one mark
per (series, bitwidth) point.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple


def ascii_chart(
    x_labels: Sequence[str],
    series: Dict[str, List[float]],
    height: int = 16,
    title: str = "",
    y_label: str = "",
) -> str:
    """Render named series over categorical x positions as an ASCII chart.

    Each series gets a distinct mark; coinciding points show the mark of the
    last series drawn.  The y-axis spans the data range with a small margin.
    """
    if not series:
        raise ValueError("no series to plot")
    lengths = {len(values) for values in series.values()}
    if lengths != {len(x_labels)}:
        raise ValueError("every series must have one value per x label")

    values = [v for vs in series.values() for v in vs]
    low, high = min(values), max(values)
    if high == low:
        high = low + 1.0
    margin = 0.05 * (high - low)
    low -= margin
    high += margin

    marks = "ox+*#@"
    columns = len(x_labels)
    width = max(6, (60 // columns)) * columns
    grid = [[" "] * width for _ in range(height)]

    def x_position(index: int) -> int:
        return int((index + 0.5) * width / columns)

    def y_position(value: float) -> int:
        fraction = (value - low) / (high - low)
        return height - 1 - int(round(fraction * (height - 1)))

    for (name, data), mark in zip(series.items(), marks):
        for index, value in enumerate(data):
            grid[y_position(value)][x_position(index)] = mark

    lines: List[str] = []
    if title:
        lines.append(title)
    for row_index, row in enumerate(grid):
        fraction = 1.0 - row_index / (height - 1)
        tick = low + fraction * (high - low)
        lines.append(f"{tick:7.1f} |" + "".join(row))
    axis = " " * 8 + "+" + "-" * width
    lines.append(axis)
    label_row = [" "] * width
    for index, label in enumerate(x_labels):
        position = x_position(index)
        start = max(0, position - len(label) // 2)
        for offset, char in enumerate(label):
            if start + offset < width:
                label_row[start + offset] = char
    lines.append(" " * 9 + "".join(label_row))
    legend = "   ".join(
        f"{mark} {name}" for (name, _), mark in zip(series.items(), marks)
    )
    lines.append(" " * 9 + legend)
    if y_label:
        lines.append(" " * 9 + f"(y: {y_label})")
    return "\n".join(lines)


def figure3_chart(result, task: str) -> str:
    """Render one task's Figure 3 panel from a Figure3Result."""
    from .figure3 import BITWIDTHS

    labels = [str(bits) for bits in BITWIDTHS]
    series = {
        "CLIP": result.series(task, clip=True),
        "NO_CLIP": result.series(task, clip=False),
    }
    return ascii_chart(
        labels,
        series,
        title=f"Figure 3 ({task}): accuracy vs weight bitwidth",
        y_label="accuracy %",
    )
