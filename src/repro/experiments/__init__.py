"""Experiment drivers: one module per paper table/figure.

- :mod:`figure3` — accuracy vs weight bitwidth, clip vs no-clip
- :mod:`table1` — FQ-BERT vs float accuracy + compression ratio
- :mod:`table2` — cumulative quantization ablation
- :mod:`table3` — FPGA resources and latency per (N, M)
- :mod:`table4` — CPU/GPU/FPGA latency, power, fps/W

Run everything: ``python -m repro.experiments``.
"""

from .common import ExperimentScale, clear_cache, make_task, pretrain_task, qat_accuracy
from .figure3 import BITWIDTHS, Figure3Result, PAPER_FIGURE3, run_figure3
from .table1 import PAPER_TABLE1, Table1Result, run_table1
from .table2 import ABLATION_ROWS, PAPER_TABLE2, Table2Result, ablation_config, run_table2
from .table3 import DESIGN_POINTS, PAPER_TABLE3, Table3Result, run_table3
from .table4 import PAPER_TABLE4, Table4Result, run_table4
from .plots import ascii_chart, figure3_chart
from .report import generate_report
from .tables import render_table

__all__ = [
    "ExperimentScale",
    "pretrain_task",
    "qat_accuracy",
    "make_task",
    "clear_cache",
    "run_figure3",
    "Figure3Result",
    "BITWIDTHS",
    "PAPER_FIGURE3",
    "run_table1",
    "Table1Result",
    "PAPER_TABLE1",
    "run_table2",
    "Table2Result",
    "ablation_config",
    "ABLATION_ROWS",
    "PAPER_TABLE2",
    "run_table3",
    "Table3Result",
    "DESIGN_POINTS",
    "PAPER_TABLE3",
    "run_table4",
    "Table4Result",
    "PAPER_TABLE4",
    "render_table",
    "ascii_chart",
    "figure3_chart",
    "generate_report",
]
