"""Post-training quantization (PTQ): calibrate scales without fine-tuning.

The paper uses QAT ("fine-tune the model with quantization function"); PTQ
is the cheaper alternative every deployment flow also offers: run a few
calibration batches through the fake-quant model in evaluation-observe mode
to settle the EMA ranges, and never update a weight.  The PTQ-vs-QAT bench
quantifies what the fine-tuning step buys at each bitwidth — at w8 they tie,
at w4 QAT pulls ahead slightly, and at w2 PTQ collapses while QAT partially
recovers (the gap the paper's training recipe exists to close).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..autograd import no_grad
from ..data.dataset import EncodedDataset
from .qat import QuantConfig
from .qbert import QuantBertForSequenceClassification, quantize_model


def calibrate(
    model: QuantBertForSequenceClassification,
    data: EncodedDataset,
    num_batches: int = 8,
    batch_size: int = 32,
    rng: Optional[np.random.Generator] = None,
) -> QuantBertForSequenceClassification:
    """Settle every observer's EMA statistics with calibration batches.

    The model stays in training mode so observers update, but runs under
    ``no_grad`` and no optimizer step ever happens — pure calibration.
    """
    model.train()
    rng = rng or np.random.default_rng(0)
    seen = 0
    with no_grad():
        for batch in data.batches(batch_size, shuffle=True, rng=rng):
            model(batch.input_ids, batch.attention_mask, batch.token_type_ids)
            seen += 1
            if seen >= num_batches:
                break
    model.eval()
    return model


def post_training_quantize(
    float_model,
    qconfig: QuantConfig,
    calibration_data: EncodedDataset,
    num_batches: int = 8,
    rng: Optional[np.random.Generator] = None,
) -> QuantBertForSequenceClassification:
    """One-call PTQ: convert the float model and calibrate its observers."""
    rng = rng or np.random.default_rng(0)
    quant_model = quantize_model(float_model, qconfig, rng=rng)
    return calibrate(quant_model, calibration_data, num_batches=num_batches, rng=rng)
