"""Quantization-noise analysis: per-tensor SQNR and the 6 dB/bit law.

A quantization library should be able to *explain* where its error comes
from.  This module measures signal-to-quantization-noise ratios:

- :func:`tensor_sqnr` — SQNR of fake-quantizing one tensor at a given
  bitwidth (uniform quantization theory predicts ~6.02 dB per bit for
  full-range signals).
- :func:`weight_sqnr_report` — per-layer weight SQNR of a quantized BERT,
  comparing per-tensor (clip / no-clip) and per-channel granularity.
- :func:`logit_degradation` — end-to-end: how far the quantized model's
  logits drift from the float model's on given inputs, the summary number
  behind the accuracy drops of Table I.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..autograd import no_grad
from .quantizer import fake_quantize_array, symmetric_scale


def tensor_sqnr(values: np.ndarray, bits: int, clip_max: Optional[float] = None) -> float:
    """SQNR (dB) of symmetric fake-quantization at ``bits``.

    ``clip_max`` overrides the range (values outside saturate), modeling a
    tuned clip threshold.  Returns +inf for an all-zero tensor.
    """
    values = np.asarray(values, dtype=np.float64)
    signal = float((values ** 2).mean())
    if signal == 0.0:
        return float("inf")
    max_abs = float(np.abs(values).max()) if clip_max is None else float(clip_max)
    scale = float(symmetric_scale(max_abs, bits))
    recovered = fake_quantize_array(values, scale, bits)
    noise = float(((values - recovered) ** 2).mean())
    if noise == 0.0:
        return float("inf")
    return 10.0 * np.log10(signal / noise)


def per_channel_sqnr(weight: np.ndarray, bits: int) -> float:
    """SQNR with one scale per output row (axis 0)."""
    weight = np.asarray(weight, dtype=np.float64)
    max_abs = np.abs(weight).max(axis=1, keepdims=True)
    scales = symmetric_scale(max_abs, bits)
    recovered = fake_quantize_array(weight, scales, bits)
    signal = float((weight ** 2).mean())
    noise = float(((weight - recovered) ** 2).mean())
    if noise == 0.0:
        return float("inf")
    return 10.0 * np.log10(signal / noise)


def sqnr_per_bit_slope(values: np.ndarray, bit_range: Tuple[int, ...] = (2, 4, 6, 8)) -> float:
    """Fitted dB/bit slope — uniform-quantization theory predicts ~6.02."""
    sqnrs = [tensor_sqnr(values, bits) for bits in bit_range]
    slope = np.polyfit(bit_range, sqnrs, 1)[0]
    return float(slope)


def weight_sqnr_report(quant_model, bits: Optional[int] = None) -> List[Dict]:
    """Per-linear-layer weight SQNR of a quantized BERT.

    Returns one row per QuantLinear: layer path, per-tensor SQNR with the
    layer's current clip, per-tensor minmax SQNR, and per-channel SQNR.
    """
    from .qat import QuantLinear

    rows: List[Dict] = []
    for name, module in quant_model.named_modules():
        if not isinstance(module, QuantLinear):
            continue
        weight = module.weight.data
        layer_bits = bits if bits is not None else module.config.weight_bits
        clip = None
        if module.config.use_clip and not module.weight_quantizer.per_channel:
            clip = float(abs(module.weight_quantizer.clip_value.data))
        rows.append(
            {
                "layer": name,
                "bits": layer_bits,
                "sqnr_clip_db": tensor_sqnr(weight, layer_bits, clip_max=clip),
                "sqnr_minmax_db": tensor_sqnr(weight, layer_bits),
                "sqnr_per_channel_db": per_channel_sqnr(weight, layer_bits),
            }
        )
    return rows


def logit_degradation(
    float_model,
    quant_model,
    input_ids: np.ndarray,
    attention_mask: Optional[np.ndarray] = None,
    token_type_ids: Optional[np.ndarray] = None,
) -> Dict[str, float]:
    """End-to-end logit drift between a float model and its quantized copy."""
    float_model.eval()
    quant_model.eval()
    with no_grad():
        float_logits = float_model(input_ids, attention_mask, token_type_ids).data
        quant_logits = quant_model(input_ids, attention_mask, token_type_ids).data
    drift = quant_logits - float_logits
    signal = float((float_logits ** 2).mean())
    noise = float((drift ** 2).mean())
    flips = float(
        (float_logits.argmax(-1) != quant_logits.argmax(-1)).mean()
    )
    return {
        "max_abs_drift": float(np.abs(drift).max()),
        "mean_abs_drift": float(np.abs(drift).mean()),
        "logit_sqnr_db": 10.0 * np.log10(signal / noise) if noise else float("inf"),
        "prediction_flip_rate": flips,
    }
