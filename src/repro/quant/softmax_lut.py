"""Quantized softmax with a 256-entry exponential lookup table.

Section III-B of the paper: exp() is too expensive in LUTs/DSPs, so the
softmax core subtracts the row maximum first — softmax is shift-invariant —
which bounds exp(x - max) to (0, 1].  With the numerator quantized to 8
bits, a 256-entry table indexed by the quantized difference suffices.

This module provides:

- :func:`build_exp_lut` — the table the hardware loads into its parameter
  buffer at initialization.
- :func:`quantized_softmax` — the bit-accurate integer softmax used by both
  the integer inference engine and the accelerator's functional model.
- :func:`fake_quant_softmax` — the differentiable QAT version whose forward
  matches the integer path but which backpropagates like float softmax via
  straight-through estimators.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..autograd import Tensor
from ..autograd.functional import ste_round

LUT_ENTRIES = 256
OUTPUT_LEVELS = 255  # 8-bit unsigned numerator/output codes: 0..255


def build_exp_lut(
    score_scale: float,
    entries: int = LUT_ENTRIES,
    output_levels: int = OUTPUT_LEVELS,
) -> np.ndarray:
    """Build the exp LUT: entry ``d`` holds ``round(exp(-d / s) * levels)``.

    ``d`` is the non-negative integer difference ``max_code - x_code`` of the
    8-bit score codes; dividing by the score scale recovers the real-valued
    (negative) argument of exp.  Entry 0 is exp(0) = ``output_levels``.
    """
    if score_scale <= 0:
        raise ValueError(f"score_scale must be positive, got {score_scale}")
    if entries < 2:
        raise ValueError(f"LUT needs >= 2 entries, got {entries}")
    diffs = np.arange(entries, dtype=np.float64)
    values = np.exp(-diffs / score_scale) * output_levels
    return np.rint(values).astype(np.int64)


def quantized_softmax(
    score_codes: np.ndarray,
    score_scale: float,
    lut: np.ndarray = None,
    output_levels: int = OUTPUT_LEVELS,
    mask: np.ndarray = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Integer softmax over the last axis.

    Parameters
    ----------
    score_codes:
        Integer codes of the attention scores (output of the QKᵀ requantizer).
    score_scale:
        The scale mapping codes back to real scores.
    lut:
        Optional prebuilt table (otherwise built from ``score_scale``).
    mask:
        Optional 0/1 validity mask broadcastable to ``score_codes``.  The
        hardware controller simply never streams padded key positions into
        the softmax core; we model that by excluding masked entries from the
        row max and zeroing their numerators.

    Returns
    -------
    (output_codes, numerators):
        ``output_codes`` are the 8-bit unsigned attention-probability codes
        in ``[0, output_levels]`` with scale ``output_levels`` (i.e. the real
        probability is ``code / output_levels``); ``numerators`` are the
        8-bit exp codes, exposed because the accelerator's softmax core
        streams them to the divider.
    """
    score_codes = np.asarray(score_codes, dtype=np.int64)
    if lut is None:
        lut = build_exp_lut(score_scale, output_levels=output_levels)
    if mask is not None:
        valid = np.broadcast_to(np.asarray(mask, dtype=bool), score_codes.shape)
        masked_codes = np.where(valid, score_codes, np.iinfo(np.int64).min)
        row_max = masked_codes.max(axis=-1, keepdims=True)
    else:
        valid = None
        row_max = score_codes.max(axis=-1, keepdims=True)
    diffs = row_max - score_codes  # >= 0 on valid positions
    diffs = np.clip(diffs, 0, len(lut) - 1)
    numerators = lut[diffs]
    if valid is not None:
        numerators = np.where(valid, numerators, 0)
    denominators = numerators.sum(axis=-1, keepdims=True)
    # denominator >= lut[0] > 0 always (the max element contributes exp(0)).
    outputs = np.rint(numerators * output_levels / denominators).astype(np.int64)
    return outputs, numerators


def fake_quant_softmax(
    scores: Tensor,
    score_scale: float,
    axis: int = -1,
    mask: np.ndarray = None,
) -> Tensor:
    """Differentiable softmax whose forward follows the quantized datapath.

    Forward: quantize scores, subtract max, quantize exp() numerators to
    8 bits, normalize, quantize the output to 8 bits — numerically identical
    to :func:`quantized_softmax` up to the LUT's rounding of exp itself.
    Backward: straight-through estimators on every rounding, so gradients
    are those of a float softmax with saturation masks.  ``mask`` (0/1,
    broadcastable) excludes padded key positions, mirroring the hardware
    controller which never streams them into the softmax core.
    """
    if axis != -1:
        raise ValueError("fake_quant_softmax only supports the last axis")
    # Quantize scores to 8-bit codes (already the case post-requantization,
    # but making it explicit keeps this function self-contained for QAT).
    score_codes = ste_round(scores * score_scale)
    if mask is not None:
        valid = np.broadcast_to(np.asarray(mask, dtype=bool), score_codes.shape)
        masked = np.where(valid, score_codes.data, -np.inf)
        max_codes = Tensor(masked.max(axis=-1, keepdims=True))
    else:
        valid = None
        max_codes = Tensor(score_codes.data.max(axis=-1, keepdims=True))
    shifted = (score_codes - max_codes) * (1.0 / score_scale)  # <= 0 on valid
    # Masked positions can sit above the valid max; clamp before exp so the
    # (mask-zeroed) numerators never overflow.
    shifted = shifted.clamp(-1e30, 0.0)
    numerators = ste_round(shifted.exp() * float(OUTPUT_LEVELS)) * (1.0 / OUTPUT_LEVELS)
    if valid is not None:
        numerators = numerators * Tensor(valid.astype(np.float32))
    denominators = numerators.sum(axis=-1, keepdims=True)
    probs = numerators / denominators
    return ste_round(probs * float(OUTPUT_LEVELS)) * (1.0 / OUTPUT_LEVELS)


def lut_max_error(score_scale: float, entries: int = LUT_ENTRIES) -> float:
    """Worst-case absolute LUT error against float exp, over all 8-bit diffs.

    8-bit score codes produce differences up to 254, so a table smaller than
    256 entries must clamp the tail — that clamp error dominates for small
    tables, which is why the paper sizes the table at exactly 256 entries
    (one per representable difference).
    """
    lut = build_exp_lut(score_scale, entries=entries)
    diffs = np.arange(LUT_ENTRIES, dtype=np.int64)
    looked_up = lut[np.clip(diffs, 0, entries - 1)]
    exact = np.exp(-diffs.astype(np.float64) / score_scale)
    return float(np.abs(looked_up / OUTPUT_LEVELS - exact).max())
