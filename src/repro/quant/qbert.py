"""FQ-BERT: the fully quantized BERT model (Section II of the paper).

This mirrors :mod:`repro.bert` but places a quantizer at every *hardware
buffer point* of the accelerator (Figure 2): the embedding output (input
buffer), Q/K/V and the attention matrix (intermediate buffer), each linear
output, the softmax output, and both Add&LN outputs.  Scales are threaded
explicitly between modules — exactly the information the integer conversion
(:mod:`repro.quant.integer_model`) later freezes into requantization
multipliers, and the same tensors the accelerator streams between its
buffers.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..autograd import Tensor, no_grad
from ..autograd import functional as F
from ..autograd import nn
from ..bert.attention import _additive_mask, merge_heads, split_heads
from ..bert.config import BertConfig
from .qat import FakeQuantize, QuantConfig, QuantLayerNorm, QuantLinear, WeightQuantizer
from .softmax_lut import fake_quant_softmax


class QuantEmbedding(nn.Module):
    """Embedding table with weight fake-quantization.

    Embedding tables dominate BERT's parameter memory, so FQ-BERT quantizes
    them to the same 4-bit grid as the matmul weights (that is where most of
    the 7.94x compression comes from).
    """

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        config: QuantConfig,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = nn.Parameter(
            rng.normal(0.0, 0.02, size=(num_embeddings, embedding_dim)).astype(np.float32)
        )
        self.config = config
        self.enabled = config.quantize_embeddings and config.quantize_weights
        if self.enabled:
            self.weight_quantizer = WeightQuantizer(self.weight, config)

    def forward(self, indices: np.ndarray) -> Tensor:
        if self.enabled:
            w_q, _ = self.weight_quantizer(self.weight)
        else:
            w_q = self.weight
        return F.embedding(w_q, np.asarray(indices))


class QuantBertEmbeddings(nn.Module):
    """Token + position + segment embeddings, Add, LN, output quantizer.

    In the paper's deployment this block runs on the host CPU; the final
    quantizer models the 8-bit activation stream sent over AXI to the FPGA
    input buffer.
    """

    def __init__(self, config: BertConfig, qconfig: QuantConfig, rng=None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.config = config
        self.word_embeddings = QuantEmbedding(config.vocab_size, config.hidden_size, qconfig, rng)
        self.position_embeddings = QuantEmbedding(
            config.max_position_embeddings, config.hidden_size, qconfig, rng
        )
        self.token_type_embeddings = QuantEmbedding(
            config.type_vocab_size, config.hidden_size, qconfig, rng
        )
        self.layer_norm = QuantLayerNorm(config.hidden_size, qconfig, eps=config.layer_norm_eps)
        self.dropout = nn.Dropout(config.hidden_dropout_prob)

    def forward(
        self,
        input_ids: np.ndarray,
        token_type_ids: Optional[np.ndarray] = None,
    ) -> Tuple[Tensor, Optional[float]]:
        input_ids = np.asarray(input_ids)
        batch, seq_len = input_ids.shape
        if token_type_ids is None:
            token_type_ids = np.zeros_like(input_ids)
        position_ids = np.broadcast_to(np.arange(seq_len), (batch, seq_len))
        embedded = (
            self.word_embeddings(input_ids)
            + self.position_embeddings(position_ids)
            + self.token_type_embeddings(token_type_ids)
        )
        x, scale = self.layer_norm(embedded)
        return self.dropout(x), scale


class QuantBertSelfAttention(nn.Module):
    """Quantized multi-head self-attention.

    Maps one-to-one onto the accelerator stages of Figure 5:
    ``X·W_Q / X·W_K / X·W_V`` (8b x 4b on the PEs), ``Q·K^T`` (8b x 8b via the
    BIM's composed mode), softmax (softmax core), ``Attn·V`` (8b x 8b).
    """

    def __init__(self, config: BertConfig, qconfig: QuantConfig, rng=None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.num_heads = config.num_attention_heads
        self.head_dim = config.head_dim
        self.inv_sqrt_d = 1.0 / float(np.sqrt(self.head_dim))
        self.qconfig = qconfig
        hidden = config.hidden_size
        self.query = QuantLinear(hidden, hidden, qconfig, rng=rng)
        self.key = QuantLinear(hidden, hidden, qconfig, rng=rng)
        self.value = QuantLinear(hidden, hidden, qconfig, rng=rng)
        self.score_quantizer = FakeQuantize(qconfig)
        if not qconfig.quantize_softmax:
            # Float-softmax path: the attention matrix still lands in the
            # 8-bit intermediate buffer, via a plain activation quantizer.
            self.prob_quantizer = FakeQuantize(qconfig)
        self.context_quantizer = FakeQuantize(qconfig)
        self.dropout = nn.Dropout(config.attention_dropout_prob)

    def forward(
        self,
        hidden_states: Tensor,
        in_scale: Optional[float],
        attention_mask: Optional[np.ndarray] = None,
    ) -> Tuple[Tensor, Optional[float]]:
        q, _ = self.query(hidden_states, in_scale)
        k, _ = self.key(hidden_states, in_scale)
        v, _ = self.value(hidden_states, in_scale)
        q = split_heads(q, self.num_heads)
        k = split_heads(k, self.num_heads)
        v = split_heads(v, self.num_heads)

        # The 1/sqrt(d) scale is folded into the score requantization factor
        # on hardware; in the fake-quant domain we apply it before the score
        # buffer point so both paths see identically scaled scores.
        scores = q.matmul(k.swapaxes(-1, -2)) * self.inv_sqrt_d
        scores, score_scale = self.score_quantizer(scores)

        if self.qconfig.quantize_softmax and score_scale is not None:
            probs = fake_quant_softmax(scores, score_scale, mask=_mask_or_none(attention_mask))
        else:
            if attention_mask is not None:
                scores = scores + Tensor(_additive_mask(attention_mask))
            probs = F.softmax(scores, axis=-1)
            probs, _ = self.prob_quantizer(probs)
        probs = self.dropout(probs)

        context = probs.matmul(v)
        context, context_scale = self.context_quantizer(context)
        return merge_heads(context), context_scale


class QuantBertAttention(nn.Module):
    """Self-attention + output projection (``O_A·W_s``) + residual Add&LN."""

    def __init__(self, config: BertConfig, qconfig: QuantConfig, rng=None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.self_attention = QuantBertSelfAttention(config, qconfig, rng=rng)
        self.output_dense = QuantLinear(config.hidden_size, config.hidden_size, qconfig, rng=rng)
        self.output_dropout = nn.Dropout(config.hidden_dropout_prob)
        self.layer_norm = QuantLayerNorm(config.hidden_size, qconfig, eps=config.layer_norm_eps)

    def forward(
        self,
        hidden_states: Tensor,
        in_scale: Optional[float],
        attention_mask: Optional[np.ndarray] = None,
    ) -> Tuple[Tensor, Optional[float]]:
        context, context_scale = self.self_attention(hidden_states, in_scale, attention_mask)
        projected, _ = self.output_dense(context, context_scale)
        projected = self.output_dropout(projected)
        # The LN core's first pipeline stage consumes two vectors with two
        # scaling factors (Sec. III-B) — this is that Add.
        return self.layer_norm(projected + hidden_states)


class QuantBertFeedForward(nn.Module):
    """FFN1 + GELU + FFN2 + Add&LN on the quantized datapath."""

    def __init__(self, config: BertConfig, qconfig: QuantConfig, rng=None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.ffn1 = QuantLinear(config.hidden_size, config.intermediate_size, qconfig, rng=rng)
        self.gelu_quantizer = FakeQuantize(qconfig)
        self.ffn2 = QuantLinear(config.intermediate_size, config.hidden_size, qconfig, rng=rng)
        self.dropout = nn.Dropout(config.hidden_dropout_prob)
        self.layer_norm = QuantLayerNorm(config.hidden_size, qconfig, eps=config.layer_norm_eps)

    def forward(
        self, hidden_states: Tensor, in_scale: Optional[float]
    ) -> Tuple[Tensor, Optional[float]]:
        intermediate, _ = self.ffn1(hidden_states, in_scale)
        activated, act_scale = self.gelu_quantizer(F.gelu(intermediate))
        projected, _ = self.ffn2(activated, act_scale)
        projected = self.dropout(projected)
        return self.layer_norm(projected + hidden_states)


class QuantBertLayer(nn.Module):
    """One fully quantized encoder layer."""

    def __init__(self, config: BertConfig, qconfig: QuantConfig, rng=None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.attention = QuantBertAttention(config, qconfig, rng=rng)
        self.feed_forward = QuantBertFeedForward(config, qconfig, rng=rng)

    def forward(
        self,
        hidden_states: Tensor,
        in_scale: Optional[float],
        attention_mask: Optional[np.ndarray] = None,
    ) -> Tuple[Tensor, Optional[float]]:
        attended, attn_scale = self.attention(hidden_states, in_scale, attention_mask)
        return self.feed_forward(attended, attn_scale)


class QuantBertEncoder(nn.Module):
    """Stack of quantized encoder layers with scale threading."""

    def __init__(self, config: BertConfig, qconfig: QuantConfig, rng=None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.layers = nn.ModuleList(
            [QuantBertLayer(config, qconfig, rng=rng) for _ in range(config.num_hidden_layers)]
        )

    def forward(
        self,
        hidden_states: Tensor,
        in_scale: Optional[float],
        attention_mask: Optional[np.ndarray] = None,
    ) -> Tuple[Tensor, Optional[float]]:
        scale = in_scale
        for layer in self.layers:
            hidden_states, scale = layer(hidden_states, scale, attention_mask)
        return hidden_states, scale


class QuantBertPooler(nn.Module):
    """[CLS] pooler; runs on the host CPU, float by default."""

    def __init__(self, config: BertConfig, qconfig: QuantConfig, rng=None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.quantize_task_layer = qconfig.quantize_task_layer
        if self.quantize_task_layer:
            self.dense = QuantLinear(config.hidden_size, config.hidden_size, qconfig, rng=rng)
        else:
            self.dense = nn.Linear(config.hidden_size, config.hidden_size, rng=rng)

    def forward(self, hidden_states: Tensor, in_scale: Optional[float]) -> Tensor:
        cls = hidden_states[:, 0, :]
        if self.quantize_task_layer:
            pooled, _ = self.dense(cls, in_scale)
        else:
            pooled = self.dense(cls)
        return pooled.tanh()


class QuantBertForSequenceClassification(nn.Module):
    """The complete FQ-BERT classifier.

    Same calling convention as
    :class:`repro.bert.BertForSequenceClassification`, so the training and
    evaluation loops work unchanged on both.
    """

    def __init__(
        self,
        config: BertConfig,
        qconfig: QuantConfig,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.config = config
        self.qconfig = qconfig
        self.embeddings = QuantBertEmbeddings(config, qconfig, rng=rng)
        self.encoder = QuantBertEncoder(config, qconfig, rng=rng)
        self.pooler = QuantBertPooler(config, qconfig, rng=rng)
        self.dropout = nn.Dropout(config.hidden_dropout_prob)
        self.classifier = nn.Linear(config.hidden_size, config.num_labels, rng=rng)

    def forward(
        self,
        input_ids: np.ndarray,
        attention_mask: Optional[np.ndarray] = None,
        token_type_ids: Optional[np.ndarray] = None,
    ) -> Tensor:
        embedded, scale = self.embeddings(input_ids, token_type_ids)
        encoded, scale = self.encoder(embedded, scale, attention_mask)
        pooled = self.pooler(encoded, scale)
        return self.classifier(self.dropout(pooled))

    def loss(
        self,
        input_ids: np.ndarray,
        labels: np.ndarray,
        attention_mask: Optional[np.ndarray] = None,
        token_type_ids: Optional[np.ndarray] = None,
    ) -> Tensor:
        logits = self.forward(input_ids, attention_mask, token_type_ids)
        return F.cross_entropy(logits, labels)

    def predict(
        self,
        input_ids: np.ndarray,
        attention_mask: Optional[np.ndarray] = None,
        token_type_ids: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        with no_grad():
            logits = self.forward(input_ids, attention_mask, token_type_ids)
        return logits.data.argmax(axis=-1)


def _mask_or_none(attention_mask: Optional[np.ndarray]) -> Optional[np.ndarray]:
    """(batch, seq) 0/1 mask -> (batch, 1, 1, seq) broadcastable, or None."""
    if attention_mask is None:
        return None
    mask = np.asarray(attention_mask)
    return mask[:, None, None, :]


def quantize_model(
    float_model,
    qconfig: QuantConfig,
    rng: Optional[np.random.Generator] = None,
) -> QuantBertForSequenceClassification:
    """Build an FQ-BERT initialised from a trained float BERT.

    This is the paper's two-phase recipe: first train the original model,
    then fine-tune with the quantization function inserted.  Weights are
    copied; clip thresholds are initialised from the copied weights'
    percentile statistics.
    """
    config = float_model.config
    quant_model = QuantBertForSequenceClassification(config, qconfig, rng=rng)
    float_state = float_model.state_dict()

    mapping = _parameter_name_mapping(config)
    quant_params = dict(quant_model.named_parameters())
    for float_name, quant_name in mapping.items():
        source = float_state[float_name]
        target = quant_params[quant_name]
        if target.data.shape != source.shape:
            raise ValueError(
                f"shape mismatch copying {float_name} -> {quant_name}: "
                f"{source.shape} vs {target.data.shape}"
            )
        target.data = source.astype(np.float32).copy()

    # Re-initialise clip thresholds from the loaded weights.
    for module in quant_model.modules():
        if isinstance(module, QuantLinear):
            module.load_float_weights(module.weight.data, None)
        elif (
            isinstance(module, QuantEmbedding)
            and module.enabled
            and qconfig.use_clip
            and not qconfig.per_channel_weights
        ):
            init = float(
                np.percentile(np.abs(module.weight.data), qconfig.clip_init_percentile)
            )
            module.weight_quantizer.clip_value.data = np.array(
                max(init, 1e-8), dtype=np.float32
            )
    return quant_model


def _parameter_name_mapping(config: BertConfig) -> dict:
    """float-model parameter path -> quant-model parameter path."""
    mapping = {
        "bert.embeddings.word_embeddings.weight": "embeddings.word_embeddings.weight",
        "bert.embeddings.position_embeddings.weight": "embeddings.position_embeddings.weight",
        "bert.embeddings.token_type_embeddings.weight": "embeddings.token_type_embeddings.weight",
        "bert.embeddings.layer_norm.weight": "embeddings.layer_norm.weight",
        "bert.embeddings.layer_norm.bias": "embeddings.layer_norm.bias",
        "bert.pooler.dense.weight": "pooler.dense.weight",
        "bert.pooler.dense.bias": "pooler.dense.bias",
        "classifier.weight": "classifier.weight",
        "classifier.bias": "classifier.bias",
    }
    for i in range(config.num_hidden_layers):
        src = f"bert.encoder.layers.{i}"
        dst = f"encoder.layers.{i}"
        for proj in ("query", "key", "value"):
            mapping[f"{src}.attention.self_attention.{proj}.weight"] = (
                f"{dst}.attention.self_attention.{proj}.weight"
            )
            mapping[f"{src}.attention.self_attention.{proj}.bias"] = (
                f"{dst}.attention.self_attention.{proj}.bias"
            )
        mapping[f"{src}.attention.output_dense.weight"] = f"{dst}.attention.output_dense.weight"
        mapping[f"{src}.attention.output_dense.bias"] = f"{dst}.attention.output_dense.bias"
        mapping[f"{src}.attention.layer_norm.weight"] = f"{dst}.attention.layer_norm.weight"
        mapping[f"{src}.attention.layer_norm.bias"] = f"{dst}.attention.layer_norm.bias"
        for ffn in ("ffn1", "ffn2"):
            mapping[f"{src}.feed_forward.{ffn}.weight"] = f"{dst}.feed_forward.{ffn}.weight"
            mapping[f"{src}.feed_forward.{ffn}.bias"] = f"{dst}.feed_forward.{ffn}.bias"
        mapping[f"{src}.feed_forward.layer_norm.weight"] = f"{dst}.feed_forward.layer_norm.weight"
        mapping[f"{src}.feed_forward.layer_norm.bias"] = f"{dst}.feed_forward.layer_norm.bias"
    return mapping
