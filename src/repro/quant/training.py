"""Training and evaluation loops shared by the float and quantized models.

The paper's recipe (Sec. IV-A): train the original model first, then
fine-tune with the quantization function inserted.  :func:`train_classifier`
implements one phase; the experiment drivers chain two calls (float
pretrain, then QAT fine-tune on the converted model).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..autograd.optim import AdamW, LinearWarmupSchedule, clip_grad_norm
from ..data.dataset import EncodedDataset, accuracy


@dataclass
class TrainResult:
    """Outcome of one training run."""

    final_accuracy: float
    best_accuracy: float
    epoch_accuracies: List[float] = field(default_factory=list)
    epoch_losses: List[float] = field(default_factory=list)


def evaluate(model, data: EncodedDataset, batch_size: int = 64) -> float:
    """Dev-set accuracy (percent) of a classifier model."""
    model.eval()
    predictions = []
    for batch in data.batches(batch_size, shuffle=False):
        predictions.append(
            model.predict(batch.input_ids, batch.attention_mask, batch.token_type_ids)
        )
    model.train()
    return accuracy(np.concatenate(predictions), data.labels)


def train_classifier(
    model,
    train_data: EncodedDataset,
    dev_data: EncodedDataset,
    epochs: int = 3,
    lr: float = 5e-4,
    batch_size: int = 32,
    weight_decay: float = 0.01,
    max_grad_norm: float = 1.0,
    warmup_fraction: float = 0.1,
    seed: int = 0,
    keep_best: bool = True,
) -> TrainResult:
    """Fine-tune ``model`` on ``train_data``; track dev accuracy per epoch.

    With ``keep_best`` the best-epoch weights are restored at the end —
    standard GLUE practice, and important for QAT where late epochs can
    oscillate around the quantization grid.
    """
    rng = np.random.default_rng(seed)
    optimizer = AdamW(model.parameters(), lr=lr, weight_decay=weight_decay)
    steps_per_epoch = max(1, (len(train_data) + batch_size - 1) // batch_size)
    total_steps = steps_per_epoch * epochs
    schedule = LinearWarmupSchedule(
        optimizer,
        warmup_steps=int(total_steps * warmup_fraction),
        total_steps=total_steps,
    )

    result = TrainResult(final_accuracy=0.0, best_accuracy=0.0)
    best_state = None
    model.train()
    for _ in range(epochs):
        epoch_loss = 0.0
        batches = 0
        for batch in train_data.batches(batch_size, shuffle=True, rng=rng):
            optimizer.zero_grad()
            loss = model.loss(
                batch.input_ids, batch.labels, batch.attention_mask, batch.token_type_ids
            )
            loss.backward()
            clip_grad_norm(model.parameters(), max_grad_norm)
            optimizer.step()
            schedule.step()
            epoch_loss += float(loss.data)
            batches += 1
        dev_accuracy = evaluate(model, dev_data, batch_size=max(batch_size, 64))
        result.epoch_losses.append(epoch_loss / max(1, batches))
        result.epoch_accuracies.append(dev_accuracy)
        if dev_accuracy >= result.best_accuracy:
            result.best_accuracy = dev_accuracy
            if keep_best:
                best_state = model.state_dict()

    if keep_best and best_state is not None:
        model.load_state_dict(best_state)
        _reload_observers(model)
        result.final_accuracy = evaluate(model, dev_data)
    else:
        result.final_accuracy = result.epoch_accuracies[-1] if result.epoch_accuracies else 0.0
    return result


def _reload_observers(model) -> None:
    """Re-sync live observers from their serialized buffers after a state load."""
    from .qat import FakeQuantize

    for module in model.modules():
        if isinstance(module, FakeQuantize):
            module.load_observer()
