"""Exact integer matrix multiplication on the float64 BLAS path.

numpy dispatches integer ``@`` to a generic (non-BLAS) inner loop, which is
an order of magnitude slower than dgemm.  But float64 arithmetic is *exact*
on integers as long as every product and partial sum stays below 2**53, so
small-integer GEMMs — and every matmul in the integer FQ-BERT datapath is
an 8-bit-by-4-bit or 8-bit-by-8-bit code product — can run on BLAS and cast
back to int64 without changing a single bit.  ``exact_matmul`` and
:class:`CachedMatmul` implement that dispatch with a conservative magnitude
guard: when the bound cannot be certified, they fall back to the native
int64 path, so results are bit-identical to ``a @ b`` in all cases.

The guard is conservative by construction: it bounds the *accumulated*
magnitude by ``k * max|a| * max|b|``, the worst case over any summation
order, so BLAS reordering of the dot products cannot introduce rounding.
"""

from __future__ import annotations

import numpy as np

# Largest integer magnitude float64 represents exactly (contiguously).
EXACT_F64_LIMIT = 2 ** 53


def max_abs(codes: np.ndarray) -> int:
    """Largest absolute value in an integer code array (0 when empty).

    Computed from the min/max as Python ints rather than ``np.abs`` —
    ``np.abs(INT64_MIN)`` overflows back to a negative value, which would
    silently defeat the exactness guard.

    Args:
        codes: Integer array of any shape.

    Returns:
        ``max(|codes|)`` as an exact Python int, or 0 for an empty array.
    """
    if codes.size == 0:
        return 0
    return max(-int(codes.min()), int(codes.max()), 0)


def product_bound(a_bound: int, b_bound: int, contract_dim: int) -> int:
    """Worst-case accumulator magnitude of a length-``contract_dim`` dot product.

    Args:
        a_bound: Bound on ``|a|`` entries.
        b_bound: Bound on ``|b|`` entries.
        contract_dim: Dot-product length K.

    Returns:
        ``contract_dim * a_bound * b_bound`` — an upper bound on every
        partial sum under any summation order.
    """
    return int(contract_dim) * int(a_bound) * int(b_bound)


def exact_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Integer matmul ``a @ b``, bit-identical to int64, BLAS-fast when safe.

    Args:
        a: Integer codes, shape ``(..., m, k)``.
        b: Integer codes, shape ``(..., k, n)``.

    Returns:
        ``a @ b`` as int64 — computed via float64 dgemm when the magnitude
        guard certifies exactness, via the native int64 loop otherwise.
    """
    bound = product_bound(max_abs(a), max_abs(b), a.shape[-1])
    if bound < EXACT_F64_LIMIT:
        return (a.astype(np.float64) @ b.astype(np.float64)).astype(np.int64)
    return a.astype(np.int64) @ b.astype(np.int64)


class CachedMatmul:
    """One fixed right-hand operand, pre-cast once for repeated matmuls.

    The integer model's weight matrices never change after conversion, so
    each :class:`~repro.quant.integer_model.IntegerLinear` builds one plan
    and reuses it every forward — eliminating the per-call transpose copy
    and ``astype`` of the seed implementation.
    """

    def __init__(self, b: np.ndarray):
        """Pre-cast the static operand.

        Args:
            b: Integer codes of shape ``(k, n)`` (already transposed for
               left-multiplication by activations).
        """
        b_i64 = np.ascontiguousarray(b, dtype=np.int64)
        if b_i64 is b:
            b_i64 = b_i64.copy()  # never freeze (or alias) the caller's array
        self.b_i64 = b_i64
        self.b_i64.flags.writeable = False
        self.b_f64 = self.b_i64.astype(np.float64)
        self.b_f64.flags.writeable = False
        self.b_bound = max_abs(self.b_i64)
        self.contract_dim = self.b_i64.shape[0]

    def __call__(self, a: np.ndarray) -> np.ndarray:
        """Compute ``a @ b`` exactly (int64 result).

        Args:
            a: Integer activation codes, shape ``(..., k)``.

        Returns:
            int64 product, bit-identical to the native int64 matmul.
        """
        bound = product_bound(max_abs(a), self.b_bound, self.contract_dim)
        if bound < EXACT_F64_LIMIT:
            return (a.astype(np.float64) @ self.b_f64).astype(np.int64)
        # Fallback must use the original integer operand: the float64 copy
        # is lossy exactly in this large-magnitude regime.
        return a.astype(np.int64) @ self.b_i64
