"""Model size accounting and the compression ratio of Table I.

The paper reports a 7.94x weight compression for FQ-BERT.  That number is
reproduced here from first principles: every weight (matmul *and* embedding
tables) moves from fp32 to ``weight_bits``; biases become int32 (same
storage as fp32); layer-norm parameters become 8-bit fixed point; each
quantized tensor additionally stores an 8-bit scale.  The ratio is then
``fp32_bytes / quantized_bytes``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..bert.config import BertConfig
from .qat import QuantConfig


@dataclass(frozen=True)
class ParameterInventory:
    """Scalar-parameter counts per storage category."""

    matmul_weights: int      # encoder linear weights (Q/K/V/W_s/FFN1/FFN2)
    embedding_weights: int   # word/position/segment tables
    task_weights: int        # pooler + classifier (host-side task layer)
    biases: int              # all linear biases
    layernorm_params: int    # all LN gamma/beta
    num_quantized_tensors: int  # tensors carrying an 8-bit scale factor

    @property
    def total(self) -> int:
        return (
            self.matmul_weights
            + self.embedding_weights
            + self.task_weights
            + self.biases
            + self.layernorm_params
        )


def parameter_inventory(config: BertConfig) -> ParameterInventory:
    """Count parameters of a BERT classifier analytically from its config."""
    hidden = config.hidden_size
    inter = config.intermediate_size
    layers = config.num_hidden_layers

    per_layer_matmul = 4 * hidden * hidden + 2 * hidden * inter
    matmul_weights = layers * per_layer_matmul

    embedding_weights = (
        config.vocab_size * hidden
        + config.max_position_embeddings * hidden
        + config.type_vocab_size * hidden
    )

    task_weights = hidden * hidden + hidden * config.num_labels  # pooler + classifier

    per_layer_bias = 4 * hidden + inter + hidden
    biases = layers * per_layer_bias + hidden + config.num_labels  # + pooler/classifier

    # Two LN blocks per layer plus the embedding LN, each gamma + beta.
    layernorm_params = (2 * layers + 1) * 2 * hidden

    # One weight-scale per linear / embedding table, one activation scale per
    # buffer point; the count only matters at byte granularity so a close
    # estimate suffices: ~10 quantized tensors per layer + embeddings.
    num_quantized_tensors = layers * 10 + 5

    return ParameterInventory(
        matmul_weights=matmul_weights,
        embedding_weights=embedding_weights,
        task_weights=task_weights,
        biases=biases,
        layernorm_params=layernorm_params,
        num_quantized_tensors=num_quantized_tensors,
    )


def float_size_bytes(config: BertConfig) -> int:
    """Model size with every parameter stored as fp32."""
    return parameter_inventory(config).total * 4


def quantized_size_bytes(config: BertConfig, qconfig: QuantConfig) -> float:
    """Model size under the FQ-BERT storage scheme.

    Weights at ``weight_bits`` (embeddings only when ``quantize_embeddings``),
    biases at 32-bit integers (Eq. 4), LN parameters at 8-bit fixed point
    when quantized, plus one 8-bit scale per quantized tensor.
    """
    inv = parameter_inventory(config)
    bits = 0.0
    weight_bits = qconfig.weight_bits if qconfig.quantize_weights else 32
    bits += inv.matmul_weights * weight_bits
    bits += inv.embedding_weights * (
        weight_bits if qconfig.quantize_embeddings and qconfig.quantize_weights else 32
    )
    bits += inv.task_weights * weight_bits
    bits += inv.biases * 32  # int32 (Eq. 4) or fp32 — same storage either way
    bits += inv.layernorm_params * (8 if qconfig.quantize_layernorm else 32)
    if qconfig.quantize_scales:
        bits += inv.num_quantized_tensors * 8
    else:
        bits += inv.num_quantized_tensors * 32
    return bits / 8.0


def compression_ratio(config: BertConfig, qconfig: QuantConfig) -> float:
    """Table I's ``Comp. Ratio``: fp32 bytes / FQ-BERT bytes."""
    return float_size_bytes(config) / quantized_size_bytes(config, qconfig)


def size_report(config: BertConfig, qconfig: QuantConfig) -> Dict[str, float]:
    """Human-readable size breakdown in megabytes."""
    inv = parameter_inventory(config)
    return {
        "total_params_millions": inv.total / 1e6,
        "fp32_megabytes": float_size_bytes(config) / 2 ** 20,
        "quantized_megabytes": quantized_size_bytes(config, qconfig) / 2 ** 20,
        "compression_ratio": compression_ratio(config, qconfig),
    }
