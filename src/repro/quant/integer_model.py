"""Integer-only inference engine for FQ-BERT.

This is the deployable form of the model: after QAT, every scale is frozen
and folded into fixed-point requantization multipliers (Eq. 5), weights are
stored as 4-bit codes, biases as int32 (Eq. 4), and the whole encoder runs
in integer arithmetic — the same arithmetic the FPGA accelerator executes.
The embedding block and the task layer run "on the host CPU" in float,
matching the paper's deployment split (Sec. III-A).

The conversion consumes a trained
:class:`repro.quant.qbert.QuantBertForSequenceClassification` and the engine
is validated against it: predictions must agree because the fake-quant
forward was designed to follow this exact datapath.

The engine is the serving hot path, so its kernels are fully batched and
tuned without changing a single output bit:

- every matmul runs through :mod:`repro.quant.intgemm`, which certifies a
  magnitude bound and executes on the float64 BLAS path (exact on small
  integers) instead of numpy's slow native int64 loop;
- weight operands are transposed and cast **once per model** at conversion
  (:class:`~repro.quant.intgemm.CachedMatmul`), not per forward call;
- the softmax-exp and GELU lookup tables are built once per distinct scale
  and shared across layers;
- layer-norm parameter codes are pre-widened once instead of per call.

``tests/perf/test_reference_equivalence.py`` locks every kernel to the seed
implementation (kept in :mod:`repro.perf.reference`) bit-for-bit.

The inference surface is split for serving: :meth:`encode` runs the batched
integer encoder, :meth:`classify` / :meth:`classify_rows` run the float
host head, and :meth:`forward` composes them (optionally chunking the
encoder pass — the integer arithmetic makes any chunking bit-identical).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..autograd import no_grad
from ..autograd import functional as F
from ..autograd.tensor import Tensor
from ..bert.config import BertConfig
from .fixedpoint import (
    FixedPointMultiplier,
    LN_PARAM_FORMAT,
    VectorFixedPointMultiplier,
    integer_isqrt,
    saturate,
)
from .intgemm import CachedMatmul, exact_matmul
from .qat import QuantConfig
from .qbert import QuantBertForSequenceClassification
from .quantizer import int_range
from .softmax_lut import OUTPUT_LEVELS, build_exp_lut, quantized_softmax

ACT_BITS = 8
LN_FRAC_BITS = 15


@dataclass
class IntegerLinear:
    """A linear layer frozen to integer parameters.

    ``forward`` computes Eq. 5 exactly:
    ``y_I = clamp(requant(acc), -127, 127)`` with
    ``acc = x_I @ W_I^T + b_I`` in int32/int64 arithmetic.

    ``weight_codes`` is treated as frozen after the first forward call: the
    transposed operand is cached (:class:`~repro.quant.intgemm.CachedMatmul`)
    so the per-call transpose copy and dtype cast of the seed implementation
    happen once per model instead of once per batch.
    """

    weight_codes: np.ndarray          # (out, in) integer weight codes
    bias_codes: Optional[np.ndarray]  # (out,) int32-range codes at s_a * s_w
    requant: FixedPointMultiplier     # s_y / (s_a * s_w)
    in_scale: float
    weight_scale: float
    out_scale: float
    out_bits: int = ACT_BITS

    @cached_property
    def _matmul(self) -> CachedMatmul:
        """The frozen ``x @ W^T`` plan (built lazily, reused every call)."""
        return CachedMatmul(np.asarray(self.weight_codes, dtype=np.int64).T)

    def invalidate_cache(self) -> None:
        """Drop the cached matmul plan after an in-place ``weight_codes`` edit.

        Only needed by callers that deliberately mutate frozen parameters
        (e.g. failure injection); normal inference never requires it.
        """
        self.__dict__.pop("_matmul", None)

    def forward(self, x_codes: np.ndarray) -> np.ndarray:
        """Apply the layer to activation codes.

        Args:
            x_codes: Integer activation codes, shape ``(..., in_features)``.

        Returns:
            Output codes saturated to ``out_bits``, bit-identical to the
            seed int64 implementation.
        """
        acc = self._matmul(x_codes)
        if self.bias_codes is not None:
            acc = acc + self.bias_codes
        return saturate(self.requant.apply(acc), self.out_bits)

    @property
    def weight_bits(self) -> int:
        max_code = int(np.abs(self.weight_codes).max()) if self.weight_codes.size else 0
        return max(2, max_code.bit_length() + 1)


@dataclass
class IntegerLayerNorm:
    """Fixed-point Add&LN, the arithmetic of the accelerator's LN core.

    Stage 1 aligns the two inputs (each with its own scale — exactly the
    "two input vectors with two scaling factors" of Sec. III-B) onto a
    common Q.15 grid and computes the mean; stage 2 subtracts the mean and
    computes the variance; stage 3 applies the 8-bit fixed-point gamma/beta
    and requantizes to the 8-bit output buffer.
    """

    gamma_codes: np.ndarray  # Q3.4 codes
    beta_codes: np.ndarray   # Q3.4 codes
    align_a: FixedPointMultiplier  # codes_a -> Q.15
    align_b: FixedPointMultiplier  # codes_b -> Q.15
    out_requant: FixedPointMultiplier  # Q.(15+4) -> output codes
    out_scale: float
    eps_fx: int

    @cached_property
    def _gamma_i64(self) -> np.ndarray:
        """Gamma codes pre-widened to int64 (frozen after first forward)."""
        return np.asarray(self.gamma_codes, dtype=np.int64)

    @cached_property
    def _beta_aligned(self) -> np.ndarray:
        """Beta codes pre-shifted onto the Q.(15+4) accumulator grid."""
        return np.asarray(self.beta_codes, dtype=np.int64) << LN_FRAC_BITS

    def invalidate_cache(self) -> None:
        """Drop pre-widened parameter caches after an in-place gamma/beta edit.

        Only needed by callers that deliberately mutate frozen parameters
        (e.g. failure injection); normal inference never requires it.
        """
        self.__dict__.pop("_gamma_i64", None)
        self.__dict__.pop("_beta_aligned", None)

    def forward(self, codes_a: np.ndarray, codes_b: np.ndarray) -> np.ndarray:
        """Fused Add&LN over the last axis of a code batch.

        Args:
            codes_a: Integer codes of the first addend (any leading shape).
            codes_b: Integer codes of the second addend, same shape.

        Returns:
            8-bit output codes, bit-identical to the seed implementation.
        """
        # Stage 1: align and add, then the row mean.
        v = self.align_a.apply(codes_a.astype(np.int64)) + self.align_b.apply(
            codes_b.astype(np.int64)
        )
        n = v.shape[-1]
        total = v.sum(axis=-1, keepdims=True)
        mean = np.rint(total / n).astype(np.int64)
        # Stage 2: center and the variance (2*LN_FRAC_BITS fractional bits).
        centered = v - mean
        var = (centered * centered).sum(axis=-1, keepdims=True) // n
        std = integer_isqrt(var + self.eps_fx)  # back to LN_FRAC_BITS frac
        # Stage 3: normalize, scale by gamma, add beta, requantize.
        normalized = (centered << LN_FRAC_BITS) // np.maximum(std, 1)
        acc = normalized * self._gamma_i64 + self._beta_aligned
        return saturate(self.out_requant.apply(acc), ACT_BITS)


@dataclass
class FloatLayerNorm:
    """Float LN used when the QAT config left LN parameters unquantized."""

    gamma: np.ndarray
    beta: np.ndarray
    in_scale_a: float
    in_scale_b: float
    out_scale: float
    eps: float

    def forward(self, codes_a: np.ndarray, codes_b: np.ndarray) -> np.ndarray:
        x = codes_a / self.in_scale_a + codes_b / self.in_scale_b
        mu = x.mean(axis=-1, keepdims=True)
        var = ((x - mu) ** 2).mean(axis=-1, keepdims=True)
        y = self.gamma * (x - mu) / np.sqrt(var + self.eps) + self.beta
        qmin, qmax = int_range(ACT_BITS)
        return np.clip(np.rint(y * self.out_scale), qmin, qmax).astype(np.int64)


@dataclass
class GeluLUT:
    """256-entry GELU lookup table: 8-bit input codes -> 8-bit output codes.

    Like the softmax exp table, an 8-bit-in/8-bit-out elementwise function
    is exactly a 256-entry ROM; this is how the accelerator evaluates GELU
    without DSPs.
    """

    table: np.ndarray  # indexed by code + 127
    in_scale: float
    out_scale: float

    @classmethod
    def build(cls, in_scale: float, out_scale: float) -> "GeluLUT":
        qmin, qmax = int_range(ACT_BITS)
        codes = np.arange(qmin, qmax + 1, dtype=np.int64)
        x = codes / in_scale
        gelu = 0.5 * x * (1.0 + np.tanh(np.sqrt(2.0 / np.pi) * (x + 0.044715 * x ** 3)))
        out = np.clip(np.rint(gelu * out_scale), qmin, qmax).astype(np.int64)
        return cls(table=out, in_scale=in_scale, out_scale=out_scale)

    def forward(self, codes: np.ndarray) -> np.ndarray:
        qmin, _ = int_range(ACT_BITS)
        return self.table[np.asarray(codes, dtype=np.int64) - qmin]


@dataclass
class IntegerSelfAttention:
    """Integer multi-head attention with LUT softmax.

    ``exp_lut`` may be *shared* between layers whose score scales are
    equal (:func:`convert_to_integer` builds each distinct table once), so
    an in-place edit of one layer's table — e.g. failure injection —
    affects every layer aliasing it; assign a fresh array to mutate one
    layer independently.
    """

    query: IntegerLinear
    key: IntegerLinear
    value: IntegerLinear
    num_heads: int
    score_requant: FixedPointMultiplier  # folds 1/sqrt(d) and s_score/(s_q s_k)
    score_scale: float
    exp_lut: np.ndarray
    context_requant: FixedPointMultiplier  # s_ctx / (OUTPUT_LEVELS * s_v)
    context_scale: float

    def forward(
        self, x_codes: np.ndarray, attention_mask: Optional[np.ndarray]
    ) -> np.ndarray:
        """Batched attention over all heads and rows at once.

        Args:
            x_codes: Integer hidden codes, shape ``(batch, seq, hidden)``.
            attention_mask: Optional 0/1 validity mask, ``(batch, seq)``.

        Returns:
            Context codes, shape ``(batch, seq, hidden)``.
        """
        q = _split_heads_np(self.query.forward(x_codes), self.num_heads)
        k = _split_heads_np(self.key.forward(x_codes), self.num_heads)
        v = _split_heads_np(self.value.forward(x_codes), self.num_heads)

        score_acc = exact_matmul(q, k.swapaxes(-1, -2))
        score_codes = saturate(self.score_requant.apply(score_acc), ACT_BITS)

        mask = attention_mask[:, None, None, :] if attention_mask is not None else None
        prob_codes, _ = quantized_softmax(
            score_codes, self.score_scale, lut=self.exp_lut, mask=mask
        )

        context_acc = exact_matmul(prob_codes, v)
        context_codes = saturate(self.context_requant.apply(context_acc), ACT_BITS)
        return _merge_heads_np(context_codes)


@dataclass
class IntegerBertLayer:
    """One encoder layer frozen to integer arithmetic."""

    attention: IntegerSelfAttention
    attention_output: IntegerLinear
    attention_layernorm: object  # IntegerLayerNorm | FloatLayerNorm
    ffn1: IntegerLinear
    gelu: GeluLUT
    ffn2: IntegerLinear
    output_layernorm: object

    def forward(
        self, x_codes: np.ndarray, attention_mask: Optional[np.ndarray]
    ) -> np.ndarray:
        context = self.attention.forward(x_codes, attention_mask)
        projected = self.attention_output.forward(context)
        attended = self.attention_layernorm.forward(projected, x_codes)

        intermediate = self.ffn1.forward(attended)
        activated = self.gelu.forward(intermediate)
        ffn_out = self.ffn2.forward(activated)
        return self.output_layernorm.forward(ffn_out, attended)


class IntegerBertForSequenceClassification:
    """End-to-end integer FQ-BERT: host embedding -> integer encoder -> host head."""

    def __init__(
        self,
        config: BertConfig,
        layers: List[IntegerBertLayer],
        embed_fn,
        head_fn,
        input_scale: float,
    ):
        self.config = config
        self.layers = layers
        self._embed_fn = embed_fn
        self._head_fn = head_fn
        self.input_scale = input_scale

    def encode(
        self,
        input_ids: np.ndarray,
        attention_mask: Optional[np.ndarray] = None,
        token_type_ids: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Run host embedding + the integer encoder; return final codes."""
        codes = self._embed_fn(input_ids, token_type_ids)
        for layer in self.layers:
            codes = layer.forward(codes, attention_mask)
        return codes

    def classify(self, codes: np.ndarray) -> np.ndarray:
        """Host-side head on final encoder codes: dequantize, pool, classify.

        Split out of :meth:`forward` so callers that batch the integer
        encoder (e.g. the serving engine) can run the float head per row:
        the encoder's integer arithmetic is exact and therefore invariant
        to batch composition, while float BLAS reductions need not be.
        """
        final_scale = self.layers[-1].output_layernorm.out_scale if self.layers else self.input_scale
        return self._head_fn(codes / final_scale)

    def classify_rows(self, codes: np.ndarray) -> np.ndarray:
        """Run the float host head independently on each encoder row.

        Args:
            codes: Final encoder codes, shape ``(batch, seq, hidden)``.

        Returns:
            Logits of shape ``(batch, num_labels)``; row ``i`` is
            bit-identical to ``classify(codes[i:i+1])[0]``.

        The serving engine uses this instead of :meth:`classify` on the
        whole batch: float BLAS reductions need not be invariant to batch
        composition, so per-row head execution is what keeps served logits
        bit-identical to one-at-a-time inference.  Dequantization is
        elementwise (hence batch-invariant) and hoisted out of the loop.
        """
        final_scale = self.layers[-1].output_layernorm.out_scale if self.layers else self.input_scale
        hidden = codes / final_scale
        return np.concatenate(
            [self._head_fn(hidden[i : i + 1]) for i in range(hidden.shape[0])]
        )

    def forward(
        self,
        input_ids: np.ndarray,
        attention_mask: Optional[np.ndarray] = None,
        token_type_ids: Optional[np.ndarray] = None,
        chunk_size: Optional[int] = None,
    ) -> np.ndarray:
        """Logits for a batch; ``chunk_size`` bounds the working-set size.

        Chunking splits the *encoder* pass into groups of at most
        ``chunk_size`` rows executed back to back — the encoder dominates
        memory (attention is O(seq^2) per row) and its exact integer
        arithmetic makes the codes bit-identical under any chunking.  The
        (tiny) float head then runs once over all rows, so chunked and
        unchunked calls return bit-identical logits.
        """
        if chunk_size is not None:
            if chunk_size < 1:
                raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
            input_ids = np.asarray(input_ids)
            pieces = []
            for start in range(0, input_ids.shape[0], chunk_size):
                stop = start + chunk_size
                pieces.append(
                    self.encode(
                        input_ids[start:stop],
                        None if attention_mask is None else attention_mask[start:stop],
                        None if token_type_ids is None else token_type_ids[start:stop],
                    )
                )
            codes = np.concatenate(pieces, axis=0)
        else:
            codes = self.encode(input_ids, attention_mask, token_type_ids)
        return self.classify(codes)

    def predict(
        self,
        input_ids: np.ndarray,
        attention_mask: Optional[np.ndarray] = None,
        token_type_ids: Optional[np.ndarray] = None,
        chunk_size: Optional[int] = None,
    ) -> np.ndarray:
        return self.forward(
            input_ids, attention_mask, token_type_ids, chunk_size=chunk_size
        ).argmax(axis=-1)


# ----------------------------------------------------------------------
# conversion from the trained QAT model
# ----------------------------------------------------------------------

def _split_heads_np(x: np.ndarray, num_heads: int) -> np.ndarray:
    batch, seq, hidden = x.shape
    return x.reshape(batch, seq, num_heads, hidden // num_heads).transpose(0, 2, 1, 3)


def _merge_heads_np(x: np.ndarray) -> np.ndarray:
    batch, heads, seq, head_dim = x.shape
    return x.transpose(0, 2, 1, 3).reshape(batch, seq, heads * head_dim)


def _convert_linear(qlinear, in_scale: float) -> IntegerLinear:
    """Freeze a QuantLinear: weight codes, int32 bias, requant multiplier(s).

    With per-channel weight scales the requantizer becomes a per-channel
    multiplier table (:class:`VectorFixedPointMultiplier`); the datapath is
    otherwise unchanged.
    """
    w_scale = qlinear.weight_quantizer.current_scale(qlinear.weight)
    qmin, qmax = int_range(qlinear.config.weight_bits)
    with no_grad():
        w_q, _ = qlinear.weight_quantizer(qlinear.weight)
    weight_codes = np.clip(np.rint(w_q.data * w_scale), qmin, qmax).astype(np.int64)

    per_channel = isinstance(w_scale, np.ndarray) and w_scale.size > 1
    w_scale_rows = np.asarray(w_scale, dtype=np.float64).reshape(-1)

    bias_codes = None
    if qlinear.bias is not None:
        s_bias = in_scale * (w_scale_rows if per_channel else float(w_scale))
        bias_codes = np.rint(qlinear.bias.data.astype(np.float64) * s_bias).astype(np.int64)

    out_scale = qlinear.output_quantizer.scale
    if per_channel:
        requant = VectorFixedPointMultiplier.from_floats(
            out_scale / (in_scale * w_scale_rows)
        )
        stored_scale = w_scale_rows
    else:
        requant = FixedPointMultiplier.from_float(out_scale / (in_scale * float(w_scale)))
        stored_scale = float(w_scale)
    return IntegerLinear(
        weight_codes=weight_codes,
        bias_codes=bias_codes,
        requant=requant,
        in_scale=in_scale,
        weight_scale=stored_scale,
        out_scale=out_scale,
    )


def _convert_layernorm(qln, scale_a: float, scale_b: float):
    """Freeze a QuantLayerNorm into the fixed-point (or float) LN."""
    out_scale = qln.output_quantizer.scale
    if qln.config.quantize_layernorm:
        fmt = LN_PARAM_FORMAT
        gamma_codes = fmt.to_fixed(qln.weight.data)
        beta_codes = fmt.to_fixed(qln.bias.data)
        two_f = 2.0 ** LN_FRAC_BITS
        return IntegerLayerNorm(
            gamma_codes=gamma_codes,
            beta_codes=beta_codes,
            align_a=FixedPointMultiplier.from_float(two_f / scale_a),
            align_b=FixedPointMultiplier.from_float(two_f / scale_b),
            out_requant=FixedPointMultiplier.from_float(
                out_scale / 2.0 ** (LN_FRAC_BITS + fmt.frac_bits)
            ),
            out_scale=out_scale,
            eps_fx=int(round(qln.eps * 2.0 ** (2 * LN_FRAC_BITS))),
        )
    return FloatLayerNorm(
        gamma=qln.weight.data.astype(np.float64),
        beta=qln.bias.data.astype(np.float64),
        in_scale_a=scale_a,
        in_scale_b=scale_b,
        out_scale=out_scale,
        eps=qln.eps,
    )


def convert_to_integer(
    qmodel: QuantBertForSequenceClassification,
) -> IntegerBertForSequenceClassification:
    """Freeze a trained FQ-BERT into the integer-only engine.

    Requires activation quantization to have been enabled during QAT (the
    engine needs a frozen scale at every buffer point).

    Lookup tables depend only on their scales, so each distinct exp/GELU
    table is built once and *shared by reference* across layers with equal
    scales (they are read-only in the forward pass).  Callers that mutate
    a layer's LUT in place (failure injection) should assign that layer a
    fresh copy first.
    """
    qconfig: QuantConfig = qmodel.qconfig
    if not qconfig.quantize_activations:
        raise ValueError(
            "integer conversion requires quantize_activations=True "
            "(every buffer point needs a frozen scale)"
        )
    qmodel.eval()
    config = qmodel.config

    input_scale = qmodel.embeddings.layer_norm.output_quantizer.scale
    layers: List[IntegerBertLayer] = []
    current_scale = input_scale

    # LUTs depend only on their scales; build each distinct table once and
    # share it across layers (they are read-only in the forward pass).
    exp_luts: Dict[float, np.ndarray] = {}
    gelu_luts: Dict[Tuple[float, float], GeluLUT] = {}

    def shared_exp_lut(score_scale: float) -> np.ndarray:
        lut = exp_luts.get(score_scale)
        if lut is None:
            lut = exp_luts[score_scale] = build_exp_lut(score_scale)
        return lut

    def shared_gelu_lut(in_scale: float, out_scale: float) -> GeluLUT:
        key = (in_scale, out_scale)
        lut = gelu_luts.get(key)
        if lut is None:
            lut = gelu_luts[key] = GeluLUT.build(in_scale, out_scale)
        return lut

    for qlayer in qmodel.encoder.layers:
        attn = qlayer.attention.self_attention
        q_lin = _convert_linear(attn.query, current_scale)
        k_lin = _convert_linear(attn.key, current_scale)
        v_lin = _convert_linear(attn.value, current_scale)

        score_scale = attn.score_quantizer.scale
        inv_sqrt_d = attn.inv_sqrt_d
        score_requant = FixedPointMultiplier.from_float(
            score_scale * inv_sqrt_d / (q_lin.out_scale * k_lin.out_scale)
        )
        context_scale = attn.context_quantizer.scale
        context_requant = FixedPointMultiplier.from_float(
            context_scale / (OUTPUT_LEVELS * v_lin.out_scale)
        )
        integer_attention = IntegerSelfAttention(
            query=q_lin,
            key=k_lin,
            value=v_lin,
            num_heads=attn.num_heads,
            score_requant=score_requant,
            score_scale=score_scale,
            exp_lut=shared_exp_lut(score_scale),
            context_requant=context_requant,
            context_scale=context_scale,
        )

        attn_out = _convert_linear(qlayer.attention.output_dense, context_scale)
        attn_ln = _convert_layernorm(
            qlayer.attention.layer_norm, attn_out.out_scale, current_scale
        )
        attended_scale = attn_ln.out_scale

        ffn1 = _convert_linear(qlayer.feed_forward.ffn1, attended_scale)
        gelu_scale = qlayer.feed_forward.gelu_quantizer.scale
        gelu = shared_gelu_lut(ffn1.out_scale, gelu_scale)
        ffn2 = _convert_linear(qlayer.feed_forward.ffn2, gelu_scale)
        out_ln = _convert_layernorm(
            qlayer.feed_forward.layer_norm, ffn2.out_scale, attended_scale
        )

        layers.append(
            IntegerBertLayer(
                attention=integer_attention,
                attention_output=attn_out,
                attention_layernorm=attn_ln,
                ffn1=ffn1,
                gelu=gelu,
                ffn2=ffn2,
                output_layernorm=out_ln,
            )
        )
        current_scale = out_ln.out_scale

    def embed_fn(input_ids: np.ndarray, token_type_ids: Optional[np.ndarray]) -> np.ndarray:
        """Host-side embedding: float compute, 8-bit codes out (the AXI stream)."""
        with no_grad():
            x, scale = qmodel.embeddings(np.asarray(input_ids), token_type_ids)
        qmin, qmax = int_range(ACT_BITS)
        return np.clip(np.rint(x.data * scale), qmin, qmax).astype(np.int64)

    def head_fn(hidden: np.ndarray) -> np.ndarray:
        """Host-side pooler + classifier on the dequantized encoder output."""
        with no_grad():
            pooled = qmodel.pooler(Tensor(hidden.astype(np.float32)), current_scale)
            logits = qmodel.classifier(pooled)
        return logits.data

    return IntegerBertForSequenceClassification(
        config=config,
        layers=layers,
        embed_fn=embed_fn,
        head_fn=head_fn,
        input_scale=input_scale,
    )
