"""Fixed-point arithmetic helpers.

The accelerator performs all post-accumulator arithmetic (requantization by
``s_f``, layer-norm statistics, softmax normalization) in fixed point.  This
module provides a small Q-format toolbox: conversion to/from fixed point,
fixed-point multiply-with-shift requantization (the int32 ``s_f`` of Eq. 5),
and an integer inverse-square-root for the LN core.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass(frozen=True)
class QFormat:
    """Signed fixed-point format with ``int_bits`` + ``frac_bits`` + sign."""

    int_bits: int
    frac_bits: int

    @property
    def total_bits(self) -> int:
        return self.int_bits + self.frac_bits + 1

    @property
    def max_value(self) -> float:
        return (2 ** (self.int_bits + self.frac_bits) - 1) / 2 ** self.frac_bits

    @property
    def min_value(self) -> float:
        return -(2 ** (self.int_bits + self.frac_bits)) / 2 ** self.frac_bits

    @property
    def resolution(self) -> float:
        return 2.0 ** -self.frac_bits

    def to_fixed(self, x: np.ndarray) -> np.ndarray:
        """Real -> integer raw codes, saturating at the format limits."""
        codes = np.rint(np.asarray(x, dtype=np.float64) * 2 ** self.frac_bits)
        low = -(2 ** (self.int_bits + self.frac_bits))
        high = 2 ** (self.int_bits + self.frac_bits) - 1
        return np.clip(codes, low, high).astype(np.int64)

    def from_fixed(self, codes: np.ndarray) -> np.ndarray:
        """Integer raw codes -> real values."""
        return np.asarray(codes, dtype=np.float64) / 2 ** self.frac_bits

    def round_trip(self, x: np.ndarray) -> np.ndarray:
        """Quantize real values to this format's representable grid."""
        return self.from_fixed(self.to_fixed(x))


# The 8-bit fixed-point format used for layer-norm parameters (Sec. II-B).
LN_PARAM_FORMAT = QFormat(int_bits=3, frac_bits=4)


@dataclass(frozen=True)
class FixedPointMultiplier:
    """The paper's 32-bit integer ``s_f``: a multiplier ``m * 2^-shift``.

    Eq. 5 requantizes the int32 accumulator with ``y_I = acc * s_f`` where
    ``s_f = s_y / (s_a * s_w)`` is stored as a 32-bit integer.  Hardware
    realizes this as a widening multiply by ``m`` followed by an arithmetic
    right shift — the standard "fixed-point multiplier" of integer inference
    runtimes (cf. gemmlowp / TFLite).
    """

    multiplier: int  # int32 mantissa
    shift: int       # right-shift amount

    @classmethod
    def from_float(cls, value: float, mantissa_bits: int = 31) -> "FixedPointMultiplier":
        """Encode a positive real factor as (mantissa, shift)."""
        if value <= 0:
            raise ValueError(f"requant factor must be positive, got {value}")
        # Normalize into [2^(bits-1), 2^bits) so the mantissa uses full width.
        shift = 0
        mantissa = float(value)
        while mantissa >= 2 ** mantissa_bits:
            mantissa /= 2.0
            shift -= 1
        while mantissa < 2 ** (mantissa_bits - 1):
            mantissa *= 2.0
            shift += 1
        quantized = int(np.rint(mantissa))
        if quantized == 2 ** mantissa_bits:
            quantized //= 2
            shift -= 1
        return cls(multiplier=quantized, shift=shift)

    def to_float(self) -> float:
        return self.multiplier * 2.0 ** -self.shift

    def apply(self, accumulator: np.ndarray) -> np.ndarray:
        """Apply the multiplier with round-to-nearest on the dropped bits.

        ``(acc * m + half) >> shift`` — the add-half-then-arithmetic-shift
        idiom rounds half toward +inf for both signs, exactly what the
        hardware's requantization pipeline does.  The shift is staged so
        intermediate products stay within int64 (acc is int32-range and m
        is below 2^31).
        """
        acc = np.asarray(accumulator, dtype=np.int64)
        if self.shift <= 0:
            return acc * self.multiplier * (2 ** -self.shift)
        pre_shift = max(0, self.shift - 31)
        post_shift = self.shift - pre_shift
        product = acc * self.multiplier
        if pre_shift:
            product = (product + (1 << (pre_shift - 1))) >> pre_shift
        if post_shift:
            product = (product + (1 << (post_shift - 1))) >> post_shift
        return product


@dataclass(frozen=True)
class VectorFixedPointMultiplier:
    """Per-channel fixed-point multipliers (one (m, shift) pair per channel).

    The per-channel extension of Eq. 5: when weights carry one scale per
    output row, the requantization factor differs per row.  Hardware
    supports this naturally — the quantization module already processes one
    PE output at a time, so it simply indexes a small multiplier table.
    ``apply`` broadcasts over leading axes; the channel axis is the last.
    """

    multipliers: np.ndarray  # (channels,) int64 mantissas
    shifts: np.ndarray       # (channels,) int64 right-shift amounts

    @classmethod
    def from_floats(cls, values: np.ndarray, mantissa_bits: int = 31) -> "VectorFixedPointMultiplier":
        values = np.asarray(values, dtype=np.float64).reshape(-1)
        if np.any(values <= 0):
            raise ValueError("requant factors must be positive")
        pairs = [FixedPointMultiplier.from_float(float(v), mantissa_bits) for v in values]
        return cls(
            multipliers=np.array([p.multiplier for p in pairs], dtype=np.int64),
            shifts=np.array([p.shift for p in pairs], dtype=np.int64),
        )

    def to_floats(self) -> np.ndarray:
        return self.multipliers * np.power(2.0, -self.shifts.astype(np.float64))

    def apply(self, accumulator: np.ndarray) -> np.ndarray:
        """Per-channel ``(acc * m + half) >> shift`` over the last axis."""
        acc = np.asarray(accumulator, dtype=np.int64)
        if acc.shape[-1] != self.multipliers.shape[0]:
            raise ValueError(
                f"last axis ({acc.shape[-1]}) must match channels "
                f"({self.multipliers.shape[0]})"
            )
        # Stage the shift as in the scalar case so products stay in int64.
        pre = np.maximum(0, self.shifts - 31)
        post = self.shifts - pre
        product = acc * self.multipliers
        pre_half = np.where(pre > 0, np.int64(1) << np.maximum(pre - 1, 0), 0)
        product = np.where(pre > 0, (product + pre_half) >> pre, product)
        post_half = np.where(post > 0, np.int64(1) << np.maximum(post - 1, 0), 0)
        return np.where(post > 0, (product + post_half) >> post, product)


def integer_isqrt(values: np.ndarray) -> np.ndarray:
    """Integer floor square root (Newton's method on int64 arrays).

    Used by the LN core model to compute ``sqrt(variance)`` without floating
    point: the hardware implements the same iteration in fixed point.
    """
    values = np.asarray(values, dtype=np.int64)
    if np.any(values < 0):
        raise ValueError("integer_isqrt requires non-negative inputs")
    result = np.zeros_like(values)
    nonzero = values > 0
    if not np.any(nonzero):
        return result
    x = values.copy()
    # Initial guess: 2^(ceil(bits/2)) via float sqrt, then Newton refine —
    # float sqrt of int64 is exact enough to land within 1 ulp, and two
    # Newton steps certify the floor value in pure integer arithmetic.
    guess = np.floor(np.sqrt(values.astype(np.float64))).astype(np.int64)
    guess = np.maximum(guess, 1)
    for _ in range(4):
        guess = (guess + values // np.maximum(guess, 1)) // 2
    # Certify: adjust down/up so that guess^2 <= v < (guess+1)^2.
    too_big = guess * guess > values
    guess = np.where(too_big, guess - 1, guess)
    too_small = (guess + 1) * (guess + 1) <= values
    guess = np.where(too_small, guess + 1, guess)
    result[nonzero] = guess[nonzero]
    return result


def saturate(values: np.ndarray, bits: int, signed: bool = True) -> np.ndarray:
    """Clamp integer values into the representable ``bits``-wide range."""
    if signed:
        low, high = -(2 ** (bits - 1)), 2 ** (bits - 1) - 1
    else:
        low, high = 0, 2 ** bits - 1
    return np.clip(np.asarray(values, dtype=np.int64), low, high)


def bit_width_of(value: int) -> int:
    """Minimum two's-complement width that holds ``value``."""
    if value >= 0:
        return int(value).bit_length() + 1
    return int(~value).bit_length() + 1
