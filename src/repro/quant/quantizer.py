"""Symmetric linear quantization primitives (Eqs. 1-5 of the paper).

The paper's quantization function for a k-bit symmetric quantizer is::

    x_c = clamp(x, MIN, MAX)          # MIN = -MAX, tuned clip thresholds
    s   = scale(x_c, k) = (2^(k-1) - 1) / max(|x_c|)
    x_I = round(x_c * s)              # integer code
    x_q = x_I / s                     # dequantized value

Symmetric quantization is chosen because it has no zero-point, which keeps
the hardware inner product a plain integer MAC.  This module provides the
scale derivations for weights (Eq. 2) and activations (Eq. 3, via EMA
statistics collected elsewhere), bias quantization (Eq. 4), and the output
requantization factor (Eq. 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

import numpy as np

ArrayOrFloat = Union[np.ndarray, float]


def int_range(bits: int, signed: bool = True) -> Tuple[int, int]:
    """Representable integer code range for a ``bits``-wide quantizer.

    Symmetric signed quantizers use ``[-(2^(k-1) - 1), 2^(k-1) - 1]`` — note
    the symmetric range drops the most negative code so that negation never
    overflows, matching Eq. 2's ``2^(k-1) - 1`` numerator.
    """
    if bits < 2 and signed:
        raise ValueError(f"signed quantization needs >= 2 bits, got {bits}")
    if bits < 1:
        raise ValueError(f"bits must be >= 1, got {bits}")
    if signed:
        qmax = 2 ** (bits - 1) - 1
        return -qmax, qmax
    return 0, 2 ** bits - 1


def symmetric_scale(max_abs: ArrayOrFloat, bits: int) -> ArrayOrFloat:
    """Eq. 2 / Eq. 3: ``s = (2^(k-1) - 1) / max|x|``.

    ``max_abs`` may be a scalar (per-tensor) or an array (per-channel).
    A zero ``max_abs`` maps to scale 1.0 so that all-zero tensors quantize
    to all-zero codes instead of dividing by zero.
    """
    qmax = 2 ** (bits - 1) - 1
    max_abs = np.asarray(max_abs, dtype=np.float64)
    # Treat vanishingly small ranges as zero: a tensor whose magnitude is
    # below 1e-30 is numerically zero for any integer datapath, and letting
    # the scale run toward infinity would overflow the code computation.
    safe = np.where(max_abs > 1e-30, max_abs, 1.0)
    scale = qmax / safe
    if scale.ndim == 0:
        return float(scale)
    return scale


def quantize(x: np.ndarray, scale: ArrayOrFloat, bits: int, signed: bool = True) -> np.ndarray:
    """Quantize to integer codes: ``clamp(round(x * s), qmin, qmax)``.

    Uses round-half-to-even (``np.rint``) for the ⌊·⌉ operator, matching
    IEEE default rounding that HLS synthesis also uses.
    """
    qmin, qmax = int_range(bits, signed)
    codes = np.rint(np.asarray(x, dtype=np.float64) * scale)
    return np.clip(codes, qmin, qmax).astype(np.int64)


def dequantize(codes: np.ndarray, scale: ArrayOrFloat) -> np.ndarray:
    """Map integer codes back to real values: ``x_q = x_I / s``."""
    return (np.asarray(codes, dtype=np.float64) / scale).astype(np.float64)


def fake_quantize_array(
    x: np.ndarray, scale: ArrayOrFloat, bits: int, signed: bool = True
) -> np.ndarray:
    """Quantize-then-dequantize in one step (the QAT forward simulation)."""
    return dequantize(quantize(x, scale, bits, signed), scale)


def weight_scale(weight: np.ndarray, bits: int, clip_max: float = None) -> float:
    """Per-tensor weight scale per Eq. 2, optionally with a clip threshold.

    When ``clip_max`` is given the weights are conceptually clamped to
    ``[-clip_max, clip_max]`` first (Eq. 1's MIN/MAX), so the scale is
    computed from the clip threshold rather than the raw extremum.
    """
    max_abs = float(np.abs(weight).max()) if clip_max is None else float(clip_max)
    return float(symmetric_scale(max_abs, bits))


def bias_scale(act_scale: float, w_scale: float) -> float:
    """Eq. 4: ``s_bias = s_a * s_w`` so the int32 bias adds directly to the
    int32 accumulator of the ``a_I * w_I`` products."""
    return float(act_scale) * float(w_scale)


def quantize_bias(bias: np.ndarray, act_scale: float, w_scale: float) -> np.ndarray:
    """Quantize biases to 32-bit integers at scale ``s_a * s_w`` (Eq. 4)."""
    scale = bias_scale(act_scale, w_scale)
    codes = np.rint(np.asarray(bias, dtype=np.float64) * scale)
    info = np.iinfo(np.int32)
    if np.any(codes > info.max) or np.any(codes < info.min):
        raise OverflowError("bias does not fit in int32 at scale s_a * s_w")
    return codes.astype(np.int64)


def requant_factor(out_scale: float, act_scale: float, w_scale: float) -> float:
    """Eq. 5: ``s_f = s_y / (s_a * s_w)`` — the accumulator-to-output factor."""
    return float(out_scale) / (float(act_scale) * float(w_scale))


@dataclass(frozen=True)
class QuantParams:
    """Frozen quantization parameters of one tensor: scale + code range."""

    scale: float
    bits: int
    signed: bool = True

    @property
    def qmin(self) -> int:
        return int_range(self.bits, self.signed)[0]

    @property
    def qmax(self) -> int:
        return int_range(self.bits, self.signed)[1]

    def quantize(self, x: np.ndarray) -> np.ndarray:
        return quantize(x, self.scale, self.bits, self.signed)

    def dequantize(self, codes: np.ndarray) -> np.ndarray:
        return dequantize(codes, self.scale)

    def fake_quantize(self, x: np.ndarray) -> np.ndarray:
        return fake_quantize_array(x, self.scale, self.bits, self.signed)


def quantize_scale_to_8bit(scale: float) -> float:
    """Quantize a scale factor itself to an 8-bit mantissa (paper Sec. II-B).

    The paper stores ``s_a``, ``s_w`` and ``s_y`` as 8-bit values.  We model
    this as an 8-bit-mantissa floating-point rounding: find the power of two
    ``2^e`` such that ``s * 2^e`` lands in ``[128, 256)`` and round to an
    integer mantissa.  This preserves dynamic range (scales span many orders
    of magnitude across layers) while limiting precision to 8 bits — the same
    trade Q8BERT-style deployments make.
    """
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    exponent = int(np.floor(np.log2(scale)))
    # Normalize mantissa into [128, 256) i.e. 8 significant bits.
    shift = 7 - exponent
    mantissa = np.rint(scale * 2.0 ** shift)
    mantissa = min(max(mantissa, 128.0), 255.0)
    return float(mantissa * 2.0 ** -shift)
