"""Range observers used to derive activation scales.

The paper (Eq. 3) collects activation statistics with an exponential moving
average of the per-batch maximum absolute value::

    s_a = (2^(k-1) - 1) / EMA(max|A|)

``EMAObserver`` implements exactly that; ``MinMaxObserver`` (running max, no
decay) and ``PercentileObserver`` (clip-by-percentile) are the standard
alternatives used by the ablation benches.
"""

from __future__ import annotations

import numpy as np

from .quantizer import symmetric_scale


class Observer:
    """Base class: feed arrays via :meth:`observe`, read a scale out."""

    def observe(self, x: np.ndarray) -> None:
        raise NotImplementedError

    @property
    def max_abs(self) -> float:
        raise NotImplementedError

    @property
    def initialized(self) -> bool:
        raise NotImplementedError

    def scale(self, bits: int) -> float:
        """Symmetric scale from the tracked range (Eq. 3)."""
        if not self.initialized:
            raise RuntimeError(f"{type(self).__name__} has seen no data")
        return float(symmetric_scale(self.max_abs, bits))

    def state(self) -> np.ndarray:
        """Serializable state (stored as a module buffer)."""
        raise NotImplementedError

    def load_state(self, state: np.ndarray) -> None:
        raise NotImplementedError


class EMAObserver(Observer):
    """Exponential moving average of ``max|x|`` — the paper's Eq. 3 observer.

    ``decay`` close to 1 gives a slow, stable estimate; the update is applied
    only in training mode, the frozen value is used at inference, matching
    the standard QAT recipe.
    """

    def __init__(self, decay: float = 0.95):
        if not 0.0 < decay < 1.0:
            raise ValueError(f"decay must be in (0, 1), got {decay}")
        self.decay = decay
        self._value: float = 0.0
        self._initialized = False

    def observe(self, x: np.ndarray) -> None:
        current = float(np.abs(x).max()) if x.size else 0.0
        if not self._initialized:
            self._value = current
            self._initialized = True
        else:
            self._value = self.decay * self._value + (1.0 - self.decay) * current

    @property
    def max_abs(self) -> float:
        return self._value

    @property
    def initialized(self) -> bool:
        return self._initialized

    def state(self) -> np.ndarray:
        return np.array([self._value, float(self._initialized)], dtype=np.float64)

    def load_state(self, state: np.ndarray) -> None:
        self._value = float(state[0])
        self._initialized = bool(state[1])


class MinMaxObserver(Observer):
    """Running maximum of ``max|x|`` (never decays)."""

    def __init__(self):
        self._value = 0.0
        self._initialized = False

    def observe(self, x: np.ndarray) -> None:
        if x.size:
            self._value = max(self._value, float(np.abs(x).max()))
            self._initialized = True

    @property
    def max_abs(self) -> float:
        return self._value

    @property
    def initialized(self) -> bool:
        return self._initialized

    def state(self) -> np.ndarray:
        return np.array([self._value, float(self._initialized)], dtype=np.float64)

    def load_state(self, state: np.ndarray) -> None:
        self._value = float(state[0])
        self._initialized = bool(state[1])


class PercentileObserver(Observer):
    """EMA of a high percentile of ``|x|`` — an outlier-robust clip estimate."""

    def __init__(self, percentile: float = 99.9, decay: float = 0.95):
        if not 0.0 < percentile <= 100.0:
            raise ValueError(f"percentile must be in (0, 100], got {percentile}")
        self.percentile = percentile
        self.decay = decay
        self._value = 0.0
        self._initialized = False

    def observe(self, x: np.ndarray) -> None:
        if not x.size:
            return
        current = float(np.percentile(np.abs(x), self.percentile))
        if not self._initialized:
            self._value = current
            self._initialized = True
        else:
            self._value = self.decay * self._value + (1.0 - self.decay) * current

    @property
    def max_abs(self) -> float:
        return self._value

    @property
    def initialized(self) -> bool:
        return self._initialized

    def state(self) -> np.ndarray:
        return np.array([self._value, float(self._initialized)], dtype=np.float64)

    def load_state(self, state: np.ndarray) -> None:
        self._value = float(state[0])
        self._initialized = bool(state[1])


def make_observer(kind: str, **kwargs) -> Observer:
    """Factory: ``ema`` (paper default), ``minmax``, or ``percentile``."""
    kinds = {
        "ema": EMAObserver,
        "minmax": MinMaxObserver,
        "percentile": PercentileObserver,
    }
    if kind not in kinds:
        raise ValueError(f"unknown observer kind {kind!r}; choose from {sorted(kinds)}")
    return kinds[kind](**kwargs)
