"""FQ-BERT quantization: the paper's algorithmic contribution (Section II).

Layout:

- :mod:`quantizer` — symmetric linear quantization math (Eqs. 1-5)
- :mod:`observer` — EMA / minmax / percentile range observers (Eq. 3)
- :mod:`qat` — fake-quant modules and :class:`QuantConfig`
- :mod:`qbert` — the fully quantized BERT model
- :mod:`softmax_lut` — 256-entry LUT softmax (Sec. III-B)
- :mod:`fixedpoint` — Q-format + fixed-point requantization (Eq. 5's s_f)
- :mod:`integer_model` — the integer-only inference engine
- :mod:`model_size` — compression-ratio accounting (Table I)
- :mod:`training` — shared train/eval loops
"""

from .fixedpoint import (
    FixedPointMultiplier,
    LN_PARAM_FORMAT,
    QFormat,
    VectorFixedPointMultiplier,
    integer_isqrt,
    saturate,
)
from .integer_model import (
    GeluLUT,
    IntegerBertForSequenceClassification,
    IntegerBertLayer,
    IntegerLayerNorm,
    IntegerLinear,
    IntegerSelfAttention,
    convert_to_integer,
)
from .model_size import (
    ParameterInventory,
    compression_ratio,
    float_size_bytes,
    parameter_inventory,
    quantized_size_bytes,
    size_report,
)
from .observer import EMAObserver, MinMaxObserver, Observer, PercentileObserver, make_observer
from .qat import FakeQuantize, QuantConfig, QuantLayerNorm, QuantLinear, WeightQuantizer
from .qbert import (
    QuantBertEmbeddings,
    QuantBertEncoder,
    QuantBertForSequenceClassification,
    QuantBertLayer,
    QuantBertSelfAttention,
    QuantEmbedding,
    quantize_model,
)
from .analysis import (
    logit_degradation,
    per_channel_sqnr,
    sqnr_per_bit_slope,
    tensor_sqnr,
    weight_sqnr_report,
)
from .ptq import calibrate, post_training_quantize
from .quantizer import (
    QuantParams,
    bias_scale,
    dequantize,
    fake_quantize_array,
    int_range,
    quantize,
    quantize_bias,
    quantize_scale_to_8bit,
    requant_factor,
    symmetric_scale,
    weight_scale,
)
from .softmax_lut import (
    LUT_ENTRIES,
    OUTPUT_LEVELS,
    build_exp_lut,
    fake_quant_softmax,
    lut_max_error,
    quantized_softmax,
)
from .training import TrainResult, evaluate, train_classifier

__all__ = [
    # quantizer math
    "QuantParams",
    "int_range",
    "symmetric_scale",
    "quantize",
    "dequantize",
    "fake_quantize_array",
    "weight_scale",
    "bias_scale",
    "quantize_bias",
    "requant_factor",
    "quantize_scale_to_8bit",
    # observers
    "Observer",
    "EMAObserver",
    "MinMaxObserver",
    "PercentileObserver",
    "make_observer",
    # QAT
    "QuantConfig",
    "FakeQuantize",
    "WeightQuantizer",
    "QuantLinear",
    "QuantLayerNorm",
    # quantized BERT
    "QuantBertForSequenceClassification",
    "QuantBertEmbeddings",
    "QuantBertEncoder",
    "QuantBertLayer",
    "QuantBertSelfAttention",
    "QuantEmbedding",
    "quantize_model",
    # softmax LUT
    "LUT_ENTRIES",
    "OUTPUT_LEVELS",
    "build_exp_lut",
    "quantized_softmax",
    "fake_quant_softmax",
    "lut_max_error",
    # fixed point
    "QFormat",
    "LN_PARAM_FORMAT",
    "FixedPointMultiplier",
    "VectorFixedPointMultiplier",
    "integer_isqrt",
    "saturate",
    # integer engine
    "IntegerLinear",
    "IntegerLayerNorm",
    "IntegerSelfAttention",
    "IntegerBertLayer",
    "IntegerBertForSequenceClassification",
    "GeluLUT",
    "convert_to_integer",
    # model size
    "ParameterInventory",
    "parameter_inventory",
    "float_size_bytes",
    "quantized_size_bytes",
    "compression_ratio",
    "size_report",
    # analysis
    "tensor_sqnr",
    "per_channel_sqnr",
    "sqnr_per_bit_slope",
    "weight_sqnr_report",
    "logit_degradation",
    # PTQ
    "calibrate",
    "post_training_quantize",
    # training
    "TrainResult",
    "train_classifier",
    "evaluate",
]
