"""Quantization-aware-training building blocks.

This module defines:

- :class:`QuantConfig` — every knob of the FQ-BERT quantization recipe, with
  presets for the paper's configurations (full FQ-BERT, the Table II
  ablation rows, and the Figure 3 bitwidth/clip sweep).
- :class:`FakeQuantize` — activation fake-quantizer with an EMA observer
  (Eq. 3) placed at every hardware buffer point.
- :class:`WeightQuantizer` — weight fake-quantizer with an optionally
  *trainable* clip threshold (Eq. 1's MIN/MAX, "carefully tuned during
  training"), using the PACT-style gradient.
- :class:`QuantLinear` — linear layer with quantized weights, int32-scaled
  bias (Eq. 4), and an output quantizer providing ``s_y`` for Eq. 5.
- :class:`QuantLayerNorm` — layer norm with 8-bit fixed-point parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

import numpy as np

from ..autograd import Tensor
from ..autograd import functional as F
from ..autograd import nn
from .fixedpoint import LN_PARAM_FORMAT
from .observer import EMAObserver
from .quantizer import int_range, quantize_scale_to_8bit, symmetric_scale


@dataclass(frozen=True)
class QuantConfig:
    """All knobs of the FQ-BERT quantization recipe.

    The defaults correspond to the paper's full FQ-BERT: 4-bit weights,
    8-bit activations, int32 biases, 8-bit scale factors, LUT softmax,
    8-bit fixed-point layer-norm parameters, trained clip thresholds.
    """

    weight_bits: int = 4
    act_bits: int = 8
    quantize_weights: bool = True
    quantize_activations: bool = True
    quantize_bias: bool = True
    quantize_scales: bool = True
    quantize_softmax: bool = True
    quantize_layernorm: bool = True
    quantize_embeddings: bool = True
    quantize_task_layer: bool = False  # task layer runs on the host CPU
    use_clip: bool = True
    clip_init_percentile: float = 99.7
    ema_decay: float = 0.9
    # Extension beyond the paper: one weight scale per output channel
    # (row of W).  The accelerator's quantization module requantizes one PE
    # output at a time, so per-channel factors cost only a small multiplier
    # table.  Per-channel mode uses minmax scales (no clip), the standard
    # pairing.
    per_channel_weights: bool = False

    # ------------------------------------------------------------------
    # presets used by the experiment harness
    # ------------------------------------------------------------------
    @classmethod
    def fq_bert(cls, weight_bits: int = 4, act_bits: int = 8) -> "QuantConfig":
        """The paper's headline configuration (Table I): w4/a8, all parts."""
        return cls(weight_bits=weight_bits, act_bits=act_bits)

    @classmethod
    def float_baseline(cls) -> "QuantConfig":
        """No quantization anywhere (the 32/32 baseline rows)."""
        return cls(
            quantize_weights=False,
            quantize_activations=False,
            quantize_bias=False,
            quantize_scales=False,
            quantize_softmax=False,
            quantize_layernorm=False,
            quantize_embeddings=False,
        )

    @classmethod
    def weights_activations_only(cls, weight_bits: int = 4, act_bits: int = 8) -> "QuantConfig":
        """Table II row 2: only weights/activations (and biases) quantized."""
        return cls(
            weight_bits=weight_bits,
            act_bits=act_bits,
            quantize_scales=False,
            quantize_softmax=False,
            quantize_layernorm=False,
        )

    @classmethod
    def figure3(cls, weight_bits: int, clip: bool) -> "QuantConfig":
        """Figure 3 sweep point: weights at ``weight_bits``, clip on/off.

        Figure 3 isolates *weight* quantization, so activations and the
        special parts stay in float; ``weight_bits=32`` disables weight
        quantization entirely (the 92.32 / 84.19 anchor points).
        """
        if weight_bits >= 32:
            return cls.float_baseline()
        return cls(
            weight_bits=weight_bits,
            quantize_activations=False,
            quantize_bias=False,
            quantize_scales=False,
            quantize_softmax=False,
            quantize_layernorm=False,
            use_clip=clip,
        )

    def with_parts(
        self,
        scales: bool = False,
        softmax: bool = False,
        layernorm: bool = False,
    ) -> "QuantConfig":
        """Table II helper: start from w/a-only and enable parts cumulatively."""
        return replace(
            self,
            quantize_scales=scales,
            quantize_softmax=softmax,
            quantize_layernorm=layernorm,
        )

    def maybe_quantize_scale(self, scale: float) -> float:
        """Round a scale factor to its 8-bit representation when enabled."""
        if self.quantize_scales:
            return quantize_scale_to_8bit(scale)
        return scale


class FakeQuantize(nn.Module):
    """Activation fake-quantizer at one hardware buffer point.

    In training mode it updates an EMA of ``max|x|`` (Eq. 3) and then
    round-trips ``x`` through the k-bit integer grid with straight-through
    gradients.  In eval mode the frozen EMA statistic is used.  When the
    config disables activation quantization this module is an observing
    pass-through (the observer still runs so Eq. 4/5 conversions have a
    scale to work with).
    """

    def __init__(self, config: QuantConfig, bits: Optional[int] = None, enabled: bool = True):
        super().__init__()
        self.config = config
        self.bits = bits if bits is not None else config.act_bits
        self.enabled = enabled and config.quantize_activations
        self.observer = EMAObserver(decay=config.ema_decay)
        self.register_buffer("observer_state", self.observer.state())

    def _sync_buffer(self) -> None:
        self.set_buffer("observer_state", self.observer.state())

    def load_observer(self) -> None:
        """Restore observer from the serialized buffer (after load_state_dict)."""
        self.observer.load_state(self._buffers["observer_state"])

    @property
    def scale(self) -> float:
        """Current activation scale (possibly 8-bit-quantized per config)."""
        raw = self.observer.scale(self.bits)
        return self.config.maybe_quantize_scale(raw)

    def forward(self, x: Tensor) -> Tuple[Tensor, Optional[float]]:
        if self.training or not self.observer.initialized:
            self.observer.observe(x.data)
            self._sync_buffer()
        if not self.enabled:
            return x, None
        scale = self.scale
        qmin, qmax = int_range(self.bits, signed=True)
        return F.fake_quantize(x, scale, qmin, qmax), scale


class WeightQuantizer(nn.Module):
    """Weight fake-quantizer with an optionally trainable clip threshold.

    With ``use_clip`` the clip value ``c`` (Eq. 1's MAX, with MIN = -c) is a
    trainable scalar initialised from a percentile of ``|W|``.  The clamp is
    expressed as ``c * clamp(w / c, -1, 1)`` so autograd yields the PACT
    gradient: zero w.r.t. ``c`` inside the window, ``sign(w)`` outside —
    letting the network trade clipping error against resolution, which is
    what makes 4-bit (and especially 2-bit) weights trainable (Figure 3).
    Without clip the scale tracks ``max|W|`` every forward (the NO_CLIP
    columns of Figure 3).
    """

    def __init__(self, weight: nn.Parameter, config: QuantConfig, per_channel: bool = None):
        super().__init__()
        self.config = config
        self.bits = config.weight_bits
        self.enabled = config.quantize_weights
        self.per_channel = (
            config.per_channel_weights if per_channel is None else per_channel
        )
        if self.per_channel and weight.data.ndim != 2:
            raise ValueError("per-channel weight quantization expects a 2-D weight")
        if config.use_clip and not self.per_channel:
            init = float(np.percentile(np.abs(weight.data), config.clip_init_percentile))
            init = max(init, 1e-8)
            self.clip_value = nn.Parameter(np.array(init, dtype=np.float32))
        else:
            self.clip_value = None  # type: ignore[assignment]

    def current_scale(self, weight: nn.Parameter):
        """Per-tensor float scale, or a (out, 1) per-channel scale array."""
        if self.per_channel:
            max_abs = np.abs(weight.data).max(axis=1, keepdims=True)
            scales = symmetric_scale(max_abs, self.bits)
            if self.config.quantize_scales:
                scales = np.array(
                    [[quantize_scale_to_8bit(float(s))] for s in scales[:, 0]]
                )
            return scales
        if self.config.use_clip:
            max_abs = max(float(abs(self.clip_value.data)), 1e-8)
        else:
            max_abs = float(np.abs(weight.data).max())
        raw = float(symmetric_scale(max_abs, self.bits))
        return self.config.maybe_quantize_scale(raw)

    def forward(self, weight: nn.Parameter) -> Tuple[Tensor, Optional[float]]:
        if not self.enabled:
            return weight, None
        scale = self.current_scale(weight)
        qmin, qmax = int_range(self.bits, signed=True)
        if self.config.use_clip and not self.per_channel:
            # c * clamp(w / c, -1, 1): differentiable w.r.t. both w and c.
            c = self.clip_value
            normalized = (weight * (c ** -1.0)).clamp(-1.0, 1.0)
            clipped = normalized * c
            return F.fake_quantize(clipped, scale, qmin, qmax), scale
        return F.fake_quantize(weight, scale, qmin, qmax), scale


class QuantLinear(nn.Module):
    """Linear layer on the quantized datapath.

    The input arrives already quantized at ``in_scale`` (set by the upstream
    buffer point).  This layer fake-quantizes its weight (Eq. 1/2), its bias
    at ``s_a * s_w`` to int32 (Eq. 4), computes the affine map, and quantizes
    the output at its own observer's scale ``s_y`` — together realising
    Eq. 5's ``y_I = (sum a_I w_I + b_I) * s_f`` in the fake-quant domain.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        config: QuantConfig,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
        quantize_output: bool = True,
    ):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        bound = float(np.sqrt(1.0 / in_features))
        self.weight = nn.Parameter(
            rng.uniform(-bound, bound, size=(out_features, in_features)).astype(np.float32)
        )
        self.bias = nn.Parameter(np.zeros(out_features, dtype=np.float32)) if bias else None
        self.config = config
        self.weight_quantizer = WeightQuantizer(self.weight, config)
        self.output_quantizer = FakeQuantize(config, enabled=quantize_output)

    def load_float_weights(self, weight: np.ndarray, bias: Optional[np.ndarray]) -> None:
        """Copy weights from a pretrained float layer and re-init the clip."""
        self.weight.data = weight.astype(np.float32).copy()
        if bias is not None and self.bias is not None:
            self.bias.data = bias.astype(np.float32).copy()
        if (
            self.config.use_clip
            and self.config.quantize_weights
            and not self.weight_quantizer.per_channel
        ):
            init = float(np.percentile(np.abs(weight), self.config.clip_init_percentile))
            self.weight_quantizer.clip_value.data = np.array(max(init, 1e-8), dtype=np.float32)

    def forward(self, x: Tensor, in_scale: Optional[float]) -> Tuple[Tensor, Optional[float]]:
        w_q, w_scale = self.weight_quantizer(self.weight)
        bias = self.bias
        if (
            bias is not None
            and self.config.quantize_bias
            and in_scale is not None
            and w_scale is not None
        ):
            # Eq. 4: bias quantized on the accumulator grid s_a * s_w.
            # int32 is wide enough that no clamp is needed in practice.
            # With per-channel weights, s_w (and hence s_bias) is per-row.
            s_bias = in_scale * np.asarray(w_scale).reshape(-1)
            if s_bias.size == 1:
                s_bias = float(s_bias.item())
            bias = F.ste_round(bias * s_bias) * (1.0 / s_bias)
        y = F.linear(x, w_q, bias)
        return self.output_quantizer(y)

    def __repr__(self) -> str:
        return (
            f"QuantLinear(in={self.in_features}, out={self.out_features}, "
            f"w{self.config.weight_bits}/a{self.config.act_bits})"
        )


class QuantLayerNorm(nn.Module):
    """Layer normalization with 8-bit fixed-point affine parameters.

    When ``quantize_layernorm`` is on, gamma/beta are round-tripped through
    the Q3.4 fixed-point grid (with straight-through gradients) every
    forward, so training adapts to the quantized parameters.  The output is
    quantized at this module's own buffer point either way (it feeds the
    next matmul's 8-bit input buffer).
    """

    def __init__(self, normalized_shape: int, config: QuantConfig, eps: float = 1e-5):
        super().__init__()
        self.normalized_shape = normalized_shape
        self.eps = eps
        self.config = config
        self.weight = nn.Parameter(np.ones(normalized_shape, dtype=np.float32))
        self.bias = nn.Parameter(np.zeros(normalized_shape, dtype=np.float32))
        self.output_quantizer = FakeQuantize(config)

    def _quantized_params(self) -> Tuple[Tensor, Tensor]:
        if not self.config.quantize_layernorm:
            return self.weight, self.bias
        step = float(LN_PARAM_FORMAT.resolution)
        low = float(LN_PARAM_FORMAT.min_value)
        high = float(LN_PARAM_FORMAT.max_value)
        gamma = F.ste_round(self.weight * (1.0 / step)).clamp(low / step, high / step) * step
        beta = F.ste_round(self.bias * (1.0 / step)).clamp(low / step, high / step) * step
        return gamma, beta

    def forward(self, x: Tensor) -> Tuple[Tensor, Optional[float]]:
        gamma, beta = self._quantized_params()
        y = F.layer_norm(x, gamma, beta, eps=self.eps)
        return self.output_quantizer(y)
