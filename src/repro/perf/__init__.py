"""Profiling, benchmarking, and perf-regression tooling.

The subsystem behind ``repro.cli bench`` and the ROADMAP's "every PR makes
a hot path measurably faster" rule:

- :mod:`timer` — best-of-N wall-clock timing (:func:`time_callable`)
- :mod:`profiler` — span-based wall-time attribution (:class:`Profiler`)
- :mod:`reference` — the seed (pre-optimization) integer kernels, the
  bit-exactness oracle every optimization is verified against
- :mod:`workloads` — pinned synthetic integer models, tokenizer, and text
  pools (deterministic, training-free)
- :mod:`bench` — the ``kernels`` / ``serve`` / ``cluster`` / ``fleet``
  suites emitting ``BENCH_*.json`` baselines
- :mod:`regression` — the >10%-worse gate against committed baselines

See ``docs/performance.md`` for the workflow.
"""

from .bench import (
    BENCH_BATCH,
    SCHEMA,
    SUITES,
    load_result,
    render_result,
    result_path,
    run_cluster_suite,
    run_fleet_suite,
    run_kernel_suite,
    run_serve_suite,
    run_suite,
    write_result,
)
from .profiler import Profiler, SpanStats
from .reference import (
    reference_attention_forward,
    reference_encode,
    reference_forward,
    reference_layer_forward,
    reference_layernorm_forward,
    reference_linear_forward,
)
from .regression import DEFAULT_TOLERANCE, Regression, compare_runs
from .timer import TimingResult, time_callable
from .workloads import HashTokenizer, bench_text_pool, build_synthetic_integer_model

__all__ = [
    # bench suites
    "BENCH_BATCH",
    "SCHEMA",
    "SUITES",
    "run_suite",
    "run_kernel_suite",
    "run_serve_suite",
    "run_cluster_suite",
    "run_fleet_suite",
    "result_path",
    "load_result",
    "write_result",
    "render_result",
    # regression gate
    "DEFAULT_TOLERANCE",
    "Regression",
    "compare_runs",
    # timing / profiling
    "TimingResult",
    "time_callable",
    "Profiler",
    "SpanStats",
    # reference kernels
    "reference_linear_forward",
    "reference_layernorm_forward",
    "reference_attention_forward",
    "reference_layer_forward",
    "reference_encode",
    "reference_forward",
    # workloads
    "build_synthetic_integer_model",
    "HashTokenizer",
    "bench_text_pool",
]
