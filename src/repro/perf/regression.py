"""The bench-regression gate: compare a run against a committed baseline.

``repro.cli bench`` writes ``BENCH_<suite>.json`` files that get committed
with the code; on the next run, each fresh result is compared against the
committed document and any metric that moved in its *bad* direction by more
than the tolerance (default 10%) fails the run.  Direction comes from each
metric's ``higher_is_better`` flag, so latency and throughput are both
gated by the same machinery.

Improvements are never flagged — the gate is one-sided by design: it stops
silent decay, not progress.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

DEFAULT_TOLERANCE = 0.10


@dataclass(frozen=True)
class Regression:
    """One metric that got worse beyond tolerance.

    Attributes:
        metric: Metric name (a key of the result's ``metrics``).
        baseline: The committed baseline value.
        current: The fresh run's value.
        relative_change: Signed relative change ``(current-baseline)/baseline``.
        higher_is_better: The metric's good direction.
    """

    metric: str
    baseline: float
    current: float
    relative_change: float
    higher_is_better: bool

    def render(self) -> str:
        """One-line human-readable description."""
        direction = "dropped" if self.higher_is_better else "rose"
        return (
            f"{self.metric}: {direction} {abs(self.relative_change) * 100:.1f}% "
            f"(baseline {self.baseline:.4f} -> current {self.current:.4f})"
        )


def compare_runs(
    baseline: Dict, current: Dict, tolerance: float = DEFAULT_TOLERANCE
) -> List[Regression]:
    """Find metrics that regressed beyond ``tolerance``.

    Args:
        baseline: The committed ``repro-bench/1`` document.
        current: The fresh run's document (same suite and profile).
        tolerance: Allowed relative slack in the bad direction (0.10 = 10%).

    Returns:
        One :class:`Regression` per out-of-tolerance metric, ordered by the
        baseline document's metric order.  Metrics present on only one side
        are ignored (adding or retiring metrics is not a regression), as
        are metrics marked ``"gated": false`` — raw wall-clock values are
        machine-dependent context, not a cross-machine contract.

    Raises:
        ValueError: If the documents disagree on suite or profile — a
            quick-profile run must never be gated against a full-profile
            baseline (different pinned shapes).
    """
    if not 0.0 <= tolerance:
        raise ValueError(f"tolerance must be >= 0, got {tolerance}")
    for key in ("suite", "profile"):
        if baseline.get(key) != current.get(key):
            raise ValueError(
                f"baseline/current {key} mismatch: "
                f"{baseline.get(key)!r} vs {current.get(key)!r}"
            )
    regressions: List[Regression] = []
    current_metrics = current.get("metrics", {})
    for name, base in baseline.get("metrics", {}).items():
        cur = current_metrics.get(name)
        if cur is None:
            continue
        if not (base.get("gated", True) and cur.get("gated", True)):
            continue
        base_value = float(base["value"])
        cur_value = float(cur["value"])
        higher_is_better = bool(base.get("higher_is_better", False))
        if base_value == 0.0:
            continue  # no meaningful relative change
        change = (cur_value - base_value) / abs(base_value)
        worse = change < -tolerance if higher_is_better else change > tolerance
        if worse:
            regressions.append(
                Regression(
                    metric=name,
                    baseline=base_value,
                    current=cur_value,
                    relative_change=change,
                    higher_is_better=higher_is_better,
                )
            )
    return regressions
