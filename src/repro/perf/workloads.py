"""Pinned synthetic workloads for the bench harness.

The accuracy experiments need *trained* models, but benchmarking only needs
realistic shapes and code distributions — so this module builds frozen
:class:`~repro.quant.integer_model.IntegerBertForSequenceClassification`
instances directly from seeded random parameter codes, at sizes the numpy
QAT path could never train in bench-budget time.  Everything is
deterministic given ``seed``: same model, same inputs, same logits, every
run on every machine — which is what lets BENCH_*.json files be compared
across commits.
"""

from __future__ import annotations

import zlib
from typing import List, Optional, Tuple

import numpy as np

from ..bert.config import BertConfig
from ..quant.fixedpoint import FixedPointMultiplier, LN_PARAM_FORMAT
from ..quant.integer_model import (
    ACT_BITS,
    LN_FRAC_BITS,
    GeluLUT,
    IntegerBertForSequenceClassification,
    IntegerBertLayer,
    IntegerLayerNorm,
    IntegerLinear,
    IntegerSelfAttention,
)
from ..quant.quantizer import int_range
from ..quant.softmax_lut import OUTPUT_LEVELS, build_exp_lut

# One plausible frozen activation scale used at every buffer point of the
# synthetic model; benchmarks only need the datapath, not tuned scales.
_ACT_SCALE = 20.0
_SCORE_SCALE = 25.0


def _random_linear(
    rng: np.random.Generator, in_dim: int, out_dim: int, weight_bits: int = 4
) -> IntegerLinear:
    """A frozen linear layer with seeded random integer parameters."""
    qmin, qmax = int_range(weight_bits)
    return IntegerLinear(
        weight_codes=rng.integers(qmin, qmax + 1, size=(out_dim, in_dim)).astype(np.int64),
        bias_codes=rng.integers(-2000, 2001, size=out_dim).astype(np.int64),
        requant=FixedPointMultiplier.from_float(1.0 / (_ACT_SCALE * qmax)),
        in_scale=_ACT_SCALE,
        weight_scale=float(qmax),
        out_scale=_ACT_SCALE,
    )


def _random_layernorm(rng: np.random.Generator, hidden: int) -> IntegerLayerNorm:
    """A frozen fixed-point Add&LN with seeded random gamma/beta."""
    two_f = 2.0 ** LN_FRAC_BITS
    return IntegerLayerNorm(
        gamma_codes=LN_PARAM_FORMAT.to_fixed(rng.uniform(0.5, 2.0, size=hidden)),
        beta_codes=LN_PARAM_FORMAT.to_fixed(rng.uniform(-0.5, 0.5, size=hidden)),
        align_a=FixedPointMultiplier.from_float(two_f / _ACT_SCALE),
        align_b=FixedPointMultiplier.from_float(two_f / _ACT_SCALE),
        out_requant=FixedPointMultiplier.from_float(
            _ACT_SCALE / 2.0 ** (LN_FRAC_BITS + LN_PARAM_FORMAT.frac_bits)
        ),
        out_scale=_ACT_SCALE,
        eps_fx=int(round(1e-5 * 2.0 ** (2 * LN_FRAC_BITS))),
    )


def build_synthetic_integer_model(
    config: Optional[BertConfig] = None, seed: int = 0
) -> IntegerBertForSequenceClassification:
    """Build a frozen integer model from seeded random parameter codes.

    Args:
        config: Architecture to instantiate (default: a 4-layer,
            hidden-192 shape sized for sub-second bench iterations).
        seed: Seed for every random parameter; two calls with equal
            arguments produce bit-identical models.

    Returns:
        An integer model whose ``encode``/``classify``/``forward`` behave
        exactly like a converted QAT model — including the host-side float
        embedding lookup and classification head.
    """
    config = config or BertConfig(
        vocab_size=512,
        hidden_size=192,
        num_hidden_layers=4,
        num_attention_heads=12,
        intermediate_size=768,
        max_position_embeddings=128,
        num_labels=2,
    )
    rng = np.random.default_rng(seed)
    hidden = config.hidden_size
    exp_lut = build_exp_lut(_SCORE_SCALE)
    inv_sqrt_d = 1.0 / np.sqrt(config.head_dim)

    layers: List[IntegerBertLayer] = []
    for _ in range(config.num_hidden_layers):
        attention = IntegerSelfAttention(
            query=_random_linear(rng, hidden, hidden),
            key=_random_linear(rng, hidden, hidden),
            value=_random_linear(rng, hidden, hidden),
            num_heads=config.num_attention_heads,
            score_requant=FixedPointMultiplier.from_float(
                _SCORE_SCALE * inv_sqrt_d / (_ACT_SCALE * _ACT_SCALE)
            ),
            score_scale=_SCORE_SCALE,
            exp_lut=exp_lut,
            context_requant=FixedPointMultiplier.from_float(
                _ACT_SCALE / (OUTPUT_LEVELS * _ACT_SCALE)
            ),
            context_scale=_ACT_SCALE,
        )
        layers.append(
            IntegerBertLayer(
                attention=attention,
                attention_output=_random_linear(rng, hidden, hidden),
                attention_layernorm=_random_layernorm(rng, hidden),
                ffn1=_random_linear(rng, hidden, config.intermediate_size),
                gelu=GeluLUT.build(_ACT_SCALE, _ACT_SCALE),
                ffn2=_random_linear(rng, config.intermediate_size, hidden),
                output_layernorm=_random_layernorm(rng, hidden),
            )
        )

    qmin, qmax = int_range(ACT_BITS)
    embed_table = rng.integers(qmin, qmax + 1, size=(config.vocab_size, hidden)).astype(
        np.int64
    )
    head_weight = rng.standard_normal((hidden, config.num_labels)).astype(np.float32)
    head_bias = rng.standard_normal(config.num_labels).astype(np.float32)

    def embed_fn(input_ids: np.ndarray, token_type_ids) -> np.ndarray:
        """Host embedding stand-in: a deterministic code-table lookup."""
        return embed_table[np.asarray(input_ids) % config.vocab_size]

    def head_fn(hidden_states: np.ndarray) -> np.ndarray:
        """Host head stand-in: [CLS] pooling + one float linear layer."""
        pooled = hidden_states[:, 0, :].astype(np.float32)
        return pooled @ head_weight + head_bias

    return IntegerBertForSequenceClassification(
        config=config,
        layers=layers,
        embed_fn=embed_fn,
        head_fn=head_fn,
        input_scale=_ACT_SCALE,
    )


class HashTokenizer:
    """A deterministic stand-in tokenizer for serve benchmarks.

    Maps each whitespace token to a stable vocabulary id via CRC32 (stable
    across processes and platforms, unlike Python's ``hash``).  Implements
    the same ``encode`` contract as
    :class:`repro.bert.tokenizer.WordPieceTokenizer`, which is all the
    serving engine requires.
    """

    def __init__(self, vocab_size: int = 512):
        """Args:
            vocab_size: Id space; ids 0/1 are reserved (pad / [CLS]-like).
        """
        if vocab_size < 4:
            raise ValueError(f"vocab_size must be >= 4, got {vocab_size}")
        self.vocab_size = vocab_size

    def encode(
        self, text_a: str, text_b: Optional[str] = None, max_length: int = 64
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Encode one (pair of) text(s) into padded id arrays.

        Args:
            text_a: First segment.
            text_b: Optional second segment.
            max_length: Padded output length.

        Returns:
            ``(input_ids, attention_mask, token_type_ids)`` int64 arrays of
            shape ``(max_length,)``.
        """
        ids = [1]  # leading [CLS]-like marker so row 0 pools meaningfully
        segments = [0]
        for segment, text in enumerate(t for t in (text_a, text_b) if t is not None):
            for word in text.split():
                ids.append(2 + zlib.crc32(word.encode("utf-8")) % (self.vocab_size - 2))
                segments.append(segment)
        ids = ids[:max_length]
        segments = segments[:max_length]
        length = len(ids)
        input_ids = np.zeros(max_length, dtype=np.int64)
        input_ids[:length] = ids
        mask = np.zeros(max_length, dtype=np.int64)
        mask[:length] = 1
        token_types = np.zeros(max_length, dtype=np.int64)
        token_types[:length] = segments
        return input_ids, mask, token_types


def bench_text_pool(num_texts: int = 64, seed: int = 0) -> List[Tuple[str, None]]:
    """A deterministic pool of variable-length texts for serve traces.

    Args:
        num_texts: Pool size (traces draw from it with replacement, so the
            tokenization cache sees realistic repetition).
        seed: Seed for lengths and word choices.

    Returns:
        ``(text_a, None)`` pairs as :func:`repro.serve.generate_trace` expects.
    """
    rng = np.random.default_rng(seed)
    pool = []
    for i in range(num_texts):
        length = int(rng.integers(3, 24))
        words = [f"w{int(rng.integers(0, 400))}" for _ in range(length)]
        pool.append((" ".join(words), None))
    return pool
