"""Wall-clock timing primitives for the bench harness.

Best-of-N timing on a monotonic clock: the *minimum* over repeats is the
standard low-noise estimator for CPU microbenchmarks (system jitter only
ever adds time), and it is what the regression gate compares across runs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable


@dataclass(frozen=True)
class TimingResult:
    """Timing of one callable over several repeats.

    Attributes:
        best_ms: Minimum wall time over all timed repeats (the headline).
        mean_ms: Mean wall time over all timed repeats.
        repeats: Number of timed repeats.
    """

    best_ms: float
    mean_ms: float
    repeats: int


def time_callable(
    fn: Callable[[], object],
    repeats: int = 5,
    warmup: int = 1,
) -> TimingResult:
    """Time ``fn()`` with warmup and best-of-N repeats.

    Args:
        fn: Zero-argument callable to time (its return value is discarded).
        repeats: Timed repeats (>= 1).
        warmup: Untimed warmup calls (populates caches, e.g. the integer
            model's frozen weight plans).

    Returns:
        A :class:`TimingResult` with best/mean milliseconds.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append((time.perf_counter() - start) * 1e3)
    return TimingResult(
        best_ms=min(samples),
        mean_ms=sum(samples) / len(samples),
        repeats=repeats,
    )
