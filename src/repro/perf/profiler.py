"""A lightweight span profiler for attributing wall time to pipeline stages.

``Profiler`` accumulates (call count, total time) per named span.  It is
deliberately tiny — a context manager around ``time.perf_counter`` — so it
can wrap hot-path stages (tokenize / encode / classify / dispatch) without
perturbing what it measures.  The bench harness uses it to attribute serve
wall time; it is also usable standalone::

    profiler = Profiler()
    with profiler.span("encode"):
        model.encode(ids, mask)
    print(profiler.render())

With ``trace=True`` each span entry is additionally kept as an interval
relative to the profiler's first span start, and
:meth:`Profiler.chrome_trace_json` exports them in the Chrome trace-event
format (the same exporter the fleet observer uses — see
:mod:`repro.obs.tracing`), so wall profiles open in the same trace viewer
as simulated-clock fleet traces.  The default stays aggregate-only:
tracing keeps one tuple per entry, which is exactly the overhead the
aggregate mode avoids.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Tuple


@dataclass
class SpanStats:
    """Accumulated statistics of one named span.

    Attributes:
        calls: Number of completed span entries.
        total_ms: Total wall milliseconds across all entries.
    """

    calls: int = 0
    total_ms: float = 0.0

    @property
    def mean_ms(self) -> float:
        """Mean wall milliseconds per call (0.0 before any call)."""
        return self.total_ms / self.calls if self.calls else 0.0


@dataclass
class Profiler:
    """Accumulates wall time per named span.

    Attributes:
        spans: Mapping of span name to its accumulated :class:`SpanStats`,
            in first-entered order.
        trace: Keep per-entry intervals for Chrome trace export (opt-in;
            aggregate mode stores O(names), trace mode O(entries)).
        entries: With ``trace=True``, one ``(name, start_ms, duration_ms)``
            per completed span entry, start relative to the profiler epoch
            (the first span's start).
    """

    spans: Dict[str, SpanStats] = field(default_factory=dict)
    trace: bool = False
    entries: List[Tuple[str, float, float]] = field(default_factory=list)
    _epoch: float = field(default=None, repr=False)  # type: ignore[assignment]

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Time one entry of span ``name`` (re-entrant across calls).

        Args:
            name: Span label; repeated entries accumulate.
        """
        stats = self.spans.setdefault(name, SpanStats())
        start = time.perf_counter()
        if self.trace and self._epoch is None:
            self._epoch = start
        try:
            yield
        finally:
            elapsed_ms = (time.perf_counter() - start) * 1e3
            stats.calls += 1
            stats.total_ms += elapsed_ms
            if self.trace:
                self.entries.append(
                    (name, (start - self._epoch) * 1e3, elapsed_ms)
                )

    def wrap(self, name: str, fn: Callable) -> Callable:
        """Return ``fn`` wrapped so every call is recorded under ``name``.

        Args:
            name: Span label.
            fn: Callable to instrument.

        Returns:
            A callable with the same signature as ``fn``.
        """

        def wrapped(*args, **kwargs):
            with self.span(name):
                return fn(*args, **kwargs)

        return wrapped

    def report(self) -> Dict[str, Dict[str, float]]:
        """Span statistics as plain dicts (JSON-ready).

        Returns:
            ``{name: {"calls": n, "total_ms": t, "mean_ms": m}}`` per span.
        """
        return {
            name: {
                "calls": stats.calls,
                "total_ms": stats.total_ms,
                "mean_ms": stats.mean_ms,
            }
            for name, stats in self.spans.items()
        }

    def render(self) -> str:
        """Human-readable table, spans sorted by total time descending."""
        if not self.spans:
            return "(no spans recorded)"
        ordered = sorted(self.spans.items(), key=lambda kv: -kv[1].total_ms)
        width = max(len(name) for name, _ in ordered)
        lines = [f"{'span':<{width}}  {'calls':>6}  {'total ms':>10}  {'mean ms':>9}"]
        for name, stats in ordered:
            lines.append(
                f"{name:<{width}}  {stats.calls:>6}  {stats.total_ms:>10.2f}  "
                f"{stats.mean_ms:>9.3f}"
            )
        return "\n".join(lines)

    def chrome_trace(self) -> dict:
        """The recorded entries as a Chrome trace-event document.

        Requires ``trace=True``; raises :class:`ValueError` otherwise so a
        silent empty trace cannot masquerade as a real profile.  All spans
        land on tid 0 (the profiler times one thread of execution);
        timestamps are wall milliseconds since the profiler epoch.

        Returns:
            A dict in the same shape as
            :meth:`repro.obs.tracing.Tracer.to_chrome`.
        """
        if not self.trace:
            raise ValueError("chrome_trace() needs Profiler(trace=True)")
        from ..obs.tracing import Tracer

        tracer = Tracer()
        tracer.add_thread_name(0, "profiler")
        for name, start_ms, duration_ms in self.entries:
            tracer.add_span(name, start_ms, duration_ms, tid=0)
        return tracer.to_chrome()

    def chrome_trace_json(self) -> str:
        """:meth:`chrome_trace` serialized with sorted keys (stable bytes
        for equal entries)."""
        import json

        return json.dumps(self.chrome_trace(), sort_keys=True) + "\n"

    def reset(self) -> None:
        """Drop all accumulated spans (and any trace entries/epoch)."""
        self.spans.clear()
        self.entries.clear()
        self._epoch = None
