"""A lightweight span profiler for attributing wall time to pipeline stages.

``Profiler`` accumulates (call count, total time) per named span.  It is
deliberately tiny — a context manager around ``time.perf_counter`` — so it
can wrap hot-path stages (tokenize / encode / classify / dispatch) without
perturbing what it measures.  The bench harness uses it to attribute serve
wall time; it is also usable standalone::

    profiler = Profiler()
    with profiler.span("encode"):
        model.encode(ids, mask)
    print(profiler.render())
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator


@dataclass
class SpanStats:
    """Accumulated statistics of one named span.

    Attributes:
        calls: Number of completed span entries.
        total_ms: Total wall milliseconds across all entries.
    """

    calls: int = 0
    total_ms: float = 0.0

    @property
    def mean_ms(self) -> float:
        """Mean wall milliseconds per call (0.0 before any call)."""
        return self.total_ms / self.calls if self.calls else 0.0


@dataclass
class Profiler:
    """Accumulates wall time per named span.

    Attributes:
        spans: Mapping of span name to its accumulated :class:`SpanStats`,
            in first-entered order.
    """

    spans: Dict[str, SpanStats] = field(default_factory=dict)

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Time one entry of span ``name`` (re-entrant across calls).

        Args:
            name: Span label; repeated entries accumulate.
        """
        stats = self.spans.setdefault(name, SpanStats())
        start = time.perf_counter()
        try:
            yield
        finally:
            stats.calls += 1
            stats.total_ms += (time.perf_counter() - start) * 1e3

    def wrap(self, name: str, fn: Callable) -> Callable:
        """Return ``fn`` wrapped so every call is recorded under ``name``.

        Args:
            name: Span label.
            fn: Callable to instrument.

        Returns:
            A callable with the same signature as ``fn``.
        """

        def wrapped(*args, **kwargs):
            with self.span(name):
                return fn(*args, **kwargs)

        return wrapped

    def report(self) -> Dict[str, Dict[str, float]]:
        """Span statistics as plain dicts (JSON-ready).

        Returns:
            ``{name: {"calls": n, "total_ms": t, "mean_ms": m}}`` per span.
        """
        return {
            name: {
                "calls": stats.calls,
                "total_ms": stats.total_ms,
                "mean_ms": stats.mean_ms,
            }
            for name, stats in self.spans.items()
        }

    def render(self) -> str:
        """Human-readable table, spans sorted by total time descending."""
        if not self.spans:
            return "(no spans recorded)"
        ordered = sorted(self.spans.items(), key=lambda kv: -kv[1].total_ms)
        width = max(len(name) for name, _ in ordered)
        lines = [f"{'span':<{width}}  {'calls':>6}  {'total ms':>10}  {'mean ms':>9}"]
        for name, stats in ordered:
            lines.append(
                f"{name:<{width}}  {stats.calls:>6}  {stats.total_ms:>10.2f}  "
                f"{stats.mean_ms:>9.3f}"
            )
        return "\n".join(lines)

    def reset(self) -> None:
        """Drop all accumulated spans."""
        self.spans.clear()
