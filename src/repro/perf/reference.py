"""Seed (pre-optimization) integer kernels, kept as the equivalence oracle.

The vectorization pass in :mod:`repro.quant.integer_model` is only allowed
to make the hot path *faster*, never *different*: every optimized kernel
must produce codes bit-identical to the implementation this repository
seeded with.  This module preserves those seed kernels verbatim — per-call
transpose copies, redundant ``int64`` casts, native integer matmuls and all
— so that

- ``tests/perf/test_reference_equivalence.py`` can assert bit-exactness on
  random and adversarial inputs, and
- the bench harness (``repro.cli bench``) can report the optimized/seed
  speedup that the ROADMAP's "every PR makes a hot path measurably faster"
  rule demands.

These functions operate on the *same* frozen dataclasses as the optimized
engine (:class:`~repro.quant.integer_model.IntegerLinear` etc.), so a single
converted model can be executed through either path.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..quant.fixedpoint import integer_isqrt, saturate
from ..quant.integer_model import (
    ACT_BITS,
    LN_FRAC_BITS,
    IntegerBertForSequenceClassification,
    IntegerBertLayer,
    IntegerLayerNorm,
    IntegerLinear,
    IntegerSelfAttention,
    _merge_heads_np,
    _split_heads_np,
)
from ..quant.softmax_lut import quantized_softmax


def reference_linear_forward(linear: IntegerLinear, x_codes: np.ndarray) -> np.ndarray:
    """Seed Eq. 5 kernel: per-call transpose + cast, native int64 matmul.

    Args:
        linear: A frozen integer linear layer.
        x_codes: Activation codes, shape ``(..., in_features)``.

    Returns:
        Output codes saturated to ``linear.out_bits``.
    """
    acc = x_codes.astype(np.int64) @ linear.weight_codes.T.astype(np.int64)
    if linear.bias_codes is not None:
        acc = acc + linear.bias_codes
    return saturate(linear.requant.apply(acc), linear.out_bits)


def reference_layernorm_forward(
    ln: IntegerLayerNorm, codes_a: np.ndarray, codes_b: np.ndarray
) -> np.ndarray:
    """Seed fixed-point Add&LN: re-widens gamma/beta on every call.

    Args:
        ln: A frozen integer layer norm.
        codes_a: Integer codes of the first addend.
        codes_b: Integer codes of the second addend, same shape.

    Returns:
        8-bit output codes.
    """
    v = ln.align_a.apply(codes_a.astype(np.int64)) + ln.align_b.apply(
        codes_b.astype(np.int64)
    )
    n = v.shape[-1]
    total = v.sum(axis=-1, keepdims=True)
    mean = np.rint(total / n).astype(np.int64)
    centered = v - mean
    var = (centered * centered).sum(axis=-1, keepdims=True) // n
    std = integer_isqrt(var + ln.eps_fx)
    normalized = (centered << LN_FRAC_BITS) // np.maximum(std, 1)
    scaled = normalized * ln.gamma_codes.astype(np.int64)
    beta_aligned = ln.beta_codes.astype(np.int64) << LN_FRAC_BITS
    acc = scaled + beta_aligned
    return saturate(ln.out_requant.apply(acc), ACT_BITS)


def reference_attention_forward(
    attn: IntegerSelfAttention,
    x_codes: np.ndarray,
    attention_mask: Optional[np.ndarray],
) -> np.ndarray:
    """Seed integer multi-head attention (native int64 batched matmuls).

    Args:
        attn: A frozen integer self-attention block.
        x_codes: Hidden codes, shape ``(batch, seq, hidden)``.
        attention_mask: Optional 0/1 validity mask, ``(batch, seq)``.

    Returns:
        Context codes, shape ``(batch, seq, hidden)``.
    """
    q = _split_heads_np(reference_linear_forward(attn.query, x_codes), attn.num_heads)
    k = _split_heads_np(reference_linear_forward(attn.key, x_codes), attn.num_heads)
    v = _split_heads_np(reference_linear_forward(attn.value, x_codes), attn.num_heads)

    score_acc = q.astype(np.int64) @ k.swapaxes(-1, -2).astype(np.int64)
    score_codes = saturate(attn.score_requant.apply(score_acc), ACT_BITS)

    mask = attention_mask[:, None, None, :] if attention_mask is not None else None
    prob_codes, _ = quantized_softmax(
        score_codes, attn.score_scale, lut=attn.exp_lut, mask=mask
    )

    context_acc = prob_codes.astype(np.int64) @ v.astype(np.int64)
    context_codes = saturate(attn.context_requant.apply(context_acc), ACT_BITS)
    return _merge_heads_np(context_codes)


def reference_layer_forward(
    layer: IntegerBertLayer,
    x_codes: np.ndarray,
    attention_mask: Optional[np.ndarray],
) -> np.ndarray:
    """One encoder layer through the seed kernels.

    Args:
        layer: A frozen integer encoder layer.
        x_codes: Hidden codes, shape ``(batch, seq, hidden)``.
        attention_mask: Optional 0/1 validity mask, ``(batch, seq)``.

    Returns:
        The layer's output codes.
    """
    context = reference_attention_forward(layer.attention, x_codes, attention_mask)
    projected = reference_linear_forward(layer.attention_output, context)
    attended = _reference_ln(layer.attention_layernorm, projected, x_codes)

    intermediate = reference_linear_forward(layer.ffn1, attended)
    activated = layer.gelu.forward(intermediate)
    ffn_out = reference_linear_forward(layer.ffn2, activated)
    return _reference_ln(layer.output_layernorm, ffn_out, attended)


def reference_encode(
    model: IntegerBertForSequenceClassification,
    input_ids: np.ndarray,
    attention_mask: Optional[np.ndarray] = None,
    token_type_ids: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Host embedding + the integer encoder, all through seed kernels.

    Args:
        model: A converted integer model.
        input_ids: Token ids, shape ``(batch, seq)``.
        attention_mask: Optional 0/1 mask, ``(batch, seq)``.
        token_type_ids: Optional segment ids, ``(batch, seq)``.

    Returns:
        Final encoder codes, shape ``(batch, seq, hidden)``.
    """
    codes = model._embed_fn(np.asarray(input_ids), token_type_ids)
    for layer in model.layers:
        codes = reference_layer_forward(layer, codes, attention_mask)
    return codes


def reference_forward(
    model: IntegerBertForSequenceClassification,
    input_ids: np.ndarray,
    attention_mask: Optional[np.ndarray] = None,
    token_type_ids: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Logits through the seed kernels (encoder + the shared float head).

    Args:
        model: A converted integer model.
        input_ids: Token ids, shape ``(batch, seq)``.
        attention_mask: Optional 0/1 mask, ``(batch, seq)``.
        token_type_ids: Optional segment ids, ``(batch, seq)``.

    Returns:
        Logits of shape ``(batch, num_labels)``.
    """
    codes = reference_encode(model, input_ids, attention_mask, token_type_ids)
    return model.classify(codes)


def _reference_ln(ln, codes_a: np.ndarray, codes_b: np.ndarray) -> np.ndarray:
    """Dispatch Add&LN to the seed integer kernel (float LN is unchanged)."""
    if isinstance(ln, IntegerLayerNorm):
        return reference_layernorm_forward(ln, codes_a, codes_b)
    return ln.forward(codes_a, codes_b)
