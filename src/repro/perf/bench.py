"""Pinned benchmark suites behind ``repro.cli bench``.

Four suites, each emitting one JSON document designed to be committed as
a regression baseline (``BENCH_kernels.json`` / ``BENCH_serve.json`` /
``BENCH_cluster.json`` / ``BENCH_fleet.json``):

- **kernels** — the optimized integer kernels (linear, attention, Add&LN,
  LUT softmax, and the full batched forward at batch=8) timed against the
  seed implementations preserved in :mod:`repro.perf.reference`.  Before
  timing, the suite *asserts bit-exact equivalence* between the two paths —
  a speedup that changes an output bit is a bug, not a result.
- **serve** — a pinned Poisson trace through the full
  :class:`~repro.serve.ServingEngine`, reporting both wall-clock host cost
  and the deterministic simulated serving statistics (which double as
  functional regression canaries: they must reproduce exactly).
- **cluster** — a pinned flash-crowd scenario through the
  :mod:`repro.fleet` cluster simulator, fixed fleet vs. autoscaled, plus a
  heterogeneous steady-state fleet.  Before timing, the suite *asserts the
  scale-out contract* — shedding engages on the fixed fleet and the
  autoscaler strictly improves goodput — then gates on the deterministic
  goodput / shed-rate / tail-latency numbers.
- **fleet** — the analytic (latency-only) execution mode: *asserts* that
  an analytic fleet report is byte-identical to the executed one, gates
  the wall-clock speedup ratio, and completes a ~1.06M-request
  flash-crowd trace — the headline that cluster questions can be asked at
  production traffic scale.
- **dse** — the design-space search layer: *asserts* the paper's three
  Table III design points sit on the Pareto front of the Table III knob
  space, that memoized candidate evaluation sustains ≥1k evaluations per
  second, and that the capacity planner's cheapest plan meets the pinned
  flash-crowd SLO targets — then gates the deterministic front/plan
  numbers.

JSON layout (``schema: repro-bench/1``)::

    {"schema": "repro-bench/1", "suite": "kernels", "profile": "full",
     "metrics": {"<name>": {"value": 1.23, "unit": "ms",
                            "higher_is_better": false, "gated": false}},
     "info": {...}}          # context, never regression-checked

``metrics`` entries are what :mod:`repro.perf.regression` gates on.
"""

from __future__ import annotations

import json
import pathlib
from typing import Callable, Dict, Optional

import numpy as np

from ..bert.config import BertConfig
from ..serve import ServingConfig, ServingEngine, generate_trace
from . import reference
from .profiler import Profiler
from .timer import time_callable
from .workloads import HashTokenizer, bench_text_pool, build_synthetic_integer_model

SCHEMA = "repro-bench/1"
SUITES = ("kernels", "serve", "cluster", "fleet", "dse")
BENCH_BATCH = 8  # the acceptance batch size for the batched forward


def _metric(value: float, unit: str, higher_is_better: bool, gated: bool = True) -> Dict:
    """One metric entry.  ``gated=False`` records machine-dependent raw
    wall-clock values for context without subjecting them to the regression
    tolerance — only machine-portable metrics (same-run speedup ratios,
    deterministic simulated stats) gate by default."""
    return {
        "value": float(value),
        "unit": unit,
        "higher_is_better": higher_is_better,
        "gated": gated,
    }


def _kernel_config(quick: bool) -> BertConfig:
    """The pinned model shape of the kernel suite."""
    if quick:
        return BertConfig(
            vocab_size=256,
            hidden_size=96,
            num_hidden_layers=2,
            num_attention_heads=12,
            intermediate_size=384,
            max_position_embeddings=64,
            num_labels=2,
        )
    return BertConfig(
        vocab_size=512,
        hidden_size=192,
        num_hidden_layers=4,
        num_attention_heads=12,
        intermediate_size=768,
        max_position_embeddings=128,
        num_labels=2,
    )


def run_kernel_suite(quick: bool = False, seed: int = 0) -> Dict:
    """Time optimized vs. seed kernels on a pinned synthetic model.

    Args:
        quick: Use the small shape / fewer repeats (CI smoke profile).
        seed: Seed for the synthetic model and inputs.

    Returns:
        A ``repro-bench/1`` result document.

    Raises:
        RuntimeError: If any optimized kernel output differs from the seed
            reference by even one bit (the equivalence gate).
    """
    config = _kernel_config(quick)
    seq_len = 32 if quick else 64
    repeats = 2 if quick else 5
    model = build_synthetic_integer_model(config, seed=seed)
    rng = np.random.default_rng(seed + 1)

    input_ids = rng.integers(0, config.vocab_size, size=(BENCH_BATCH, seq_len))
    lengths = rng.integers(seq_len // 2, seq_len + 1, size=BENCH_BATCH)
    mask = (np.arange(seq_len)[None, :] < lengths[:, None]).astype(np.int64)

    # --- equivalence gate: the two paths must agree bit-for-bit ----------
    opt_codes = model.encode(input_ids, mask)
    ref_codes = reference.reference_encode(model, input_ids, mask)
    if not np.array_equal(opt_codes, ref_codes):
        raise RuntimeError(
            "optimized encoder diverged from the seed reference — refusing to "
            "benchmark a non-equivalent kernel"
        )
    if not np.array_equal(
        model.forward(input_ids, mask), reference.reference_forward(model, input_ids, mask)
    ):
        raise RuntimeError("optimized forward diverged from the seed reference")

    layer = model.layers[0]
    flat = opt_codes.reshape(-1, config.hidden_size)

    # (optimized, seed, gate_speedup): the speedup ratio is gated only for
    # kernels with a claimed multi-x win — Add&LN was already vectorized in
    # the seed, so its ~1.0x ratio is pure timing noise and gating it at
    # 10% would fail spuriously.
    pairs: Dict[str, tuple] = {
        "batched_forward_batch8": (
            lambda: model.forward(input_ids, mask),
            lambda: reference.reference_forward(model, input_ids, mask),
            True,
        ),
        "integer_linear_ffn1": (
            lambda: layer.ffn1.forward(flat),
            lambda: reference.reference_linear_forward(layer.ffn1, flat),
            True,
        ),
        "attention_layer0": (
            lambda: layer.attention.forward(opt_codes, mask),
            lambda: reference.reference_attention_forward(layer.attention, opt_codes, mask),
            True,
        ),
        "layernorm_layer0": (
            lambda: layer.attention_layernorm.forward(opt_codes, ref_codes),
            lambda: reference.reference_layernorm_forward(
                layer.attention_layernorm, opt_codes, ref_codes
            ),
            False,
        ),
    }
    metrics: Dict[str, Dict] = {}
    for name, (optimized, seed_impl, gate_speedup) in pairs.items():
        opt = time_callable(optimized, repeats=repeats)
        ref = time_callable(seed_impl, repeats=repeats)
        metrics[f"{name}_ms"] = _metric(
            opt.best_ms, "ms", higher_is_better=False, gated=False
        )
        metrics[f"{name}_reference_ms"] = _metric(
            ref.best_ms, "ms", higher_is_better=False, gated=False
        )
        # The speedup is a same-run ratio, so it transfers across machines
        # far better than raw milliseconds do.
        metrics[f"{name}_speedup_vs_reference"] = _metric(
            ref.best_ms / opt.best_ms if opt.best_ms else float("inf"),
            "x",
            higher_is_better=True,
            gated=gate_speedup,
        )

    return {
        "schema": SCHEMA,
        "suite": "kernels",
        "profile": "quick" if quick else "full",
        "metrics": metrics,
        "info": {
            "model": model.config.to_dict(),
            "seq_len": seq_len,
            "batch_size": BENCH_BATCH,
            "repeats": repeats,
            "seed": seed,
        },
    }


def run_serve_suite(quick: bool = False, seed: int = 0) -> Dict:
    """Run a pinned request trace through the serving engine and time it.

    Args:
        quick: Use the small model / short trace (CI smoke profile).
        seed: Seed for the synthetic model, text pool, and trace.

    Returns:
        A ``repro-bench/1`` result document.  Wall metrics measure host
        compute; the ``sim_*`` metrics come from the deterministic
        simulated clock and must reproduce exactly across machines.
    """
    config = _kernel_config(quick)
    num_requests = 32 if quick else 96
    repeats = 2 if quick else 3
    serving = ServingConfig(
        max_batch_size=BENCH_BATCH,
        max_wait_ms=8.0,
        buckets=(16, 32, 64),
        num_devices=2,
        cache_capacity=256,
        slo_ms=400.0,
    )
    tokenizer = HashTokenizer(vocab_size=config.vocab_size)
    pool = bench_text_pool(48, seed=seed)
    trace = generate_trace(pool, num_requests=num_requests, mean_interarrival_ms=2.0, seed=seed)

    # One shared model across repeats: engine state must reset per run, but
    # the frozen model (and its cached weight plans) is steady-state reuse —
    # exactly what a serving process amortizes.
    model = build_synthetic_integer_model(config, seed=seed)

    def fresh_engine() -> ServingEngine:
        return ServingEngine(model, tokenizer, serving)

    def run_once() -> None:
        fresh_engine().run_trace(trace)

    wall = time_callable(run_once, repeats=repeats, warmup=1)

    # One instrumented run for the stats + the span attribution.
    profiler = Profiler()
    engine = fresh_engine()
    engine.model.encode = profiler.wrap("model.encode", engine.model.encode)
    engine.model.classify_rows = profiler.wrap(
        "model.classify_rows", engine.model.classify_rows
    )
    engine.tokenizer = _wrap_tokenizer(profiler, tokenizer)
    with profiler.span("run_trace"):
        engine.run_trace(trace)
    stats = engine.stats()

    metrics = {
        "trace_wall_ms": _metric(wall.best_ms, "ms", higher_is_better=False, gated=False),
        "wall_requests_per_s": _metric(
            num_requests / (wall.best_ms / 1e3), "req/s", higher_is_better=True, gated=False
        ),
        "sim_p50_latency_ms": _metric(stats.p50_latency_ms, "ms", higher_is_better=False),
        "sim_p95_latency_ms": _metric(stats.p95_latency_ms, "ms", higher_is_better=False),
        "sim_throughput_rps": _metric(stats.throughput_rps, "req/s", higher_is_better=True),
        "sim_mean_batch_size": _metric(stats.mean_batch_size, "req", higher_is_better=True),
        "sim_cache_hit_rate": _metric(stats.cache_hit_rate, "", higher_is_better=True),
        "sim_padding_efficiency": _metric(
            stats.padding_efficiency, "", higher_is_better=True
        ),
    }
    return {
        "schema": SCHEMA,
        "suite": "serve",
        "profile": "quick" if quick else "full",
        "metrics": metrics,
        "info": {
            "model": engine.model.config.to_dict(),
            "num_requests": num_requests,
            "repeats": repeats,
            "seed": seed,
            "serving": {
                "max_batch_size": serving.max_batch_size,
                "max_wait_ms": serving.max_wait_ms,
                "buckets": list(serving.buckets),
                "num_devices": serving.num_devices,
                "slo_ms": serving.slo_ms,
            },
            "profile_spans": profiler.report(),
        },
    }


def cluster_model_config(max_position_embeddings: int = 64) -> BertConfig:
    """The pinned (small) model shape of the cluster suite and loadtest CLI.

    Smaller than the kernel shape on purpose: the cluster suite's cost is
    trace length x host forward, and its subject is fleet dynamics, not
    kernel speed.  One definition keeps CLI loadtest runs comparable with
    the gated ``BENCH_cluster.json`` baselines.
    """
    return BertConfig(
        vocab_size=512,
        hidden_size=64,
        num_hidden_layers=2,
        num_attention_heads=4,
        intermediate_size=128,
        max_position_embeddings=max_position_embeddings,
        num_labels=2,
    )


def run_cluster_suite(quick: bool = False, seed: int = 0) -> Dict:
    """Run the pinned cluster scenarios through the fleet simulator.

    Three deterministic runs over one frozen synthetic model:

    1. **flash-crowd, fixed fleet** — one deliberately weak replica (a
       scaled-down design point) against a 3x-rate burst, so admission
       control must shed;
    2. **flash-crowd, autoscaled** — same trace, autoscaler on, which must
       strictly improve goodput (asserted, like the kernel equivalence
       gate: a cluster layer that can't beat a fixed fleet under burst is
       a bug, not a result);
    3. **steady, heterogeneous fleet** — a ZCU102 (8, 16) next to a
       ZCU111 (16, 16) replica, exercising per-design-point routing.

    Args:
        quick: Shrink the traces (CI smoke profile).
        seed: Workload seed.

    Returns:
        A ``repro-bench/1`` result document.  All ``sim_*`` metrics come
        from the simulated clock and must reproduce exactly across
        machines.

    Raises:
        RuntimeError: If shedding fails to engage on the fixed fleet, or
            the autoscaler fails to strictly improve goodput.
    """
    from ..accel.config import AcceleratorConfig
    from ..accel.devices import ZCU111
    from ..fleet import (
        AutoscalePolicy,
        FleetConfig,
        ReplicaSpec,
        run_scenario,
    )

    config = cluster_model_config()
    model = build_synthetic_integer_model(config, seed=seed)
    tokenizer = HashTokenizer(vocab_size=config.vocab_size)
    serving = ServingConfig(
        max_batch_size=BENCH_BATCH,
        max_wait_ms=5.0,
        buckets=(16, 32, 64),
        num_devices=1,
        cache_capacity=512,
    )
    # A deliberately weak design point: overload must be reachable with a
    # few hundred requests, not a few hundred thousand.
    weak = ReplicaSpec(
        accel_config=AcceleratorConfig(num_pus=2, num_pes=2, num_multipliers=4),
        name="weak",
    )
    fleet_config = FleetConfig(serving=serving, admit_slo_factor=1.0)
    rate_scale = 1.5 if quick else 3.0
    duration_scale = 0.5 if quick else 1.0

    def run_flash(autoscale):
        return run_scenario(
            "flash-crowd",
            model,
            tokenizer,
            [weak],
            fleet_config,
            autoscale=autoscale,
            seed=seed,
            rate_scale=rate_scale,
            duration_scale=duration_scale,
        )

    policy = AutoscalePolicy(min_replicas=1, max_replicas=5, interval_ms=15.0)
    # One timed cold run whose report is also the result — the scenario is
    # the suite's most expensive run, so it executes exactly once.
    captured = {}
    wall = time_callable(
        lambda: captured.setdefault("fixed", run_flash(None)), repeats=1, warmup=0
    )
    fixed = captured["fixed"]
    autoscaled = run_flash(policy)

    # --- the scale-out contract, asserted before anything is recorded ---
    if not quick and fixed.stats.shed == 0:
        raise RuntimeError(
            "flash-crowd failed to trigger load shedding on the fixed fleet — "
            "the overload scenario no longer overloads; refusing to benchmark"
        )
    if autoscaled.stats.goodput_rps <= fixed.stats.goodput_rps:
        raise RuntimeError(
            "autoscaler failed to strictly improve goodput over the fixed "
            f"fleet ({autoscaled.stats.goodput_rps:.2f} <= "
            f"{fixed.stats.goodput_rps:.2f}); refusing to benchmark"
        )

    hetero = run_scenario(
        "steady",
        model,
        tokenizer,
        [
            ReplicaSpec(accel_config=AcceleratorConfig.zcu102_n8_m16()),
            ReplicaSpec(accel_config=AcceleratorConfig.zcu111_n16_m16(), device=ZCU111),
        ],
        FleetConfig(serving=serving),
        seed=seed,
        rate_scale=rate_scale,
        duration_scale=duration_scale,
    )
    if hetero.stats.shed or hetero.stats.completed != hetero.stats.submitted:
        raise RuntimeError(
            "heterogeneous steady-state fleet unexpectedly shed or lost traffic"
        )

    metrics = {
        "cluster_wall_ms": _metric(wall.best_ms, "ms", higher_is_better=False, gated=False),
        "sim_fixed_goodput_rps": _metric(
            fixed.stats.goodput_rps, "req/s", higher_is_better=True
        ),
        "sim_fixed_shed_rate": _metric(
            fixed.stats.shed_rate, "", higher_is_better=False
        ),
        "sim_fixed_p99_latency_ms": _metric(
            fixed.stats.p99_latency_ms, "ms", higher_is_better=False
        ),
        "sim_auto_goodput_rps": _metric(
            autoscaled.stats.goodput_rps, "req/s", higher_is_better=True
        ),
        "sim_auto_p99_latency_ms": _metric(
            autoscaled.stats.p99_latency_ms, "ms", higher_is_better=False
        ),
        "sim_auto_slo_attainment": _metric(
            autoscaled.stats.slo_attainment, "", higher_is_better=True
        ),
        "sim_auto_scale_ups": _metric(
            sum(e.action == "up" for e in autoscaled.stats.scale_events),
            "events",
            higher_is_better=False,
            gated=False,
        ),
        "sim_hetero_p99_latency_ms": _metric(
            hetero.stats.p99_latency_ms, "ms", higher_is_better=False
        ),
        "sim_hetero_throughput_rps": _metric(
            hetero.stats.throughput_rps, "req/s", higher_is_better=True
        ),
    }
    return {
        "schema": SCHEMA,
        "suite": "cluster",
        "profile": "quick" if quick else "full",
        "metrics": metrics,
        "info": {
            "model": config.to_dict(),
            "seed": seed,
            "rate_scale": rate_scale,
            "duration_scale": duration_scale,
            "submitted": {
                "fixed": fixed.stats.submitted,
                "autoscaled": autoscaled.stats.submitted,
                "hetero": hetero.stats.submitted,
            },
            "fixed_shed": fixed.stats.shed,
            "auto_shed": autoscaled.stats.shed,
            "scale_events": [
                {"time_ms": e.time_ms, "action": e.action, "replicas_after": e.replicas_after}
                for e in autoscaled.stats.scale_events
            ],
        },
    }


def run_fleet_suite(quick: bool = False, seed: int = 0) -> Dict:
    """Analytic-mode fleet simulation: equivalence gates, speedups, 100M trace.

    Five pinned experiments over one frozen synthetic model:

    1. **Equivalence + speedup** — the same steady scenario through the
       same fleet twice, executed vs. analytic.  The suite *asserts* the
       two reports are byte-identical (timing never came from the host
       model, so analytic mode must not move a single number) and then
       gates the wall-clock speedup ratio — the tentpole claim that
       latency-only execution decouples simulation scale from model FLOPs.
    2. **The million-request flash crowd** — a ~1.06M-request flash-crowd
       trace through an 8-replica ZCU102 fleet in analytic mode.  This run
       is identical in the quick and full profiles on purpose: completing
       it *is* the smoke test ("cluster questions at production traffic
       scale"), so CI proves it on every push.
    3. **Columnar equivalence + speedup** — the identical mega trace
       through the columnar engine.  The suite asserts its report is
       byte-identical to the event-loop analytic one and gates a >= 10x
       wall-clock speedup contract on top of it.
    4. **The 100M-request flash crowd** — the mega scenario scaled 100x,
       columnar only (the event loop would take an hour), sharded into
       deterministic time windows.  Like the mega run it is never shrunk
       in ``--quick``: completing it is the contract.
    5. **Observability overhead** — a dense steady trace through the
       event-loop analytic engine with a live
       :class:`~repro.obs.FleetObserver` vs. with observability disabled.
       The suite *asserts* the observed report is byte-identical to the
       plain one (the transparency contract) and that the overhead ratio
       stays under 10%; the ratio is gated, the walls are informational.
    6. **Chaos recovery** — a correlated two-replica zone outage with a
       simultaneous gray (4x straggler) window on the lone survivor,
       against timeouts + retries + circuit breaker + the autoscaler.
       The suite *asserts* the fleet recovers: windowed goodput after
       the outage climbs back to >= 90% of the pre-failure baseline
       (the observer's MTTR gauge reports a real recovery time, and the
       post-recovery goodput fraction is gated).
    7. **Chaos overhead when disabled** — the same steady trace with a
       fully *disabled* :class:`~repro.fleet.chaos.ResiliencePolicy`
       attached vs. plain.  The suite *asserts* the ratio stays under
       1.05: threading the chaos seams through the engines must be
       zero-cost when nothing is enabled.

    Args:
        quick: Shrink the equivalence trace (the 1M/100M runs are never
            shrunk).
        seed: Workload seed.

    Returns:
        A ``repro-bench/1`` result document.  All ``sim_*`` metrics come
        from the simulated clock and must reproduce exactly across
        machines.

    Raises:
        RuntimeError: If the analytic report differs from the executed one
            (or the columnar report from the analytic one, or the observed
            report from the plain one) by even one byte, either speedup
            falls below its 10x contract, observability costs 10% or
            more, a headline trace shrank below its request floor, the
            fleet fails to recover >= 90% of pre-failure goodput after
            the pinned outage, or disabled chaos seams cost 5% or more.
    """
    from ..accel.config import AcceleratorConfig
    from ..fleet import (
        AutoscalePolicy,
        ChaosPlan,
        FleetConfig,
        GrayWindow,
        ReplicaSpec,
        ResiliencePolicy,
        ZoneOutage,
        native_available,
        run_scenario,
        run_scenario_columnar,
    )

    config = cluster_model_config()
    model = build_synthetic_integer_model(config, seed=seed)
    tokenizer = HashTokenizer(vocab_size=config.vocab_size)
    serving = ServingConfig(
        max_batch_size=BENCH_BATCH,
        max_wait_ms=5.0,
        buckets=(16, 32, 64),
        num_devices=1,
        cache_capacity=512,
    )
    fleet_config = FleetConfig(serving=serving)
    specs = [ReplicaSpec(), ReplicaSpec()]
    eq_rate = 0.5 if quick else 1.0

    def run_steady(analytic: bool):
        return run_scenario(
            "steady",
            model,
            tokenizer,
            specs,
            fleet_config,
            seed=seed,
            rate_scale=eq_rate,
            analytic=analytic,
        )

    # --- the equivalence gate: analytic must be a pure fast path --------
    # One warmup run per mode, so the one-time costs both modes share
    # (weight plans, memoized schedules) don't pollute the speedup ratio.
    captured = {}
    executed_wall = time_callable(
        lambda: captured.setdefault("executed", run_steady(False)), repeats=1, warmup=1
    )
    # Every repeat produces the same deterministic report; keep the last
    # instead of paying one more scenario run just to fetch it.
    analytic_wall = time_callable(
        lambda: captured.__setitem__("analytic", run_steady(True)),
        repeats=2 if quick else 5,
        warmup=1,
    )
    executed = captured["executed"]
    analytic = captured["analytic"]
    if executed.to_json() != analytic.to_json():
        raise RuntimeError(
            "analytic mode produced a different report than executed mode — "
            "latency-only execution moved a number; refusing to benchmark"
        )
    speedup = (
        executed_wall.best_ms / analytic_wall.best_ms
        if analytic_wall.best_ms
        else float("inf")
    )
    if speedup < 10.0:
        raise RuntimeError(
            f"analytic mode is only {speedup:.1f}x faster than executed mode "
            "on the pinned scenario — below the 10x contract; refusing to "
            "benchmark"
        )

    # --- the observability gate: attach-for-free or refuse ---------------
    # A denser steady trace than the equivalence run (fixed per-run costs
    # would otherwise swamp the per-request overhead this measures), same
    # exact pipeline; a fresh FleetObserver per repeat so nothing
    # accumulates across timing runs.
    from ..obs import FleetObserver

    obs_rate_scale, obs_duration_scale = 8.0, 8.0

    def run_obs_steady(obs):
        return run_scenario(
            "steady",
            model,
            tokenizer,
            specs,
            fleet_config,
            seed=seed,
            rate_scale=obs_rate_scale,
            duration_scale=obs_duration_scale,
            analytic=True,
            obs=obs,
        )

    # The ratio divides two wall clocks on a machine whose load drifts, so
    # the runs interleave (both sides of each pair see the same machine)
    # and the gate compares floor to floor — the minimum is the standard
    # low-noise estimator, and the observed side allocates enough that a
    # stray GC pass would land on it disproportionately, so collection is
    # parked during the timed region and run between pairs instead.
    import gc as _gc
    from time import perf_counter as _clock

    obs_pairs = 5 if quick else 15
    obs_captured = {
        "plain": run_obs_steady(None),  # warmup pair; kept for the
        "observed": run_obs_steady(FleetObserver()),  # transparency check
    }
    obs_off_best = obs_on_best = float("inf")
    gc_was_enabled = _gc.isenabled()
    _gc.collect()
    _gc.disable()
    try:
        for _ in range(obs_pairs):
            start = _clock()
            run_obs_steady(None)
            obs_off_best = min(obs_off_best, (_clock() - start) * 1e3)
            start = _clock()
            run_obs_steady(FleetObserver())
            obs_on_best = min(obs_on_best, (_clock() - start) * 1e3)
            _gc.collect()
    finally:
        if gc_was_enabled:
            _gc.enable()
    if obs_captured["observed"].to_json() != obs_captured["plain"].to_json():
        raise RuntimeError(
            "attaching a FleetObserver changed the report — the transparency "
            "contract is broken; refusing to benchmark"
        )
    obs_overhead = (
        obs_on_best / obs_off_best if obs_off_best else float("inf")
    )
    if obs_overhead >= 1.10:
        raise RuntimeError(
            f"observability costs {(obs_overhead - 1.0) * 100:.1f}% on the "
            "pinned steady trace — at or above the 10% ceiling; refusing to "
            "benchmark"
        )

    # --- the chaos recovery gate: survive a two-replica zone outage -----
    # Three deliberately weak replicas; two share a zone that goes dark
    # for a correlated window while the lone survivor simultaneously goes
    # *gray* (4x straggler) — the worst 200ms the drill can stage.  The
    # default ZCU102 design point absorbs any outage without breaking a
    # sweat, so the drill uses the same slow design point the chaos test
    # matrix uses, plus a tight 1.0x-SLO admission bound and a 25ms
    # request timeout so the resilience mechanisms demonstrably fire
    # (retries, timeouts, breaker opens all > 0 on this pinned trace).
    # Retries + breaker + the autoscaler must bring windowed goodput back
    # to >= 90% of the pre-failure baseline — the observer's MTTR gauge
    # is the recovery detector (it encodes exactly that criterion over
    # the goodput window series).
    weak_chaos_spec = ReplicaSpec(
        accel_config=AcceleratorConfig(num_pus=2, num_pes=2, num_multipliers=4),
        name="weak",
    )
    chaos_fleet_config = FleetConfig(serving=serving, admit_slo_factor=1.0)
    chaos_plan = ChaosPlan(
        name="bench-zone-outage",
        zones=(("zone-a", (0, 1)),),
        outages=(ZoneOutage(zone="zone-a", at_ms=300.0, recover_ms=500.0),),
        grays=(
            GrayWindow(
                replica_id=2, start_ms=300.0, end_ms=500.0, slowdown=4.0
            ),
        ),
    )
    chaos_policy = ResiliencePolicy(
        max_retries=2,
        backoff_base_ms=3.0,
        retry_budget_ratio=1.0,
        retry_budget_burst=20.0,
        breaker=True,
        breaker_straggle_factor=2.0,
        breaker_window=6,
        breaker_min_samples=3,
        breaker_open_ms=30.0,
        timeout_ms=25.0,
    )
    chaos_obs = FleetObserver()
    chaos_report = run_scenario(
        "steady",
        model,
        tokenizer,
        [weak_chaos_spec] * 3,
        chaos_fleet_config,
        seed=seed,
        rate_scale=6.0,
        duration_scale=4.0,
        analytic=True,
        scale_spec=weak_chaos_spec,
        autoscale=AutoscalePolicy(
            min_replicas=1, max_replicas=6, interval_ms=50.0, cooldown_ticks=1
        ),
        chaos=chaos_plan,
        resilience=chaos_policy,
        obs=chaos_obs,
    )
    mttr_ms = next(
        float(line.split()[-1])
        for line in chaos_obs.render_prometheus().splitlines()
        if line.startswith("repro_mttr_ms ")
    )
    if mttr_ms < 0.0:
        raise RuntimeError(
            "the fleet never recovered 90% of pre-failure goodput after the "
            "pinned two-replica zone outage — the recovery contract is "
            "broken; refusing to benchmark"
        )
    # The sustained post-recovery fraction (not just the first recovered
    # window MTTR keys on): mean goodput over the windows after the zone
    # comes back vs. the pre-failure baseline.
    chaos_windows = [json.loads(line) for line in chaos_obs.window_lines()]
    baseline_goodput = [
        w["goodput_rps"] for w in chaos_windows if w["end_ms"] <= 300.0
    ]
    recovered_goodput = [
        w["goodput_rps"] for w in chaos_windows if w["start_ms"] >= 500.0
    ]
    chaos_recovery_frac = (
        (sum(recovered_goodput) / len(recovered_goodput))
        / (sum(baseline_goodput) / len(baseline_goodput))
    )
    if chaos_recovery_frac < 0.9:
        raise RuntimeError(
            f"post-outage goodput sustains only {chaos_recovery_frac * 100:.1f}% "
            "of the pre-failure baseline — below the 90% recovery contract; "
            "refusing to benchmark"
        )

    # --- the alert-stream equivalence gate: engines x shard counts ------
    # The chaos drill fires real burn-rate alerts (the observer evaluates
    # the policy in-run, on the simulated clock).  Replay the identical
    # drill through the columnar engine at several shard counts and demand
    # byte-identical streams — the Prometheus dump, the window JSONL, and
    # the trace with its alert-fire/alert-resolve instants.  A drill that
    # stops firing makes the gate vacuous, so that refuses too.
    alert_transitions = list(chaos_obs.alerts.transitions)
    if not alert_transitions:
        raise RuntimeError(
            "the chaos drill fired no burn-rate alerts — the alert "
            "equivalence gate would be vacuous; refusing to benchmark"
        )
    chaos_streams = (
        chaos_obs.render_prometheus(),
        chaos_obs.window_lines(),
        chaos_obs.trace_json(),
    )
    for alert_shards in (1, 2, 5):
        shard_obs = FleetObserver()
        run_scenario_columnar(
            "steady",
            model,
            tokenizer,
            [weak_chaos_spec] * 3,
            chaos_fleet_config,
            seed=seed,
            rate_scale=6.0,
            duration_scale=4.0,
            shards=alert_shards,
            scale_spec=weak_chaos_spec,
            autoscale=AutoscalePolicy(
                min_replicas=1, max_replicas=6, interval_ms=50.0, cooldown_ticks=1
            ),
            chaos=chaos_plan,
            resilience=chaos_policy,
            obs=shard_obs,
        )
        shard_streams = (
            shard_obs.render_prometheus(),
            shard_obs.window_lines(),
            shard_obs.trace_json(),
        )
        if shard_streams != chaos_streams:
            raise RuntimeError(
                f"the columnar engine at {alert_shards} shard(s) produced "
                "different observability streams than the event-loop engine "
                "on the alerting chaos drill — the byte-exact alert contract "
                "is broken; refusing to benchmark"
            )

    # --- the regression-attribution gate: obs diff flags the gray -------
    # Inject a known 2x gray slowdown on replica 1 and demand the offline
    # diff rank that replica's service phase first — the causal signal an
    # operator would chase, surfaced from nothing but the artifacts.
    from ..obs import RunArtifacts, diff_runs

    def run_attribution(chaos):
        attribution_obs = FleetObserver()
        run_scenario(
            "steady",
            model,
            tokenizer,
            specs,
            fleet_config,
            seed=seed,
            rate_scale=eq_rate,
            analytic=True,
            chaos=chaos,
            obs=attribution_obs,
        )
        return RunArtifacts.from_strings(
            prom_text=attribution_obs.render_prometheus(),
            windows_text="".join(
                line + "\n" for line in attribution_obs.window_lines()
            ),
            trace_text=attribution_obs.trace_json(),
        )

    gray_plan = ChaosPlan(
        name="bench-gray-2x",
        grays=(
            GrayWindow(replica_id=1, start_ms=60.0, end_ms=200.0, slowdown=2.0),
        ),
    )
    attribution = diff_runs(
        run_attribution(None), run_attribution(gray_plan)
    ).top_attribution()
    if (
        attribution is None
        or not attribution.subject.startswith("replica 1 ")
        or attribution.metric != "service"
    ):
        got = (
            f"{attribution.subject} {attribution.metric}"
            if attribution
            else "nothing"
        )
        raise RuntimeError(
            "obs diff attributed the injected 2x gray slowdown on replica 1 "
            f"to {got} instead of replica 1's service phase — the "
            "attribution contract is broken; refusing to benchmark"
        )

    # --- the chaos overhead gate: zero-cost when disabled ---------------
    # Same interleaved floor-vs-floor protocol as the observability gate;
    # the disabled policy exercises every chaos seam the engines grew
    # (admission path selection, report attachment) with no mechanism on.
    disabled_policy = ResiliencePolicy()
    chaos_off_best = chaos_disabled_best = float("inf")
    _gc.collect()
    _gc.disable()
    try:
        for _ in range(obs_pairs):
            start = _clock()
            run_obs_steady(None)
            chaos_off_best = min(chaos_off_best, (_clock() - start) * 1e3)
            start = _clock()
            run_scenario(
                "steady",
                model,
                tokenizer,
                specs,
                fleet_config,
                seed=seed,
                rate_scale=obs_rate_scale,
                duration_scale=obs_duration_scale,
                analytic=True,
                resilience=disabled_policy,
            )
            chaos_disabled_best = min(
                chaos_disabled_best, (_clock() - start) * 1e3
            )
            _gc.collect()
    finally:
        if gc_was_enabled:
            _gc.enable()
    chaos_disabled_overhead = (
        chaos_disabled_best / chaos_off_best if chaos_off_best else float("inf")
    )
    if chaos_disabled_overhead >= 1.05:
        raise RuntimeError(
            f"disabled chaos seams cost {(chaos_disabled_overhead - 1.0) * 100:.1f}% "
            "on the pinned steady trace — at or above the 5% ceiling; "
            "refusing to benchmark"
        )

    # --- the headline: ~1.06M requests of flash crowd, analytic ---------
    mega_rate_scale, mega_duration_scale, mega_replicas = 64.0, 70.0, 8
    mega_captured = {}
    mega_wall = time_callable(
        lambda: mega_captured.setdefault(
            "report",
            run_scenario(
                "flash-crowd",
                model,
                tokenizer,
                [ReplicaSpec()] * mega_replicas,
                fleet_config,
                seed=seed,
                rate_scale=mega_rate_scale,
                duration_scale=mega_duration_scale,
                analytic=True,
            ),
        ),
        repeats=1,
        warmup=0,
    )
    mega = mega_captured["report"]
    if mega.stats.submitted < 1_000_000:
        raise RuntimeError(
            f"the flash-crowd trace shrank to {mega.stats.submitted} requests "
            "— the million-request headline no longer holds; refusing to "
            "benchmark"
        )

    # --- the columnar engine: same mega trace, same bytes ---------------
    columnar_captured = {}
    columnar_wall = time_callable(
        lambda: columnar_captured.__setitem__(
            "report",
            run_scenario_columnar(
                "flash-crowd",
                model,
                tokenizer,
                [ReplicaSpec()] * mega_replicas,
                fleet_config,
                seed=seed,
                rate_scale=mega_rate_scale,
                duration_scale=mega_duration_scale,
            ),
        ),
        repeats=3,
        warmup=0,
    )
    columnar_mega = columnar_captured["report"]
    if columnar_mega.to_json() != mega.to_json():
        raise RuntimeError(
            "the columnar engine produced a different report than the "
            "event-loop analytic engine on the mega trace — the byte-exact "
            "contract is broken; refusing to benchmark"
        )
    columnar_speedup = (
        mega_wall.best_ms / columnar_wall.best_ms
        if columnar_wall.best_ms
        else float("inf")
    )
    if columnar_speedup < 10.0:
        raise RuntimeError(
            f"the columnar engine is only {columnar_speedup:.1f}x faster than "
            "the event-loop analytic engine on the mega trace — below the "
            "10x contract; refusing to benchmark"
        )

    # --- the headline: 100M requests of flash crowd, columnar, sharded --
    giga_rate_scale, giga_duration_scale, giga_shards = 640.0, 665.0, 4
    giga_captured = {}
    giga_wall = time_callable(
        lambda: giga_captured.setdefault(
            "report",
            run_scenario_columnar(
                "flash-crowd",
                model,
                tokenizer,
                [ReplicaSpec()] * mega_replicas,
                fleet_config,
                seed=seed,
                rate_scale=giga_rate_scale,
                duration_scale=giga_duration_scale,
                shards=giga_shards,
            ),
        ),
        repeats=1,
        warmup=0,
    )
    giga = giga_captured["report"]
    if giga.stats.submitted < 100_000_000:
        raise RuntimeError(
            f"the giga flash-crowd trace shrank to {giga.stats.submitted} "
            "requests — the 100M-request headline no longer holds; refusing "
            "to benchmark"
        )

    metrics = {
        "executed_wall_ms": _metric(
            executed_wall.best_ms, "ms", higher_is_better=False, gated=False
        ),
        "analytic_wall_ms": _metric(
            analytic_wall.best_ms, "ms", higher_is_better=False, gated=False
        ),
        # A same-run ratio, so it transfers across machines like the kernel
        # suite's speedups do.
        "analytic_speedup_vs_executed": _metric(
            speedup, "x", higher_is_better=True
        ),
        "obs_off_wall_ms": _metric(
            obs_off_best, "ms", higher_is_better=False, gated=False
        ),
        "obs_on_wall_ms": _metric(
            obs_on_best, "ms", higher_is_better=False, gated=False
        ),
        # Median of interleaved same-run pair ratios (observed wall / plain
        # wall); the hard <1.10 ceiling above is the contract, this gates
        # drift inside it.
        "obs_overhead_ratio": _metric(
            obs_overhead, "x", higher_is_better=False
        ),
        # Deterministic (simulated-clock) recovery numbers for the pinned
        # two-replica zone outage; the hard floors above are the contract,
        # these gate drift inside it.
        "sim_chaos_mttr_ms": _metric(
            mttr_ms, "ms", higher_is_better=False
        ),
        "sim_chaos_recovery_goodput_frac": _metric(
            chaos_recovery_frac, "", higher_is_better=True
        ),
        # Deterministic burn-rate transition count on the chaos drill —
        # held byte-equal across engines and shard counts by the hard
        # gate above; this pins the count itself against drift.
        "sim_alert_transitions": _metric(
            len(alert_transitions), "", higher_is_better=False
        ),
        "chaos_off_wall_ms": _metric(
            chaos_off_best, "ms", higher_is_better=False, gated=False
        ),
        "chaos_disabled_wall_ms": _metric(
            chaos_disabled_best, "ms", higher_is_better=False, gated=False
        ),
        # Floor-over-floor ratio under the hard <1.05 ceiling above.
        "chaos_disabled_overhead_ratio": _metric(
            chaos_disabled_overhead, "x", higher_is_better=False
        ),
        "mega_wall_ms": _metric(
            mega_wall.best_ms, "ms", higher_is_better=False, gated=False
        ),
        "mega_wall_requests_per_s": _metric(
            mega.stats.submitted / (mega_wall.best_ms / 1e3),
            "req/s",
            higher_is_better=True,
            gated=False,
        ),
        "sim_mega_submitted": _metric(
            mega.stats.submitted, "req", higher_is_better=True
        ),
        "sim_mega_shed_rate": _metric(
            mega.stats.shed_rate, "", higher_is_better=False
        ),
        "sim_mega_goodput_rps": _metric(
            mega.stats.goodput_rps, "req/s", higher_is_better=True
        ),
        "sim_mega_throughput_rps": _metric(
            mega.stats.throughput_rps, "req/s", higher_is_better=True
        ),
        "sim_mega_p99_latency_ms": _metric(
            mega.stats.p99_latency_ms, "ms", higher_is_better=False
        ),
        "columnar_mega_wall_ms": _metric(
            columnar_wall.best_ms, "ms", higher_is_better=False, gated=False
        ),
        "columnar_speedup_vs_analytic": _metric(
            columnar_speedup, "x", higher_is_better=True
        ),
        "giga_wall_ms": _metric(
            giga_wall.best_ms, "ms", higher_is_better=False, gated=False
        ),
        "giga_wall_requests_per_s": _metric(
            giga.stats.submitted / (giga_wall.best_ms / 1e3),
            "req/s",
            higher_is_better=True,
            gated=False,
        ),
        "sim_giga_submitted": _metric(
            giga.stats.submitted, "req", higher_is_better=True
        ),
        "sim_giga_shed_rate": _metric(
            giga.stats.shed_rate, "", higher_is_better=False
        ),
        "sim_giga_goodput_rps": _metric(
            giga.stats.goodput_rps, "req/s", higher_is_better=True
        ),
        "sim_giga_p99_latency_ms": _metric(
            giga.stats.p99_latency_ms, "ms", higher_is_better=False
        ),
    }
    return {
        "schema": SCHEMA,
        "suite": "fleet",
        "profile": "quick" if quick else "full",
        "metrics": metrics,
        "info": {
            "model": config.to_dict(),
            "seed": seed,
            "equivalence": {
                "scenario": "steady",
                "rate_scale": eq_rate,
                "replicas": len(specs),
                "submitted": executed.stats.submitted,
                "byte_identical": True,
            },
            "mega": {
                "scenario": "flash-crowd",
                "rate_scale": mega_rate_scale,
                "duration_scale": mega_duration_scale,
                "replicas": mega_replicas,
                "submitted": mega.stats.submitted,
                "shed": mega.stats.shed,
            },
            "columnar": {
                "byte_identical": True,
                "native_kernel": native_available(),
            },
            "observability": {
                "scenario": "steady",
                "rate_scale": obs_rate_scale,
                "duration_scale": obs_duration_scale,
                "submitted": obs_captured["plain"].stats.submitted,
                "byte_identical": True,
                # the observer evaluates the burn-rate alert policy and
                # builds the run quantile sketch in-line, so the ceiling
                # now covers alerting + sketching too
                "alerts_enabled": True,
                "overhead_ceiling": 1.10,
            },
            "chaos": {
                "scenario": "steady",
                "rate_scale": 6.0,
                "duration_scale": 4.0,
                "plan": chaos_plan.name,
                "outage": "replicas (0, 1) down 300-500 ms (zone-a); "
                "replica 2 gray 4x over the same window",
                "resilience": "timeout + retries + budget + breaker "
                "+ autoscale",
                "submitted": chaos_report.stats.submitted,
                "retries": chaos_report.stats.chaos.retries,
                "timeouts": chaos_report.stats.chaos.timeouts,
                "breaker_opens": chaos_report.stats.chaos.breaker_opens,
                "mttr_ms": mttr_ms,
                "recovery_floor": 0.9,
                "disabled_overhead_ceiling": 1.05,
            },
            "alerting": {
                "policy": "default burn-rate (page/ticket slo, page shed)",
                "drill_transitions": len(alert_transitions),
                "byte_identical_shards": [1, 2, 5],
                "attribution": "2x gray on replica 1 -> top diff row is "
                "replica 1 service",
            },
            "giga": {
                "scenario": "flash-crowd",
                "rate_scale": giga_rate_scale,
                "duration_scale": giga_duration_scale,
                "replicas": mega_replicas,
                "shards": giga_shards,
                "submitted": giga.stats.submitted,
                "shed": giga.stats.shed,
            },
        },
    }


def run_dse_suite(quick: bool = False, seed: int = 0) -> Dict:
    """Design-space search: front correctness, eval throughput, planning.

    Three pinned experiments:

    1. **Pareto correctness** — sweep the ``table3`` knob space and
       *assert* that every hand-picked Table III design point (ZCU102
       (8, 16), ZCU102 (16, 8), ZCU111 (16, 16)) is on the Pareto front
       under the default (latency, energy, headroom) objectives.  A front
       that drops a paper point means the objective model broke.
    2. **Evaluation throughput** — price the ``wide`` space (320
       candidates; ``table3`` in quick mode) from cold caches, then again
       fully memoized, and *assert* the memoized pass sustains ≥1k
       candidate evaluations per second — the contract that makes
       interactive search over thousands of points viable.
    3. **Capacity planning** — run the planner against the pinned
       flash-crowd scenario over a weak/mid/default design ladder and
       *assert* the returned plan is feasible (p99 and shed-rate targets
       met).  The plan's deterministic cost/tail numbers are gated.

    Args:
        quick: Smaller space / gentler scenario (CI smoke profile).
        seed: Workload seed.

    Returns:
        A ``repro-bench/1`` result document.  All ``sim_*`` metrics come
        from the analytic models and must reproduce exactly across
        machines.

    Raises:
        RuntimeError: If a named design point falls off the front, the
            memoized throughput contract fails, or no feasible plan meets
            the pinned SLO targets.
    """
    from ..accel.config import AcceleratorConfig
    from ..fleet import FleetConfig, ReplicaSpec
    from ..search import (
        SloTarget,
        builtin_spaces,
        clear_evaluation_cache,
        evaluate_candidate,
        explore,
        plan_capacity,
    )

    spaces = builtin_spaces()

    # --- 1. the Table III front contract --------------------------------
    table3 = explore(spaces["table3"], seed=seed)
    named = (
        ("ZCU102", AcceleratorConfig.zcu102_n8_m16()),
        ("ZCU102", AcceleratorConfig.zcu102_n16_m8()),
        ("ZCU111", AcceleratorConfig.zcu111_n16_m16()),
    )
    front_keys = {(r.device.name, r.config) for r in table3.front}
    for device_name, config in named:
        if (device_name, config) not in front_keys:
            raise RuntimeError(
                f"paper design point {device_name} "
                f"(N={config.num_pes}, M={config.num_multipliers}) is "
                "dominated — it fell off the Table III Pareto front; "
                "refusing to benchmark"
            )

    # --- 2. the ≥1k evals/s throughput contract -------------------------
    from ..bert.config import BertConfig

    sweep_space = spaces["table3" if quick else "wide"]
    sweep_model = BertConfig.base()
    candidates = sweep_space.candidates()

    def sweep() -> None:
        for config, device in candidates:
            evaluate_candidate(config, device, sweep_model)

    clear_evaluation_cache()
    cold = time_callable(sweep, repeats=1, warmup=0)
    warm = time_callable(sweep, repeats=2 if quick else 5, warmup=0)
    cold_rate = len(candidates) / (cold.best_ms / 1e3)
    warm_rate = len(candidates) / (warm.best_ms / 1e3)
    if warm_rate < 1000.0:
        raise RuntimeError(
            f"memoized candidate evaluation sustains only {warm_rate:.0f} "
            "evals/s — below the 1k contract; refusing to benchmark"
        )

    # --- 3. the pinned capacity plan ------------------------------------
    model_config = cluster_model_config()
    model = build_synthetic_integer_model(model_config, seed=seed)
    tokenizer = HashTokenizer(vocab_size=model_config.vocab_size)
    fleet_config = FleetConfig(
        serving=ServingConfig(
            max_batch_size=BENCH_BATCH,
            max_wait_ms=5.0,
            buckets=(16, 32, 64),
            num_devices=1,
            cache_capacity=512,
        )
    )
    designs = [
        ReplicaSpec(
            accel_config=AcceleratorConfig(num_pus=2, num_pes=2, num_multipliers=4),
            name="weak",
        ),
        ReplicaSpec(
            accel_config=AcceleratorConfig(num_pus=4, num_pes=4, num_multipliers=8),
            name="mid",
        ),
        ReplicaSpec(name="default"),
    ]
    planning = plan_capacity(
        "flash-crowd",
        designs,
        SloTarget(p99_ms=150.0),
        model,
        tokenizer,
        fleet_config=fleet_config,
        max_replicas=2 if quick else 3,
        seed=seed,
        rate_scale=2.0 if quick else 4.0,
    )
    best = planning.best
    if best is None or not best.feasible:
        raise RuntimeError(
            "the capacity planner found no feasible plan for the pinned "
            "flash-crowd scenario — the SLO contract broke; refusing to "
            "benchmark"
        )
    infeasible = sum(not outcome.feasible for outcome in planning.outcomes)

    metrics = {
        "dse_cold_evals_per_s": _metric(
            cold_rate, "evals/s", higher_is_better=True, gated=False
        ),
        "dse_memoized_evals_per_s": _metric(
            warm_rate, "evals/s", higher_is_better=True, gated=False
        ),
        "sim_front_size": _metric(
            len(table3.front), "designs", higher_is_better=True
        ),
        "sim_front_feasible": _metric(
            table3.feasible, "designs", higher_is_better=True
        ),
        "sim_front_min_latency_ms": _metric(
            min(r.latency_ms for r in table3.front), "ms", higher_is_better=False
        ),
        "sim_front_min_energy_mj": _metric(
            min(r.energy_per_inference_mj for r in table3.front),
            "mJ",
            higher_is_better=False,
        ),
        "sim_plan_replicas": _metric(
            len(best.plan.replicas), "replicas", higher_is_better=False
        ),
        "sim_plan_replica_seconds": _metric(
            best.replica_seconds, "s", higher_is_better=False
        ),
        "sim_plan_energy_j": _metric(best.energy_j, "J", higher_is_better=False),
        "sim_plan_p99_latency_ms": _metric(
            best.p99_ms, "ms", higher_is_better=False
        ),
        "sim_plan_shed_rate": _metric(best.shed_rate, "", higher_is_better=False),
        "sim_plan_goodput_rps": _metric(
            best.goodput_rps, "req/s", higher_is_better=True
        ),
    }
    return {
        "schema": SCHEMA,
        "suite": "dse",
        "profile": "quick" if quick else "full",
        "metrics": metrics,
        "info": {
            "seed": seed,
            "sweep_space": sweep_space.name,
            "sweep_candidates": len(candidates),
            "named_points_on_front": [
                f"{device} N{config.num_pes} M{config.num_multipliers}"
                for device, config in named
            ],
            "plan": {
                "scenario": "flash-crowd",
                "best": best.plan.label,
                "p99_target_ms": 150.0,
                "max_shed_rate": 0.0,
                "evaluated": len(planning.outcomes),
                "infeasible": infeasible,
            },
        },
    }


def _wrap_tokenizer(profiler: Profiler, tokenizer: HashTokenizer):
    """A tokenizer proxy whose ``encode`` is profiled."""

    class _Proxy:
        encode = staticmethod(profiler.wrap("tokenizer.encode", tokenizer.encode))

    return _Proxy()


_RUNNERS: Dict[str, Callable[..., Dict]] = {
    "kernels": run_kernel_suite,
    "serve": run_serve_suite,
    "cluster": run_cluster_suite,
    "fleet": run_fleet_suite,
    "dse": run_dse_suite,
}


def run_suite(suite: str, quick: bool = False, seed: int = 0) -> Dict:
    """Run one named suite.

    Args:
        suite: ``"kernels"``, ``"serve"``, ``"cluster"``, ``"fleet"``, or
            ``"dse"``.
        quick: CI smoke profile (smaller shapes, fewer repeats).
        seed: Workload seed.

    Returns:
        The suite's ``repro-bench/1`` result document.
    """
    runner = _RUNNERS.get(suite)
    if runner is None:
        raise ValueError(f"unknown suite {suite!r}; choose from {sorted(_RUNNERS)}")
    return runner(quick=quick, seed=seed)


def result_path(out_dir: pathlib.Path, suite: str) -> pathlib.Path:
    """The canonical baseline file of a suite (``BENCH_<suite>.json``)."""
    return pathlib.Path(out_dir) / f"BENCH_{suite}.json"


def write_result(result: Dict, path: pathlib.Path) -> None:
    """Write one result document as stable, diff-friendly JSON.

    Args:
        result: A suite result document.
        path: Destination file (parent directories are created).
    """
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")


def load_result(path: pathlib.Path) -> Optional[Dict]:
    """Load a previously written result, or ``None`` if absent.

    Args:
        path: A ``BENCH_<suite>.json`` path.

    Returns:
        The parsed document, or ``None`` when the file does not exist.
    """
    path = pathlib.Path(path)
    if not path.exists():
        return None
    return json.loads(path.read_text())


def render_result(result: Dict) -> str:
    """Human-readable metric table of one result document."""
    lines = [f"suite: {result['suite']}  (profile: {result['profile']})"]
    width = max(len(name) for name in result["metrics"])
    for name, metric in result["metrics"].items():
        unit = f" {metric['unit']}" if metric["unit"] else ""
        arrow = "↑" if metric["higher_is_better"] else "↓"
        gate = "" if metric.get("gated", True) else ", not gated"
        lines.append(
            f"  {name:<{width}}  {metric['value']:>12.4f}{unit}  ({arrow} better{gate})"
        )
    return "\n".join(lines)
