"""Baselines: CPU/GPU roofline models and partial-quantization schemes."""

from .partial_quant import QuantSchemeComparison, compare_schemes, q8bert_config, qbert_mixed_config
from .roofline import BaselineReport, OpTime, simulate_baseline, time_operator

__all__ = [
    "BaselineReport",
    "OpTime",
    "simulate_baseline",
    "time_operator",
    "q8bert_config",
    "qbert_mixed_config",
    "QuantSchemeComparison",
    "compare_schemes",
]
