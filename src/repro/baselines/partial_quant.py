"""Partial-quantization baselines in the style of Q8BERT / Q-BERT.

The paper positions FQ-BERT against prior work that quantizes *only part*
of the network: Q8BERT (8-bit weights+activations for matmuls, float
softmax/LN/scales) and Q-BERT (mixed-precision weights, float everything
else).  These configurations are expressible in our :class:`QuantConfig`,
so the baselines here are thin, named presets plus their storage accounting
— used by the comparison example and the ablation benches.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..bert.config import BertConfig
from ..quant.model_size import compression_ratio
from ..quant.qat import QuantConfig


def q8bert_config() -> QuantConfig:
    """Q8BERT-style: 8/8 matmul quantization only, everything else float."""
    return QuantConfig(
        weight_bits=8,
        act_bits=8,
        quantize_scales=False,
        quantize_softmax=False,
        quantize_layernorm=False,
        quantize_embeddings=True,
        use_clip=False,
    )


def qbert_mixed_config(weight_bits: int = 4) -> QuantConfig:
    """Q-BERT-style: low-bit weights, 8-bit activations, float special parts."""
    return QuantConfig(
        weight_bits=weight_bits,
        act_bits=8,
        quantize_scales=False,
        quantize_softmax=False,
        quantize_layernorm=False,
        quantize_embeddings=True,
        use_clip=True,
    )


@dataclass(frozen=True)
class QuantSchemeComparison:
    """Compression/deployability comparison row for one scheme."""

    name: str
    qconfig: QuantConfig
    compression: float
    integer_only: bool  # whether the scheme admits an integer-only datapath


def compare_schemes(model: BertConfig) -> list:
    """FQ-BERT vs the partial-quantization baselines on storage/deployability.

    ``integer_only`` is the paper's core argument: only a *fully* quantized
    model lets the accelerator keep every intermediate in integer buffers;
    partial schemes bounce through float for softmax/LN/scale arithmetic.
    """
    schemes = [
        ("FQ-BERT (4/8)", QuantConfig.fq_bert(), True),
        ("Q8BERT-style (8/8)", q8bert_config(), False),
        ("Q-BERT-style (4/8 mixed)", qbert_mixed_config(), False),
    ]
    rows = []
    for name, qconfig, integer_only in schemes:
        rows.append(
            QuantSchemeComparison(
                name=name,
                qconfig=qconfig,
                compression=compression_ratio(model, qconfig),
                integer_only=integer_only,
            )
        )
    return rows
