"""CPU/GPU baseline latency models (the comparison rows of Table IV).

The paper measures PyTorch BERT-base (batch 1, seq 128, fp32) on an Intel
i7-8700 and an NVIDIA K80.  Neither part is available here, so we model
them with a per-operator roofline: each operator's time is the maximum of
its compute time (FLOPs over effective FLOP/s) and its memory time (bytes
over effective bandwidth), plus a per-operator framework overhead.  The
efficiency constants live in :mod:`repro.accel.devices` and are calibrated
so BERT-base lands near the paper's measurements; the *model* (batch-1
inference is launch/bandwidth-inefficient on big parallel parts) is what
produces the shape of the comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..accel.devices import ComputeDevice
from ..accel.workload import EncoderWorkload, Op, OpKind


@dataclass(frozen=True)
class OpTime:
    """Roofline decomposition for one operator."""

    name: str
    compute_ms: float
    memory_ms: float
    overhead_ms: float

    @property
    def total_ms(self) -> float:
        return max(self.compute_ms, self.memory_ms) + self.overhead_ms


@dataclass
class BaselineReport:
    """Latency/power/fps-per-watt of one baseline device (a Table IV column)."""

    device: ComputeDevice
    op_times: List[OpTime]
    num_layers: int

    @property
    def latency_ms(self) -> float:
        return sum(op.total_ms for op in self.op_times) * self.num_layers

    @property
    def throughput_fps(self) -> float:
        return 1000.0 / self.latency_ms

    @property
    def power_watts(self) -> float:
        return self.device.power_watts

    @property
    def fps_per_watt(self) -> float:
        return self.throughput_fps / self.power_watts

    def summary(self) -> Dict[str, float]:
        return {
            "latency_ms": self.latency_ms,
            "power_watts": self.power_watts,
            "fps_per_watt": self.fps_per_watt,
        }


def _op_bytes_fp32(op: Op, seq_len: int) -> float:
    """fp32 memory traffic of one operator (weights + in/out activations)."""
    if op.kind is OpKind.MATMUL_W:
        weights = op.out_dim * op.contract_dim * 4.0
        acts = op.vectors * (op.contract_dim + op.out_dim) * 4.0
        return weights + acts
    if op.kind is OpKind.MATMUL_A:
        return op.heads * op.vectors * (2 * op.contract_dim + op.out_dim) * 4.0
    if op.kind in (OpKind.SOFTMAX, OpKind.GELU):
        return 2.0 * op.vectors * op.out_dim * 4.0
    if op.kind is OpKind.LAYERNORM:
        return 3.0 * op.vectors * op.out_dim * 4.0  # two inputs + one output
    return 0.0


def _op_flops(op: Op) -> float:
    if op.kind in (OpKind.MATMUL_W, OpKind.MATMUL_A):
        return 2.0 * op.macs
    # Elementwise/reduction ops: ~5 flops per element (exp/rsqrt amortized).
    return 5.0 * op.vectors * op.out_dim


def time_operator(op: Op, device: ComputeDevice, seq_len: int) -> OpTime:
    """Roofline time of one fp32 operator on a baseline device."""
    flops = _op_flops(op)
    nbytes = _op_bytes_fp32(op, seq_len)
    compute_ms = flops / (device.effective_gflops() * 1e9) * 1e3
    memory_ms = nbytes / (device.effective_bandwidth_gbs() * 1e9) * 1e3
    overhead_ms = device.per_op_overhead_us / 1e3
    return OpTime(op.name, compute_ms, memory_ms, overhead_ms)


def simulate_baseline(workload: EncoderWorkload, device: ComputeDevice) -> BaselineReport:
    """Full-model fp32 latency of the workload on a CPU/GPU baseline."""
    op_times = [time_operator(op, device, workload.seq_len) for op in workload.layer_ops]
    return BaselineReport(device=device, op_times=op_times, num_layers=workload.num_layers)
