"""Deterministic observability over the simulated clock.

Everything the serving stack reports today is a post-hoc summary; this
package adds the *during-the-run* view — and because it rides the
deterministic simulated clock instead of wall time, the telemetry itself
is bit-reproducible: same seed, byte-identical Prometheus dump, window
JSONL, and Chrome trace.

- :mod:`registry` — counters, gauges, fixed-bucket histograms, rendered
  in the Prometheus text exposition format
- :mod:`tracing` — structured spans/instants/counter tracks on simulated
  milliseconds, exported as Chrome trace-event JSON
  (``chrome://tracing`` / Perfetto)
- :mod:`windows` — rolling-window JSONL streams: windowed p99, goodput,
  shed rate, queue depth, autoscaler and failure events
- :mod:`observer` — :class:`FleetObserver`, the sink threaded through the
  engines' instrumentation seams, with ``ShardPartial``-style merge for
  forked columnar shards
- :mod:`analysis` — the reading side: burn-rate SLO alerting evaluated
  inside the run, mergeable quantile sketches, critical-path and
  run-diff attribution over the emitted artifacts

Surfaced via ``repro.cli loadtest --metrics-out/--trace-out/--windows``,
the ``repro.cli metrics`` renderer, and the ``repro.cli obs`` analysis
subcommands.
"""

from .analysis import (
    AlertEvaluator,
    BurnRateRule,
    QuantileSketch,
    RunArtifacts,
    default_policy,
    diff_runs,
    render_diff,
    render_report,
)
from .observer import FleetObserver, NullObserver, ObsPartial
from .registry import (
    Counter,
    DEFAULT_LATENCY_BUCKETS_MS,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_prometheus,
)
from .tracing import Tracer
from .windows import WindowTracker

__all__ = [
    "AlertEvaluator",
    "BurnRateRule",
    "Counter",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "FleetObserver",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullObserver",
    "ObsPartial",
    "QuantileSketch",
    "RunArtifacts",
    "Tracer",
    "WindowTracker",
    "default_policy",
    "diff_runs",
    "parse_prometheus",
    "render_diff",
    "render_report",
]
