"""Deterministic observability over the simulated clock.

Everything the serving stack reports today is a post-hoc summary; this
package adds the *during-the-run* view — and because it rides the
deterministic simulated clock instead of wall time, the telemetry itself
is bit-reproducible: same seed, byte-identical Prometheus dump, window
JSONL, and Chrome trace.

- :mod:`registry` — counters, gauges, fixed-bucket histograms, rendered
  in the Prometheus text exposition format
- :mod:`tracing` — structured spans/instants/counter tracks on simulated
  milliseconds, exported as Chrome trace-event JSON
  (``chrome://tracing`` / Perfetto)
- :mod:`windows` — rolling-window JSONL streams: windowed p99, goodput,
  shed rate, queue depth, autoscaler and failure events
- :mod:`observer` — :class:`FleetObserver`, the sink threaded through the
  engines' instrumentation seams, with ``ShardPartial``-style merge for
  forked columnar shards

Surfaced via ``repro.cli loadtest --metrics-out/--trace-out/--windows``
and the ``repro.cli metrics`` renderer.
"""

from .observer import FleetObserver, NullObserver, ObsPartial
from .registry import (
    Counter,
    DEFAULT_LATENCY_BUCKETS_MS,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_prometheus,
)
from .tracing import Tracer
from .windows import WindowTracker

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "FleetObserver",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullObserver",
    "ObsPartial",
    "Tracer",
    "WindowTracker",
    "parse_prometheus",
]
