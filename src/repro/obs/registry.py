"""Deterministic metrics registry with Prometheus text exposition.

A tiny, dependency-free metrics core: counters, gauges, and fixed-bucket
histograms, rendered in the Prometheus text exposition format.  Unlike a
production client library there is no clock, no process state, and no
background thread — every value is driven by the deterministic simulated
clock, so the same run produces a byte-identical dump.

Determinism rules baked into :meth:`MetricsRegistry.render`:

- metric families are sorted by name,
- samples within a family are sorted by their label tuples,
- histogram buckets appear in boundary order with a final ``+Inf``,
- values are formatted by a single pure function of the float bits.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "parse_prometheus",
]

#: Fixed latency bucket boundaries (milliseconds) used by the fleet
#: observer's request-latency histogram.
DEFAULT_LATENCY_BUCKETS_MS: Tuple[float, ...] = (
    1.0,
    2.0,
    5.0,
    10.0,
    20.0,
    50.0,
    100.0,
    200.0,
    500.0,
    1000.0,
    2000.0,
    5000.0,
)

LabelValues = Tuple[Tuple[str, str], ...]


def _format_value(value: float) -> str:
    """Render a sample value deterministically.

    Integral values print without a fractional part; everything else uses
    Python's shortest round-trip ``repr`` — a pure function of the double,
    so identical floats always render identically.  Non-finite values use
    the canonical Prometheus spellings (``NaN``, ``+Inf``, ``-Inf``),
    which Python's ``float()`` parses straight back — the round trip is
    pinned by the registry tests.
    """

    number = float(value)
    if number != number:
        return "NaN"
    if number == float("inf"):
        return "+Inf"
    if number == float("-inf"):
        return "-Inf"
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _format_labels(labels: LabelValues) -> str:
    if not labels:
        return ""
    body = ",".join(f'{key}="{val}"' for key, val in labels)
    return "{" + body + "}"


def _label_tuple(declared: Tuple[str, ...], values: Dict[str, str]) -> LabelValues:
    if set(values) != set(declared):
        raise ValueError(
            f"expected labels {sorted(declared)}, got {sorted(values)}"
        )
    return tuple((key, str(values[key])) for key in declared)


@dataclass
class Counter:
    """A monotonically increasing sum, optionally split by labels."""

    name: str
    help: str
    label_names: Tuple[str, ...] = ()
    samples: Dict[LabelValues, float] = field(default_factory=dict)

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease by {amount}")
        key = _label_tuple(self.label_names, labels)
        self.samples[key] = self.samples.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        return self.samples.get(_label_tuple(self.label_names, labels), 0.0)

    def render(self) -> List[str]:
        lines = [f"# HELP {self.name} {self.help}", f"# TYPE {self.name} counter"]
        for key in sorted(self.samples):
            lines.append(
                f"{self.name}{_format_labels(key)} {_format_value(self.samples[key])}"
            )
        return lines


@dataclass
class Gauge:
    """A point-in-time value, optionally split by labels."""

    name: str
    help: str
    label_names: Tuple[str, ...] = ()
    samples: Dict[LabelValues, float] = field(default_factory=dict)

    kind = "gauge"

    def set(self, value: float, **labels: str) -> None:
        self.samples[_label_tuple(self.label_names, labels)] = float(value)

    def value(self, **labels: str) -> float:
        return self.samples.get(_label_tuple(self.label_names, labels), 0.0)

    def render(self) -> List[str]:
        lines = [f"# HELP {self.name} {self.help}", f"# TYPE {self.name} gauge"]
        for key in sorted(self.samples):
            lines.append(
                f"{self.name}{_format_labels(key)} {_format_value(self.samples[key])}"
            )
        return lines


@dataclass
class Histogram:
    """A fixed-boundary histogram (no labels; boundaries set at creation)."""

    name: str
    help: str
    buckets: Tuple[float, ...] = DEFAULT_LATENCY_BUCKETS_MS
    counts: List[int] = field(default_factory=list)
    total: float = 0.0
    count: int = 0

    kind = "histogram"

    def __post_init__(self) -> None:
        ordered = tuple(float(b) for b in self.buckets)
        if list(ordered) != sorted(set(ordered)):
            raise ValueError(f"histogram {self.name} buckets must be strictly increasing")
        self.buckets = ordered
        if not self.counts:
            self.counts = [0] * (len(ordered) + 1)  # trailing slot is +Inf

    def observe(self, value: float) -> None:
        slot = bisect_left(self.buckets, float(value))
        self.counts[slot] += 1
        self.total += float(value)
        self.count += 1

    def observe_sorted(self, values: Sequence[float]) -> None:
        """Fold in an ascending-sorted batch of observations.

        Feeding values in sorted order keeps the float accumulation of
        ``_sum`` a pure function of the multiset, which is what lets two
        engines that complete requests in different orders render the
        same histogram bytes.  Because the batch is sorted, bucket counts
        come from one ``bisect`` per boundary instead of one per value
        (same inclusive-``le`` placement as :meth:`observe`), and only the
        running sum still walks the values — in the same ascending order
        ``observe`` would have, so the float bits match exactly.
        """

        if not values:
            return
        counts = self.counts
        pos = 0
        for slot, bound in enumerate(self.buckets):
            nxt = bisect_right(values, bound, pos)
            counts[slot] += nxt - pos
            pos = nxt
        counts[-1] += len(values) - pos
        total = self.total
        for value in values:
            total += float(value)
        self.total = total
        self.count += len(values)

    def load(self, counts: Sequence[int], total: float, count: int) -> None:
        """Replace the histogram contents wholesale.

        ``counts`` is per-bucket (one slot per boundary plus the trailing
        ``+Inf`` slot).  Used by callers that already hold exact bucket
        counts — the observer fills the latency histogram from the run's
        quantile sketch this way, with boundaries equal to the sketch's
        own slot edges.
        """

        if len(counts) != len(self.buckets) + 1:
            raise ValueError(
                f"histogram {self.name} expects {len(self.buckets) + 1} "
                f"bucket counts, got {len(counts)}"
            )
        self.counts = [int(c) for c in counts]
        self.total = float(total)
        self.count = int(count)

    def render(self) -> List[str]:
        lines = [f"# HELP {self.name} {self.help}", f"# TYPE {self.name} histogram"]
        cumulative = 0
        for bound, bucket_count in zip(self.buckets, self.counts):
            cumulative += bucket_count
            lines.append(
                f'{self.name}_bucket{{le="{_format_value(bound)}"}} {cumulative}'
            )
        cumulative += self.counts[-1]
        lines.append(f'{self.name}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{self.name}_sum {_format_value(self.total)}")
        lines.append(f"{self.name}_count {self.count}")
        return lines


class MetricsRegistry:
    """Create-and-collect registry for counters, gauges, and histograms.

    >>> reg = MetricsRegistry()
    >>> shed = reg.counter("shed_total", "Requests shed.", labels=("reason",))
    >>> shed.inc(3, reason="overload")
    >>> print(reg.render(), end="")
    # HELP shed_total Requests shed.
    # TYPE shed_total counter
    shed_total{reason="overload"} 3
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}

    def _register(self, metric):
        existing = self._metrics.get(metric.name)
        if existing is not None:
            if type(existing) is not type(metric):
                raise ValueError(
                    f"metric {metric.name} already registered as {existing.kind}"
                )
            return existing
        self._metrics[metric.name] = metric
        return metric

    def counter(self, name: str, help: str, labels: Tuple[str, ...] = ()) -> Counter:
        return self._register(Counter(name, help, tuple(labels)))

    def gauge(self, name: str, help: str, labels: Tuple[str, ...] = ()) -> Gauge:
        return self._register(Gauge(name, help, tuple(labels)))

    def histogram(
        self,
        name: str,
        help: str,
        buckets: Tuple[float, ...] = DEFAULT_LATENCY_BUCKETS_MS,
    ) -> Histogram:
        return self._register(Histogram(name, help, tuple(buckets)))

    def get(self, name: str):
        return self._metrics.get(name)

    def render(self) -> str:
        """Render every family in the Prometheus text exposition format."""

        lines: List[str] = []
        for name in sorted(self._metrics):
            lines.extend(self._metrics[name].render())
        return "\n".join(lines) + ("\n" if lines else "")


def _check_label_escapes(name_part: str, lineno: int) -> None:
    """Reject malformed label syntax, naming the offending position.

    Validates the ``{...}`` portion of a sample name: quoted label values
    may only escape ``\\``, ``\"``, and ``\\n`` (the Prometheus text
    format's full escape set); quotes and braces must balance.  Columns
    are 1-based offsets into the sample line.
    """

    brace = name_part.find("{")
    if brace < 0:
        return
    if not name_part.endswith("}"):
        raise ValueError(
            f"line {lineno}, col {brace + 1}: unclosed label braces in "
            f"{name_part!r}"
        )
    in_quotes = False
    i = brace + 1
    end = len(name_part) - 1  # closing brace
    while i < end:
        ch = name_part[i]
        if in_quotes:
            if ch == "\\":
                if i + 1 >= end or name_part[i + 1] not in ('\\', '"', "n"):
                    raise ValueError(
                        f"line {lineno}, col {i + 1}: bad label escape "
                        f"{name_part[i:i + 2]!r} (only \\\\, \\\", \\n allowed)"
                    )
                i += 2
                continue
            if ch == '"':
                in_quotes = False
        elif ch == '"':
            in_quotes = True
        i += 1
    if in_quotes:
        raise ValueError(
            f"line {lineno}, col {end + 1}: unterminated label value in "
            f"{name_part!r}"
        )


def parse_prometheus(text: str) -> Dict[str, Dict[str, float]]:
    """Parse a Prometheus text dump into ``{family: {sample_key: value}}``.

    Only the subset emitted by :meth:`MetricsRegistry.render` is supported;
    used by the ``repro.cli metrics`` renderer, ``repro.cli obs``, and the
    test suite to make assertions about dumps without string-scraping.

    Strict where it matters for analysis: a duplicate series (same sample
    name and labels appearing twice) and malformed label escapes raise
    ``ValueError`` naming the line (and column, for escapes) — silently
    letting the last write win would make ``obs diff`` attribute a
    regression to whichever copy survived.
    """

    families: Dict[str, Dict[str, float]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] in ("HELP", "TYPE"):
                families.setdefault(parts[2].split("_bucket")[0], {})
            continue
        name_part, _, value_part = line.rpartition(" ")
        if not name_part:
            raise ValueError(f"line {lineno}: malformed sample line: {line!r}")
        _check_label_escapes(name_part, lineno)
        base = name_part.split("{", 1)[0]
        for suffix in ("_bucket", "_sum", "_count"):
            if base.endswith(suffix) and base[: -len(suffix)] in families:
                family = base[: -len(suffix)]
                break
        else:
            family = base
        samples = families.setdefault(family, {})
        if name_part in samples:
            raise ValueError(
                f"line {lineno}: duplicate series {name_part!r}"
            )
        samples[name_part] = float(value_part)
    return families
