"""Structured span tracing over the simulated clock.

Spans, instants, and counter tracks are recorded against *simulated*
milliseconds and exported in the Chrome trace-event JSON format, so a
fleet run opens directly in ``chrome://tracing`` or Perfetto.  Because the
clock is simulated, the same seed produces a byte-identical trace file —
something wall-clock tracers cannot offer.

Export is canonicalised: events are sorted by a total-order key before
serialisation, so two engines that *emit* the same events in different
orders (the event loop interleaves per arrival, the columnar engine per
replica sweep) still render the same bytes.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

__all__ = ["Tracer"]

_PID = 0  # single simulated process; replicas map to threads


def _event_sort_key(event: Dict) -> tuple:
    # Metadata first (ts -1), then by timestamp / thread / phase / name /
    # duration / canonical args — a total order over everything we emit.
    return (
        event.get("ts", -1.0),
        event.get("tid", 0),
        event.get("ph", ""),
        event.get("name", ""),
        event.get("dur", 0.0),
        json.dumps(event.get("args", {}), sort_keys=True),
    )


class Tracer:
    """Collect trace events in Chrome trace-event form.

    Timestamps arrive in simulated milliseconds and are stored in the
    microseconds the trace-event format expects (``ms * 1000.0`` — one
    IEEE multiply, identical on every engine).
    """

    def __init__(self) -> None:
        self.events: List[Dict] = []

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def add_span(
        self,
        name: str,
        start_ms: float,
        duration_ms: float,
        tid: int = 0,
        args: Optional[Dict] = None,
    ) -> None:
        event = {
            "name": name,
            "ph": "X",
            "ts": float(start_ms) * 1000.0,
            "dur": float(duration_ms) * 1000.0,
            "pid": _PID,
            "tid": int(tid),
        }
        if args:
            event["args"] = args
        self.events.append(event)

    def add_instant(
        self, name: str, ts_ms: float, tid: int = 0, args: Optional[Dict] = None
    ) -> None:
        event = {
            "name": name,
            "ph": "i",
            "s": "t",  # thread-scoped instant
            "ts": float(ts_ms) * 1000.0,
            "pid": _PID,
            "tid": int(tid),
        }
        if args:
            event["args"] = args
        self.events.append(event)

    def add_counter(self, name: str, ts_ms: float, values: Dict[str, float]) -> None:
        self.events.append(
            {
                "name": name,
                "ph": "C",
                "ts": float(ts_ms) * 1000.0,
                "pid": _PID,
                "tid": 0,
                "args": {key: float(values[key]) for key in values},
            }
        )

    def add_thread_name(self, tid: int, label: str) -> None:
        self.events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": _PID,
                "tid": int(tid),
                "args": {"name": label},
            }
        )

    # ------------------------------------------------------------------
    # shard-partial plumbing (mirrors ShardPartial merge in the columnar
    # engine: children drain their buffers, the parent absorbs)
    # ------------------------------------------------------------------
    def take(self) -> List[Dict]:
        events, self.events = self.events, []
        return events

    def absorb(self, events: List[Dict]) -> None:
        self.events.extend(events)

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def to_chrome(self) -> Dict:
        return {
            "displayTimeUnit": "ms",
            "traceEvents": sorted(self.events, key=_event_sort_key),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_chrome(), sort_keys=True) + "\n"
