"""Rolling-window streams over the simulated clock.

Splits the run into fixed-width windows (``window_ms``) and aggregates,
per window: arrivals, sheds by reason, completions, SLO attainment,
latency p99/mean/max, goodput, queue depth (admitted-but-unfinished
requests at window end), and autoscaler/failure events.  Windows are
emitted as JSONL lines — during the run when a stream is attached, and in
full via :attr:`WindowTracker.lines` after :meth:`flush_all`.

Determinism contract: every per-window aggregate is a pure function of
the *multiset* of records in that window (counts are summed; latency
percentiles come from a :class:`~repro.obs.analysis.sketch.QuantileSketch`
built at close, whose merge is exactly order-independent), and windows
are flushed in ascending index order.  Two engines that record the same
events in different orders therefore emit byte-identical JSONL.

Flush safety rides the watermark invariant: ``flush(T)`` only closes
windows whose end lies at or before ``T``, and callers only advance the
watermark once every record at or before ``T`` has been made (the event
loop advances after draining due work; the columnar engine advances to
``min(shard edge, earliest pending deadline)``).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .analysis.sketch import QuantileSketch

__all__ = ["WindowTracker"]


@dataclass
class _Win:
    """Accumulator for one window; picklable for shard-partial transport."""

    arrivals: int = 0
    completions: int = 0
    slo_met: int = 0
    shed: Dict[str, int] = field(default_factory=dict)
    latencies: List[float] = field(default_factory=list)
    scale_up: int = 0
    scale_down: int = 0
    failures: int = 0
    recoveries: int = 0

    def merge(self, other: "_Win") -> None:
        self.arrivals += other.arrivals
        self.completions += other.completions
        self.slo_met += other.slo_met
        for reason, count in other.shed.items():
            self.shed[reason] = self.shed.get(reason, 0) + count
        self.latencies.extend(other.latencies)
        self.scale_up += other.scale_up
        self.scale_down += other.scale_down
        self.failures += other.failures
        self.recoveries += other.recoveries


class WindowTracker:
    def __init__(self, window_ms: float = 20.0, stream=None, on_close=None) -> None:
        if window_ms <= 0:
            raise ValueError(f"window_ms must be positive, got {window_ms}")
        self.window_ms = float(window_ms)
        self.stream = stream
        # callable(index, win, sketch, shed_total), invoked as each window
        # closes — the observer hangs the run-level sketch merge and the
        # burn-rate alert evaluator off this seam.
        self.on_close = on_close
        self._closed: List[tuple] = []  # flushed, not yet rendered to JSON
        self._lines: List[str] = []
        self._live: Dict[int, _Win] = {}
        self._master: Dict[int, _Win] = {}
        self._next_flush = 0
        self._depth = 0  # admitted-but-unfinished carry across windows
        # (index, goodput_rps) per closed window, in flush order — the
        # compact series MTTR is computed from at finalize.
        self.goodput_series: List[tuple] = []

    # ------------------------------------------------------------------
    # recording (always into the live buffer)
    # ------------------------------------------------------------------
    def _win(self, t_ms: float) -> _Win:
        index = int(t_ms / self.window_ms)
        win = self._live.get(index)
        if win is None:
            win = self._live[index] = _Win()
        return win

    # record_arrival / record_completion inline the _win lookup: they run
    # once per request on the hot loop, and the saved call frame is what
    # keeps the bench's obs-overhead gate comfortably under its ceiling.
    def record_arrival(self, t_ms: float) -> None:
        live = self._live
        index = int(t_ms / self.window_ms)
        win = live.get(index)
        if win is None:
            win = live[index] = _Win()
        win.arrivals += 1

    def record_arrivals(self, times_ms) -> None:
        """Bulk arrival recording for columnar spans with no live replicas.

        ``(t / W).astype(int64)`` truncates the same IEEE quotient as the
        scalar ``int(t / W)`` for the non-negative simulated clock, so the
        bulk path lands every record in the same window as the scalar one.
        """

        import numpy as np

        indices = (np.asarray(times_ms, dtype=np.float64) / self.window_ms).astype(
            np.int64
        )
        for index, count in zip(*np.unique(indices, return_counts=True)):
            win = self._live.get(int(index))
            if win is None:
                win = self._live[int(index)] = _Win()
            win.arrivals += int(count)

    def record_shed(self, t_ms: float, reason: str) -> None:
        win = self._win(t_ms)
        win.shed[reason] = win.shed.get(reason, 0) + 1

    def record_sheds(self, times_ms, reason: str) -> None:
        import numpy as np

        indices = (np.asarray(times_ms, dtype=np.float64) / self.window_ms).astype(
            np.int64
        )
        for index, count in zip(*np.unique(indices, return_counts=True)):
            win = self._live.get(int(index))
            if win is None:
                win = self._live[int(index)] = _Win()
            win.shed[reason] = win.shed.get(reason, 0) + int(count)

    def record_completion(self, finish_ms: float, latency_ms: float, slo_met: bool) -> None:
        live = self._live
        index = int(finish_ms / self.window_ms)
        win = live.get(index)
        if win is None:
            win = live[index] = _Win()
        win.completions += 1
        win.latencies.append(float(latency_ms))
        if slo_met:
            win.slo_met += 1

    def record_completions(
        self, finish_ms: float, latencies: List[float], slo_met: int
    ) -> None:
        """One batch's completions in one call (all share a finish time).

        Both engines complete requests a batch at a time with a single
        batch finish, so the window lookup happens once per batch instead
        of once per request — the per-request residue is just the caller's
        list append.  Aggregates stay multiset-determined: the latency
        list order never matters (sorted at flush).
        """
        live = self._live
        index = int(finish_ms / self.window_ms)
        win = live.get(index)
        if win is None:
            win = live[index] = _Win()
        win.completions += len(latencies)
        win.latencies.extend(latencies)
        win.slo_met += slo_met

    def record_scale(self, t_ms: float, action: str) -> None:
        win = self._win(t_ms)
        if action == "up":
            win.scale_up += 1
        else:
            win.scale_down += 1

    def record_failure(self, t_ms: float) -> None:
        self._win(t_ms).failures += 1

    def record_recovery(self, t_ms: float) -> None:
        self._win(t_ms).recoveries += 1

    # ------------------------------------------------------------------
    # shard-partial plumbing
    # ------------------------------------------------------------------
    def take(self) -> Dict[int, _Win]:
        """Drain the live buffer (picklable; ships across a shard fork)."""

        live, self._live = self._live, {}
        return live

    def absorb(self, partial: Dict[int, _Win]) -> None:
        """Merge a drained buffer into the master state (counts add,
        latency lists concatenate; order is irrelevant post-sort)."""

        for index, win in partial.items():
            mine = self._master.get(index)
            if mine is None:
                self._master[index] = win
            else:
                mine.merge(win)

    def _drain_live(self) -> None:
        if self._live:
            self.absorb(self.take())

    # ------------------------------------------------------------------
    # flushing
    # ------------------------------------------------------------------
    def flush(self, watermark_ms: float) -> None:
        """Close every window ending at or before ``watermark_ms``."""

        if (self._next_flush + 1) * self.window_ms > watermark_ms:
            return  # nothing to close — skip the live-buffer drain too
        self._drain_live()
        while (self._next_flush + 1) * self.window_ms <= watermark_ms:
            self._flush_one(self._next_flush)

    def flush_all(self, horizon_ms: Optional[float] = None) -> None:
        """Close every remaining window.

        Without a horizon, closes through the last window holding any
        record.  With ``horizon_ms`` (the run duration), also emits
        explicit empty records for trailing event-free windows up to the
        horizon — so two runs of the same duration always align window
        index for window index, which is what ``obs diff`` keys on.  A
        horizon landing exactly on a window boundary closes the window
        ending there and nothing past it.
        """
        self._drain_live()
        target = -1
        if self._master:
            target = max(self._master)
        if horizon_ms is not None and horizon_ms > 0:
            last = int(math.ceil(horizon_ms / self.window_ms)) - 1
            if last > target:
                target = last
        while self._next_flush <= target:
            self._flush_one(self._next_flush)

    def _flush_one(self, index: int) -> None:
        """Close one window: carry the queue depth, build the latency
        sketch, feed ``on_close``, and park the aggregates for rendering.

        Rendering the JSONL document is pure export work, so without an
        attached stream it is deferred to the first :attr:`lines` access —
        closing windows inside an observed run costs one sketch build and
        a few counter folds, nothing more.  With a stream the document
        must leave now (that is what streaming means), so it renders
        immediately.
        """

        win = self._master.pop(index, None) or _Win()
        sketch = QuantileSketch.of(win.latencies)
        shed_total = sum(win.shed.values())
        self._depth += win.arrivals - shed_total - win.completions
        self.goodput_series.append((index, win.slo_met / (self.window_ms / 1000.0)))
        self._closed.append((index, win, sketch, shed_total, self._depth))
        if self.on_close is not None:
            self.on_close(index, win, sketch, shed_total)
        self._next_flush = index + 1
        if self.stream is not None:
            self._render_pending()

    @property
    def lines(self) -> List[str]:
        """JSONL lines for every closed window (rendering pending ones)."""

        self._render_pending()
        return self._lines

    def _render_pending(self) -> None:
        closed, self._closed = self._closed, []
        window_s = self.window_ms / 1000.0
        for index, win, sketch, shed_total, depth in closed:
            doc = {
                "index": index,
                "start_ms": index * self.window_ms,
                "end_ms": (index + 1) * self.window_ms,
                "arrivals": win.arrivals,
                "completions": win.completions,
                "slo_met": win.slo_met,
                "shed": {reason: win.shed[reason] for reason in sorted(win.shed)},
                "shed_total": shed_total,
                "shed_rate": (shed_total / win.arrivals) if win.arrivals else 0.0,
                "latency_p99_ms": sketch.quantile(99.0) if sketch.count else 0.0,
                "latency_mean_ms": sketch.mean,
                "latency_max_ms": sketch.maximum if sketch.count else 0.0,
                "throughput_rps": win.completions / window_s,
                "goodput_rps": win.slo_met / window_s,
                "queue_depth": depth,
                "scale_up": win.scale_up,
                "scale_down": win.scale_down,
                "failures": win.failures,
                "recoveries": win.recoveries,
            }
            line = json.dumps(doc, sort_keys=True)
            self._lines.append(line)
            if self.stream is not None:
                self.stream.write(line + "\n")
