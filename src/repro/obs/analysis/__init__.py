"""Analysis layer over the deterministic observability streams.

Where :mod:`repro.obs` *emits* — Prometheus dumps, windows JSONL, Chrome
traces — this subpackage *reads*: burn-rate alerting evaluated live
inside the run, mergeable quantile sketches behind the windowed
percentiles, and offline attribution/diff tooling over the artifacts.

- :mod:`sketch` — :class:`QuantileSketch`, a deterministic log-bucket
  digest with an exactly commutative/associative merge
- :mod:`alerts` — multi-window multi-burn-rate SLO rules
  (:class:`AlertEvaluator`), page/ticket tiers, replayable offline
- :mod:`analyze` — artifact loaders, per-tenant/per-replica attribution,
  critical-path extraction from batch spans
- :mod:`diff` — ranked regression attribution between two runs

Surfaced via the ``repro.cli obs`` subcommands (``report``, ``alerts``,
``diff``).
"""

from .alerts import AlertEvaluator, BurnRateRule, default_policy, replay_windows
from .analyze import (
    CriticalPath,
    PHASES,
    ReplicaPhases,
    RunArtifacts,
    critical_paths,
    render_report,
    replica_phases,
    tenant_table,
)
from .diff import DiffReport, DiffRow, diff_runs, render_diff
from .sketch import RESOLUTION, SUBBUCKETS, QuantileSketch

__all__ = [
    "AlertEvaluator",
    "BurnRateRule",
    "CriticalPath",
    "DiffReport",
    "DiffRow",
    "PHASES",
    "QuantileSketch",
    "RESOLUTION",
    "ReplicaPhases",
    "RunArtifacts",
    "SUBBUCKETS",
    "critical_paths",
    "default_policy",
    "diff_runs",
    "render_diff",
    "render_report",
    "replay_windows",
    "replica_phases",
    "tenant_table",
]
