"""Run-to-run regression attribution over observability artifacts.

Given two runs' artifacts (``before`` and ``after``), produce a ranked
report of what moved: which replica and critical-path phase (the causal
signal — a slowdown localizes to where the time is actually spent),
which tenants felt it (the symptom), and how the headline metrics
shifted.  The ranking is by relative change with deterministic
tiebreaks, so identical artifact pairs always produce identical reports
— CI greps the top attribution line after injecting a known slowdown.

The window streams also get an alignment check: because the observer
flushes to the run-duration horizon, two runs of equal duration emit the
same window indices, and the first window where the p99 diverges is a
useful "when did it start" anchor.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .analyze import PHASES, RunArtifacts, replica_phases, tenant_table

__all__ = ["DiffRow", "DiffReport", "diff_runs", "render_diff"]

#: Relative changes smaller than this are noise, not regressions.
REL_EPSILON = 1e-9

#: Absolute floor below which a value counts as zero for ratio purposes.
ABS_FLOOR = 1e-12


@dataclass
class DiffRow:
    """One ranked delta.

    ``kind`` is ``replica-phase``, ``tenant``, or ``metric``; ``subject``
    names the entity, ``metric`` the quantity.  ``rel`` is the relative
    change (``inf`` when something appeared from zero).
    """

    kind: str
    subject: str
    metric: str
    before: float
    after: float
    rel: float

    @property
    def score(self) -> float:
        return abs(self.rel)


@dataclass
class DiffReport:
    """Ranked attribution plus the raw sections, ready to render."""

    replica_rows: List[DiffRow]
    tenant_rows: List[DiffRow]
    metric_rows: List[DiffRow]
    windows_before: int
    windows_after: int
    first_divergence: Optional[dict]  # the first diverging window doc pair

    def top_attribution(self) -> Optional[DiffRow]:
        """The single strongest replica-phase mover (None without traces)."""
        return self.replica_rows[0] if self.replica_rows else None


def _relative(before: float, after: float) -> float:
    if abs(before) > ABS_FLOOR:
        return (after - before) / abs(before)
    if abs(after) > ABS_FLOOR:
        return float("inf")
    return 0.0


def _rank(rows: List[DiffRow]) -> List[DiffRow]:
    """Largest relative change first; name tiebreaks keep it stable."""
    meaningful = [row for row in rows if row.score > REL_EPSILON]
    meaningful.sort(key=lambda row: (-min(row.score, 1e18), row.subject, row.metric))
    return meaningful


def _replica_rows(a: RunArtifacts, b: RunArtifacts) -> List[DiffRow]:
    if a.trace is None or b.trace is None:
        return []
    before = replica_phases(a.trace)
    after = replica_phases(b.trace)
    rows: List[DiffRow] = []
    for tid in sorted(set(before) | set(after)):
        entry_a = before.get(tid)
        entry_b = after.get(tid)
        label = (entry_b or entry_a).label
        for phase in PHASES:
            mean_a = entry_a.mean_ms(phase) if entry_a else 0.0
            mean_b = entry_b.mean_ms(phase) if entry_b else 0.0
            rows.append(
                DiffRow(
                    kind="replica-phase",
                    subject=f"replica {tid} [{label}]",
                    metric=phase,
                    before=mean_a,
                    after=mean_b,
                    rel=_relative(mean_a, mean_b),
                )
            )
    return _rank(rows)


def _tenant_rows(a: RunArtifacts, b: RunArtifacts) -> List[DiffRow]:
    if a.prom is None or b.prom is None:
        return []
    before = tenant_table(a.prom)
    after = tenant_table(b.prom)
    rows: List[DiffRow] = []
    for tenant in sorted(set(before) | set(after)):
        row_a = before.get(tenant, {})
        row_b = after.get(tenant, {})
        for stat in sorted(set(row_a) | set(row_b)):
            value_a = row_a.get(stat, 0.0)
            value_b = row_b.get(stat, 0.0)
            rows.append(
                DiffRow(
                    kind="tenant",
                    subject=f"tenant {tenant}",
                    metric=stat,
                    before=value_a,
                    after=value_b,
                    rel=_relative(value_a, value_b),
                )
            )
    return _rank(rows)


#: Headline scalar families compared one-to-one between dumps.
_HEADLINE_FAMILIES = (
    "repro_latency_ms",
    "repro_throughput_rps",
    "repro_goodput_rps",
    "repro_shed_rate",
    "repro_slo_attainment",
    "repro_mttr_ms",
    "repro_requests_total",
    "repro_requests_completed_total",
    "repro_requests_shed_total",
    "repro_retries_total",
    "repro_hedges_total",
    "repro_alert_transitions_total",
)


def _metric_rows(a: RunArtifacts, b: RunArtifacts) -> List[DiffRow]:
    if a.prom is None or b.prom is None:
        return []
    rows: List[DiffRow] = []
    for family in _HEADLINE_FAMILIES:
        samples_a = a.prom.get(family, {})
        samples_b = b.prom.get(family, {})
        for key in sorted(set(samples_a) | set(samples_b)):
            value_a = samples_a.get(key, 0.0)
            value_b = samples_b.get(key, 0.0)
            rows.append(
                DiffRow(
                    kind="metric",
                    subject=key,
                    metric="",
                    before=value_a,
                    after=value_b,
                    rel=_relative(value_a, value_b),
                )
            )
    return _rank(rows)


def _window_divergence(
    a: RunArtifacts, b: RunArtifacts
) -> Tuple[int, int, Optional[dict]]:
    if a.windows is None or b.windows is None:
        return 0, 0, None
    for doc_a, doc_b in zip(a.windows, b.windows):
        if doc_a != doc_b:
            return (
                len(a.windows),
                len(b.windows),
                {
                    "index": doc_a["index"],
                    "start_ms": doc_a["start_ms"],
                    "p99_before": doc_a["latency_p99_ms"],
                    "p99_after": doc_b["latency_p99_ms"],
                },
            )
    return len(a.windows), len(b.windows), None


def diff_runs(a: RunArtifacts, b: RunArtifacts, top: int = 10) -> DiffReport:
    """Compare two runs' artifacts into a ranked :class:`DiffReport`."""
    windows_a, windows_b, divergence = _window_divergence(a, b)
    return DiffReport(
        replica_rows=_replica_rows(a, b)[: max(0, top)],
        tenant_rows=_tenant_rows(a, b)[: max(0, top)],
        metric_rows=_metric_rows(a, b)[: max(0, top)],
        windows_before=windows_a,
        windows_after=windows_b,
        first_divergence=divergence,
    )


def _fmt(value: float) -> str:
    return f"{value:.3f}"


def _fmt_rel(rel: float) -> str:
    if rel == float("inf"):
        return "new"
    return f"{rel * 100.0:+.1f}%"


def render_diff(report: DiffReport) -> str:
    """Deterministic text rendering (the ``repro.cli obs diff`` payload)."""
    lines: List[str] = []
    lines.append("== regression attribution: replica phases (ranked) ==")
    if report.replica_rows:
        for rank, row in enumerate(report.replica_rows, start=1):
            lines.append(
                f"{rank}. {row.subject} {row.metric}: {_fmt(row.before)} -> "
                f"{_fmt(row.after)} ms/batch ({_fmt_rel(row.rel)})"
            )
    else:
        lines.append("no trace artifacts (or no phase movement)")
    lines.append("")
    lines.append("== tenant impact (ranked) ==")
    if report.tenant_rows:
        for rank, row in enumerate(report.tenant_rows, start=1):
            lines.append(
                f"{rank}. {row.subject} {row.metric}: {_fmt(row.before)} -> "
                f"{_fmt(row.after)} ({_fmt_rel(row.rel)})"
            )
    else:
        lines.append("no tenant movement")
    lines.append("")
    lines.append("== headline deltas (ranked) ==")
    if report.metric_rows:
        for rank, row in enumerate(report.metric_rows, start=1):
            lines.append(
                f"{rank}. {row.subject}: {_fmt(row.before)} -> "
                f"{_fmt(row.after)} ({_fmt_rel(row.rel)})"
            )
    else:
        lines.append("no headline movement")
    if report.windows_before or report.windows_after:
        lines.append("")
        lines.append("== window stream ==")
        lines.append(
            f"windows: {report.windows_before} vs {report.windows_after}"
        )
        div = report.first_divergence
        if div is None:
            lines.append("streams identical")
        else:
            lines.append(
                f"first divergence at window {div['index']} "
                f"(t={_fmt(div['start_ms'])}ms): "
                f"p99 {_fmt(div['p99_before'])} -> {_fmt(div['p99_after'])}"
            )
    return "\n".join(lines) + "\n"
