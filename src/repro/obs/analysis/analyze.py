"""Offline analysis of one run's observability artifacts.

The emission side (PR 8) writes three deterministic artifacts — a
Prometheus dump, a windows JSONL stream, and a Chrome trace.  This module
reads them back and answers the operator questions: where did the latency
go (per tenant, per replica, per critical-path phase), and what do the
worst requests' timelines look like.

Everything is a pure function of the artifact bytes: the loaders parse,
the analyzers fold in canonical order (trace events are already exported
in a total order; Prometheus samples sort by name), and the report
renderer formats floats with fixed precision — so the same artifacts
always produce the same report bytes, which is what lets CI byte-diff
``repro.cli obs report`` across reruns.

Critical-path phases come from the batch spans' worst-request
decomposition (see :meth:`FleetObserver.on_batch`): ``retry-hedge``
(arrival to final enqueue), ``batch-wait`` (enqueue to the batch's last
enqueue), ``queue-wait`` (last enqueue to dispatch), and ``service``.
"""
from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..registry import parse_prometheus
from .alerts import AlertEvaluator, replay_windows

__all__ = [
    "RunArtifacts",
    "ReplicaPhases",
    "CriticalPath",
    "PHASES",
    "replica_phases",
    "critical_paths",
    "tenant_table",
    "render_report",
]

#: Critical-path phase names, in causal order.
PHASES: Tuple[str, ...] = ("retry-hedge", "batch-wait", "queue-wait", "service")

_LABEL_RE = re.compile(r'(\w+)="((?:[^"\\]|\\.)*)"')
_THREAD_RE = re.compile(r"replica-\d+ \[(.*)\]$")


def _spec_label(thread_name: str) -> str:
    """Spec label out of an observer thread name (``replica-0 [weak]``)."""
    match = _THREAD_RE.match(thread_name)
    return match.group(1) if match else thread_name


def _sample_labels(sample_key: str) -> Dict[str, str]:
    """Label dict of one parsed-prometheus sample key."""
    brace = sample_key.find("{")
    if brace < 0:
        return {}
    return dict(_LABEL_RE.findall(sample_key[brace:]))


@dataclass
class RunArtifacts:
    """One run's parsed observability artifacts (any subset may be absent).

    Attributes:
        prom: ``parse_prometheus`` families, or None.
        windows: Parsed windows-JSONL documents in stream order, or None.
        trace: Chrome ``traceEvents`` list, or None.
    """

    prom: Optional[Dict[str, Dict[str, float]]] = None
    windows: Optional[List[dict]] = None
    trace: Optional[List[dict]] = None

    @classmethod
    def from_strings(
        cls,
        prom_text: Optional[str] = None,
        windows_text: Optional[str] = None,
        trace_text: Optional[str] = None,
    ) -> "RunArtifacts":
        """Parse artifact contents already held in memory."""
        return cls(
            prom=parse_prometheus(prom_text) if prom_text is not None else None,
            windows=(
                [json.loads(line) for line in windows_text.splitlines() if line.strip()]
                if windows_text is not None
                else None
            ),
            trace=(
                json.loads(trace_text)["traceEvents"]
                if trace_text is not None
                else None
            ),
        )

    @classmethod
    def load(
        cls,
        prom_path: Optional[str] = None,
        windows_path: Optional[str] = None,
        trace_path: Optional[str] = None,
    ) -> "RunArtifacts":
        """Read artifact files from disk (each path optional)."""

        def read(path: Optional[str]) -> Optional[str]:
            if path is None:
                return None
            with open(path, "r", encoding="utf-8") as handle:
                return handle.read()

        return cls.from_strings(read(prom_path), read(windows_path), read(trace_path))

    # -------------------------------------------------------------- prom
    def gauge(self, family: str, **labels: str) -> Optional[float]:
        """One sample's value, or None when the family/sample is absent."""
        if self.prom is None:
            return None
        samples = self.prom.get(family)
        if not samples:
            return None
        for key, value in samples.items():
            if _sample_labels(key) == labels:
                return value
        return None

    def alert_replay(self) -> Optional[AlertEvaluator]:
        """Replay the default burn-rate policy over the windows stream."""
        if self.windows is None:
            return None
        return replay_windows(self.windows)


@dataclass
class ReplicaPhases:
    """Aggregated critical-path phases for one replica's batch spans."""

    replica: int
    label: str = ""
    batches: int = 0
    totals: Dict[str, float] = field(default_factory=lambda: {p: 0.0 for p in PHASES})

    def mean_ms(self, phase: str) -> float:
        """Mean milliseconds per batch spent in ``phase``."""
        return self.totals[phase] / self.batches if self.batches else 0.0


def replica_phases(trace: List[dict]) -> Dict[int, ReplicaPhases]:
    """Fold batch spans into per-replica phase totals.

    Trace export is canonically ordered, so the float accumulation here is
    a pure function of the artifact — two byte-identical traces fold to
    identical totals.
    """
    phases: Dict[int, ReplicaPhases] = {}
    labels: Dict[int, str] = {}
    for event in trace:
        if event.get("ph") == "M" and event.get("name") == "thread_name":
            labels[int(event["tid"])] = str(event.get("args", {}).get("name", ""))
        elif event.get("ph") == "X" and event.get("name") == "batch":
            tid = int(event["tid"])
            entry = phases.get(tid)
            if entry is None:
                entry = phases[tid] = ReplicaPhases(replica=tid)
            args = event.get("args", {})
            entry.batches += 1
            entry.totals["service"] += float(event.get("dur", 0.0)) / 1000.0
            entry.totals["retry-hedge"] += float(args.get("wr", 0.0))
            entry.totals["batch-wait"] += float(args.get("wb", 0.0))
            entry.totals["queue-wait"] += float(args.get("wq", 0.0))
    for tid, entry in phases.items():
        entry.label = _spec_label(labels.get(tid, f"replica-{tid}"))
    return phases


@dataclass
class CriticalPath:
    """The worst request of one batch, decomposed phase by phase."""

    latency_ms: float
    replica: int
    label: str
    start_ms: float
    bucket: int
    size: int
    phases: List[Tuple[str, float]]


def critical_paths(trace: List[dict], top: int = 5) -> List[CriticalPath]:
    """The ``top`` worst batch-span worst-requests, phase-decomposed.

    Sorted by descending worst-request latency with a deterministic
    timestamp/replica tiebreak, so equal artifacts rank identically.
    """
    labels: Dict[int, str] = {}
    spans: List[tuple] = []
    for event in trace:
        if event.get("ph") == "M" and event.get("name") == "thread_name":
            labels[int(event["tid"])] = str(event.get("args", {}).get("name", ""))
        elif event.get("ph") == "X" and event.get("name") == "batch":
            args = event.get("args", {})
            if "wl" not in args:
                continue  # pre-analysis trace without the decomposition
            spans.append((
                -float(args["wl"]),
                float(event.get("ts", 0.0)),
                int(event["tid"]),
                event,
            ))
    spans.sort(key=lambda item: item[:3])
    paths: List[CriticalPath] = []
    for neg_wl, ts, tid, event in spans[: max(0, top)]:
        args = event["args"]
        paths.append(
            CriticalPath(
                latency_ms=-neg_wl,
                replica=tid,
                label=_spec_label(labels.get(tid, f"replica-{tid}")),
                start_ms=ts / 1000.0,
                bucket=int(args.get("bucket", 0)),
                size=int(args.get("size", 0)),
                phases=[
                    ("retry-hedge", float(args.get("wr", 0.0))),
                    ("batch-wait", float(args.get("wb", 0.0))),
                    ("queue-wait", float(args.get("wq", 0.0))),
                    ("service", float(event.get("dur", 0.0)) / 1000.0),
                ],
            )
        )
    return paths


def tenant_table(prom: Dict[str, Dict[str, float]]) -> Dict[str, Dict[str, float]]:
    """Per-tenant attribution slice of a Prometheus dump.

    Returns ``{tenant: {"p50"|"p95"|"p99"|"mean"|"slo_attainment"|
    "shed_rate"|"goodput_rps": value}}``.
    """
    tenants: Dict[str, Dict[str, float]] = {}
    for key, value in prom.get("repro_tenant_latency_ms", {}).items():
        labels = _sample_labels(key)
        tenants.setdefault(labels["tenant"], {})[labels["stat"]] = value
    for family, stat in (
        ("repro_tenant_slo_attainment", "slo_attainment"),
        ("repro_tenant_shed_rate", "shed_rate"),
        ("repro_tenant_goodput_rps", "goodput_rps"),
    ):
        for key, value in prom.get(family, {}).items():
            labels = _sample_labels(key)
            tenants.setdefault(labels["tenant"], {})[stat] = value
    return tenants


def _fmt(value: float) -> str:
    """Fixed-precision float formatting (pure function of the double)."""
    return f"{value:.3f}"


def render_report(artifacts: RunArtifacts, top: int = 5) -> str:
    """Deterministic human-readable report over whichever artifacts exist.

    This is the payload of ``repro.cli obs report`` — CI reruns a seeded
    loadtest and byte-diffs two of these.
    """
    lines: List[str] = []
    prom = artifacts.prom
    if prom is not None:
        lines.append("== overview ==")
        for family, label in (
            ("repro_duration_ms", "duration_ms"),
            ("repro_requests_total", "submitted"),
            ("repro_requests_completed_total", "completed"),
            ("repro_slo_attainment", "slo_attainment"),
            ("repro_shed_rate", "shed_rate"),
            ("repro_throughput_rps", "throughput_rps"),
            ("repro_goodput_rps", "goodput_rps"),
        ):
            value = artifacts.gauge(family)
            if value is not None:
                lines.append(f"{label} {_fmt(value)}")
        latency = prom.get("repro_latency_ms", {})
        if latency:
            stats = {
                _sample_labels(k)["stat"]: v for k, v in latency.items()
            }
            lines.append(
                "latency_ms p50 {} p95 {} p99 {} mean {} max {}".format(
                    *(_fmt(stats.get(s, 0.0)) for s in ("p50", "p95", "p99", "mean", "max"))
                )
            )
        tenants = tenant_table(prom)
        if tenants:
            lines.append("")
            lines.append("== tenants ==")
            for name in sorted(tenants):
                row = tenants[name]
                lines.append(
                    f"tenant {name}: p99 {_fmt(row.get('p99', 0.0))} ms, "
                    f"slo {_fmt(row.get('slo_attainment', 0.0))}, "
                    f"shed {_fmt(row.get('shed_rate', 0.0))}, "
                    f"goodput {_fmt(row.get('goodput_rps', 0.0))}/s"
                )
    if artifacts.windows is not None:
        evaluator = artifacts.alert_replay()
        lines.append("")
        lines.append("== alerts (replayed over windows) ==")
        lines.append(f"windows {len(artifacts.windows)}")
        if evaluator.transitions:
            for t_ms, name, action in evaluator.transitions:
                lines.append(f"t={_fmt(t_ms)}ms {action} {name}")
        else:
            lines.append("no transitions")
        firing = sorted(n for n, f in evaluator.firing().items() if f)
        lines.append(
            "firing at end: " + (", ".join(firing) if firing else "none")
        )
    if artifacts.trace is not None:
        phases = replica_phases(artifacts.trace)
        if phases:
            lines.append("")
            lines.append("== replica phases (ms/batch) ==")
            for tid in sorted(phases):
                entry = phases[tid]
                detail = ", ".join(
                    f"{phase} {_fmt(entry.mean_ms(phase))}" for phase in PHASES
                )
                lines.append(
                    f"replica {tid} [{entry.label}] {entry.batches} batches: {detail}"
                )
        paths = critical_paths(artifacts.trace, top=top)
        if paths:
            lines.append("")
            lines.append("== critical paths (worst requests) ==")
            for rank, path in enumerate(paths, start=1):
                steps = " -> ".join(f"{phase} {_fmt(ms)}" for phase, ms in path.phases)
                lines.append(
                    f"{rank}. {_fmt(path.latency_ms)} ms on replica "
                    f"{path.replica} [{path.label}] @ t={_fmt(path.start_ms)}ms "
                    f"(bucket {path.bucket}, size {path.size}): {steps}"
                )
    return "\n".join(lines) + "\n"
