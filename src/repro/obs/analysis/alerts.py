"""Multi-window, multi-burn-rate SLO alerting over the rolling windows.

The classic SRE recipe, scaled to simulated time: an alert *fires* when
the error budget is burning faster than a threshold over **both** a long
and a short trailing window — the long window gives significance, the
short one makes the alert resolve quickly once the incident is over.
Two tiers ship by default: **page** rules with high burn thresholds
(minutes-to-exhaustion class) and **ticket** rules with low thresholds
(slow leaks).

Everything here is exact integer arithmetic over the per-window counters
(`arrivals`, `completions`, `slo_met`, `shed_total`) until the final
burn-rate division, so two engines that emit identical window streams
produce identical alert streams — the differential suite holds alert
transitions byte-equal between the event-loop and columnar engines at
every shard count.

Evaluation happens **inside the run** on the simulated clock: the
observer feeds every closed window (empty ones included) to
:class:`AlertEvaluator`, transitions become trace instants at the
window's ``end_ms``, and the final state lands in the
``repro_alerts_firing`` gauge.  Because the columnar fork path only ever
closes windows in the parent process, the evaluator state rides the
observer partial across the shard pickle untouched — byte-equality
across shard counts follows from window-stream equality.

:func:`replay_windows` re-runs the same evaluator offline over a windows
JSONL artifact (the ``repro.cli obs alerts`` command), and the test suite
pins that the replay reproduces the in-run transitions exactly.
"""
from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "BurnRateRule",
    "AlertEvaluator",
    "AlertTransition",
    "default_policy",
    "replay_windows",
]

#: Default SLO-attainment objective the shipped rules budget against.
DEFAULT_OBJECTIVE = 0.99

#: Transition record: (simulated ms, rule name, "fire" | "resolve").
AlertTransition = Tuple[float, str, str]


@dataclass(frozen=True)
class BurnRateRule:
    """One multi-window burn-rate rule.

    Attributes:
        name: Stable identifier (label value in metrics, trace instants).
        tier: ``"page"`` or ``"ticket"`` — severity, for the reports.
        signal: ``"slo"`` burns the SLO-attainment budget (missed-SLO
            completions plus sheds over completions plus sheds);
            ``"shed"`` burns an admission budget (sheds over arrivals).
        objective: Success objective in (0, 1); the error budget is
            ``1 - objective``.
        long_windows: Trailing windows for the significance condition.
        short_windows: Trailing windows for the freshness condition.
        burn_threshold: Fire when *both* trailing burn rates (error rate
            divided by budget) reach this multiple.
    """

    name: str
    tier: str
    signal: str
    objective: float
    long_windows: int
    short_windows: int
    burn_threshold: float

    def __post_init__(self) -> None:
        if self.tier not in ("page", "ticket"):
            raise ValueError(f"tier must be page|ticket, got {self.tier!r}")
        if self.signal not in ("slo", "shed"):
            raise ValueError(f"signal must be slo|shed, got {self.signal!r}")
        if not 0.0 < self.objective < 1.0:
            raise ValueError(f"objective must be in (0, 1), got {self.objective}")
        if self.short_windows < 1 or self.long_windows < self.short_windows:
            raise ValueError(
                f"need 1 <= short <= long, got {self.short_windows}/{self.long_windows}"
            )
        if self.burn_threshold <= 0.0:
            raise ValueError(f"burn threshold must be positive, got {self.burn_threshold}")


def default_policy(objective: float = DEFAULT_OBJECTIVE) -> Tuple[BurnRateRule, ...]:
    """The shipped two-tier policy, scaled to window counts (not hours).

    The classic 5m/1h/6h ladder collapses onto trailing window counts so
    the same shape works at any ``window_ms``: page rules demand a fast,
    corroborated burn; the ticket rule catches slow leaks.
    """
    return (
        BurnRateRule(
            name="page-slo-burn",
            tier="page",
            signal="slo",
            objective=objective,
            long_windows=15,
            short_windows=3,
            burn_threshold=14.4,
        ),
        BurnRateRule(
            name="ticket-slo-burn",
            tier="ticket",
            signal="slo",
            objective=objective,
            long_windows=30,
            short_windows=6,
            burn_threshold=3.0,
        ),
        BurnRateRule(
            name="page-shed-burn",
            tier="page",
            signal="shed",
            objective=objective,
            long_windows=10,
            short_windows=2,
            burn_threshold=14.4,
        ),
    )


@dataclass
class _RuleState:
    """Trailing-sum machinery for one rule (all integers, hence exact)."""

    rule: BurnRateRule
    long_dq: Deque[Tuple[int, int]] = field(default_factory=deque)
    short_dq: Deque[Tuple[int, int]] = field(default_factory=deque)
    long_bad: int = 0
    long_total: int = 0
    short_bad: int = 0
    short_total: int = 0
    firing: bool = False
    fires: int = 0
    resolves: int = 0

    def push(self, bad: int, total: int) -> None:
        if len(self.long_dq) == self.rule.long_windows:
            old_bad, old_total = self.long_dq.popleft()
            self.long_bad -= old_bad
            self.long_total -= old_total
        self.long_dq.append((bad, total))
        self.long_bad += bad
        self.long_total += total
        if len(self.short_dq) == self.rule.short_windows:
            old_bad, old_total = self.short_dq.popleft()
            self.short_bad -= old_bad
            self.short_total -= old_total
        self.short_dq.append((bad, total))
        self.short_bad += bad
        self.short_total += total

    def burn(self, bad: int, total: int) -> float:
        if total == 0:
            return 0.0
        return (bad / total) / (1.0 - self.rule.objective)

    def condition(self) -> bool:
        return (
            self.burn(self.long_bad, self.long_total) >= self.rule.burn_threshold
            and self.burn(self.short_bad, self.short_total) >= self.rule.burn_threshold
        )


class AlertEvaluator:
    """Evaluates a burn-rate policy over the closed-window stream.

    Feed every closed window in order via :meth:`observe_window`; read
    :attr:`transitions` (the full fire/resolve history) and
    :meth:`firing` (current state per rule) at any point.  The object is
    picklable — it rides the observer partial across the columnar shard
    boundary — and deterministic: identical window streams produce
    identical transition histories.
    """

    def __init__(self, policy: Optional[Sequence[BurnRateRule]] = None):
        rules = tuple(policy if policy is not None else default_policy())
        names = [rule.name for rule in rules]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate rule names in policy: {names}")
        self.rules = rules
        self._states = [_RuleState(rule) for rule in rules]
        self.transitions: List[AlertTransition] = []
        self.windows_seen = 0

    def observe_window(
        self,
        end_ms: float,
        arrivals: int,
        completions: int,
        slo_met: int,
        shed_total: int,
    ) -> List[AlertTransition]:
        """Absorb one closed window; returns transitions it caused."""
        self.windows_seen += 1
        emitted: List[AlertTransition] = []
        for state in self._states:
            rule = state.rule
            if rule.signal == "slo":
                bad = (completions - slo_met) + shed_total
                total = completions + shed_total
            else:  # "shed"
                bad = shed_total
                total = arrivals
            state.push(bad, total)
            now_firing = state.condition()
            if now_firing != state.firing:
                state.firing = now_firing
                action = "fire" if now_firing else "resolve"
                if now_firing:
                    state.fires += 1
                else:
                    state.resolves += 1
                emitted.append((end_ms, rule.name, action))
        self.transitions.extend(emitted)
        return emitted

    def firing(self) -> Dict[str, bool]:
        """Current fire state per rule name."""
        return {state.rule.name: state.firing for state in self._states}

    def transition_counts(self) -> Dict[str, Tuple[int, int]]:
        """Per-rule ``(fires, resolves)`` totals."""
        return {state.rule.name: (state.fires, state.resolves) for state in self._states}


def replay_windows(
    docs: Iterable[dict], policy: Optional[Sequence[BurnRateRule]] = None
) -> AlertEvaluator:
    """Re-run the evaluator offline over parsed windows-JSONL documents.

    Documents must be in stream order (they are — the tracker emits
    windows by ascending index).  Produces exactly the transitions the
    in-run evaluator produced for the same stream.
    """
    evaluator = AlertEvaluator(policy)
    for doc in docs:
        evaluator.observe_window(
            end_ms=float(doc["end_ms"]),
            arrivals=int(doc["arrivals"]),
            completions=int(doc["completions"]),
            slo_met=int(doc["slo_met"]),
            shed_total=int(doc["shed_total"]),
        )
    return evaluator
