"""Deterministic mergeable quantile sketch for windowed latency streams.

The windowed percentile path used to sort every window's latency list and
interpolate (``percentile_sorted``).  That is exact but not *mergeable*:
two shards' windows can only combine by concatenating raw samples.  This
module replaces it with a **log-bucket digest** whose merge is an exact
monoid — integer bucket counts add, extrema fold — so shard partials
combine losslessly, in any order, in any grouping:

    ``merge(a, b) == merge(b, a)`` and
    ``merge(merge(a, b), c) == merge(a, merge(b, c))``  (bit-for-bit).

Bucketing is derived from the float representation itself, not from a
boundary table: ``math.frexp`` splits ``v = m * 2**e`` with
``m in [0.5, 1)`` and the mantissa picks one of :data:`SUBBUCKETS`
subdivisions per octave.  Bucket edges come back out of ``math.ldexp``,
which is exact in IEEE-754, so two sketches built on different machines
(or different engines of this repo) agree byte-for-byte.

With ``SUBBUCKETS = 8`` a bucket spans at most 12.5% relative width, so
any estimated quantile is within 12.5% of the exact order statistic —
:meth:`QuantileSketch.quantile_bounds` returns the guaranteed interval,
and the hypothesis suite (``tests/obs/test_sketch.py``) checks the exact
sorted-list percentile always lands inside it.

Determinism notes (the reason for each slightly unusual choice):

* the running sum is kept in **integer fixed point** (``round(v * 2**20)``
  per sample) because float addition is not associative and the merge
  contract above must hold exactly;
* ``min``/``max`` are tracked so degenerate windows stay exact: a window
  holding a single value reports that value, not a bucket midpoint
  (clamping the interpolated estimate into ``[min, max]`` does this);
* zero is its own counter — ``frexp(0.0)`` has no octave.

Domain: finite, non-negative samples (latencies).  NaN, infinities, and
negative values raise rather than silently poisoning the digest.
"""
from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["QuantileSketch", "SUBBUCKETS", "RESOLUTION", "SUM_SCALE_BITS"]

#: Subdivisions per octave (power-of-two range).  8 keeps every bucket at
#: most 1/8 of an octave wide: relative width (hi-lo)/lo <= 1/8 = 12.5%.
SUBBUCKETS = 8

#: Documented worst-case relative error of any estimated quantile.
RESOLUTION = 1.0 / SUBBUCKETS

#: Fixed-point scale for the exact running sum: 2**-20 ms ~= 1 ns.
SUM_SCALE_BITS = 20

_SUM_SCALE = float(1 << SUM_SCALE_BITS)


def _slot_of(value: float) -> int:
    """Map a positive finite float to its bucket slot (an integer).

    ``frexp`` gives ``value = m * 2**e`` with ``m in [0.5, 1)``; the slot
    packs the octave ``e`` with which of the :data:`SUBBUCKETS` equal
    mantissa strips ``m`` falls in.  Pure integer/float-exact arithmetic,
    so the same value slots identically everywhere.
    """
    m, e = math.frexp(value)
    sub = int((m - 0.5) * (2 * SUBBUCKETS))
    if sub >= SUBBUCKETS:  # guard m == nextafter(1, 0) rounding up
        sub = SUBBUCKETS - 1
    return e * SUBBUCKETS + sub


def _slot_edges(slot: int) -> Tuple[float, float]:
    """Inclusive-lower / exclusive-upper value range of a slot.

    ``ldexp(0.5 + sub/16, e)`` is exact: the mantissa term is a small
    dyadic rational and scaling by a power of two never rounds.
    """
    e, sub = divmod(slot, SUBBUCKETS)
    lo = math.ldexp(0.5 + sub / (2.0 * SUBBUCKETS), e)
    hi = math.ldexp(0.5 + (sub + 1) / (2.0 * SUBBUCKETS), e)
    return lo, hi


@dataclass
class QuantileSketch:
    """Mergeable log-bucket quantile digest (see module docstring).

    Attributes:
        counts: Sparse slot -> sample-count map for positive samples.
        zeros: Count of exactly-zero samples (no octave to slot into).
        total: Total samples absorbed (``zeros`` included).
        minimum: Smallest sample seen, ``None`` when empty.
        maximum: Largest sample seen, ``None`` when empty.
        sum_fp: Exact fixed-point sum (units of ``2**-SUM_SCALE_BITS``).
    """

    counts: Dict[int, int] = field(default_factory=dict)
    zeros: int = 0
    total: int = 0
    minimum: Optional[float] = None
    maximum: Optional[float] = None
    sum_fp: int = 0

    # ------------------------------------------------------------------ build
    def add(self, value: float) -> None:
        """Absorb one sample."""
        value = float(value)
        if not (value >= 0.0) or math.isinf(value):  # rejects NaN too
            raise ValueError(f"sketch domain is finite non-negative, got {value!r}")
        if value == 0.0:
            self.zeros += 1
        else:
            slot = _slot_of(value)
            self.counts[slot] = self.counts.get(slot, 0) + 1
        self.total += 1
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value
        self.sum_fp += int(round(value * _SUM_SCALE))

    def extend(self, values: Iterable[float]) -> None:
        """Absorb many samples (order never matters).

        Large batches take a vectorized path (``np.frexp`` slots the
        whole array at once) that lands every sample in exactly the slot
        :meth:`add` would pick — the scalar/bulk equivalence is pinned by
        the sketch tests — because the windows tracker builds one sketch
        per closed window and the bench's obs-overhead ceiling leaves no
        room for a per-sample Python loop on the flush path.
        """
        if not isinstance(values, list):
            values = list(values)
        if len(values) < 32:
            for value in values:
                self.add(value)
            return
        self._extend_bulk(values)

    def _extend_bulk(self, values: List[float]) -> None:
        import numpy as np

        arr = np.asarray(values, dtype=np.float64)
        if not bool(np.all(arr >= 0.0)) or bool(np.any(np.isinf(arr))):
            for value in values:  # re-raise with the scalar path's message
                self.add(value)
            return
        positive = arr[arr > 0.0]
        zeros = int(arr.size - positive.size)
        if positive.size:
            mantissa, exponent = np.frexp(positive)
            sub = ((mantissa - 0.5) * (2 * SUBBUCKETS)).astype(np.int64)
            np.minimum(sub, SUBBUCKETS - 1, out=sub)
            slots = exponent.astype(np.int64) * SUBBUCKETS + sub
            counts = self.counts
            for slot, count in zip(*np.unique(slots, return_counts=True)):
                slot = int(slot)
                counts[slot] = counts.get(slot, 0) + int(count)
        self.zeros += zeros
        self.total += int(arr.size)
        low, high = float(arr.min()), float(arr.max())
        if self.minimum is None or low < self.minimum:
            self.minimum = low
        if self.maximum is None or high > self.maximum:
            self.maximum = high
        # np.rint is round-half-to-even on the same float64 product the
        # scalar path rounds, so per-sample fixed-point terms match; the
        # Python-int sum keeps the accumulation exact past int64.
        scaled = np.rint(arr * _SUM_SCALE)
        self.sum_fp += sum(map(int, scaled.tolist()))

    @classmethod
    def of(cls, values: Iterable[float]) -> "QuantileSketch":
        """Build a sketch holding ``values``."""
        sketch = cls()
        sketch.extend(values)
        return sketch

    # ------------------------------------------------------------------ merge
    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Exact monoid combine: returns a new sketch, operands untouched.

        Integer adds and extrema folds only, so the operation is
        bit-exactly commutative and associative — the property the shard
        merge path and the hypothesis suite rely on.
        """
        merged = QuantileSketch(
            counts=dict(self.counts),
            zeros=self.zeros + other.zeros,
            total=self.total + other.total,
            minimum=_fold(min, self.minimum, other.minimum),
            maximum=_fold(max, self.maximum, other.maximum),
            sum_fp=self.sum_fp + other.sum_fp,
        )
        for slot, count in other.counts.items():
            merged.counts[slot] = merged.counts.get(slot, 0) + count
        return merged

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QuantileSketch):
            return NotImplemented
        return (
            self.total == other.total
            and self.zeros == other.zeros
            and self.sum_fp == other.sum_fp
            and self.minimum == other.minimum
            and self.maximum == other.maximum
            and {k: v for k, v in self.counts.items() if v}
            == {k: v for k, v in other.counts.items() if v}
        )

    # ------------------------------------------------------------------ read
    @property
    def count(self) -> int:
        """Total samples absorbed."""
        return self.total

    @property
    def sum(self) -> float:
        """Fixed-point running sum, as a float (0.0 when empty)."""
        return self.sum_fp / _SUM_SCALE

    @property
    def mean(self) -> float:
        """Exact-sum mean (0.0 when empty)."""
        if self.total == 0:
            return 0.0
        return (self.sum_fp / _SUM_SCALE) / self.total

    def quantile(self, q: float) -> float:
        """Estimated ``q``-th percentile, mirroring ``percentile_sorted``.

        Same rank rule — ``rank = (q/100) * (n-1)``, linear interpolation
        between the two neighbouring order statistics — with each order
        statistic estimated inside its bucket and clamped to the observed
        ``[min, max]``.  Single-sample sketches therefore return the exact
        value, and every estimate sits inside :meth:`quantile_bounds`.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if self.total == 0:
            raise ValueError("percentile of empty sketch")
        if self.total == 1:
            return float(self.minimum)  # type: ignore[arg-type]
        rank = (q / 100.0) * (self.total - 1)
        lower = int(rank)
        upper = min(lower + 1, self.total - 1)
        frac = rank - lower
        return float(
            self._order_stat(lower) * (1.0 - frac) + self._order_stat(upper) * frac
        )

    def quantile_bounds(self, q: float) -> Tuple[float, float]:
        """Guaranteed ``(lo, hi)`` interval for the **exact** percentile.

        The exact sorted-list ``percentile_sorted`` of the absorbed
        multiset always lies inside, and so does :meth:`quantile` —
        this is the documented bucket-resolution contract
        (relative width at most :data:`RESOLUTION`).
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if self.total == 0:
            raise ValueError("percentile of empty sketch")
        if self.total == 1:
            v = float(self.minimum)  # type: ignore[arg-type]
            return v, v
        rank = (q / 100.0) * (self.total - 1)
        lower = int(rank)
        upper = min(lower + 1, self.total - 1)
        frac = rank - lower
        lo_a, hi_a = self._order_stat_bounds(lower)
        lo_b, hi_b = self._order_stat_bounds(upper)
        return (
            float(lo_a * (1.0 - frac) + lo_b * frac),
            float(hi_a * (1.0 - frac) + hi_b * frac),
        )

    # ------------------------------------------------------------ internals
    def _occupied(self) -> List[Tuple[int, int]]:
        """Sorted ``(slot, count)`` pairs — slot order is value order."""
        return sorted((s, c) for s, c in self.counts.items() if c)

    def _locate(self, index: int) -> Tuple[float, float, int, int]:
        """Bucket of the 0-indexed ``index``-th smallest sample.

        Returns ``(lo_edge, hi_edge, offset_in_bucket, bucket_count)``;
        zeros occupy the degenerate bucket ``(0.0, 0.0)``.
        """
        if index < self.zeros:
            return 0.0, 0.0, index, self.zeros
        cumulative = self.zeros
        for slot, count in self._occupied():
            if index < cumulative + count:
                lo, hi = _slot_edges(slot)
                return lo, hi, index - cumulative, count
            cumulative += count
        raise IndexError(f"order statistic {index} of {self.total} samples")

    def _order_stat(self, index: int) -> float:
        """Point estimate of one order statistic, clamped to [min, max].

        The first and last order statistics ARE the tracked extrema, so
        they come back exact — ``quantile(0)`` and ``quantile(100)``
        mirror ``percentile_sorted`` to the bit.
        """
        if index <= 0:
            return float(self.minimum)  # type: ignore[arg-type]
        if index >= self.total - 1:
            return float(self.maximum)  # type: ignore[arg-type]
        lo, hi, offset, count = self._locate(index)
        if hi == lo:
            return lo
        estimate = lo + (hi - lo) * ((offset + 1) / (count + 1))
        return min(max(estimate, self.minimum), self.maximum)  # type: ignore[type-var]

    def _order_stat_bounds(self, index: int) -> Tuple[float, float]:
        """Guaranteed interval containing one exact order statistic."""
        if index <= 0:
            v = float(self.minimum)  # type: ignore[arg-type]
            return v, v
        if index >= self.total - 1:
            v = float(self.maximum)  # type: ignore[arg-type]
            return v, v
        lo, hi, _offset, _count = self._locate(index)
        lo = max(lo, self.minimum)  # type: ignore[type-var]
        hi = min(hi, self.maximum)  # type: ignore[type-var]
        return lo, max(lo, hi)

    # -------------------------------------------------------------- export
    def to_dict(self) -> dict:
        """JSON-friendly snapshot (slots sorted, keys stringified)."""
        return {
            "counts": {str(s): c for s, c in self._occupied()},
            "zeros": self.zeros,
            "total": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "sum_fp": self.sum_fp,
        }


def _fold(op, a: Optional[float], b: Optional[float]) -> Optional[float]:
    """min/max over optionals where ``None`` means 'no samples yet'."""
    if a is None:
        return b
    if b is None:
        return a
    return op(a, b)
