"""The fleet-facing observability sink.

:class:`FleetObserver` is the object threaded through the instrumentation
seams in ``serve/engine.py``, ``fleet/fleet.py``, ``fleet/runner.py``,
``fleet/autoscale.py``, and ``fleet/columnar.py``.  It owns one
:class:`~repro.obs.registry.MetricsRegistry`, one
:class:`~repro.obs.tracing.Tracer`, and one
:class:`~repro.obs.windows.WindowTracker`, and turns engine callbacks
into metrics, spans, and window records.

Two contracts, both enforced by ``tests/obs/test_differential.py``:

1. **Transparency** — attaching an observer never changes a report byte.
   Every callback only *reads* engine state.
2. **Engine equivalence** — the event-loop and columnar engines drive the
   same callbacks with the same values, so Prometheus dumps, window
   JSONL, and trace JSON are byte-identical across engines, at any shard
   count.

Shard-partial transport mirrors the columnar engine's ``ShardPartial``:
forked shard workers call :meth:`FleetObserver.take_partial` (draining
their live buffers into a picklable payload) and the parent
:meth:`absorbs <FleetObserver.absorb>` them, merging window accumulators
by index and concatenating trace events.  The disabled path is ``obs is
None`` (or the falsy :class:`NullObserver`) — zero work on the hot loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .analysis.alerts import AlertEvaluator, BurnRateRule
from .analysis.sketch import QuantileSketch, _slot_edges
from .registry import MetricsRegistry
from .tracing import Tracer
from .windows import WindowTracker, _Win

__all__ = ["FleetObserver", "NullObserver", "ObsPartial"]


@dataclass
class ObsPartial:
    """Picklable slice of observer state from one shard worker."""

    windows: Dict[int, _Win] = field(default_factory=dict)
    trace_events: List[dict] = field(default_factory=list)
    # earliest replica failure this shard observed (None = none) — the
    # parent folds these with min() for the MTTR gauge
    first_failure_ms: Optional[float] = None
    # window-close-derived state: the run-level latency sketch merges, the
    # alert evaluator is adopted whole (it is sequential per-window state
    # — only the side that actually closed windows has any; window closes
    # happen exclusively in the parent process, so shipping it keeps the
    # alert stream byte-identical at every shard count by construction)
    run_sketch: QuantileSketch = field(default_factory=QuantileSketch)
    alerts: Optional[AlertEvaluator] = None


class FleetObserver:
    """Deterministic metrics + tracing + rolling windows for one run."""

    def __init__(
        self,
        window_ms: float = 20.0,
        windows_stream=None,
        alert_policy: Optional[Sequence[BurnRateRule]] = None,
    ) -> None:
        self.registry = MetricsRegistry()
        self.tracer = Tracer()
        # Burn-rate alerting is always on: it costs a handful of integer
        # adds per closed window, and running it by default means every
        # differential and overhead gate covers the evaluator too.
        self.alerts = AlertEvaluator(alert_policy)
        self._run_sketch = QuantileSketch()
        self.windows = WindowTracker(
            window_ms=window_ms,
            stream=windows_stream,
            on_close=self._on_window_close,
        )
        # Absorbed trace events live apart from the tracer's live buffer:
        # a forked shard child inherits this master list but only ships
        # what *it* recorded (tracer.take() drains the live buffer alone),
        # so nothing is double-counted across forks.
        self._trace_master: List[dict] = []
        # Batch spans — the hottest trace stream by far — buffer as raw
        # tuples and only become trace-event dicts at export time, keeping
        # dict construction out of the observed run entirely.
        self._batch_spans: List[tuple] = []
        self._first_failure_ms: Optional[float] = None
        self._finalized = False
        # Per-request callbacks bind straight to the tracker methods,
        # skipping one call frame on the hot loop (these shadow the
        # identically-behaved methods below, which stay as documentation
        # and as the override points for subclasses).
        self.on_arrival = self.windows.record_arrival
        self.on_arrivals = self.windows.record_arrivals
        self.on_shed = self.windows.record_shed
        self.on_sheds = self.windows.record_sheds
        self.on_completion = self.windows.record_completion
        self.on_completions = self.windows.record_completions
        self.on_batch = self._batch_spans.append

    def __bool__(self) -> bool:
        return True

    # ------------------------------------------------------------------
    # engine callbacks (both engines call these with identical values)
    # ------------------------------------------------------------------
    def on_arrival(self, t_ms: float) -> None:
        self.windows.record_arrival(t_ms)

    def on_arrivals(self, times_ms) -> None:
        self.windows.record_arrivals(times_ms)

    def on_shed(self, t_ms: float, reason: str) -> None:
        self.windows.record_shed(t_ms, reason)

    def on_sheds(self, times_ms, reason: str) -> None:
        self.windows.record_sheds(times_ms, reason)

    def on_completion(self, finish_ms: float, latency_ms: float, slo_met: bool) -> None:
        self.windows.record_completion(finish_ms, latency_ms, slo_met)

    def on_completions(
        self, finish_ms: float, latencies: List[float], slo_met: int
    ) -> None:
        self.windows.record_completions(finish_ms, latencies, slo_met)

    def on_batch(self, span: tuple) -> None:
        """Record one dispatched batch.

        ``span`` is ``(replica_id, bucket, size, start_ms, service_ms,
        wl, wr, wb, wq)`` where the ``w*`` tail is the critical-path
        decomposition of the batch's **worst request** (earliest fleet
        arrival, ties by earliest enqueue): ``wl`` its end-to-end latency,
        ``wr`` retry/hedge time (arrival to final enqueue), ``wb`` batch
        formation (its enqueue to the batch's last enqueue), ``wq`` queue
        wait (last enqueue to dispatch); ``wl == wr + wb + wq +
        service_ms`` up to float rounding.  It takes the whole tuple so
        the bound
        callback can be a bare list append — this fires once per batch,
        the hottest trace stream, and the trace-event dict is built later
        by :meth:`_batch_span_events` (export is sorted, so when the
        dicts materialise does not change a byte).
        """

        self._batch_spans.append(span)

    def _on_window_close(self, index: int, win, sketch, shed_total: int) -> None:
        """One window closed: fold its sketch into the run-level digest
        and step the burn-rate alert evaluator, emitting any transitions
        as trace instants at the window's end."""

        self._run_sketch = self._run_sketch.merge(sketch)
        end_ms = (index + 1) * self.windows.window_ms
        for t_ms, name, action in self.alerts.observe_window(
            end_ms, win.arrivals, win.completions, win.slo_met, shed_total
        ):
            self.tracer.add_instant(
                f"alert-{action}", t_ms, tid=0, args={"alert": name}
            )

    def on_replica(self, replica_id: int, label: str, t_ms: float, cold_ms: float) -> None:
        self.tracer.add_thread_name(replica_id, f"replica-{replica_id} [{label}]")
        if cold_ms > 0.0:
            self.tracer.add_span(
                "cold-start", t_ms, cold_ms, tid=replica_id, args={"label": label}
            )

    def on_failure(self, replica_id: int, t_ms: float) -> None:
        self.windows.record_failure(t_ms)
        if self._first_failure_ms is None or t_ms < self._first_failure_ms:
            self._first_failure_ms = t_ms
        self.tracer.add_instant(
            "replica-fail", t_ms, tid=replica_id, args={"replica": int(replica_id)}
        )

    def on_recovery(self, replica_id: int, t_ms: float, cold_ms: float) -> None:
        self.windows.record_recovery(t_ms)
        self.tracer.add_instant(
            "replica-recover", t_ms, tid=replica_id, args={"replica": int(replica_id)}
        )
        if cold_ms > 0.0:
            self.tracer.add_span(
                "cold-start", t_ms, cold_ms, tid=replica_id, args={"recovery": True}
            )

    def on_tick(
        self, t_ms: float, utilization: float, p99_ratio: float, depth: int
    ) -> None:
        self.tracer.add_counter(
            "autoscaler",
            t_ms,
            {
                "utilization": float(utilization),
                "p99_over_slo": float(p99_ratio),
                "queue_depth": float(depth),
            },
        )

    def on_scale(self, event) -> None:
        self.windows.record_scale(event.time_ms, event.action)
        self.tracer.add_instant(
            f"scale-{event.action}",
            event.time_ms,
            tid=0,
            args={"reason": event.reason, "replicas": int(event.replicas_after)},
        )

    # ------------------------------------------------------------------
    # chaos-layer callbacks
    # ------------------------------------------------------------------
    def on_gray(
        self, replica_id: int, t_ms: float, end_ms: float, slowdown: float
    ) -> None:
        """A gray (straggler) window opened on a replica."""
        self.tracer.add_span(
            "gray-window",
            t_ms,
            end_ms - t_ms,
            tid=replica_id,
            args={"slowdown": float(slowdown)},
        )

    def on_breaker(self, replica_id: int, t_ms: float, state: str) -> None:
        """A replica's circuit breaker changed state (open/half-open/closed)."""
        self.tracer.add_instant(
            f"breaker-{state}", t_ms, tid=replica_id, args={"state": state}
        )

    def on_brownout(self, t_ms: float, level: int) -> None:
        """The brownout ladder moved to ``level`` (0 = normal admission)."""
        self.tracer.add_counter("brownout", t_ms, {"level": float(level)})

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def advance(self, watermark_ms: float) -> None:
        """Flush every window ending at or before the watermark.

        Callers guarantee no further record lands at or before the
        watermark (see the module docstring of :mod:`repro.obs.windows`).
        """

        self.windows.flush(watermark_ms)

    def _batch_span_events(self) -> List[dict]:
        """Materialise buffered batch spans as trace-event dicts (the same
        shape :meth:`Tracer.add_span` builds)."""

        return [
            {
                "name": "batch",
                "ph": "X",
                "ts": float(start_ms) * 1000.0,
                "dur": float(service_ms) * 1000.0,
                "pid": 0,
                "tid": int(replica_id),
                "args": {
                    "bucket": int(bucket),
                    "size": int(size),
                    "wl": float(wl),
                    "wr": float(wr),
                    "wb": float(wb),
                    "wq": float(wq),
                },
            }
            for replica_id, bucket, size, start_ms, service_ms, wl, wr, wb, wq
            in self._batch_spans
        ]

    def take_partial(self) -> ObsPartial:
        """Drain live buffers into a picklable partial (shard workers)."""

        events = self.tracer.take() + self._batch_span_events()
        self._batch_spans = []
        # on_batch is a bare append bound to the drained list — rebind it
        # to the fresh buffer or later spans would vanish into the partial.
        self.on_batch = self._batch_spans.append
        first_failure, self._first_failure_ms = self._first_failure_ms, None
        run_sketch, self._run_sketch = self._run_sketch, QuantileSketch()
        alerts, self.alerts = self.alerts, AlertEvaluator(
            policy=self.alerts.rules
        )
        return ObsPartial(
            windows=self.windows.take(),
            trace_events=events,
            first_failure_ms=first_failure,
            run_sketch=run_sketch,
            alerts=alerts,
        )

    def absorb(self, partial: ObsPartial) -> None:
        """Merge a shard worker's partial, mirroring ``merge_shard_partials``."""

        self.windows.absorb(partial.windows)
        self._trace_master.extend(partial.trace_events)
        t = partial.first_failure_ms
        if t is not None and (
            self._first_failure_ms is None or t < self._first_failure_ms
        ):
            self._first_failure_ms = t
        self._run_sketch = self._run_sketch.merge(partial.run_sketch)
        # The alert evaluator is sequential window state, not a mergeable
        # delta: adopt whichever side has actually seen windows.  Shard
        # children never close windows (only the parent flushes), so at
        # most one side is ever non-empty.
        if (
            partial.alerts is not None
            and partial.alerts.windows_seen > self.alerts.windows_seen
        ):
            self.alerts = partial.alerts

    def finalize(self, report) -> None:
        """Flush remaining windows and fill the registry from the report.

        Every counter/gauge value comes from the already byte-identical
        :class:`~repro.fleet.runner.FleetReport`, so the Prometheus dump
        inherits the engines' byte-equality for free; the latency
        histogram comes from the run-level quantile sketch (bucket
        boundaries are the sketch's own slot edges, so the fill is
        exact).  The flush horizon is the report duration, which pads the
        window stream with explicit empty trailing windows — two runs of
        equal duration always align index-for-index.
        """

        if self._finalized:
            return
        self._finalized = True
        self.windows.flush_all(horizon_ms=report.stats.duration_ms)

        reg = self.registry
        stats = report.stats
        reg.counter(
            "repro_requests_total", "Requests submitted to the fleet."
        ).inc(stats.submitted)
        reg.counter(
            "repro_requests_completed_total", "Requests completed."
        ).inc(stats.completed)
        reg.counter(
            "repro_requests_slo_met_total", "Completed requests meeting their SLO."
        ).inc(stats.slo_met)
        shed = reg.counter(
            "repro_requests_shed_total", "Requests shed, by reason.", labels=("reason",)
        )
        for reason in sorted(stats.shed_by_reason):
            shed.inc(stats.shed_by_reason[reason], reason=reason)
        reg.counter(
            "repro_migrations_total", "Queued requests migrated off failed replicas."
        ).inc(stats.migrations)
        scale = reg.counter(
            "repro_scale_events_total", "Autoscaler actions, by direction.",
            labels=("action",),
        )
        for action in ("up", "down"):
            count = sum(1 for e in stats.scale_events if e.action == action)
            if count:
                scale.inc(count, action=action)
        reg.counter(
            "repro_replica_failures_total", "Replica failure events."
        ).inc(sum(r.failures for r in stats.replicas))

        reg.gauge("repro_duration_ms", "Simulated run duration.").set(stats.duration_ms)
        reg.gauge("repro_replicas_total", "Replicas ever provisioned.").set(
            len(stats.replicas)
        )
        latency = reg.gauge(
            "repro_latency_ms", "Fleet latency summary.", labels=("stat",)
        )
        latency.set(stats.p50_latency_ms, stat="p50")
        latency.set(stats.p95_latency_ms, stat="p95")
        latency.set(stats.p99_latency_ms, stat="p99")
        latency.set(stats.mean_latency_ms, stat="mean")
        latency.set(stats.max_latency_ms, stat="max")
        reg.gauge("repro_throughput_rps", "Completed requests per second.").set(
            stats.throughput_rps
        )
        reg.gauge(
            "repro_goodput_rps", "SLO-meeting completions per second."
        ).set(stats.goodput_rps)
        reg.gauge("repro_shed_rate", "Shed fraction of submitted requests.").set(
            stats.shed_rate
        )
        reg.gauge("repro_slo_attainment", "SLO-met fraction of completions.").set(
            stats.slo_attainment
        )

        self._fill_latency_histogram(reg)
        self._fill_attribution_gauges(reg, stats)
        self._fill_alert_metrics(reg)

        chaos = getattr(stats, "chaos", None)
        if chaos is not None:
            reg.counter(
                "repro_retries_total", "Backoff retries scheduled."
            ).inc(chaos.retries)
            reg.counter(
                "repro_retry_budget_exhausted_total",
                "Retries denied by the retry budget.",
            ).inc(chaos.retry_budget_exhausted)
            reg.counter(
                "repro_timeouts_total", "Admissions failed fast on timeout."
            ).inc(chaos.timeouts)
            reg.counter(
                "repro_hedges_total", "Requests duplicated onto a second replica."
            ).inc(chaos.hedges)
            reg.counter(
                "repro_hedge_wins_total", "Hedged requests won by the secondary."
            ).inc(chaos.hedge_wins)
            breaker = reg.counter(
                "repro_breaker_transitions_total",
                "Circuit-breaker transitions, by direction.",
                labels=("transition",),
            )
            breaker.inc(chaos.breaker_opens, transition="open")
            breaker.inc(chaos.breaker_closes, transition="close")
            brownout = reg.counter(
                "repro_brownout_transitions_total",
                "Brownout ladder moves, by direction.",
                labels=("direction",),
            )
            brownout.inc(chaos.brownout_escalations, direction="escalate")
            brownout.inc(chaos.brownout_deescalations, direction="deescalate")
            reg.gauge(
                "repro_mttr_ms",
                "Time from first failure until windowed goodput is back at "
                ">= 90% of the pre-failure baseline (-1 = never recovered, "
                "0 = no failure observed).",
            ).set(self._mttr_ms())

    def _fill_latency_histogram(self, reg: MetricsRegistry) -> None:
        """Materialise ``repro_request_latency_ms`` from the run sketch.

        Boundaries are the sketch's own occupied slot upper edges, so
        every bucket count is exact; placement is lower-inclusive at
        sketch resolution (a sample exactly on a boundary counts in the
        bucket above — the one documented deviation from strict ``le``
        semantics, bounded by the 12.5% slot width).
        """

        sketch = self._run_sketch
        help_text = (
            "End-to-end request latency (arrival to finish), milliseconds; "
            "buckets are the run sketch's log-bucket slot edges."
        )
        if sketch.count == 0:
            reg.histogram("repro_request_latency_ms", help_text, buckets=(1.0,))
            return
        boundaries: List[float] = []
        bucket_counts: List[int] = []
        if sketch.zeros:
            boundaries.append(0.0)
            bucket_counts.append(sketch.zeros)
        for slot, slot_count in sketch._occupied():
            boundaries.append(_slot_edges(slot)[1])
            bucket_counts.append(slot_count)
        hist = reg.histogram(
            "repro_request_latency_ms", help_text, buckets=tuple(boundaries)
        )
        hist.load(bucket_counts + [0], sketch.sum, sketch.count)

    def _fill_attribution_gauges(self, reg: MetricsRegistry, stats) -> None:
        """Per-tenant and per-replica gauges for offline attribution.

        ``repro.obs.analysis.analyze`` slices these out of the Prometheus
        dump — the per-entity detail already lives in the report, this
        just makes it reachable from the artifact alone.
        """

        tenant_latency = reg.gauge(
            "repro_tenant_latency_ms",
            "Per-tenant latency summary.",
            labels=("tenant", "stat"),
        )
        tenant_gauge = reg.gauge(
            "repro_tenant_slo_attainment",
            "Per-tenant SLO-met fraction of submitted traffic.",
            labels=("tenant",),
        )
        tenant_shed = reg.gauge(
            "repro_tenant_shed_rate",
            "Per-tenant shed fraction of submitted traffic.",
            labels=("tenant",),
        )
        tenant_goodput = reg.gauge(
            "repro_tenant_goodput_rps",
            "Per-tenant SLO-meeting completions per second.",
            labels=("tenant",),
        )
        for name in sorted(stats.tenants):
            tenant = stats.tenants[name]
            tenant_latency.set(tenant.p50_latency_ms, tenant=name, stat="p50")
            tenant_latency.set(tenant.p95_latency_ms, tenant=name, stat="p95")
            tenant_latency.set(tenant.p99_latency_ms, tenant=name, stat="p99")
            tenant_latency.set(tenant.mean_latency_ms, tenant=name, stat="mean")
            tenant_gauge.set(tenant.slo_attainment, tenant=name)
            tenant_shed.set(tenant.shed_rate, tenant=name)
            tenant_goodput.set(tenant.goodput_rps, tenant=name)

        replica_gauge = reg.gauge(
            "repro_replica_stats",
            "Per-replica service record (utilization, busy_ms, batches, requests).",
            labels=("replica", "label", "stat"),
        )
        for replica in stats.replicas:
            rid, label = str(replica.replica_id), replica.spec_label
            replica_gauge.set(replica.utilization, replica=rid, label=label, stat="utilization")
            replica_gauge.set(replica.busy_ms, replica=rid, label=label, stat="busy_ms")
            replica_gauge.set(replica.batches_served, replica=rid, label=label, stat="batches")
            replica_gauge.set(replica.requests_served, replica=rid, label=label, stat="requests")

    def _fill_alert_metrics(self, reg: MetricsRegistry) -> None:
        """Final alert state and transition totals from the evaluator."""

        firing = reg.gauge(
            "repro_alerts_firing",
            "Burn-rate alerts currently firing (1) or quiet (0), by rule.",
            labels=("alert",),
        )
        for name, is_firing in sorted(self.alerts.firing().items()):
            firing.set(1.0 if is_firing else 0.0, alert=name)
        transitions = reg.counter(
            "repro_alert_transitions_total",
            "Alert fire/resolve transitions over the run, by rule.",
            labels=("alert", "action"),
        )
        for name, (fires, resolves) in sorted(self.alerts.transition_counts().items()):
            if fires:
                transitions.inc(fires, alert=name, action="fire")
            if resolves:
                transitions.inc(resolves, alert=name, action="resolve")

    def _mttr_ms(self) -> float:
        """Mean-time-to-recovery from the closed goodput window series.

        Baseline = mean goodput over the windows that closed entirely
        before the first failure; recovery = the first window at or after
        the failure whose goodput reaches 90% of that baseline.  The
        result is that window's end minus the failure instant.  Pure
        function of the (already byte-identical) window series and
        failure instants, so both engines agree on it exactly.
        """
        first = self._first_failure_ms
        if first is None:
            return 0.0
        window_ms = self.windows.window_ms
        fail_idx = int(first / window_ms)
        series = self.windows.goodput_series
        baseline_values = [g for idx, g in series if idx < fail_idx]
        if not baseline_values:
            return -1.0
        baseline = sum(baseline_values) / len(baseline_values)
        if baseline <= 0.0:
            return 0.0  # nothing was being served — trivially recovered
        for idx, goodput in series:
            if idx >= fail_idx and goodput >= 0.9 * baseline:
                return (idx + 1) * window_ms - first
        return -1.0

    # ------------------------------------------------------------------
    # output
    # ------------------------------------------------------------------
    def render_prometheus(self) -> str:
        return self.registry.render()

    def trace_json(self) -> str:
        combined = Tracer()
        combined.events = (
            self._trace_master + self.tracer.events + self._batch_span_events()
        )
        return combined.to_json()

    def window_lines(self) -> List[str]:
        return list(self.windows.lines)


class NullObserver:
    """A falsy no-op sink: every seam tests ``if obs:`` (or ``is not None``
    after normalisation), so passing this keeps the hot loop untouched."""

    def __bool__(self) -> bool:
        return False

    def __getattr__(self, name: str):
        def _noop(*args, **kwargs):
            return None

        return _noop
